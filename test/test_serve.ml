(* Serve daemon tests: the JSON-RPC error contract (no request kills
   the loop), LRU cache behaviour (hit/miss, eviction, reload),
   long-lived-process hygiene (span rotation, scratch shrink on
   eviction), and serve-vs-CLI byte parity across both pointer-analysis
   solvers via a scripted subprocess. *)

open Slice_core
module Serve = Slice_serve.Serve
module Json = Slice_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- demo programs -------------------------------------------------- *)

let tiny_src =
  "void main(String[] args) {\n\
  \  int x = 1 + 2;\n\
  \  int y = x * 3;\n\
  \  print(itoa(y));\n\
   }\n"

(* heap traffic: expand/explain/report have something to say *)
let box_src =
  "class Box {\n\
  \  String val;\n\
  \  Box() { this.val = \"\"; }\n\
  \  void set(String v) { this.val = v; }\n\
  \  String get() { return this.val; }\n\
   }\n\
   void main(String[] args) {\n\
  \  Box b = new Box();\n\
  \  String x = \"hello\";\n\
  \  String y = x + \"!\";\n\
  \  b.set(y);\n\
  \  String z = b.get();\n\
  \  if (z.length() > 0) {\n\
  \    print(z);\n\
  \  }\n\
   }\n"

let box_print_line = 14 (* print(z) *)
let box_def_line = 9 (* String x = "hello" *)

(* --- request / response helpers ------------------------------------- *)

let req ?(id = 1) mname params =
  Json.Obj
    [ ("id", Json.Int id); ("method", Json.Str mname);
      ("params", Json.Obj params) ]

let member_exn name (j : Json.t) : Json.t =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S member: %s" name (Json.to_string j)

let error_code (resp : Json.t) : int option =
  match Json.member "error" resp with
  | Some e -> (
    match Json.member "code" e with Some (Json.Int c) -> Some c | _ -> None)
  | None -> None

let result_str (resp : Json.t) : string =
  Json.to_string (member_exn "result" resp)

let cache_of (resp : Json.t) : string =
  match Json.member "cache" (member_exn "telemetry" resp) with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "no cache telemetry: %s" (Json.to_string resp)

let phase_keys (resp : Json.t) : string list =
  match Json.member "phase_wall_s" (member_exn "telemetry" resp) with
  | Some (Json.Obj kvs) -> List.map fst kvs
  | _ -> []

let do_req st r =
  let o = Serve.handle_request st r in
  o.Serve.resp

let expect_error what st r code =
  let o = Serve.handle_request st r in
  check_bool (what ^ ": does not stop the loop") false o.Serve.stop;
  (match error_code o.Serve.resp with
  | Some c -> check_int (what ^ ": error code") code c
  | None ->
    Alcotest.failf "%s: expected error %d, got %s" what code
      (Json.to_string o.Serve.resp))

(* --- the error contract --------------------------------------------- *)

let test_error_contract () =
  let st = Serve.create_state Serve.default_config in
  (* malformed JSON: a -32700 response, not a crash or a dropped line *)
  (match Serve.handle_line st "{not json" with
  | Some o ->
    check_bool "parse error does not stop" false o.Serve.stop;
    check_int "parse error code" Serve.parse_error
      (Option.get (error_code o.Serve.resp))
  | None -> Alcotest.fail "malformed line produced no response");
  (* blank lines are ignored *)
  (match Serve.handle_line st "   " with
  | None -> ()
  | Some _ -> Alcotest.fail "blank line produced a response");
  (* non-object request *)
  expect_error "non-object request" st (Json.Int 42) Serve.invalid_request;
  (* missing / non-string method *)
  expect_error "missing method" st (Json.Obj [ ("id", Json.Int 1) ])
    Serve.invalid_request;
  expect_error "non-string method" st
    (Json.Obj [ ("method", Json.Int 3) ])
    Serve.invalid_request;
  (* unknown method *)
  expect_error "unknown method" st (req "frobnicate" []) Serve.method_not_found;
  (* missing required params *)
  expect_error "slice without line" st
    (req "slice" [ ("source", Json.Str tiny_src) ])
    Serve.invalid_params;
  expect_error "no program or source" st
    (req "slice" [ ("line", Json.Int 4) ])
    Serve.invalid_params;
  expect_error "bad mode" st
    (req "slice"
       [ ("source", Json.Str tiny_src); ("line", Json.Int 4);
         ("mode", Json.Str "psychic") ])
    Serve.invalid_params;
  expect_error "bad solver" st
    (req "slice"
       [ ("source", Json.Str tiny_src); ("line", Json.Int 4);
         ("solver", Json.Str "quantum") ])
    Serve.invalid_params;
  (* analysis/user errors: code 1, mirroring CLI exit 1 *)
  expect_error "unresident program key" st
    (req "slice" [ ("program", Json.Str "no-such-key"); ("line", Json.Int 4) ])
    1;
  expect_error "unparsable source" st
    (req "load" [ ("source", Json.Str "void main( {") ])
    1;
  expect_error "no statement at line" st
    (req "slice" [ ("source", Json.Str tiny_src); ("line", Json.Int 999) ])
    1;
  (* after all that abuse, the daemon still answers a good request *)
  let resp =
    do_req st (req "slice" [ ("source", Json.Str tiny_src); ("line", Json.Int 4) ])
  in
  check_bool "loop survives: valid slice has a result" true
    (Json.member "result" resp <> None);
  check_bool "slice result carries lines" true
    (Json.member "lines" (member_exn "result" resp) <> None);
  (* shutdown stops the loop and acknowledges *)
  let o = Serve.handle_request st (req "shutdown" []) in
  check_bool "shutdown stops" true o.Serve.stop;
  check_bool "shutdown acks" true (Json.member "result" o.Serve.resp <> None)

(* --- cache hit/miss: equal answers, no re-analysis ------------------- *)

let test_hit_miss_equality () =
  Slice_obs.reset ();
  Slice_obs.set_enabled true;
  let st = Serve.create_state Serve.default_config in
  let r =
    req "slice"
      [ ("source", Json.Str box_src); ("file", Json.Str "box.tj");
        ("line", Json.Int box_print_line) ]
  in
  let cold = do_req st r in
  let hot = do_req st r in
  check_string "first is a miss" "miss" (cache_of cold);
  check_string "second is a hit" "hit" (cache_of hot);
  check_string "hit result byte-equals miss result" (result_str cold)
    (result_str hot);
  (* the hot path must not re-run any analysis phase: its scoped span
     snapshot has no front/pta/sdg phases at all *)
  let analysis_phase k =
    List.exists
      (fun p -> String.length k >= String.length p && String.sub k 0 (String.length p) = p)
      [ "front"; "pta"; "sdg" ]
  in
  check_bool "cold query ran analysis phases" true
    (List.exists analysis_phase (phase_keys cold));
  check_bool "hot query ran zero analysis phases" false
    (List.exists analysis_phase (phase_keys hot));
  Slice_obs.set_enabled false

(* --- LRU eviction and reload ---------------------------------------- *)

let test_lru_eviction_reload () =
  let st = Serve.create_state { Serve.max_programs = 2; jobs = 1 } in
  let load file src = do_req st (req "load" [ ("source", Json.Str src); ("file", Json.Str file) ]) in
  let key_of resp =
    match Json.member "program" (member_exn "result" resp) with
    | Some (Json.Str k) -> k
    | _ -> Alcotest.fail "load result has no program key"
  in
  let ka = key_of (load "a.tj" tiny_src) in
  let kb = key_of (load "b.tj" tiny_src) in
  Alcotest.(check (list string)) "MRU order after two loads" [ kb; ka ]
    (Serve.cache_keys st);
  (* querying A touches it to the front *)
  let ra =
    do_req st (req "slice" [ ("program", Json.Str ka); ("line", Json.Int 4) ])
  in
  Alcotest.(check (list string)) "query touches A to MRU" [ ka; kb ]
    (Serve.cache_keys st);
  (* a third load evicts the LRU entry (B) *)
  let kc = key_of (load "c.tj" box_src) in
  Alcotest.(check (list string)) "C evicts B" [ kc; ka ] (Serve.cache_keys st);
  (* the evicted key is an explicit user error, not a silent reload *)
  expect_error "evicted program key" st
    (req "slice" [ ("program", Json.Str kb); ("line", Json.Int 4) ])
    1;
  (* ... but the same source reloads by digest, with the same answer *)
  let rb =
    do_req st
      (req "slice"
         [ ("source", Json.Str tiny_src); ("file", Json.Str "b.tj");
           ("line", Json.Int 4) ])
  in
  check_string "reload is a miss" "miss" (cache_of rb);
  check_string "reloaded B computes the same slice as resident A"
    (result_str ra) (result_str rb);
  check_int "capacity still respected" 2 (List.length (Serve.cache_keys st))

(* --- satellite 1: spans do not accumulate across queries ------------- *)

let test_span_rotation () =
  Slice_obs.reset ();
  Slice_obs.set_enabled true;
  let st = Serve.create_state Serve.default_config in
  let r =
    req "slice" [ ("source", Json.Str tiny_src); ("line", Json.Int 4) ]
  in
  ignore (do_req st r);
  let baseline = List.length (Slice_obs.snapshot ()).Slice_obs.snap_spans in
  for _ = 1 to 50 do
    ignore (do_req st r)
  done;
  let after = List.length (Slice_obs.snapshot ()).Slice_obs.snap_spans in
  check_int "span list does not grow over 50 queries" baseline after;
  check_int "resident span list stays empty" 0 after;
  Slice_obs.set_enabled false

(* --- satellite 2: eviction shrinks the walk scratch ------------------ *)

(* a program whose SDG dwarfs tiny_src's: a long straight-line chain *)
let big_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b "void main(String[] args) {\n  int x0 = 1;\n";
  for i = 1 to 400 do
    Buffer.add_string b (Printf.sprintf "  int x%d = x%d + 1;\n" i (i - 1))
  done;
  Buffer.add_string b "  print(itoa(x400));\n}\n";
  Buffer.contents b

let test_eviction_shrinks_scratch () =
  let st = Serve.create_state { Serve.max_programs = 1; jobs = 1 } in
  let slice src file line =
    do_req st
      (req "slice"
         [ ("source", Json.Str src); ("file", Json.Str file);
           ("line", Json.Int line) ])
  in
  ignore (slice big_src "big.tj" 402);
  let cap_big = Slicer.domain_scratch_capacity () in
  let tiny_nodes =
    Sdg.num_nodes
      (Engine.load [ ("t.tj", tiny_src) ]).Engine.h_analysis.Engine.sdg
  in
  check_bool "big program grew the scratch past tiny's size" true
    (cap_big > tiny_nodes);
  (* loading tiny evicts big (capacity 1) and must release big's buffers *)
  ignore (slice tiny_src "t.tj" 4);
  let cap_after = Slicer.domain_scratch_capacity () in
  check_bool "eviction shrank the scratch" true (cap_after < cap_big);
  check_int "scratch sized to the surviving program" tiny_nodes cap_after

(* --- serve-vs-CLI byte parity (subprocess) --------------------------- *)

let exe_path = Filename.concat (Filename.concat ".." "bin") "thinslice.exe"
let skip_if_missing () = if not (Sys.file_exists exe_path) then Alcotest.skip ()

let slurp f =
  let ic = open_in_bin f in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* Run the one-shot CLI, returning trimmed stdout; any nonzero exit is
   a test failure (parity inputs are all valid queries). *)
let cli_json (args : string) : string =
  let out_f = Filename.temp_file "serve_cli" ".json" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> /dev/null" (Filename.quote exe_path) args
      (Filename.quote out_f)
  in
  let rc = Sys.command cmd in
  let out = slurp out_f in
  Sys.remove out_f;
  if rc <> 0 then Alcotest.failf "CLI failed (%d): %s" rc args;
  String.trim out

(* Pipe a scripted request file through [thinslice serve]; one response
   line per request, in order. *)
let serve_responses (reqs : Json.t list) : Json.t list =
  let in_f = Filename.temp_file "serve_req" ".jsonl" in
  let out_f = Filename.temp_file "serve_resp" ".jsonl" in
  write_file in_f
    (String.concat "" (List.map (fun r -> Json.to_string r ^ "\n") reqs));
  let cmd =
    Printf.sprintf "%s serve < %s > %s 2> /dev/null" (Filename.quote exe_path)
      (Filename.quote in_f) (Filename.quote out_f)
  in
  let rc = Sys.command cmd in
  let out = slurp out_f in
  Sys.remove in_f;
  Sys.remove out_f;
  if rc <> 0 then Alcotest.failf "serve subprocess exited %d" rc;
  String.split_on_char '\n' out
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Json.of_string l with
         | Ok j -> j
         | Error e -> Alcotest.failf "unparsable serve response %S: %s" l e)

let parity_for_solver (solver : string) () =
  skip_if_missing ();
  let dir = Filename.temp_file "serve_parity" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "box.tj" in
  write_file path box_src;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* serve identifies the unit by basename, exactly as the CLI does *)
      let base =
        [ ("source", Json.Str box_src); ("file", Json.Str "box.tj");
          ("solver", Json.Str solver) ]
      in
      let qp = Filename.quote path in
      let cases =
        [ ( "slice",
            req "slice" (("line", Json.Int box_print_line) :: base),
            Printf.sprintf "slice %s -l %d --json --pta %s" qp box_print_line
              solver );
          ( "forward",
            req "forward"
              (("line", Json.Int box_def_line)
               :: ("mode", Json.Str "trad") :: base),
            Printf.sprintf "slice %s -l %d --forward --mode trad --json --pta %s"
              qp box_def_line solver );
          ( "chop",
            req "chop"
              (("line", Json.Int box_def_line)
               :: ("to", Json.Int box_print_line) :: base),
            Printf.sprintf "chop %s -l %d --to %d --json --pta %s" qp
              box_def_line box_print_line solver );
          ( "expand",
            req "expand" (("line", Json.Int box_print_line) :: base),
            Printf.sprintf "expand %s -l %d --json --pta %s" qp box_print_line
              solver );
          ( "explain",
            req "explain"
              (("line", Json.Int box_def_line)
               :: ("seed", Json.Int box_print_line)
               :: ("mode", Json.Str "full") :: base),
            Printf.sprintf "explain %s %d --seed %d --mode full --json --pta %s"
              qp box_def_line box_print_line solver );
          ( "report",
            req "report"
              (("line", Json.Int box_print_line)
               :: ("mode", Json.Str "full") :: base),
            Printf.sprintf "report %s -l %d --mode full --json --pta %s" qp
              box_print_line solver );
          ( "stats",
            req "stats" base,
            Printf.sprintf "stats %s --json --pta %s" qp solver ) ]
      in
      let resps = serve_responses (List.map (fun (_, r, _) -> r) cases) in
      check_int "one response per request" (List.length cases)
        (List.length resps);
      List.iter2
        (fun (name, _, cli_args) resp ->
          let serve_result = result_str resp in
          let cli_out = cli_json cli_args in
          check_string
            (Printf.sprintf "%s (--pta %s): serve result byte-equals CLI --json"
               name solver)
            cli_out serve_result)
        cases resps;
      (* every response after the first reuses the resident analysis *)
      List.iteri
        (fun i resp ->
          check_string
            (Printf.sprintf "request %d cache state" i)
            (if i = 0 then "miss" else "hit")
            (cache_of resp))
        resps)

(* --- incremental update --------------------------------------------- *)

(* A body-interior, pointer-free tweak of [box_src]: same line count,
   same skeleton, so [Engine.update] can take the Patched path. *)
let box_src_edited =
  let sub = "z.length() > 0" and by = "z.length() > 1" in
  let ls = String.length box_src and lsub = String.length sub in
  let rec find i =
    if i + lsub > ls then Alcotest.failf "edit needle %S not in box_src" sub
    else if String.sub box_src i lsub = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub box_src 0 i ^ by
  ^ String.sub box_src (i + lsub) (ls - i - lsub)

let program_of (resp : Json.t) : string =
  match Json.member "program" (member_exn "result" resp) with
  | Some (Json.Str k) -> k
  | _ -> Alcotest.failf "no program key in %s" (Json.to_string resp)

(* update patches the resident entry in place: the cache is re-keyed
   under the new digest, the old key is gone, and queries through the
   new key byte-equal a fresh load of the edited source. *)
let test_update_method () =
  let st = Serve.create_state Serve.default_config in
  let file = "box.tj" in
  let key1 =
    program_of
      (do_req st
         (req "load" [ ("source", Json.Str box_src); ("file", Json.Str file) ]))
  in
  let upd =
    do_req st
      (req "update"
         [ ("program", Json.Str key1); ("source", Json.Str box_src_edited);
           ("file", Json.Str file) ])
  in
  let r = member_exn "result" upd in
  let key2 = program_of upd in
  check_bool "edit re-keys the entry" true (key1 <> key2);
  (match Json.member "path" r with
  | Some (Json.Str "patched") -> ()
  | other ->
    Alcotest.failf "expected the patched path, got %s"
      (match other with Some j -> Json.to_string j | None -> "<none>"));
  (match Json.member "relowered" r with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.failf "expected exactly one re-lowered method: %s"
           (Json.to_string r));
  check_string "update telemetry" "update"
    (cache_of upd);
  (* the patched entry answers by its NEW key, as a hit *)
  let sl =
    do_req st
      (req "slice"
         [ ("program", Json.Str key2); ("line", Json.Int box_print_line) ])
  in
  check_string "patched entry is resident" "hit" (cache_of sl);
  (* ... the old key is gone ... *)
  expect_error "stale pre-edit key" st
    (req "slice"
       [ ("program", Json.Str key1); ("line", Json.Int box_print_line) ])
    Serve.user_error;
  (* ... and the patched analysis byte-equals a fresh load of the edit *)
  let fresh = Serve.create_state Serve.default_config in
  let sl' =
    do_req fresh
      (req "slice"
         [ ("source", Json.Str box_src_edited); ("file", Json.Str file);
           ("line", Json.Int box_print_line) ])
  in
  check_string "patched result equals fresh-load result" (result_str sl')
    (result_str sl)

(* A shrinking EDIT must release the walk scratch the same way LRU
   eviction does: the update handler re-sizes the domain scratch to the
   surviving residents instead of pinning the pre-edit high-water mark. *)
let test_update_shrinks_scratch () =
  let st = Serve.create_state { Serve.max_programs = 1; jobs = 1 } in
  let key =
    program_of
      (do_req st
         (req "load"
            [ ("source", Json.Str big_src); ("file", Json.Str "big.tj") ]))
  in
  ignore
    (do_req st
       (req "slice" [ ("program", Json.Str key); ("line", Json.Int 402) ]));
  let cap_big = Slicer.domain_scratch_capacity () in
  let tiny_nodes =
    Sdg.num_nodes
      (Engine.load [ ("big.tj", tiny_src) ]).Engine.h_analysis.Engine.sdg
  in
  check_bool "big program grew the scratch past tiny's size" true
    (cap_big > tiny_nodes);
  (* a structural shrink of the resident program (Rebuilt path) *)
  let upd =
    do_req st
      (req "update"
         [ ("program", Json.Str key); ("source", Json.Str tiny_src);
           ("file", Json.Str "big.tj") ])
  in
  (match Json.member "path" (member_exn "result" upd) with
  | Some (Json.Str "rebuilt") -> ()
  | other ->
    Alcotest.failf "expected the rebuilt path, got %s"
      (match other with Some j -> Json.to_string j | None -> "<none>"));
  let cap_after = Slicer.domain_scratch_capacity () in
  check_bool "shrinking update released the scratch" true
    (cap_after < cap_big);
  check_int "scratch sized to the post-edit program" tiny_nodes cap_after

(* updating a non-resident key is a user error, not a crash; so is an
   update without any source payload *)
let test_update_errors () =
  let st = Serve.create_state Serve.default_config in
  expect_error "update of non-resident program" st
    (req "update"
       [ ("program", Json.Str "no-such-key"); ("source", Json.Str tiny_src) ])
    Serve.user_error;
  let key =
    program_of (do_req st (req "load" [ ("source", Json.Str tiny_src) ]))
  in
  expect_error "update without source" st
    (req "update" [ ("program", Json.Str key) ])
    Serve.invalid_params

(* --- multi-file loads ------------------------------------------------ *)

let two_files =
  [ ( "main.tj",
      "void main(String[] args) {\n  int x = helper(2);\n  print(itoa(x));\n}\n"
    );
    ("util.tj", "int helper(int n) {\n  return n * 3;\n}\n") ]

let sources_json (files : (string * string) list) : Json.t =
  Json.List
    (List.map
       (fun (f, s) ->
         Json.Obj [ ("file", Json.Str f); ("source", Json.Str s) ])
       files)

let test_sources_array () =
  let st = Serve.create_state Serve.default_config in
  (* a two-file program loads and is digest-addressable *)
  let key =
    program_of
      (do_req st (req "load" [ ("sources", sources_json two_files) ]))
  in
  let again = do_req st (req "load" [ ("sources", sources_json two_files) ]) in
  check_string "same sources digest to the same key" key (program_of again);
  check_string "second load is a hit" "hit" (cache_of again);
  (* a singleton sources array is the same program as source+file *)
  let k1 =
    program_of
      (do_req st
         (req "load" [ ("sources", sources_json [ ("t.tj", tiny_src) ]) ]))
  in
  let direct =
    do_req st
      (req "load" [ ("source", Json.Str tiny_src); ("file", Json.Str "t.tj") ])
  in
  check_string "singleton array digests like source+file" k1
    (program_of direct);
  check_string "singleton/direct is a hit" "hit" (cache_of direct)

let test_sources_errors () =
  let st = Serve.create_state Serve.default_config in
  (* duplicate paths: structured user error (code 1), not a crash *)
  expect_error "duplicate source path" st
    (req "load"
       [ ( "sources",
           sources_json [ ("a.tj", tiny_src); ("a.tj", tiny_src) ] ) ])
    Serve.user_error;
  (* malformed arrays: invalid params *)
  expect_error "empty sources" st
    (req "load" [ ("sources", Json.List []) ])
    Serve.invalid_params;
  expect_error "non-array sources" st
    (req "load" [ ("sources", Json.Str "nope") ])
    Serve.invalid_params;
  expect_error "entry without file" st
    (req "load"
       [ ("sources", Json.List [ Json.Obj [ ("source", Json.Str tiny_src) ] ])
       ])
    Serve.invalid_params

(* --- socket robustness ----------------------------------------------- *)

(* A client that vanishes mid-request (or mid-response) must end only
   its own connection: the daemon stays up, leaks no fd, and serves the
   next client.  Regression test for the SIGPIPE/EOF handling in
   [serve_unix_socket]. *)
let test_socket_disconnect () =
  skip_if_missing ();
  let sock_path = Filename.temp_file "thinslice" ".sock" in
  Sys.remove sock_path;
  let pid =
    Unix.create_process exe_path
      [| exe_path; "serve"; "--socket"; sock_path |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Sys.remove sock_path with Sys_error _ -> ())
    (fun () ->
      (* wait for the daemon to bind *)
      let rec wait_sock n =
        if Sys.file_exists sock_path then ()
        else if n = 0 then Alcotest.fail "daemon never bound its socket"
        else begin
          Unix.sleepf 0.05;
          wait_sock (n - 1)
        end
      in
      wait_sock 200;
      let connect () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock_path);
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
        fd
      in
      let slice_req =
        Json.to_string
          (req "slice"
             [ ("source", Json.Str box_src);
               ("line", Json.Int box_print_line) ])
      in
      (* client 1: dies mid-request — a partial line, then a hard close *)
      let fd1 = connect () in
      let partial = String.sub slice_req 0 (String.length slice_req / 2) in
      ignore (Unix.write_substring fd1 partial 0 (String.length partial));
      Unix.close fd1;
      (* client 2: dies mid-response — full request, closed before the
         (analysis-sized) response can be written back *)
      let fd2 = connect () in
      ignore
        (Unix.write_substring fd2 (slice_req ^ "\n") 0
           (String.length slice_req + 1));
      Unix.close fd2;
      (* client 3: must still be served, with a real result *)
      let fd3 = connect () in
      ignore
        (Unix.write_substring fd3 (slice_req ^ "\n") 0
           (String.length slice_req + 1));
      let ic = Unix.in_channel_of_descr fd3 in
      let line =
        try input_line ic
        with End_of_file | Sys_error _ | Unix.Unix_error (_, _, _) ->
          Alcotest.fail "daemon did not answer after client disconnects"
      in
      (match Json.of_string line with
      | Ok resp ->
        check_bool "post-disconnect response carries a result" true
          (Json.member "result" resp <> None)
      | Error e -> Alcotest.failf "unparsable response %S: %s" line e);
      (* clean shutdown so the daemon exits by itself *)
      let bye = Json.to_string (req "shutdown" []) ^ "\n" in
      ignore (Unix.write_substring fd3 bye 0 (String.length bye));
      (try ignore (input_line ic) with _ -> ());
      Unix.close fd3;
      let rec reap n =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ when n > 0 ->
          Unix.sleepf 0.05;
          reap (n - 1)
        | 0, _ -> Alcotest.fail "daemon did not exit after shutdown"
        | _ -> ()
      in
      reap 200)

let suite =
  [ Alcotest.test_case "error contract: nothing kills the loop" `Quick
      test_error_contract;
    Alcotest.test_case "cache hit equals miss, zero re-analysis" `Quick
      test_hit_miss_equality;
    Alcotest.test_case "LRU eviction, explicit miss, reload" `Quick
      test_lru_eviction_reload;
    Alcotest.test_case "spans do not accumulate across queries" `Quick
      test_span_rotation;
    Alcotest.test_case "eviction shrinks the walk scratch" `Quick
      test_eviction_shrinks_scratch;
    Alcotest.test_case "update patches and re-keys the resident entry" `Quick
      test_update_method;
    Alcotest.test_case "shrinking update releases the walk scratch" `Quick
      test_update_shrinks_scratch;
    Alcotest.test_case "update error contract" `Quick test_update_errors;
    Alcotest.test_case "multi-file sources load" `Quick test_sources_array;
    Alcotest.test_case "sources error contract" `Quick test_sources_errors;
    Alcotest.test_case "client disconnect does not kill the daemon" `Quick
      test_socket_disconnect;
    Alcotest.test_case "serve/CLI byte parity (bitset pta)" `Quick
      (parity_for_solver "bitset");
    Alcotest.test_case "serve/CLI byte parity (reference pta)" `Quick
      (parity_for_solver "reference") ]
