(* Serve daemon tests: the JSON-RPC error contract (no request kills
   the loop), LRU cache behaviour (hit/miss, eviction, reload),
   long-lived-process hygiene (span rotation, scratch shrink on
   eviction), and serve-vs-CLI byte parity across both pointer-analysis
   solvers via a scripted subprocess. *)

open Slice_core
module Serve = Slice_serve.Serve
module Json = Slice_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- demo programs -------------------------------------------------- *)

let tiny_src =
  "void main(String[] args) {\n\
  \  int x = 1 + 2;\n\
  \  int y = x * 3;\n\
  \  print(itoa(y));\n\
   }\n"

(* heap traffic: expand/explain/report have something to say *)
let box_src =
  "class Box {\n\
  \  String val;\n\
  \  Box() { this.val = \"\"; }\n\
  \  void set(String v) { this.val = v; }\n\
  \  String get() { return this.val; }\n\
   }\n\
   void main(String[] args) {\n\
  \  Box b = new Box();\n\
  \  String x = \"hello\";\n\
  \  String y = x + \"!\";\n\
  \  b.set(y);\n\
  \  String z = b.get();\n\
  \  if (z.length() > 0) {\n\
  \    print(z);\n\
  \  }\n\
   }\n"

let box_print_line = 14 (* print(z) *)
let box_def_line = 9 (* String x = "hello" *)

(* --- request / response helpers ------------------------------------- *)

let req ?(id = 1) mname params =
  Json.Obj
    [ ("id", Json.Int id); ("method", Json.Str mname);
      ("params", Json.Obj params) ]

let member_exn name (j : Json.t) : Json.t =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S member: %s" name (Json.to_string j)

let error_code (resp : Json.t) : int option =
  match Json.member "error" resp with
  | Some e -> (
    match Json.member "code" e with Some (Json.Int c) -> Some c | _ -> None)
  | None -> None

let result_str (resp : Json.t) : string =
  Json.to_string (member_exn "result" resp)

let cache_of (resp : Json.t) : string =
  match Json.member "cache" (member_exn "telemetry" resp) with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "no cache telemetry: %s" (Json.to_string resp)

let phase_keys (resp : Json.t) : string list =
  match Json.member "phase_wall_s" (member_exn "telemetry" resp) with
  | Some (Json.Obj kvs) -> List.map fst kvs
  | _ -> []

let do_req st r =
  let o = Serve.handle_request st r in
  o.Serve.resp

let expect_error what st r code =
  let o = Serve.handle_request st r in
  check_bool (what ^ ": does not stop the loop") false o.Serve.stop;
  (match error_code o.Serve.resp with
  | Some c -> check_int (what ^ ": error code") code c
  | None ->
    Alcotest.failf "%s: expected error %d, got %s" what code
      (Json.to_string o.Serve.resp))

(* --- the error contract --------------------------------------------- *)

let test_error_contract () =
  let st = Serve.create_state Serve.default_config in
  (* malformed JSON: a -32700 response, not a crash or a dropped line *)
  (match Serve.handle_line st "{not json" with
  | Some o ->
    check_bool "parse error does not stop" false o.Serve.stop;
    check_int "parse error code" Serve.parse_error
      (Option.get (error_code o.Serve.resp))
  | None -> Alcotest.fail "malformed line produced no response");
  (* blank lines are ignored *)
  (match Serve.handle_line st "   " with
  | None -> ()
  | Some _ -> Alcotest.fail "blank line produced a response");
  (* non-object request *)
  expect_error "non-object request" st (Json.Int 42) Serve.invalid_request;
  (* missing / non-string method *)
  expect_error "missing method" st (Json.Obj [ ("id", Json.Int 1) ])
    Serve.invalid_request;
  expect_error "non-string method" st
    (Json.Obj [ ("method", Json.Int 3) ])
    Serve.invalid_request;
  (* unknown method *)
  expect_error "unknown method" st (req "frobnicate" []) Serve.method_not_found;
  (* missing required params *)
  expect_error "slice without line" st
    (req "slice" [ ("source", Json.Str tiny_src) ])
    Serve.invalid_params;
  expect_error "no program or source" st
    (req "slice" [ ("line", Json.Int 4) ])
    Serve.invalid_params;
  expect_error "bad mode" st
    (req "slice"
       [ ("source", Json.Str tiny_src); ("line", Json.Int 4);
         ("mode", Json.Str "psychic") ])
    Serve.invalid_params;
  expect_error "bad solver" st
    (req "slice"
       [ ("source", Json.Str tiny_src); ("line", Json.Int 4);
         ("solver", Json.Str "quantum") ])
    Serve.invalid_params;
  (* analysis/user errors: code 1, mirroring CLI exit 1 *)
  expect_error "unresident program key" st
    (req "slice" [ ("program", Json.Str "no-such-key"); ("line", Json.Int 4) ])
    1;
  expect_error "unparsable source" st
    (req "load" [ ("source", Json.Str "void main( {") ])
    1;
  expect_error "no statement at line" st
    (req "slice" [ ("source", Json.Str tiny_src); ("line", Json.Int 999) ])
    1;
  (* after all that abuse, the daemon still answers a good request *)
  let resp =
    do_req st (req "slice" [ ("source", Json.Str tiny_src); ("line", Json.Int 4) ])
  in
  check_bool "loop survives: valid slice has a result" true
    (Json.member "result" resp <> None);
  check_bool "slice result carries lines" true
    (Json.member "lines" (member_exn "result" resp) <> None);
  (* shutdown stops the loop and acknowledges *)
  let o = Serve.handle_request st (req "shutdown" []) in
  check_bool "shutdown stops" true o.Serve.stop;
  check_bool "shutdown acks" true (Json.member "result" o.Serve.resp <> None)

(* --- cache hit/miss: equal answers, no re-analysis ------------------- *)

let test_hit_miss_equality () =
  Slice_obs.reset ();
  Slice_obs.set_enabled true;
  let st = Serve.create_state Serve.default_config in
  let r =
    req "slice"
      [ ("source", Json.Str box_src); ("file", Json.Str "box.tj");
        ("line", Json.Int box_print_line) ]
  in
  let cold = do_req st r in
  let hot = do_req st r in
  check_string "first is a miss" "miss" (cache_of cold);
  check_string "second is a hit" "hit" (cache_of hot);
  check_string "hit result byte-equals miss result" (result_str cold)
    (result_str hot);
  (* the hot path must not re-run any analysis phase: its scoped span
     snapshot has no front/pta/sdg phases at all *)
  let analysis_phase k =
    List.exists
      (fun p -> String.length k >= String.length p && String.sub k 0 (String.length p) = p)
      [ "front"; "pta"; "sdg" ]
  in
  check_bool "cold query ran analysis phases" true
    (List.exists analysis_phase (phase_keys cold));
  check_bool "hot query ran zero analysis phases" false
    (List.exists analysis_phase (phase_keys hot));
  Slice_obs.set_enabled false

(* --- LRU eviction and reload ---------------------------------------- *)

let test_lru_eviction_reload () =
  let st = Serve.create_state { Serve.max_programs = 2; jobs = 1 } in
  let load file src = do_req st (req "load" [ ("source", Json.Str src); ("file", Json.Str file) ]) in
  let key_of resp =
    match Json.member "program" (member_exn "result" resp) with
    | Some (Json.Str k) -> k
    | _ -> Alcotest.fail "load result has no program key"
  in
  let ka = key_of (load "a.tj" tiny_src) in
  let kb = key_of (load "b.tj" tiny_src) in
  Alcotest.(check (list string)) "MRU order after two loads" [ kb; ka ]
    (Serve.cache_keys st);
  (* querying A touches it to the front *)
  let ra =
    do_req st (req "slice" [ ("program", Json.Str ka); ("line", Json.Int 4) ])
  in
  Alcotest.(check (list string)) "query touches A to MRU" [ ka; kb ]
    (Serve.cache_keys st);
  (* a third load evicts the LRU entry (B) *)
  let kc = key_of (load "c.tj" box_src) in
  Alcotest.(check (list string)) "C evicts B" [ kc; ka ] (Serve.cache_keys st);
  (* the evicted key is an explicit user error, not a silent reload *)
  expect_error "evicted program key" st
    (req "slice" [ ("program", Json.Str kb); ("line", Json.Int 4) ])
    1;
  (* ... but the same source reloads by digest, with the same answer *)
  let rb =
    do_req st
      (req "slice"
         [ ("source", Json.Str tiny_src); ("file", Json.Str "b.tj");
           ("line", Json.Int 4) ])
  in
  check_string "reload is a miss" "miss" (cache_of rb);
  check_string "reloaded B computes the same slice as resident A"
    (result_str ra) (result_str rb);
  check_int "capacity still respected" 2 (List.length (Serve.cache_keys st))

(* --- satellite 1: spans do not accumulate across queries ------------- *)

let test_span_rotation () =
  Slice_obs.reset ();
  Slice_obs.set_enabled true;
  let st = Serve.create_state Serve.default_config in
  let r =
    req "slice" [ ("source", Json.Str tiny_src); ("line", Json.Int 4) ]
  in
  ignore (do_req st r);
  let baseline = List.length (Slice_obs.snapshot ()).Slice_obs.snap_spans in
  for _ = 1 to 50 do
    ignore (do_req st r)
  done;
  let after = List.length (Slice_obs.snapshot ()).Slice_obs.snap_spans in
  check_int "span list does not grow over 50 queries" baseline after;
  check_int "resident span list stays empty" 0 after;
  Slice_obs.set_enabled false

(* --- satellite 2: eviction shrinks the walk scratch ------------------ *)

(* a program whose SDG dwarfs tiny_src's: a long straight-line chain *)
let big_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b "void main(String[] args) {\n  int x0 = 1;\n";
  for i = 1 to 400 do
    Buffer.add_string b (Printf.sprintf "  int x%d = x%d + 1;\n" i (i - 1))
  done;
  Buffer.add_string b "  print(itoa(x400));\n}\n";
  Buffer.contents b

let test_eviction_shrinks_scratch () =
  let st = Serve.create_state { Serve.max_programs = 1; jobs = 1 } in
  let slice src file line =
    do_req st
      (req "slice"
         [ ("source", Json.Str src); ("file", Json.Str file);
           ("line", Json.Int line) ])
  in
  ignore (slice big_src "big.tj" 402);
  let cap_big = Slicer.domain_scratch_capacity () in
  let tiny_nodes =
    Sdg.num_nodes
      (Engine.load [ ("t.tj", tiny_src) ]).Engine.h_analysis.Engine.sdg
  in
  check_bool "big program grew the scratch past tiny's size" true
    (cap_big > tiny_nodes);
  (* loading tiny evicts big (capacity 1) and must release big's buffers *)
  ignore (slice tiny_src "t.tj" 4);
  let cap_after = Slicer.domain_scratch_capacity () in
  check_bool "eviction shrank the scratch" true (cap_after < cap_big);
  check_int "scratch sized to the surviving program" tiny_nodes cap_after

(* --- serve-vs-CLI byte parity (subprocess) --------------------------- *)

let exe_path = Filename.concat (Filename.concat ".." "bin") "thinslice.exe"
let skip_if_missing () = if not (Sys.file_exists exe_path) then Alcotest.skip ()

let slurp f =
  let ic = open_in_bin f in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* Run the one-shot CLI, returning trimmed stdout; any nonzero exit is
   a test failure (parity inputs are all valid queries). *)
let cli_json (args : string) : string =
  let out_f = Filename.temp_file "serve_cli" ".json" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> /dev/null" (Filename.quote exe_path) args
      (Filename.quote out_f)
  in
  let rc = Sys.command cmd in
  let out = slurp out_f in
  Sys.remove out_f;
  if rc <> 0 then Alcotest.failf "CLI failed (%d): %s" rc args;
  String.trim out

(* Pipe a scripted request file through [thinslice serve]; one response
   line per request, in order. *)
let serve_responses (reqs : Json.t list) : Json.t list =
  let in_f = Filename.temp_file "serve_req" ".jsonl" in
  let out_f = Filename.temp_file "serve_resp" ".jsonl" in
  write_file in_f
    (String.concat "" (List.map (fun r -> Json.to_string r ^ "\n") reqs));
  let cmd =
    Printf.sprintf "%s serve < %s > %s 2> /dev/null" (Filename.quote exe_path)
      (Filename.quote in_f) (Filename.quote out_f)
  in
  let rc = Sys.command cmd in
  let out = slurp out_f in
  Sys.remove in_f;
  Sys.remove out_f;
  if rc <> 0 then Alcotest.failf "serve subprocess exited %d" rc;
  String.split_on_char '\n' out
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Json.of_string l with
         | Ok j -> j
         | Error e -> Alcotest.failf "unparsable serve response %S: %s" l e)

let parity_for_solver (solver : string) () =
  skip_if_missing ();
  let dir = Filename.temp_file "serve_parity" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "box.tj" in
  write_file path box_src;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* serve identifies the unit by basename, exactly as the CLI does *)
      let base =
        [ ("source", Json.Str box_src); ("file", Json.Str "box.tj");
          ("solver", Json.Str solver) ]
      in
      let qp = Filename.quote path in
      let cases =
        [ ( "slice",
            req "slice" (("line", Json.Int box_print_line) :: base),
            Printf.sprintf "slice %s -l %d --json --pta %s" qp box_print_line
              solver );
          ( "forward",
            req "forward"
              (("line", Json.Int box_def_line)
               :: ("mode", Json.Str "trad") :: base),
            Printf.sprintf "slice %s -l %d --forward --mode trad --json --pta %s"
              qp box_def_line solver );
          ( "chop",
            req "chop"
              (("line", Json.Int box_def_line)
               :: ("to", Json.Int box_print_line) :: base),
            Printf.sprintf "chop %s -l %d --to %d --json --pta %s" qp
              box_def_line box_print_line solver );
          ( "expand",
            req "expand" (("line", Json.Int box_print_line) :: base),
            Printf.sprintf "expand %s -l %d --json --pta %s" qp box_print_line
              solver );
          ( "explain",
            req "explain"
              (("line", Json.Int box_def_line)
               :: ("seed", Json.Int box_print_line)
               :: ("mode", Json.Str "full") :: base),
            Printf.sprintf "explain %s %d --seed %d --mode full --json --pta %s"
              qp box_def_line box_print_line solver );
          ( "report",
            req "report"
              (("line", Json.Int box_print_line)
               :: ("mode", Json.Str "full") :: base),
            Printf.sprintf "report %s -l %d --mode full --json --pta %s" qp
              box_print_line solver );
          ( "stats",
            req "stats" base,
            Printf.sprintf "stats %s --json --pta %s" qp solver ) ]
      in
      let resps = serve_responses (List.map (fun (_, r, _) -> r) cases) in
      check_int "one response per request" (List.length cases)
        (List.length resps);
      List.iter2
        (fun (name, _, cli_args) resp ->
          let serve_result = result_str resp in
          let cli_out = cli_json cli_args in
          check_string
            (Printf.sprintf "%s (--pta %s): serve result byte-equals CLI --json"
               name solver)
            cli_out serve_result)
        cases resps;
      (* every response after the first reuses the resident analysis *)
      List.iteri
        (fun i resp ->
          check_string
            (Printf.sprintf "request %d cache state" i)
            (if i = 0 then "miss" else "hit")
            (cache_of resp))
        resps)

let suite =
  [ Alcotest.test_case "error contract: nothing kills the loop" `Quick
      test_error_contract;
    Alcotest.test_case "cache hit equals miss, zero re-analysis" `Quick
      test_hit_miss_equality;
    Alcotest.test_case "LRU eviction, explicit miss, reload" `Quick
      test_lru_eviction_reload;
    Alcotest.test_case "spans do not accumulate across queries" `Quick
      test_span_rotation;
    Alcotest.test_case "eviction shrinks the walk scratch" `Quick
      test_eviction_shrinks_scratch;
    Alcotest.test_case "serve/CLI byte parity (bitset pta)" `Quick
      (parity_for_solver "bitset");
    Alcotest.test_case "serve/CLI byte parity (reference pta)" `Quick
      (parity_for_solver "reference") ]
