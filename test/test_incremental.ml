(* Incremental re-analysis: edit -> delta -> patched SDG.

   The oracle throughout: a handle carried through [Engine.update] must
   answer every query exactly like a fresh [Engine.load] of the edited
   sources — slices in every mode, canonical points-to and call-graph
   dumps, inspection reports, stats.  The tiers (Noop / Patched /
   Resolved_incremental / Resolved_fresh / Rebuilt) only change how
   much work runs, never the answers. *)

open Slice_core
open Slice_front

(* ----- fixture program ----- *)

(* Small but layered: a class with field state, a helper free function,
   heap flow through [set]/[get], and a printing main.  Each tier's edit
   targets a different method body. *)
let base_src =
  {|class A {
  int f;
  int get() { return this.f; }
  void set(int v) { this.f = v + 0; }
}
int compute(int x) {
  int y = x * 2;
  return y + 1;
}
void main(String[] args) {
  A a = new A();
  a.set(5);
  int z = compute(a.get());
  print("" + z);
}
|}

let file = "inc.tj"

(* Line of the first occurrence of [sub] (1-based). *)
let line_of (src : string) (sub : string) : int =
  let lines = String.split_on_char '\n' src in
  let rec go i = function
    | [] -> failwith ("line_of: " ^ sub)
    | l :: rest ->
      let has =
        let ll = String.length l and ls = String.length sub in
        let rec at j = j + ls <= ll && (String.sub l j ls = sub || at (j + 1)) in
        ls = 0 || at 0
      in
      if has then i else go (i + 1) rest
  in
  go 1 lines

(* Replace the first occurrence of [old_s]. *)
let replace (src : string) (old_s : string) (new_s : string) : string =
  let ls = String.length src and lo = String.length old_s in
  let rec find j =
    if j + lo > ls then failwith ("replace: " ^ old_s)
    else if String.sub src j lo = old_s then j
    else find (j + 1)
  in
  let j = find 0 in
  String.sub src 0 j ^ new_s ^ String.sub src (j + lo) (ls - j - lo)

let all_modes =
  [ Slicer.Thin; Slicer.Thin_with_aliasing 1; Slicer.Traditional_data;
    Slicer.Traditional_full ]

(* The full oracle: updated handle vs fresh load of the same sources. *)
let check_equiv ~(what : string) (h : Engine.handle)
    (sources : (string * string) list) (seed_lines : int list) : unit =
  let fresh = Engine.load sources in
  let a = h.Engine.h_analysis and b = fresh.Engine.h_analysis in
  List.iter
    (fun mode ->
      List.iter
        (fun line ->
          let name =
            Printf.sprintf "%s: slice @%d %s" what line
              (Slicer.mode_to_string mode)
          in
          Alcotest.(check (list int))
            name
            (Engine.slice_from_line b ~line mode)
            (Engine.slice_from_line a ~line mode))
        seed_lines)
    all_modes;
  Alcotest.(check (list (pair string (list string))))
    (what ^ ": canonical pts dump")
    (Engine.pts_dump_canonical b)
    (Engine.pts_dump_canonical a);
  Alcotest.(check (list (pair string (list string))))
    (what ^ ": canonical call graph")
    (Engine.call_graph_dump_canonical b)
    (Engine.call_graph_dump_canonical a);
  let s1 = h.Engine.h_stats and s2 = fresh.Engine.h_stats in
  Alcotest.(check int) (what ^ ": methods") s2.Engine.methods s1.Engine.methods;
  Alcotest.(check int)
    (what ^ ": ir_statements")
    s2.Engine.ir_statements s1.Engine.ir_statements;
  Alcotest.(check int)
    (what ^ ": sdg_statements")
    s2.Engine.sdg_statements s1.Engine.sdg_statements;
  Alcotest.(check int)
    (what ^ ": live sdg_nodes")
    s2.Engine.sdg_nodes s1.Engine.sdg_nodes;
  (* The per-program edge census a resident daemon reports.  The fresh
     load's scoped snapshot can carry zero-valued counters interned by
     earlier tests in this process; the census never emits zeros, so
     filter them before comparing. *)
  let nonzero (snap : Slice_obs.snapshot) =
    { snap with
      Slice_obs.snap_counters =
        List.filter (fun (_, v) -> v <> 0) snap.Slice_obs.snap_counters }
  in
  Alcotest.(check string)
    (what ^ ": edges_by_kind")
    (Slice_obs.Json.to_string
       (Engine.edges_by_kind_json (nonzero s2.Engine.obs)))
    (Slice_obs.Json.to_string
       (Engine.edges_by_kind_json
          (Engine.edge_census_snapshot a.Engine.sdg)))

let path_testable =
  Alcotest.testable
    (fun fmt p -> Format.pp_print_string fmt (Engine.update_path_to_string p))
    ( = )

(* ----- delta classifier units ----- *)

let test_skeleton () =
  let sk = Delta.skeleton base_src in
  Alcotest.(check int)
    "skeleton preserves line count"
    (List.length (String.split_on_char '\n' base_src))
    (List.length (String.split_on_char '\n' sk));
  (* Body interiors are blanked... *)
  let contains s sub =
    let ls = String.length s and lo = String.length sub in
    let rec at j = j + lo <= ls && (String.sub s j lo = sub || at (j + 1)) in
    at 0
  in
  Alcotest.(check bool) "body expr blanked" false (contains sk "x * 2");
  (* ...while signatures survive. *)
  Alcotest.(check bool) "signature kept" true (contains sk "int compute(int x)")

let test_diff_tiers () =
  let units src = [ (file, src) ] in
  (match Delta.diff ~old_sources:(units base_src) ~new_sources:(units base_src)
   with
  | Delta.Same -> ()
  | _ -> Alcotest.fail "byte-equal should be Same");
  (match
     Delta.diff ~old_sources:(units base_src)
       ~new_sources:(units (replace base_src "x * 2" "x * 3"))
   with
  | Delta.Bodies [ cm ] ->
    Alcotest.(check string) "changed method" "compute" cm.Delta.cm_name;
    Alcotest.(check (option string)) "free function" None cm.Delta.cm_class
  | _ -> Alcotest.fail "body edit should be Bodies [compute]");
  (match
     Delta.diff ~old_sources:(units base_src)
       ~new_sources:
         (units (replace base_src "int compute(int x)" "int compute(int q)"))
   with
  | Delta.Structural -> ()
  | _ -> Alcotest.fail "signature edit should be Structural");
  (match
     Delta.diff ~old_sources:(units base_src)
       ~new_sources:(units (base_src ^ "\n"))
   with
  | Delta.Structural -> ()
  | _ -> Alcotest.fail "line-count change should be Structural");
  (* Unit lists that differ in file names are Structural. *)
  match
    Delta.diff ~old_sources:(units base_src)
      ~new_sources:[ ("other.tj", base_src) ]
  with
  | Delta.Structural -> ()
  | _ -> Alcotest.fail "renamed unit should be Structural"

(* ----- update tiers ----- *)

let seed_lines_of src = [ line_of src "print("; line_of src "int z = " ]

let test_update_noop () =
  let h = Engine.load [ (file, base_src) ] in
  let h', rep = Engine.update h [ (file, base_src) ] in
  Alcotest.check path_testable "noop path" Engine.Noop rep.Engine.up_path;
  Alcotest.(check int) "nothing relowered" 0 rep.Engine.up_relowered;
  Alcotest.(check bool) "same handle" true (h == h')

let test_update_patched () =
  let h = Engine.load [ (file, base_src) ] in
  let gen0 = Sdg.generation h.Engine.h_analysis.Engine.sdg in
  let edited = replace base_src "x * 2" "x * 3" in
  let h', rep = Engine.update h [ (file, edited) ] in
  Alcotest.check path_testable "patched path" Engine.Patched rep.Engine.up_path;
  Alcotest.(check int) "one body relowered" 1 rep.Engine.up_relowered;
  Alcotest.(check bool)
    "segments refrozen < total" true
    (rep.Engine.up_segments_refrozen < rep.Engine.up_segments_total);
  Alcotest.(check bool)
    "graph patched in place" true
    (h'.Engine.h_analysis.Engine.sdg == h.Engine.h_analysis.Engine.sdg);
  Alcotest.(check int)
    "generation bumped" (gen0 + 1)
    (Sdg.generation h'.Engine.h_analysis.Engine.sdg);
  check_equiv ~what:"patched" h' [ (file, edited) ] (seed_lines_of edited)

(* A chain of patches: each one must stay equivalent to a fresh load. *)
let test_update_patched_chain () =
  let h = Engine.load [ (file, base_src) ] in
  let v1 = replace base_src "x * 2" "x * 9" in
  let v2 = replace v1 "v + 0" "v + 1" in
  let v3 = replace v2 "\"\" + z" "\"z=\" + z" in
  let h1, r1 = Engine.update h [ (file, v1) ] in
  let h2, r2 = Engine.update h1 [ (file, v2) ] in
  let h3, r3 = Engine.update h2 [ (file, v3) ] in
  List.iter
    (fun (r : Engine.update_report) ->
      Alcotest.check path_testable "chain patched" Engine.Patched
        r.Engine.up_path)
    [ r1; r2; r3 ];
  check_equiv ~what:"patch chain" h3 [ (file, v3) ] (seed_lines_of v3)

(* Editing the entry method exercises the $clinit-prepend replay. *)
let test_update_patched_entry () =
  let h = Engine.load [ (file, base_src) ] in
  let edited = replace base_src "a.set(5)" "a.set(7)" in
  let h', rep = Engine.update h [ (file, edited) ] in
  Alcotest.check path_testable "entry edit patched" Engine.Patched
    rep.Engine.up_path;
  check_equiv ~what:"entry edit" h' [ (file, edited) ] (seed_lines_of edited)

let test_update_resolved () =
  let h = Engine.load [ (file, base_src) ] in
  (* Same line count, but a new allocation site: the constraint summary
     moves, so the solved points-to result cannot be re-keyed — but the
     affected cone (one method with almost no pointer flow) is small,
     so the bitset solver repairs it in place. *)
  let edited =
    replace base_src "void set(int v) { this.f = v + 0; }"
      "void set(int v) { A t = new A(); this.f = v; }"
  in
  let h', rep = Engine.update h [ (file, edited) ] in
  Alcotest.check path_testable "resolved path" Engine.Resolved_incremental
    rep.Engine.up_path;
  Alcotest.(check int) "one body relowered" 1 rep.Engine.up_relowered;
  check_equiv ~what:"resolved" h' [ (file, edited) ] (seed_lines_of edited)

(* The same summary-moving edit on a reference-solver handle has no
   provenance to retract — it must fall to a fresh re-solve. *)
let test_update_resolved_fresh_reference () =
  let h = Engine.load ~solver:`Reference [ (file, base_src) ] in
  let edited =
    replace base_src "void set(int v) { this.f = v + 0; }"
      "void set(int v) { A t = new A(); this.f = v; }"
  in
  let h', rep = Engine.update h [ (file, edited) ] in
  Alcotest.check path_testable "resolved-fresh path" Engine.Resolved_fresh
    rep.Engine.up_path;
  check_equiv ~what:"resolved-fresh" h' [ (file, edited) ]
    (seed_lines_of edited)

let test_update_rebuilt () =
  let h = Engine.load [ (file, base_src) ] in
  (* A field addition changes the class shell: no incremental tier
     admits it. *)
  let edited = replace base_src "int f;" "int f;\n  int f2;" in
  let h', rep = Engine.update h [ (file, edited) ] in
  Alcotest.check path_testable "rebuilt path" Engine.Rebuilt rep.Engine.up_path;
  Alcotest.(check int)
    "rebuild refreezes everything" rep.Engine.up_segments_total
    rep.Engine.up_segments_refrozen;
  check_equiv ~what:"rebuilt" h' [ (file, edited) ] (seed_lines_of edited)

let test_update_multifile () =
  let a_src =
    {|class A {
  int f;
  int get() { return this.f; }
  void set(int v) { this.f = v + 0; }
}
|}
  in
  let b_src =
    {|int compute(int x) {
  int y = x * 2;
  return y + 1;
}
void main(String[] args) {
  A a = new A();
  a.set(5);
  int z = compute(a.get());
  print("" + z);
}
|}
  in
  let h = Engine.load [ ("a.tj", a_src); ("b.tj", b_src) ] in
  let b2 = replace b_src "x * 2" "x * 5" in
  let h', rep = Engine.update h [ ("a.tj", a_src); ("b.tj", b2) ] in
  Alcotest.check path_testable "multifile patched" Engine.Patched
    rep.Engine.up_path;
  check_equiv ~what:"multifile" h'
    [ ("a.tj", a_src); ("b.tj", b2) ]
    [ line_of b2 "print("; line_of b2 "int z = " ];
  (* Edit in the class file too. *)
  let a2 = replace a_src "v + 0" "v + 0 + 0" in
  let h'', rep2 = Engine.update h' [ ("a.tj", a2); ("b.tj", b2) ] in
  Alcotest.check path_testable "class-method patched" Engine.Patched
    rep2.Engine.up_path;
  check_equiv ~what:"multifile-2" h''
    [ ("a.tj", a2); ("b.tj", b2) ]
    [ line_of b2 "print(" ]

(* A body edit whose interior is garbage: classified Bodies, but both
   the incremental path and the rebuild fallback hit the parse error.
   The update must raise cleanly and leave the input handle usable. *)
let test_update_invalid_body () =
  let h = Engine.load [ (file, base_src) ] in
  let line = line_of base_src "print(" in
  let before = Engine.slice_from_line h.Engine.h_analysis ~line Slicer.Thin in
  let edited = replace base_src "int y = x * 2;" "int y = @#$ !!;" in
  (match Engine.update h [ (file, edited) ] with
  | exception _ -> ()
  | _ -> Alcotest.fail "garbage body should not analyze");
  Alcotest.(check (list int))
    "input handle survives failed update" before
    (Engine.slice_from_line h.Engine.h_analysis ~line Slicer.Thin)

(* ----- provenance staleness across an update (witness replay) ----- *)

let test_witness_stale_after_update () =
  let h = Engine.load [ (file, base_src) ] in
  let a = h.Engine.h_analysis in
  let g = a.Engine.sdg in
  let line = line_of base_src "print(" in
  let seeds = Engine.seeds_at_line_exn a line in
  let prov = Slicer.create_provenance g in
  let members = Slicer.slice ~prov g ~seeds Slicer.Thin in
  let n = List.hd members in
  Alcotest.(check bool)
    "witness before update" true
    (Slicer.witness prov n <> None);
  let edited = replace base_src "x * 2" "x * 4" in
  let h', rep = Engine.update h [ (file, edited) ] in
  Alcotest.check path_testable "patched" Engine.Patched rep.Engine.up_path;
  (* The recorded walk predates the patch: generation-stamped records
     must refuse, not replay a path through retired nodes. *)
  Alcotest.(check bool)
    "witness stale after update" true
    (Slicer.witness prov n = None);
  Alcotest.(check bool)
    "distance stale after update" true
    (Slicer.distance prov n = None);
  (* A fresh recorded walk over the patched graph answers again. *)
  let a' = h'.Engine.h_analysis in
  let seeds' = Engine.seeds_at_line_exn a' line in
  let members' = Slicer.slice ~prov a'.Engine.sdg ~seeds:seeds' Slicer.Thin in
  Alcotest.(check bool)
    "witness answers after re-walk" true
    (Slicer.witness prov (List.hd members') <> None)

(* witness_from_line walks fresh provenance per query — it must answer
   identically on an updated handle and a fresh load. *)
let test_witness_from_line_after_update () =
  let h = Engine.load [ (file, base_src) ] in
  let edited = replace base_src "x * 2" "x * 6" in
  let h', _ = Engine.update h [ (file, edited) ] in
  let fresh = Engine.load [ (file, edited) ] in
  let seed_line = line_of edited "print(" in
  let target = line_of edited "int y = x * 6;" in
  let steps a =
    match
      Engine.witness_from_line a ~seed_line ~line:target Slicer.Thin
    with
    | None -> Alcotest.fail "producer line must be a member"
    | Some steps ->
      List.map
        (fun (s : Slicer.witness_step) ->
          let loc = Sdg.node_loc a.Engine.sdg s.Slicer.wit_node in
          (loc.Slice_ir.Loc.line, s.Slicer.wit_kind, s.Slicer.wit_dist))
        steps
  in
  Alcotest.(check bool)
    "witness parity on updated handle" true
    (steps h'.Engine.h_analysis = steps fresh.Engine.h_analysis)

(* ----- inspection metric on updated handles ----- *)

let test_inspect_after_update () =
  let h = Engine.load [ (file, base_src) ] in
  let edited = replace base_src "v + 0" "v + 2" in
  let h', rep = Engine.update h [ (file, edited) ] in
  Alcotest.check path_testable "patched" Engine.Patched rep.Engine.up_path;
  let fresh = Engine.load [ (file, edited) ] in
  let line = line_of edited "print(" in
  let desired = [ line_of edited "this.f = v + 2" ] in
  List.iter
    (fun mode ->
      let r a = Engine.inspect_from_line a ~line ~desired mode in
      let ra = r h'.Engine.h_analysis and rb = r fresh.Engine.h_analysis in
      let name what =
        Printf.sprintf "inspect %s (%s)" what (Slicer.mode_to_string mode)
      in
      Alcotest.(check int) (name "inspected") rb.Inspect.inspected
        ra.Inspect.inspected;
      Alcotest.(check bool) (name "found") rb.Inspect.found ra.Inspect.found;
      Alcotest.(check int) (name "slice_size") rb.Inspect.slice_size
        ra.Inspect.slice_size;
      Alcotest.(check (list (pair string int)))
        (name "order") rb.Inspect.order ra.Inspect.order;
      Alcotest.(check (list int))
        (name "order_depths") rb.Inspect.order_depths ra.Inspect.order_depths)
    all_modes

(* ----- scratch / provenance shrink roundtrip after updates ----- *)

let test_shrink_roundtrip_after_update () =
  let h = Engine.load [ (file, base_src) ] in
  let a = h.Engine.h_analysis in
  let g = a.Engine.sdg in
  let line = line_of base_src "print(" in
  let seeds = Engine.seeds_at_line_exn a line in
  let scratch = Slicer.create_scratch g in
  let prov = Slicer.create_provenance g in
  let before = Slicer.slice ~scratch ~prov g ~seeds Slicer.Thin in
  Alcotest.(check bool)
    "scratch sized for graph" true
    (Slicer.scratch_capacity scratch >= Sdg.num_nodes g);
  (* Mirror the daemon's eviction shrink: drop to a tiny high-water
     mark, then verify walks regrow and answer identically. *)
  Slicer.shrink_scratch scratch ~keep:1;
  Slicer.shrink_provenance prov ~keep:1;
  Alcotest.(check int) "scratch shrunk" 1 (Slicer.scratch_capacity scratch);
  Alcotest.(check int) "prov shrunk" 1 (Slicer.provenance_capacity prov);
  Alcotest.(check bool)
    "shrink drops recorded walk" true
    (Slicer.witness prov (List.hd before) = None);
  let again = Slicer.slice ~scratch ~prov g ~seeds Slicer.Thin in
  Alcotest.(check (list int)) "walk after shrink" before again;
  Alcotest.(check bool)
    "scratch regrew" true
    (Slicer.scratch_capacity scratch >= Sdg.num_nodes g);
  (* After an update the same resident buffers keep working against the
     patched (larger) graph. *)
  let edited = replace base_src "x * 2" "x * 8" in
  let h', _ = Engine.update h [ (file, edited) ] in
  let a' = h'.Engine.h_analysis in
  let seeds' = Engine.seeds_at_line_exn a' line in
  let after_update = Slicer.slice ~scratch ~prov a'.Engine.sdg ~seeds:seeds' Slicer.Thin in
  let fresh = Engine.load [ (file, edited) ] in
  let fa = fresh.Engine.h_analysis in
  let expect =
    Slicer.slice fa.Engine.sdg
      ~seeds:(Engine.seeds_at_line_exn fa line)
      Slicer.Thin
  in
  Alcotest.(check (list int))
    "patched-graph walk line parity"
    (Slicer.locs_to_line_numbers (Slicer.nodes_to_lines fa.Engine.sdg expect))
    (Slicer.locs_to_line_numbers
       (Slicer.nodes_to_lines a'.Engine.sdg after_update))

let suite =
  [ Alcotest.test_case "skeleton" `Quick test_skeleton;
    Alcotest.test_case "diff tiers" `Quick test_diff_tiers;
    Alcotest.test_case "update noop" `Quick test_update_noop;
    Alcotest.test_case "update patched" `Quick test_update_patched;
    Alcotest.test_case "update patched chain" `Quick test_update_patched_chain;
    Alcotest.test_case "update patched entry" `Quick test_update_patched_entry;
    Alcotest.test_case "update resolved" `Quick test_update_resolved;
    Alcotest.test_case "update resolved-fresh (reference)" `Quick
      test_update_resolved_fresh_reference;
    Alcotest.test_case "update rebuilt" `Quick test_update_rebuilt;
    Alcotest.test_case "update multifile" `Quick test_update_multifile;
    Alcotest.test_case "invalid body edit" `Quick test_update_invalid_body;
    Alcotest.test_case "witness stale after update" `Quick
      test_witness_stale_after_update;
    Alcotest.test_case "witness parity after update" `Quick
      test_witness_from_line_after_update;
    Alcotest.test_case "inspect after update" `Quick test_inspect_after_update;
    Alcotest.test_case "shrink roundtrip after update" `Quick
      test_shrink_roundtrip_after_update ]
