(* SDG construction tests: edge classification (the heart of thin slicing),
   heap dependence wiring, parameter wiring, and control dependences. *)

open Slice_core
open Slice_workloads
open Helpers

let edges_of_kind (g : Sdg.t) (n : Sdg.node) (k : Sdg.edge_kind) =
  List.filter (fun (_, kind) -> kind = k) (Sdg.deps g n)

let node_line g n = (Sdg.node_loc g n).Slice_ir.Loc.line

(* Figure 2/3: for the seed v = z.f,
   - the producer-heap edge goes to the store w.f = y,
   - the base-pointer edge goes to the def of z,
   - the control edge goes to the conditional. *)
let test_fig2_edge_classes () =
  let src = Paper_figures.fig2 in
  let a = analysis src in
  let g = a.Engine.sdg in
  let seed_line = line_of ~src ~pattern:Paper_figures.fig2_seed in
  let seeds = Engine.seeds_at_line_exn ~filter:Engine.Only_loads a seed_line in
  Alcotest.(check int) "one load node" 1 (List.length seeds);
  let seed = List.hd seeds in
  let heap = edges_of_kind g seed Sdg.Producer_heap in
  Alcotest.(check int) "one heap producer" 1 (List.length heap);
  Alcotest.(check int) "heap producer is the store"
    (line_of ~src ~pattern:"w.f = y;")
    (node_line g (fst (List.hd heap)));
  let base = edges_of_kind g seed Sdg.Base_pointer in
  Alcotest.(check int) "one base pointer" 1 (List.length base);
  Alcotest.(check int) "base pointer is z's def"
    (line_of ~src ~pattern:"A z = x;")
    (node_line g (fst (List.hd base)));
  let ctl = edges_of_kind g seed Sdg.Control in
  Alcotest.(check int) "one control dep" 1 (List.length ctl);
  Alcotest.(check int) "control dep is the conditional"
    (line_of ~src ~pattern:"if (w == z)")
    (node_line g (fst (List.hd ctl)))

let test_param_and_return_wiring () =
  let src =
    {|int inc(int x) { return x + 1; }
void main(String[] args) {
  int a = 41;
  int b = inc(a);
  print(itoa(b));
}|}
  in
  let a = analysis src in
  let g = a.Engine.sdg in
  (* the print's argument chain must reach 41 through the call *)
  let seed_line = line_of ~src ~pattern:"print(itoa(b));" in
  let lines =
    Slicer.slice_line_numbers g
      ~seeds:(Engine.seeds_at_line_exn a seed_line)
      Slicer.Thin
  in
  Alcotest.(check bool) "return stmt in slice" true
    (List.mem (line_of ~src ~pattern:"return x + 1;") lines);
  Alcotest.(check bool) "actual arg def in slice" true
    (List.mem (line_of ~src ~pattern:"int a = 41;") lines)

let test_heap_field_dependence () =
  let src =
    {|class Cell { int v; }
void main(String[] args) {
  Cell c = new Cell();
  c.v = 7;
  Cell d = new Cell();
  d.v = 8;
  print(itoa(c.v));
}|}
  in
  let a = analysis src in
  let g = a.Engine.sdg in
  let seed_line = line_of ~src ~pattern:"print(itoa(c.v));" in
  let lines =
    Slicer.slice_line_numbers g
      ~seeds:(Engine.seeds_at_line_exn a seed_line)
      Slicer.Thin
  in
  Alcotest.(check bool) "store to c included" true
    (List.mem (line_of ~src ~pattern:"c.v = 7;") lines);
  (* allocation-site sensitivity keeps the other cell's store out *)
  Alcotest.(check bool) "store to d excluded" false
    (List.mem (line_of ~src ~pattern:"d.v = 8;") lines)

let test_array_length_dependence () =
  let src =
    {|void main(String[] args) {
  int n = 3 + 4;
  int[] a = new int[n];
  print(itoa(a.length));
}|}
  in
  let a = analysis src in
  let g = a.Engine.sdg in
  let seed_line = line_of ~src ~pattern:"print(itoa(a.length));" in
  let lines =
    Slicer.slice_line_numbers g
      ~seeds:(Engine.seeds_at_line_exn a seed_line)
      Slicer.Thin
  in
  Alcotest.(check bool) "allocation in slice" true
    (List.mem (line_of ~src ~pattern:"new int[n]") lines);
  Alcotest.(check bool) "length source in slice" true
    (List.mem (line_of ~src ~pattern:"int n = 3 + 4;") lines)

let test_control_dependences () =
  let src =
    {|void main(String[] args) {
  int x = parseInt(args[0]);
  int y = 0;
  if (x > 0) {
    y = 1;
  }
  print(itoa(y));
}|}
  in
  let a = analysis src in
  let g = a.Engine.sdg in
  let assign_line = line_of ~src ~pattern:"y = 1;" in
  let nodes = Sdg.nodes_at_line g ~file:None ~line:assign_line in
  let has_ctl_to_if =
    List.exists
      (fun n ->
        List.exists
          (fun (dep, kind) ->
            kind = Sdg.Control
            && node_line g dep = line_of ~src ~pattern:"if (x > 0)")
          (Sdg.deps g n))
      nodes
  in
  Alcotest.(check bool) "y=1 control-dependent on the if" true has_ctl_to_if

let test_entry_control_to_call_site () =
  let src =
    {|void helper() { print("h"); }
void main(String[] args) { helper(); }|}
  in
  let a = analysis src in
  let g = a.Engine.sdg in
  (* the print inside helper is control-dependent on main's call site *)
  let print_line = line_of ~src ~pattern:{|print("h");|} in
  let call_line = line_of ~src ~pattern:"{ helper(); }" in
  let nodes = Sdg.nodes_at_line g ~file:None ~line:print_line in
  let ok =
    List.exists
      (fun n ->
        List.exists
          (fun (dep, kind) -> kind = Sdg.Control && node_line g dep = call_line)
          (Sdg.deps g n))
      nodes
  in
  Alcotest.(check bool) "callee governed by call site" true ok

let test_scalar_statement_count () =
  let a = analysis Paper_figures.fig2 in
  let g = a.Engine.sdg in
  Alcotest.(check bool) "some statements" true (Sdg.num_scalar_statements g > 5);
  Alcotest.(check bool) "nodes >= statements" true
    (Sdg.num_nodes g >= Sdg.num_scalar_statements g)

let test_dot_export () =
  let a = analysis Paper_figures.fig2 in
  let dot = Sdg.to_dot a.Engine.sdg in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph")

(* Freeze/CSR compaction: the shims reproduce the pre-freeze adjacency
   (contents AND order) exactly, the iterators agree with the shims, edge
   counts are preserved, and freezing is idempotent. *)
let test_freeze_preserves_adjacency () =
  let a = Engine.analyze ~freeze:false (load Paper_figures.fig1) in
  let g = a.Engine.sdg in
  Alcotest.(check bool) "mutable after build" false (Sdg.is_frozen g);
  let n = Sdg.num_nodes g in
  let deps_before = Array.init n (Sdg.deps g) in
  let uses_before = Array.init n (Sdg.uses g) in
  let edges_before = Sdg.num_edges g in
  Sdg.freeze g;
  Alcotest.(check bool) "frozen" true (Sdg.is_frozen g);
  Alcotest.(check int) "edge count preserved" edges_before (Sdg.num_edges g);
  let collect iter i =
    let acc = ref [] in
    iter g i (fun d k -> acc := (d, k) :: !acc);
    List.rev !acc
  in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "deps shim row identical" true
      (Sdg.deps g i = deps_before.(i));
    Alcotest.(check bool) "uses shim row identical" true
      (Sdg.uses g i = uses_before.(i));
    Alcotest.(check bool) "deps_iter agrees with shim" true
      (collect Sdg.deps_iter i = deps_before.(i));
    Alcotest.(check bool) "uses_iter agrees with shim" true
      (collect Sdg.uses_iter i = uses_before.(i))
  done;
  (* idempotent: a second freeze changes nothing *)
  Sdg.freeze g;
  Alcotest.(check int) "still same edges" edges_before (Sdg.num_edges g);
  Alcotest.(check bool) "row survives refreeze" true
    (n = 0 || Sdg.deps g (n - 1) = deps_before.(n - 1))

let test_freeze_counts_csr_telemetry () =
  let (), snap =
    Slice_obs.scoped (fun () ->
        let a = Engine.analyze ~freeze:false (load Paper_figures.fig2) in
        Sdg.freeze a.Engine.sdg)
  in
  let counter k = List.assoc_opt k snap.Slice_obs.snap_counters in
  (match counter "sdg.csr_nodes" with
  | Some v -> Alcotest.(check bool) "csr_nodes > 0" true (v > 0)
  | None -> Alcotest.fail "no sdg.csr_nodes counter");
  (match counter "sdg.csr_edges" with
  | Some v -> Alcotest.(check bool) "csr_edges > 0" true (v > 0)
  | None -> Alcotest.fail "no sdg.csr_edges counter");
  Alcotest.(check bool) "sdg.freeze span recorded" true
    (List.mem_assoc "sdg.freeze" (Slice_obs.span_totals snap))

(* Regression for the heap-counter skew: [sdg.heap_pairs_emitted] must
   equal the number of distinct Producer_heap edges in the graph (the
   bump and the [add_edge] call now share one guard over the
   deduplicated bitset rows), and [considered >= emitted] always. *)
let test_heap_counters_exact () =
  List.iter
    (fun (name, src) ->
      let a, snap = Slice_obs.scoped (fun () -> analysis src) in
      let g = a.Engine.sdg in
      let heap_edges = ref 0 in
      for n = 0 to Sdg.num_nodes g - 1 do
        Sdg.deps_iter g n (fun _ k ->
            if k = Sdg.Producer_heap then incr heap_edges)
      done;
      let counter k =
        match List.assoc_opt k snap.Slice_obs.snap_counters with
        | Some v -> v
        | None -> 0
      in
      let emitted = counter "sdg.heap_pairs_emitted" in
      let considered = counter "sdg.heap_pairs_considered" in
      Alcotest.(check int)
        (name ^ ": emitted == distinct Producer_heap edges")
        !heap_edges emitted;
      Alcotest.(check bool)
        (name ^ ": considered >= emitted")
        true (considered >= emitted))
    [ ("fig1", Paper_figures.fig1); ("fig2", Paper_figures.fig2);
      ("nanoxml", Prog_nanoxml.base); ("javac", Prog_javac.base) ]

let suite =
  [ Alcotest.test_case "fig2 edge classes" `Quick test_fig2_edge_classes;
    Alcotest.test_case "param/return wiring" `Quick test_param_and_return_wiring;
    Alcotest.test_case "heap field dependence" `Quick test_heap_field_dependence;
    Alcotest.test_case "array length dependence" `Quick test_array_length_dependence;
    Alcotest.test_case "control dependences" `Quick test_control_dependences;
    Alcotest.test_case "entry control to call site" `Quick test_entry_control_to_call_site;
    Alcotest.test_case "scalar statement count" `Quick test_scalar_statement_count;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "freeze preserves adjacency" `Quick
      test_freeze_preserves_adjacency;
    Alcotest.test_case "freeze csr telemetry" `Quick
      test_freeze_counts_csr_telemetry;
    Alcotest.test_case "heap counters exact" `Quick test_heap_counters_exact ]
