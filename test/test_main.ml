let () =
  Alcotest.run "thinslice"
    [ ("bits", Test_bits.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("typecheck", Test_typecheck.suite);
      ("ir", Test_ir.suite);
      ("ssa", Test_ssa.suite);
      ("interp", Test_interp.suite);
      ("pta", Test_pta.suite);
      ("modref", Test_modref.suite);
      ("sdg", Test_sdg.suite);
      ("slicer", Test_slicer.suite);
      ("expansion", Test_expansion.suite);
      ("explain", Test_explain.suite);
      ("tabulation", Test_tabulation.suite);
      ("forward", Test_forward.suite);
      ("dynamic", Test_dynamic.suite);
      ("tasks", Test_tasks.suite);
      ("obs", Test_obs.suite);
      ("properties", Test_props.suite);
      ("fuzz", Test_fuzz.suite);
      ("incremental", Test_incremental.suite);
      ("incremental-solver", Test_incremental_solver.suite);
      ("cli", Test_cli.suite);
      ("serve", Test_serve.suite);
      ("scale", Test_scale.suite) ]
