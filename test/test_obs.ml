(* Telemetry-layer tests: span nesting, counter monotonicity, JSON
   round-trips, and the thinslice --stats-json CLI contract. *)

open Slice_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- spans ---------------------------------------------------------- *)

let test_span_nesting () =
  reset ();
  set_enabled true;
  let r =
    span "outer" (fun () ->
        span "inner-a" (fun () -> ignore (Sys.opaque_identity 1));
        span "inner-b" (fun () -> ignore (Sys.opaque_identity 2));
        42)
  in
  check_int "span returns the body's value" 42 r;
  let s = snapshot () in
  check_int "one root span" 1 (List.length s.snap_spans);
  let outer = List.hd s.snap_spans in
  check_string "root name" "outer" outer.sp_name;
  check_int "two children" 2 (List.length outer.sp_children);
  Alcotest.(check (list string))
    "children in order" [ "inner-a"; "inner-b" ]
    (List.map (fun c -> c.sp_name) outer.sp_children);
  check_bool "outer wall >= child walls" true
    (outer.sp_wall
    >= List.fold_left (fun acc c -> acc +. c.sp_wall) 0. outer.sp_children
       -. 1e-9);
  List.iter
    (fun c -> check_bool "child wall >= 0" true (c.sp_wall >= 0.))
    outer.sp_children

let test_span_exception_safe () =
  reset ();
  set_enabled true;
  (try span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  let s = snapshot () in
  check_int "span closed despite raise" 1 (List.length s.snap_spans);
  check_string "name" "boom" (List.hd s.snap_spans).sp_name;
  (* the stack is clean: a new span is a root, not a child of "boom" *)
  span "after" (fun () -> ());
  let s = snapshot () in
  check_int "two roots" 2 (List.length s.snap_spans)

let test_span_disabled () =
  reset ();
  set_enabled false;
  let r = span "invisible" (fun () -> 7) in
  set_enabled true;
  check_int "body still runs" 7 r;
  check_int "nothing recorded" 0 (List.length (snapshot ()).snap_spans)

(* reset_spans is the serve daemon's per-request rotation: completed
   spans go, counters and any still-open span survive. *)
let test_reset_spans () =
  reset ();
  set_enabled true;
  let c = counter "test.reset_spans" in
  bump c;
  span "done-1" (fun () -> ());
  span "done-2" (fun () -> ());
  check_int "two completed spans" 2 (List.length (snapshot ()).snap_spans);
  reset_spans ();
  check_int "completed spans dropped" 0
    (List.length (snapshot ()).snap_spans);
  check_int "counters survive" 1 (counter_value "test.reset_spans");
  (* rotating under an open span must not corrupt the stack: the open
     span still closes and lands as a root afterwards *)
  span "open" (fun () ->
      span "inner" (fun () -> ());
      reset_spans ());
  let roots = (snapshot ()).snap_spans in
  check_int "open span survives the rotation" 1 (List.length roots);
  check_string "and closes normally" "open" (List.hd roots).sp_name

let test_span_totals () =
  reset ();
  set_enabled true;
  span "phase" (fun () -> ());
  span "phase" (fun () -> ());
  let totals = span_totals (snapshot ()) in
  check_int "aggregated by name" 1 (List.length totals);
  check_string "name" "phase" (fst (List.hd totals))

(* --- counters ------------------------------------------------------- *)

let test_counter_monotonic () =
  reset ();
  let c = counter "test.monotonic" in
  let v () = counter_value "test.monotonic" in
  check_int "zero after reset" 0 (v ());
  bump c;
  bump c;
  bump c;
  check_int "three bumps" 3 (v ());
  let before = v () in
  add c 5;
  check_bool "monotonically increasing" true (v () > before);
  check_int "add" 8 (v ());
  (* interning: same name -> same handle *)
  let c' = counter "test.monotonic" in
  check_bool "interned" true (c == c');
  (* reset zeroes in place, handle stays live *)
  reset ();
  check_int "reset zeroes" 0 (v ());
  bump c;
  check_int "handle survives reset" 1 (v ())

let test_gauge_and_histogram () =
  reset ();
  let g = gauge "test.peak" in
  max_gauge g 3.;
  max_gauge g 1.;
  Alcotest.(check (float 1e-9)) "max kept" 3. (gauge_value "test.peak");
  let h = histogram "test.sizes" in
  observe h 10.;
  observe h 2.;
  observe h 4.;
  let count, sum, mn, mx = histogram_stats h in
  check_int "count" 3 count;
  Alcotest.(check (float 1e-9)) "sum" 16. sum;
  Alcotest.(check (float 1e-9)) "min" 2. mn;
  Alcotest.(check (float 1e-9)) "max" 10. mx

(* --- histogram quantile math ---------------------------------------- *)

(* Pin the bucket geometry: 4 sub-buckets per octave over 2^-30..2^30
   plus underflow/overflow, representative = bucket upper bound, so any
   estimate is within a factor of 2^(1/4) of the exact value. *)
let test_bucket_geometry () =
  check_int "bucket count" 242 hist_buckets;
  check_int "zero underflows" 0 (bucket_of_value 0.);
  check_int "negatives underflow" 0 (bucket_of_value (-3.));
  check_int "2^-30 underflows" 0 (bucket_of_value (ldexp 1.0 (-30)));
  Alcotest.(check (float 0.)) "underflow representative" 0. (bucket_value 0);
  check_int "huge values overflow" (hist_buckets - 1) (bucket_of_value 1e12);
  (* round-trip bound: v <= representative <= v * 2^(1/4) *)
  let q = Float.exp2 0.25 in
  List.iter
    (fun v ->
      let r = bucket_value (bucket_of_value v) in
      check_bool
        (Printf.sprintf "representative of %g bounds it (got %g)" v r)
        true
        (r >= v -. 1e-12 && r <= (v *. q) +. 1e-9))
    [ 1e-6; 0.003; 0.5; 1.0; 1.5; 2.0; 42.; 1000.; 1e6 ];
  (* monotone, and representative of bucket i is the lower bound of i+1 *)
  for i = 1 to hist_buckets - 2 do
    check_bool "bucket representatives strictly increase" true
      (bucket_value i < bucket_value (i + 1))
  done

let test_percentile_pinned () =
  (* direct percentile math on a hand-built bucket array *)
  let buckets = Array.make hist_buckets 0 in
  let b1 = bucket_of_value 1.0 and b1000 = bucket_of_value 1000. in
  buckets.(b1) <- 8;
  buckets.(b1000) <- 2;
  let p q = percentile ~count:10 ~buckets q in
  Alcotest.(check (float 1e-9)) "p50 lands in the 1.0 bucket"
    (bucket_value b1) (p 0.50);
  Alcotest.(check (float 1e-9)) "p80 still in the 1.0 bucket"
    (bucket_value b1) (p 0.80);
  Alcotest.(check (float 1e-9)) "p95 reaches the 1000 bucket"
    (bucket_value b1000) (p 0.95);
  Alcotest.(check (float 1e-9)) "p0 clamps to the first occupied bucket"
    (bucket_value b1) (p 0.);
  Alcotest.(check (float 1e-9)) "empty histogram reports 0" 0.
    (percentile ~count:0 ~buckets:(Array.make hist_buckets 0) 0.5);
  (* the 19% accuracy contract on a live histogram *)
  reset ();
  let h = histogram "quant.test" in
  for _ = 1 to 9 do observe h 7. done;
  observe h 512.;
  let est = histogram_percentile h 0.5 in
  check_bool "p50 estimate within one bucket of the exact median" true
    (est >= 7. -. 1e-9 && est <= 7. *. Float.exp2 0.25 +. 1e-9);
  (* percentiles survive the snapshot *)
  let s = snapshot () in
  Alcotest.(check (float 1e-9)) "snapshot percentile agrees" est
    (snapshot_percentile s "quant.test" 0.5);
  check_bool "snapshot carries bucket arrays" true
    (List.mem_assoc "quant.test" s.snap_hist_buckets)

(* --- span args ------------------------------------------------------- *)

let test_span_args () =
  reset ();
  set_enabled true;
  let r =
    span ~args:[ ("mode", "thin") ] "q" (fun () ->
        add_span_arg "slice_lines" "12";
        5)
  in
  check_int "body value" 5 r;
  let s = snapshot () in
  let sp = List.hd s.snap_spans in
  Alcotest.(check (list (pair string string)))
    "open args then appended args, in order"
    [ ("mode", "thin"); ("slice_lines", "12") ]
    sp.sp_args;
  (* args ride along in the span JSON *)
  let j = snapshot_to_json s in
  (match Json.member "spans" j with
  | Some (Json.List (Json.Obj kvs :: _)) -> (
    match List.assoc_opt "args" kvs with
    | Some (Json.Obj akvs) ->
      check_bool "args serialized" true
        (List.assoc_opt "mode" akvs = Some (Json.Str "thin"))
    | _ -> Alcotest.fail "span JSON has no args object")
  | _ -> Alcotest.fail "spans missing");
  (* add_span_arg outside any open span is a no-op, not an error *)
  add_span_arg "orphan" "1";
  (* spans without args omit the key *)
  reset ();
  span "bare" (fun () -> ());
  match Json.member "spans" (snapshot_to_json (snapshot ())) with
  | Some (Json.List (Json.Obj kvs :: _)) ->
    check_bool "no args key on arg-less spans" false (List.mem_assoc "args" kvs)
  | _ -> Alcotest.fail "spans missing"

(* --- JSON ----------------------------------------------------------- *)

let rec json_equal (a : Json.t) (b : Json.t) : bool =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> abs_float (x -. y) < 1e-9
  | Json.Str x, Json.Str y -> String.equal x y
  | Json.List x, Json.List y ->
    List.length x = List.length y && List.for_all2 json_equal x y
  | Json.Obj x, Json.Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
         x y
  | _ -> false

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("name", Json.Str "weird \"quoted\"\n\ttext");
        ("count", Json.Int 42);
        ("negative", Json.Int (-17));
        ("pi", Json.Float 3.25);
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("items", Json.List [ Json.Int 1; Json.Str "two"; Json.Bool false ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []);
                              ("empty_obj", Json.Obj []) ]) ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok doc' -> check_bool "round-trip preserves structure" true (json_equal doc doc')

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "{} junk" ]

let test_snapshot_json_shape () =
  reset ();
  set_enabled true;
  let c = counter "shape.counter" in
  bump c;
  span "shape.span" (fun () -> ());
  let j = snapshot_to_json (snapshot ()) in
  (* round-trips through text *)
  let j =
    match Json.of_string (Json.to_string j) with
    | Ok v -> v
    | Error e -> Alcotest.failf "snapshot JSON unparseable: %s" e
  in
  let mem k = Json.member k j <> None in
  List.iter
    (fun k -> check_bool ("has key " ^ k) true (mem k))
    [ "counters"; "gauges"; "histograms"; "spans"; "phase_wall_s" ];
  (match Json.member "counters" j with
  | Some (Json.Obj kvs) ->
    check_bool "counter serialized" true
      (List.assoc_opt "shape.counter" kvs = Some (Json.Int 1))
  | _ -> Alcotest.fail "counters is not an object");
  match Json.member "spans" j with
  | Some (Json.List (Json.Obj kvs :: _)) ->
    List.iter
      (fun k -> check_bool ("span has " ^ k) true (List.mem_assoc k kvs))
      [ "name"; "start_s"; "wall_s"; "minor_words"; "children" ]
  | _ -> Alcotest.fail "spans is not a non-empty list of objects"

(* --- scoped (per-task) telemetry isolation -------------------------- *)

(* The counter-accumulation regression behind BENCH_results: counters are
   process-global, so before [scoped] the N-th task of a bench run
   reported the cumulative counters of tasks 1..N.  Two runs of the SAME
   measured task must now report IDENTICAL counter deltas. *)
let test_scoped_isolates_identical_tasks () =
  reset ();
  set_enabled true;
  let task () =
    let a =
      Slice_core.Engine.of_source ~file:"iso.tj"
        "void main(String[] args) {\n\
        \  String s = args[0];\n\
        \  String t = s;\n\
        \  print(t);\n\
         }\n"
    in
    Slice_core.Engine.slice_from_line a ~line:4 Slice_core.Slicer.Thin
  in
  let r1, snap1 = scoped task in
  let r2, snap2 = scoped task in
  check_bool "same slice" true (r1 = r2);
  Alcotest.(check (list (pair string int)))
    "identical counter deltas" snap1.snap_counters snap2.snap_counters;
  (* the regression shape: without isolation the second run's cumulative
     counters would be strictly larger *)
  check_bool "non-trivial task" true
    (List.exists (fun (_, v) -> v > 0) snap1.snap_counters)

let test_scoped_merges_back () =
  reset ();
  set_enabled true;
  let c = counter "scoped.counter" in
  let g = gauge "scoped.peak" in
  add c 3;
  max_gauge g 5.;
  span "outside-before" (fun () -> ());
  let (), inner =
    scoped (fun () ->
        add c 4;
        max_gauge g 2.;
        span "inside" (fun () -> ()))
  in
  (* the inner snapshot sees only what the scope recorded *)
  check_int "inner counter is the delta" 4
    (List.assoc "scoped.counter" inner.snap_counters);
  Alcotest.(check (float 1e-9))
    "inner gauge is the scope's own peak" 2.
    (List.assoc "scoped.peak" inner.snap_gauges);
  Alcotest.(check (list string))
    "inner spans only" [ "inside" ]
    (List.map (fun s -> s.sp_name) inner.snap_spans);
  (* ...and the cumulative registry is restored+merged *)
  check_int "counters summed back" 7 (counter_value "scoped.counter");
  Alcotest.(check (float 1e-9)) "gauge keeps the overall max" 5.
    (gauge_value "scoped.peak");
  let outer = snapshot () in
  Alcotest.(check (list string))
    "spans appended in order" [ "outside-before"; "inside" ]
    (List.map (fun s -> s.sp_name) outer.snap_spans)

let test_scoped_exception_safe () =
  reset ();
  set_enabled true;
  let c = counter "scoped.exn" in
  add c 2;
  (try
     ignore
       (scoped (fun () ->
            add c 10;
            failwith "expected"))
   with Failure _ -> ());
  check_int "merged back despite raise" 12 (counter_value "scoped.exn");
  (* registry still usable *)
  let _, snap = scoped (fun () -> add c 1) in
  check_int "clean scope after exception" 1
    (List.assoc "scoped.exn" snap.snap_counters)

(* --- per-domain registries and merge-back --------------------------- *)

(* A worker domain's bumps land in ITS registry, invisible to the parent
   until the parent folds the worker's snapshot in with [merge_snapshot].
   This is the contract the parallel batch executor is built on. *)
let test_domain_isolation_and_merge () =
  reset ();
  set_enabled true;
  let c = counter "dom.counter" in
  let g = gauge "dom.peak" in
  let h = histogram "dom.hist" in
  bump c;
  set_gauge g 5.;
  observe h 1.;
  let worker () =
    (* fresh registry: the parent's bump is not visible here *)
    let before = counter_value "dom.counter" in
    add c 10;
    max_gauge g 9.;
    observe h 3.;
    span "dom.worker_span" (fun () -> ());
    (before, snapshot ())
  in
  let d = Domain.spawn worker in
  let before_in_worker, worker_snap = Domain.join d in
  check_int "worker starts from an empty registry" 0 before_in_worker;
  (* nothing leaked into the parent yet *)
  check_int "parent unchanged before merge" 1 (counter_value "dom.counter");
  check_bool "no worker span before merge" true
    (List.for_all
       (fun sp -> sp.sp_name <> "dom.worker_span")
       (snapshot ()).snap_spans);
  merge_snapshot worker_snap;
  check_int "counters summed" 11 (counter_value "dom.counter");
  check_bool "peak gauge maxed" true (gauge_value "dom.peak" = 9.);
  let count, sum, mn, mx = histogram_stats h in
  check_int "histogram counts combined" 2 count;
  check_bool "histogram sum combined" true (abs_float (sum -. 4.) < 1e-9);
  check_bool "histogram min/max combined" true (mn = 1. && mx = 3.);
  check_bool "worker span appended after merge" true
    (List.exists
       (fun sp -> sp.sp_name = "dom.worker_span")
       (snapshot ()).snap_spans)

(* Merging inside an open span files the worker spans as its children —
   how a parallel phase shows up as one node of the trace tree. *)
let test_merge_under_open_span () =
  reset ();
  set_enabled true;
  let d = Domain.spawn (fun () -> span "child_work" (fun () -> ()); snapshot ()) in
  let worker_snap = Domain.join d in
  span "parallel_phase" (fun () -> merge_snapshot worker_snap);
  let s = snapshot () in
  check_int "one root" 1 (List.length s.snap_spans);
  let root = List.hd s.snap_spans in
  check_string "root is the open span" "parallel_phase" root.sp_name;
  Alcotest.(check (list string))
    "worker span became its child" [ "child_work" ]
    (List.map (fun c -> c.sp_name) root.sp_children)

(* --- batch spans are distinct phases -------------------------------- *)

(* Regression: [forward_slice_batch] used to record under
   "slicer.slice_batch", folding forward-batch walks into the
   backward-batch phase total.  The two directions must be separate rows
   of the per-phase wall-time table. *)
let test_batch_span_names_distinct () =
  reset ();
  set_enabled true;
  let a =
    Slice_core.Engine.of_source ~file:"span_demo.tj"
      "void main(String[] args) {\n\
      \  int x = 1 + 2;\n\
      \  print(itoa(x));\n\
       }\n"
  in
  let seeds = Slice_core.Engine.seeds_at_line_exn a 3 in
  let _, snap =
    scoped (fun () ->
        ignore
          (Slice_core.Slicer.slice_batch a.Slice_core.Engine.sdg
             ~seeds_list:[ seeds ] Slice_core.Slicer.Thin);
        ignore
          (Slice_core.Slicer.forward_slice_batch a.Slice_core.Engine.sdg
             ~seeds_list:[ seeds ] Slice_core.Slicer.Thin))
  in
  let names = List.map fst (span_totals snap) in
  check_bool "backward batch span present" true
    (List.mem "slicer.slice_batch" names);
  check_bool "forward batch span present" true
    (List.mem "slicer.forward_batch" names);
  (* span_totals aggregates by name: two distinct rows, not one *)
  check_int "two distinct batch phases" 2
    (List.length
       (List.filter
          (fun n -> n = "slicer.slice_batch" || n = "slicer.forward_batch")
          names))

(* --- the thinslice --stats-json CLI contract ------------------------ *)

let demo_program =
  "void main(String[] args) {\n\
  \  String s = args[0];\n\
  \  print(s);\n\
   }\n"

let exe_path = Filename.concat (Filename.concat ".." "bin") "thinslice.exe"

let test_cli_stats_json () =
  if not (Sys.file_exists exe_path) then
    Alcotest.skip ()
  else begin
    let src_file = Filename.temp_file "obs_cli" ".tj" in
    let json_file = Filename.temp_file "obs_cli" ".json" in
    let oc = open_out src_file in
    output_string oc demo_program;
    close_out oc;
    let cmd =
      Printf.sprintf "%s slice %s --line 3 --quiet --stats-json %s > %s 2>&1"
        (Filename.quote exe_path) (Filename.quote src_file)
        (Filename.quote json_file)
        (Filename.quote Filename.null)
    in
    let rc = Sys.command cmd in
    check_int "thinslice slice --stats-json exits 0" 0 rc;
    let ic = open_in_bin json_file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove src_file;
    Sys.remove json_file;
    check_bool "artifact non-empty" true (String.length text > 0);
    let j =
      match Json.of_string text with
      | Ok v -> v
      | Error e -> Alcotest.failf "--stats-json output unparseable: %s" e
    in
    check_bool "schema tag" true
      (Json.member "schema" j
      = Some (Json.Str Slice_core.Engine.stats_schema_version));
    List.iter
      (fun k ->
        check_bool ("documented key " ^ k) true (Json.member k j <> None))
      [ "schema"; "program"; "sdg.edges_by_kind"; "telemetry" ];
    (match Json.member "program" j with
    | Some p ->
      List.iter
        (fun k ->
          check_bool ("program key " ^ k) true (Json.member k p <> None))
        [ "classes"; "methods"; "ir_statements"; "call_graph_nodes";
          "sdg_statements"; "sdg_nodes"; "abstract_objects" ]
    | None -> Alcotest.fail "no program object");
    match Json.member "telemetry" j with
    | Some t -> (
      match Json.member "counters" t with
      | Some (Json.Obj kvs) ->
        List.iter
          (fun k ->
            match List.assoc_opt k kvs with
            | Some (Json.Int v) ->
              check_bool (k ^ " nonzero") true (v > 0)
            | _ -> Alcotest.failf "missing counter %s" k)
          [ "pta.worklist_iterations"; "sdg.edges"; "slicer.nodes_visited" ]
      | _ -> Alcotest.fail "telemetry.counters is not an object")
    | None -> Alcotest.fail "no telemetry object"
  end

(* --- thinslice batch --jobs byte-identity --------------------------- *)

(* The CLI contract of the parallel executor: `thinslice batch --jobs 4`
   must print BYTE-identical output to `--jobs 1` — sharding is invisible
   to the user. *)
let test_cli_jobs_byte_identity () =
  if not (Sys.file_exists exe_path) then Alcotest.skip ()
  else begin
    let src = Slice_workloads.Prog_nanoxml.base in
    (* pick seed lines in-process (every 20th line with a statement) *)
    let a = Slice_core.Engine.of_source ~file:"nanoxml.tj" src in
    let n_lines = List.length (String.split_on_char '\n' src) in
    let lines = ref [] in
    for l = n_lines downto 1 do
      if l mod 20 = 0 && Slice_core.Engine.seeds_at_line a l <> [] then
        lines := l :: !lines
    done;
    check_bool "found several seed lines" true (List.length !lines >= 3);
    let src_file = Filename.temp_file "obs_jobs" ".tj" in
    let oc = open_out src_file in
    output_string oc src;
    close_out oc;
    let run jobs out =
      let cmd =
        Printf.sprintf "%s batch %s %s --mode trad --jobs %d --quiet > %s 2>&1"
          (Filename.quote exe_path) (Filename.quote src_file)
          (String.concat " "
             (List.map (fun l -> Printf.sprintf "--line %d" l) !lines))
          jobs (Filename.quote out)
      in
      check_int (Printf.sprintf "batch --jobs %d exits 0" jobs) 0
        (Sys.command cmd)
    in
    let read path =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    let out1 = Filename.temp_file "obs_jobs1" ".out" in
    let out4 = Filename.temp_file "obs_jobs4" ".out" in
    run 1 out1;
    run 4 out4;
    let t1 = read out1 and t4 = read out4 in
    Sys.remove src_file;
    Sys.remove out1;
    Sys.remove out4;
    check_bool "non-empty output" true (String.length t1 > 0);
    check_string "--jobs 4 output byte-identical to --jobs 1" t1 t4
  end

(* --- thinslice batch --pta byte-identity ---------------------------- *)

(* The CLI contract of the solver A/B: `thinslice batch --pta reference`
   must print BYTE-identical output to `--pta bitset` — the solver swap
   is invisible to the user. *)
let test_cli_pta_byte_identity () =
  if not (Sys.file_exists exe_path) then Alcotest.skip ()
  else begin
    let src = Slice_workloads.Prog_nanoxml.base in
    let a = Slice_core.Engine.of_source ~file:"nanoxml.tj" src in
    let n_lines = List.length (String.split_on_char '\n' src) in
    let lines = ref [] in
    for l = n_lines downto 1 do
      if l mod 20 = 0 && Slice_core.Engine.seeds_at_line a l <> [] then
        lines := l :: !lines
    done;
    check_bool "found several seed lines" true (List.length !lines >= 3);
    let src_file = Filename.temp_file "obs_pta" ".tj" in
    let oc = open_out src_file in
    output_string oc src;
    close_out oc;
    let run solver out =
      let cmd =
        Printf.sprintf
          "%s batch %s %s --mode thin --pta %s --quiet > %s 2>&1"
          (Filename.quote exe_path) (Filename.quote src_file)
          (String.concat " "
             (List.map (fun l -> Printf.sprintf "--line %d" l) !lines))
          solver (Filename.quote out)
      in
      check_int (Printf.sprintf "batch --pta %s exits 0" solver) 0
        (Sys.command cmd)
    in
    let read path =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    let out_bit = Filename.temp_file "obs_pta_bit" ".out" in
    let out_ref = Filename.temp_file "obs_pta_ref" ".out" in
    run "bitset" out_bit;
    run "reference" out_ref;
    let tb = read out_bit and tr = read out_ref in
    Sys.remove src_file;
    Sys.remove out_bit;
    Sys.remove out_ref;
    check_bool "non-empty output" true (String.length tb > 0);
    check_string "--pta reference output byte-identical to bitset" tb tr
  end

let suite =
  [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "span disabled passthrough" `Quick test_span_disabled;
    Alcotest.test_case "span totals aggregate" `Quick test_span_totals;
    Alcotest.test_case "reset_spans keeps counters and open spans" `Quick
      test_reset_spans;
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
    Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
    Alcotest.test_case "histogram bucket geometry" `Quick test_bucket_geometry;
    Alcotest.test_case "percentile math pinned" `Quick test_percentile_pinned;
    Alcotest.test_case "span args" `Quick test_span_args;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "snapshot json shape" `Quick test_snapshot_json_shape;
    Alcotest.test_case "scoped isolates identical tasks" `Quick
      test_scoped_isolates_identical_tasks;
    Alcotest.test_case "scoped merges back" `Quick test_scoped_merges_back;
    Alcotest.test_case "scoped exception safety" `Quick
      test_scoped_exception_safe;
    Alcotest.test_case "domain isolation and merge_snapshot" `Quick
      test_domain_isolation_and_merge;
    Alcotest.test_case "merge under an open span" `Quick
      test_merge_under_open_span;
    Alcotest.test_case "batch span names distinct" `Quick
      test_batch_span_names_distinct;
    Alcotest.test_case "thinslice --stats-json contract" `Quick
      test_cli_stats_json;
    Alcotest.test_case "thinslice batch --jobs byte-identity" `Quick
      test_cli_jobs_byte_identity;
    Alcotest.test_case "thinslice batch --pta byte-identity" `Quick
      test_cli_pta_byte_identity ]
