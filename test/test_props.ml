(* Property-based tests (qcheck):
   - the interpreter agrees with a reference evaluator on randomly
     generated arithmetic/boolean expressions;
   - generated pipeline programs run, and their slices respect the
     thin <= traditional ordering;
   - points-to stays sound on generated programs (slice of the printed
     value includes the statements that dynamically produced it). *)

open Slice_workloads

module IntSet = Set.Make (Int)

(* ---- a tiny expression AST with a reference evaluator ---- *)

type expr =
  | Num of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr    (* denominator forced nonzero by construction *)
  | Neg of expr
  | If of bexpr * expr * expr

and bexpr =
  | Lt of expr * expr
  | Eq of expr * expr
  | And of bexpr * bexpr
  | Or of bexpr * bexpr
  | Not of bexpr

let rec eval = function
  | Num n -> n
  | Add (a, b) -> eval a + eval b
  | Sub (a, b) -> eval a - eval b
  | Mul (a, b) -> eval a * eval b
  | Div (a, b) ->
    let d = eval b in
    if d = 0 then 0 else eval a / d
  | Neg a -> -eval a
  | If (c, t, e) -> if beval c then eval t else eval e

and beval = function
  | Lt (a, b) -> eval a < eval b
  | Eq (a, b) -> eval a = eval b
  | And (a, b) -> beval a && beval b
  | Or (a, b) -> beval a || beval b
  | Not a -> not (beval a)

(* Render to TJ.  [If] becomes a helper-function call so that expressions
   stay expressions. *)
let rec to_tj = function
  | Num n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_tj a) (to_tj b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_tj a) (to_tj b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_tj a) (to_tj b)
  | Div (a, b) -> Printf.sprintf "safeDiv(%s, %s)" (to_tj a) (to_tj b)
  | Neg a -> Printf.sprintf "(-%s)" (to_tj a)
  | If (c, t, e) ->
    Printf.sprintf "choose(%s, %s, %s)" (to_btj c) (to_tj t) (to_tj e)

and to_btj = function
  | Lt (a, b) -> Printf.sprintf "(%s < %s)" (to_tj a) (to_tj b)
  | Eq (a, b) -> Printf.sprintf "(%s == %s)" (to_tj a) (to_tj b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (to_btj a) (to_btj b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (to_btj a) (to_btj b)
  | Not a -> Printf.sprintf "(!%s)" (to_btj a)

let helpers_tj =
  "int safeDiv(int a, int b) { if (b == 0) { return 0; } return a / b; }\n\
   int choose(boolean c, int t, int e) { if (c) { return t; } return e; }\n"

let gen_expr : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized_size (0 -- 6) @@ fix (fun self n ->
      let num = map (fun k -> Num k) (-50 -- 50) in
      if n <= 0 then num
      else
        let sub = self (n / 2) in
        let rec gen_bexpr depth =
          if depth <= 0 then map2 (fun a b -> Lt (a, b)) sub sub
          else
            oneof
              [ map2 (fun a b -> Lt (a, b)) sub sub;
                map2 (fun a b -> Eq (a, b)) sub sub;
                map2 (fun a b -> And (a, b)) (gen_bexpr (depth - 1)) (gen_bexpr (depth - 1));
                map2 (fun a b -> Or (a, b)) (gen_bexpr (depth - 1)) (gen_bexpr (depth - 1));
                map (fun a -> Not a) (gen_bexpr (depth - 1)) ]
        in
        oneof
          [ num;
            map2 (fun a b -> Add (a, b)) sub sub;
            map2 (fun a b -> Sub (a, b)) sub sub;
            map2 (fun a b -> Mul (a, b)) sub sub;
            map2 (fun a b -> Div (a, b)) sub sub;
            map (fun a -> Neg a) sub;
            map3 (fun c t e -> If (c, t, e)) (gen_bexpr 2) sub sub ])

let prop_interp_matches_reference =
  QCheck2.Test.make ~count:40 ~name:"interpreter agrees with reference evaluator"
    ~print:(fun e -> to_tj e) gen_expr
    (fun e ->
      let src =
        helpers_tj
        ^ Printf.sprintf "void main(String[] args) { print(itoa(%s)); }\n" (to_tj e)
      in
      match Helpers.run_ok src with
      | [ line ] -> line = string_of_int (eval e)
      | _ -> false)

let prop_pipeline_runs_and_slices =
  QCheck2.Test.make ~count:6 ~name:"pipelines run; thin <= traditional"
    QCheck2.Gen.(2 -- 10)
    (fun stages ->
      let src = Generators.pipeline_program ~stages in
      let p = Helpers.load src in
      let args, streams = Generators.pipeline_io in
      let o =
        Slice_interp.Interp.run
          { Slice_interp.Interp.default_config with args; streams }
          p
      in
      (match o.Slice_interp.Interp.result with
      | Ok () -> ()
      | Error f ->
        QCheck2.Test.fail_reportf "pipeline failed: %s"
          (Format.asprintf "%a" Slice_interp.Interp.pp_failure f));
      let a = Slice_core.Engine.analyze p in
      let line =
        Runtime_lib.line_of ~src ~pattern:Generators.pipeline_seed_pattern
      in
      let thin =
        Slice_core.Engine.slice_from_line a ~line Slice_core.Slicer.Thin
      in
      let trad =
        Slice_core.Engine.slice_from_line a ~line
          Slice_core.Slicer.Traditional_data
      in
      IntSet.subset (IntSet.of_list thin) (IntSet.of_list trad))

(* The slice-covers-execution property: the static thin slice of the final
   print must contain every line the dynamic thin slice saw — on programs
   with containers, loops, and string processing, this exercises heap
   dependences end to end. *)
let prop_static_covers_dynamic =
  QCheck2.Test.make ~count:5 ~name:"static thin slice covers dynamic thin slice"
    QCheck2.Gen.(2 -- 8)
    (fun stages ->
      let src = Generators.pipeline_program ~stages in
      let p = Helpers.load src in
      let args, streams = Generators.pipeline_io in
      let trace = Slice_interp.Dyntrace.create () in
      let _ =
        Slice_interp.Interp.run
          { Slice_interp.Interp.default_config with args; streams; trace = Some trace }
          p
      in
      let a = Slice_core.Engine.analyze p in
      let line =
        Runtime_lib.line_of ~src ~pattern:Generators.pipeline_seed_pattern
      in
      let static =
        Slice_core.Engine.slice_from_line a ~line Slice_core.Slicer.Thin
      in
      let tbl = Slice_ir.Program.build_stmt_table p in
      let seed_stmt =
        Hashtbl.fold
          (fun id si acc ->
            if
              (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line = line
              &&
              match si.Slice_ir.Program.s_site with
              | Slice_ir.Program.Site_instr
                  { Slice_ir.Instr.i_kind = Slice_ir.Instr.Call _; _ } ->
                true
              | _ -> false
            then Some id
            else acc)
          tbl None
      in
      match seed_stmt with
      | None -> QCheck2.Test.fail_report "no seed statement"
      | Some stmt -> (
        match Slice_interp.Dyntrace.dynamic_thin_slice trace stmt with
        | None -> QCheck2.Test.fail_report "seed not executed"
        | Some stmts ->
          List.for_all
            (fun s ->
              match Hashtbl.find_opt tbl s with
              | Some si ->
                let l = (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line in
                l = 0 || List.mem l static
              | None -> true)
            stmts))

(* ---- CSR walk parity against the Reference (seed) implementation ---- *)

(* Every workload of the BENCH suite; the canonical list lives in
   {!Slice_workloads.Suites} so bench and tests cannot drift apart. *)
let workload_programs = Suites.paper_workloads

let parity_modes =
  [ Slice_core.Slicer.Thin;
    Slice_core.Slicer.Thin_with_aliasing 1;
    Slice_core.Slicer.Thin_with_aliasing 2;
    Slice_core.Slicer.Traditional_data;
    Slice_core.Slicer.Traditional_full ]

(* First/middle/last user-visible statement nodes: representative seed
   sets for small, medium and whole-program-reaching slices. *)
let parity_seed_sets (g : Slice_core.Sdg.t) : Slice_core.Sdg.node list list =
  let countable = ref [] in
  for n = Slice_core.Sdg.num_nodes g - 1 downto 0 do
    if Slice_core.Sdg.node_countable g n then countable := n :: !countable
  done;
  match !countable with
  | [] -> []
  | nodes ->
    let arr = Array.of_list nodes in
    let k = Array.length arr in
    [ [ arr.(0) ]; [ arr.(k / 2) ]; [ arr.(k - 1) ];
      [ arr.(0); arr.(k / 2); arr.(k - 1) ] ]

(* Node-for-node agreement of the CSR walk with [Slicer.Reference] on one
   analysis, for every mode / seed set / direction, plus the line
   projection.  Run twice per program: before AND after [Sdg.freeze] (the
   CSR walk must also agree while still on the mutable list adjacency). *)
let check_parity ~(what : string) (g : Slice_core.Sdg.t) : unit =
  let open Slice_core in
  List.iter
    (fun seeds ->
      List.iter
        (fun mode ->
          let ctx =
            Printf.sprintf "%s %s (frozen=%b)" what
              (Slicer.mode_to_string mode) (Sdg.is_frozen g)
          in
          Alcotest.(check (list int))
            (ctx ^ " backward")
            (Slicer.Reference.slice g ~seeds mode)
            (Slicer.slice g ~seeds mode);
          Alcotest.(check (list int))
            (ctx ^ " forward")
            (Slicer.Reference.forward_slice g ~seeds mode)
            (Slicer.forward_slice g ~seeds mode);
          Alcotest.(check bool)
            (ctx ^ " lines") true
            (Slicer.Reference.slice_lines g ~seeds mode
            = Slicer.slice_lines g ~seeds mode))
        parity_modes)
    (parity_seed_sets g)

let test_csr_parity_on_workloads () =
  List.iter
    (fun (name, src) ->
      let a =
        Slice_core.Engine.of_source ~freeze:false ~file:(name ^ ".tj") src
      in
      let g = a.Slice_core.Engine.sdg in
      check_parity ~what:name g;
      Slice_core.Sdg.freeze g;
      check_parity ~what:name g)
    workload_programs

let prop_csr_parity_on_generated =
  QCheck2.Test.make ~count:8
    ~name:"CSR walk == Reference walk on generated pipelines"
    QCheck2.Gen.(2 -- 12)
    (fun stages ->
      let src = Generators.pipeline_program ~stages in
      let a =
        Slice_core.Engine.analyze ~freeze:false (Helpers.load src)
      in
      let g = a.Slice_core.Engine.sdg in
      let agree () =
        List.for_all
          (fun seeds ->
            List.for_all
              (fun mode ->
                Slice_core.Slicer.Reference.slice g ~seeds mode
                = Slice_core.Slicer.slice g ~seeds mode
                && Slice_core.Slicer.Reference.forward_slice g ~seeds mode
                   = Slice_core.Slicer.forward_slice g ~seeds mode)
              parity_modes)
          (parity_seed_sets g)
      in
      let before = agree () in
      Slice_core.Sdg.freeze g;
      before && agree ())

(* ---- parallel batch parity: slice_batch_par == slice_batch ---- *)

(* Up to [cap] seed lines spread across the program: every line with at
   least one statement node, thinned evenly so big workloads stay fast. *)
let batch_lines ?(cap = 10) (a : Slice_core.Engine.analysis) (src : string) :
    int list =
  let n_lines = List.length (String.split_on_char '\n' src) in
  let all = ref [] in
  for l = n_lines downto 1 do
    if Slice_core.Engine.seeds_at_line a l <> [] then all := l :: !all
  done;
  let all = Array.of_list !all in
  let k = Array.length all in
  if k <= cap then Array.to_list all
  else List.init cap (fun i -> all.(i * k / cap))

(* Sharding must be a pure scheduling decision: for every jobs count,
   mode and direction, the parallel batch returns line-for-line exactly
   the sequential batch.  [jobs:1] exercises the no-spawn degradation. *)
let check_par_parity ~(what : string) (a : Slice_core.Engine.analysis)
    (lines : int list) : unit =
  let open Slice_core in
  List.iter
    (fun mode ->
      List.iter
        (fun forward ->
          let seq = Engine.slice_batch ~forward a ~lines mode in
          List.iter
            (fun jobs ->
              let par = Engine.slice_batch_par ~forward ~jobs a ~lines mode in
              List.iter2
                (fun (l, s) (l', p) ->
                  let ctx =
                    Printf.sprintf "%s %s fwd=%b jobs=%d line=%d" what
                      (Slicer.mode_to_string mode) forward jobs l
                  in
                  Alcotest.(check int) (ctx ^ " order") l l';
                  Alcotest.(check (list int)) ctx s p)
                seq par)
            [ 1; 2; 4 ])
        [ false; true ])
    parity_modes

let test_par_batch_parity_on_workloads () =
  List.iter
    (fun (name, src) ->
      let a = Slice_core.Engine.of_source ~file:(name ^ ".tj") src in
      check_par_parity ~what:name a (batch_lines a src))
    workload_programs

let prop_par_batch_parity_on_generated =
  QCheck2.Test.make ~count:5
    ~name:"slice_batch_par == slice_batch on generated pipelines"
    QCheck2.Gen.(pair (2 -- 10) (2 -- 5))
    (fun (stages, jobs) ->
      let src = Generators.pipeline_program ~stages in
      let a = Slice_core.Engine.analyze (Helpers.load src) in
      let lines = batch_lines ~cap:6 a src in
      List.for_all
        (fun mode ->
          List.for_all
            (fun forward ->
              Slice_core.Engine.slice_batch_par ~forward ~jobs a ~lines mode
              = Slice_core.Engine.slice_batch ~forward a ~lines mode)
            [ false; true ])
        parity_modes)

(* Worker telemetry must AGGREGATE, not disappear (or race): the slicer
   counter totals of a parallel batch, after merge-back, equal the
   sequential batch's exactly — every walk bumps the same counters no
   matter which domain ran it. *)
let test_par_batch_telemetry_merges () =
  let open Slice_core in
  let name, src = List.nth workload_programs 0 in
  let a = Engine.of_source ~file:(name ^ ".tj") src in
  let lines = batch_lines a src in
  let slicer_counters snap =
    List.filter
      (fun (k, _) -> String.length k >= 7 && String.sub k 0 7 = "slicer.")
      snap.Slice_obs.snap_counters
  in
  let _, seq_snap =
    Slice_obs.scoped (fun () -> Engine.slice_batch a ~lines Slicer.Thin)
  in
  List.iter
    (fun jobs ->
      let _, par_snap =
        Slice_obs.scoped (fun () ->
            Engine.slice_batch_par ~jobs a ~lines Slicer.Thin)
      in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "slicer counter totals at jobs=%d" jobs)
        (slicer_counters seq_snap)
        (slicer_counters par_snap))
    [ 2; 4 ]

let suite =
  [ QCheck_alcotest.to_alcotest prop_interp_matches_reference;
    QCheck_alcotest.to_alcotest prop_pipeline_runs_and_slices;
    QCheck_alcotest.to_alcotest prop_static_covers_dynamic;
    Alcotest.test_case "CSR parity on the workload suite" `Quick
      test_csr_parity_on_workloads;
    QCheck_alcotest.to_alcotest prop_csr_parity_on_generated;
    Alcotest.test_case "parallel batch parity on the workload suite" `Quick
      test_par_batch_parity_on_workloads;
    QCheck_alcotest.to_alcotest prop_par_batch_parity_on_generated;
    Alcotest.test_case "parallel batch telemetry merges" `Quick
      test_par_batch_telemetry_merges ]
