(* Property tests for the shared dense bitset (lib/util/bits.ml), the
   data plane under the points-to solver and the SDG heap wiring.

   The oracle is [Set.Make (Int)]: a random sequence of operations is
   applied to both representations and every observation (mem, cardinal,
   elements, iter order, union/diff/propagate results) must agree.

   Word-edge indices get dedicated coverage: bit 62 of an OCaml native
   int is the SIGN bit of the 63-bit word, so any scan that isolates a
   bit and compares it arithmetically misclassifies indices = 62 (mod
   63).  That exact bug corrupted heap-alias grouping during development;
   the [word edges] tests below lock it down. *)

module Bits = Slice_util.Bits
module IntSet = Set.Make (Int)

(* ---- deterministic observations ---- *)

let elements_via_iter (b : Bits.t) : int list =
  let acc = ref [] in
  Bits.iter (fun i -> acc := i :: !acc) b;
  List.rev !acc

let check_agrees ~(what : string) (b : Bits.t) (s : IntSet.t) : unit =
  let want = IntSet.elements s in
  Alcotest.(check (list int)) (what ^ ": elements") want (Bits.elements b);
  Alcotest.(check (list int))
    (what ^ ": iter ascending")
    want (elements_via_iter b);
  Alcotest.(check int) (what ^ ": cardinal") (IntSet.cardinal s) (Bits.cardinal b);
  Alcotest.(check bool)
    (what ^ ": is_empty")
    (IntSet.is_empty s) (Bits.is_empty b);
  (* Membership probes at, around and far beyond every element. *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: mem %d" what i)
        (IntSet.mem i s) (Bits.mem b i))
    (List.concat_map (fun i -> [ i - 1; i; i + 1 ]) want);
  Alcotest.(check bool) (what ^ ": mem far") false (Bits.mem b 100_000);
  Alcotest.(check bool) (what ^ ": mem -1") false (Bits.mem b (-1))

(* ---- the word-edge indices: around bit 62/63 of words 0 and 1 ---- *)

let word_edge_indices =
  let w = Bits.bits_per_word in
  [ 0; 1; w - 2; w - 1; w; w + 1; (2 * w) - 1; 2 * w; (2 * w) + 1 ]

let test_word_edges () =
  (* Each index alone: add, observe, remove. *)
  List.iter
    (fun i ->
      let b = Bits.create ~capacity:1 () in
      Alcotest.(check bool) "fresh add" true (Bits.add b i);
      Alcotest.(check bool) "re-add" false (Bits.add b i);
      check_agrees ~what:(Printf.sprintf "singleton %d" i) b (IntSet.singleton i);
      Bits.remove b i;
      check_agrees ~what:(Printf.sprintf "removed %d" i) b IntSet.empty)
    word_edge_indices;
  (* All edges at once — the sign bit must survive iteration. *)
  let b = Bits.create () in
  List.iter (fun i -> ignore (Bits.add b i)) word_edge_indices;
  check_agrees ~what:"all word edges" b (IntSet.of_list word_edge_indices)

let test_sign_bit_round_trip () =
  (* Index 62 on a 63-bit word sets the native-int sign bit.  It must
     come back out of [iter] as 62, not 0 — the development-time bug. *)
  let i = Bits.bits_per_word - 1 in
  let b = Bits.create () in
  ignore (Bits.add b i);
  Alcotest.(check (list int)) "sign bit via iter" [ i ] (elements_via_iter b);
  Alcotest.(check int) "sign bit cardinal" 1 (Bits.cardinal b);
  (* And together with bit 0 of the same word. *)
  ignore (Bits.add b 0);
  Alcotest.(check (list int)) "0 + sign bit" [ 0; i ] (Bits.elements b)

(* ---- random operation sequences vs the Set oracle ---- *)

type op = Add of int | Remove of int | Clear

let gen_index : int QCheck2.Gen.t =
  let w = Bits.bits_per_word in
  QCheck2.Gen.(
    oneof
      [ 0 -- 200;                                   (* dense small *)
        oneofl word_edge_indices;                   (* word boundaries *)
        map (fun k -> (k * w) + (w - 1)) (0 -- 5);  (* sign bits *)
        300 -- 2000 ]                               (* forces growth *))

let gen_op : op QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [ (6, map (fun i -> Add i) gen_index);
        (2, map (fun i -> Remove i) gen_index);
        (1, return Clear) ])

let apply_ops ops =
  let b = Bits.create ~capacity:4 () in
  let s = ref IntSet.empty in
  List.iter
    (fun op ->
      match op with
      | Add i ->
        let fresh = Bits.add b i in
        Alcotest.(check bool)
          (Printf.sprintf "add %d freshness" i)
          (not (IntSet.mem i !s))
          fresh;
        s := IntSet.add i !s
      | Remove i ->
        Bits.remove b i;
        s := IntSet.remove i !s
      | Clear ->
        Bits.clear b;
        s := IntSet.empty)
    ops;
  (b, !s)

let prop_ops_match_oracle =
  QCheck2.Test.make ~count:200 ~name:"random op sequences match Set oracle"
    QCheck2.Gen.(list_size (0 -- 120) gen_op)
    (fun ops ->
      let b, s = apply_ops ops in
      check_agrees ~what:"after ops" b s;
      true)

let prop_union_diff_match_oracle =
  QCheck2.Test.make ~count:200 ~name:"union_into/diff_into match Set oracle"
    QCheck2.Gen.(
      pair (list_size (0 -- 60) gen_op) (list_size (0 -- 60) gen_op))
    (fun (ops_a, ops_b) ->
      let a, sa = apply_ops ops_a in
      let b, sb = apply_ops ops_b in
      (* union_into: dst grows to the union; changed iff src \ dst <> {} *)
      let dst = Bits.copy b in
      let changed = Bits.union_into ~src:a ~dst in
      Alcotest.(check bool)
        "union changed flag"
        (not (IntSet.subset sa sb))
        changed;
      check_agrees ~what:"union" dst (IntSet.union sa sb);
      (* src is untouched *)
      check_agrees ~what:"union src intact" a sa;
      (* diff_into: dst := dst \ src *)
      let dst2 = Bits.copy b in
      Bits.diff_into ~src:a ~dst:dst2;
      check_agrees ~what:"diff" dst2 (IntSet.diff sb sa);
      (* equal agrees with the oracle across differing capacities *)
      Alcotest.(check bool)
        "equal vs oracle"
        (IntSet.equal sa sb)
        (Bits.equal a b);
      true)

let prop_propagate_matches_oracle =
  QCheck2.Test.make ~count:200
    ~name:"propagate: fresh = src\\pts, ORed into pts and delta"
    QCheck2.Gen.(
      triple
        (list_size (0 -- 50) gen_op)
        (list_size (0 -- 50) gen_op)
        (list_size (0 -- 50) gen_op))
    (fun (ops_src, ops_pts, ops_delta) ->
      let src, s_src = apply_ops ops_src in
      let pts, s_pts = apply_ops ops_pts in
      let delta, s_delta = apply_ops ops_delta in
      let fresh = IntSet.diff s_src s_pts in
      let n = Bits.propagate ~src ~pts ~delta in
      Alcotest.(check int) "propagate count" (IntSet.cardinal fresh) n;
      check_agrees ~what:"propagate pts" pts (IntSet.union s_pts s_src);
      check_agrees ~what:"propagate delta" delta (IntSet.union s_delta fresh);
      check_agrees ~what:"propagate src intact" src s_src;
      true)

let prop_copy_is_independent =
  QCheck2.Test.make ~count:100 ~name:"copy is deep"
    QCheck2.Gen.(list_size (0 -- 60) gen_op)
    (fun ops ->
      let b, s = apply_ops ops in
      let c = Bits.copy b in
      ignore (Bits.add c 4242);
      Bits.remove c (match IntSet.min_elt_opt s with Some i -> i | None -> 0);
      check_agrees ~what:"original after copy mutation" b s;
      true)

let test_iter_snapshot_safe () =
  (* The callback may grow the set; iter must only see the snapshot. *)
  let b = Bits.create ~capacity:1 () in
  ignore (Bits.add b 0);
  ignore (Bits.add b 62);
  let seen = ref [] in
  Bits.iter
    (fun i ->
      ignore (Bits.add b (i + 1000));
      seen := i :: !seen)
    b;
  Alcotest.(check (list int)) "snapshot iter" [ 0; 62 ] (List.rev !seen);
  Alcotest.(check bool) "growth landed" true (Bits.mem b 1062)

let suite =
  [ Alcotest.test_case "word edges 62/63/64/125/126/127" `Quick test_word_edges;
    Alcotest.test_case "sign bit round trip" `Quick test_sign_bit_round_trip;
    Alcotest.test_case "iter snapshot safe" `Quick test_iter_snapshot_safe;
    QCheck_alcotest.to_alcotest prop_ops_match_oracle;
    QCheck_alcotest.to_alcotest prop_union_diff_match_oracle;
    QCheck_alcotest.to_alcotest prop_propagate_matches_oracle;
    QCheck_alcotest.to_alcotest prop_copy_is_independent ]
