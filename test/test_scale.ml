(* Scale-frontier tests: the mega-workload generator, the arena-lowered
   IR, and the sharded (multi-domain) analysis passes.

   The generator promises determinism by seed and calibrated statement
   counts; the arena promises row-for-row equivalence with the record
   IR on every paper workload; the sharded heap-wiring and mod-ref
   passes promise BYTE parity with their sequential twins at every job
   count — parity is pinned here on a program small enough for tier-1,
   while bench pipeline-huge re-checks it at 10^5..10^6 statements. *)

open Slice_fuzz

(* --- generator ------------------------------------------------------- *)

let test_scaled_deterministic () =
  let a = Gen_tj.generate_scaled ~seed:3 ~stmts:2_000 in
  let b = Gen_tj.generate_scaled ~seed:3 ~stmts:2_000 in
  Alcotest.(check string) "same seed, same program" a.Gen_tj.sc_src
    b.Gen_tj.sc_src;
  Alcotest.(check int) "same seed line" a.Gen_tj.sc_seed_line
    b.Gen_tj.sc_seed_line;
  let c = Gen_tj.generate_scaled ~seed:4 ~stmts:2_000 in
  Alcotest.(check bool) "different seed, different program" true
    (a.Gen_tj.sc_src <> c.Gen_tj.sc_src)

let test_scaled_stmt_accuracy () =
  (* the self-calibrating generator must land within +-5% of the request
     (its contract; pipeline-huge re-checks this at 10^5 and 10^6) *)
  List.iter
    (fun stmts ->
      let sc = Gen_tj.generate_scaled ~seed:7 ~stmts in
      let p =
        Slice_front.Frontend.load_exn ~file:"scaled.tj" sc.Gen_tj.sc_src
      in
      let actual = Slice_ir.Program.stmt_count p in
      let err =
        100. *. Float.abs (float_of_int (actual - stmts)) /. float_of_int stmts
      in
      if err > 5.0 then
        Alcotest.failf "stmts=%d actual=%d err=%.2f%% (want <= 5%%)" stmts
          actual err)
    [ 5_000; 20_000 ]

let test_scaled_runs_clean () =
  (* well-formed and terminating by construction: the scaled program
     loads, runs to completion, and prints its single accumulator *)
  let sc = Gen_tj.generate_scaled ~seed:11 ~stmts:2_000 in
  let p = Slice_front.Frontend.load_exn ~file:"scaled.tj" sc.Gen_tj.sc_src in
  let o = Slice_interp.Interp.run Slice_interp.Interp.default_config p in
  (match o.Slice_interp.Interp.result with
  | Ok () -> ()
  | Error f ->
    Alcotest.failf "scaled program failed: %s"
      (Format.asprintf "%a" Slice_interp.Interp.pp_failure f));
  Alcotest.(check int) "prints exactly one line" 1
    (List.length o.Slice_interp.Interp.output)

let test_shrinker_on_large_model () =
  (* the shrinker must stay structure-preserving when fed a model at the
     generator's size ceiling: the shrunk program still satisfies the
     predicate, is no larger, and remains well-formed *)
  let m = Gen_tj.gen ~seed:13 ~max_size:200 in
  let pred r = r.Gen_tj.stmt_count >= 5 in
  let still_failing m' = pred (Gen_tj.render m') in
  let small = Gen_tj.shrink m ~still_failing in
  let r0 = Gen_tj.render m and r1 = Gen_tj.render small in
  Alcotest.(check bool) "predicate preserved" true (still_failing small);
  Alcotest.(check bool) "no larger" true
    (r1.Gen_tj.stmt_count <= r0.Gen_tj.stmt_count);
  match Slice_front.Frontend.load ~file:"shrunk.tj" r1.Gen_tj.src with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "shrunk program ill-formed: %s"
      e.Slice_front.Frontend.err_msg

(* --- arena ----------------------------------------------------------- *)

let paper_workloads =
  [ ("nanoxml", Slice_workloads.Prog_nanoxml.base);
    ("jtopas", Slice_workloads.Prog_jtopas.base);
    ("ant", Slice_workloads.Prog_ant.base);
    ("xmlsec", Slice_workloads.Prog_xmlsec.base);
    ("mtrt", Slice_workloads.Prog_mtrt.base);
    ("jess", Slice_workloads.Prog_jess.base);
    ("javac", Slice_workloads.Prog_javac.base);
    ("jack", Slice_workloads.Prog_jack.base);
    ("pipeline-32", Slice_workloads.Generators.pipeline_program ~stages:32) ]

let test_arena_views_on_workloads () =
  (* every arena column must agree with the record accessors on every
     row of every paper workload *)
  List.iter
    (fun (name, src) ->
      let p = Slice_front.Frontend.load_exn ~file:(name ^ ".tj") src in
      let ar = Slice_ir.Arena.build p in
      (match Slice_ir.Arena.check_views p ar with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: arena view mismatch: %s" name msg);
      Alcotest.(check bool) (name ^ ": arena bytes positive") true
        (Slice_ir.Arena.bytes ar > 0))
    paper_workloads

let test_arena_sdg_identical () =
  (* the arena-backed pass 1 must produce edge-for-edge the same graph
     as the record pass: same node count, same edge count, same
     adjacency in the same order *)
  let src = Slice_workloads.Prog_javac.base in
  let p = Slice_front.Frontend.load_exn ~file:"javac.tj" src in
  let pta = Slice_pta.Andersen.analyze p in
  let g_rec = Slice_core.Sdg.build p pta in
  let ar = Slice_ir.Arena.build p in
  let g_ar = Slice_core.Sdg.build ~arena:ar p pta in
  Alcotest.(check int) "node count" (Slice_core.Sdg.num_nodes g_rec)
    (Slice_core.Sdg.num_nodes g_ar);
  Alcotest.(check int) "edge count" (Slice_core.Sdg.num_edges g_rec)
    (Slice_core.Sdg.num_edges g_ar);
  for n = 0 to Slice_core.Sdg.num_nodes g_rec - 1 do
    if Slice_core.Sdg.deps g_rec n <> Slice_core.Sdg.deps g_ar n then
      Alcotest.failf "deps of node %d differ" n
  done

(* --- sharded passes -------------------------------------------------- *)

let sdg_adjacency (g : Slice_core.Sdg.t) : (int * (int * int) list) list =
  let rows = ref [] in
  for n = Slice_core.Sdg.num_nodes g - 1 downto 0 do
    let row =
      List.map
        (fun (m, k) -> (m, Slice_core.Sdg.edge_kind_tag k))
        (Slice_core.Sdg.deps g n)
    in
    if row <> [] then rows := (n, row) :: !rows
  done;
  !rows

let test_sdg_heap_jobs_parity () =
  let sc = Gen_tj.generate_scaled ~seed:5 ~stmts:2_000 in
  let p = Slice_front.Frontend.load_exn ~file:"scaled.tj" sc.Gen_tj.sc_src in
  let pta = Slice_pta.Andersen.analyze p in
  let base = sdg_adjacency (Slice_core.Sdg.build ~heap_jobs:1 p pta) in
  List.iter
    (fun jobs ->
      let g = Slice_core.Sdg.build ~heap_jobs:jobs p pta in
      if sdg_adjacency g <> base then
        Alcotest.failf "heap_jobs=%d adjacency differs from sequential" jobs)
    [ 2; 4 ]

let test_modref_jobs_parity () =
  let sc = Gen_tj.generate_scaled ~seed:5 ~stmts:2_000 in
  let p = Slice_front.Frontend.load_exn ~file:"scaled.tj" sc.Gen_tj.sc_src in
  let pta = Slice_pta.Andersen.analyze p in
  let n = Slice_pta.Andersen.num_call_graph_nodes pta in
  let dump mr =
    List.init n (fun mc ->
        ( Slice_pta.Modref.LocSet.elements (Slice_pta.Modref.mod_of mr mc),
          Slice_pta.Modref.LocSet.elements (Slice_pta.Modref.ref_of mr mc) ))
  in
  let base = dump (Slice_pta.Modref.compute ~jobs:1 p pta) in
  List.iter
    (fun jobs ->
      if dump (Slice_pta.Modref.compute ~jobs p pta) <> base then
        Alcotest.failf "modref jobs=%d differs from sequential" jobs)
    [ 2; 4 ]

(* --- memory gauges --------------------------------------------------- *)

let test_memory_stats () =
  let src = Slice_workloads.Prog_nanoxml.base in
  let a = Slice_core.Engine.of_source ~file:"nanoxml.tj" src in
  let s = Slice_core.Engine.stats_of a in
  Alcotest.(check bool) "arena_bytes positive" true (s.Slice_core.Engine.arena_bytes > 0);
  Alcotest.(check int) "arena_bytes deterministic"
    (Slice_ir.Arena.bytes a.Slice_core.Engine.arena)
    s.Slice_core.Engine.arena_bytes;
  (* a slice through the domain-default scratch makes its footprint
     observable *)
  let scratch = Slice_core.Slicer.create_scratch a.Slice_core.Engine.sdg in
  Alcotest.(check bool) "scratch_bytes positive" true
    (Slice_core.Slicer.scratch_bytes scratch > 0);
  (* the memory block must appear in BOTH stats exports with the same
     deterministic value (serve-vs-CLI byte parity) *)
  let find_arena json =
    match json with
    | Slice_obs.Json.Obj kvs -> (
      match List.assoc_opt "memory" kvs with
      | Some (Slice_obs.Json.Obj m) -> List.assoc_opt "arena_bytes" m
      | _ -> None)
    | _ -> None
  in
  let expect = Some (Slice_obs.Json.Int s.Slice_core.Engine.arena_bytes) in
  Alcotest.(check bool) "stats_to_json memory block" true
    (find_arena (Slice_core.Engine.stats_to_json s) = expect);
  (* the resident (serve) stats export carries the same block: the
     daemon's Q_stats answer must byte-agree with the one-shot CLI *)
  let h = Slice_core.Engine.load [ ("nanoxml.tj", src) ] in
  let resident =
    Slice_core.Engine.query_result_to_json h Slice_core.Engine.Q_stats
      (Slice_core.Engine.run_query h Slice_core.Engine.Q_stats)
  in
  Alcotest.(check bool) "resident stats memory block" true
    (find_arena resident = expect)

let suite =
  [ Alcotest.test_case "generate_scaled is deterministic" `Quick
      test_scaled_deterministic;
    Alcotest.test_case "statement count within 5%" `Quick
      test_scaled_stmt_accuracy;
    Alcotest.test_case "scaled program runs clean" `Quick
      test_scaled_runs_clean;
    Alcotest.test_case "shrinker structure-preserving at size ceiling" `Quick
      test_shrinker_on_large_model;
    Alcotest.test_case "arena views match records on all workloads" `Quick
      test_arena_views_on_workloads;
    Alcotest.test_case "arena-backed SDG identical to record pass" `Quick
      test_arena_sdg_identical;
    Alcotest.test_case "SDG heap wiring parity at jobs 1/2/4" `Quick
      test_sdg_heap_jobs_parity;
    Alcotest.test_case "mod-ref parity at jobs 1/2/4" `Quick
      test_modref_jobs_parity;
    Alcotest.test_case "memory gauges and stats block" `Quick
      test_memory_stats ]
