(* Tests for the differential fuzzing subsystem (lib/fuzz).

   Four layers of defence, cheapest first:
   - the PRNG is pinned to golden values (committed repros record
     [derived_seed]; a silent PRNG change would orphan every repro);
   - generated programs are well-formed and terminating by construction,
     and a bounded run of the full oracle battery stays clean;
   - a seeded fault (dyn-base-as-val) MUST still be caught and must
     shrink small — the harness-sensitivity canary;
   - every committed repro in test/corpus/ replays deterministically. *)

open Slice_fuzz

(* --- PRNG stability ------------------------------------------------- *)

let test_rng_golden () =
  (* splitmix64 from seed 42: fixed forever.  If this test fails, the
     committed corpus is invalid — do not "fix" the expectation. *)
  let t = Fuzz_rng.make 42 in
  let a = Fuzz_rng.int t 1_000_000 in
  let b = Fuzz_rng.int t 1_000_000 in
  Alcotest.(check (pair int int)) "first two draws" (818853, 723072) (a, b);
  let d0 = Fuzz_rng.derive ~seed:1 ~index:0 in
  let d1 = Fuzz_rng.derive ~seed:1 ~index:1 in
  Alcotest.(check bool) "derived streams differ" true (d0 <> d1);
  (* the derived seed recorded in committed repros must stay stable:
     test/corpus/repro-seed1-i139-*.json records this value *)
  Alcotest.(check int) "derive(1,139) pins the corpus" 3363311372792637205
    (Fuzz_rng.derive ~seed:1 ~index:139)

let test_rng_bounds () =
  let t = Fuzz_rng.make 7 in
  for _ = 1 to 10_000 do
    let v = Fuzz_rng.int t 3 in
    if v < 0 || v >= 3 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Fuzz_rng.int: bound must be positive") (fun () ->
      ignore (Fuzz_rng.int t 0))

(* --- generator ------------------------------------------------------- *)

let test_gen_deterministic () =
  let r1 = Gen_tj.render (Gen_tj.gen ~seed:123 ~max_size:30) in
  let r2 = Gen_tj.render (Gen_tj.gen ~seed:123 ~max_size:30) in
  Alcotest.(check string) "same seed, same program" r1.Gen_tj.src r2.Gen_tj.src;
  let r3 = Gen_tj.render (Gen_tj.gen ~seed:124 ~max_size:30) in
  Alcotest.(check bool) "different seed, different program" true
    (r1.Gen_tj.src <> r3.Gen_tj.src)

let test_gen_well_formed () =
  (* every generated program parses, typechecks, and TERMINATES.  Hostile
     steps may fail at runtime (null bumps, raw array loads, value
     divisions) — such failures are legitimate, they become slicing
     seeds — but resource exhaustion or interpreter-internal faults mean
     the generator broke its termination-by-construction promise *)
  for seed = 0 to 59 do
    let r = Gen_tj.render (Gen_tj.gen ~seed ~max_size:40) in
    match Slice_front.Frontend.load ~file:"gen.tj" r.Gen_tj.src with
    | Error e ->
      Alcotest.failf "seed %d ill-formed: %s\n%s" seed
        e.Slice_front.Frontend.err_msg r.Gen_tj.src
    | Ok p -> (
      let o = Slice_interp.Interp.run Slice_interp.Interp.default_config p in
      match o.Slice_interp.Interp.result with
      | Ok () -> ()
      | Error f -> (
        match f.Slice_interp.Interp.f_kind with
        | Slice_interp.Interp.Step_limit_exceeded
        | Slice_interp.Interp.Stack_overflow_limit
        | Slice_interp.Interp.Trace_limit_exceeded _
        | Slice_interp.Interp.Missing_return
        | Slice_interp.Interp.Assertion _ ->
          Alcotest.failf "seed %d broke the termination promise: %s\n%s" seed
            (Format.asprintf "%a" Slice_interp.Interp.pp_failure f)
            r.Gen_tj.src
        | _ -> (* a hostile step failed; that is the point *) ()))
  done

let test_battery_clean () =
  (* a bounded fuzz run with no fault finds nothing *)
  let r = Fuzz.run ~seed:2026 ~count:40 ~max_size:30 () in
  (match r.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "oracle %s violated at index %d: %s" f.Fuzz.fr_oracle
      f.Fuzz.fr_index f.Fuzz.fr_detail);
  Alcotest.(check int) "all programs ran" 40 r.Fuzz.programs_run

(* --- sensitivity canary ---------------------------------------------- *)

let test_seeded_fault_caught () =
  (* the dyn-base-as-val fault classifies base-pointer uses as value
     flow in the dynamic slicer; the dyn-thin-within-static-thin oracle
     must notice, and the shrinker must get the witness small *)
  let r =
    Fuzz.run ~fault:Oracle.Dyn_base_as_val ~seed:1 ~count:110 ~max_size:40 ()
  in
  match r.Fuzz.failures with
  | [] -> Alcotest.fail "seeded fault not detected: the fuzzer lost its teeth"
  | f :: _ ->
    Alcotest.(check string) "expected oracle" "dyn_thin_within_static_thin"
      f.Fuzz.fr_oracle;
    if f.Fuzz.fr_statements > 30 then
      Alcotest.failf "shrinker left %d statements (want <= 30)"
        f.Fuzz.fr_statements

(* --- shrinker -------------------------------------------------------- *)

let test_shrink_preserves_predicate () =
  (* shrink against an arbitrary structural predicate: the result still
     satisfies it and is no larger than the original *)
  let m = Gen_tj.gen ~seed:5 ~max_size:40 in
  let has_print r = r.Gen_tj.stmt_count >= 2 in
  let still_failing m' = has_print (Gen_tj.render m') in
  let small = Gen_tj.shrink m ~still_failing in
  let r0 = Gen_tj.render m and r1 = Gen_tj.render small in
  Alcotest.(check bool) "predicate preserved" true (still_failing small);
  Alcotest.(check bool) "no larger" true
    (r1.Gen_tj.stmt_count <= r0.Gen_tj.stmt_count)

(* --- repro format and corpus ------------------------------------------ *)

let sample_repro =
  { Repro.seed = 9; index = 3; derived_seed = 123456789;
    fault = Oracle.No_fault; oracle = "solver_parity"; detail = "d";
    statements = 4; seed_lines = [ 7; 8 ];
    edit_kinds = [ "tweak"; "swap-body" ];
    program = "void main(String[] args) { print(\"x\"); }" }

let test_repro_roundtrip () =
  match Repro.of_json (Repro.to_json sample_repro) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok r ->
    Alcotest.(check bool) "identical" true (r = sample_repro)

let test_repro_rejects_garbage () =
  (match Repro.of_json (Slice_obs.Json.Str "nope") with
  | Ok _ -> Alcotest.fail "accepted a non-object"
  | Error _ -> ());
  match
    Repro.of_json
      (Slice_obs.Json.Obj [ ("schema", Slice_obs.Json.Str "wrong/v9") ])
  with
  | Ok _ -> Alcotest.fail "accepted an unknown schema"
  | Error _ -> ()

let corpus_files () =
  match Sys.readdir "corpus" with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat "corpus")

let test_corpus_replays () =
  let files = corpus_files () in
  if List.length files < 3 then
    Alcotest.failf "expected a committed corpus, found %d files"
      (List.length files);
  List.iter
    (fun path ->
      match Repro.load path with
      | Error e -> Alcotest.failf "%s: cannot load: %s" path e
      | Ok r -> (
        match Repro.replay r with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: replay failed: %s" path e))
    files

let suite =
  [ Alcotest.test_case "rng golden values" `Quick test_rng_golden;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "generator is deterministic" `Quick
      test_gen_deterministic;
    Alcotest.test_case "generated programs are well-formed" `Quick
      test_gen_well_formed;
    Alcotest.test_case "oracle battery clean on 40 programs" `Quick
      test_battery_clean;
    Alcotest.test_case "seeded fault is caught and shrunk" `Quick
      test_seeded_fault_caught;
    Alcotest.test_case "shrinker preserves the predicate" `Quick
      test_shrink_preserves_predicate;
    Alcotest.test_case "repro JSON roundtrip" `Quick test_repro_roundtrip;
    Alcotest.test_case "repro rejects malformed JSON" `Quick
      test_repro_rejects_garbage;
    Alcotest.test_case "committed corpus replays" `Quick test_corpus_replays ]
