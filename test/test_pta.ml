(* Points-to analysis tests: precision on separated objects, soundness of
   the call graph against concrete execution, container cloning on/off,
   and cast verification. *)

open Slice_ir
open Slice_pta
open Helpers

let main_mq = { Instr.mq_class = Types.toplevel_class; mq_name = "main" }

(* pts set of the local named [name] in main, as allocation-site list *)
let pts_of_local (p : Program.t) (r : Andersen.result) (name : string) :
    int list =
  let m = Program.find_method_exn p main_mq in
  (* find the SSA variable whose name starts with [name] and has maximal
     version (the last definition) *)
  let best = ref None in
  Array.iteri
    (fun v vi ->
      let n = vi.Instr.vi_name in
      if
        n = name
        || String.length n > String.length name
           && String.sub n 0 (String.length name + 1) = name ^ "#"
      then best := Some v)
    m.Instr.m_vars;
  match !best with
  | None -> Alcotest.failf "no variable %s in main" name
  | Some v ->
    Andersen.ObjSet.elements (Andersen.pts_of_var_ci r main_mq v)
    |> List.map (fun o -> (Context.obj (Andersen.contexts r) o).Context.oi_site)

let test_separation () =
  let src =
    {|class Box { Object v; }
void main(String[] args) {
  Box a = new Box();
  Box b = new Box();
  a.v = "ga";
  b.v = "gb";
  Object x = a.v;
  Object y = b.v;
  print("done");
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  let xa = pts_of_local p r "x" and yb = pts_of_local p r "y" in
  Alcotest.(check int) "x has one source" 1 (List.length xa);
  Alcotest.(check int) "y has one source" 1 (List.length yb);
  Alcotest.(check bool) "distinct boxes do not alias" true (xa <> yb)

let test_merging_through_copy () =
  let src =
    {|class Box { Object v; }
void main(String[] args) {
  Box a = new Box();
  Box b = a;
  a.v = "ga";
  Object x = b.v;
  print("done");
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  Alcotest.(check int) "copy aliases" 1 (List.length (pts_of_local p r "x"))

let vectors_src =
  Slice_workloads.Runtime_lib.vector_src
  ^ {|void main(String[] args) {
  Vector v1 = new Vector();
  Vector v2 = new Vector();
  v1.add("apple");
  v2.add("banana");
  Object x = v1.get(0);
  Object y = v2.get(0);
  print("done");
}|}

let test_container_cloning () =
  let p = load vectors_src in
  let r = Andersen.analyze p in
  let x = pts_of_local p r "x" and y = pts_of_local p r "y" in
  Alcotest.(check int) "x precise" 1 (List.length x);
  Alcotest.(check int) "y precise" 1 (List.length y);
  Alcotest.(check bool) "different vectors separated" true (x <> y);
  (* Vector methods are cloned per receiver object *)
  let add_mq = { Instr.mq_class = "Vector"; mq_name = "add" } in
  Alcotest.(check int) "add analyzed twice" 2
    (List.length (Andersen.mctxs_of_method r add_mq))

let test_no_obj_sens_merges () =
  let p = load vectors_src in
  let r = Andersen.analyze ~opts:Andersen.no_obj_sens_opts p in
  let x = pts_of_local p r "x" in
  (* without cloning, both strings flow out of the shared backing array *)
  Alcotest.(check int) "merged contents" 2 (List.length x);
  let add_mq = { Instr.mq_class = "Vector"; mq_name = "add" } in
  Alcotest.(check int) "add analyzed once" 1
    (List.length (Andersen.mctxs_of_method r add_mq))

let test_call_graph_virtual () =
  let src =
    {|class Animal { String speak() { return "?"; } }
class Dog extends Animal { String speak() { return "woof"; } }
class Cat extends Animal { String speak() { return "meow"; } }
void main(String[] args) {
  Animal a = new Dog();
  print(a.speak());
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  let m = Program.find_method_exn p main_mq in
  let targets = ref [] in
  Instr.iter_instrs m (fun _ i ->
      match i.Instr.i_kind with
      | Instr.Call { kind = Instr.Virtual "speak"; _ } ->
        targets := Andersen.call_targets_ci r main_mq ~stmt:i.Instr.i_id
      | _ -> ());
  Alcotest.(check int) "one target" 1 (List.length !targets);
  Alcotest.(check string) "dispatches to Dog" "Dog"
    (List.hd !targets).Instr.mq_class;
  (* Cat.speak is unreachable *)
  Alcotest.(check bool) "Cat.speak unreachable" false
    (List.exists
       (fun mq -> mq.Instr.mq_class = "Cat")
       (Andersen.reachable_methods r))

let test_cast_verification () =
  let src =
    {|class A { }
class B extends A { }
void main(String[] args) {
  A good = new B();
  B b = (B) good;
  A bad = new A();
  Object o = bad;
  print("x");
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  let m = Program.find_method_exn p main_mq in
  Instr.iter_instrs m (fun _ i ->
      match i.Instr.i_kind with
      | Instr.Cast (_, Types.Tclass "B", _) ->
        Alcotest.(check bool) "provable cast verified" true
          (Andersen.cast_verified r main_mq i)
      | _ -> ())

let test_tough_cast_detection () =
  let a = analysis Slice_workloads.Paper_figures.fig5 in
  let casts = Slice_core.Engine.tough_casts a in
  Alcotest.(check int) "fig5 has one tough cast" 1 (List.length casts)

let test_static_fields_flow () =
  let src =
    {|class G { static Object shared; }
void main(String[] args) {
  G.shared = "hello";
  Object x = G.shared;
  print("done");
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  Alcotest.(check int) "flows through static" 1
    (List.length (pts_of_local p r "x"))

(* Soundness vs execution: every method the interpreter actually runs must
   be in the static call graph. *)
let test_call_graph_soundness () =
  List.iter
    (fun (src, args, streams) ->
      let p = load src in
      let r = Andersen.analyze p in
      let reachable =
        List.map Instr.method_qname_to_string (Andersen.reachable_methods r)
      in
      (* interpret and record executed methods via the trace of statements *)
      let trace = Slice_interp.Dyntrace.create () in
      let _ =
        Slice_interp.Interp.run
          { Slice_interp.Interp.default_config with args; streams; trace = Some trace }
          p
      in
      let tbl = Program.build_stmt_table p in
      for i = 0 to Slice_interp.Dyntrace.length trace - 1 do
        let e = Slice_interp.Dyntrace.event trace i in
        match Hashtbl.find_opt tbl e.Slice_interp.Dyntrace.ev_stmt with
        | Some si ->
          let name = Instr.method_qname_to_string si.Program.s_method in
          if not (List.mem name reachable) then
            Alcotest.failf "executed method %s not in static call graph" name
        | None -> ()
      done)
    [ (vectors_src, [], []);
      (Slice_workloads.Paper_figures.fig1, fst Slice_workloads.Paper_figures.fig1_io,
       snd Slice_workloads.Paper_figures.fig1_io) ]

(* ---- bitset solver vs the Reference oracle ---- *)

(* Every workload of the BENCH suite; same list as bench/main.ml and
   test_props.ml. *)
let workload_programs =
  [ ("nanoxml", Slice_workloads.Prog_nanoxml.base);
    ("jtopas", Slice_workloads.Prog_jtopas.base);
    ("ant", Slice_workloads.Prog_ant.base);
    ("xmlsec", Slice_workloads.Prog_xmlsec.base);
    ("mtrt", Slice_workloads.Prog_mtrt.base);
    ("jess", Slice_workloads.Prog_jess.base);
    ("javac", Slice_workloads.Prog_javac.base);
    ("jack", Slice_workloads.Prog_jack.base);
    ("pipeline-32", Slice_workloads.Generators.pipeline_program ~stages:32) ]

let dump = Alcotest.(list (pair string (list string)))

(* The two solvers intern objects and method contexts in different
   orders (FIFO vs LIFO worklists), so parity is checked on the
   canonical-key dumps: identical points-to sets per node description,
   identical call graph, identical object counts — for both sensitivity
   settings. *)
let test_solver_pts_parity () =
  List.iter
    (fun (name, src) ->
      let p = Slice_front.Frontend.load_exn ~file:(name ^ ".tj") src in
      List.iter
        (fun (sens, opts) ->
          let bit = Andersen.analyze ~opts p in
          let oracle = Andersen.Reference.analyze ~opts p in
          let ctx = Printf.sprintf "%s (%s)" name sens in
          Alcotest.check dump (ctx ^ " pts sets")
            (Andersen.Reference.pts_dump oracle)
            (Andersen.pts_dump bit);
          Alcotest.check dump (ctx ^ " call graph")
            (Andersen.Reference.call_graph_dump oracle)
            (Andersen.call_graph_dump bit);
          Alcotest.(check int)
            (ctx ^ " num_objects")
            (Andersen.Reference.num_objects oracle)
            (Andersen.num_objects bit);
          (* [of_reference] must lift the oracle without changing it. *)
          let lifted = Andersen.of_reference oracle in
          Alcotest.check dump (ctx ^ " lifted pts sets")
            (Andersen.pts_dump bit)
            (Andersen.pts_dump lifted);
          Alcotest.check dump (ctx ^ " lifted call graph")
            (Andersen.call_graph_dump bit)
            (Andersen.call_graph_dump lifted))
        [ ("objsens", Andersen.default_opts);
          ("ci", Andersen.no_obj_sens_opts) ])
    workload_programs

(* End-to-end: the whole pipeline on either solver produces identical
   slices, every mode and direction, at line granularity (node ids are
   interning-order dependent, lines are not). *)
let test_solver_slice_parity () =
  let module E = Slice_core.Engine in
  let module Sdg = Slice_core.Sdg in
  let module Slicer = Slice_core.Slicer in
  List.iter
    (fun (name, src) ->
      let file = name ^ ".tj" in
      let a_bit = E.of_source ~solver:`Bitset ~file src in
      let a_ref = E.of_source ~solver:`Reference ~file src in
      (* first / middle / last source lines that carry statements *)
      let lines =
        let g = a_bit.E.sdg in
        let ls = ref [] in
        for n = 0 to Sdg.num_nodes g - 1 do
          if Sdg.node_countable g n then
            ls := (Sdg.node_loc g n).Slice_ir.Loc.line :: !ls
        done;
        match List.sort_uniq compare !ls with
        | [] -> []
        | sorted ->
          let arr = Array.of_list sorted in
          let k = Array.length arr in
          List.sort_uniq compare [ arr.(0); arr.(k / 2); arr.(k - 1) ]
      in
      Alcotest.(check bool) (name ^ " has seed lines") true (lines <> []);
      List.iter
        (fun mode ->
          List.iter
            (fun forward ->
              let ctx =
                Printf.sprintf "%s %s %s" name
                  (Slicer.mode_to_string mode)
                  (if forward then "fwd" else "bwd")
              in
              Alcotest.(check (list (pair int (list int))))
                ctx
                (E.slice_batch ~forward a_ref ~lines mode)
                (E.slice_batch ~forward a_bit ~lines mode))
            [ false; true ])
        [ Slicer.Thin; Slicer.Thin_with_aliasing 1;
          Slicer.Thin_with_aliasing 2; Slicer.Traditional_data;
          Slicer.Traditional_full ])
    workload_programs

let suite =
  [ Alcotest.test_case "separation" `Quick test_separation;
    Alcotest.test_case "copy merging" `Quick test_merging_through_copy;
    Alcotest.test_case "container cloning" `Quick test_container_cloning;
    Alcotest.test_case "no-objsens merges" `Quick test_no_obj_sens_merges;
    Alcotest.test_case "virtual call graph" `Quick test_call_graph_virtual;
    Alcotest.test_case "cast verification" `Quick test_cast_verification;
    Alcotest.test_case "tough cast detection" `Quick test_tough_cast_detection;
    Alcotest.test_case "static field flow" `Quick test_static_fields_flow;
    Alcotest.test_case "call graph soundness" `Quick test_call_graph_soundness;
    Alcotest.test_case "solver parity: pts + call graph" `Quick
      test_solver_pts_parity;
    Alcotest.test_case "solver parity: slices all modes" `Quick
      test_solver_slice_parity ]
