(* Golden CLI tests: hostile inputs must produce clean one-line errors
   and documented exit codes — never an OCaml backtrace.  The contract:

   exit 0   success
   exit 1   usage / load errors ("thinslice: ..." on stderr), fuzz runs
            that found violations, and explain's non-member answer
   exit 2   the interpreted program itself failed (run subcommand), and
            hard errors under explain — whose exit 1 means "not in the
            slice", so its load/seed failures must be distinguishable *)

let exe_path = Filename.concat (Filename.concat ".." "bin") "thinslice.exe"

(* Plain substring search; the test tree does not depend on Str. *)
let contains ~(needle : string) (hay : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Run the CLI, capturing (exit code, stdout, stderr). *)
let run_cli (args : string) : int * string * string =
  let out_f = Filename.temp_file "cli_out" ".txt" in
  let err_f = Filename.temp_file "cli_err" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote exe_path) args
      (Filename.quote out_f) (Filename.quote err_f)
  in
  let rc = Sys.command cmd in
  let slurp f =
    let ic = open_in_bin f in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove f;
    s
  in
  (rc, slurp out_f, slurp err_f)

let with_tj src f =
  let path = Filename.temp_file "cli_prog" ".tj" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* Whatever else happens, no raw exception may escape to the user. *)
let check_clean what err =
  List.iter
    (fun marker ->
      if contains ~needle:marker err then
        Alcotest.failf "%s: raw exception leaked to stderr: %s" what err)
    [ "Fatal error"; "Raised at"; "Called from" ]

let skip_if_missing () = if not (Sys.file_exists exe_path) then Alcotest.skip ()

let test_malformed_program () =
  skip_if_missing ();
  with_tj "void main(String[] args) { int x = ; }" (fun path ->
      let rc, _, err =
        run_cli (Printf.sprintf "slice %s --line 1" (Filename.quote path))
      in
      Alcotest.(check int) "exit 1" 1 rc;
      check_clean "malformed program" err;
      Alcotest.(check bool) "file:line diagnostic" true
        (contains ~needle:"parse error" err))

let test_missing_file () =
  skip_if_missing ();
  let rc, _, err = run_cli "slice /nonexistent/no.tj --line 1" in
  Alcotest.(check int) "exit 1" 1 rc;
  check_clean "missing file" err

let test_bad_input_spec () =
  skip_if_missing ();
  with_tj "void main(String[] args) { print(\"k\"); }" (fun path ->
      let rc, _, err =
        run_cli
          (Printf.sprintf "run %s --input nodelimiter" (Filename.quote path))
      in
      Alcotest.(check int) "exit 1" 1 rc;
      check_clean "bad --input" err;
      Alcotest.(check bool) "explains the expected shape" true
        (contains ~needle:"NAME=PATH" err))

let test_trace_events_nonpositive () =
  skip_if_missing ();
  with_tj "void main(String[] args) { print(\"k\"); }" (fun path ->
      let rc, _, err =
        run_cli (Printf.sprintf "run %s --trace-events 0" (Filename.quote path))
      in
      Alcotest.(check int) "exit 1" 1 rc;
      check_clean "bad --trace-events" err)

let test_trace_overflow_clean () =
  skip_if_missing ();
  let src =
    "void main(String[] args) {\n\
    \  int i = 0;\n\
    \  while (i < 1000) { i = i + 1; }\n\
    \  print(itoa(i));\n\
     }\n"
  in
  with_tj src (fun path ->
      let rc, out, err =
        run_cli (Printf.sprintf "run %s --trace-events 5" (Filename.quote path))
      in
      Alcotest.(check int) "exit 2 like other interpreter failures" 2 rc;
      check_clean "trace overflow" err;
      Alcotest.(check bool) "names the limit" true
        (contains ~needle:"trace event limit" out))

(* --- explain / report ----------------------------------------------- *)

let explain_demo =
  "void main(String[] args) {\n\
  \  String s = args[0];\n\
  \  String t = s + \"!\";\n\
  \  if (s.length() > 0) {\n\
  \    print(t);\n\
  \  }\n\
   }\n"

let test_explain_member () =
  skip_if_missing ();
  with_tj explain_demo (fun path ->
      let rc, out, err =
        run_cli (Printf.sprintf "explain %s 2 --seed 5" (Filename.quote path))
      in
      Alcotest.(check int) "exit 0" 0 rc;
      check_clean "explain member" err;
      Alcotest.(check bool) "path shows the seed step" true
        (contains ~needle:"seed" out);
      (* JSON variant carries the schema tag *)
      let rc, out, err =
        run_cli
          (Printf.sprintf "explain %s 2 --seed 5 --json" (Filename.quote path))
      in
      Alcotest.(check int) "json exit 0" 0 rc;
      check_clean "explain --json" err;
      Alcotest.(check bool) "schema tag" true
        (contains ~needle:"thinslice.explain/v1" out))

let test_explain_not_in_slice () =
  skip_if_missing ();
  with_tj explain_demo (fun path ->
      (* the if-guard (line 4) is outside the THIN slice of print(t) *)
      let rc, _, err =
        run_cli
          (Printf.sprintf "explain %s 4 --seed 5 --mode thin"
             (Filename.quote path))
      in
      Alcotest.(check int) "exit 1" 1 rc;
      check_clean "explain non-member" err;
      Alcotest.(check bool) "says it is not in the slice" true
        (contains ~needle:"not in the" err))

(* explain reserves exit 1 for "not in the slice"; every hard error —
   unloadable file, malformed program, no statement at the seed — must
   exit 2 so scripts can tell the two apart. *)
let test_explain_hard_errors_exit2 () =
  skip_if_missing ();
  let rc, _, err = run_cli "explain /nonexistent/no.tj 2 --seed 5" in
  Alcotest.(check int) "missing file: exit 2" 2 rc;
  check_clean "explain missing file" err;
  with_tj "void main(String[] args) { int x = ; }" (fun path ->
      let rc, _, err =
        run_cli (Printf.sprintf "explain %s 1 --seed 1" (Filename.quote path))
      in
      Alcotest.(check int) "malformed program: exit 2" 2 rc;
      check_clean "explain malformed program" err);
  with_tj explain_demo (fun path ->
      let rc, _, err =
        run_cli
          (Printf.sprintf "explain %s 2 --seed 999" (Filename.quote path))
      in
      Alcotest.(check int) "no statement at seed line: exit 2" 2 rc;
      check_clean "explain bad seed line" err;
      Alcotest.(check bool) "names the line" true
        (contains ~needle:"no statement" err))

let test_explain_missing_seed () =
  skip_if_missing ();
  with_tj explain_demo (fun path ->
      let rc, _, err =
        run_cli (Printf.sprintf "explain %s 2" (Filename.quote path))
      in
      Alcotest.(check int) "cmdliner error without --seed" 124 rc;
      check_clean "explain without --seed" err)

let test_report_layers_cli () =
  skip_if_missing ();
  with_tj explain_demo (fun path ->
      let rc, out, err =
        run_cli
          (Printf.sprintf "report %s --line 5 --mode full"
             (Filename.quote path))
      in
      Alcotest.(check int) "exit 0" 0 rc;
      check_clean "report" err;
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("mentions " ^ needle) true
            (contains ~needle out))
        [ "producer"; "control-explainer" ];
      let rc, out, err =
        run_cli
          (Printf.sprintf "report %s --line 5 --mode full --json"
             (Filename.quote path))
      in
      Alcotest.(check int) "json exit 0" 0 rc;
      check_clean "report --json" err;
      Alcotest.(check bool) "schema tag" true
        (contains ~needle:"thinslice.explain/v1" out))

let test_fuzz_bad_count () =
  skip_if_missing ();
  let rc, _, err = run_cli "fuzz --count 0" in
  Alcotest.(check int) "exit 1" 1 rc;
  check_clean "fuzz --count 0" err

let test_fuzz_unknown_fault () =
  skip_if_missing ();
  let rc, _, err = run_cli "fuzz --fault no-such-fault --count 1" in
  Alcotest.(check int) "cmdliner flag error" 124 rc;
  check_clean "unknown fault" err

let test_fuzz_smoke_summary () =
  skip_if_missing ();
  (* tiny smoke: the summary line CI greps must be present and clean *)
  let rc, out, err = run_cli "fuzz --seed 7 --count 3 --max-size 12" in
  Alcotest.(check int) "exit 0" 0 rc;
  check_clean "fuzz smoke" err;
  Alcotest.(check bool) "summary line" true
    (contains
       ~needle:"fuzz: seed=7 count=3 max-size=12 fault=none violations=0" out)

let suite =
  [ Alcotest.test_case "malformed program: clean exit 1" `Quick
      test_malformed_program;
    Alcotest.test_case "missing file: clean exit 1" `Quick test_missing_file;
    Alcotest.test_case "run --input without '=': clean exit 1" `Quick
      test_bad_input_spec;
    Alcotest.test_case "run --trace-events 0: clean exit 1" `Quick
      test_trace_events_nonpositive;
    Alcotest.test_case "trace overflow: clean exit 2" `Quick
      test_trace_overflow_clean;
    Alcotest.test_case "explain: witness for a member line" `Quick
      test_explain_member;
    Alcotest.test_case "explain: non-member exits 1" `Quick
      test_explain_not_in_slice;
    Alcotest.test_case "explain: hard errors exit 2" `Quick
      test_explain_hard_errors_exit2;
    Alcotest.test_case "explain: --seed is required" `Quick
      test_explain_missing_seed;
    Alcotest.test_case "report: layers, pretty and JSON" `Quick
      test_report_layers_cli;
    Alcotest.test_case "fuzz --count 0: clean exit 1" `Quick
      test_fuzz_bad_count;
    Alcotest.test_case "fuzz --fault unknown: cmdliner error" `Quick
      test_fuzz_unknown_fault;
    Alcotest.test_case "fuzz smoke prints the summary line" `Quick
      test_fuzz_smoke_summary ]
