(* Slicer tests: the subset ordering between modes, seed membership, exact
   thin slices for the paper's figures, and the BFS inspection metric. *)

open Slice_core
open Slice_workloads
open Helpers

module IntSet = Set.Make (Int)

let subset a b = IntSet.subset (IntSet.of_list a) (IntSet.of_list b)

let modes_ordered src seed_pattern =
  let a = analysis src in
  let line = line_of ~src ~pattern:seed_pattern in
  let seeds = Engine.seeds_at_line_exn a line in
  let s mode = Slicer.slice a.Engine.sdg ~seeds mode in
  let thin = s Slicer.Thin in
  let alias1 = s (Slicer.Thin_with_aliasing 1) in
  let alias2 = s (Slicer.Thin_with_aliasing 2) in
  let trad = s Slicer.Traditional_data in
  let full = s Slicer.Traditional_full in
  Alcotest.(check bool) "thin <= alias1" true (subset thin alias1);
  Alcotest.(check bool) "alias1 <= alias2" true (subset alias1 alias2);
  Alcotest.(check bool) "alias2 <= trad" true (subset alias2 trad);
  Alcotest.(check bool) "trad <= full" true (subset trad full);
  Alcotest.(check bool) "seed in thin" true
    (List.for_all (fun sd -> List.mem sd thin) seeds)

let test_mode_ordering () =
  modes_ordered Paper_figures.fig1 Paper_figures.fig1_seed;
  modes_ordered Paper_figures.fig4 "boolean open = f.isOpen();";
  modes_ordered Prog_nanoxml.base "print((String) this.lines.get(i));"

let test_fig1_exact_thin () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let thin = Engine.slice_from_line a ~line Slicer.Thin in
  (* the producer chain of the printed string (paper, section 1) *)
  let expected_patterns =
    [ "this.elems[count++] = p;";              (* Vector.add's store *)
      "return this.elems[ind];";               (* Vector.get's load *)
      "String fullName = input.readLine();";
      {|int spaceInd = fullName.indexOf(" ");|};
      "String firstName = fullName.substring(0, spaceInd - 1);";
      "firstNames.add(firstName);";
      "String firstName = (String) firstNames.get(i);";
      {|print("FIRST NAME: " + firstName);|};
      "Vector firstNames = readNames(new InputStream(args[0]));" ]
  in
  let expected = List.map (fun pat -> line_of ~src ~pattern:pat) expected_patterns in
  Alcotest.(check (list int)) "thin slice lines" (List.sort compare expected)
    (List.sort compare thin);
  (* none of the SessionState plumbing is in the thin slice *)
  List.iter
    (fun pat ->
      Alcotest.(check bool) (pat ^ " excluded") false
        (List.mem (line_of ~src ~pattern:pat) thin))
    [ "void setNames(Vector v) { this.names = v; }";
      "SessionState s = getState();";
      "return Globals.state;" ]

let test_fig1_traditional_includes_plumbing () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let trad = Engine.slice_from_line a ~line Slicer.Traditional_data in
  List.iter
    (fun pat ->
      Alcotest.(check bool) (pat ^ " included") true
        (List.mem (line_of ~src ~pattern:pat) trad))
    [ "void setNames(Vector v) { this.names = v; }";
      "SessionState s = getState();";
      "return Globals.state;";
      "Vector() { this.elems = new Object[10]; this.count = 0; }" ]

let test_thin_ignores_base_pointers () =
  (* the defining property: base-pointer manipulation of the container is
     not in the thin slice (paper, "Advantages of Thin Slicing") *)
  let src = Paper_figures.fig2 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig2_seed in
  let thin = Engine.slice_from_line ~filter:Engine.Only_loads a ~line Slicer.Thin in
  let expected =
    [ line_of ~src ~pattern:"B y = new B();";
      line_of ~src ~pattern:"w.f = y;";
      line_of ~src ~pattern:Paper_figures.fig2_seed ]
  in
  Alcotest.(check (list int)) "fig2 thin = {3,5,7}" (List.sort compare expected)
    (List.sort compare thin)

let test_bfs_metric () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let buggy = line_of ~src ~pattern:Paper_figures.fig1_buggy_line in
  let thin = Engine.inspect_from_line a ~line ~desired:[ buggy ] Slicer.Thin in
  let trad =
    Engine.inspect_from_line a ~line ~desired:[ buggy ] Slicer.Traditional_data
  in
  Alcotest.(check bool) "thin finds the bug" true thin.Inspect.found;
  Alcotest.(check bool) "trad finds the bug" true trad.Inspect.found;
  Alcotest.(check bool) "thin inspects no more than trad" true
    (thin.Inspect.inspected <= trad.Inspect.inspected);
  Alcotest.(check bool) "inspected <= slice size" true
    (thin.Inspect.inspected <= thin.Inspect.slice_size);
  (* unreachable desired: metric reports not-found with full exploration *)
  let missing = Engine.inspect_from_line a ~line ~desired:[ 99999 ] Slicer.Thin in
  Alcotest.(check bool) "missing not found" false missing.Inspect.found;
  Alcotest.(check int) "explored everything" missing.Inspect.slice_size
    missing.Inspect.inspected

let test_bfs_order_deterministic () =
  let src = Prog_nanoxml.base in
  let a = analysis src in
  let line = line_of ~src ~pattern:"print((String) this.lines.get(i));" in
  let seeds = Engine.seeds_at_line_exn a line in
  let r1 = Inspect.bfs a.Engine.sdg ~seeds ~desired:[] Slicer.Traditional_data in
  let r2 = Inspect.bfs a.Engine.sdg ~seeds ~desired:[] Slicer.Traditional_data in
  Alcotest.(check bool) "same order" true (r1.Inspect.order = r2.Inspect.order)

(* Regression for the duplicate-enqueue fix: with a zero aliasing budget
   no costly edge is ever crossed, so [Thin_with_aliasing 0] must traverse
   EXACTLY like [Thin] — same nodes and, walk for walk, the same telemetry
   (the old walk could re-enqueue nodes and visit them twice). *)
let test_alias0_equals_thin () =
  Slice_obs.set_enabled true;
  let src = Paper_figures.fig2 in
  let a = analysis src in
  let g = a.Engine.sdg in
  let line = line_of ~src ~pattern:Paper_figures.fig2_seed in
  let seeds = Engine.seeds_at_line_exn a line in
  let thin_nodes, thin_snap =
    Slice_obs.scoped (fun () -> Slicer.slice g ~seeds Slicer.Thin)
  in
  let alias0_nodes, alias0_snap =
    Slice_obs.scoped (fun () ->
        Slicer.slice g ~seeds (Slicer.Thin_with_aliasing 0))
  in
  Alcotest.(check (list int)) "same nodes" thin_nodes alias0_nodes;
  let slicer_counters snap =
    List.filter
      (fun (k, _) -> String.length k >= 7 && String.sub k 0 7 = "slicer.")
      snap.Slice_obs.snap_counters
  in
  Alcotest.(check (list (pair string int)))
    "same traversal counters"
    (slicer_counters thin_snap) (slicer_counters alias0_snap);
  (* and a positive budget is genuinely different on fig2 (base pointers) *)
  Alcotest.(check bool) "alias1 differs" true
    (Slicer.slice g ~seeds (Slicer.Thin_with_aliasing 1) <> thin_nodes)

(* The chop is the intersection of the forward and backward walks; the
   sorted-merge implementation is symmetric in which side is enumerated
   (the old one filtered the backward walk through a table of the forward
   walk only) and emits a sorted-unique list. *)
let test_chop_symmetric () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let g = a.Engine.sdg in
  let seeds_of pat =
    Engine.seeds_at_line_exn a (line_of ~src ~pattern:pat)
  in
  let source = seeds_of "String fullName = input.readLine();" in
  let sink = seeds_of Paper_figures.fig1_seed in
  List.iter
    (fun mode ->
      let chop = Slicer.chop g ~source ~sink mode in
      let fwd = IntSet.of_list (Slicer.forward_slice g ~seeds:source mode) in
      let bwd = IntSet.of_list (Slicer.slice g ~seeds:sink mode) in
      Alcotest.(check (list int))
        ("chop = fwd /\\ bwd under " ^ Slicer.mode_to_string mode)
        (IntSet.elements (IntSet.inter fwd bwd))
        chop;
      Alcotest.(check (list int))
        ("chop = bwd /\\ fwd under " ^ Slicer.mode_to_string mode)
        (IntSet.elements (IntSet.inter bwd fwd))
        chop;
      Alcotest.(check (list int))
        ("sorted-unique under " ^ Slicer.mode_to_string mode)
        (List.sort_uniq compare chop) chop)
    [ Slicer.Thin; Slicer.Thin_with_aliasing 1; Slicer.Traditional_data;
      Slicer.Traditional_full ];
  (* non-trivial on at least one mode *)
  Alcotest.(check bool) "thin chop non-empty" true
    (Slicer.chop g ~source ~sink Slicer.Thin <> [])

(* Batched slicing returns, per line, exactly what the one-at-a-time
   entry point returns (scratch reuse must not leak state across seeds). *)
let test_batch_matches_single () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let lines =
    List.map
      (fun pat -> line_of ~src ~pattern:pat)
      [ Paper_figures.fig1_seed;
        "String fullName = input.readLine();";
        "firstNames.add(firstName);" ]
  in
  List.iter
    (fun mode ->
      let batched = Engine.slice_batch a ~lines mode in
      List.iter2
        (fun line (line', batch_lines) ->
          Alcotest.(check int) "line order preserved" line line';
          Alcotest.(check (list int))
            (Printf.sprintf "batch = single (line %d, %s)" line
               (Slicer.mode_to_string mode))
            (Engine.slice_from_line a ~line mode)
            batch_lines)
        lines batched)
    [ Slicer.Thin; Slicer.Thin_with_aliasing 2; Slicer.Traditional_full ];
  (* unknown line raises the same error as the single-slice path *)
  Alcotest.check_raises "no seed" (Engine.No_seed 99999) (fun () ->
      ignore (Engine.slice_batch a ~lines:[ 99999 ] Slicer.Thin))

(* A straight chain of [n] base-pointer hops: slicing backward from the
   last load under [Thin_with_aliasing k] crosses exactly [min k 254]
   costly edges, so the slice grows by one load per unit of budget until
   the clamp saturates.  Long enough (n > 255) to expose any clamp
   disagreement between the CSR walk and [Reference]. *)
let chain_program (n : int) : string =
  let b = Buffer.create (n * 24) in
  Buffer.add_string b "class Box { Box f; }\n";
  Buffer.add_string b "void main(String[] args) {\n";
  Buffer.add_string b "  Box b0 = new Box();\n";
  Buffer.add_string b "  b0.f = b0;\n";
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf "  Box b%d = b%d.f;\n" i (i - 1))
  done;
  Buffer.add_string b "  print(\"done\");\n}\n";
  Buffer.contents b

(* Regression for the budget-saturation parity gap: the CSR walk stores
   budget+1 in a byte and clamped [Thin_with_aliasing k] at 254, while
   [Reference] used the unclamped k — so the two implementations diverged
   for k >= 255 on any path longer than the clamp.  The clamp now lives
   in ONE place ([Slicer.initial_budget], exposed as
   [Slicer.max_aliasing_budget]) that every traversal reads. *)
let test_budget_clamp_boundary () =
  Alcotest.(check int) "saturation point" 254 Slicer.max_aliasing_budget;
  Alcotest.(check int) "initial_budget clamps"
    Slicer.max_aliasing_budget
    (Slicer.initial_budget (Slicer.Thin_with_aliasing 1000));
  Alcotest.(check int) "initial_budget below the clamp" 253
    (Slicer.initial_budget (Slicer.Thin_with_aliasing 253));
  let n = 300 in
  let src = chain_program n in
  let a = analysis src in
  let g = a.Engine.sdg in
  Sdg.freeze g;
  let line = line_of ~src ~pattern:(Printf.sprintf "Box b%d = b%d.f;" n (n - 1)) in
  let seeds = Engine.seeds_at_line_exn ~filter:Engine.Only_loads a line in
  let csr k = Slicer.slice g ~seeds (Slicer.Thin_with_aliasing k) in
  let reference k =
    Slicer.Reference.slice g ~seeds (Slicer.Thin_with_aliasing k)
  in
  List.iter
    (fun k ->
      Alcotest.(check (list int))
        (Printf.sprintf "CSR == Reference at k=%d" k)
        (reference k) (csr k))
    [ 253; 254; 255; 1000 ];
  Alcotest.(check (list int)) "k=255 saturates to k=254" (csr 254) (csr 255);
  Alcotest.(check (list int)) "k=1000 saturates to k=254" (csr 254) (csr 1000);
  Alcotest.(check bool) "k=253 is strictly below the saturation point" true
    (List.length (csr 253) < List.length (csr 254))

(* Regression: [Engine.slice_batch] used to force [Sdg.freeze] on the
   analysis, silently converting an [analyze ~freeze:false] baseline to
   the CSR layout mid-benchmark.  It must slice on whatever adjacency the
   analysis carries.  The parallel executor, by contrast, documents that
   it freezes (concurrent walkers need the immutable arrays). *)
let test_batch_respects_freeze () =
  let src = Paper_figures.fig1 in
  let a = Engine.analyze ~freeze:false (load src) in
  Alcotest.(check bool) "unfrozen after analyze" false
    (Sdg.is_frozen a.Engine.sdg);
  let lines = [ line_of ~src ~pattern:Paper_figures.fig1_seed ] in
  let seq = Engine.slice_batch a ~lines Slicer.Thin in
  Alcotest.(check bool) "slice_batch leaves the freeze choice alone" false
    (Sdg.is_frozen a.Engine.sdg);
  let par = Engine.slice_batch_par ~jobs:2 a ~lines Slicer.Thin in
  Alcotest.(check bool) "slice_batch_par freezes for its workers" true
    (Sdg.is_frozen a.Engine.sdg);
  List.iter2
    (fun (l, s) (l', p) ->
      Alcotest.(check int) "same line" l l';
      Alcotest.(check (list int)) "same slice either side of the freeze" s p)
    seq par

(* Regression for the multi-file duplicate-lines bug: distinct files share
   line numbers, and [slice_line_numbers] deduplicated (file, line) PAIRS
   before dropping the file — so a slice touching a.tj:3 and b.tj:3
   reported line 3 twice.  The projection must be sorted-distinct over the
   bare ints. *)
let two_file_a =
  "void main(String[] args) {\n\
  \  int x = mk();\n\
  \  print(itoa(use(x)));\n\
   }\n"

let two_file_b =
  "int mk() {\n\
  \  int a = 1;\n\
  \  return a + 1;\n\
   }\n\
   int use(int v) {\n\
  \  return v * 2;\n\
   }\n"

let test_two_file_line_numbers () =
  let a = Engine.of_sources [ ("a.tj", two_file_a); ("b.tj", two_file_b) ] in
  let g = a.Engine.sdg in
  let seeds = Engine.seeds_at_line_exn ~filter:Engine.Only_calls a 3 in
  let mode = Slicer.Traditional_data in
  let locs = Slicer.nodes_to_lines g (Slicer.slice g ~seeds mode) in
  let files =
    List.sort_uniq compare (List.map (fun l -> l.Slice_ir.Loc.file) locs)
  in
  Alcotest.(check (list string)) "slice spans both files" [ "a.tj"; "b.tj" ]
    files;
  let lines = Slicer.slice_line_numbers g ~seeds mode in
  Alcotest.(check bool) "projection is non-vacuous (some line is in both files)"
    true
    (List.length locs > List.length lines);
  Alcotest.(check (list int)) "sorted distinct ints"
    (List.sort_uniq compare lines)
    lines;
  Alcotest.(check (list int)) "locs_to_line_numbers agrees"
    (Slicer.locs_to_line_numbers locs)
    lines;
  (* the Engine batch projection goes through the same dedup *)
  List.iter
    (fun (_, batch_lines) ->
      Alcotest.(check (list int)) "batch lines sorted distinct"
        (List.sort_uniq compare batch_lines)
        batch_lines)
    (Engine.slice_batch ~filter:Engine.Only_calls a ~lines:[ 3 ] mode)

(* Explicit scratch handles: one handle reused across walks, graphs and
   directions returns exactly what the per-domain implicit scratch does
   (walks must fully restore the buffers they touch). *)
let test_explicit_scratch_reuse () =
  let src1 = Paper_figures.fig1 and src2 = Prog_nanoxml.base in
  let a1 = analysis src1 and a2 = analysis src2 in
  let g1 = a1.Engine.sdg and g2 = a2.Engine.sdg in
  let scratch = Slicer.create_scratch g1 in
  let seeds1 =
    Engine.seeds_at_line_exn a1 (line_of ~src:src1 ~pattern:Paper_figures.fig1_seed)
  in
  let seeds2 =
    Engine.seeds_at_line_exn a2
      (line_of ~src:src2 ~pattern:"print((String) this.lines.get(i));")
  in
  List.iter
    (fun mode ->
      Alcotest.(check (list int)) "g1 backward with explicit scratch"
        (Slicer.slice g1 ~seeds:seeds1 mode)
        (Slicer.slice ~scratch g1 ~seeds:seeds1 mode);
      (* the same handle then walks a BIGGER graph (grow-only) *)
      Alcotest.(check (list int)) "g2 backward with the same handle"
        (Slicer.slice g2 ~seeds:seeds2 mode)
        (Slicer.slice ~scratch g2 ~seeds:seeds2 mode);
      Alcotest.(check (list int)) "g2 forward with the same handle"
        (Slicer.forward_slice g2 ~seeds:seeds2 mode)
        (Slicer.forward_slice ~scratch g2 ~seeds:seeds2 mode);
      (* and back to the small graph *)
      Alcotest.(check (list int)) "g1 again with the same handle"
        (Slicer.slice g1 ~seeds:seeds1 mode)
        (Slicer.slice ~scratch g1 ~seeds:seeds1 mode))
    [ Slicer.Thin; Slicer.Thin_with_aliasing 1; Slicer.Traditional_full ]

(* Shrink: the serve daemon's eviction path.  Growing a handle on a big
   graph, shrinking, and re-walking must (a) actually release capacity,
   (b) stay correct — the next walk just regrows. *)
let test_scratch_shrink_roundtrip () =
  let small = analysis Paper_figures.fig1 and big = analysis Prog_nanoxml.base in
  let g_small = small.Engine.sdg and g_big = big.Engine.sdg in
  let n_small = Sdg.num_nodes g_small and n_big = Sdg.num_nodes g_big in
  Alcotest.(check bool) "nanoxml dwarfs fig1" true (n_big > n_small);
  let seeds =
    Engine.seeds_at_line_exn big
      (line_of ~src:Prog_nanoxml.base
         ~pattern:"print((String) this.lines.get(i));")
  in
  let scratch = Slicer.create_scratch g_small in
  Alcotest.(check int) "created at the small graph's size" n_small
    (Slicer.scratch_capacity scratch);
  let r1 = Slicer.slice ~scratch g_big ~seeds Slicer.Thin in
  Alcotest.(check bool) "walking the big graph grew it" true
    (Slicer.scratch_capacity scratch >= n_big);
  Slicer.shrink_scratch scratch ~keep:n_small;
  Alcotest.(check int) "shrunk back to keep" n_small
    (Slicer.scratch_capacity scratch);
  Alcotest.(check (list int)) "correct after shrinking (regrows)" r1
    (Slicer.slice ~scratch g_big ~seeds Slicer.Thin);
  Slicer.shrink_scratch scratch ~keep:0;
  Alcotest.(check int) "keep clamps to at least one node" 1
    (Slicer.scratch_capacity scratch)

let test_provenance_shrink_invalidates () =
  let small = analysis Paper_figures.fig1 and big = analysis Prog_nanoxml.base in
  let g_big = big.Engine.sdg in
  let n_small = Sdg.num_nodes small.Engine.sdg in
  let seeds =
    Engine.seeds_at_line_exn big
      (line_of ~src:Prog_nanoxml.base
         ~pattern:"print((String) this.lines.get(i));")
  in
  let prov = Slicer.create_provenance small.Engine.sdg in
  let r1 = Slicer.slice ~prov g_big ~seeds Slicer.Thin in
  let member = List.hd (List.rev r1) in
  Alcotest.(check bool) "witness before shrink" true
    (Slicer.witness prov member <> None);
  Slicer.shrink_provenance prov ~keep:n_small;
  Alcotest.(check int) "side tables shrunk" n_small
    (Slicer.provenance_capacity prov);
  (* stale records must not survive the shrink: no mode, no witnesses *)
  Alcotest.(check bool) "recorded mode cleared" true
    (Slicer.provenance_mode prov = None);
  Alcotest.(check bool) "witness gone after shrink" true
    (Slicer.witness prov member = None);
  (* a fresh recorded walk through the shrunk handle works again *)
  let r2 = Slicer.slice ~prov g_big ~seeds Slicer.Thin in
  Alcotest.(check (list int)) "re-walk equal" r1 r2;
  Alcotest.(check bool) "witness restored by the re-walk" true
    (Slicer.witness prov member <> None)

let suite =
  [ Alcotest.test_case "mode ordering" `Quick test_mode_ordering;
    Alcotest.test_case "fig1 exact thin slice" `Quick test_fig1_exact_thin;
    Alcotest.test_case "fig1 traditional plumbing" `Quick
      test_fig1_traditional_includes_plumbing;
    Alcotest.test_case "thin ignores base pointers" `Quick
      test_thin_ignores_base_pointers;
    Alcotest.test_case "bfs metric" `Quick test_bfs_metric;
    Alcotest.test_case "bfs deterministic" `Quick test_bfs_order_deterministic;
    Alcotest.test_case "alias budget 0 == thin" `Quick test_alias0_equals_thin;
    Alcotest.test_case "chop symmetric" `Quick test_chop_symmetric;
    Alcotest.test_case "batch matches single" `Quick test_batch_matches_single;
    Alcotest.test_case "budget clamp boundary parity" `Quick
      test_budget_clamp_boundary;
    Alcotest.test_case "batch respects freeze choice" `Quick
      test_batch_respects_freeze;
    Alcotest.test_case "two-file line-number dedup" `Quick
      test_two_file_line_numbers;
    Alcotest.test_case "explicit scratch reuse" `Quick
      test_explicit_scratch_reuse;
    Alcotest.test_case "scratch shrink roundtrip" `Quick
      test_scratch_shrink_roundtrip;
    Alcotest.test_case "provenance shrink invalidates records" `Quick
      test_provenance_shrink_invalidates ]
