(* Slicer tests: the subset ordering between modes, seed membership, exact
   thin slices for the paper's figures, and the BFS inspection metric. *)

open Slice_core
open Slice_workloads
open Helpers

module IntSet = Set.Make (Int)

let subset a b = IntSet.subset (IntSet.of_list a) (IntSet.of_list b)

let modes_ordered src seed_pattern =
  let a = analysis src in
  let line = line_of ~src ~pattern:seed_pattern in
  let seeds = Engine.seeds_at_line_exn a line in
  let s mode = Slicer.slice a.Engine.sdg ~seeds mode in
  let thin = s Slicer.Thin in
  let alias1 = s (Slicer.Thin_with_aliasing 1) in
  let alias2 = s (Slicer.Thin_with_aliasing 2) in
  let trad = s Slicer.Traditional_data in
  let full = s Slicer.Traditional_full in
  Alcotest.(check bool) "thin <= alias1" true (subset thin alias1);
  Alcotest.(check bool) "alias1 <= alias2" true (subset alias1 alias2);
  Alcotest.(check bool) "alias2 <= trad" true (subset alias2 trad);
  Alcotest.(check bool) "trad <= full" true (subset trad full);
  Alcotest.(check bool) "seed in thin" true
    (List.for_all (fun sd -> List.mem sd thin) seeds)

let test_mode_ordering () =
  modes_ordered Paper_figures.fig1 Paper_figures.fig1_seed;
  modes_ordered Paper_figures.fig4 "boolean open = f.isOpen();";
  modes_ordered Prog_nanoxml.base "print((String) this.lines.get(i));"

let test_fig1_exact_thin () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let thin = Engine.slice_from_line a ~line Slicer.Thin in
  (* the producer chain of the printed string (paper, section 1) *)
  let expected_patterns =
    [ "this.elems[count++] = p;";              (* Vector.add's store *)
      "return this.elems[ind];";               (* Vector.get's load *)
      "String fullName = input.readLine();";
      {|int spaceInd = fullName.indexOf(" ");|};
      "String firstName = fullName.substring(0, spaceInd - 1);";
      "firstNames.add(firstName);";
      "String firstName = (String) firstNames.get(i);";
      {|print("FIRST NAME: " + firstName);|};
      "Vector firstNames = readNames(new InputStream(args[0]));" ]
  in
  let expected = List.map (fun pat -> line_of ~src ~pattern:pat) expected_patterns in
  Alcotest.(check (list int)) "thin slice lines" (List.sort compare expected)
    (List.sort compare thin);
  (* none of the SessionState plumbing is in the thin slice *)
  List.iter
    (fun pat ->
      Alcotest.(check bool) (pat ^ " excluded") false
        (List.mem (line_of ~src ~pattern:pat) thin))
    [ "void setNames(Vector v) { this.names = v; }";
      "SessionState s = getState();";
      "return Globals.state;" ]

let test_fig1_traditional_includes_plumbing () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let trad = Engine.slice_from_line a ~line Slicer.Traditional_data in
  List.iter
    (fun pat ->
      Alcotest.(check bool) (pat ^ " included") true
        (List.mem (line_of ~src ~pattern:pat) trad))
    [ "void setNames(Vector v) { this.names = v; }";
      "SessionState s = getState();";
      "return Globals.state;";
      "Vector() { this.elems = new Object[10]; this.count = 0; }" ]

let test_thin_ignores_base_pointers () =
  (* the defining property: base-pointer manipulation of the container is
     not in the thin slice (paper, "Advantages of Thin Slicing") *)
  let src = Paper_figures.fig2 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig2_seed in
  let thin = Engine.slice_from_line ~filter:Engine.Only_loads a ~line Slicer.Thin in
  let expected =
    [ line_of ~src ~pattern:"B y = new B();";
      line_of ~src ~pattern:"w.f = y;";
      line_of ~src ~pattern:Paper_figures.fig2_seed ]
  in
  Alcotest.(check (list int)) "fig2 thin = {3,5,7}" (List.sort compare expected)
    (List.sort compare thin)

let test_bfs_metric () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let buggy = line_of ~src ~pattern:Paper_figures.fig1_buggy_line in
  let thin = Engine.inspect_from_line a ~line ~desired:[ buggy ] Slicer.Thin in
  let trad =
    Engine.inspect_from_line a ~line ~desired:[ buggy ] Slicer.Traditional_data
  in
  Alcotest.(check bool) "thin finds the bug" true thin.Inspect.found;
  Alcotest.(check bool) "trad finds the bug" true trad.Inspect.found;
  Alcotest.(check bool) "thin inspects no more than trad" true
    (thin.Inspect.inspected <= trad.Inspect.inspected);
  Alcotest.(check bool) "inspected <= slice size" true
    (thin.Inspect.inspected <= thin.Inspect.slice_size);
  (* unreachable desired: metric reports not-found with full exploration *)
  let missing = Engine.inspect_from_line a ~line ~desired:[ 99999 ] Slicer.Thin in
  Alcotest.(check bool) "missing not found" false missing.Inspect.found;
  Alcotest.(check int) "explored everything" missing.Inspect.slice_size
    missing.Inspect.inspected

let test_bfs_order_deterministic () =
  let src = Prog_nanoxml.base in
  let a = analysis src in
  let line = line_of ~src ~pattern:"print((String) this.lines.get(i));" in
  let seeds = Engine.seeds_at_line_exn a line in
  let r1 = Inspect.bfs a.Engine.sdg ~seeds ~desired:[] Slicer.Traditional_data in
  let r2 = Inspect.bfs a.Engine.sdg ~seeds ~desired:[] Slicer.Traditional_data in
  Alcotest.(check bool) "same order" true (r1.Inspect.order = r2.Inspect.order)

(* Regression for the duplicate-enqueue fix: with a zero aliasing budget
   no costly edge is ever crossed, so [Thin_with_aliasing 0] must traverse
   EXACTLY like [Thin] — same nodes and, walk for walk, the same telemetry
   (the old walk could re-enqueue nodes and visit them twice). *)
let test_alias0_equals_thin () =
  Slice_obs.set_enabled true;
  let src = Paper_figures.fig2 in
  let a = analysis src in
  let g = a.Engine.sdg in
  let line = line_of ~src ~pattern:Paper_figures.fig2_seed in
  let seeds = Engine.seeds_at_line_exn a line in
  let thin_nodes, thin_snap =
    Slice_obs.scoped (fun () -> Slicer.slice g ~seeds Slicer.Thin)
  in
  let alias0_nodes, alias0_snap =
    Slice_obs.scoped (fun () ->
        Slicer.slice g ~seeds (Slicer.Thin_with_aliasing 0))
  in
  Alcotest.(check (list int)) "same nodes" thin_nodes alias0_nodes;
  let slicer_counters snap =
    List.filter
      (fun (k, _) -> String.length k >= 7 && String.sub k 0 7 = "slicer.")
      snap.Slice_obs.snap_counters
  in
  Alcotest.(check (list (pair string int)))
    "same traversal counters"
    (slicer_counters thin_snap) (slicer_counters alias0_snap);
  (* and a positive budget is genuinely different on fig2 (base pointers) *)
  Alcotest.(check bool) "alias1 differs" true
    (Slicer.slice g ~seeds (Slicer.Thin_with_aliasing 1) <> thin_nodes)

(* The chop is the intersection of the forward and backward walks; the
   sorted-merge implementation is symmetric in which side is enumerated
   (the old one filtered the backward walk through a table of the forward
   walk only) and emits a sorted-unique list. *)
let test_chop_symmetric () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let g = a.Engine.sdg in
  let seeds_of pat =
    Engine.seeds_at_line_exn a (line_of ~src ~pattern:pat)
  in
  let source = seeds_of "String fullName = input.readLine();" in
  let sink = seeds_of Paper_figures.fig1_seed in
  List.iter
    (fun mode ->
      let chop = Slicer.chop g ~source ~sink mode in
      let fwd = IntSet.of_list (Slicer.forward_slice g ~seeds:source mode) in
      let bwd = IntSet.of_list (Slicer.slice g ~seeds:sink mode) in
      Alcotest.(check (list int))
        ("chop = fwd /\\ bwd under " ^ Slicer.mode_to_string mode)
        (IntSet.elements (IntSet.inter fwd bwd))
        chop;
      Alcotest.(check (list int))
        ("chop = bwd /\\ fwd under " ^ Slicer.mode_to_string mode)
        (IntSet.elements (IntSet.inter bwd fwd))
        chop;
      Alcotest.(check (list int))
        ("sorted-unique under " ^ Slicer.mode_to_string mode)
        (List.sort_uniq compare chop) chop)
    [ Slicer.Thin; Slicer.Thin_with_aliasing 1; Slicer.Traditional_data;
      Slicer.Traditional_full ];
  (* non-trivial on at least one mode *)
  Alcotest.(check bool) "thin chop non-empty" true
    (Slicer.chop g ~source ~sink Slicer.Thin <> [])

(* Batched slicing returns, per line, exactly what the one-at-a-time
   entry point returns (scratch reuse must not leak state across seeds). *)
let test_batch_matches_single () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let lines =
    List.map
      (fun pat -> line_of ~src ~pattern:pat)
      [ Paper_figures.fig1_seed;
        "String fullName = input.readLine();";
        "firstNames.add(firstName);" ]
  in
  List.iter
    (fun mode ->
      let batched = Engine.slice_batch a ~lines mode in
      List.iter2
        (fun line (line', batch_lines) ->
          Alcotest.(check int) "line order preserved" line line';
          Alcotest.(check (list int))
            (Printf.sprintf "batch = single (line %d, %s)" line
               (Slicer.mode_to_string mode))
            (Engine.slice_from_line a ~line mode)
            batch_lines)
        lines batched)
    [ Slicer.Thin; Slicer.Thin_with_aliasing 2; Slicer.Traditional_full ];
  (* unknown line raises the same error as the single-slice path *)
  Alcotest.check_raises "no seed" (Engine.No_seed 99999) (fun () ->
      ignore (Engine.slice_batch a ~lines:[ 99999 ] Slicer.Thin))

let suite =
  [ Alcotest.test_case "mode ordering" `Quick test_mode_ordering;
    Alcotest.test_case "fig1 exact thin slice" `Quick test_fig1_exact_thin;
    Alcotest.test_case "fig1 traditional plumbing" `Quick
      test_fig1_traditional_includes_plumbing;
    Alcotest.test_case "thin ignores base pointers" `Quick
      test_thin_ignores_base_pointers;
    Alcotest.test_case "bfs metric" `Quick test_bfs_metric;
    Alcotest.test_case "bfs deterministic" `Quick test_bfs_order_deterministic;
    Alcotest.test_case "alias budget 0 == thin" `Quick test_alias0_equals_thin;
    Alcotest.test_case "chop symmetric" `Quick test_chop_symmetric;
    Alcotest.test_case "batch matches single" `Quick test_batch_matches_single ]
