(* Delta-native incremental solving on the real paper workloads.

   [test_incremental] pins the update ladder's classification on small
   fixtures; this suite drives the RESOLVED tiers through substance:
   every paper workload, both sensitivities, through a deterministic
   edit chain that forces
     Rebuilt -> Resolved (summary-moving main edit)
             -> Resolved on the already-resolved handle
             -> Patched on the resolved handle (summary-neutral edit)
             -> Patched twice more (neutral whole-method add / remove)
             -> Noop
   and after EVERY step checks the incrementally updated handle against
   a from-scratch [Engine.load] of the same sources on the canonical
   (ordinal-keyed) points-to and call-graph dumps plus the headline
   stats — the incremental solver is only allowed to be faster, never
   different.

   Witness provenance is exercised at the resolved tier: a fresh
   provenance walked on a resolved handle must yield real dependence
   paths (every hop an existing SDG edge), and a provenance walked
   BEFORE a patched-tier update must go stale (witness = None) after
   it, never replay through retired nodes.

   The chain's edits are textual and workload-agnostic: a probe class
   appended at EOF (structural), edits to the first statement line of
   [main] (appending an allocation+call moves the summary; changing
   only an int constant keeps it), and a one-line method inserted
   into / removed from the probe class (the Methods tier). *)

open Slice_core

let file = "prog.tj"

let dump_to_string (d : (string * string list) list) : string =
  String.concat "\n"
    (List.map (fun (k, vs) -> k ^ " -> " ^ String.concat "," vs) d)

(* ---------------- textual edit helpers ---------------- *)

let bump_line = "  void bump(int n) { this.fi = this.fi + n; }"

let bump_line_moved =
  "  void bump(int n) { this.fi = this.fi + n; this.link = this; }"

let probe_class =
  String.concat "\n"
    [ "class ZzProbe {";
      "  int fi;";
      "  ZzProbe link;";
      "  ZzProbe() { this.fi = 3; this.link = this; }";
      "  int get() { return this.fi; }";
      bump_line;
      "}" ]
  ^ "\n"

let zzaux_line = "  int zzaux() { return this.fi; }"

let split_lines (s : string) : string list =
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rest -> List.rev rest
  | all -> List.rev all

let unsplit (lines : string list) : string = String.concat "\n" lines ^ "\n"

let ends_with_semi (l : string) : bool =
  let t = String.trim l in
  String.length t > 0 && t.[String.length t - 1] = ';'

(* 0-based index of the first statement line of [main]: every paper
   workload opens main with a one-line declaration, so "first line
   after the main header ending in a semicolon" is stable. *)
let main_target (src : string) : int =
  let lines = Array.of_list (split_lines src) in
  let is_main l =
    let rec find i =
      i + 9 <= String.length l && (String.sub l i 9 = "void main" || find (i + 1))
    in
    find 0
  in
  let rec from i =
    if i >= Array.length lines then Alcotest.fail "no main header found"
    else if is_main lines.(i) then i
    else from (i + 1)
  in
  let m = from 0 in
  let rec stmt i =
    if i >= Array.length lines then Alcotest.fail "no statement line in main"
    else if ends_with_semi lines.(i) then i
    else stmt (i + 1)
  in
  stmt (m + 1)

let append_to_line (src : string) (idx : int) (suffix : string) : string =
  unsplit (List.mapi (fun i l -> if i = idx then l ^ suffix else l) (split_lines src))

(* Insert / remove the [zzaux] one-liner just before the probe class's
   closing brace (the last line of the file). *)
let with_zzaux (src : string) : string =
  let lines = List.rev (split_lines src) in
  match lines with
  | "}" :: rest -> unsplit (List.rev ("}" :: zzaux_line :: rest))
  | _ -> Alcotest.fail "probe class does not close the file"

(* Swap the probe's [bump] body for one that also stores a reference:
   a one-line, line-count-preserving change whose constraint summary
   MOVES, but whose affected cone is only the probe's own nodes — the
   shape that must engage [Andersen.resolve_delta] rather than fall
   back to a fresh solve. *)
let move_bump (src : string) : string =
  let lines = split_lines src in
  if not (List.mem bump_line lines) then
    Alcotest.fail "probe bump line not found";
  unsplit
    (List.map (fun l -> if l = bump_line then bump_line_moved else l) lines)

(* ---------------- parity + tier checks ---------------- *)

let check_parity ~(ctx : string) (h : Engine.handle) =
  let fresh =
    Engine.load
      ?container_classes:h.Engine.h_container_classes
      ~obj_sens:h.Engine.h_obj_sens ~solver:h.Engine.h_solver
      h.Engine.h_sources
  in
  let ia = h.Engine.h_analysis and fa = fresh.Engine.h_analysis in
  if
    dump_to_string (Engine.pts_dump_canonical ia)
    <> dump_to_string (Engine.pts_dump_canonical fa)
  then Alcotest.failf "%s: canonical points-to dumps differ" ctx;
  if
    dump_to_string (Engine.call_graph_dump_canonical ia)
    <> dump_to_string (Engine.call_graph_dump_canonical fa)
  then Alcotest.failf "%s: canonical call-graph dumps differ" ctx;
  let s1 = h.Engine.h_stats and s2 = fresh.Engine.h_stats in
  if
    (s1.Engine.methods, s1.Engine.ir_statements, s1.Engine.sdg_statements)
    <> (s2.Engine.methods, s2.Engine.ir_statements, s2.Engine.sdg_statements)
  then
    Alcotest.failf "%s: stats differ (methods %d/%d, ir %d/%d, sdg %d/%d)" ctx
      s1.Engine.methods s2.Engine.methods s1.Engine.ir_statements
      s2.Engine.ir_statements s1.Engine.sdg_statements s2.Engine.sdg_statements;
  if Sdg.num_live_nodes ia.Engine.sdg <> Sdg.num_live_nodes fa.Engine.sdg then
    Alcotest.failf "%s: live SDG node counts differ" ctx

let expect ~(ctx : string) (want : Engine.update_path) (rep : Engine.update_report)
    =
  if rep.Engine.up_path <> want then
    Alcotest.failf "%s: expected path %s, got %s" ctx
      (Engine.update_path_to_string want)
      (Engine.update_path_to_string rep.Engine.up_path)

let expect_resolved ~(ctx : string) (rep : Engine.update_report) =
  match rep.Engine.up_path with
  | Engine.Resolved_incremental | Engine.Resolved_fresh -> ()
  | p ->
    Alcotest.failf "%s: expected a resolved tier, got %s" ctx
      (Engine.update_path_to_string p)

(* Every witness a fresh provenance yields on [sdg] must be a real
   dependence path: starts at a seed, ends at the member, every hop an
   existing edge of the recorded kind. *)
let check_witnesses (sdg : Sdg.t) ~(seeds : Sdg.node list) ~(ctx : string) =
  let prov = Slicer.create_provenance sdg in
  let members = Slicer.slice ~prov sdg ~seeds Slicer.Thin in
  if members = [] then Alcotest.failf "%s: empty thin slice at the probe line" ctx;
  List.iter
    (fun nd ->
      match Slicer.witness prov nd with
      | None -> Alcotest.failf "%s: member %d has no witness" ctx nd
      | Some [] -> Alcotest.failf "%s: member %d has an empty witness" ctx nd
      | Some (first :: rest) ->
        if not (List.mem first.Slicer.wit_node seeds) then
          Alcotest.failf "%s: witness of %d starts at non-seed %d" ctx nd
            first.Slicer.wit_node;
        (match List.rev (first :: rest) with
        | last :: _ when last.Slicer.wit_node <> nd ->
          Alcotest.failf "%s: witness of %d ends at %d" ctx nd
            last.Slicer.wit_node
        | _ -> ());
        ignore
          (List.fold_left
             (fun (prev : Slicer.witness_step) (b : Slicer.witness_step) ->
               (match b.Slicer.wit_kind with
               | None ->
                 Alcotest.failf "%s: interior witness step without a kind" ctx
               | Some k ->
                 if
                   not
                     (List.exists
                        (fun (d, kk) -> d = b.Slicer.wit_node && kk = k)
                        (Sdg.deps sdg prev.Slicer.wit_node))
                 then
                   Alcotest.failf "%s: witness hop %d -> %d is not an SDG edge"
                     ctx prev.Slicer.wit_node b.Slicer.wit_node);
               b)
             first rest))
    members

(* ---------------- the chain ---------------- *)

type tally = { mutable resolved_incr : int; mutable resolved_fresh : int }

let tally = { resolved_incr = 0; resolved_fresh = 0 }

let note (rep : Engine.update_report) =
  match rep.Engine.up_path with
  | Engine.Resolved_incremental -> tally.resolved_incr <- tally.resolved_incr + 1
  | Engine.Resolved_fresh -> tally.resolved_fresh <- tally.resolved_fresh + 1
  | _ -> ()

let run_chain ?(solver = `Bitset) ~(obj_sens : bool) (name : string)
    (base : string) =
  let ctx step = Printf.sprintf "%s(objsens=%b,%s) %s" name obj_sens
      (match solver with `Bitset -> "bitset" | `Reference -> "reference")
      step
  in
  let tgt = main_target base in
  let seed_line = tgt + 1 in
  let h0 = Engine.load ~obj_sens ~solver [ (file, base) ] in
  (* 1. structural: a whole new class at EOF *)
  let src1 = base ^ probe_class in
  let h1, rep1 = Engine.update h0 [ (file, src1) ] in
  expect ~ctx:(ctx "probe class append") Engine.Rebuilt rep1;
  check_parity ~ctx:(ctx "probe class append") h1;
  (* 2. summary-moving body edit in main: resolved tier *)
  let src2 =
    append_to_line src1 tgt " ZzProbe zza = new ZzProbe(); zza.bump(1);"
  in
  let h2, rep2 = Engine.update h1 [ (file, src2) ] in
  expect_resolved ~ctx:(ctx "summary-moving edit") rep2;
  note rep2;
  check_parity ~ctx:(ctx "summary-moving edit") h2;
  let a2 = h2.Engine.h_analysis in
  check_witnesses a2.Engine.sdg
    ~seeds:(Engine.seeds_at_line a2 seed_line)
    ~ctx:(ctx "witnesses on resolved handle");
  (* 3. resolve on the already-resolved handle *)
  let bump_stmt n =
    Printf.sprintf " ZzProbe zzb = new ZzProbe(); zzb.bump(%d);" n
  in
  let src3 = append_to_line src2 tgt (bump_stmt 2) in
  let h3a, rep3a = Engine.update h2 [ (file, src3) ] in
  expect_resolved ~ctx:(ctx "resolve-on-resolved") rep3a;
  note rep3a;
  check_parity ~ctx:(ctx "resolve-on-resolved") h3a;
  (* 3b. small-cone summary move: the delta solver itself.  The bump
     body's constraints only reach the probe's own nodes, far under the
     cone limits, so the bitset solver must repair in place. *)
  let src3b = move_bump src3 in
  let h3, rep3 = Engine.update h3a [ (file, src3b) ] in
  (match solver with
  | `Bitset ->
    expect ~ctx:(ctx "small-cone resolve") Engine.Resolved_incremental rep3
  | `Reference -> expect_resolved ~ctx:(ctx "small-cone resolve") rep3);
  note rep3;
  check_parity ~ctx:(ctx "small-cone resolve") h3;
  (* A provenance walked NOW must go stale after the patched update. *)
  let a3 = h3.Engine.h_analysis in
  let stale_prov = Slicer.create_provenance a3.Engine.sdg in
  let pre_members =
    Slicer.slice ~prov:stale_prov a3.Engine.sdg
      ~seeds:(Engine.seeds_at_line a3 seed_line)
      Slicer.Thin
  in
  if pre_members = [] then
    Alcotest.failf "%s: empty pre-patch slice" (ctx "staleness setup");
  (* 4. summary-NEUTRAL body edit on the resolved handle: patched tier.
     Only the int constant changes — a new statement would shift the
     instruction labels of everything after it and move the summary. *)
  let src4 = move_bump (append_to_line src2 tgt (bump_stmt 9)) in
  let h4, rep4 = Engine.update h3 [ (file, src4) ] in
  expect ~ctx:(ctx "patch-on-resolved") Engine.Patched rep4;
  check_parity ~ctx:(ctx "patch-on-resolved") h4;
  List.iter
    (fun nd ->
      match Slicer.witness stale_prov nd with
      | None -> ()
      | Some _ ->
        Alcotest.failf
          "%s: pre-patch witness of node %d survived the patched update"
          (ctx "witness staleness") nd)
    pre_members;
  (* 5. neutral whole-method add / remove: the Methods tier *)
  let src5 = with_zzaux src4 in
  let h5, rep5 = Engine.update h4 [ (file, src5) ] in
  expect ~ctx:(ctx "neutral method add") Engine.Patched rep5;
  check_parity ~ctx:(ctx "neutral method add") h5;
  let h6, rep6 = Engine.update h5 [ (file, src4) ] in
  expect ~ctx:(ctx "neutral method remove") Engine.Patched rep6;
  check_parity ~ctx:(ctx "neutral method remove") h6;
  (* 6. byte-identical source: noop *)
  let _, rep7 = Engine.update h6 [ (file, src4) ] in
  expect ~ctx:(ctx "noop") Engine.Noop rep7

let test_chains_objsens () =
  List.iter
    (fun (name, base) -> run_chain ~obj_sens:true name base)
    Slice_workloads.Suites.paper_workloads

let test_chains_ci () =
  List.iter
    (fun (name, base) -> run_chain ~obj_sens:false name base)
    Slice_workloads.Suites.paper_workloads

(* Both resolved tiers must actually occur across the 18 bitset chains:
   a ladder where one tier is unreachable is a ladder nothing tests.
   (The reference-solver chain below pins Resolved_fresh by
   construction; this pins it for the BITSET solver's own threshold.) *)
let test_resolved_tier_mix () =
  if tally.resolved_incr = 0 then
    Alcotest.fail
      "no workload chain took resolved-incremental: the delta solver never \
       engaged";
  if tally.resolved_fresh = 0 then
    Alcotest.fail
      "no workload chain took resolved-fresh: the cone threshold never \
       triggered"

(* The reference solver records no provenance, so a summary-moving edit
   must land on Resolved_fresh (never the incremental tier), and still
   agree with a fresh load. *)
let test_reference_solver_resolves_fresh () =
  let name, base = List.hd Slice_workloads.Suites.paper_workloads in
  let tgt = main_target base in
  let h0 = Engine.load ~obj_sens:true ~solver:`Reference [ (file, base) ] in
  let src1 = base ^ probe_class in
  let h1, _ = Engine.update h0 [ (file, src1) ] in
  let src2 =
    append_to_line src1 tgt " ZzProbe zza = new ZzProbe(); zza.bump(1);"
  in
  let h2, rep2 = Engine.update h1 [ (file, src2) ] in
  (match rep2.Engine.up_path with
  | Engine.Resolved_fresh -> ()
  | p ->
    Alcotest.failf "%s: reference solver took %s, want resolved-fresh" name
      (Engine.update_path_to_string p));
  check_parity ~ctx:(name ^ " reference resolved-fresh") h2

let suite =
  [ Alcotest.test_case "workload edit chains (object-sensitive)" `Quick
      test_chains_objsens;
    Alcotest.test_case "workload edit chains (context-insensitive)" `Quick
      test_chains_ci;
    Alcotest.test_case "both resolved tiers exercised" `Quick
      test_resolved_tier_mix;
    Alcotest.test_case "reference solver resolves fresh" `Quick
      test_reference_solver_resolves_fresh ]
