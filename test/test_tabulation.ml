(* Context-sensitive (tabulation) slicer tests:
   - context sensitivity kills unrealizable paths that the CI slicer keeps;
   - the CS slice is contained in the CI slice;
   - the heap-parameter representation is strictly larger than the direct
     representation (the paper's scalability bottleneck). *)

open Slice_core
open Slice_workloads
open Helpers

module IntSet = Set.Make (Int)

let cs_slice_lines src ~seed_pattern mode =
  let p = load src in
  let pta = Slice_pta.Andersen.analyze p in
  let t = Tabulation.build p pta in
  let line = line_of ~src ~pattern:seed_pattern in
  let seeds = Tabulation.nodes_at_line t ~line in
  Alcotest.(check bool) "has seeds" true (seeds <> []);
  Tabulation.slice_lines t (Tabulation.slice t ~seeds mode)

(* The classic unrealizable-path example: id() called from two sites; the
   result printed comes from the second call, and a context-sensitive
   slicer must not drag in the first site's argument. *)
let id_src =
  {|int id(int x) { return x; }
void main(String[] args) {
  int a = 11;
  int b = 22;
  int ra = id(a);
  int rb = id(b);
  print(itoa(rb));
  print(itoa(ra));
}|}

let test_unrealizable_paths () =
  let cs = cs_slice_lines id_src ~seed_pattern:"print(itoa(rb));" Tabulation.Thin in
  Alcotest.(check bool) "b's def included" true
    (List.mem (line_of ~src:id_src ~pattern:"int b = 22;") cs);
  Alcotest.(check bool) "a's def excluded (realizable paths only)" false
    (List.mem (line_of ~src:id_src ~pattern:"int a = 11;") cs);
  (* the CI slicer conflates the two call sites *)
  let a = analysis id_src in
  let ci =
    Engine.slice_from_line a
      ~line:(line_of ~src:id_src ~pattern:"print(itoa(rb));")
      Slicer.Thin
  in
  Alcotest.(check bool) "CI includes a's def (unrealizable)" true
    (List.mem (line_of ~src:id_src ~pattern:"int a = 11;") ci)

(* Heap flow through the summary machinery: a setter/getter pair. *)
let box_src =
  {|class Box {
  int v;
  void set(int x) { this.v = x; }
  int get() { return this.v; }
}
void main(String[] args) {
  Box b = new Box();
  int k = 5 + 6;
  b.set(k);
  print(itoa(b.get()));
}|}

let test_heap_parameters () =
  let cs =
    cs_slice_lines box_src ~seed_pattern:"print(itoa(b.get()));" Tabulation.Thin
  in
  List.iter
    (fun pat ->
      Alcotest.(check bool) (pat ^ " in CS slice") true
        (List.mem (line_of ~src:box_src ~pattern:pat) cs))
    [ "void set(int x) { this.v = x; }";
      "int get() { return this.v; }";
      "int k = 5 + 6;";
      "b.set(k);" ]

let test_cs_within_ci () =
  List.iter
    (fun (src, pat) ->
      let cs_thin = cs_slice_lines src ~seed_pattern:pat Tabulation.Thin in
      (* the tabulation slicer merges container clones (its PDGs are
         per-method), so the comparable CI baseline is the no-objsens
         analysis *)
      let a = analysis ~obj_sens:false src in
      let line = line_of ~src ~pattern:pat in
      let ci_thin = Engine.slice_from_line a ~line Slicer.Thin in
      Alcotest.(check bool) "CS thin within CI thin" true
        (IntSet.subset (IntSet.of_list cs_thin) (IntSet.of_list ci_thin));
      let p = load src in
      let pta = Slice_pta.Andersen.analyze p in
      let t = Tabulation.build p pta in
      let seeds = Tabulation.nodes_at_line t ~line in
      let cs_trad =
        Tabulation.slice_lines t (Tabulation.slice t ~seeds Tabulation.Traditional)
      in
      Alcotest.(check bool) "CS thin within CS traditional" true
        (IntSet.subset (IntSet.of_list cs_thin) (IntSet.of_list cs_trad)))
    [ (Paper_figures.fig1, Paper_figures.fig1_seed);
      (Prog_jtopas.base, {|print("kinds: " + kinds);|}) ]

(* Containment/consistency on GENERATED programs: for random pipeline
   shapes, the context-sensitive thin slice stays inside the CI thin
   slice, inside its own traditional slice, and every seed line slices
   to a nonempty result that contains the seed itself. *)
let prop_containment_on_generated =
  QCheck2.Test.make ~count:6
    ~name:"tabulation containment on generated pipelines"
    QCheck2.Gen.(2 -- 8)
    (fun stages ->
      let src = Generators.pipeline_program ~stages in
      let pat = Generators.pipeline_seed_pattern in
      let line = line_of ~src ~pattern:pat in
      let p = load src in
      let pta = Slice_pta.Andersen.analyze p in
      let t = Tabulation.build p pta in
      let seeds = Tabulation.nodes_at_line t ~line in
      if seeds = [] then QCheck2.Test.fail_report "no tabulation seeds";
      let cs_thin =
        Tabulation.slice_lines t (Tabulation.slice t ~seeds Tabulation.Thin)
      in
      let cs_trad =
        Tabulation.slice_lines t
          (Tabulation.slice t ~seeds Tabulation.Traditional)
      in
      let a = analysis ~obj_sens:false src in
      let ci_thin = Engine.slice_from_line a ~line Slicer.Thin in
      List.mem line cs_thin
      && IntSet.subset (IntSet.of_list cs_thin) (IntSet.of_list ci_thin)
      && IntSet.subset (IntSet.of_list cs_thin) (IntSet.of_list cs_trad))

(* The same consistency checks on fuzz-generated programs, which mix
   virtual dispatch, containers, casts, and branches — shapes the
   hand-written examples above do not cover. *)
let test_containment_on_fuzzed () =
  List.iter
    (fun seed ->
      let r = Slice_fuzz.Gen_tj.render (Slice_fuzz.Gen_tj.gen ~seed ~max_size:25) in
      let src = r.Slice_fuzz.Gen_tj.src in
      let p = Slice_front.Frontend.load_exn ~file:"fuzz.tj" src in
      let pta = Slice_pta.Andersen.analyze p in
      let t = Tabulation.build p pta in
      List.iter
        (fun line ->
          match Tabulation.nodes_at_line t ~line with
          | [] -> ()
          | seeds ->
            let cs_thin =
              Tabulation.slice_lines t
                (Tabulation.slice t ~seeds Tabulation.Thin)
            in
            let cs_trad =
              Tabulation.slice_lines t
                (Tabulation.slice t ~seeds Tabulation.Traditional)
            in
            if not (List.mem line cs_thin) then
              Alcotest.failf "fuzz seed %d: seed line %d missing from its own \
                              thin slice" seed line;
            if
              not
                (IntSet.subset (IntSet.of_list cs_thin)
                   (IntSet.of_list cs_trad))
            then
              Alcotest.failf
                "fuzz seed %d line %d: CS thin not within CS traditional" seed
                line)
        r.Slice_fuzz.Gen_tj.seed_lines)
    [ 11; 22; 33 ]

let test_heap_param_blowup () =
  let p = load Prog_nanoxml.base in
  let pta = Slice_pta.Andersen.analyze p in
  let t = Tabulation.build p pta in
  let st = Tabulation.stats t in
  let a = Engine.analyze (load Prog_nanoxml.base) in
  let s = Engine.stats_of a in
  Alcotest.(check bool) "heap params exist" true (st.Tabulation.heap_param_nodes > 0);
  Alcotest.(check bool) "HSDG larger than scalar statements" true
    (st.Tabulation.total_nodes > s.Engine.sdg_statements)

let suite =
  [ Alcotest.test_case "unrealizable paths" `Quick test_unrealizable_paths;
    Alcotest.test_case "heap parameters" `Quick test_heap_parameters;
    Alcotest.test_case "cs within ci" `Quick test_cs_within_ci;
    QCheck_alcotest.to_alcotest prop_containment_on_generated;
    Alcotest.test_case "containment on fuzzed programs" `Quick
      test_containment_on_fuzzed;
    Alcotest.test_case "heap param blowup" `Quick test_heap_param_blowup ]
