(* Expansion tests: aliasing explanations (Figure 4), control exposure,
   and the hierarchical-expansion-to-fixpoint property ("yielding a
   traditional slice in the limit"). *)

open Slice_core
open Slice_workloads
open Helpers

module IntSet = Set.Make (Int)

let test_fig4_aliasing_explanation () =
  let src = Paper_figures.fig4 in
  let a = analysis src in
  let g = a.Engine.sdg in
  let seed_line = line_of ~src ~pattern:Paper_figures.fig4_seed in
  let seeds = Engine.seeds_at_line_exn ~filter:Engine.Only_conditionals a seed_line in
  let thin = Slicer.slice g ~seeds Slicer.Thin in
  (* the thin slice has the open-flag load/store, but NOT the culprit *)
  let lines =
    List.filter_map
      (fun n ->
        if Sdg.node_countable g n then Some (Sdg.node_loc g n).Slice_ir.Loc.line
        else None)
      thin
  in
  let store_line = line_of ~src ~pattern:Paper_figures.fig4_store in
  let culprit_line = line_of ~src ~pattern:Paper_figures.fig4_culprit in
  Alcotest.(check bool) "store in thin slice" true (List.mem store_line lines);
  Alcotest.(check bool) "culprit NOT in thin slice" false
    (List.mem culprit_line lines);
  (* explain every heap read/write pair; some explanation must reveal the
     culprit close() call *)
  let pairs =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun (dep, kind) ->
            if kind = Sdg.Producer_heap && List.mem dep thin then Some (n, dep)
            else None)
          (Sdg.deps g n))
      thin
  in
  Alcotest.(check bool) "heap pairs exist" true (pairs <> []);
  let revealed =
    List.exists
      (fun (read, write) ->
        let e = Expansion.explain_aliasing g ~read ~write in
        (not (Slice_pta.Andersen.ObjSet.is_empty e.Expansion.common_objects))
        && List.exists
             (fun n -> (Sdg.node_loc g n).Slice_ir.Loc.line = culprit_line)
             (e.Expansion.read_flow @ e.Expansion.write_flow))
      pairs
  in
  Alcotest.(check bool) "culprit close() call revealed" true revealed

let test_filtering_drops_unrelated () =
  (* flow of objects unrelated to the aliased pair must be filtered out:
     a second, independent File is handled identically but should not show
     up in the explanation *)
  let src =
    {|class File {
  boolean open;
  File() { this.open = true; }
  boolean isOpen() { return this.open; }
  void close() { this.open = false; }
}
void main(String[] args) {
  File other = new File();
  other.close();
  File f = new File();
  f.close();
  boolean o = f.isOpen();
  print(o);
}|}
  in
  let a = analysis src in
  let g = a.Engine.sdg in
  let seed_line = line_of ~src ~pattern:"boolean o = f.isOpen();" in
  let seeds = Engine.seeds_at_line_exn a seed_line in
  let thin = Slicer.slice g ~seeds Slicer.Thin in
  let pairs =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun (dep, kind) ->
            if kind = Sdg.Producer_heap && List.mem dep thin then Some (n, dep)
            else None)
          (Sdg.deps g n))
      thin
  in
  Alcotest.(check bool) "heap pairs exist" true (pairs <> []);
  List.iter
    (fun (read, write) ->
      let e = Expansion.explain_aliasing g ~read ~write in
      let expl_lines =
        List.map
          (fun n -> (Sdg.node_loc g n).Slice_ir.Loc.line)
          (e.Expansion.read_flow @ e.Expansion.write_flow)
      in
      Alcotest.(check bool) "unrelated File filtered" false
        (List.mem (line_of ~src ~pattern:"File other = new File();") expl_lines))
    pairs

let test_explain_control () =
  let src = Paper_figures.fig2 in
  let a = analysis src in
  let g = a.Engine.sdg in
  let seed_line = line_of ~src ~pattern:Paper_figures.fig2_seed in
  let seeds = Engine.seeds_at_line_exn ~filter:Engine.Only_loads a seed_line in
  let ctl = Expansion.explain_control g (List.hd seeds) in
  Alcotest.(check int) "one governor" 1 (List.length ctl);
  Alcotest.(check int) "governor is the if"
    (line_of ~src ~pattern:"if (w == z)")
    (Sdg.node_loc g (List.hd ctl)).Slice_ir.Loc.line

(* "In the limit, hierarchically expanding a thin slice ... yields a
   traditional slice" (paper, section 1). *)
let check_fixpoint_equals_traditional src seed_pattern =
  let a = analysis src in
  let g = a.Engine.sdg in
  let line = line_of ~src ~pattern:seed_pattern in
  let seeds = Engine.seeds_at_line_exn a line in
  let expanded = IntSet.of_list (Expansion.expand_to_fixpoint g ~seeds) in
  let full = IntSet.of_list (Slicer.slice g ~seeds Slicer.Traditional_full) in
  Alcotest.(check bool)
    (Printf.sprintf "fixpoint = traditional for %s" seed_pattern)
    true (IntSet.equal expanded full)

let test_expansion_fixpoint () =
  check_fixpoint_equals_traditional Paper_figures.fig1 Paper_figures.fig1_seed;
  check_fixpoint_equals_traditional Paper_figures.fig2 Paper_figures.fig2_seed;
  check_fixpoint_equals_traditional Paper_figures.fig4
    "boolean open = f.isOpen();";
  check_fixpoint_equals_traditional Prog_jtopas.base {|print("kinds: " + kinds);|}

(* The same limit property on EVERY paper workload, from representative
   seed nodes (first / middle / last user-visible statement): expansion
   to fixpoint must reconstruct the traditional slice exactly, whatever
   the program shape. *)
let test_expansion_fixpoint_on_workloads () =
  List.iter
    (fun (name, src) ->
      let a = Engine.of_source ~file:(name ^ ".tj") src in
      let g = a.Engine.sdg in
      let countable = ref [] in
      for n = Sdg.num_nodes g - 1 downto 0 do
        if Sdg.node_countable g n then countable := n :: !countable
      done;
      let arr = Array.of_list !countable in
      let k = Array.length arr in
      Alcotest.(check bool) (name ^ " has statements") true (k > 0);
      List.iter
        (fun seeds ->
          let expanded = IntSet.of_list (Expansion.expand_to_fixpoint g ~seeds) in
          let full =
            IntSet.of_list (Slicer.slice g ~seeds Slicer.Traditional_full)
          in
          if not (IntSet.equal expanded full) then
            Alcotest.failf
              "%s: expansion fixpoint <> traditional (fixpoint %d nodes, \
               traditional %d nodes)"
              name (IntSet.cardinal expanded) (IntSet.cardinal full))
        [ [ arr.(0) ]; [ arr.(k / 2) ]; [ arr.(k - 1) ] ])
    Suites.paper_workloads

let prop_fixpoint_on_pipelines =
  QCheck2.Test.make ~count:6 ~name:"expansion fixpoint = traditional (pipelines)"
    QCheck2.Gen.(2 -- 8)
    (fun stages ->
      let src = Generators.pipeline_program ~stages in
      check_fixpoint_equals_traditional src Generators.pipeline_seed_pattern;
      true)

let suite =
  [ Alcotest.test_case "fig4 aliasing explanation" `Quick
      test_fig4_aliasing_explanation;
    Alcotest.test_case "filtering drops unrelated flow" `Quick
      test_filtering_drops_unrelated;
    Alcotest.test_case "explain control" `Quick test_explain_control;
    Alcotest.test_case "expansion fixpoint" `Quick test_expansion_fixpoint;
    Alcotest.test_case "expansion fixpoint on all paper workloads" `Quick
      test_expansion_fixpoint_on_workloads;
    QCheck_alcotest.to_alcotest prop_fixpoint_on_pipelines ]
