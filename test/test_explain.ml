(* Provenance tests: witness paths (membership equivalence, edge-policy
   replay, budget validity), the layered explain report, and the
   rank-agreement property — the provenance BFS distance must equal the
   Inspect layer a line first appears in, on every paper workload. *)

open Slice_core
open Helpers

(* The README's worked example: a producer chain through a heap cell,
   one aliasing boundary (the Box allocation) and one control boundary
   (the if guarding the print). *)
let demo =
  {|class Box {
  String val;
  Box() { this.val = ""; }
  void set(String v) { this.val = v; }
  String get() { return this.val; }
}
void main(String[] args) {
  Box b = new Box();
  String x = "hello";
  String y = x + "!";
  b.set(y);
  String z = b.get();
  if (z.length() > 0) {
    print(z);
  }
}|}

let demo_seed_line = line_of ~src:demo ~pattern:"print(z);"
let demo_if_line = line_of ~src:demo ~pattern:"if (z.length() > 0)"
let demo_x_line = line_of ~src:demo ~pattern:"String x = \"hello\";"
let demo_alloc_line = line_of ~src:demo ~pattern:"Box b = new Box();"

(* Replay a witness path under the mode's edge discipline: seed head,
   queried node last, every hop a real SDG edge the policy allows, and
   enough aliasing budget at every `Costly crossing.  The same contract
   the fuzz oracle checks on random programs. *)
let validate_path g mode ~(seeds : Sdg.node list) (target : Sdg.node)
    (steps : Slicer.witness_step list) : unit =
  (match steps with
  | [] -> Alcotest.fail "empty witness path"
  | head :: _ ->
    check_bool "path starts at a seed" true (List.mem head.Slicer.wit_node seeds);
    check_bool "seed step has no incoming kind" true (head.Slicer.wit_kind = None);
    check_int "seed step is at distance 0" 0 head.Slicer.wit_dist);
  (match List.rev steps with
  | last :: _ -> check_int "path ends at the queried node" target last.Slicer.wit_node
  | [] -> ());
  let rec go (a : Slicer.witness_step) budget = function
    | [] -> ()
    | (b : Slicer.witness_step) :: rest ->
      let kind =
        match b.Slicer.wit_kind with
        | Some k -> k
        | None -> Alcotest.fail "interior step lacks an edge kind"
      in
      check_bool "hop is a real dependence edge" true
        (List.mem (b.Slicer.wit_node, kind) (Sdg.deps g a.Slicer.wit_node));
      let budget' =
        match Slicer.edge_policy mode kind with
        | `Skip -> Alcotest.fail "witness crosses an edge the mode skips"
        | `Follow -> budget
        | `Costly ->
          check_bool "aliasing budget available at `Costly hop" true (budget > 0);
          budget - 1
      in
      go b budget' rest
  in
  match steps with [] -> () | head :: rest -> go head (Slicer.initial_budget mode) rest

(* Witness <-> membership, path replay, and distance semantics for one
   (program, mode).  In budget-free modes also pins dist = parent dist + 1
   along the path (the recorded chain IS a BFS tree there). *)
let check_witnesses ?(budget_free = true) (a : Engine.analysis) ~seed_line mode =
  let g = a.Engine.sdg in
  let seeds = Engine.seeds_at_line_exn a seed_line in
  let prov = Slicer.create_provenance g in
  let members = Slicer.slice ~prov g ~seeds mode in
  check_bool "provenance records the walk's mode" true
    (Slicer.provenance_mode prov = Some mode);
  let member = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace member n ()) members;
  List.iter
    (fun s -> check_bool "seed at distance 0" true (Slicer.distance prov s = Some 0))
    seeds;
  for n = 0 to Sdg.num_nodes g - 1 do
    match Slicer.witness prov n with
    | None ->
      check_bool "non-member has no witness" false (Hashtbl.mem member n);
      check_bool "non-member has no distance" true (Slicer.distance prov n = None)
    | Some steps ->
      check_bool "witness implies membership" true (Hashtbl.mem member n);
      validate_path g mode ~seeds n steps;
      if budget_free then
        ignore
          (List.fold_left
             (fun prev (s : Slicer.witness_step) ->
               (match prev with
               | Some d -> check_int "BFS distance increments along the path" (d + 1)
                             s.Slicer.wit_dist
               | None -> ());
               Some s.Slicer.wit_dist)
             None steps)
  done

let test_witness_thin () =
  let a = analysis demo in
  check_witnesses a ~seed_line:demo_seed_line Slicer.Thin

let test_witness_traditional_full () =
  let a = analysis demo in
  check_witnesses a ~seed_line:demo_seed_line Slicer.Traditional_full

let test_witness_budget_mode () =
  (* budget improvements can rewire parents mid-walk, so dists need not
     be consecutive along the final chain — but replay must still hold *)
  let a = analysis demo in
  check_witnesses ~budget_free:false a ~seed_line:demo_seed_line
    (Slicer.Thin_with_aliasing 1)

let test_witness_from_line () =
  let a = analysis demo in
  (match
     Engine.witness_from_line a ~seed_line:demo_seed_line ~line:demo_x_line
       Slicer.Thin
   with
  | None -> Alcotest.fail "producer line has no witness"
  | Some steps ->
    let last = List.nth steps (List.length steps - 1) in
    check_int "path ends on the asked line" demo_x_line
      (Sdg.node_loc a.Engine.sdg last.Slicer.wit_node).Slice_ir.Loc.line);
  (* the if-guard is outside the thin slice: witnessable only once
     control dependences are followed *)
  check_bool "guard not witnessable in thin mode" true
    (Engine.witness_from_line a ~seed_line:demo_seed_line ~line:demo_if_line
       Slicer.Thin
    = None);
  check_bool "guard witnessable in the full slice" true
    (Engine.witness_from_line a ~seed_line:demo_seed_line ~line:demo_if_line
       Slicer.Traditional_full
    <> None);
  (* a line with no statements raises No_seed carrying that line *)
  match
    Engine.witness_from_line a ~seed_line:demo_seed_line ~line:6 Slicer.Thin
  with
  | exception Engine.No_seed 6 -> ()
  | exception Engine.No_seed l -> Alcotest.failf "No_seed carries line %d" l
  | _ -> Alcotest.fail "blank target line must raise No_seed"

let test_report_layers () =
  let a = analysis demo in
  let r = Engine.slice_report a ~line:demo_seed_line Slicer.Traditional_full in
  check_int "report echoes the seed line" demo_seed_line r.Engine.sr_seed_line;
  let p, al, c = r.Engine.sr_layer_sizes in
  check_int "layer sizes partition the lines" (List.length r.Engine.sr_lines)
    (p + al + c);
  check_bool "producer layer non-empty" true (p > 0);
  check_bool "control layer non-empty" true (c > 0);
  (* layer membership against independently computed slices *)
  let lines_of mode =
    Engine.slice_from_line a ~line:demo_seed_line mode
  in
  let thin = lines_of Slicer.Thin
  and data = lines_of Slicer.Traditional_data
  and full = lines_of Slicer.Traditional_full in
  List.iter
    (fun (rl : Engine.report_line) ->
      let l = snd rl.Engine.rl_loc in
      check_bool "every report line is a slice member" true (List.mem l full);
      match rl.Engine.rl_layer with
      | Engine.Producers ->
        check_bool "producer line is in the thin slice" true (List.mem l thin)
      | Engine.Alias_explainers ->
        check_bool "alias explainer is data-only, not thin" true
          (List.mem l data && not (List.mem l thin))
      | Engine.Control_explainers ->
        check_bool "control explainer is full-only" true (not (List.mem l data)))
    r.Engine.sr_lines;
  (* rank 0 is the seed; ranks are sorted *)
  (match r.Engine.sr_lines with
  | first :: _ ->
    check_int "first line has rank 0" 0 first.Engine.rl_rank;
    check_int "first line is the seed line" demo_seed_line
      (snd first.Engine.rl_loc)
  | [] -> Alcotest.fail "empty report");
  ignore
    (List.fold_left
       (fun prev (rl : Engine.report_line) ->
         check_bool "lines sorted by rank" true (rl.Engine.rl_rank >= prev);
         rl.Engine.rl_rank)
       0 r.Engine.sr_lines);
  (* the alloc is an alias explainer, the if a control explainer that
     explains the seed line *)
  let find l =
    List.find_opt (fun rl -> snd rl.Engine.rl_loc = l) r.Engine.sr_lines
  in
  (match find demo_alloc_line with
  | Some rl ->
    check_bool "allocation classified as alias explainer" true
      (rl.Engine.rl_layer = Engine.Alias_explainers)
  | None -> Alcotest.fail "allocation missing from report");
  match find demo_if_line with
  | Some rl ->
    check_bool "if-guard classified as control explainer" true
      (rl.Engine.rl_layer = Engine.Control_explainers);
    check_bool "if-guard explains the seed line" true
      (List.exists (fun (_, l) -> l = demo_seed_line) rl.Engine.rl_explains)
  | None -> Alcotest.fail "if-guard missing from report"

let test_report_json_schema () =
  let a = analysis demo in
  let r = Engine.slice_report a ~line:demo_seed_line Slicer.Traditional_full in
  let open Slice_obs in
  let j =
    match Json.of_string (Json.to_string (Engine.report_to_json r)) with
    | Ok v -> v
    | Error e -> Alcotest.failf "report JSON unparseable: %s" e
  in
  check_bool "schema tag" true
    (Json.member "schema" j = Some (Json.Str Engine.explain_schema_version));
  (match Json.member "lines" j with
  | Some (Json.List l) ->
    check_int "one JSON entry per report line" (List.length r.Engine.sr_lines)
      (List.length l)
  | _ -> Alcotest.fail "lines is not a list");
  (* witness encoding carries the same schema *)
  match
    Engine.witness_from_line a ~seed_line:demo_seed_line ~line:demo_x_line
      Slicer.Thin
  with
  | None -> Alcotest.fail "no witness"
  | Some steps ->
    let wj =
      Engine.witness_to_json a ~seed_line:demo_seed_line ~line:demo_x_line
        Slicer.Thin steps
    in
    check_bool "witness schema tag" true
      (Json.member "schema" wj = Some (Json.Str Engine.explain_schema_version));
    (match Json.member "path" wj with
    | Some (Json.List l) ->
      check_int "one JSON step per witness step" (List.length steps)
        (List.length l)
    | _ -> Alcotest.fail "path is not a list")

(* jobs > 1 routes the same walks through worker domains: the answers
   must be structurally identical. *)
let test_jobs_parity () =
  let a = analysis demo in
  List.iter
    (fun mode ->
      check_bool "witness identical across jobs" true
        (Engine.witness_from_line a ~seed_line:demo_seed_line ~line:demo_x_line
           mode
        = Engine.witness_from_line ~jobs:4 a ~seed_line:demo_seed_line
            ~line:demo_x_line mode);
      check_bool "report identical across jobs" true
        (Engine.slice_report a ~line:demo_seed_line mode
        = Engine.slice_report ~jobs:4 a ~line:demo_seed_line mode))
    [ Slicer.Thin; Slicer.Traditional_full ]

(* ---- rank agreement: provenance distance == Inspect layer ----------- *)

(* The paper's section 5 rank of a line (the BFS layer the Inspect
   simulation first shows it in) must equal the provenance rank (min
   recorded distance over the line's countable member nodes) — on all 9
   paper workloads, in both budget-free modes.  This is the invariant
   that lets `thinslice report` reproduce the inspection counts. *)
let test_rank_agreement_on_workloads () =
  List.iter
    (fun (name, src) ->
      let a = Slice_core.Engine.of_source ~file:(name ^ ".tj") src in
      let g = a.Engine.sdg in
      let countable = ref [] in
      for n = Sdg.num_nodes g - 1 downto 0 do
        if Sdg.node_countable g n then countable := n :: !countable
      done;
      let arr = Array.of_list !countable in
      let seeds = [ arr.(Array.length arr / 2) ] in
      List.iter
        (fun mode ->
          let ctx =
            Printf.sprintf "%s %s" name (Slicer.mode_to_string mode)
          in
          (* desired line 0 never matches a countable node, so the
             inspection explores the whole slice *)
          let rep = Inspect.bfs g ~seeds ~desired:[ 0 ] mode in
          let prov = Slicer.create_provenance g in
          let members = Slicer.slice ~prov g ~seeds mode in
          let ranks = Hashtbl.create 256 in
          List.iter
            (fun n ->
              if Sdg.node_countable g n then begin
                let loc = Sdg.node_loc g n in
                let key = (loc.Slice_ir.Loc.file, loc.Slice_ir.Loc.line) in
                let d =
                  match Slicer.distance prov n with
                  | Some d -> d
                  | None -> Alcotest.failf "%s: member %d has no distance" ctx n
                in
                match Hashtbl.find_opt ranks key with
                | Some d' when d' <= d -> ()
                | _ -> Hashtbl.replace ranks key d
              end)
            members;
          Alcotest.(check int)
            (ctx ^ ": same counted-line universe")
            (Hashtbl.length ranks) (List.length rep.Inspect.order);
          List.iter2
            (fun key depth ->
              match Hashtbl.find_opt ranks key with
              | Some d ->
                if d <> depth then
                  Alcotest.failf "%s: %s:%d inspected at layer %d, provenance rank %d"
                    ctx (fst key) (snd key) depth d
              | None ->
                Alcotest.failf "%s: inspected line %s:%d not a provenance member"
                  ctx (fst key) (snd key))
            rep.Inspect.order rep.Inspect.order_depths)
        [ Slicer.Thin; Slicer.Traditional_full ])
    Slice_workloads.Suites.paper_workloads

let suite =
  [ Alcotest.test_case "witness: thin mode" `Quick test_witness_thin;
    Alcotest.test_case "witness: traditional full" `Quick
      test_witness_traditional_full;
    Alcotest.test_case "witness: aliasing budget replay" `Quick
      test_witness_budget_mode;
    Alcotest.test_case "witness_from_line semantics" `Quick
      test_witness_from_line;
    Alcotest.test_case "report: layer partition and ranks" `Quick
      test_report_layers;
    Alcotest.test_case "report/witness JSON schema" `Quick
      test_report_json_schema;
    Alcotest.test_case "witness/report identical across --jobs" `Quick
      test_jobs_parity;
    Alcotest.test_case "provenance rank == Inspect layer (9 workloads)"
      `Quick test_rank_agreement_on_workloads ]
