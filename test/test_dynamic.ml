(* Dynamic slicing tests: the dynamic thin slice (producer events only)
   versus the dynamic data slice and the static thin slice. *)

open Slice_workloads
open Helpers

module IntSet = Set.Make (Int)

let traced_run ?(args = []) ?(streams = []) src =
  let p = load src in
  let trace = Slice_interp.Dyntrace.create () in
  let o =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with args; streams; trace = Some trace }
      p
  in
  (p, trace, o)

(* statement id of the unique statement matching [pred] on [line] *)
let stmt_on_line p ~line ~pred =
  let tbl = Slice_ir.Program.build_stmt_table p in
  Hashtbl.fold
    (fun id si acc ->
      if
        (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line = line
        && pred si.Slice_ir.Program.s_site
      then Some id
      else acc)
    tbl None

let is_call = function
  | Slice_ir.Program.Site_instr
      { Slice_ir.Instr.i_kind = Slice_ir.Instr.Call _; _ } ->
    true
  | _ -> false

let test_thin_subset_of_data () =
  let src = Paper_figures.fig1 in
  let args, streams = Paper_figures.fig1_io in
  let p, trace, _ = traced_run ~args ~streams src in
  let seed_line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  match stmt_on_line p ~line:seed_line ~pred:is_call with
  | None -> Alcotest.fail "seed not found"
  | Some stmt -> (
    match
      ( Slice_interp.Dyntrace.dynamic_thin_slice trace stmt,
        Slice_interp.Dyntrace.dynamic_data_slice trace stmt )
    with
    | Some thin, Some data ->
      Alcotest.(check bool) "thin subset of data" true
        (IntSet.subset (IntSet.of_list thin) (IntSet.of_list data));
      Alcotest.(check bool) "thin nonempty" true (thin <> [])
    | _ -> Alcotest.fail "seed never executed")

let test_dynamic_within_static () =
  let src = Paper_figures.fig1 in
  let args, streams = Paper_figures.fig1_io in
  let p, trace, _ = traced_run ~args ~streams src in
  let a = Slice_core.Engine.analyze p in
  let seed_line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let static_lines =
    Slice_core.Engine.slice_from_line a ~line:seed_line Slice_core.Slicer.Thin
  in
  match stmt_on_line p ~line:seed_line ~pred:is_call with
  | None -> Alcotest.fail "seed not found"
  | Some stmt -> (
    match Slice_interp.Dyntrace.dynamic_thin_slice trace stmt with
    | None -> Alcotest.fail "seed never executed"
    | Some stmts ->
      let tbl = Slice_ir.Program.build_stmt_table p in
      List.iter
        (fun s ->
          match Hashtbl.find_opt tbl s with
          | Some si ->
            let l = (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line in
            if l > 0 && not (List.mem l static_lines) then
              Alcotest.failf "dynamic line %d outside the static thin slice" l
          | None -> ())
        stmts)

let test_dynamic_distinguishes_runs () =
  (* with a different input, the erroneous branch is never taken, and its
     statements stay out of the dynamic slice *)
  let src =
    {|void main(String[] args) {
  int x = parseInt(args[0]);
  String msg = "small";
  if (x > 100) {
    msg = "big";
  }
  print(msg);
}|}
  in
  let check args expect_big =
    let p, trace, _ = traced_run ~args src in
    let seed_line = line_of ~src ~pattern:"print(msg);" in
    match stmt_on_line p ~line:seed_line ~pred:is_call with
    | None -> Alcotest.fail "seed not found"
    | Some stmt -> (
      match Slice_interp.Dyntrace.dynamic_thin_slice trace stmt with
      | None -> Alcotest.fail "not executed"
      | Some stmts ->
        let tbl = Slice_ir.Program.build_stmt_table p in
        let lines =
          List.filter_map
            (fun s ->
              Option.map
                (fun si -> (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line)
                (Hashtbl.find_opt tbl s))
            stmts
        in
        Alcotest.(check bool)
          (Printf.sprintf "big-branch for args %s" (String.concat "," args))
          expect_big
          (List.mem (line_of ~src ~pattern:{|msg = "big";|}) lines))
  in
  check [ "5" ] false;
  check [ "500" ] true

(* The interpreter must convert {!Dyntrace.Trace_overflow} into a clean
   [Trace_limit_exceeded] failure value — never leak the exception. *)
let test_trace_overflow () =
  let p = load (Helpers.expr_main "while (true) { int x = 1; }") in
  let trace = Slice_interp.Dyntrace.create ~max_events:100 () in
  let o =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with trace = Some trace }
      p
  in
  match o.Slice_interp.Interp.result with
  | Error
      { Slice_interp.Interp.f_kind = Slice_interp.Interp.Trace_limit_exceeded _;
        _ } ->
    ()
  | Error f ->
    Alcotest.failf "wrong failure: %s"
      (Format.asprintf "%a" Slice_interp.Interp.pp_failure f)
  | Ok () -> Alcotest.fail "expected a trace-limit failure"

(* max_events is an exact boundary: a budget equal to the demand passes;
   one less trips the limit. *)
let test_max_events_boundary () =
  let src = Helpers.expr_main "int a = 1;\nint b = a + 1;\nprint(itoa(b));" in
  let p = load src in
  let run_with n =
    let trace = Slice_interp.Dyntrace.create ~max_events:n () in
    let o =
      Slice_interp.Interp.run
        { Slice_interp.Interp.default_config with trace = Some trace }
        p
    in
    (o.Slice_interp.Interp.result, Slice_interp.Dyntrace.length trace)
  in
  (* learn the exact demand with a generous budget *)
  let r, demand = run_with 1_000 in
  (match r with
  | Ok () -> ()
  | Error f ->
    Alcotest.failf "program failed: %s"
      (Format.asprintf "%a" Slice_interp.Interp.pp_failure f));
  Alcotest.(check bool) "some events recorded" true (demand > 0);
  (match run_with demand with
  | Ok (), n -> Alcotest.(check int) "exact budget suffices" demand n
  | Error f, _ ->
    Alcotest.failf "exact budget failed: %s"
      (Format.asprintf "%a" Slice_interp.Interp.pp_failure f));
  match run_with (demand - 1) with
  | ( Error
        { Slice_interp.Interp.f_kind = Slice_interp.Interp.Trace_limit_exceeded _;
          _ },
      n ) ->
    Alcotest.(check bool) "stopped at the limit" true (n <= demand - 1)
  | Ok (), _ -> Alcotest.fail "budget demand-1 should overflow"
  | Error f, _ ->
    Alcotest.failf "wrong failure: %s"
      (Format.asprintf "%a" Slice_interp.Interp.pp_failure f)

(* slice_from_event ~include_base is exactly the thin/data distinction:
   base deps off excludes the receiver allocation, on includes it. *)
let test_slice_from_event_include_base () =
  let src =
    {|class Box {
  int v;
  void set(int x) { this.v = x; }
  int get() { return this.v; }
}
void main(String[] args) {
  Box b = new Box();
  b.set(41);
  int r = b.get();
  print(itoa(r));
}|}
  in
  let p, trace, _ = traced_run src in
  let seed_line = line_of ~src ~pattern:"print(itoa(r));" in
  match stmt_on_line p ~line:seed_line ~pred:is_call with
  | None -> Alcotest.fail "seed not found"
  | Some stmt -> (
    match Slice_interp.Dyntrace.last_event_of_stmt trace stmt with
    | None -> Alcotest.fail "seed never executed"
    | Some ev ->
      let thin = Slice_interp.Dyntrace.slice_from_event trace ~include_base:false ev in
      let data = Slice_interp.Dyntrace.slice_from_event trace ~include_base:true ev in
      Alcotest.(check bool) "thin within data" true
        (IntSet.subset (IntSet.of_list thin) (IntSet.of_list data));
      let lines_of stmts =
        let tbl = Slice_ir.Program.build_stmt_table p in
        List.filter_map
          (fun s ->
            Option.map
              (fun si -> (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line)
              (Hashtbl.find_opt tbl s))
          stmts
      in
      let alloc_line = line_of ~src ~pattern:"Box b = new Box();" in
      Alcotest.(check bool) "allocation only via base deps" true
        ((not (List.mem alloc_line (lines_of thin)))
        && List.mem alloc_line (lines_of data)))

(* Statements that never executed have no last event and no dynamic
   slice — [None], not an empty list or a crash. *)
let test_never_executed_stmt () =
  let src =
    Helpers.expr_main
      "int x = 5;\nif (x > 100) {\n  int dead = 1;\n}\nprint(itoa(x));"
  in
  let p, trace, _ = traced_run src in
  let dead_line = line_of ~src ~pattern:"int dead = 1;" in
  match stmt_on_line p ~line:dead_line ~pred:(fun _ -> true) with
  | None -> Alcotest.fail "dead statement not found"
  | Some stmt ->
    Alcotest.(check bool) "no last event" true
      (Slice_interp.Dyntrace.last_event_of_stmt trace stmt = None);
    Alcotest.(check bool) "no dynamic thin slice" true
      (Slice_interp.Dyntrace.dynamic_thin_slice trace stmt = None);
    Alcotest.(check bool) "no dynamic data slice" true
      (Slice_interp.Dyntrace.dynamic_data_slice trace stmt = None)

let suite =
  [ Alcotest.test_case "thin subset of data" `Quick test_thin_subset_of_data;
    Alcotest.test_case "dynamic within static" `Quick test_dynamic_within_static;
    Alcotest.test_case "distinguishes runs" `Quick test_dynamic_distinguishes_runs;
    Alcotest.test_case "trace overflow becomes a clean failure" `Quick
      test_trace_overflow;
    Alcotest.test_case "max_events is an exact boundary" `Quick
      test_max_events_boundary;
    Alcotest.test_case "slice_from_event include_base" `Quick
      test_slice_from_event_include_base;
    Alcotest.test_case "never-executed statements slice to None" `Quick
      test_never_executed_stmt ]
