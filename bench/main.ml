(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6) on the TJ workload suite.

     dune exec bench/main.exe              all experiments
     dune exec bench/main.exe -- table1    benchmark characteristics
     dune exec bench/main.exe -- table2    debugging tasks
     dune exec bench/main.exe -- table3    tough casts
     dune exec bench/main.exe -- figure23  Figure 2/3 edge classification
     dune exec bench/main.exe -- scalability
     dune exec bench/main.exe -- ablation
     dune exec bench/main.exe -- timing    Bechamel micro-benchmarks
     dune exec bench/main.exe -- json      machine-readable BENCH_results.json

   Absolute numbers differ from the paper (its benchmarks are 20k-580k
   SDG-statement Java programs on WALA); EXPERIMENTS.md records the
   paper-vs-measured comparison and what carries over. *)

open Slice_core
open Slice_workloads

let sep () = print_endline (String.make 78 '-')

(* ------------------------------------------------------------------ *)
(* Table 1: benchmark characteristics                                  *)
(* ------------------------------------------------------------------ *)

let suite_programs () =
  [ ("nanoxml", Prog_nanoxml.base);
    ("jtopas", Prog_jtopas.base);
    ("ant", Prog_ant.base);
    ("xmlsec", Prog_xmlsec.base);
    ("mtrt", Prog_mtrt.base);
    ("jess", Prog_jess.base);
    ("javac", Prog_javac.base);
    ("jack", Prog_jack.base);
    ("pipeline-32", Generators.pipeline_program ~stages:32) ]

let table1 () =
  sep ();
  print_endline "Table 1: benchmark characteristics";
  Printf.printf "%-12s %8s %8s %8s %8s %8s %8s\n" "Benchmark" "Classes"
    "Methods" "IRStmts" "CGNodes" "SDGStmt" "SDGNode";
  List.iter
    (fun (name, src) ->
      let a = Engine.of_source ~file:(name ^ ".tj") src in
      let s = Engine.stats_of a in
      Printf.printf "%-12s %8d %8d %8d %8d %8d %8d\n" name s.Engine.classes
        s.Engine.methods s.Engine.ir_statements s.Engine.call_graph_nodes
        s.Engine.sdg_statements s.Engine.sdg_nodes)
    (suite_programs ())

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3                                                      *)
(* ------------------------------------------------------------------ *)

let print_task_table title tasks =
  sep ();
  print_endline title;
  Printf.printf "%-16s %6s %6s %6s %5s %9s %9s  %s\n" "Task" "Thin" "Trad"
    "Ratio" "#Ctl" "ThinNoOS" "TradNoOS" "(paper: thin/trad)";
  let tot_thin = ref 0 and tot_trad = ref 0 in
  let all_found = ref true in
  List.iter
    (fun (t : Task.t) ->
      let m = Task.measure t in
      if not (m.Task.m_thin_found && m.Task.m_trad_found) then all_found := false;
      tot_thin := !tot_thin + m.Task.m_thin;
      tot_trad := !tot_trad + m.Task.m_trad;
      let paper_s =
        match t.Task.paper with
        | Some p -> Printf.sprintf "(%d/%d)" p.Task.p_thin p.Task.p_trad
        | None -> ""
      in
      Printf.printf "%-16s %6d %6d %6.2f %5d %9d %9d  %s%s\n" t.Task.id
        m.Task.m_thin m.Task.m_trad (Task.ratio m) t.Task.controls
        m.Task.m_thin_noobj m.Task.m_trad_noobj paper_s
        (if m.Task.m_thin_found then "" else "  [desired NOT found]"))
    tasks;
  let agg = float_of_int !tot_trad /. float_of_int (max 1 !tot_thin) in
  Printf.printf "%-16s %6d %6d %6.2f   (aggregate inspection-effort ratio)\n"
    "TOTAL" !tot_thin !tot_trad agg;
  if not !all_found then print_endline "WARNING: some desired statements not found"

let validate_all tasks =
  List.iter
    (fun t ->
      match Task.validate t with
      | Ok () -> ()
      | Error e -> Printf.printf "VALIDATION FAILURE: %s\n" e)
    tasks

let table2 () =
  print_task_table
    "Table 2: locating injected bugs (inspected statements, BFS metric)"
    Sir_suite.tasks;
  validate_all Sir_suite.tasks;
  print_endline
    "(the five excluded xml-security bugs: slicing from the failed digest\n\
    \ check pulls in the whole hash computation; see EXPERIMENTS.md)"

let table3 () =
  print_task_table
    "Table 3: understanding tough casts (inspected statements, BFS metric)"
    Casts_suite.tasks;
  validate_all Casts_suite.tasks

(* ------------------------------------------------------------------ *)
(* Figures 2/3: edge classification on the toy program                 *)
(* ------------------------------------------------------------------ *)

let figure23 () =
  sep ();
  print_endline "Figures 2/3: dependence classification on the toy program";
  let src = Paper_figures.fig2 in
  let a = Engine.of_source ~file:"fig2.tj" src in
  let g = a.Engine.sdg in
  let seed_line = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig2_seed in
  let seeds = Engine.seeds_at_line_exn ~filter:Engine.Only_loads a seed_line in
  let thin =
    Engine.slice_from_line ~filter:Engine.Only_loads a ~line:seed_line Slicer.Thin
  in
  let trad =
    Engine.slice_from_line ~filter:Engine.Only_loads a ~line:seed_line
      Slicer.Traditional_full
  in
  let arr = Array.of_list (String.split_on_char '\n' src) in
  Printf.printf "seed: line %d | %s\n" seed_line (String.trim arr.(seed_line - 1));
  Printf.printf "thin slice lines        : %s\n"
    (String.concat ", " (List.map string_of_int thin));
  Printf.printf "traditional slice lines : %s\n"
    (String.concat ", " (List.map string_of_int trad));
  print_endline "edges out of the seed (Figure 3 classification):";
  List.iter
    (fun seed ->
      List.iter
        (fun (dep, kind) ->
          Format.printf "  [%s] -> %a@." (Sdg.edge_kind_to_string kind)
            (Sdg.pp_node g) dep)
        (Sdg.deps g seed))
    seeds

(* ------------------------------------------------------------------ *)
(* Scalability (section 6.1)                                           *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let scalability () =
  sep ();
  print_endline
    "Scalability: analysis cost vs slice cost (CI thin slicing is\n\
     insignificant next to call graph construction + pointer analysis),\n\
     and the heap-parameter (context-sensitive) SDG node blowup";
  Printf.printf "%-8s %8s %8s %9s %9s %9s %11s %9s %9s %9s\n" "stages"
    "IRStmts" "CGNodes" "SDGNodes" "HSDG" "HeapParm" "analysis(s)" "thin(ms)"
    "trad(ms)" "cs(ms)";
  List.iter
    (fun stages ->
      let src = Generators.pipeline_program ~stages in
      let p = Slice_front.Frontend.load_exn ~file:"pipe.tj" src in
      let a, t_analysis = time (fun () -> Engine.analyze p) in
      let line =
        Runtime_lib.line_of ~src ~pattern:Generators.pipeline_seed_pattern
      in
      let seeds = Engine.seeds_at_line_exn a line in
      let _, t_thin =
        time (fun () -> Slicer.slice a.Engine.sdg ~seeds Slicer.Thin)
      in
      let _, t_trad =
        time (fun () -> Slicer.slice a.Engine.sdg ~seeds Slicer.Traditional_data)
      in
      (* the context-sensitive heap-parameter representation *)
      let tab = Tabulation.build p a.Engine.pta in
      let cs_seeds = Tabulation.nodes_at_line tab ~line in
      let _, t_cs =
        time (fun () -> Tabulation.slice tab ~seeds:cs_seeds Tabulation.Thin)
      in
      let ts = Tabulation.stats tab in
      let s = Engine.stats_of a in
      Printf.printf "%-8d %8d %8d %9d %9d %9d %11.3f %9.3f %9.3f %9.3f\n"
        stages s.Engine.ir_statements s.Engine.call_graph_nodes
        s.Engine.sdg_nodes ts.Tabulation.total_nodes
        ts.Tabulation.heap_param_nodes t_analysis (t_thin *. 1000.)
        (t_trad *. 1000.) (t_cs *. 1000.))
    [ 4; 8; 16; 32; 64 ];
  sep ();
  print_endline
    "Context sensitivity in practice (paper section 6.1: \"the\n\
     context-sensitive algorithm does not seem beneficial for thin slicing\n\
     as likely used in practice\"): full slice sizes shrink, BFS counts\n\
     barely move";
  let src = Prog_nanoxml.base in
  let p = Slice_front.Frontend.load_exn ~file:"nanoxml.tj" src in
  let a = Engine.analyze p in
  let line =
    Runtime_lib.line_of ~src ~pattern:"print((String) this.lines.get(i));"
  in
  let ci_thin = Engine.slice_from_line a ~line Slicer.Thin in
  let ci_trad = Engine.slice_from_line a ~line Slicer.Traditional_data in
  let tab = Tabulation.build p a.Engine.pta in
  let cs_seeds = Tabulation.nodes_at_line tab ~line in
  let cs_thin =
    Tabulation.slice_lines tab (Tabulation.slice tab ~seeds:cs_seeds Tabulation.Thin)
  in
  let cs_trad =
    Tabulation.slice_lines tab
      (Tabulation.slice tab ~seeds:cs_seeds Tabulation.Traditional)
  in
  Printf.printf
    "  nanoxml slice sizes (lines): thin CI=%d CS=%d | traditional CI=%d CS=%d\n"
    (List.length ci_thin) (List.length cs_thin) (List.length ci_trad)
    (List.length cs_trad)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  sep ();
  print_endline "Ablation 1: container object-sensitivity (Table 2+3 aggregate)";
  let tasks = Sir_suite.tasks @ Casts_suite.tasks in
  let measures = List.map Task.measure tasks in
  let tot f = List.fold_left (fun acc m -> acc + f m) 0 measures in
  Printf.printf "  thin: %d (obj-sens) vs %d (no obj-sens)   trad: %d vs %d\n"
    (tot (fun m -> m.Task.m_thin))
    (tot (fun m -> m.Task.m_thin_noobj))
    (tot (fun m -> m.Task.m_trad))
    (tot (fun m -> m.Task.m_trad_noobj));
  sep ();
  print_endline
    "Ablation 2: aliasing-expansion budget on the nanoxml-5 style task";
  let t = List.nth Prog_nanoxml.tasks 4 in
  let a =
    Engine.analyze (Slice_front.Frontend.load_exn ~file:"n5.tj" t.Task.src)
  in
  let seed_line =
    Runtime_lib.line_of ~src:t.Task.src ~pattern:t.Task.seed_pattern
  in
  let desired =
    List.map
      (fun pat -> Runtime_lib.line_of ~src:t.Task.src ~pattern:pat)
      t.Task.desired_patterns
  in
  List.iter
    (fun mode ->
      let r =
        Engine.inspect_from_line ~filter:t.Task.seed_filter a ~line:seed_line
          ~desired mode
      in
      Printf.printf "  %-14s inspected=%3d found=%b slice=%d\n"
        (Slicer.mode_to_string mode) r.Inspect.inspected r.Inspect.found
        r.Inspect.slice_size)
    [ Slicer.Thin;
      Slicer.Thin_with_aliasing 1;
      Slicer.Thin_with_aliasing 2;
      Slicer.Traditional_data ];
  sep ();
  print_endline
    "Ablation 3: expansion to fixpoint recovers the traditional slice\n\
     (thin slices are a principled subset, not an ad-hoc pruning)";
  let src = Paper_figures.fig1 in
  let a = Engine.of_source ~file:"fig1.tj" src in
  let line = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig1_seed in
  let seeds = Engine.seeds_at_line_exn a line in
  let expanded = Expansion.expand_to_fixpoint a.Engine.sdg ~seeds in
  let full = Slicer.slice a.Engine.sdg ~seeds Slicer.Traditional_full in
  Printf.printf "  fig1: |thin-expanded-to-fixpoint| = %d, |traditional| = %d\n"
    (List.length expanded) (List.length full)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let timing () =
  sep ();
  print_endline "Bechamel timings (ns/run; one Test.make per experiment)";
  let open Bechamel in
  let fig1_analysis =
    lazy (Engine.of_source ~file:"fig1.tj" Paper_figures.fig1)
  in
  let nanoxml_program =
    lazy (Slice_front.Frontend.load_exn ~file:"nanoxml.tj" Prog_nanoxml.base)
  in
  let nanoxml_analysis = lazy (Engine.analyze (Lazy.force nanoxml_program)) in
  let seed_of (a : Engine.analysis) src pat =
    Engine.seeds_at_line_exn a (Runtime_lib.line_of ~src ~pattern:pat)
  in
  let tests =
    Test.make_grouped ~name:"thinslice"
      [ Test.make ~name:"table1:analyze-nanoxml"
          (Staged.stage (fun () ->
               ignore (Engine.analyze (Lazy.force nanoxml_program))));
        Test.make ~name:"table2:thin-slice-nanoxml"
          (Staged.stage (fun () ->
               let a = Lazy.force nanoxml_analysis in
               ignore
                 (Slicer.slice a.Engine.sdg
                    ~seeds:
                      (seed_of a Prog_nanoxml.base
                         "print((String) this.lines.get(i));")
                    Slicer.Thin)));
        Test.make ~name:"table2:trad-slice-nanoxml"
          (Staged.stage (fun () ->
               let a = Lazy.force nanoxml_analysis in
               ignore
                 (Slicer.slice a.Engine.sdg
                    ~seeds:
                      (seed_of a Prog_nanoxml.base
                         "print((String) this.lines.get(i));")
                    Slicer.Traditional_data)));
        Test.make ~name:"table3:tough-casts-javac"
          (Staged.stage (fun () ->
               let a = Engine.of_source ~file:"javac.tj" Prog_javac.base in
               ignore (Engine.tough_casts a)));
        Test.make ~name:"figure4:expand-to-fixpoint"
          (Staged.stage (fun () ->
               let a = Lazy.force fig1_analysis in
               let g = a.Engine.sdg in
               let seeds =
                 seed_of a Paper_figures.fig1 Paper_figures.fig1_seed
               in
               ignore (Expansion.expand_to_fixpoint g ~seeds))) ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some (e :: _) -> (name, e) :: acc
        | _ -> acc)
      res []
  in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-40s %14.0f ns/run\n" name ns)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* JSON export: the machine-readable perf trajectory                   *)
(* ------------------------------------------------------------------ *)

(* v2: adds the "meta" run-environment block (ocaml version, core count,
   recommended domain count, dune profile) — BENCH entries are not
   comparable across machines or build profiles without it. *)
let bench_schema_version = "thinslice.bench/v2"

(* Physical processor count from /proc/cpuinfo (Linux); falls back to the
   runtime's recommendation elsewhere. *)
let core_count () : int =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    if !n > 0 then !n else Domain.recommended_domain_count ()
  with Sys_error _ -> Domain.recommended_domain_count ()

let meta_json () : Slice_obs.Json.t =
  let open Slice_obs.Json in
  Obj
    [ ("ocaml_version", Str Sys.ocaml_version);
      ("cores", Int (core_count ()));
      ("recommended_domains", Int (Domain.recommended_domain_count ()));
      ("dune_profile", Str Build_info.dune_profile);
      ("word_size", Int Sys.word_size);
      ("os_type", Str Sys.os_type) ]

let bench_modes =
  [ Slicer.Thin; Slicer.Thin_with_aliasing 1; Slicer.Traditional_data;
    Slicer.Traditional_full ]

(* Slicing walls are microseconds on these programs; repeat each mode's
   slice so the A/B wall comparison is above timer noise, and run a few
   untimed warmup iterations first so neither side pays one-off costs
   (minor-heap shaping, scratch-buffer growth) inside the timed loop. *)
let slice_reps = 200
let slice_warmup = 5

(* One suite program: run the full pipeline UNFROZEN inside a telemetry
   scope, slice every mode with the seed (list-adjacency, Hashtbl+Queue)
   implementation (the A side), then freeze — timing the compaction —
   and slice every mode on the CSR layout with per-mode scoped telemetry
   (the B side).  Each entry records both walls, the freeze wall, a
   parity bit (A and B returned identical node sets), and per-task
   counters that are deltas, not process-cumulative values. *)
let bench_entry (name : string) (src : string) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  let (a, s), pipeline_snap =
    Slice_obs.scoped (fun () ->
        let a = Engine.of_source ~freeze:false ~file:(name ^ ".tj") src in
        (a, Engine.stats_of a))
  in
  let g = a.Engine.sdg in
  (* representative seed: the first user-visible statement node *)
  let seed = ref None in
  (try
     for n = 0 to Sdg.num_nodes g - 1 do
       if Sdg.node_countable g n then begin
         seed := Some n;
         raise Exit
       end
     done
   with Exit -> ());
  let seeds = match !seed with None -> [] | Some s -> [ s ] in
  (* A: the seed implementation over list adjacency (graph not yet frozen) *)
  let list_results =
    List.map
      (fun mode ->
        let nodes = ref [] in
        for _ = 1 to slice_warmup do
          nodes := Slicer.Reference.slice g ~seeds mode
        done;
        let _, wall =
          time (fun () ->
              for _ = 1 to slice_reps do
                nodes := Slicer.Reference.slice g ~seeds mode
              done)
        in
        (mode, !nodes, wall))
      bench_modes
  in
  (* the freeze (compaction) phase, timed *)
  let (), freeze_wall = time (fun () -> Sdg.freeze g) in
  (* B: the CSR walk, with per-mode isolated telemetry *)
  let slices =
    List.map
      (fun (mode, list_nodes, list_wall) ->
        (* warm up outside the telemetry scope so the recorded counters
           correspond exactly to the [slice_reps] timed iterations *)
        for _ = 1 to slice_warmup do
          ignore (Slicer.slice g ~seeds mode)
        done;
        let (csr_nodes, csr_wall), mode_snap =
          Slice_obs.scoped (fun () ->
              let nodes = ref [] in
              let _, wall =
                time (fun () ->
                    for _ = 1 to slice_reps do
                      nodes := Slicer.slice g ~seeds mode
                    done)
              in
              (!nodes, wall))
        in
        let lines =
          csr_nodes
          |> List.filter (Sdg.node_countable g)
          |> List.map (fun n -> (Sdg.node_loc g n).Slice_ir.Loc.line)
          |> List.sort_uniq compare
        in
        Obj
          [ ("mode", Str (Slicer.mode_to_string mode));
            ("nodes", Int (List.length csr_nodes));
            ("lines", Int (List.length lines));
            ("reps", Int slice_reps);
            ("wall_s_csr", Float csr_wall);
            ("wall_s_list", Float list_wall);
            ("speedup", Float (if csr_wall > 0. then list_wall /. csr_wall else 0.));
            ("parity", Bool (csr_nodes = list_nodes));
            ("counters",
             Obj
               (List.filter_map
                  (fun (k, v) ->
                    if String.length k >= 7 && String.sub k 0 7 = "slicer." then
                      Some (k, Int v)
                    else None)
                  mode_snap.Slice_obs.snap_counters)) ])
      list_results
  in
  Obj
    [ ("name", Str name);
      ("stats", Engine.program_stats_json s);
      ("freeze_wall_s", Float freeze_wall);
      ("phase_wall_s",
       Obj
         (List.map
            (fun (k, v) -> (k, Float v))
            (Slice_obs.span_totals pipeline_snap)));
      ("counters",
       Obj
         (List.map
            (fun (k, v) -> (k, Int v))
            pipeline_snap.Slice_obs.snap_counters));
      ("sdg.edges_by_kind", Engine.edges_by_kind_json pipeline_snap);
      ("slices", List slices) ]

(* Slice-size tables (Tables 2/3) in machine-readable form.  Each task
   measures inside its own telemetry scope, so two identical tasks report
   identical counters (previously counters and peak gauges accumulated
   across all prior tasks in the process). *)
let bench_task (t : Task.t) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  let m, snap = Slice_obs.scoped (fun () -> Task.measure t) in
  Obj
    [ ("id", Str t.Task.id);
      ("thin", Int m.Task.m_thin);
      ("trad", Int m.Task.m_trad);
      ("ratio", Float (Task.ratio m));
      ("controls", Int t.Task.controls);
      ("thin_no_objsens", Int m.Task.m_thin_noobj);
      ("trad_no_objsens", Int m.Task.m_trad_noobj);
      ("thin_found", Bool m.Task.m_thin_found);
      ("trad_found", Bool m.Task.m_trad_found);
      ("counters",
       Obj
         (List.filter_map
            (fun (k, v) ->
              if String.length k >= 7 && String.sub k 0 7 = "slicer." then
                Some (k, Int v)
              else None)
            snap.Slice_obs.snap_counters));
      ("frontier_peak",
       Float
         (match List.assoc_opt "slicer.frontier_peak" snap.Slice_obs.snap_gauges with
         | Some v -> v
         | None -> 0.)) ]

(* Parallel batch A/B: the biggest workload (javac), every line with a
   sliceable statement as a seed, sequential [Engine.slice_batch] against
   [Engine.slice_batch_par] at 2 and 4 domains.  Each parallel entry
   records its wall, the speedup over sequential, and a parity bit
   (line-for-line equality with the sequential batch) — the parity bits
   share the "parity" key with the CSR/list bits so the CI grep covers
   both.  Walls are honest measurements on whatever cores the host has;
   on a single-core container the speedup hovers around (or below) 1. *)
let parallel_batch_reps = 5

let bench_parallel_batch () : Slice_obs.Json.t =
  let open Slice_obs.Json in
  let name = "javac" in
  let src = Prog_javac.base in
  let a = Engine.of_source ~file:(name ^ ".tj") src in
  (* every line that has at least one seed node *)
  let n_lines = List.length (String.split_on_char '\n' src) in
  let lines = ref [] in
  for l = n_lines downto 1 do
    if Engine.seeds_at_line a l <> [] then lines := l :: !lines
  done;
  let lines = !lines in
  let mode = Slicer.Thin in
  let run jobs =
    if jobs <= 1 then Engine.slice_batch a ~lines mode
    else Engine.slice_batch_par ~jobs a ~lines mode
  in
  let timed jobs =
    ignore (run jobs) (* warmup: scratch growth, minor-heap shaping *);
    let r = ref [] in
    let _, wall =
      time (fun () ->
          for _ = 1 to parallel_batch_reps do
            r := run jobs
          done)
    in
    (!r, wall)
  in
  let seq_results, seq_wall = timed 1 in
  let par_entries =
    List.map
      (fun jobs ->
        let par_results, par_wall = timed jobs in
        Obj
          [ ("jobs", Int jobs);
            ("wall_s", Float par_wall);
            ("speedup", Float (if par_wall > 0. then seq_wall /. par_wall else 0.));
            ("parity", Bool (par_results = seq_results)) ])
      [ 2; 4 ]
  in
  Obj
    [ ("name", Str name);
      ("mode", Str (Slicer.mode_to_string mode));
      ("num_slices", Int (List.length lines));
      ("reps", Int parallel_batch_reps);
      ("recommended_domains", Int (Domain.recommended_domain_count ()));
      ("sequential_wall_s", Float seq_wall);
      ("parallel", List par_entries) ]

(* Points-to solver A/B: on every suite program, the bitset /
   cycle-collapsing worklist solver against [Andersen.Reference] (the
   original list/tree implementation, kept verbatim as a telemetry-free
   oracle).  Each entry records both analyze walls (constraint generation
   is interleaved with solving, so the external wall IS the solve wall;
   best of three [pta_reps]-run batches, each after a full major GC),
   the bitset solver's work counters for a single solve, and three parity
   bits:
   identical points-to sets (canonical-key dump), identical call graph,
   and identical thin + traditional slices over SDGs built from either
   result.  The combined bit shares the "parity" key with the CSR/list
   and parallel-batch bits so the CI grep covers all three families.
   Walls are honest single-host measurements. *)
let pta_reps = 20

let bench_pta_ab () : Slice_obs.Json.t list =
  let open Slice_obs.Json in
  let open Slice_pta in
  List.map
    (fun (name, src) ->
      let p = Slice_front.Frontend.load_exn ~file:(name ^ ".tj") src in
      (* warmups (heap shaping) *)
      let oracle = Andersen.Reference.analyze p in
      ignore (Andersen.analyze p);
      (* Best of three timed batches, each preceded by a full major GC:
         at sub-millisecond per solve a single major slice landing inside
         one batch would otherwise dominate the comparison. *)
      let best_wall f =
        let b = ref infinity in
        for _ = 1 to 3 do
          Gc.full_major ();
          let _, w =
            time (fun () ->
                for _ = 1 to pta_reps do
                  ignore (Sys.opaque_identity (f ()))
                done)
          in
          if w < !b then b := w
        done;
        !b
      in
      let ref_wall = best_wall (fun () -> Andersen.Reference.analyze p) in
      let bit_wall = best_wall (fun () -> Andersen.analyze p) in
      (* work counters for ONE bitset solve (deterministic per run) *)
      let bit, snap = Slice_obs.scoped (fun () -> Andersen.analyze p) in
      (* parity: canonical-key dumps are interning-order independent *)
      let parity_pts =
        Andersen.Reference.pts_dump oracle = Andersen.pts_dump bit
      in
      let parity_cg =
        Andersen.Reference.call_graph_dump oracle = Andersen.call_graph_dump bit
      in
      (* parity: slices over SDGs built from either result agree at line
         granularity (node ids depend on interning order, lines do not) *)
      let g_bit = Sdg.build p bit in
      let g_ref = Sdg.build p (Andersen.of_reference oracle) in
      Sdg.freeze g_bit;
      Sdg.freeze g_ref;
      let lines =
        let ls = ref [] in
        for n = 0 to Sdg.num_nodes g_bit - 1 do
          if Sdg.node_countable g_bit n then
            ls := (Sdg.node_loc g_bit n).Slice_ir.Loc.line :: !ls
        done;
        match List.sort_uniq compare !ls with
        | [] -> []
        | sorted ->
          let arr = Array.of_list sorted in
          let k = Array.length arr in
          List.sort_uniq compare [ arr.(0); arr.(k / 2); arr.(k - 1) ]
      in
      let slice_lines g line mode =
        Slicer.slice_line_numbers g
          ~seeds:(Sdg.nodes_at_line g ~file:None ~line)
          mode
      in
      let parity_slices =
        lines <> []
        && List.for_all
             (fun line ->
               List.for_all
                 (fun mode ->
                   slice_lines g_bit line mode = slice_lines g_ref line mode)
                 [ Slicer.Thin; Slicer.Traditional_full ])
             lines
      in
      let counter k =
        match List.assoc_opt k snap.Slice_obs.snap_counters with
        | Some v -> v
        | None -> 0
      in
      Obj
        [ ("name", Str name);
          ("reps", Int pta_reps);
          ("wall_s_bitset", Float bit_wall);
          ("wall_s_reference", Float ref_wall);
          ("speedup", Float (if bit_wall > 0. then ref_wall /. bit_wall else 0.));
          ("worklist_iterations", Int (counter "pta.worklist_iterations"));
          ("constraints_processed", Int (counter "pta.constraints_processed"));
          ("pts_objects_propagated", Int (counter "pta.pts_objects_propagated"));
          ("diff_prop_hits", Int (counter "pta.diff_prop_hits"));
          ("cycles_collapsed", Int (counter "pta.cycles_collapsed"));
          ("lcd_runs", Int (counter "pta.lcd_runs"));
          ("parity_pts", Bool parity_pts);
          ("parity_callgraph", Bool parity_cg);
          ("parity_slices", Bool parity_slices);
          ("parity", Bool (parity_pts && parity_cg && parity_slices)) ])
    (suite_programs ())

(* ------------------------------------------------------------------ *)
(* Serve A/B: resident cache hot path vs cold one-shot analysis        *)
(* ------------------------------------------------------------------ *)

(* The serve daemon's value proposition, measured: cold = what a fresh
   daemon (or the one-shot CLI) pays per query on javac — the whole
   front/pta/sdg pipeline plus the walk; hot = the same query against
   the resident analysis.  Three self-checked claims, enforced in
   [json_results] before the artifact is written:
   - parity: the hot result byte-equals the one-shot Engine path the
     CLI runs (load + run_query + query_result_to_json), under both
     pointer-analysis solvers;
   - hot_zero_reanalysis: the hot responses' per-query span snapshots
     contain no front/pta/sdg phase at all — cache hits re-analyze
     NOTHING, they only walk;
   - speedup >= 10 (in practice orders of magnitude: a thin-slice walk
     vs the full analysis pipeline). *)
let serve_hot_reps = 200
let serve_cold_reps = 3

let bench_serve_ab () : Slice_obs.Json.t =
  let open Slice_obs.Json in
  let module Serve = Slice_serve.Serve in
  let name = "javac" in
  let src = Prog_javac.base in
  let file = name ^ ".tj" in
  (* seed: the median countable line, like the pta_ab slice probes *)
  let line =
    let a = Engine.of_source ~file src in
    let g = a.Engine.sdg in
    let ls = ref [] in
    for n = 0 to Sdg.num_nodes g - 1 do
      if Sdg.node_countable g n then
        ls := (Sdg.node_loc g n).Slice_ir.Loc.line :: !ls
    done;
    let sorted = Array.of_list (List.sort_uniq compare !ls) in
    sorted.(Array.length sorted / 2)
  in
  let request solver =
    Obj
      [ ("id", Int 1); ("method", Str "slice");
        ("params",
         Obj
           [ ("source", Str src); ("file", Str file);
             ("solver", Str solver); ("line", Int line) ]) ]
  in
  let result_of (resp : Slice_obs.Json.t) : string =
    match member "result" resp with
    | Some r -> to_string r
    | None -> failwith ("serve_ab: error response " ^ to_string resp)
  in
  let run st solver = result_of (Serve.handle_request st (request solver)).Serve.resp in
  (* cold: a fresh daemon per query pays the full pipeline every time *)
  let cold_res = ref "" in
  let () = Gc.full_major () in
  let _, cold_wall =
    time (fun () ->
        for _ = 1 to serve_cold_reps do
          let st = Serve.create_state Serve.default_config in
          cold_res := run st "bitset"
        done)
  in
  (* hot: one daemon, resident program; first (miss) query untimed.
     Spans stay enabled so each response's scoped snapshot can prove the
     no-reanalysis claim. *)
  let st = Serve.create_state Serve.default_config in
  let was_enabled = Slice_obs.enabled () in
  Slice_obs.set_enabled true;
  ignore (run st "bitset");
  let hot_zero_reanalysis = ref true in
  let hot_res = ref "" in
  let check_phases (resp : Slice_obs.Json.t) =
    let keys =
      match member "telemetry" resp with
      | Some t -> (
        match member "phase_wall_s" t with
        | Some (Obj kvs) -> List.map fst kvs
        | _ -> [])
      | None -> []
    in
    let is_analysis k =
      List.exists
        (fun p ->
          String.length k >= String.length p
          && String.sub k 0 (String.length p) = p)
        [ "front"; "pta"; "sdg" ]
    in
    if keys = [] || List.exists is_analysis keys then
      hot_zero_reanalysis := false
  in
  let () = Gc.full_major () in
  let _, hot_wall =
    time (fun () ->
        for _ = 1 to serve_hot_reps do
          let o = Serve.handle_request st (request "bitset") in
          check_phases o.Serve.resp;
          hot_res := result_of o.Serve.resp
        done)
  in
  Slice_obs.set_enabled was_enabled;
  (* parity vs the one-shot Engine path (what `thinslice slice --json`
     prints), under both solvers *)
  let oneshot solver =
    let h = Engine.load ~solver [ (file, src) ] in
    let q = Engine.Q_slice { line; mode = Slicer.Thin; forward = false } in
    to_string (Engine.query_result_to_json h q (Engine.run_query h q))
  in
  let parity_bitset = !hot_res = oneshot `Bitset && !hot_res = !cold_res in
  let parity_reference =
    let st = Serve.create_state Serve.default_config in
    run st "reference" = oneshot `Reference
  in
  let qps reps wall = if wall > 0. then float_of_int reps /. wall else 0. in
  let qps_cold = qps serve_cold_reps cold_wall in
  let qps_hot = qps serve_hot_reps hot_wall in
  Obj
    [ ("name", Str name);
      ("line", Int line);
      ("reps_cold", Int serve_cold_reps);
      ("reps_hot", Int serve_hot_reps);
      ("wall_s_cold", Float cold_wall);
      ("wall_s_hot", Float hot_wall);
      ("qps_cold", Float qps_cold);
      ("qps_hot", Float qps_hot);
      ("speedup", Float (if qps_cold > 0. then qps_hot /. qps_cold else 0.));
      ("hot_zero_reanalysis", Bool !hot_zero_reanalysis);
      ("parity_bitset", Bool parity_bitset);
      ("parity_reference", Bool parity_reference);
      ("parity", Bool (parity_bitset && parity_reference)) ]

(* ------------------------------------------------------------------ *)
(* Serve incremental: one-method edit vs from-scratch re-analysis      *)
(* ------------------------------------------------------------------ *)

(* The incremental tentpole, measured on javac: a body-only,
   pointer-free, line-count-preserving edit must take [Engine.update]'s
   Patched path — exactly one method re-lowered, points-to re-keyed,
   only the touched SDG segments re-frozen — and beat a from-scratch
   load by >= 5x while the much-updated handle answers queries exactly
   like a fresh load.  A second probe edits N methods at once and
   checks the work stays proportional to the delta: exactly N bodies
   re-lowered, re-frozen segments monotone in N and always strictly
   under the segment total.  All claims are enforced in [json_results]
   before the artifact is written. *)
let incr_cold_reps = 5
let incr_update_reps = 40

(* Resolved-tier updates rebuild the SDG, so each rep is pricier than a
   patched one — fewer reps keep the bench quick without hurting the
   per-update average. *)
let incr_resolved_reps = 20

(* Constant tweaks inside three distinct javac scanner predicates; the
   [;]-suffixed needles are unique in [Prog_javac.base]. *)
let incr_edits =
  [ ("c == 9;", "c == 10;");   (* Scanner.isSpace *)
    ("c <= 57;", "c <= 56;");  (* Scanner.isDigit *)
    ("c == 95;", "c == 94;") ] (* Scanner.isNameChar *)

let replace_sub ~(sub : string) ~(by : string) (s : string) : string =
  let ls = String.length s and lsub = String.length sub in
  let rec find i =
    if i + lsub > ls then None
    else if String.sub s i lsub = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> failwith (Printf.sprintf "serve_incr: edit needle %S not found" sub)
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + lsub) (ls - i - lsub)

let bench_serve_incr () : Slice_obs.Json.t =
  let open Slice_obs.Json in
  let name = "javac" in
  let src = Prog_javac.base in
  let file = name ^ ".tj" in
  (* seed: the median countable line, like the serve_ab probe *)
  let line =
    let a = Engine.of_source ~file src in
    let g = a.Engine.sdg in
    let ls = ref [] in
    for n = 0 to Sdg.num_nodes g - 1 do
      if Sdg.node_countable g n then
        ls := (Sdg.node_loc g n).Slice_ir.Loc.line :: !ls
    done;
    let sorted = Array.of_list (List.sort_uniq compare !ls) in
    sorted.(Array.length sorted / 2)
  in
  let apply n s =
    List.fold_left
      (fun acc (sub, by) -> replace_sub ~sub ~by acc)
      s
      (List.filteri (fun i _ -> i < n) incr_edits)
  in
  let src1 = apply 1 src in
  (* cold: from-scratch loads of the edited source *)
  let () = Gc.full_major () in
  let _, cold_wall =
    time (fun () ->
        for _ = 1 to incr_cold_reps do
          ignore (Engine.load [ (file, src1) ])
        done)
  in
  (* incremental: ONE resident handle absorbing an alternating stream of
     one-method edits; every update must stay on the Patched path *)
  let h = ref (Engine.load [ (file, src) ]) in
  let all_patched = ref true in
  let relowered_one = ref true in
  let segments_partial = ref true in
  let last_report = ref None in
  let () = Gc.full_major () in
  let _, incr_wall =
    time (fun () ->
        for i = 1 to incr_update_reps do
          let target = if i land 1 = 1 then src1 else src in
          let h', rep = Engine.update !h [ (file, target) ] in
          h := h';
          last_report := Some rep;
          if rep.Engine.up_path <> Engine.Patched then all_patched := false;
          if rep.Engine.up_relowered <> 1 then relowered_one := false;
          if rep.Engine.up_segments_refrozen >= rep.Engine.up_segments_total
          then segments_partial := false
        done)
  in
  (* parity: after the whole edit stream, the patched handle must answer
     exactly like a fresh load of the same source *)
  let final_src = if incr_update_reps land 1 = 1 then src1 else src in
  let fresh = Engine.load [ (file, final_src) ] in
  let ia = !h.Engine.h_analysis and fa = fresh.Engine.h_analysis in
  let parity_slices =
    List.for_all
      (fun mode ->
        Engine.slice_from_line ia ~line mode
        = Engine.slice_from_line fa ~line mode)
      [ Slicer.Thin; Slicer.Traditional_full ]
  in
  let parity_dumps =
    Engine.pts_dump_canonical ia = Engine.pts_dump_canonical fa
    && Engine.call_graph_dump_canonical ia = Engine.call_graph_dump_canonical fa
  in
  (* proportionality: an N-method edit re-lowers exactly N bodies *)
  let prop =
    List.mapi
      (fun i _ ->
        let n = i + 1 in
        let h0 = Engine.load [ (file, src) ] in
        let _, rep = Engine.update h0 [ (file, apply n src) ] in
        (n, rep))
      incr_edits
  in
  let prop_ok =
    List.for_all
      (fun (n, rep) ->
        rep.Engine.up_path = Engine.Patched
        && rep.Engine.up_relowered = n
        && rep.Engine.up_segments_refrozen < rep.Engine.up_segments_total)
      prop
    &&
    let rs = List.map (fun (_, r) -> r.Engine.up_segments_refrozen) prop in
    List.sort compare rs = rs
  in
  (* resolved-tier A/B: a summary-MOVING one-method edit — the ExprToken
     constructor gains a duplicated field store, so its constraint
     summary changes and the Patched path is off the table — against a
     from-scratch load of the same source.  The affected cone is the
     token's own nodes, far under the delta solver's limits, so every
     update must land on Resolved_incremental: this is the A/B for
     [Andersen.resolve_delta] itself. *)
  let src_moved =
    replace_sub ~sub:"this.image = img;"
      ~by:"this.image = img; this.image = img;" src
  in
  let () = Gc.full_major () in
  let _, rcold_wall =
    time (fun () ->
        for _ = 1 to incr_cold_reps do
          ignore (Engine.load [ (file, src_moved) ])
        done)
  in
  let rh = ref (Engine.load [ (file, src) ]) in
  let all_incr = ref true in
  let () = Gc.full_major () in
  let _, rincr_wall =
    time (fun () ->
        for i = 1 to incr_resolved_reps do
          let target = if i land 1 = 1 then src_moved else src in
          let h', rep = Engine.update !rh [ (file, target) ] in
          rh := h';
          if rep.Engine.up_path <> Engine.Resolved_incremental then
            all_incr := false
        done)
  in
  let rfinal = if incr_resolved_reps land 1 = 1 then src_moved else src in
  let rfresh = Engine.load [ (file, rfinal) ] in
  let ria = !rh.Engine.h_analysis and rfa = rfresh.Engine.h_analysis in
  let rparity =
    Engine.pts_dump_canonical ria = Engine.pts_dump_canonical rfa
    && Engine.call_graph_dump_canonical ria
       = Engine.call_graph_dump_canonical rfa
  in
  let rper_cold = rcold_wall /. float_of_int incr_cold_reps in
  let rper_update = rincr_wall /. float_of_int incr_resolved_reps in
  let rspeedup = if rper_update > 0. then rper_cold /. rper_update else 0. in
  let per_cold = cold_wall /. float_of_int incr_cold_reps in
  let per_update = incr_wall /. float_of_int incr_update_reps in
  let speedup = if per_update > 0. then per_cold /. per_update else 0. in
  let seg_refrozen, seg_total =
    match !last_report with
    | Some r -> (r.Engine.up_segments_refrozen, r.Engine.up_segments_total)
    | None -> (0, 0)
  in
  let parity = parity_slices && parity_dumps in
  (* greppable one-liner, same spirit as the fuzz summary *)
  Printf.printf
    "serve_incr: program=%s path=%s relowered=%s segments_refrozen=%d/%d \
     parity=%d speedup=%.1f\n"
    name
    (if !all_patched then "patched" else "MIXED")
    (if !relowered_one then "1" else "?")
    seg_refrozen seg_total
    (if parity then 1 else 0)
    speedup;
  Printf.printf
    "serve_incr_resolved: program=%s path=%s parity=%d speedup=%.1f\n" name
    (if !all_incr then "resolved-incremental" else "MIXED")
    (if rparity then 1 else 0)
    rspeedup;
  Obj
    [ ("name", Str name);
      ("line", Int line);
      ("reps_cold", Int incr_cold_reps);
      ("reps_update", Int incr_update_reps);
      ("wall_s_cold_per_load", Float per_cold);
      ("wall_s_per_update", Float per_update);
      ("speedup", Float speedup);
      ("path_all_patched", Bool !all_patched);
      ("relowered_one", Bool !relowered_one);
      ("segments_refrozen", Int seg_refrozen);
      ("segments_total", Int seg_total);
      ("segments_partial", Bool !segments_partial);
      ("proportional",
       List
         (List.map
            (fun (n, r) ->
              Obj
                [ ("methods_edited", Int n);
                  ("path", Str (Engine.update_path_to_string r.Engine.up_path));
                  ("relowered", Int r.Engine.up_relowered);
                  ("segments_refrozen", Int r.Engine.up_segments_refrozen);
                  ("segments_total", Int r.Engine.up_segments_total) ])
            prop));
      ("proportional_ok", Bool prop_ok);
      ("parity_slices", Bool parity_slices);
      ("parity_dumps", Bool parity_dumps);
      ("parity", Bool parity);
      ("resolved_reps_update", Int incr_resolved_reps);
      ("resolved_wall_s_cold_per_load", Float rper_cold);
      ("resolved_wall_s_per_update", Float rper_update);
      ("resolved_speedup", Float rspeedup);
      ("resolved_all_incremental", Bool !all_incr);
      ("resolved_parity", Bool rparity) ]

(* ------------------------------------------------------------------ *)
(* Arena vs record IR: per-statement memory                            *)
(* ------------------------------------------------------------------ *)

(* Heap bytes of the RECORD instruction payload alone: every instr/term
   record of every method body, measured together so shared locs and
   interned strings count once (as they do in the live program), with
   the list spine subtracted.  Not byte-deterministic across compiler
   versions — a BENCH measurement, never part of compared output. *)
let record_ir_bytes (p : Slice_ir.Program.t) : int =
  let acc = ref [] in
  let n = ref 0 in
  Slice_ir.Program.iter_methods p (fun m ->
      if Slice_ir.Instr.has_body m then begin
        Slice_ir.Instr.iter_instrs m (fun _ i ->
            incr n;
            acc := Obj.repr i :: !acc);
        Slice_ir.Instr.iter_terms m (fun _ t ->
            incr n;
            acc := Obj.repr t :: !acc)
      end);
  8 * (Obj.reachable_words (Obj.repr !acc) - (3 * !n))

let bench_ir_arena () : Slice_obs.Json.t list =
  let open Slice_obs.Json in
  List.map
    (fun (name, src) ->
      let a = Engine.of_source ~file:(name ^ ".tj") src in
      let stmts = Slice_ir.Arena.statements a.Engine.arena in
      let arena_b = Slice_ir.Arena.bytes a.Engine.arena in
      let record_b = record_ir_bytes a.Engine.program in
      let per x = float_of_int x /. float_of_int (max 1 stmts) in
      Obj
        [ ("name", Str name);
          ("statements", Int stmts);
          ("arena_bytes", Int arena_b);
          ("record_ir_bytes", Int record_b);
          ("arena_bytes_per_stmt", Float (per arena_b));
          ("record_bytes_per_stmt", Float (per record_b));
          ("reduction",
           Float
             (if arena_b > 0 then float_of_int record_b /. float_of_int arena_b
              else 0.)) ])
    (suite_programs ())

(* ------------------------------------------------------------------ *)
(* pipeline-huge: the scale frontier                                   *)
(* ------------------------------------------------------------------ *)

(* Synthesized mega-workloads ([Gen_tj.generate_scaled]) through the
   whole pipeline with per-phase walls: gen -> front -> arena -> pta ->
   SDG at heap_jobs 1/2/4 (adjacency-checksum parity) -> mod-ref at
   jobs 1/2/4 (set parity) -> freeze -> batch slice, plus a
   [Slicer.Reference] parity sample, a dynamic-oracle sample with a
   raised trace budget, and the process peak heap.  Every parity bit
   and the statement-count calibration are self-checked before the
   artifact is written; stdout mirrors the greppable keys CI matches.

   Honesty note: this container usually exposes ONE core —
   [Domain.recommended_domain_count () = 1] — so the jobs>1 walls
   measure sharding overhead, not speedup.  The parity bits are the
   point: the sharded paths must be byte-identical at every job count,
   so a multicore host gets the speedup for free.  meta.cores records
   what this host had. *)
let huge_schema_version = "thinslice.huge/v1"

(* Checksum of the SDG adjacency, order-sensitive within each row:
   equal checksums mean the sharded heap wiring emitted edge-for-edge
   the same graph in the same order as the sequential pass. *)
let sdg_checksum (g : Sdg.t) : int =
  let h = ref 0 in
  for n = 0 to Sdg.num_nodes g - 1 do
    Sdg.deps_iter g n (fun m k ->
        h := (!h * 31) + (n * 16381) + (m * 8191) + Sdg.edge_kind_tag k)
  done;
  !h

let modref_equal (num_mctxs : int) (a : Slice_pta.Modref.t)
    (b : Slice_pta.Modref.t) : bool =
  let ok = ref true in
  for mc = 0 to num_mctxs - 1 do
    if
      (not
         (Slice_pta.Modref.LocSet.equal
            (Slice_pta.Modref.mod_of a mc)
            (Slice_pta.Modref.mod_of b mc)))
      || not
           (Slice_pta.Modref.LocSet.equal
              (Slice_pta.Modref.ref_of a mc)
              (Slice_pta.Modref.ref_of b mc))
    then ok := false
  done;
  !ok

let pipeline_huge ?(stmts = 100_000) ?(out = "BENCH_huge.json") () =
  let open Slice_obs.Json in
  let open Slice_fuzz in
  sep ();
  Printf.printf "pipeline-huge: scale run at %d statements\n%!" stmts;
  let seed = 1 in
  let sc, gen_wall = time (fun () -> Gen_tj.generate_scaled ~seed ~stmts) in
  let p, front_wall =
    time (fun () -> Slice_front.Frontend.load_exn ~file:"huge.tj" sc.Gen_tj.sc_src)
  in
  let actual = Slice_ir.Program.stmt_count p in
  let err_pct =
    100. *. Float.abs (float_of_int (actual - stmts)) /. float_of_int stmts
  in
  Printf.printf "pipeline-huge stmts=%d actual=%d err_pct=%.2f parts=%d\n%!"
    stmts actual err_pct sc.Gen_tj.sc_parts;
  Printf.printf "phase=gen wall_s=%.3f\n%!" gen_wall;
  Printf.printf "phase=front wall_s=%.3f\n%!" front_wall;
  let arena, arena_wall = time (fun () -> Slice_ir.Arena.build p) in
  let parity_arena_views =
    match Slice_ir.Arena.check_views p arena with
    | Ok () -> true
    | Error msg ->
      Printf.eprintf "pipeline-huge: arena view mismatch: %s\n" msg;
      false
  in
  Printf.printf "phase=arena wall_s=%.3f arena_bytes=%d\n%!" arena_wall
    (Slice_ir.Arena.bytes arena);
  let pta, pta_wall = time (fun () -> Slice_pta.Andersen.analyze p) in
  Printf.printf "phase=pta wall_s=%.3f\n%!" pta_wall;
  (* SDG heap wiring A/B: sequential vs sharded, checksum parity *)
  let g1, sdg1_wall = time (fun () -> Sdg.build ~arena ~heap_jobs:1 p pta) in
  let c1 = sdg_checksum g1 in
  let sdg_jobs_entries, parity_sdg =
    List.fold_left
      (fun (entries, par) jobs ->
        let g, w = time (fun () -> Sdg.build ~arena ~heap_jobs:jobs p pta) in
        let ok = sdg_checksum g = c1 && Sdg.num_edges g = Sdg.num_edges g1 in
        Printf.printf "phase=sdg jobs=%d wall_s=%.3f parity=%b\n%!" jobs w ok;
        ( entries
          @ [ Obj
                [ ("jobs", Int jobs);
                  ("wall_s", Float w);
                  ("parity", Bool ok) ] ],
          par && ok ))
      ( [ Obj [ ("jobs", Int 1); ("wall_s", Float sdg1_wall) ] ],
        parity_arena_views )
      [ 2; 4 ]
  in
  Printf.printf "phase=sdg jobs=1 wall_s=%.3f\n%!" sdg1_wall;
  (* mod-ref direct pass A/B *)
  let num_mctxs = Slice_pta.Andersen.num_call_graph_nodes pta in
  let mr1, mr1_wall =
    time (fun () -> Slice_pta.Modref.compute ~jobs:1 p pta)
  in
  Printf.printf "phase=modref jobs=1 wall_s=%.3f\n%!" mr1_wall;
  let modref_entries, parity_modref =
    List.fold_left
      (fun (entries, par) jobs ->
        let mr, w =
          time (fun () -> Slice_pta.Modref.compute ~jobs p pta)
        in
        let ok = modref_equal num_mctxs mr1 mr in
        Printf.printf "phase=modref jobs=%d wall_s=%.3f parity=%b\n%!" jobs w
          ok;
        ( entries
          @ [ Obj
                [ ("jobs", Int jobs);
                  ("wall_s", Float w);
                  ("parity", Bool ok) ] ],
          par && ok ))
      ([ Obj [ ("jobs", Int 1); ("wall_s", Float mr1_wall) ] ], true)
      [ 2; 4 ]
  in
  let (), freeze_wall = time (fun () -> Sdg.freeze g1) in
  Printf.printf "phase=freeze wall_s=%.3f\n%!" freeze_wall;
  let a =
    { Engine.program = p; pta; sdg = g1; arena; obj_sens = true }
  in
  (* batch slice over sampled seed-bearing lines (strided, so the sample
     spans the whole program, plus the generator's trailing print) *)
  let n_lines =
    List.length (String.split_on_char '\n' sc.Gen_tj.sc_src)
  in
  let sample_lines =
    let want = 48 in
    let stride = max 1 (n_lines / 199) in
    let ls = ref [] and l = ref 1 in
    while List.length !ls < want && !l <= n_lines do
      if Engine.seeds_at_line a !l <> [] then ls := !l :: !ls;
      l := !l + stride
    done;
    List.sort_uniq compare (sc.Gen_tj.sc_seed_line :: !ls)
  in
  let slices, batch_wall =
    time (fun () -> Engine.slice_batch a ~lines:sample_lines Slicer.Thin)
  in
  let slice_lines_total =
    List.fold_left (fun acc (_, ls) -> acc + List.length ls) 0 slices
  in
  Printf.printf "phase=batch_slice wall_s=%.3f slices=%d lines_total=%d\n%!"
    batch_wall (List.length slices) slice_lines_total;
  (* Reference-slicer parity on a handful of sampled seeds *)
  let ref_sample =
    let k = List.length sample_lines in
    List.filteri (fun i _ -> i = 0 || i = k / 2 || i = k - 1) sample_lines
  in
  let parity_reference, ref_wall =
    let r, w =
      time (fun () ->
          List.for_all
            (fun line ->
              let seeds = Engine.seeds_at_line a line in
              let fast =
                List.sort compare (Slicer.slice a.Engine.sdg ~seeds Slicer.Thin)
              in
              let oracle =
                List.sort compare
                  (Slicer.Reference.slice a.Engine.sdg ~seeds Slicer.Thin)
              in
              fast = oracle)
            ref_sample)
    in
    (r, w)
  in
  Printf.printf "phase=reference wall_s=%.3f seeds=%d parity=%b\n%!" ref_wall
    (List.length ref_sample) parity_reference;
  (* dynamic-oracle sample: one traced run with a budget scaled to the
     program, dyn thin slice at the trailing print contained in the
     static thin slice.  A clean budget trip is tolerated (and
     recorded); any other failure breaks the generator's
     fault-free-by-construction promise. *)
  let budget = max 8_000_000 (4 * stmts) in
  let trace = Slice_interp.Dyntrace.create ~max_events:budget () in
  let o, dyn_wall =
    time (fun () ->
        Slice_interp.Interp.run
          { Slice_interp.Interp.default_config with
            max_steps = budget;
            trace = Some trace }
          p)
  in
  let dyn_status, dyn_contained =
    match o.Slice_interp.Interp.result with
    | Error { Slice_interp.Interp.f_kind = Slice_interp.Interp.Trace_limit_exceeded _; _ } ->
      ("trace_limit", true)
    | Error { Slice_interp.Interp.f_kind = Slice_interp.Interp.Step_limit_exceeded; _ } ->
      ("step_limit", true)
    | Error f ->
      Printf.eprintf "pipeline-huge: scaled program failed: %s\n"
        (Format.asprintf "%a" Slice_interp.Interp.pp_failure f);
      ("failed", false)
    | Ok () -> (
      let tbl = Slice_ir.Program.build_stmt_table p in
      let seed_stmt =
        Hashtbl.fold
          (fun id si acc ->
            if
              (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line
              = sc.Gen_tj.sc_seed_line
            then
              match si.Slice_ir.Program.s_site with
              | Slice_ir.Program.Site_instr
                  { Slice_ir.Instr.i_kind = Slice_ir.Instr.Call _; _ } ->
                Some id
              | _ -> acc
            else acc)
          tbl None
      in
      match seed_stmt with
      | None -> ("no_seed", false)
      | Some stmt -> (
        match Slice_interp.Dyntrace.dynamic_thin_slice trace stmt with
        | None -> ("never_executed", false)
        | Some dyn_stmts ->
          let static_lines =
            Engine.slice_from_line a ~line:sc.Gen_tj.sc_seed_line Slicer.Thin
          in
          (* Containment is checked at the static slicer's line
             granularity, which reports COUNTABLE statements only
             ([Sdg.node_countable]): SSA phis and gotos carry a nearby
             source location but are never listed in a static slice, so
             dynamic events on them are skipped here too. *)
          let countable_site (si : Slice_ir.Program.stmt_info) =
            match si.Slice_ir.Program.s_site with
            | Slice_ir.Program.Site_instr
                { Slice_ir.Instr.i_kind = Slice_ir.Instr.Phi _; _ } ->
              false
            | Slice_ir.Program.Site_term
                { Slice_ir.Instr.t_kind = Slice_ir.Instr.Goto _; _ } ->
              false
            | _ -> true
          in
          let contained =
            List.for_all
              (fun s ->
                match Hashtbl.find_opt tbl s with
                | None -> true
                | Some si ->
                  let l = (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line in
                  l <= 0 || (not (countable_site si)) || List.mem l static_lines)
              dyn_stmts
          in
          ("ok", contained)))
  in
  Printf.printf "phase=dyn wall_s=%.3f status=%s contained=%b events=%d\n%!"
    dyn_wall dyn_status dyn_contained
    (Slice_interp.Dyntrace.length trace);
  let peak_heap_bytes = Gc.((quick_stat ()).top_heap_words) * 8 in
  Printf.printf "peak_heap_bytes=%d\n%!" peak_heap_bytes;
  let accuracy_ok = err_pct <= 5.0 in
  let parity =
    accuracy_ok && parity_sdg && parity_modref && parity_reference
    && dyn_contained
  in
  Printf.printf "parity=%b\n%!" parity;
  let doc =
    Obj
      [ ("schema", Str huge_schema_version);
        ("meta", meta_json ());
        ("generated_at_unix_s", Float (Unix.gettimeofday ()));
        ("stmts_requested", Int stmts);
        ("stmts_actual", Int actual);
        ("stmt_err_pct", Float err_pct);
        ("parts", Int sc.Gen_tj.sc_parts);
        ("classes", Int sc.Gen_tj.sc_classes);
        ("methods", Int sc.Gen_tj.sc_methods);
        ("phases",
         Obj
           [ ("gen_wall_s", Float gen_wall);
             ("front_wall_s", Float front_wall);
             ("arena_wall_s", Float arena_wall);
             ("pta_wall_s", Float pta_wall);
             ("sdg", List sdg_jobs_entries);
             ("modref", List modref_entries);
             ("freeze_wall_s", Float freeze_wall);
             ("batch_slice_wall_s", Float batch_wall);
             ("reference_wall_s", Float ref_wall);
             ("dyn_wall_s", Float dyn_wall) ]);
        ("memory",
         Obj
           [ ("arena_bytes", Int (Slice_ir.Arena.bytes arena));
             ("record_ir_bytes", Int (record_ir_bytes p));
             ("peak_heap_bytes", Int peak_heap_bytes) ]);
        ("batch",
         Obj
           [ ("num_slices", Int (List.length slices));
             ("lines_total", Int slice_lines_total) ]);
        ("dyn",
         Obj
           [ ("status", Str dyn_status);
             ("events", Int (Slice_interp.Dyntrace.length trace));
             ("contained", Bool dyn_contained) ]);
        ("parity_arena_views", Bool parity_arena_views);
        ("parity_sdg_jobs", Bool parity_sdg);
        ("parity_modref_jobs", Bool parity_modref);
        ("parity_reference", Bool parity_reference);
        ("accuracy_ok", Bool accuracy_ok);
        ("parity", Bool parity) ]
  in
  let text = to_string doc ^ "\n" in
  let oc = open_out out in
  output_string oc text;
  close_out oc;
  (match of_string text with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "pipeline-huge: json self-check failed: %s\n" e;
    exit 1);
  Printf.printf "wrote %s\n%!" out;
  if not parity then begin
    Printf.eprintf
      "pipeline-huge: self-check failed (accuracy_ok=%b sdg=%b modref=%b \
       reference=%b dyn_contained=%b)\n"
      accuracy_ok parity_sdg parity_modref parity_reference dyn_contained;
    exit 1
  end

let json_results ?(out = "BENCH_results.json") () =
  let open Slice_obs.Json in
  let benchmarks =
    List.map (fun (name, src) -> bench_entry name src) (suite_programs ())
  in
  let tasks = List.map bench_task (Sir_suite.tasks @ Casts_suite.tasks) in
  let parallel_batch = bench_parallel_batch () in
  let pta_ab = bench_pta_ab () in
  (* self-check: every pta_ab entry must carry a finite positive speedup
     and all-true parity bits before the artifact is written *)
  List.iter
    (fun entry ->
      let name =
        match member "name" entry with Some (Str s) -> s | _ -> "?"
      in
      (match member "speedup" entry with
      | Some (Float f) when Float.is_finite f && f > 0. -> ()
      | _ ->
        Printf.eprintf "pta_ab %s: speedup missing or not finite\n" name;
        exit 1);
      match member "parity" entry with
      | Some (Bool true) -> ()
      | _ ->
        Printf.eprintf "pta_ab %s: solver parity failed\n" name;
        exit 1)
    pta_ab;
  let serve_ab = bench_serve_ab () in
  (* self-check: the serve cache must actually serve — hot >= 10x cold
     queries/sec, byte parity with the one-shot path under both
     solvers, and zero re-analysis on every hot response *)
  (match member "speedup" serve_ab with
  | Some (Float f) when Float.is_finite f && f >= 10. -> ()
  | Some (Float f) ->
    Printf.eprintf "serve_ab: hot/cold speedup %.2f below the 10x floor\n" f;
    exit 1
  | _ ->
    Printf.eprintf "serve_ab: speedup missing or not finite\n";
    exit 1);
  (match member "parity" serve_ab with
  | Some (Bool true) -> ()
  | _ ->
    Printf.eprintf "serve_ab: serve vs one-shot parity failed\n";
    exit 1);
  (match member "hot_zero_reanalysis" serve_ab with
  | Some (Bool true) -> ()
  | _ ->
    Printf.eprintf "serve_ab: a hot response re-ran an analysis phase\n";
    exit 1);
  let serve_incr = bench_serve_incr () in
  (* self-check: incremental re-analysis must actually be incremental —
     every one-method edit stays on the Patched path re-lowering exactly
     one body and re-freezing a strict subset of the SDG segments, an
     N-method edit re-lowers exactly N, the patched handle answers like
     a fresh load, and an update beats a from-scratch load >= 5x *)
  (match member "speedup" serve_incr with
  | Some (Float f) when Float.is_finite f && f >= 5. -> ()
  | Some (Float f) ->
    Printf.eprintf "serve_incr: update/load speedup %.2f below the 5x floor\n"
      f;
    exit 1
  | _ ->
    Printf.eprintf "serve_incr: speedup missing or not finite\n";
    exit 1);
  List.iter
    (fun k ->
      match member k serve_incr with
      | Some (Bool true) -> ()
      | _ ->
        Printf.eprintf "serve_incr: %s self-check failed\n" k;
        exit 1)
    [ "path_all_patched"; "relowered_one"; "segments_partial";
      "proportional_ok"; "parity"; "resolved_all_incremental";
      "resolved_parity" ];
  (* the resolved tier still rebuilds arena + SDG, so its floor is well
     under the patched path's 5x — but an incremental re-solve that is
     not even 1.5x a cold load means the delta solver stopped saving
     the frontend + solve bulk *)
  (match member "resolved_speedup" serve_incr with
  | Some (Float f) when Float.is_finite f && f >= 1.5 -> ()
  | Some (Float f) ->
    Printf.eprintf
      "serve_incr: resolved-tier update/load speedup %.2f below the 1.5x \
       floor\n"
      f;
    exit 1
  | _ ->
    Printf.eprintf "serve_incr: resolved_speedup missing or not finite\n";
    exit 1);
  let ir_arena = bench_ir_arena () in
  (* self-check: the flat arena must actually be a memory diet — smaller
     than the record instruction payload on every suite program *)
  List.iter
    (fun entry ->
      let name =
        match member "name" entry with Some (Str s) -> s | _ -> "?"
      in
      match member "reduction" entry with
      | Some (Float f) when f > 1. -> ()
      | _ ->
        Printf.eprintf "ir_arena %s: arena not smaller than record IR\n" name;
        exit 1)
    ir_arena;
  let doc =
    Obj
      [ ("schema", Str bench_schema_version);
        ("meta", meta_json ());
        ("generated_at_unix_s", Float (Unix.gettimeofday ()));
        ("benchmarks", List benchmarks);
        ("slice_size_tables", List tasks);
        ("parallel_batch", parallel_batch);
        ("ir_arena", List ir_arena);
        ("pta_ab", List pta_ab);
        ("serve_ab", serve_ab);
        ("serve_incr", serve_incr) ]
  in
  let text = to_string doc ^ "\n" in
  let oc = open_out out in
  output_string oc text;
  close_out oc;
  (* self-check: the artifact must be non-empty and re-parseable *)
  (match of_string text with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "BENCH json self-check failed: %s\n" e;
    exit 1);
  Printf.printf "wrote %s (%d benchmarks, %d tasks)\n" out
    (List.length benchmarks) (List.length tasks)

(* ------------------------------------------------------------------ *)
(* Slice-size baseline: CI fails when any slice size drifts            *)
(* ------------------------------------------------------------------ *)

let results_path = "BENCH_results.json"
let baseline_path = "bench/baseline_slices.json"

let read_json (path : string) : Slice_obs.Json.t =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      exit 1
  in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Slice_obs.Json.of_string text with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "%s: invalid JSON: %s\n" path e;
    exit 1

(* Project a BENCH_results document onto the drift-sensitive facts: per
   benchmark and mode the slice node/line counts, per task the thin/trad
   inspection counts.  Also *validates* every per-mode parity bit (the
   CSR walk agreed with the list-adjacency reference). *)
let extract_slice_sizes (doc : Slice_obs.Json.t) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  let str what = function
    | Some (Str s) -> s
    | _ -> failwith ("expected string for " ^ what)
  in
  let get what j k =
    match member k j with
    | Some v -> v
    | None -> failwith (Printf.sprintf "missing %s in %s" k what)
  in
  let benches =
    match member "benchmarks" doc with
    | Some (List bs) ->
      List.map
        (fun b ->
          let name = str "benchmark name" (member "name" b) in
          let slices =
            match member "slices" b with Some (List ss) -> ss | _ -> []
          in
          ( name,
            Obj
              (List.map
                 (fun sl ->
                   let mode = str "mode" (member "mode" sl) in
                   (match member "parity" sl with
                   | Some (Bool true) -> ()
                   | _ ->
                     failwith
                       (Printf.sprintf
                          "benchmark %s, mode %s: CSR/list slice parity failed"
                          name mode));
                   ( mode,
                     Obj
                       [ ("nodes", get (name ^ "/" ^ mode) sl "nodes");
                         ("lines", get (name ^ "/" ^ mode) sl "lines") ] ))
                 slices) ))
        bs
    | _ -> failwith "missing benchmarks array"
  in
  let tasks =
    match member "slice_size_tables" doc with
    | Some (List ts) ->
      List.map
        (fun t ->
          let id = str "task id" (member "id" t) in
          ( id,
            Obj [ ("thin", get id t "thin"); ("trad", get id t "trad") ] ))
        ts
    | _ -> failwith "missing slice_size_tables array"
  in
  Obj
    [ ("schema", Str "thinslice.bench-baseline/v1");
      ("benchmarks", Obj benches);
      ("tasks", Obj tasks) ]

let current_slice_sizes () : Slice_obs.Json.t =
  let doc = read_json results_path in
  (match Slice_obs.Json.member "schema" doc with
  | Some (Slice_obs.Json.Str s) when s = bench_schema_version -> ()
  | _ ->
    Printf.eprintf "%s: missing or wrong schema (want %s)\n" results_path
      bench_schema_version;
    exit 1);
  try extract_slice_sizes doc
  with Failure msg ->
    Printf.eprintf "%s: %s\n" results_path msg;
    exit 1

let write_baseline () =
  let b = current_slice_sizes () in
  let oc = open_out baseline_path in
  output_string oc (Slice_obs.Json.to_string b ^ "\n");
  close_out oc;
  Printf.printf "wrote %s\n" baseline_path

(* Leaf-by-leaf comparison with readable paths, so a CI failure names the
   exact benchmark/mode/metric that moved. *)
let check_baseline () =
  let current = current_slice_sizes () in
  if not (Sys.file_exists baseline_path) then begin
    Printf.eprintf "missing %s; generate it with: bench/main.exe -- write-baseline\n"
      baseline_path;
    exit 1
  end;
  let base = read_json baseline_path in
  let rec flatten prefix (j : Slice_obs.Json.t) acc =
    match j with
    | Slice_obs.Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) -> flatten (prefix ^ "/" ^ k) v acc)
        acc kvs
    | v -> (prefix, Slice_obs.Json.to_string v) :: acc
  in
  let cur = flatten "" current [] and bas = flatten "" base [] in
  let diffs = ref [] in
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k bas with
      | Some v' when String.equal v v' -> ()
      | Some v' ->
        diffs := Printf.sprintf "%s: baseline %s, current %s" k v' v :: !diffs
      | None -> diffs := Printf.sprintf "%s: not in baseline" k :: !diffs)
    cur;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k cur) then
        diffs := Printf.sprintf "%s: missing from current results" k :: !diffs)
    bas;
  if !diffs = [] then
    print_endline "baseline check OK: slice sizes unchanged, parity holds"
  else begin
    Printf.eprintf "slice sizes drifted from %s:\n" baseline_path;
    List.iter (fun d -> Printf.eprintf "  %s\n" d) (List.rev !diffs);
    exit 1
  end

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "figure23" -> figure23 ()
  | "scalability" -> scalability ()
  | "ablation" -> ablation ()
  | "timing" -> timing ()
  | "json" -> json_results ()
  | "pipeline-huge" ->
    let stmts = ref 100_000 and out = ref "BENCH_huge.json" in
    let i = ref 2 in
    let argc = Array.length Sys.argv in
    while !i < argc do
      (match Sys.argv.(!i) with
      | "--stmts" when !i + 1 < argc ->
        incr i;
        stmts := int_of_string Sys.argv.(!i)
      | "--out" when !i + 1 < argc ->
        incr i;
        out := Sys.argv.(!i)
      | other ->
        Printf.eprintf "pipeline-huge: unknown flag %s\n" other;
        exit 1);
      incr i
    done;
    pipeline_huge ~stmts:!stmts ~out:!out ()
  | "write-baseline" -> write_baseline ()
  | "check-baseline" -> check_baseline ()
  | "all" ->
    table1 ();
    table2 ();
    table3 ();
    figure23 ();
    scalability ();
    ablation ();
    timing ();
    json_results ()
  | other ->
    Printf.eprintf "unknown experiment %s\n" other;
    exit 1
