(* The thinslice command-line tool.

     thinslice slice FILE --line N [--mode thin|trad|full|alias:K] [--no-objsens]
     thinslice batch FILE --line N --line M ... one frozen graph, many slices
     thinslice explain FILE LINE --seed N       witness path: why is LINE in the slice?
     thinslice report FILE --line N             layered slice report with BFS ranks
     thinslice expand FILE --line N             explain aliasing around a seed
     thinslice casts FILE                       list unverifiable downcasts
     thinslice stats FILE                       program/analysis statistics
     thinslice run FILE [--arg V]... [--input NAME=PATH]
     thinslice dot FILE -o sdg.dot              export the dependence graph

   Every subcommand additionally takes the telemetry flags
     --stats-json PATH   write program stats + counters/spans as JSON
     --trace PATH        write a Chrome trace_event file (chrome://tracing)
     -v / --verbose      print a telemetry report to stderr
     -q / --quiet        suppress telemetry and disable span collection *)

open Cmdliner
open Slice_core

let read_file (path : string) : (string, [ `Msg of string ]) result =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        Ok (really_input_string ic n))
  with Sys_error msg -> Error (`Msg (Printf.sprintf "cannot read %s: %s" path msg))

(* Raises rather than exits: the surrounding error handler decides the
   exit code (1 for most subcommands, 2 for explain hard errors), and
   [handle_errors]'s [Sys_error] case prints exactly this message. *)
let read_file_exn (path : string) : string =
  match read_file path with
  | Ok s -> s
  | Error (`Msg m) -> raise (Sys_error (Printf.sprintf "thinslice: %s" m))

(* Every query subcommand loads a resident handle and dispatches through
   [Engine.run_query] — the code path the serve daemon runs, so one-shot
   [--json] output and serve results are equal by construction. *)
let load_handle ?(solver = `Bitset) ~obj_sens path =
  let src = read_file_exn path in
  Engine.load ~obj_sens ~solver [ (Filename.basename path, src) ]

let load_analysis ?solver ~obj_sens path =
  (load_handle ?solver ~obj_sens path).Engine.h_analysis

(* ---- telemetry plumbing ---- *)

type telemetry = {
  stats_json : string option;
  trace : string option;
  verbose : bool;
  quiet : bool;
}

let telemetry_term =
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"PATH"
          ~doc:
            "Write program statistics and the telemetry snapshot (phase \
             timers, analysis counters) as JSON to $(docv).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Write a Chrome trace_event JSON file to $(docv) (open in \
             chrome://tracing or Perfetto to see the pipeline flamegraph).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Print a telemetry report (span tree, counters) to stderr.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ]
          ~doc:
            "Scripted use: suppress the telemetry report and, when no \
             telemetry file is requested, disable span collection entirely.")
  in
  Term.(
    const (fun stats_json trace verbose quiet ->
        { stats_json; trace; verbose; quiet })
    $ stats_json $ trace $ verbose $ quiet)

let setup_telemetry (t : telemetry) : unit =
  if t.quiet && t.stats_json = None && t.trace = None then
    Slice_obs.set_enabled false

let write_text path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let emit_telemetry (t : telemetry) (stats : Engine.stats option) : unit =
  let snap = Slice_obs.snapshot () in
  (match t.stats_json with
  | None -> ()
  | Some path ->
    let json =
      match stats with
      | Some s -> Engine.stats_to_json s
      | None ->
        Slice_obs.Json.Obj
          [ ("schema", Slice_obs.Json.Str Engine.stats_schema_version);
            ("telemetry", Slice_obs.snapshot_to_json snap) ]
    in
    write_text path (Slice_obs.Json.to_string json ^ "\n"));
  (match t.trace with
  | None -> ()
  | Some path ->
    write_text path (Slice_obs.Json.to_string (Slice_obs.chrome_trace snap) ^ "\n"));
  if t.verbose && not t.quiet then prerr_string (Slice_obs.report snap)

(* ---- common args ---- *)

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"TJ source file")

let line_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "line"; "l" ] ~docv:"N" ~doc:"Seed line number")

let objsens_arg =
  Arg.(
    value & flag
    & info [ "no-objsens" ]
        ~doc:"Disable object-sensitive cloning of container classes")

let mode_conv =
  let parse s =
    match Slicer.mode_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown mode %s" s))
  in
  let print ppf m = Format.pp_print_string ppf (Slicer.mode_to_string m) in
  Arg.conv (parse, print)

let mode_arg =
  Arg.(
    value
    & opt mode_conv Slicer.Thin
    & info [ "mode"; "m" ] ~docv:"MODE"
        ~doc:"Slicing mode: thin, trad, full, or alias:K")

let pta_conv =
  let parse = function
    | "bitset" -> Ok `Bitset
    | "reference" | "ref" -> Ok `Reference
    | s -> Error (`Msg (Printf.sprintf "unknown solver %s" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with `Bitset -> "bitset" | `Reference -> "reference")
  in
  Arg.conv (parse, print)

let pta_arg =
  Arg.(
    value
    & opt pta_conv `Bitset
    & info [ "pta" ] ~docv:"SOLVER"
        ~doc:
          "Points-to solver: bitset (the cycle-collapsing worklist solver, \
           default) or reference (the original list/tree oracle).  Results \
           are identical; reference exists for parity checks and A/B \
           benchmarks.")

(* Print a clean `Msg-style error and exit, like [read_file_exn]. *)
let cli_error fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "thinslice: %s\n" m;
      exit 1)
    fmt

(* Every user-reachable failure must surface as a clean one-line error,
   never a raw OCaml exception with a backtrace.  The fuzzer feeds this
   tool hostile inputs (malformed programs, absurd limits), so the
   catch-list is deliberately wide: [Failure]/[Invalid_argument] cover
   the stdlib's own raises, and [Dyntrace.Trace_overflow] is
   belt-and-braces — {!Slice_interp.Interp.run} converts it to a
   [Trace_limit_exceeded] failure, so seeing the raw exception here
   would itself be a bug, but the CLI still refuses to crash on it. *)
let handle_errors f =
  (* THINSLICE_DEBUG=1 disables the catch-all so developers get the raw
     exception and backtrace (OCAMLRUNPARAM=b). *)
  if Sys.getenv_opt "THINSLICE_DEBUG" <> None then f ()
  else
  try f () with
  | Slice_front.Frontend.Error e ->
    Printf.eprintf "%s\n" (Slice_front.Frontend.error_to_string e);
    exit 1
  | Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1
  | Engine.No_seed line ->
    Printf.eprintf "no statement found at line %d\n" line;
    exit 1
  | Failure msg -> cli_error "%s" msg
  | Invalid_argument msg -> cli_error "invalid argument: %s" msg
  | Slice_interp.Dyntrace.Trace_overflow n ->
    cli_error "dynamic trace event limit exceeded after %d events" n

(* [explain]'s variant: the subcommand reserves exit 1 for "the query
   succeeded and the line is not a member", so every HARD error —
   unreadable file, parse failure, no statement at a line — must exit 2
   to stay distinguishable in scripts (the interpreter's runtime-failure
   code, the "something actually went wrong" class). *)
let handle_errors_exit2 f =
  if Sys.getenv_opt "THINSLICE_DEBUG" <> None then f ()
  else
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          Printf.eprintf "%s\n" m;
          exit 2)
        fmt
    in
    try f () with
    | Slice_front.Frontend.Error e ->
      fail "%s" (Slice_front.Frontend.error_to_string e)
    | Sys_error msg -> fail "%s" msg
    | Engine.No_seed line -> fail "no statement found at line %d" line
    | Failure msg -> fail "thinslice: %s" msg
    | Invalid_argument msg -> fail "thinslice: invalid argument: %s" msg
    | Slice_interp.Dyntrace.Trace_overflow n ->
      fail "thinslice: dynamic trace event limit exceeded after %d events" n

(* ---- slice ---- *)

let print_slice_lines src lines =
  let arr = Array.of_list (String.split_on_char '\n' src) in
  List.iter
    (fun l ->
      if l >= 1 && l <= Array.length arr then
        Printf.printf "%4d | %s\n" l arr.(l - 1))
    lines

let forward_arg =
  Arg.(
    value & flag
    & info [ "forward" ]
        ~doc:"Slice forward (impact analysis) instead of backward")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the result as JSON on stdout instead of the pretty \
           rendering (thinslice.query/v1 for slice/forward/chop/expand, \
           thinslice.explain/v1 for explain/report, thinslice.stats/v1 \
           for stats) — byte-identical to the corresponding serve \
           response's result member.")

(* Dispatch one query against a resident handle and print its JSON —
   THE shared path: the serve daemon runs the same two [Engine] calls,
   so serve results and [--json] output cannot drift apart. *)
let print_query_json h q jobs =
  print_endline
    (Slice_obs.Json.to_string
       (Engine.query_result_to_json h q (Engine.run_query ~jobs h q)))

let slice_cmd =
  let run file line mode no_objsens forward solver json tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let h = load_handle ~solver ~obj_sens:(not no_objsens) file in
        let a = h.Engine.h_analysis in
        let q = Engine.Q_slice { line; mode; forward } in
        (if json then print_query_json h q 1
         else
           match Engine.run_query h q with
           | Engine.R_lines lines ->
             Printf.printf "%s %s slice from %s:%d (%d statements):\n"
               (if forward then "forward" else "backward")
               (Slicer.mode_to_string mode) file line (List.length lines);
             print_slice_lines (read_file_exn file) lines
           | _ -> assert false);
        emit_telemetry tel (Some (Engine.stats_of a)))
  in
  Cmd.v (Cmd.info "slice" ~doc:"Compute a slice from a seed line")
    Term.(
      const run $ file_arg $ line_arg $ mode_arg $ objsens_arg $ forward_arg
      $ pta_arg $ json_arg $ telemetry_term)

(* ---- batch: many seeds, one frozen graph ---- *)

let batch_cmd =
  let lines_arg =
    Arg.(
      non_empty
      & opt_all int []
      & info [ "line"; "l" ] ~docv:"N"
          ~doc:"Seed line number (repeatable; one slice per occurrence)")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard the batch across $(docv) worker domains (OCaml 5 \
             parallelism).  Results are identical to --jobs 1 for every N; \
             worker telemetry is merged back into the main report.")
  in
  let run file lines mode no_objsens forward jobs solver tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let a = load_analysis ~solver ~obj_sens:(not no_objsens) file in
        let results =
          if jobs <= 1 then Engine.slice_batch ~forward a ~lines mode
          else Engine.slice_batch_par ~forward ~jobs a ~lines mode
        in
        let src = read_file_exn file in
        List.iter
          (fun (line, slice_lines) ->
            Printf.printf "%s %s slice from %s:%d (%d statements):\n"
              (if forward then "forward" else "backward")
              (Slicer.mode_to_string mode) file line (List.length slice_lines);
            print_slice_lines src slice_lines)
          results;
        emit_telemetry tel (Some (Engine.stats_of a)))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Compute many slices from one analysis: the graph is frozen once \
          and all walks share scratch buffers; --jobs N shards the walks \
          across N domains")
    Term.(
      const run $ file_arg $ lines_arg $ mode_arg $ objsens_arg $ forward_arg
      $ jobs_arg $ pta_arg $ telemetry_term)

let chop_cmd =
  let to_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "to" ] ~docv:"N" ~doc:"Sink line number")
  in
  let run file line sink_line mode no_objsens solver json tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let h = load_handle ~solver ~obj_sens:(not no_objsens) file in
        let a = h.Engine.h_analysis in
        let q = Engine.Q_chop { line; sink_line; mode } in
        (if json then print_query_json h q 1
         else
           match Engine.run_query h q with
           | Engine.R_lines lines ->
             Printf.printf "%s chop %s:%d -> %s:%d (%d statements):\n"
               (Slicer.mode_to_string mode) file line file sink_line
               (List.length lines);
             print_slice_lines (read_file_exn file) lines
           | _ -> assert false);
        emit_telemetry tel (Some (Engine.stats_of a)))
  in
  Cmd.v
    (Cmd.info "chop" ~doc:"Statements on value paths between two lines")
    Term.(
      const run $ file_arg $ line_arg $ to_arg $ mode_arg $ objsens_arg
      $ pta_arg $ json_arg $ telemetry_term)

(* ---- expand: aliasing explanations around the seed ---- *)

let expand_cmd =
  let run file line no_objsens solver json tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let h = load_handle ~solver ~obj_sens:(not no_objsens) file in
        let a = h.Engine.h_analysis in
        let g = a.Engine.sdg in
        let q = Engine.Q_expand { line } in
        (if json then print_query_json h q 1
         else
           match Engine.run_query h q with
           | Engine.R_expand [] ->
             print_endline
               "no heap-based value flow in the thin slice to explain"
           | Engine.R_expand flows ->
             List.iter
               (fun (f : Engine.expand_flow) ->
                 Format.printf "@.heap flow:@.  read : %a@.  write: %a@."
                   (Sdg.pp_node g) f.Engine.ef_read (Sdg.pp_node g)
                   f.Engine.ef_write;
                 Format.printf
                   "  flow of the common object(s) to the read's base:@.";
                 List.iter
                   (fun n ->
                     if Sdg.node_countable g n then
                       Format.printf "    %a@." (Sdg.pp_node g) n)
                   f.Engine.ef_read_flow;
                 Format.printf
                   "  flow of the common object(s) to the write's base:@.";
                 List.iter
                   (fun n ->
                     if Sdg.node_countable g n then
                       Format.printf "    %a@." (Sdg.pp_node g) n)
                   f.Engine.ef_write_flow)
               flows
           | _ -> assert false);
        emit_telemetry tel (Some (Engine.stats_of a)))
  in
  Cmd.v
    (Cmd.info "expand" ~doc:"Explain heap aliasing behind a thin slice")
    Term.(
      const run $ file_arg $ line_arg $ objsens_arg $ pta_arg $ json_arg
      $ telemetry_term)

(* ---- explain / report: provenance queries ---- *)

let explain_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run the provenance walks in worker domains when $(docv) > 1.  \
           Output is byte-identical for every N (the CI parity step pins \
           this); the worker round-trip exercises the provenance \
           scratch's domain safety.")

let source_lines (src : string) : string array =
  Array.of_list (String.split_on_char '\n' src)

let source_at (arr : string array) (l : int) : string =
  if l >= 1 && l <= Array.length arr then arr.(l - 1) else ""

let explain_cmd =
  let target_arg =
    Arg.(
      required
      & pos 1 (some int) None
      & info [] ~docv:"LINE" ~doc:"Line of the statement to explain")
  in
  let seed_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "seed"; "s" ] ~docv:"N"
          ~doc:"Seed line of the slice the statement should be explained in")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"PATH"
          ~doc:
            "Also write the full dependence graph to $(docv) with the \
             witness path highlighted (red/bold overlay on the usual DOT \
             export).")
  in
  let run file line seed mode no_objsens jobs solver json dot tel =
    (* exit 2 on HARD errors: exit 1 is reserved for the non-member
       answer below, so scripts can tell "not in the slice" from "the
       query itself failed" *)
    handle_errors_exit2 (fun () ->
        setup_telemetry tel;
        let h = load_handle ~solver ~obj_sens:(not no_objsens) file in
        let a = h.Engine.h_analysis in
        let q = Engine.Q_explain { seed_line = seed; line; mode } in
        match Engine.run_query ~jobs h q with
        | Engine.R_witness None ->
          emit_telemetry tel (Some (Engine.stats_of a));
          Printf.eprintf "line %d is not in the %s slice from %s:%d\n" line
            (Slicer.mode_to_string mode)
            file seed;
          exit 1
        | Engine.R_witness (Some steps) ->
          (match dot with
          | None -> ()
          | Some path ->
            let overlay =
              List.map
                (fun (s : Slicer.witness_step) ->
                  (s.Slicer.wit_node, s.Slicer.wit_kind))
                steps
            in
            write_text path (Sdg.to_dot ~witness:overlay a.Engine.sdg));
          if json then
            print_endline
              (Slice_obs.Json.to_string
                 (Engine.query_result_to_json h q
                    (Engine.R_witness (Some steps))))
          else begin
            let g = a.Engine.sdg in
            let budgeted = Slicer.initial_budget mode > 0 in
            Printf.printf
              "%s witness in %s: seed line %d -> line %d (%d hops)\n"
              (Slicer.mode_to_string mode)
              file seed line
              (List.length steps - 1);
            List.iter
              (fun (s : Slicer.witness_step) ->
                let loc = Sdg.node_loc g s.Slicer.wit_node in
                let tag =
                  match s.Slicer.wit_kind with
                  | None -> "seed"
                  | Some k -> "<-[" ^ Sdg.edge_kind_to_string k ^ "]"
                in
                let budget =
                  if budgeted then
                    Printf.sprintf "  (budget %d)" s.Slicer.wit_budget
                  else ""
                in
                Printf.printf "  %-20s %s:%-4d %s%s\n" tag
                  loc.Slice_ir.Loc.file loc.Slice_ir.Loc.line
                  (Format.asprintf "%a" (Sdg.pp_node g) s.Slicer.wit_node)
                  budget)
              steps;
            match dot with
            | Some path -> Printf.printf "wrote %s\n" path
            | None -> ()
          end;
          emit_telemetry tel (Some (Engine.stats_of a))
        | _ -> assert false)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Why is a statement in the slice?  Prints the shortest recorded \
          dependence path from the seed to the statement, with per-hop \
          edge kinds (and aliasing budgets in alias:K mode)")
    Term.(
      const run $ file_arg $ target_arg $ seed_arg $ mode_arg $ objsens_arg
      $ explain_jobs_arg $ pta_arg $ json_arg $ dot_arg $ telemetry_term)

let report_cmd =
  let run file line mode no_objsens jobs solver json tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let h = load_handle ~solver ~obj_sens:(not no_objsens) file in
        let a = h.Engine.h_analysis in
        let q = Engine.Q_report { line; mode } in
        let r =
          match Engine.run_query ~jobs h q with
          | Engine.R_report r -> r
          | _ -> assert false
        in
        if json then
          print_endline
            (Slice_obs.Json.to_string
               (Engine.query_result_to_json h q (Engine.R_report r)))
        else begin
          let np, na, nc = r.Engine.sr_layer_sizes in
          Printf.printf
            "%s slice report from %s:%d — %d lines (producers %d, alias \
             explainers %d, control explainers %d)\n"
            (Slicer.mode_to_string mode)
            file line
            (List.length r.Engine.sr_lines)
            np na nc;
          let src = source_lines (read_file_exn file) in
          List.iter
            (fun (rl : Engine.report_line) ->
              let rfile, rline = rl.Engine.rl_loc in
              let explains =
                match rl.Engine.rl_explains with
                | [] -> ""
                | ex ->
                  "   explains "
                  ^ String.concat ", "
                      (List.map (fun (f, l) -> Printf.sprintf "%s:%d" f l) ex)
              in
              Printf.printf "  rank %2d  %-18s %4d | %s%s\n" rl.Engine.rl_rank
                (Engine.layer_to_string rl.Engine.rl_layer)
                rline
                (source_at src rline)
                explains;
              ignore rfile)
            r.Engine.sr_lines
        end;
        emit_telemetry tel (Some (Engine.stats_of a)))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Layered slice report: members partitioned into producers / alias \
          explainers / control explainers, ranked by BFS distance from the \
          seed (the paper's inspection metric)")
    Term.(
      const run $ file_arg $ line_arg $ mode_arg $ objsens_arg
      $ explain_jobs_arg $ pta_arg $ json_arg $ telemetry_term)

(* ---- casts ---- *)

let casts_cmd =
  let run file no_objsens tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let a = load_analysis ~obj_sens:(not no_objsens) file in
        let casts = Engine.tough_casts a in
        Printf.printf "%d tough cast(s):\n" (List.length casts);
        let tbl = Sdg.stmt_table a.Engine.sdg in
        List.iter
          (fun (_, i) ->
            print_endline
              (Slice_ir.Pretty.stmt_to_string a.Engine.program tbl
                 i.Slice_ir.Instr.i_id))
          casts;
        emit_telemetry tel (Some (Engine.stats_of a)))
  in
  Cmd.v
    (Cmd.info "casts" ~doc:"List downcasts unverifiable by pointer analysis")
    Term.(const run $ file_arg $ objsens_arg $ telemetry_term)

(* ---- stats ---- *)

let stats_cmd =
  let run file no_objsens solver json tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let h = load_handle ~solver ~obj_sens:(not no_objsens) file in
        let a = h.Engine.h_analysis in
        if json then print_query_json h Engine.Q_stats 1
        else begin
          let s = h.Engine.h_stats in
          Printf.printf
            "classes            %d\n\
             methods            %d\n\
             IR statements      %d\n\
             call graph nodes   %d\n\
             SDG statements     %d\n\
             SDG nodes          %d\n\
             abstract objects   %d\n"
            s.Engine.classes s.Engine.methods s.Engine.ir_statements
            s.Engine.call_graph_nodes s.Engine.sdg_statements s.Engine.sdg_nodes
            s.Engine.abstract_objects
        end;
        emit_telemetry tel (Some (Engine.stats_of a)))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print program and analysis statistics")
    Term.(const run $ file_arg $ objsens_arg $ pta_arg $ json_arg $ telemetry_term)

(* ---- run ---- *)

let run_cmd =
  let args_arg =
    Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"V" ~doc:"Program argument")
  in
  let inputs_arg =
    Arg.(
      value & opt_all string []
      & info [ "input" ] ~docv:"NAME=PATH"
          ~doc:"Bind stream NAME to the lines of the file at PATH")
  in
  let trace_events_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-events" ] ~docv:"N"
          ~doc:
            "Record a dynamic dependence trace bounded to $(docv) events; \
             exceeding the bound aborts the run with a clean \
             trace-limit-exceeded failure (exit 2), like the step limit.")
  in
  let run file argv inputs trace_events tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let streams =
          List.map
            (fun spec ->
              match String.index_opt spec '=' with
              | Some i ->
                let name = String.sub spec 0 i in
                let path = String.sub spec (i + 1) (String.length spec - i - 1) in
                let lines =
                  String.split_on_char '\n' (read_file_exn path)
                  |> List.filter (fun l -> l <> "")
                in
                (name, lines)
              | None -> cli_error "--input expects NAME=PATH (got %S)" spec)
            inputs
        in
        let p =
          Slice_front.Frontend.load_exn ~file:(Filename.basename file)
            (read_file_exn file)
        in
        let trace =
          match trace_events with
          | None -> None
          | Some n when n <= 0 -> cli_error "--trace-events expects N > 0"
          | Some n -> Some (Slice_interp.Dyntrace.create ~max_events:n ())
        in
        let config =
          { Slice_interp.Interp.default_config with args = argv; streams; trace }
        in
        let o = Slice_interp.Interp.run config p in
        List.iter print_endline o.Slice_interp.Interp.output;
        emit_telemetry tel None;
        match o.Slice_interp.Interp.result with
        | Ok () -> ()
        | Error f ->
          Format.printf "%a@." Slice_interp.Interp.pp_failure f;
          exit 2)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret a TJ program")
    Term.(
      const run $ file_arg $ args_arg $ inputs_arg $ trace_events_arg
      $ telemetry_term)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Run seed (fully deterministic)")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"K" ~doc:"Number of programs to generate")
  in
  let max_size_arg =
    Arg.(
      value & opt int 40
      & info [ "max-size" ] ~docv:"S"
          ~doc:"Upper bound on generated steps per program")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Write a self-contained JSON repro for each (shrunk) violation \
             into $(docv); defaults to test/corpus when run from the \
             repository root, otherwise disabled.")
  in
  let fault_conv =
    let parse s =
      match Slice_fuzz.Oracle.fault_of_string s with
      | Some f -> Ok f
      | None -> Error (`Msg (Printf.sprintf "unknown fault %s" s))
    in
    let print ppf f =
      Format.pp_print_string ppf (Slice_fuzz.Oracle.fault_to_string f)
    in
    Arg.conv (parse, print)
  in
  let fault_arg =
    Arg.(
      value
      & opt fault_conv Slice_fuzz.Oracle.No_fault
      & info [ "fault" ] ~docv:"FAULT"
          ~doc:
            "Deliberately break one oracle link to prove the harness can \
             catch and shrink a violation: none (default) or \
             dyn-base-as-val (base-pointer dependences treated as value \
             dependences in the dynamic thin slice).")
  in
  let edits_arg =
    Arg.(
      value & flag
      & info [ "edits" ]
          ~doc:
            "After the base battery, apply a chain of random edits to \
             each generated program and assert that incremental \
             re-analysis (Engine.update) agrees with a from-scratch \
             load after every edit: slice line sets in every mode, \
             canonical points-to and call-graph dumps, layered reports \
             in the budget-free modes, and headline stats.  Unfiltered \
             runs of at least 25 programs additionally assert that \
             every update tier \
             (noop/patched/resolved-incremental/resolved-fresh/rebuilt) \
             was exercised at least once.")
  in
  let edit_kinds_conv =
    let parse s =
      let parts =
        List.filter (fun p -> p <> "") (String.split_on_char ',' s)
      in
      if parts = [] then Error (`Msg "--edit-kinds expects a non-empty list")
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | p :: rest -> (
            match Slice_fuzz.Gen_tj.edit_kind_of_string p with
            | Some k -> go (k :: acc) rest
            | None ->
              Error
                (`Msg
                   (Printf.sprintf "unknown edit kind %s (expected one of %s)"
                      p
                      (String.concat ", "
                         (List.map Slice_fuzz.Gen_tj.edit_kind_to_string
                            Slice_fuzz.Gen_tj.all_edit_kinds)))))
        in
        go [] parts
    in
    let print ppf ks =
      Format.pp_print_string ppf
        (String.concat ","
           (List.map Slice_fuzz.Gen_tj.edit_kind_to_string ks))
    in
    Arg.conv (parse, print)
  in
  let edit_kinds_arg =
    Arg.(
      value
      & opt (some edit_kinds_conv) None
      & info [ "edit-kinds" ] ~docv:"KINDS"
          ~doc:
            "Restrict --edits to a comma-separated subset of edit kinds \
             (tweak, replace, delete, insert, swap-body, add-aux, \
             remove-aux, add-override, remove-override) — a scalpel for \
             reproducing one tier's failures.  Implies no tier-coverage \
             assertion.  Requires --edits.")
  in
  let run seed count max_size corpus fault edits edit_kinds tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        if count <= 0 then cli_error "--count expects K > 0";
        if max_size <= 0 then cli_error "--max-size expects S > 0";
        if edit_kinds <> None && not edits then
          cli_error "--edit-kinds requires --edits";
        let corpus_dir =
          match corpus with
          | Some d -> Some d
          | None ->
            (* default only when the conventional location exists: the
               tool must not scatter test/corpus directories around
               arbitrary working directories *)
            if Sys.file_exists "test" && Sys.is_directory "test" then
              Some (Filename.concat "test" "corpus")
            else None
        in
        let report =
          Slice_fuzz.Fuzz.run ~fault ?corpus_dir ~edits ?edit_kinds ~seed
            ~count ~max_size ()
        in
        List.iter
          (fun f ->
            Printf.printf
              "fuzz: violation index=%d oracle=%s (shrunk to %d statements)%s\n\
              \      %s\n"
              f.Slice_fuzz.Fuzz.fr_index f.Slice_fuzz.Fuzz.fr_oracle
              f.Slice_fuzz.Fuzz.fr_statements
              (match f.Slice_fuzz.Fuzz.fr_repro_path with
              | Some p -> Printf.sprintf " -> %s" p
              | None -> "")
              f.Slice_fuzz.Fuzz.fr_detail)
          report.Slice_fuzz.Fuzz.failures;
        print_endline (Slice_fuzz.Fuzz.summary_line report);
        emit_telemetry tel None;
        if report.Slice_fuzz.Fuzz.failures <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random TJ programs and run the \
          oracle battery (dynamic-slice soundness, static mode chain, \
          CSR/reference and bitset/reference parity, parallel batch parity, \
          object-sensitivity containment, and with --edits the \
          incremental-vs-fresh equivalence chain) on each; violations are \
          shrunk and written as replayable JSON repros")
    Term.(
      const run $ seed_arg $ count_arg $ max_size_arg $ corpus_arg $ fault_arg
      $ edits_arg $ edit_kinds_arg $ telemetry_term)

(* ---- dot ---- *)

let dot_cmd =
  let out_arg =
    Arg.(
      value & opt string "sdg.dot"
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output path")
  in
  let run file out no_objsens tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        let a = load_analysis ~obj_sens:(not no_objsens) file in
        write_text out (Sdg.to_dot a.Engine.sdg);
        Printf.printf "wrote %s\n" out;
        emit_telemetry tel (Some (Engine.stats_of a)))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the dependence graph in DOT format")
    Term.(const run $ file_arg $ out_arg $ objsens_arg $ telemetry_term)

(* ---- serve: the long-lived slice daemon ---- *)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket at $(docv) (one connection at \
             a time) instead of stdin/stdout.  The socket file is created \
             on bind and removed on shutdown.")
  in
  let max_programs_arg =
    Arg.(
      value & opt int 8
      & info [ "max-programs" ] ~docv:"N"
          ~doc:
            "Keep at most $(docv) analyzed programs resident (LRU keyed \
             by source digest x sensitivity x solver).  Evicting releases \
             the walk-scratch memory down to the largest surviving \
             program.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the provenance queries (explain/report), \
             as in the one-shot subcommands.  Results are identical for \
             every N.")
  in
  let run socket max_programs jobs tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        if max_programs < 1 then cli_error "--max-programs expects N >= 1";
        if jobs < 1 then cli_error "--jobs expects N >= 1";
        let st =
          Slice_serve.Serve.create_state
            { Slice_serve.Serve.max_programs; jobs }
        in
        (match socket with
        | None -> ignore (Slice_serve.Serve.serve_channels st stdin stdout)
        | Some path -> Slice_serve.Serve.serve_unix_socket st ~path);
        emit_telemetry tel None)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived slice daemon: line-delimited thinslice.serve/v1 JSON \
          requests (load/slice/forward/chop/expand/explain/report/stats/\
          shutdown) over stdin/stdout or a Unix socket, answering from an \
          LRU of resident analyses; every response carries cache and \
          per-phase wall telemetry, and result payloads byte-equal the \
          one-shot --json output")
    Term.(const run $ socket_arg $ max_programs_arg $ jobs_arg $ telemetry_term)

(* ---- watch: re-slice incrementally as the file changes ---- *)

let watch_cmd =
  let interval_arg =
    Arg.(
      value & opt int 200
      & info [ "interval-ms" ] ~docv:"MS"
          ~doc:"Polling interval in milliseconds")
  in
  let max_updates_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-updates" ] ~docv:"K"
          ~doc:
            "Exit (code 0) after applying $(docv) content changes; \
             default is to watch until killed.")
  in
  let run file line mode no_objsens solver interval max_updates tel =
    handle_errors (fun () ->
        setup_telemetry tel;
        if interval <= 0 then cli_error "--interval-ms expects MS > 0";
        let base = Filename.basename file in
        let emit kvs =
          print_endline (Slice_obs.Json.to_string (Slice_obs.Json.Obj kvs));
          flush stdout
        in
        let open Slice_obs.Json in
        let slice_event h extra t0 =
          (* The slice itself can become unanswerable mid-edit (the
             watched line may no longer hold a statement): that is an
             event, not a reason to stop watching. *)
          match
            Engine.run_query h (Engine.Q_slice { line; mode; forward = false })
          with
          | Engine.R_lines lines ->
            emit
              (extra
              @ [ ("wall_s", Float (Unix.gettimeofday () -. t0));
                  ("lines", List (Stdlib.List.map (fun l -> Int l) lines)) ])
          | _ -> ()
          | exception Engine.No_seed l ->
            emit
              (extra
              @ [ ("wall_s", Float (Unix.gettimeofday () -. t0));
                  ("error",
                   Str (Printf.sprintf "no statement found at line %d" l)) ])
        in
        let t0 = Unix.gettimeofday () in
        let src0 = read_file_exn file in
        let h = ref (Engine.load ~obj_sens:(not no_objsens) ~solver [ (base, src0) ]) in
        slice_event !h
          [ ("event", Str "load"); ("file", Str file); ("line", Int line);
            ("mode", Str (Slicer.mode_to_string mode)) ]
          t0;
        let prev_src = ref src0 in
        let prev_mtime = ref (Unix.stat file).Unix.st_mtime in
        let updates = ref 0 in
        let continue () =
          match max_updates with None -> true | Some k -> !updates < k
        in
        while continue () do
          Unix.sleepf (float_of_int interval /. 1000.);
          (* mtime is only the cheap trigger; the content digest decides
             (saves that rewrite identical bytes must not re-analyze) *)
          match (try Some (Unix.stat file).Unix.st_mtime with Unix.Unix_error _ -> None) with
          | None -> () (* transient: editors unlink/rename on save *)
          | Some mt when mt = !prev_mtime -> ()
          | Some mt ->
            prev_mtime := mt;
            let src = read_file_exn file in
            if not (String.equal src !prev_src) then begin
              let t0 = Unix.gettimeofday () in
              match Engine.update !h [ (base, src) ] with
              | exception Slice_front.Frontend.Error e ->
                (* a broken intermediate save: report, keep the old
                   handle, and wait for the next save *)
                emit
                  [ ("event", Str "error");
                    ("message", Str (Slice_front.Frontend.error_to_string e)) ]
              | h', report ->
                incr updates;
                prev_src := src;
                h := h';
                slice_event h'
                  [ ("event", Str "update");
                    ("path",
                     Str (Engine.update_path_to_string report.Engine.up_path));
                    ("relowered", Int report.Engine.up_relowered);
                    ("segments_refrozen", Int report.Engine.up_segments_refrozen);
                    ("segments_total", Int report.Engine.up_segments_total) ]
                  t0
            end
        done;
        emit_telemetry tel None)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Watch a TJ file and re-slice incrementally on every change: \
          the file is polled by mtime, re-analyzed through the \
          delta-classifying Engine.update (body-only edits patch the \
          resident SDG instead of rebuilding), and one JSON event line \
          is printed per load/update with the incremental path taken \
          (noop/patched/resolved-incremental/resolved-fresh/rebuilt), \
          its delta statistics, and the fresh slice lines")
    Term.(
      const run $ file_arg $ line_arg $ mode_arg $ objsens_arg $ pta_arg
      $ interval_arg $ max_updates_arg $ telemetry_term)

let () =
  let doc = "thin slicing for TJ programs (PLDI 2007 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "thinslice" ~doc)
          [ slice_cmd; batch_cmd; chop_cmd; expand_cmd; explain_cmd;
            report_cmd; casts_cmd; stats_cmd; run_cmd; fuzz_cmd; dot_cmd;
            serve_cmd; watch_cmd ]))
