(** Type-directed lowering of TJ ASTs into the three-address IR.

    This pass is the typechecker: it elaborates each expression to a
    typed IR variable and rejects ill-typed programs with {!Type_error}.
    It runs after {!Declare} has populated the class table.

    Notable behaviours: short-circuit [&&]/[||] become branches merged by
    SSA phis; constructors chain to [super] implicitly when possible;
    static field initializers are collected into a synthetic
    [$Top.$clinit] called at the start of [main]; all-paths-return is
    checked syntactically (with [while (true)] handling). *)

open Slice_ir

exception Type_error of string * Loc.t

val run : Program.t -> Ast.compilation_unit -> unit
