(* First frontend pass: register classes, fields and method signatures in
   the program's class table, so that lowering can resolve names in any
   order.  Also validates the class hierarchy (no cycles, known
   superclasses, no duplicate members). *)

open Slice_ir

exception Semantic_error of string * Loc.t

let err loc fmt = Format.kasprintf (fun s -> raise (Semantic_error (s, loc))) fmt

(* Classes treated as containers for object-sensitive points-to cloning
   (paper section 6.1: "fully object-sensitive cloning for objects of key
   collections classes"). *)
let default_container_classes =
  [ "Vector"; "ArrayList"; "HashMap"; "Hashtable"; "Stack"; "LinkedList"; "Queue" ]

let rec resolve_sty (p : Program.t) (loc : Loc.t) (t : Ast.sty) : Types.ty =
  match t with
  | Ast.Sint -> Types.Tint
  | Ast.Sbool -> Types.Tbool
  | Ast.Svoid -> Types.Tvoid
  | Ast.Sclass c ->
    if not (Program.class_exists p c) then err loc "unknown class %s" c;
    Types.Tclass c
  | Ast.Sarray t -> Types.Tarray (resolve_sty p loc t)

let method_shell (p : Program.t) ~(cls : string) (md : Ast.method_decl) :
    Instr.meth =
  let param_tys =
    List.map (fun pr -> resolve_sty p pr.Ast.p_loc pr.Ast.p_ty) md.Ast.md_params
  in
  let param_names = List.map (fun pr -> pr.Ast.p_name) md.Ast.md_params in
  (match
     List.find_opt
       (fun n -> List.length (List.filter (String.equal n) param_names) > 1)
       param_names
   with
  | Some n -> err md.Ast.md_loc "duplicate parameter %s" n
  | None -> ());
  let params, tys =
    if md.Ast.md_static then (param_names, param_tys)
    else ("this" :: param_names, Types.Tclass cls :: param_tys)
  in
  let vars =
    Array.of_list
      (List.mapi
         (fun i (name, ty) ->
           { Instr.vi_name = name; vi_kind = Instr.Vparam i; vi_ty = ty })
         (List.combine params tys))
  in
  { Instr.m_qname = { Instr.mq_class = cls; mq_name = md.Ast.md_name };
    m_static = md.Ast.md_static;
    m_params = List.mapi (fun i _ -> i) params;
    m_param_tys = tys;
    m_ret_ty = resolve_sty p md.Ast.md_loc md.Ast.md_ret;
    m_vars = vars;
    m_body = Instr.Abstract (* installed by lowering *);
    m_loc = md.Ast.md_loc }

(* Register all classes (pass A), then fields and method shells (pass B,
   once every class name is known). *)
let run ?(container_classes = default_container_classes) (p : Program.t)
    (cu : Ast.compilation_unit) : unit =
  let classes =
    List.filter_map (function Ast.Dclass c -> Some c | Ast.Dfunc _ -> None) cu.Ast.cu_decls
  in
  let funcs =
    List.filter_map (function Ast.Dfunc f -> Some f | Ast.Dclass _ -> None) cu.Ast.cu_decls
  in
  (* Pass A: class names and supers. *)
  List.iter
    (fun (cd : Ast.class_decl) ->
      if Program.class_exists p cd.Ast.cd_name then
        err cd.Ast.cd_loc "duplicate class %s" cd.Ast.cd_name;
      Program.add_class p
        { Program.c_name = cd.Ast.cd_name;
          c_super = Some (Option.value cd.Ast.cd_super ~default:Types.object_class);
          c_fields = [];
          c_static_fields = [];
          c_methods = [];
          c_is_container = List.mem cd.Ast.cd_name container_classes;
          c_builtin = false;
          c_loc = cd.Ast.cd_loc })
    classes;
  (* Validate superclasses exist and the hierarchy is acyclic. *)
  List.iter
    (fun (cd : Ast.class_decl) ->
      (match cd.Ast.cd_super with
      | Some s when not (Program.class_exists p s) ->
        err cd.Ast.cd_loc "class %s extends unknown class %s" cd.Ast.cd_name s
      | Some _ | None -> ());
      let seen = Hashtbl.create 8 in
      let rec walk c =
        if Hashtbl.mem seen c then
          err cd.Ast.cd_loc "cyclic inheritance involving %s" c;
        Hashtbl.replace seen c ();
        match (Program.find_class_exn p c).Program.c_super with
        | Some s -> walk s
        | None -> ()
      in
      walk cd.Ast.cd_name)
    classes;
  (* Pass B: fields and method shells. *)
  List.iter
    (fun (cd : Ast.class_decl) ->
      let ci = Program.find_class_exn p cd.Ast.cd_name in
      List.iter
        (fun (fd : Ast.field_decl) ->
          let ty = resolve_sty p fd.Ast.fd_loc fd.Ast.fd_ty in
          let dup =
            List.mem_assoc fd.Ast.fd_name ci.Program.c_fields
            || List.mem_assoc fd.Ast.fd_name ci.Program.c_static_fields
          in
          if dup then err fd.Ast.fd_loc "duplicate field %s" fd.Ast.fd_name;
          if fd.Ast.fd_static then
            ci.Program.c_static_fields <-
              ci.Program.c_static_fields @ [ (fd.Ast.fd_name, ty) ]
          else ci.Program.c_fields <- ci.Program.c_fields @ [ (fd.Ast.fd_name, ty) ])
        cd.Ast.cd_fields;
      List.iter
        (fun (md : Ast.method_decl) ->
          let mq =
            { Instr.mq_class = cd.Ast.cd_name; mq_name = md.Ast.md_name }
          in
          if Program.find_method p mq <> None then
            err md.Ast.md_loc "duplicate method %s in class %s (TJ has no overloading)"
              md.Ast.md_name cd.Ast.cd_name;
          Program.add_method p (method_shell p ~cls:cd.Ast.cd_name md))
        cd.Ast.cd_methods;
      (* Overriding must preserve the signature. *)
      List.iter
        (fun (md : Ast.method_decl) ->
          if not md.Ast.md_is_ctor then begin
            match ci.Program.c_super with
            | None -> ()
            | Some s -> (
              match Program.lookup_method p s md.Ast.md_name with
              | None -> ()
              | Some inherited ->
                let own =
                  Program.find_method_exn p
                    { Instr.mq_class = cd.Ast.cd_name; mq_name = md.Ast.md_name }
                in
                let drop_this m =
                  if m.Instr.m_static then m.Instr.m_param_tys
                  else List.tl m.Instr.m_param_tys
                in
                let own_tys = drop_this own and inh_tys = drop_this inherited in
                let tys_match =
                  List.length own_tys = List.length inh_tys
                  && List.for_all2 Types.equal_ty own_tys inh_tys
                  && Types.equal_ty own.Instr.m_ret_ty inherited.Instr.m_ret_ty
                  && own.Instr.m_static = inherited.Instr.m_static
                in
                if not tys_match then
                  err md.Ast.md_loc
                    "method %s.%s overrides %s.%s with a different signature"
                    cd.Ast.cd_name md.Ast.md_name
                    inherited.Instr.m_qname.Instr.mq_class md.Ast.md_name)
          end)
        cd.Ast.cd_methods;
      (* Classes without a declared constructor get an implicit one; the
         shell is Abstract here, and lowering fills in the body (which must
         chain to the superclass constructor). *)
      if
        not
          (List.exists (fun (md : Ast.method_decl) -> md.Ast.md_is_ctor) cd.Ast.cd_methods)
      then begin
        let this_ty = Types.Tclass cd.Ast.cd_name in
        Program.add_method p
          { Instr.m_qname =
              { Instr.mq_class = cd.Ast.cd_name; mq_name = Types.constructor_name };
            m_static = false;
            m_params = [ 0 ];
            m_param_tys = [ this_ty ];
            m_ret_ty = Types.Tvoid;
            m_vars =
              [| { Instr.vi_name = "this"; vi_kind = Instr.Vparam 0; vi_ty = this_ty } |];
            m_body = Instr.Abstract;
            m_loc = cd.Ast.cd_loc }
      end)
    classes;
  (* Free functions become statics of $Top. *)
  List.iter
    (fun (md : Ast.method_decl) ->
      let mq = { Instr.mq_class = Types.toplevel_class; mq_name = md.Ast.md_name } in
      if Program.find_method p mq <> None then
        err md.Ast.md_loc "duplicate function %s" md.Ast.md_name;
      Program.add_method p (method_shell p ~cls:Types.toplevel_class md))
    funcs;
  (* Static field initializers run in a synthetic $Top.$clinit, which
     lowering builds and calls at the start of main. *)
  let has_static_inits =
    List.exists
      (fun (cd : Ast.class_decl) ->
        List.exists (fun fd -> fd.Ast.fd_init <> None) cd.Ast.cd_fields)
      classes
  in
  let clinit_mq = { Instr.mq_class = Types.toplevel_class; mq_name = "$clinit" } in
  if has_static_inits && Program.find_method p clinit_mq = None then
    Program.add_method p
      { Instr.m_qname = clinit_mq;
        m_static = true;
        m_params = [];
        m_param_tys = [];
        m_ret_ty = Types.Tvoid;
        m_vars = [||];
        m_body = Instr.Abstract;
        m_loc = Loc.none }
