(* Tokens of the TJ language. *)

open Slice_ir

type t =
  | INT of int
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_class | KW_extends | KW_new | KW_if | KW_else | KW_while | KW_for
  | KW_return | KW_throw | KW_break | KW_continue | KW_this | KW_super
  | KW_static | KW_int | KW_boolean | KW_void | KW_true | KW_false
  | KW_null | KW_instanceof
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT
  | ASSIGN                       (* = *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS
  | LT | LE | GT | GE | EQ | NE
  | AND | OR | NOT
  | EOF

type located = { tok : t; loc : Loc.t }

let keyword_of_string = function
  | "class" -> Some KW_class
  | "extends" -> Some KW_extends
  | "new" -> Some KW_new
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "while" -> Some KW_while
  | "for" -> Some KW_for
  | "return" -> Some KW_return
  | "throw" -> Some KW_throw
  | "break" -> Some KW_break
  | "continue" -> Some KW_continue
  | "this" -> Some KW_this
  | "super" -> Some KW_super
  | "static" -> Some KW_static
  | "int" -> Some KW_int
  | "boolean" -> Some KW_boolean
  | "void" -> Some KW_void
  | "true" -> Some KW_true
  | "false" -> Some KW_false
  | "null" -> Some KW_null
  | "instanceof" -> Some KW_instanceof
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_class -> "class" | KW_extends -> "extends" | KW_new -> "new"
  | KW_if -> "if" | KW_else -> "else" | KW_while -> "while" | KW_for -> "for"
  | KW_return -> "return" | KW_throw -> "throw" | KW_break -> "break"
  | KW_continue -> "continue" | KW_this -> "this" | KW_super -> "super"
  | KW_static -> "static" | KW_int -> "int" | KW_boolean -> "boolean"
  | KW_void -> "void" | KW_true -> "true" | KW_false -> "false"
  | KW_null -> "null" | KW_instanceof -> "instanceof"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "."
  | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | PLUSPLUS -> "++"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQ -> "==" | NE -> "!="
  | AND -> "&&" | OR -> "||" | NOT -> "!"
  | EOF -> "<eof>"
