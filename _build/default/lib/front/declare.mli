(** First frontend pass: register classes, fields and method signatures in
    the program's class table so lowering can resolve names in any order.
    Validates the hierarchy (known superclasses, no cycles, no duplicate
    members, signature-preserving overrides). *)

open Slice_ir

exception Semantic_error of string * Loc.t

(** Classes treated as containers for object-sensitive points-to cloning
    (paper section 6.1): Vector, ArrayList, HashMap, Hashtable, Stack,
    LinkedList, Queue. *)
val default_container_classes : string list

(** Resolve a surface type against the class table. *)
val resolve_sty : Program.t -> Loc.t -> Ast.sty -> Types.ty

val run : ?container_classes:string list -> Program.t -> Ast.compilation_unit -> unit
