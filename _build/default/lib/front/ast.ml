(* Abstract syntax of TJ, the Java-like surface language.  Every node
   carries the source location of its head token; locations become the
   [Loc.t] of lowered IR statements, which is how slices are reported back
   at source level. *)

open Slice_ir

(* Surface types; resolved against the class table during typechecking. *)
type sty =
  | Sint
  | Sbool
  | Svoid
  | Sclass of string
  | Sarray of sty

let rec pp_sty ppf = function
  | Sint -> Format.pp_print_string ppf "int"
  | Sbool -> Format.pp_print_string ppf "boolean"
  | Svoid -> Format.pp_print_string ppf "void"
  | Sclass c -> Format.pp_print_string ppf c
  | Sarray t -> Format.fprintf ppf "%a[]" pp_sty t

type expr = { e_kind : expr_kind; e_loc : Loc.t }

and expr_kind =
  | Eint of int
  | Ebool of bool
  | Estr of string
  | Enull
  | Ethis
  | Eident of string                       (* local / param / field / static *)
  | Efield of expr * string                (* e.f *)
  | Eindex of expr * expr                  (* e[i] *)
  | Ecall of callee * expr list
  | Enew of string * expr list             (* new C(args) *)
  | Enew_array of sty * expr               (* new T[n] *)
  | Ebinop of Types.binop * expr * expr
  | Eunop of Types.unop * expr
  | Ecast of sty * expr
  | Einstanceof of expr * sty
  | Epostincr of lvalue                    (* x++ : yields old value *)

and callee =
  | Cbare of string                        (* f(args): this-method or free fn *)
  | Cmethod of expr * string               (* e.m(args) *)
  | Cstatic of string * string             (* C.m(args) *)
  | Csuper                                 (* super(args) in a constructor *)

and lvalue =
  | Lident of string * Loc.t
  | Lfield of expr * string * Loc.t
  | Lindex of expr * expr * Loc.t

type stmt = { s_kind : stmt_kind; s_loc : Loc.t }

and stmt_kind =
  | Sdecl of sty * string * expr option
  | Sassign of lvalue * expr
  | Sexpr of expr                          (* call or postincrement *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sreturn of expr option
  | Sthrow of expr
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type param = { p_name : string; p_ty : sty; p_loc : Loc.t }

type method_decl = {
  md_name : string;
  md_static : bool;
  md_params : param list;
  md_ret : sty;
  md_body : stmt list;
  md_is_ctor : bool;
  md_loc : Loc.t;
}

type field_decl = {
  fd_name : string;
  fd_ty : sty;
  fd_static : bool;
  fd_init : expr option;                   (* static fields may have inits *)
  fd_loc : Loc.t;
}

type class_decl = {
  cd_name : string;
  cd_super : string option;
  cd_fields : field_decl list;
  cd_methods : method_decl list;
  cd_loc : Loc.t;
}

type decl =
  | Dclass of class_decl
  | Dfunc of method_decl                   (* free function -> $Top static *)

type compilation_unit = { cu_file : string; cu_decls : decl list }
