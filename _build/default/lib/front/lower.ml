(* Type-directed lowering of TJ ASTs into the three-address IR.

   This pass is the typechecker: it elaborates each expression to a typed
   IR variable and rejects ill-typed programs with [Type_error].  Lowering
   happens after [Declare] has populated the class table, so names resolve
   in any declaration order. *)

open Slice_ir

exception Type_error of string * Loc.t

let err loc fmt = Format.kasprintf (fun s -> raise (Type_error (s, loc))) fmt

(* Lexically scoped environment mapping source names to IR variables. *)
module Env = struct
  type t = { mutable scopes : (string, Instr.var * Types.ty) Hashtbl.t list }

  let create () = { scopes = [ Hashtbl.create 8 ] }
  let push (e : t) = e.scopes <- Hashtbl.create 8 :: e.scopes
  let pop (e : t) = e.scopes <- List.tl e.scopes

  let lookup (e : t) (name : string) : (Instr.var * Types.ty) option =
    let rec go = function
      | [] -> None
      | s :: rest -> (
        match Hashtbl.find_opt s name with Some v -> Some v | None -> go rest)
    in
    go e.scopes

  let declare (e : t) (name : string) (v : Instr.var) (ty : Types.ty) loc : unit =
    match e.scopes with
    | [] -> assert false
    | s :: _ ->
      if Hashtbl.mem s name then err loc "variable %s already declared in this scope" name
      else Hashtbl.replace s name (v, ty)
end

type ctx = {
  p : Program.t;
  b : Builder.t;
  cls : Types.class_name;            (* enclosing class ($Top for functions) *)
  meth : Instr.meth;                 (* shell being filled *)
  env : Env.t;
  (* (continue target, break target) for each enclosing loop *)
  mutable loops : (Instr.label * Instr.label) list;
}

let in_static (ctx : ctx) = ctx.meth.Instr.m_static

let this_var (ctx : ctx) (loc : Loc.t) : Instr.var =
  if in_static ctx then err loc "'this' in a static context" else 0

let default_const (ty : Types.ty) : Types.const =
  match ty with
  | Types.Tint -> Types.Cint 0
  | Types.Tbool -> Types.Cbool false
  | Types.Tclass _ | Types.Tarray _ | Types.Tnull -> Types.Cnull
  | Types.Tvoid -> Types.Cnull

let check_assignable (ctx : ctx) loc ~(from : Types.ty) ~(into : Types.ty) : unit =
  if not (Program.is_subtype ctx.p ~sub:from ~sup:into) then
    err loc "type mismatch: cannot use %s where %s is expected"
      (Types.ty_to_string from) (Types.ty_to_string into)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_expr (ctx : ctx) (e : Ast.expr) : Instr.var * Types.ty =
  let loc = e.Ast.e_loc in
  match e.Ast.e_kind with
  | Ast.Eint n ->
    let v = Builder.fresh_temp ctx.b Types.Tint in
    ignore (Builder.emit ctx.b ~loc (Instr.Const (v, Types.Cint n)));
    (v, Types.Tint)
  | Ast.Ebool bv ->
    let v = Builder.fresh_temp ctx.b Types.Tbool in
    ignore (Builder.emit ctx.b ~loc (Instr.Const (v, Types.Cbool bv)));
    (v, Types.Tbool)
  | Ast.Estr s ->
    let ty = Types.Tclass Types.string_class in
    let v = Builder.fresh_temp ctx.b ty in
    ignore (Builder.emit ctx.b ~loc (Instr.Const (v, Types.Cstr s)));
    (v, ty)
  | Ast.Enull ->
    let v = Builder.fresh_temp ctx.b Types.Tnull in
    ignore (Builder.emit ctx.b ~loc (Instr.Const (v, Types.Cnull)));
    (v, Types.Tnull)
  | Ast.Ethis ->
    let v = this_var ctx loc in
    (v, Types.Tclass ctx.cls)
  | Ast.Eident name -> lower_ident ctx loc name
  | Ast.Efield (base, f) -> lower_field_read ctx loc base f
  | Ast.Eindex (base, idx) ->
    let a, aty = lower_expr ctx base in
    let i, ity = lower_expr ctx idx in
    check_assignable ctx loc ~from:ity ~into:Types.Tint;
    let elem =
      match aty with
      | Types.Tarray t -> t
      | t -> err loc "indexing a non-array of type %s" (Types.ty_to_string t)
    in
    let v = Builder.fresh_temp ctx.b elem in
    ignore (Builder.emit ctx.b ~loc (Instr.Array_load (v, a, i)));
    (v, elem)
  | Ast.Ecall (callee, args) -> (
    match lower_call ctx loc callee args with
    | Some (v, ty) -> (v, ty)
    | None -> err loc "void method call used as an expression")
  | Ast.Enew (cname, args) -> lower_new ctx loc cname args
  | Ast.Enew_array (elem_sty, len) ->
    let elem = Declare.resolve_sty ctx.p loc elem_sty in
    let n, nty = lower_expr ctx len in
    check_assignable ctx loc ~from:nty ~into:Types.Tint;
    let ty = Types.Tarray elem in
    let v = Builder.fresh_temp ctx.b ty in
    ignore (Builder.emit ctx.b ~loc (Instr.New_array (v, elem, n)));
    (v, ty)
  | Ast.Ebinop (op, l, r) -> lower_binop ctx loc op l r
  | Ast.Eunop (op, inner) ->
    let v, ty = lower_expr ctx inner in
    let expect_ty = match op with Types.Neg -> Types.Tint | Types.Not -> Types.Tbool in
    check_assignable ctx loc ~from:ty ~into:expect_ty;
    let res = Builder.fresh_temp ctx.b expect_ty in
    ignore (Builder.emit ctx.b ~loc (Instr.Unop (res, op, v)));
    (res, expect_ty)
  | Ast.Ecast (sty, inner) ->
    let target = Declare.resolve_sty ctx.p loc sty in
    let v, from = lower_expr ctx inner in
    if not (Types.is_reference target && Types.is_reference from) then
      err loc "casts apply only to reference types";
    if not (Program.cast_compatible ctx.p ~from ~target) then
      err loc "impossible cast from %s to %s" (Types.ty_to_string from)
        (Types.ty_to_string target);
    let res = Builder.fresh_temp ctx.b target in
    ignore (Builder.emit ctx.b ~loc (Instr.Cast (res, target, v)));
    (res, target)
  | Ast.Einstanceof (inner, sty) ->
    let target = Declare.resolve_sty ctx.p loc sty in
    let v, from = lower_expr ctx inner in
    if not (Types.is_reference target && Types.is_reference from) then
      err loc "instanceof applies only to reference types";
    let res = Builder.fresh_temp ctx.b Types.Tbool in
    ignore (Builder.emit ctx.b ~loc (Instr.Instance_of (res, target, v)));
    (res, Types.Tbool)
  | Ast.Epostincr lv ->
    let read_v, ty = lower_lvalue_read ctx lv in
    check_assignable ctx loc ~from:ty ~into:Types.Tint;
    (* copy the old value first: for a local lvalue, [read_v] IS the
       variable about to be overwritten *)
    let old_v = Builder.fresh_temp ctx.b Types.Tint in
    ignore (Builder.emit ctx.b ~loc (Instr.Move (old_v, read_v)));
    let one = Builder.fresh_temp ctx.b Types.Tint in
    ignore (Builder.emit ctx.b ~loc (Instr.Const (one, Types.Cint 1)));
    let next = Builder.fresh_temp ctx.b Types.Tint in
    ignore (Builder.emit ctx.b ~loc (Instr.Binop (next, Types.Add, old_v, one)));
    lower_lvalue_write ctx loc lv next Types.Tint;
    (old_v, Types.Tint)

and lower_ident (ctx : ctx) loc (name : string) : Instr.var * Types.ty =
  match Env.lookup ctx.env name with
  | Some (v, ty) -> (v, ty)
  | None -> (
    (* instance field of this? *)
    match
      if in_static ctx then None else Program.lookup_field ctx.p ctx.cls name
    with
    | Some fty ->
      let v = Builder.fresh_temp ctx.b fty in
      ignore (Builder.emit ctx.b ~loc (Instr.Load (v, this_var ctx loc, name)));
      (v, fty)
    | None -> (
      match Program.lookup_static_field ctx.p ctx.cls name with
      | Some (owner, fty) ->
        let v = Builder.fresh_temp ctx.b fty in
        ignore (Builder.emit ctx.b ~loc (Instr.Static_load (v, owner, name)));
        (v, fty)
      | None -> err loc "unknown variable %s" name))

and lower_field_read (ctx : ctx) loc (base : Ast.expr) (f : string) :
    Instr.var * Types.ty =
  (* Class.field : static field access (class names are uppercase idents
     that do not shadow a local). *)
  match base.Ast.e_kind with
  | Ast.Eident cname
    when Env.lookup ctx.env cname = None && Program.class_exists ctx.p cname -> (
    match Program.lookup_static_field ctx.p cname f with
    | Some (owner, fty) ->
      let v = Builder.fresh_temp ctx.b fty in
      ignore (Builder.emit ctx.b ~loc (Instr.Static_load (v, owner, f)));
      (v, fty)
    | None -> err loc "class %s has no static field %s" cname f)
  | _ -> (
    let bv, bty = lower_expr ctx base in
    match bty with
    | Types.Tarray _ when String.equal f "length" ->
      let v = Builder.fresh_temp ctx.b Types.Tint in
      ignore (Builder.emit ctx.b ~loc (Instr.Array_length (v, bv)));
      (v, Types.Tint)
    | Types.Tclass c -> (
      match Program.lookup_field ctx.p c f with
      | Some fty ->
        let v = Builder.fresh_temp ctx.b fty in
        ignore (Builder.emit ctx.b ~loc (Instr.Load (v, bv, f)));
        (v, fty)
      | None -> err loc "class %s has no field %s" c f)
    | t -> err loc "field access on non-object of type %s" (Types.ty_to_string t))

and lower_binop (ctx : ctx) loc op (l : Ast.expr) (r : Ast.expr) :
    Instr.var * Types.ty =
  match op with
  | Types.And | Types.Or ->
    (* Short-circuit, as in Java: the right operand is evaluated only when
       the left one does not decide the result.  The result variable gets
       two definitions, which SSA conversion merges with a phi. *)
    let lv, lty = lower_expr ctx l in
    check_assignable ctx loc ~from:lty ~into:Types.Tbool;
    let res = Builder.fresh_local ctx.b "$sc" Types.Tbool in
    let rhs_l = Builder.new_block ctx.b in
    let short_l = Builder.new_block ctx.b in
    let join_l = Builder.new_block ctx.b in
    (match op with
    | Types.And ->
      ignore (Builder.branch ctx.b ~loc lv ~then_:rhs_l ~else_:short_l)
    | _ -> ignore (Builder.branch ctx.b ~loc lv ~then_:short_l ~else_:rhs_l));
    Builder.switch_to ctx.b rhs_l;
    let rv, rty = lower_expr ctx r in
    check_assignable ctx loc ~from:rty ~into:Types.Tbool;
    ignore (Builder.emit ctx.b ~loc (Instr.Move (res, rv)));
    Builder.goto ctx.b join_l;
    Builder.switch_to ctx.b short_l;
    let short_value = Types.Cbool (op = Types.Or) in
    let c = Builder.fresh_temp ctx.b Types.Tbool in
    ignore (Builder.emit ctx.b ~loc (Instr.Const (c, short_value)));
    ignore (Builder.emit ctx.b ~loc (Instr.Move (res, c)));
    Builder.goto ctx.b join_l;
    Builder.switch_to ctx.b join_l;
    (res, Types.Tbool)
  | _ -> lower_binop_eager ctx loc op l r

and lower_binop_eager (ctx : ctx) loc op (l : Ast.expr) (r : Ast.expr) :
    Instr.var * Types.ty =
  let lv, lty = lower_expr ctx l in
  let rv, rty = lower_expr ctx r in
  let is_string t = Types.equal_ty t (Types.Tclass Types.string_class) in
  let emit res_ty op a bb =
    let res = Builder.fresh_temp ctx.b res_ty in
    ignore (Builder.emit ctx.b ~loc (Instr.Binop (res, op, a, bb)));
    (res, res_ty)
  in
  match op with
  | Types.Add when is_string lty || is_string rty ->
    let as_string v ty =
      if is_string ty then v
      else if Types.equal_ty ty Types.Tint then begin
        let s = Builder.fresh_temp ctx.b (Types.Tclass Types.string_class) in
        ignore
          (Builder.emit ctx.b ~loc
             (Instr.Call
                { lhs = Some s;
                  kind =
                    Instr.Static
                      { Instr.mq_class = Types.toplevel_class; mq_name = "itoa" };
                  args = [ v ] }));
        s
      end
      else err loc "cannot concatenate %s with a string" (Types.ty_to_string ty)
    in
    emit (Types.Tclass Types.string_class) Types.Concat (as_string lv lty)
      (as_string rv rty)
  | Types.Add | Types.Sub | Types.Mul | Types.Div | Types.Mod ->
    check_assignable ctx loc ~from:lty ~into:Types.Tint;
    check_assignable ctx loc ~from:rty ~into:Types.Tint;
    emit Types.Tint op lv rv
  | Types.Lt | Types.Le | Types.Gt | Types.Ge ->
    check_assignable ctx loc ~from:lty ~into:Types.Tint;
    check_assignable ctx loc ~from:rty ~into:Types.Tint;
    emit Types.Tbool op lv rv
  | Types.Eq | Types.Ne ->
    let compatible =
      (Types.is_reference lty && Types.is_reference rty)
      || (Types.equal_ty lty Types.Tint && Types.equal_ty rty Types.Tint)
      || (Types.equal_ty lty Types.Tbool && Types.equal_ty rty Types.Tbool)
    in
    if not compatible then
      err loc "cannot compare %s with %s" (Types.ty_to_string lty)
        (Types.ty_to_string rty);
    emit Types.Tbool op lv rv
  | Types.And | Types.Or ->
    (* unreachable: dispatched to the short-circuit lowering above *)
    assert false
  | Types.Concat -> assert false (* never produced by the parser *)

and lower_new (ctx : ctx) loc (cname : string) (args : Ast.expr list) :
    Instr.var * Types.ty =
  if not (Program.class_exists ctx.p cname) then err loc "unknown class %s" cname;
  let ty = Types.Tclass cname in
  let obj = Builder.fresh_temp ctx.b ty in
  ignore (Builder.emit ctx.b ~loc (Instr.New (obj, cname)));
  let ctor_mq = { Instr.mq_class = cname; mq_name = Types.constructor_name } in
  (match Program.find_method ctx.p ctor_mq with
  | None -> err loc "class %s has no constructor" cname
  | Some ctor ->
    let arg_vars = check_and_lower_args ctx loc ctor (obj :: []) args in
    ignore
      (Builder.emit ctx.b ~loc
         (Instr.Call { lhs = None; kind = Instr.Special ctor_mq; args = arg_vars })));
  (obj, ty)

(* Typecheck arguments against a callee's declared parameters.  [receiver]
   holds the already-lowered receiver/this vars to prepend. *)
and check_and_lower_args (ctx : ctx) loc (callee : Instr.meth)
    (receiver : Instr.var list) (args : Ast.expr list) : Instr.var list =
  let arg_pairs = List.map (lower_expr ctx) args in
  let expected = List.length callee.Instr.m_param_tys - List.length receiver in
  if List.length args <> expected then
    err loc "%s expects %d argument(s), got %d"
      (Instr.method_qname_to_string callee.Instr.m_qname)
      expected (List.length args);
  let declared = ref callee.Instr.m_param_tys in
  List.iter (fun _ -> declared := List.tl !declared) receiver;
  List.iter2
    (fun (_, actual_ty) formal_ty ->
      check_assignable ctx loc ~from:actual_ty ~into:formal_ty)
    arg_pairs !declared;
  receiver @ List.map fst arg_pairs

and lower_call (ctx : ctx) loc (callee : Ast.callee) (args : Ast.expr list) :
    (Instr.var * Types.ty) option =
  let finish (m : Instr.meth) (kind : Instr.call_kind) (arg_vars : Instr.var list) =
    let ret = m.Instr.m_ret_ty in
    if Types.equal_ty ret Types.Tvoid then begin
      ignore (Builder.emit ctx.b ~loc (Instr.Call { lhs = None; kind; args = arg_vars }));
      None
    end
    else begin
      let v = Builder.fresh_temp ctx.b ret in
      ignore
        (Builder.emit ctx.b ~loc (Instr.Call { lhs = Some v; kind; args = arg_vars }));
      Some (v, ret)
    end
  in
  (* print is polymorphic: accept a single argument of any type. *)
  let lower_print () =
    match args with
    | [ a ] ->
      let v, _ = lower_expr ctx a in
      ignore
        (Builder.emit ctx.b ~loc
           (Instr.Call
              { lhs = None;
                kind =
                  Instr.Static
                    { Instr.mq_class = Types.toplevel_class; mq_name = "print" };
                args = [ v ] }));
      None
    | _ -> err loc "print expects exactly one argument"
  in
  match callee with
  | Ast.Cbare "print" -> lower_print ()
  | Ast.Cbare name -> (
    (* method of the enclosing class, else free function *)
    let own = Program.lookup_method ctx.p ctx.cls name in
    match own with
    | Some m when not m.Instr.m_static ->
      if in_static ctx then
        err loc "cannot call instance method %s from a static context" name;
      let recv = this_var ctx loc in
      let arg_vars = check_and_lower_args ctx loc m [ recv ] args in
      finish m (Instr.Virtual name) arg_vars
    | Some m ->
      let arg_vars = check_and_lower_args ctx loc m [] args in
      finish m (Instr.Static m.Instr.m_qname) arg_vars
    | None -> (
      match
        Program.find_method ctx.p
          { Instr.mq_class = Types.toplevel_class; mq_name = name }
      with
      | Some m ->
        let arg_vars = check_and_lower_args ctx loc m [] args in
        finish m (Instr.Static m.Instr.m_qname) arg_vars
      | None -> err loc "unknown function %s" name))
  | Ast.Cmethod (base, mname) -> (
    let bv, bty = lower_expr ctx base in
    match bty with
    | Types.Tclass c -> (
      match Program.lookup_method ctx.p c mname with
      | None -> err loc "class %s has no method %s" c mname
      | Some m when m.Instr.m_static ->
        err loc "method %s.%s is static; call it as %s.%s(...)" c mname c mname
      | Some m ->
        let arg_vars = check_and_lower_args ctx loc m [ bv ] args in
        finish m (Instr.Virtual mname) arg_vars)
    | t -> err loc "method call on non-object of type %s" (Types.ty_to_string t))
  | Ast.Cstatic (cname, mname) -> (
    if not (Program.class_exists ctx.p cname) then err loc "unknown class %s" cname;
    match Program.lookup_method ctx.p cname mname with
    | None -> err loc "class %s has no method %s" cname mname
    | Some m when not m.Instr.m_static ->
      err loc "method %s.%s is not static" cname mname
    | Some m ->
      let arg_vars = check_and_lower_args ctx loc m [] args in
      finish m (Instr.Static m.Instr.m_qname) arg_vars)
  | Ast.Csuper -> (
    if not (String.equal ctx.meth.Instr.m_qname.Instr.mq_name Types.constructor_name)
    then err loc "super(...) is only allowed inside a constructor";
    let super =
      match (Program.find_class_exn ctx.p ctx.cls).Program.c_super with
      | Some s -> s
      | None -> err loc "class %s has no superclass" ctx.cls
    in
    let ctor_mq = { Instr.mq_class = super; mq_name = Types.constructor_name } in
    match Program.find_method ctx.p ctor_mq with
    | None -> err loc "class %s has no constructor" super
    | Some ctor ->
      let recv = this_var ctx loc in
      let arg_vars = check_and_lower_args ctx loc ctor [ recv ] args in
      ignore
        (Builder.emit ctx.b ~loc
           (Instr.Call { lhs = None; kind = Instr.Special ctor_mq; args = arg_vars }));
      None)

(* ------------------------------------------------------------------ *)
(* L-values                                                            *)
(* ------------------------------------------------------------------ *)

and lower_lvalue_read (ctx : ctx) (lv : Ast.lvalue) : Instr.var * Types.ty =
  match lv with
  | Ast.Lident (name, iloc) -> lower_ident ctx iloc name
  | Ast.Lfield (base, f, floc) -> lower_field_read ctx floc base f
  | Ast.Lindex (base, idx, iloc) ->
    lower_expr ctx { Ast.e_kind = Ast.Eindex (base, idx); e_loc = iloc }

and lower_lvalue_write (ctx : ctx) loc (lv : Ast.lvalue) (rhs : Instr.var)
    (rhs_ty : Types.ty) : unit =
  match lv with
  | Ast.Lident (name, iloc) -> (
    match Env.lookup ctx.env name with
    | Some (v, ty) ->
      check_assignable ctx iloc ~from:rhs_ty ~into:ty;
      ignore (Builder.emit ctx.b ~loc (Instr.Move (v, rhs)))
    | None -> (
      match
        if in_static ctx then None else Program.lookup_field ctx.p ctx.cls name
      with
      | Some fty ->
        check_assignable ctx iloc ~from:rhs_ty ~into:fty;
        ignore (Builder.emit ctx.b ~loc (Instr.Store (this_var ctx iloc, name, rhs)))
      | None -> (
        match Program.lookup_static_field ctx.p ctx.cls name with
        | Some (owner, fty) ->
          check_assignable ctx iloc ~from:rhs_ty ~into:fty;
          ignore (Builder.emit ctx.b ~loc (Instr.Static_store (owner, name, rhs)))
        | None -> err iloc "unknown variable %s" name)))
  | Ast.Lfield (base, f, floc) -> (
    match base.Ast.e_kind with
    | Ast.Eident cname
      when Env.lookup ctx.env cname = None && Program.class_exists ctx.p cname -> (
      match Program.lookup_static_field ctx.p cname f with
      | Some (owner, fty) ->
        check_assignable ctx floc ~from:rhs_ty ~into:fty;
        ignore (Builder.emit ctx.b ~loc (Instr.Static_store (owner, f, rhs)))
      | None -> err floc "class %s has no static field %s" cname f)
    | _ -> (
      let bv, bty = lower_expr ctx base in
      match bty with
      | Types.Tclass c -> (
        match Program.lookup_field ctx.p c f with
        | Some fty ->
          check_assignable ctx floc ~from:rhs_ty ~into:fty;
          ignore (Builder.emit ctx.b ~loc (Instr.Store (bv, f, rhs)))
        | None -> err floc "class %s has no field %s" c f)
      | t -> err floc "field write on non-object of type %s" (Types.ty_to_string t)))
  | Ast.Lindex (base, idx, iloc) -> (
    let a, aty = lower_expr ctx base in
    let i, ity = lower_expr ctx idx in
    check_assignable ctx iloc ~from:ity ~into:Types.Tint;
    match aty with
    | Types.Tarray elem ->
      check_assignable ctx iloc ~from:rhs_ty ~into:elem;
      ignore (Builder.emit ctx.b ~loc (Instr.Array_store (a, i, rhs)))
    | t -> err iloc "indexed write on non-array of type %s" (Types.ty_to_string t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt (ctx : ctx) (s : Ast.stmt) : unit =
  let loc = s.Ast.s_loc in
  match s.Ast.s_kind with
  | Ast.Sdecl (sty, name, init) ->
    let ty = Declare.resolve_sty ctx.p loc sty in
    if Types.equal_ty ty Types.Tvoid then err loc "cannot declare a void variable";
    let v = Builder.fresh_local ctx.b name ty in
    (match init with
    | Some e ->
      let rv, rty = lower_expr ctx e in
      check_assignable ctx loc ~from:rty ~into:ty;
      ignore (Builder.emit ctx.b ~loc (Instr.Move (v, rv)))
    | None ->
      ignore (Builder.emit ctx.b ~loc (Instr.Const (v, default_const ty))));
    Env.declare ctx.env name v ty loc
  | Ast.Sassign (lv, e) ->
    let rv, rty = lower_expr ctx e in
    lower_lvalue_write ctx loc lv rv rty
  | Ast.Sexpr e -> (
    match e.Ast.e_kind with
    | Ast.Ecall (callee, args) -> ignore (lower_call ctx loc callee args)
    | Ast.Epostincr _ | Ast.Enew _ -> ignore (lower_expr ctx e)
    | _ -> err loc "expression statement must be a call, new, or ++")
  | Ast.Sif (cond, then_s, else_s) ->
    let cv, cty = lower_expr ctx cond in
    check_assignable ctx loc ~from:cty ~into:Types.Tbool;
    let then_l = Builder.new_block ctx.b in
    let else_l = Builder.new_block ctx.b in
    let join_l = Builder.new_block ctx.b in
    ignore (Builder.branch ctx.b ~loc cv ~then_:then_l ~else_:else_l);
    Builder.switch_to ctx.b then_l;
    lower_block ctx then_s;
    Builder.goto ctx.b join_l;
    Builder.switch_to ctx.b else_l;
    lower_block ctx else_s;
    Builder.goto ctx.b join_l;
    Builder.switch_to ctx.b join_l
  | Ast.Swhile (cond, body) ->
    let header_l = Builder.new_block ctx.b in
    Builder.goto ctx.b header_l;
    Builder.switch_to ctx.b header_l;
    let cv, cty = lower_expr ctx cond in
    check_assignable ctx loc ~from:cty ~into:Types.Tbool;
    let body_l = Builder.new_block ctx.b in
    let exit_l = Builder.new_block ctx.b in
    ignore (Builder.branch ctx.b ~loc cv ~then_:body_l ~else_:exit_l);
    Builder.switch_to ctx.b body_l;
    ctx.loops <- (header_l, exit_l) :: ctx.loops;
    lower_block ctx body;
    ctx.loops <- List.tl ctx.loops;
    Builder.goto ctx.b header_l;
    Builder.switch_to ctx.b exit_l
  | Ast.Sreturn e -> (
    match (e, ctx.meth.Instr.m_ret_ty) with
    | None, rt when Types.equal_ty rt Types.Tvoid ->
      ignore (Builder.terminate ctx.b ~loc (Instr.Return None))
    | None, rt -> err loc "missing return value of type %s" (Types.ty_to_string rt)
    | Some _, rt when Types.equal_ty rt Types.Tvoid ->
      err loc "void method cannot return a value"
    | Some e, rt ->
      let v, ty = lower_expr ctx e in
      check_assignable ctx loc ~from:ty ~into:rt;
      ignore (Builder.terminate ctx.b ~loc (Instr.Return (Some v))))
  | Ast.Sthrow e ->
    let v, ty = lower_expr ctx e in
    (match ty with
    | Types.Tclass _ -> ()
    | t -> err loc "cannot throw a value of type %s" (Types.ty_to_string t));
    ignore (Builder.terminate ctx.b ~loc (Instr.Throw v))
  | Ast.Sbreak -> (
    match ctx.loops with
    | (_, exit_l) :: _ -> Builder.goto ctx.b ~loc exit_l
    | [] -> err loc "break outside of a loop")
  | Ast.Scontinue -> (
    match ctx.loops with
    | (header_l, _) :: _ -> Builder.goto ctx.b ~loc header_l
    | [] -> err loc "continue outside of a loop")
  | Ast.Sblock body -> lower_block ctx body

and lower_block (ctx : ctx) (body : Ast.stmt list) : unit =
  Env.push ctx.env;
  List.iter (lower_stmt ctx) body;
  Env.pop ctx.env

(* ------------------------------------------------------------------ *)
(* Methods and programs                                                *)
(* ------------------------------------------------------------------ *)

(* Conservative all-paths-return check on the AST.  A [while (true)] loop
   that cannot break out counts as returning (control only leaves it
   through return/throw). *)
let rec stmts_return (body : Ast.stmt list) : bool =
  List.exists stmt_returns body

and stmt_returns (s : Ast.stmt) : bool =
  match s.Ast.s_kind with
  | Ast.Sreturn _ | Ast.Sthrow _ -> true
  | Ast.Sif (_, t, e) -> stmts_return t && stmts_return e
  | Ast.Sblock b -> stmts_return b
  | Ast.Swhile (cond, body) -> (
    match cond.Ast.e_kind with
    | Ast.Ebool true -> not (has_toplevel_break body)
    | _ -> false)
  | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sexpr _ | Ast.Sbreak | Ast.Scontinue ->
    false

(* Is there a [break] that would exit the CURRENT loop?  Nested loops
   swallow their own breaks. *)
and has_toplevel_break (body : Ast.stmt list) : bool =
  List.exists
    (fun s ->
      match s.Ast.s_kind with
      | Ast.Sbreak -> true
      | Ast.Sif (_, t, e) -> has_toplevel_break t || has_toplevel_break e
      | Ast.Sblock b -> has_toplevel_break b
      | Ast.Swhile _ | Ast.Sreturn _ | Ast.Sthrow _ | Ast.Sdecl _
      | Ast.Sassign _ | Ast.Sexpr _ | Ast.Scontinue -> false)
    body

(* An explicit constructor that does not start with super(...) gets an
   implicit zero-argument super call (as in Java), provided the superclass
   constructor takes no arguments. *)
let needs_implicit_super (cls : Types.class_name) (md : Ast.method_decl) : bool =
  md.Ast.md_is_ctor
  && (not (String.equal cls Types.object_class))
  &&
  match md.Ast.md_body with
  | { Ast.s_kind = Ast.Sexpr { Ast.e_kind = Ast.Ecall (Ast.Csuper, _); _ }; _ } :: _ ->
    false
  | _ -> true

let emit_implicit_super (ctx : ctx) (loc : Loc.t) : unit =
  let super =
    match (Program.find_class_exn ctx.p ctx.cls).Program.c_super with
    | Some s -> s
    | None -> Types.object_class
  in
  let ctor_mq = { Instr.mq_class = super; mq_name = Types.constructor_name } in
  match Program.find_method ctx.p ctor_mq with
  | None -> err loc "class %s has no constructor" super
  | Some ctor ->
    if List.length ctor.Instr.m_param_tys <> 1 then
      err loc
        "constructor of %s must explicitly call super(...): superclass %s \
         constructor takes arguments"
        ctx.cls super;
    ignore
      (Builder.emit ctx.b ~loc
         (Instr.Call { lhs = None; kind = Instr.Special ctor_mq; args = [ 0 ] }))

let lower_method (p : Program.t) ~(cls : Types.class_name) (md : Ast.method_decl) :
    unit =
  let mq = { Instr.mq_class = cls; mq_name = md.Ast.md_name } in
  let shell = Program.find_method_exn p mq in
  let params =
    List.map
      (fun v ->
        let vi = shell.Instr.m_vars.(v) in
        (vi.Instr.vi_name, vi.Instr.vi_ty))
      shell.Instr.m_params
  in
  let b =
    Builder.start p ~qname:mq ~static:md.Ast.md_static ~params
      ~ret:shell.Instr.m_ret_ty ~loc:md.Ast.md_loc
  in
  (* Re-point the builder at the existing shell so that references held by
     the class table stay valid: copy body into the shell at the end. *)
  let ctx =
    { p; b; cls; meth = Builder.meth b; env = Env.create (); loops = [] }
  in
  List.iter
    (fun v ->
      let vi = (Builder.meth b).Instr.m_vars.(v) in
      if not (String.equal vi.Instr.vi_name "this") then
        Env.declare ctx.env vi.Instr.vi_name v vi.Instr.vi_ty md.Ast.md_loc)
    (Builder.meth b).Instr.m_params;
  if needs_implicit_super cls md then emit_implicit_super ctx md.Ast.md_loc;
  lower_block ctx md.Ast.md_body;
  if
    (not (Types.equal_ty shell.Instr.m_ret_ty Types.Tvoid))
    && not (stmts_return md.Ast.md_body)
  then err md.Ast.md_loc "method %s.%s does not return on all paths" cls md.Ast.md_name;
  let built = Builder.finish b in
  shell.Instr.m_body <- built.Instr.m_body;
  shell.Instr.m_vars <- built.Instr.m_vars

(* Default constructors and $clinit are synthesized directly. *)
let synthesize_default_ctor (p : Program.t) (cls : Types.class_name) : unit =
  let mq = { Instr.mq_class = cls; mq_name = Types.constructor_name } in
  let shell = Program.find_method_exn p mq in
  let b =
    Builder.start p ~qname:mq ~static:false
      ~params:[ ("this", Types.Tclass cls) ]
      ~ret:Types.Tvoid ~loc:shell.Instr.m_loc
  in
  let ctx = { p; b; cls; meth = Builder.meth b; env = Env.create (); loops = [] } in
  emit_implicit_super ctx shell.Instr.m_loc;
  let built = Builder.finish b in
  shell.Instr.m_body <- built.Instr.m_body;
  shell.Instr.m_vars <- built.Instr.m_vars

let synthesize_clinit (p : Program.t) (cu : Ast.compilation_unit) : unit =
  let mq = { Instr.mq_class = Types.toplevel_class; mq_name = "$clinit" } in
  match Program.find_method p mq with
  | None -> ()
  | Some shell ->
    let b =
      Builder.start p ~qname:mq ~static:true ~params:[] ~ret:Types.Tvoid
        ~loc:Loc.none
    in
    List.iter
      (function
        | Ast.Dclass cd ->
          List.iter
            (fun (fd : Ast.field_decl) ->
              match fd.Ast.fd_init with
              | None -> ()
              | Some e ->
                let ctx =
                  { p;
                    b;
                    cls = cd.Ast.cd_name;
                    meth = Builder.meth b;
                    env = Env.create ();
                    loops = [] }
                in
                let v, ty = lower_expr ctx e in
                check_assignable ctx fd.Ast.fd_loc ~from:ty
                  ~into:(Declare.resolve_sty p fd.Ast.fd_loc fd.Ast.fd_ty);
                ignore
                  (Builder.emit b ~loc:fd.Ast.fd_loc
                     (Instr.Static_store (cd.Ast.cd_name, fd.Ast.fd_name, v))))
            cd.Ast.cd_fields
        | Ast.Dfunc _ -> ())
      cu.Ast.cu_decls;
    let built = Builder.finish b in
    shell.Instr.m_body <- built.Instr.m_body;
    shell.Instr.m_vars <- built.Instr.m_vars

let run (p : Program.t) (cu : Ast.compilation_unit) : unit =
  synthesize_clinit p cu;
  List.iter
    (function
      | Ast.Dclass cd ->
        List.iter (lower_method p ~cls:cd.Ast.cd_name) cd.Ast.cd_methods;
        (* implicit default constructor *)
        let ctor_mq =
          { Instr.mq_class = cd.Ast.cd_name; mq_name = Types.constructor_name }
        in
        let ctor = Program.find_method_exn p ctor_mq in
        if ctor.Instr.m_body = Instr.Abstract then
          synthesize_default_ctor p cd.Ast.cd_name
      | Ast.Dfunc md -> lower_method p ~cls:Types.toplevel_class md)
    cu.Ast.cu_decls;
  (* The program entry is main; prepend the $clinit call if it exists. *)
  let main_mq = { Instr.mq_class = Types.toplevel_class; mq_name = "main" } in
  (match Program.find_method p main_mq with
  | Some main when Instr.has_body main -> (
    Program.set_entry p main_mq;
    let clinit_mq = { Instr.mq_class = Types.toplevel_class; mq_name = "$clinit" } in
    match Program.find_method p clinit_mq with
    | Some clinit when Instr.has_body clinit ->
      let blocks = Instr.blocks_exn main in
      let entry = blocks.(Instr.entry_label main) in
      let call =
        { Instr.i_id = Program.fresh_stmt_id p;
          i_kind =
            Instr.Call { lhs = None; kind = Instr.Static clinit_mq; args = [] };
          i_loc = Loc.none }
      in
      entry.Instr.b_instrs <- call :: entry.Instr.b_instrs
    | Some _ | None -> ())
  | Some _ | None -> ())
