lib/front/lower.mli: Ast Loc Program Slice_ir
