lib/front/parser.mli: Ast Slice_ir Token
