lib/front/lexer.ml: Buffer List Loc Printf Slice_ir String Token
