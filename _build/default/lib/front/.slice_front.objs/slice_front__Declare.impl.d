lib/front/declare.ml: Array Ast Format Hashtbl Instr List Loc Option Program Slice_ir String Types
