lib/front/parser.ml: Array Ast Lexer List Loc Option Printf Slice_ir String Token Types
