lib/front/lexer.mli: Slice_ir Token
