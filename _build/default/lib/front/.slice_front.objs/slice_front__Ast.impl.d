lib/front/ast.ml: Format Loc Slice_ir Types
