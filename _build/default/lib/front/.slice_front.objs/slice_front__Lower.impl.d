lib/front/lower.ml: Array Ast Builder Declare Format Hashtbl Instr List Loc Program Slice_ir String Types
