lib/front/frontend.mli: Format Loc Program Slice_ir
