lib/front/token.ml: Loc Printf Slice_ir
