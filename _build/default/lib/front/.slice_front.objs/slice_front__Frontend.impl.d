lib/front/frontend.ml: Declare Filename Format Lexer Loc Lower Parser Program Slice_ir Ssa
