lib/front/declare.mli: Ast Loc Program Slice_ir Types
