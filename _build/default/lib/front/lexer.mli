(** Hand-written lexer for TJ.  Produces the full token list up front; TJ
    sources are small enough that streaming buys nothing. *)

exception Lex_error of string * Slice_ir.Loc.t

(** Tokenize a source text; the result always ends with [EOF].  Comments
    ([//] and [/* */]) and whitespace are skipped; raises {!Lex_error} on
    unterminated strings/comments and stray characters. *)
val tokenize : file:string -> string -> Token.located list
