(** Recursive-descent parser for TJ.

    Disambiguation conventions (see the README):
    - class names start uppercase, variables lowercase, which resolves the
      cast-vs-parenthesization ambiguity: [(Foo) x] is a cast, [(foo)] a
      parenthesized expression;
    - [for] desugars into [while] at parse time; [continue] inside [for]
      is rejected because it would skip the update expression. *)

exception Parse_error of string * Slice_ir.Loc.t

val parse_unit : file:string -> Token.located list -> Ast.compilation_unit
val parse_string : file:string -> string -> Ast.compilation_unit
