lib/pta/context.ml: Array Format Hashtbl Instr Slice_ir Types
