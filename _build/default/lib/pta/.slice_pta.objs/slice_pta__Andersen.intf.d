lib/pta/andersen.mli: Context Instr Program Set Slice_ir Types
