lib/pta/modref.mli: Andersen Instr Program Set Slice_ir Types
