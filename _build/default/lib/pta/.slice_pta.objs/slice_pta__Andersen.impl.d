lib/pta/andersen.ml: Array Context Hashtbl Instr Int List Program Set Slice_ir String Types
