lib/pta/modref.ml: Andersen Hashtbl Instr List Option Program Set Slice_ir Types
