lib/pta/context.mli: Format Instr Slice_ir Types
