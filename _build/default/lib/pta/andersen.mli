(** Andersen-style (subset-based) points-to analysis with on-the-fly call
    graph construction, a field-sensitive heap, and optional
    object-sensitive cloning of container-class methods and their
    allocations — the analysis configuration of the paper's section 6.1
    ("a variant of Andersen's analysis with on-the-fly call graph
    construction, with fully object-sensitive cloning for objects of key
    collections classes").

    The solver is a difference-propagation worklist over an interned node
    universe; complex constraints (field loads/stores, virtual dispatch)
    are attached to base-pointer nodes and processed as their points-to
    sets grow. *)

open Slice_ir

module ObjSet : Set.S with type elt = int

type opts = {
  obj_sens_containers : bool;
      (** clone container-class methods per receiver object *)
  max_ctx_depth : int;
      (** cap on nested receiver contexts (containers inside containers) *)
}

val default_opts : opts
val no_obj_sens_opts : opts

(** The array-contents pseudo-field of the heap abstraction. *)
val elem_field : string

type result

(** Solve from the program's entry method.  The entry's [String[]]
    parameter is seeded with synthetic argument objects. *)
val analyze : ?opts:opts -> Program.t -> result

val contexts : result -> Context.t

(** Reachable method contexts: (context id, method, receiver context). *)
val method_contexts : result -> (int * Instr.method_qname * Context.ctx) list

val mctx_info : result -> int -> Instr.method_qname * Context.ctx
val mctxs_of_method : result -> Instr.method_qname -> int list
val reachable_methods : result -> Instr.method_qname list

(** Points-to set of a variable in one method context. *)
val pts_of_var : result -> mctx:int -> Instr.var -> ObjSet.t

(** Context-insensitive projection: union over the method's contexts. *)
val pts_of_var_ci : result -> Instr.method_qname -> Instr.var -> ObjSet.t

val pts_of_field : result -> obj:int -> field:string -> ObjSet.t
val pts_of_static : result -> Types.class_name -> Types.field_name -> ObjSet.t

(** Call graph: context-qualified callees of a call site. *)
val call_targets : result -> mctx:int -> stmt:Instr.stmt_id -> int list

val intrinsic_targets :
  result -> mctx:int -> stmt:Instr.stmt_id -> Instr.method_qname list

val call_targets_ci :
  result -> Instr.method_qname -> stmt:Instr.stmt_id -> Instr.method_qname list

val intrinsic_targets_ci :
  result -> Instr.method_qname -> stmt:Instr.stmt_id -> Instr.method_qname list

val num_call_graph_nodes : result -> int
val num_objects : result -> int

(** Can the pointer analysis prove the cast never fails?  The tough-cast
    experiment (section 6.3) slices from casts where this is [false]. *)
val cast_verified : result -> Instr.method_qname -> Instr.instr -> bool
