(** Context-sensitive slicing (paper, section 5.3).

    Unlike the scalable context-insensitive representation (direct heap
    edges, {!Sdg}), this variant models heap accesses as extra parameters
    and return values on each procedure, discovered by the
    interprocedural mod-ref analysis [24], and answers slices as a
    partially balanced-parentheses reachability problem: the classic
    two-phase HRB backward slice over summary edges computed by
    tabulation [20, 21].

    The paper's finding — reproduced by [bench -- scalability] — is that
    the heap-parameter SDG explodes with program size while barely
    changing breadth-first inspection counts, which is why the evaluation
    uses the context-insensitive algorithm.  This module exists to
    measure exactly that, and to provide realizable-path slices where
    they matter. *)

open Slice_ir

type loc = Slice_pta.Modref.loc

type node_desc =
  | HStmt of string * Instr.stmt_id  (** method key, statement *)
  | HFormal of string * int
  | HFormal_heap_in of string * loc
  | HFormal_heap_out of string * loc
  | HRet of string
  | HActual_in of string * Instr.stmt_id * int
  | HActual_heap_in of string * Instr.stmt_id * loc
  | HActual_heap_out of string * Instr.stmt_id * loc

type mode = Thin | Traditional

type t

(** Build the heap-parameterized SDG over all reachable methods (one PDG
    per method; context sensitivity comes from parenthesis matching). *)
val build : Program.t -> Slice_pta.Andersen.result -> t

val num_nodes : t -> int
val node_desc : t -> int -> node_desc

(** Two-phase backward slice with summary edges; summaries are computed on
    first use per mode and cached. *)
val slice : t -> seeds:int list -> mode -> int list

(** Statement nodes at a source line, for seeding. *)
val nodes_at_line : t -> line:int -> int list

(** Source lines of a node set.  Scalar actual-in nodes count at their
    call statement's line; heap-parameter nodes are bookkeeping and do
    not count (the paper likewise excludes them from statement counts). *)
val slice_lines : t -> int list -> int list

type stats = {
  total_nodes : int;
  stmt_nodes : int;
  heap_param_nodes : int;
      (** the paper's scalability bottleneck: nodes "introduced to model
          heap parameter-passing" *)
  summary_edges_thin : int;
}

val stats : t -> stats
