(* Context-sensitive slicing (paper, section 5.3).

   Unlike the scalable context-insensitive representation (direct heap
   edges, [Sdg]), this variant models heap accesses as extra parameters
   and return values on each procedure, discovered by the interprocedural
   mod-ref analysis [24], and answers slices as a partially balanced-
   parentheses reachability problem, i.e. the classic two-phase
   HRB backward slice over summary edges computed by tabulation [20, 21].

   The paper's own finding — reproduced by the bench harness — is that the
   heap-parameter SDG explodes with program size while barely changing the
   breadth-first inspection counts, which is why the evaluation uses the
   context-insensitive algorithm.  This module exists to measure exactly
   that. *)

open Slice_ir
open Slice_pta

type loc = Modref.loc

(* Node universe.  Procedures are context-insensitive here (one PDG per
   method); context sensitivity comes from parenthesis matching. *)
type node_desc =
  | HStmt of string * Instr.stmt_id               (* method key, statement *)
  | HFormal of string * int                        (* parameter in *)
  | HFormal_heap_in of string * loc
  | HFormal_heap_out of string * loc
  | HRet of string                                 (* return formal-out *)
  | HActual_in of string * Instr.stmt_id * int
  | HActual_heap_in of string * Instr.stmt_id * loc
  | HActual_heap_out of string * Instr.stmt_id * loc

type edge_label =
  | Intra of Sdg.edge_kind       (* same-procedure; kind drives thin filter *)
  | Ascend of Instr.stmt_id      (* callee input  -> caller actual-in  (call site) *)
  | Descend of Instr.stmt_id     (* caller output -> callee output     (call site) *)
(* summary edges (actual-out -> actual-in at a call site) are stored
   separately in [t.summ], recomputed per mode *)

type mode = Thin | Traditional

let follows (mode : mode) (k : Sdg.edge_kind) : bool =
  match mode with
  | Traditional -> k <> Sdg.Control
  | Thin -> Sdg.is_producer k

type t = {
  p : Program.t;
  pta : Andersen.result;
  modref : Modref.t;
  mutable descs : node_desc array;
  mutable num_nodes : int;
  intern_tbl : (node_desc, int) Hashtbl.t;
  mutable deps : (int * edge_label) list array;    (* backward adjacency *)
  (* proc key -> its input nodes (formals), output nodes *)
  proc_of : (int, string) Hashtbl.t;               (* node -> proc key *)
  (* call sites of each procedure: (caller key, call stmt) list *)
  callers : (string, (string * Instr.stmt_id) list ref) Hashtbl.t;
  stmt_table : (Instr.stmt_id, Program.stmt_info) Hashtbl.t;
  (* summary edges (actual-out -> actual-in), recomputed per mode *)
  mutable summ : int list array;
  mutable summ_mode : mode option;
  mutable summ_count : int;
}

let num_nodes (t : t) = t.num_nodes
let node_desc (t : t) (n : int) = t.descs.(n)

let mq_key (mq : Instr.method_qname) = Instr.method_qname_to_string mq

let intern (t : t) (proc : string) (d : node_desc) : int =
  match Hashtbl.find_opt t.intern_tbl d with
  | Some n -> n
  | None ->
    let n = t.num_nodes in
    if n = Array.length t.descs then begin
      let grow a default =
        let b = Array.make (2 * n) default in
        Array.blit a 0 b 0 n;
        b
      in
      t.descs <- grow t.descs (HRet "");
      t.deps <- grow t.deps []
    end;
    t.descs.(n) <- d;
    t.num_nodes <- n + 1;
    Hashtbl.replace t.intern_tbl d n;
    Hashtbl.replace t.proc_of n proc;
    n

let add_edge (t : t) ~(from : int) ~(on : int) (l : edge_label) : unit =
  if not (List.mem (on, l) t.deps.(from)) then
    t.deps.(from) <- (on, l) :: t.deps.(from)

(* The abstract locations a statement's heap access may touch. *)
let locs_of_load (t : t) mq (i : Instr.instr) : loc list =
  let pts v =
    Andersen.ObjSet.elements (Andersen.pts_of_var_ci t.pta mq v)
  in
  match i.Instr.i_kind with
  | Instr.Load (_, y, f) -> List.map (fun o -> Modref.Lfield (o, f)) (pts y)
  | Instr.Array_load (_, a, _) ->
    List.map (fun o -> Modref.Lfield (o, Andersen.elem_field)) (pts a)
  | Instr.Array_length (_, a) -> List.map (fun o -> Modref.Larray_len o) (pts a)
  | Instr.Static_load (_, c, f) -> [ Modref.Lstatic (c, f) ]
  | _ -> []

let locs_of_store (t : t) mq (i : Instr.instr) : loc list =
  let pts v =
    Andersen.ObjSet.elements (Andersen.pts_of_var_ci t.pta mq v)
  in
  match i.Instr.i_kind with
  | Instr.Store (x, f, _) -> List.map (fun o -> Modref.Lfield (o, f)) (pts x)
  | Instr.Array_store (a, _, _) ->
    List.map (fun o -> Modref.Lfield (o, Andersen.elem_field)) (pts a)
  | Instr.New_array (x, _, _) -> List.map (fun o -> Modref.Larray_len o) (pts x)
  | Instr.Static_store (c, f, _) -> [ Modref.Lstatic (c, f) ]
  | _ -> []

(* mod/ref sets per method, context-insensitively. *)
let mod_of (t : t) (mq : Instr.method_qname) : Modref.LocSet.t =
  Modref.mod_of_method t.p t.pta t.modref mq

let ref_of (t : t) (mq : Instr.method_qname) : Modref.LocSet.t =
  Modref.ref_of_method t.p t.pta t.modref mq

let build (p : Program.t) (pta : Andersen.result) : t =
  let t =
    { p;
      pta;
      modref = Modref.compute p pta;
      descs = Array.make 1024 (HRet "");
      num_nodes = 0;
      intern_tbl = Hashtbl.create 1024;
      deps = Array.make 1024 [];
      proc_of = Hashtbl.create 1024;
      callers = Hashtbl.create 64;
      stmt_table = Program.build_stmt_table p;
      summ = [||];
      summ_mode = None;
      summ_count = 0 }
  in
  let methods = Andersen.reachable_methods pta in
  List.iter
    (fun mq ->
      let key = mq_key mq in
      let m = Program.find_method_exn p mq in
      if Instr.has_body m then begin
        let stmt s = intern t key (HStmt (key, s)) in
        let def_stmt = Hashtbl.create 64 in
        Instr.iter_instrs m (fun _ i ->
            match Instr.def_of_instr i with
            | Some v -> Hashtbl.replace def_stmt v i.Instr.i_id
            | None -> ());
        let param_index = Hashtbl.create 8 in
        List.iteri (fun idx v -> Hashtbl.replace param_index v idx) m.Instr.m_params;
        let def_target v =
          match Hashtbl.find_opt def_stmt v with
          | Some s -> Some (stmt s)
          | None -> (
            match Hashtbl.find_opt param_index v with
            | Some idx -> Some (intern t key (HFormal (key, idx)))
            | None -> None)
        in
        (* stores on each location, for intraprocedural heap wiring *)
        let stores_on : (loc, int list ref) Hashtbl.t = Hashtbl.create 32 in
        Instr.iter_instrs m (fun _ i ->
            List.iter
              (fun l ->
                let cell =
                  match Hashtbl.find_opt stores_on l with
                  | Some r -> r
                  | None ->
                    let r = ref [] in
                    Hashtbl.replace stores_on l r;
                    r
                in
                cell := stmt i.Instr.i_id :: !cell)
              (locs_of_store t mq i));
        (* calls in this method that may mod a location *)
        let call_outs_on : (loc, int list ref) Hashtbl.t = Hashtbl.create 32 in
        Instr.iter_instrs m (fun _ i ->
            match i.Instr.i_kind with
            | Instr.Call _ ->
              let callees =
                Andersen.call_targets_ci pta mq ~stmt:i.Instr.i_id
              in
              List.iter
                (fun n ->
                  Modref.LocSet.iter
                    (fun l ->
                      let node =
                        intern t key (HActual_heap_out (key, i.Instr.i_id, l))
                      in
                      let cell =
                        match Hashtbl.find_opt call_outs_on l with
                        | Some r -> r
                        | None ->
                          let r = ref [] in
                          Hashtbl.replace call_outs_on l r;
                          r
                      in
                      if not (List.mem node !cell) then cell := node :: !cell)
                    (mod_of t n))
                callees
            | _ -> ());
        let heap_sources (l : loc) : int list =
          let stores =
            match Hashtbl.find_opt stores_on l with Some r -> !r | None -> []
          in
          let calls =
            match Hashtbl.find_opt call_outs_on l with Some r -> !r | None -> []
          in
          let fin =
            if Modref.LocSet.mem l (ref_of t mq) then
              [ intern t key (HFormal_heap_in (key, l)) ]
            else []
          in
          stores @ calls @ fin
        in
        (* 1. local def-use and heap-read wiring per statement *)
        Instr.iter_instrs m (fun _ i ->
            let n = stmt i.Instr.i_id in
            (match i.Instr.i_kind with
            | Instr.Call { args; _ } ->
              let intr = ref false in
              List.iter
                (fun imq ->
                  ignore imq;
                  intr := true)
                (Andersen.intrinsic_targets_ci pta mq ~stmt:i.Instr.i_id);
              if !intr then
                List.iter
                  (fun a ->
                    match def_target a with
                    | Some d -> add_edge t ~from:n ~on:d (Intra Sdg.Producer_local)
                    | None -> ())
                  args
            | _ ->
              List.iter
                (fun (v, cls) ->
                  let kind =
                    match cls with
                    | Instr.Use_value -> Sdg.Producer_local
                    | Instr.Use_base -> Sdg.Base_pointer
                    | Instr.Use_index -> Sdg.Index
                  in
                  match def_target v with
                  | Some d -> add_edge t ~from:n ~on:d (Intra kind)
                  | None -> ())
                (Instr.classified_uses i));
            (* heap reads *)
            List.iter
              (fun l ->
                List.iter
                  (fun src -> add_edge t ~from:n ~on:src (Intra Sdg.Producer_heap))
                  (heap_sources l))
              (locs_of_load t mq i));
        Instr.iter_terms m (fun _ term ->
            let n = stmt term.Instr.t_id in
            List.iter
              (fun v ->
                match def_target v with
                | Some d -> add_edge t ~from:n ~on:d (Intra Sdg.Producer_local)
                | None -> ())
              (Instr.uses_of_term term);
            match term.Instr.t_kind with
            | Instr.Return (Some _) ->
              add_edge t ~from:(intern t key (HRet key)) ~on:n
                (Intra Sdg.Producer_local)
            | _ -> ());
        (* 2. heap formal-outs: transparent or written *)
        Modref.LocSet.iter
          (fun l ->
            let fo = intern t key (HFormal_heap_out (key, l)) in
            List.iter
              (fun src -> add_edge t ~from:fo ~on:src (Intra Sdg.Producer_heap))
              (heap_sources l))
          (mod_of t mq);
        (* 3. call sites: actuals, heap actuals, descend edges *)
        Instr.iter_instrs m (fun _ i ->
            match i.Instr.i_kind with
            | Instr.Call { args; _ } ->
              let c = i.Instr.i_id in
              let callees = Andersen.call_targets_ci pta mq ~stmt:c in
              (* scalar actual-ins *)
              List.iteri
                (fun idx a ->
                  match def_target a with
                  | Some d ->
                    let ai = intern t key (HActual_in (key, c, idx)) in
                    add_edge t ~from:ai ~on:d (Intra Sdg.Producer_local);
                    add_edge t ~from:(stmt c) ~on:ai (Intra Sdg.Call_actual)
                  | None -> ())
                args;
              List.iter
                (fun n ->
                  let nkey = mq_key n in
                  let cell =
                    match Hashtbl.find_opt t.callers nkey with
                    | Some r -> r
                    | None ->
                      let r = ref [] in
                      Hashtbl.replace t.callers nkey r;
                      r
                  in
                  if not (List.mem (key, c) !cell) then cell := (key, c) :: !cell;
                  (* return value: descend *)
                  add_edge t ~from:(stmt c)
                    ~on:(intern t nkey (HRet nkey))
                    (Descend c);
                  (* heap actual-ins feed the callee's reads *)
                  Modref.LocSet.iter
                    (fun l ->
                      let ahi = intern t key (HActual_heap_in (key, c, l)) in
                      List.iter
                        (fun src ->
                          add_edge t ~from:ahi ~on:src (Intra Sdg.Producer_heap))
                        (heap_sources l))
                    (ref_of t n);
                  (* heap actual-outs descend into the callee's formal-outs *)
                  Modref.LocSet.iter
                    (fun l ->
                      let aho = intern t key (HActual_heap_out (key, c, l)) in
                      add_edge t ~from:aho
                        ~on:(intern t nkey (HFormal_heap_out (nkey, l)))
                        (Descend c))
                    (mod_of t n))
                callees
            | _ -> ())
      end)
    methods;
  (* 4. ascend edges: callee inputs -> caller actual-ins *)
  List.iter
    (fun mq ->
      let key = mq_key mq in
      let m = Program.find_method_exn p mq in
      if Instr.has_body m then begin
        let callers =
          match Hashtbl.find_opt t.callers key with Some r -> !r | None -> []
        in
        List.iter
          (fun (caller_key, c) ->
            List.iteri
              (fun idx _ ->
                match Hashtbl.find_opt t.intern_tbl (HActual_in (caller_key, c, idx)) with
                | Some ai ->
                  add_edge t
                    ~from:(intern t key (HFormal (key, idx)))
                    ~on:ai (Ascend c)
                | None -> ())
              m.Instr.m_params;
            Modref.LocSet.iter
              (fun l ->
                match
                  Hashtbl.find_opt t.intern_tbl (HActual_heap_in (caller_key, c, l))
                with
                | Some ahi ->
                  add_edge t
                    ~from:(intern t key (HFormal_heap_in (key, l)))
                    ~on:ahi (Ascend c)
                | None -> ())
              (ref_of t mq))
          callers
      end)
    methods;
  t

(* ------------------------------------------------------------------ *)
(* Summary edges via tabulation                                        *)
(* ------------------------------------------------------------------ *)

(* An "output" node of a procedure (HRet or heap formal-out) is mirrored by
   an output node at each call site; an "input" node (HFormal or heap
   formal-in) by an actual-in node.  A same-level backward path output ->
   input yields summary edges at every call site. *)

let caller_out_node (t : t) ~(caller : string) ~(site : Instr.stmt_id)
    (out : node_desc) : int option =
  match out with
  | HRet _ -> Hashtbl.find_opt t.intern_tbl (HStmt (caller, site))
  | HFormal_heap_out (_, l) ->
    Hashtbl.find_opt t.intern_tbl (HActual_heap_out (caller, site, l))
  | _ -> None

let caller_in_node (t : t) ~(caller : string) ~(site : Instr.stmt_id)
    (inp : node_desc) : int option =
  match inp with
  | HFormal (_, idx) -> Hashtbl.find_opt t.intern_tbl (HActual_in (caller, site, idx))
  | HFormal_heap_in (_, l) ->
    Hashtbl.find_opt t.intern_tbl (HActual_heap_in (caller, site, l))
  | _ -> None

let is_input = function
  | HFormal _ | HFormal_heap_in _ -> true
  | _ -> false

let is_output = function
  | HRet _ | HFormal_heap_out _ -> true
  | _ -> false

(* Compute summary edges for the given mode, stored in [t.summ].
   Recomputed (and cached) per mode. *)
let compute_summaries (t : t) (mode : mode) : unit =
  if t.summ_mode <> Some mode then begin
    t.summ <- Array.make t.num_nodes [];
    t.summ_mode <- Some mode;
    t.summ_count <- 0;
    (* path edges: (output node, reached node) *)
    let path : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
    (* reverse index: reached node -> outputs that reached it *)
    let reached_by : (int, int list ref) Hashtbl.t = Hashtbl.create 1024 in
    let work = Queue.create () in
    let add_path o n =
      if not (Hashtbl.mem path (o, n)) then begin
        Hashtbl.replace path (o, n) ();
        (match Hashtbl.find_opt reached_by n with
        | Some r -> r := o :: !r
        | None -> Hashtbl.replace reached_by n (ref [ o ]));
        Queue.add (o, n) work
      end
    in
    for n = 0 to t.num_nodes - 1 do
      if is_output t.descs.(n) then add_path n n
    done;
    while not (Queue.is_empty work) do
      let o, n = Queue.pop work in
      (* reached an input node: install summary edges at all call sites *)
      (if is_input t.descs.(n) then begin
         let proc = Hashtbl.find t.proc_of n in
         let callers =
           match Hashtbl.find_opt t.callers proc with Some r -> !r | None -> []
         in
         List.iter
           (fun (caller, site) ->
             match
               ( caller_out_node t ~caller ~site t.descs.(o),
                 caller_in_node t ~caller ~site t.descs.(n) )
             with
             | Some co, Some ci ->
               if not (List.mem ci t.summ.(co)) then begin
                 t.summ.(co) <- ci :: t.summ.(co);
                 t.summ_count <- t.summ_count + 1;
                 (* re-activate path problems passing through co *)
                 match Hashtbl.find_opt reached_by co with
                 | Some outs -> List.iter (fun o' -> add_path o' ci) !outs
                 | None -> ()
               end
             | _ -> ())
           callers
       end);
      List.iter
        (fun (dep, label) ->
          match label with
          | Intra k -> if follows mode k then add_path o dep
          | Ascend _ | Descend _ -> ())
        t.deps.(n);
      List.iter (fun dep -> add_path o dep) t.summ.(n)
    done
  end

(* ------------------------------------------------------------------ *)
(* Two-phase backward slice                                            *)
(* ------------------------------------------------------------------ *)

let slice (t : t) ~(seeds : int list) (mode : mode) : int list =
  compute_summaries t mode;
  let traverse ~ascend ~descend init =
    let visited = Hashtbl.create 256 in
    let q = Queue.create () in
    List.iter
      (fun s ->
        if not (Hashtbl.mem visited s) then begin
          Hashtbl.replace visited s ();
          Queue.add s q
        end)
      init;
    while not (Queue.is_empty q) do
      let n = Queue.pop q in
      let push dep =
        if not (Hashtbl.mem visited dep) then begin
          Hashtbl.replace visited dep ();
          Queue.add dep q
        end
      in
      List.iter
        (fun (dep, label) ->
          let go =
            match label with
            | Intra k -> follows mode k
            | Ascend _ -> ascend
            | Descend _ -> descend
          in
          if go then push dep)
        t.deps.(n);
      List.iter push t.summ.(n)
    done;
    Hashtbl.fold (fun n () acc -> n :: acc) visited []
  in
  (* Phase 1: ascend to callers, summaries instead of descending;
     Phase 2: descend into callees from everything phase 1 found. *)
  let phase1 = traverse ~ascend:true ~descend:false seeds in
  let phase2 = traverse ~ascend:false ~descend:true phase1 in
  List.sort compare phase2

(* Statement nodes at a source line; used to seed slices. *)
let nodes_at_line (t : t) ~(line : int) : int list =
  let out = ref [] in
  for n = 0 to t.num_nodes - 1 do
    match t.descs.(n) with
    | HStmt (_, s) -> (
      match Hashtbl.find_opt t.stmt_table s with
      | Some si when (Program.stmt_loc si).Loc.line = line -> out := n :: !out
      | _ -> ())
    | _ -> ()
  done;
  List.rev !out

(* Source lines of a node set.  Scalar actual-parameter nodes belong to
   their call statement for display, as in [Sdg]; heap-parameter nodes are
   bookkeeping and do not count as statements (the paper likewise
   "excludes parameter passing statements introduced to model the heap"). *)
let slice_lines (t : t) (nodes : int list) : int list =
  let seen = Hashtbl.create 64 in
  let add_stmt s =
    match Hashtbl.find_opt t.stmt_table s with
    | Some si -> (
      (* skip compiler-internal statements, as [Sdg.node_countable] does *)
      match si.Program.s_site with
      | Program.Site_instr { Instr.i_kind = Instr.Phi _; _ }
      | Program.Site_term { Instr.t_kind = Instr.Goto _; _ } -> ()
      | Program.Site_instr _ | Program.Site_term _ ->
        let l = (Program.stmt_loc si).Loc.line in
        if l > 0 then Hashtbl.replace seen l ())
    | None -> ()
  in
  List.iter
    (fun n ->
      match t.descs.(n) with
      | HStmt (_, s) | HActual_in (_, s, _) -> add_stmt s
      | HActual_heap_in _ | HActual_heap_out _ | HFormal _
      | HFormal_heap_in _ | HFormal_heap_out _ | HRet _ -> ())
    nodes;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) seen [])

(* How many of the nodes are heap-parameter bookkeeping?  This is the
   paper's scalability bottleneck: "the number of SDG statements
   introduced to model heap parameter-passing quickly explodes". *)
type stats = {
  total_nodes : int;
  stmt_nodes : int;
  heap_param_nodes : int;
  summary_edges_thin : int;
}

let stats (t : t) : stats =
  let stmt = ref 0 and heap = ref 0 in
  for n = 0 to t.num_nodes - 1 do
    match t.descs.(n) with
    | HStmt _ -> incr stmt
    | HFormal_heap_in _ | HFormal_heap_out _ | HActual_heap_in _
    | HActual_heap_out _ -> incr heap
    | HFormal _ | HRet _ | HActual_in _ -> ()
  done;
  { total_nodes = t.num_nodes;
    stmt_nodes = !stmt;
    heap_param_nodes = !heap;
    summary_edges_thin = t.summ_count }
