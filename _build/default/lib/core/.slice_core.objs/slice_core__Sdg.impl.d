lib/core/sdg.ml: Andersen Array Buffer Cfg Context Dominance Format Hashtbl Instr List Loc Pretty Printf Program Slice_ir Slice_pta String Types
