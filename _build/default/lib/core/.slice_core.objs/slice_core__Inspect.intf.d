lib/core/inspect.mli: Format Sdg Slicer
