lib/core/engine.mli: Andersen Inspect Instr Program Sdg Slice_ir Slice_pta Slicer
