lib/core/expansion.mli: Andersen Sdg Slice_pta
