lib/core/inspect.ml: Format Hashtbl List Sdg Slice_ir Slicer
