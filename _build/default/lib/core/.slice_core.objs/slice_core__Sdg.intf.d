lib/core/sdg.mli: Andersen Format Hashtbl Instr Loc Program Slice_ir Slice_pta
