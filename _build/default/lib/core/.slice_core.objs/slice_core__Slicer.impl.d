lib/core/slicer.ml: Hashtbl List Printf Queue Sdg Slice_ir
