lib/core/slicer.mli: Sdg Slice_ir
