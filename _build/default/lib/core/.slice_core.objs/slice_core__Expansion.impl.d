lib/core/expansion.ml: Andersen Hashtbl Instr List Program Sdg Slice_ir Slice_pta Slicer Types
