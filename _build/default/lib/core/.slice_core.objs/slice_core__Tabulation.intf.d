lib/core/tabulation.mli: Instr Program Slice_ir Slice_pta
