lib/core/tabulation.ml: Andersen Array Hashtbl Instr List Loc Modref Program Queue Sdg Slice_ir Slice_pta
