lib/core/engine.ml: Andersen Hashtbl Inspect Instr List Program Sdg Slice_front Slice_ir Slice_pta Slicer
