(** Hierarchical expansion of thin slices (paper, section 4).

    A thin slice contains only producers; when the user needs to know WHY
    a producer affects the seed, two explainer questions arise:
    + aliasing — given a heap read and write in the slice that touch the
      same location, why are their base pointers aliased?  Answered with
      two further thin slices seeded at the base-pointer definitions and
      filtered to the flow of objects that reach BOTH pointers (4.1);
    + control — under which conditions does a statement execute?
      Answered by exposing its direct control dependences (4.2).

    Iterating expansion to a fixed point recovers the traditional slice
    ("in the limit"), which the test suite verifies. *)

open Slice_pta

(** The conditionals (or call sites) that directly govern a node. *)
val explain_control : Sdg.t -> Sdg.node -> Sdg.node list

(** Base-pointer definition nodes of a heap access node. *)
val base_defs : Sdg.t -> Sdg.node -> Sdg.node list

(** Array-index definition nodes of an array access node. *)
val index_defs : Sdg.t -> Sdg.node -> Sdg.node list

(** Actual-argument nodes of a call statement (Weiser statement closure). *)
val call_actuals : Sdg.t -> Sdg.node -> Sdg.node list

(** The abstract objects the base pointer of a heap access may point to. *)
val base_points_to : Sdg.t -> Sdg.node -> Andersen.ObjSet.t

(** Does the node define or carry a variable that may point to one of the
    given objects?  The filter of section 4.1. *)
val node_flows_object : Sdg.t -> Andersen.ObjSet.t -> Sdg.node -> bool

type aliasing_explanation = {
  common_objects : Andersen.ObjSet.t;
      (** objects that may flow to both base pointers *)
  read_flow : Sdg.node list;
      (** statements moving a common object to the read's base pointer *)
  write_flow : Sdg.node list;
      (** statements moving a common object to the write's base pointer *)
}

(** Explain why a heap [read] and a heap [write] in a thin slice may touch
    the same location: thin slices from each base pointer, filtered to the
    common objects' flow. *)
val explain_aliasing :
  Sdg.t -> read:Sdg.node -> write:Sdg.node -> aliasing_explanation

(** Why may an array read and write use the same index?  Thin slices on
    the two index expressions (section 4.1's array discussion). *)
val explain_array_index :
  Sdg.t -> read:Sdg.node -> write:Sdg.node -> Sdg.node list * Sdg.node list

(** One expansion step: the thin-slice closure of the nodes plus all their
    direct explainers (base pointers, indices, call arguments, controls). *)
val expand_once : Sdg.t -> Sdg.node list -> Sdg.node list

(** Expand hierarchically until nothing is added; equals the traditional
    (full) slice. *)
val expand_to_fixpoint : Sdg.t -> seeds:Sdg.node list -> Sdg.node list
