lib/interp/interp.mli: Dyntrace Format Hashtbl Instr Loc Program Result Slice_ir Types
