lib/interp/dyntrace.ml: Array Hashtbl List Option Slice_ir
