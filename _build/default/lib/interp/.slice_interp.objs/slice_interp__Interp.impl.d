lib/interp/interp.ml: Array Buffer Char Dyntrace Format Hashtbl Instr List Loc Option Printf Program Result Slice_ir String Types
