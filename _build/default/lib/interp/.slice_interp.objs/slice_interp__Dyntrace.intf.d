lib/interp/dyntrace.mli: Slice_ir
