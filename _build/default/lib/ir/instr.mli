(** The three-address intermediate representation for TJ methods.

    Design notes:
    - every operand of every instruction is a variable; literals are
      materialized by [Const] instructions during lowering, making
      def/use computation uniform for the dependence analyses;
    - every instruction and terminator carries a globally unique statement
      id ([stmt_id]) drawn from the program's counter; SDG nodes reference
      statements by this id;
    - methods start in non-SSA form; {!Ssa} rewrites them so that every
      variable has exactly one definition. *)

type var = int

type var_kind =
  | Vparam of int  (** i-th parameter; 0 = this for instance methods *)
  | Vlocal         (** user-declared local *)
  | Vtemp          (** compiler temporary *)
  | Vssa of var    (** SSA version of the given original variable *)

type var_info = {
  vi_name : string;
  vi_kind : var_kind;
  vi_ty : Types.ty;
}

type stmt_id = int

(** Methods are named by owning class + name; TJ has no overloading. *)
type method_qname = { mq_class : Types.class_name; mq_name : Types.method_name }

val pp_method_qname : Format.formatter -> method_qname -> unit
val method_qname_to_string : method_qname -> string
val equal_method_qname : method_qname -> method_qname -> bool
val compare_method_qname : method_qname -> method_qname -> int

type call_kind =
  | Virtual of Types.method_name  (** dispatch on args.(0) *)
  | Static of method_qname
  | Special of method_qname       (** constructor invocation *)

type label = int

type instr_kind =
  | Const of var * Types.const
  | Move of var * var
  | Binop of var * Types.binop * var * var
  | Unop of var * Types.unop * var
  | New of var * Types.class_name      (** allocation site = statement id *)
  | New_array of var * Types.ty * var  (** element type, length *)
  | Load of var * var * Types.field_name          (** x = y.f *)
  | Store of var * Types.field_name * var         (** x.f = y *)
  | Array_load of var * var * var                 (** x = y[i] *)
  | Array_store of var * var * var                (** x[i] = y *)
  | Static_load of var * Types.class_name * Types.field_name
  | Static_store of Types.class_name * Types.field_name * var
  | Call of { lhs : var option; kind : call_kind; args : var list }
  | Cast of var * Types.ty * var
  | Instance_of of var * Types.ty * var
  | Array_length of var * var                     (** x = y.length *)
  | Phi of var * (label * var) list
  | Nop

type instr = { i_id : stmt_id; i_kind : instr_kind; i_loc : Loc.t }

type term_kind =
  | Goto of label
  | If of var * label * label  (** then-target, else-target *)
  | Return of var option
  | Throw of var

type term = { t_id : stmt_id; t_kind : term_kind; t_loc : Loc.t }

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : term;
}

(** Built-in method bodies interpreted natively; the points-to analysis
    treats allocating intrinsics as allocation sites at the call. *)
type intrinsic =
  | Str_index_of
  | Str_substring
  | Str_length
  | Str_equals
  | Str_char_at
  | Str_char_code_at
  | Str_starts_with
  | Stream_init
  | Stream_read_line
  | Stream_eof
  | Top_print
  | Top_parse_int
  | Top_itoa
  | Top_random

(** [Some cls] when the intrinsic allocates a fresh object of class [cls]
    for its result. *)
val intrinsic_allocates : intrinsic -> Types.class_name option

type body =
  | Body of { mutable blocks : block array; entry : label }
  | Intrinsic of intrinsic
  | Abstract  (** declared but bodyless (shells during lowering) *)

type meth = {
  m_qname : method_qname;
  m_static : bool;
  m_params : var list;  (** this first for instance methods *)
  m_param_tys : Types.ty list;
  m_ret_ty : Types.ty;
  mutable m_vars : var_info array;  (** indexed by var *)
  mutable m_body : body;
  m_loc : Loc.t;
}

val var_info : meth -> var -> var_info
val var_name : meth -> var -> string

(** Raises [Invalid_argument] on intrinsic/abstract methods. *)
val blocks_exn : meth -> block array

val entry_label : meth -> label
val has_body : meth -> bool

(** {2 Def/use} *)

val def_of_instr : instr -> var option
val uses_of_instr : instr -> var list

(** The use classification at the heart of thin slicing (paper sections 2
    and 3): a statement "directly uses" a location only in value position;
    base pointers and array indices merely address the location. *)
type use_class =
  | Use_value
  | Use_base   (** dereferenced base pointer of a field/array access *)
  | Use_index  (** array index *)

val classified_uses : instr -> (var * use_class) list
val uses_of_term : term -> var list
val term_targets : term -> label list

(** Append a variable to the method's variable table; returns its id. *)
val add_var : meth -> var_info -> var

val iter_instrs : meth -> (label -> instr -> unit) -> unit
val iter_terms : meth -> (label -> term -> unit) -> unit
val fold_instrs : meth -> ('a -> instr -> 'a) -> 'a -> 'a
