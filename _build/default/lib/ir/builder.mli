(** Imperative construction of method bodies, used by the frontend's
    lowering pass and by tests that build IR directly.

    The builder maintains a current block; emitting after the current
    block has been terminated silently opens a fresh (possibly
    unreachable) block, which matches how lowering handles code after a
    return. *)

type t

val start :
  Program.t ->
  qname:Instr.method_qname ->
  static:bool ->
  params:(string * Types.ty) list ->
  ret:Types.ty ->
  loc:Loc.t ->
  t

val meth : t -> Instr.meth
val program : t -> Program.t

val fresh_var :
  t -> name:string -> kind:Instr.var_kind -> ty:Types.ty -> Instr.var

val fresh_temp : t -> Types.ty -> Instr.var
val fresh_local : t -> string -> Types.ty -> Instr.var

val new_block : t -> Instr.label
val switch_to : t -> Instr.label -> unit
val current_label : t -> Instr.label
val is_terminated : t -> bool

(** Append an instruction to the current block; returns its statement id. *)
val emit : t -> ?loc:Loc.t -> Instr.instr_kind -> Instr.stmt_id

(** Seal the current block.  A terminator after an existing one is parked
    in a fresh dead block (unreachable code after return). *)
val terminate : t -> ?loc:Loc.t -> Instr.term_kind -> Instr.stmt_id

(** {2 Convenience wrappers} *)

val const : t -> ?loc:Loc.t -> Types.const -> ty:Types.ty -> Instr.var
val goto : t -> ?loc:Loc.t -> Instr.label -> unit

val branch :
  t ->
  ?loc:Loc.t ->
  Instr.var ->
  then_:Instr.label ->
  else_:Instr.label ->
  Instr.stmt_id

(** Seal any unterminated block with [return] and install the body into
    the method record, which is returned.  The method is NOT registered in
    the program (lowering fills pre-registered shells). *)
val finish : t -> Instr.meth

(** [finish] plus [Program.add_method]. *)
val finish_and_register : t -> Instr.meth
