(* Types and primitive operators of the TJ language (a Java subset).

   The type language mirrors what the slicing analyses need from Java
   bytecode: primitives, classes with single inheritance, and covariant
   arrays.  [Tnull] is the type of the [null] literal, a subtype of every
   reference type. *)

type class_name = string
type field_name = string
type method_name = string

type ty =
  | Tint
  | Tbool
  | Tvoid
  | Tnull
  | Tclass of class_name
  | Tarray of ty

let object_class : class_name = "Object"
let string_class : class_name = "String"
let input_stream_class : class_name = "InputStream"

(* The synthetic class that owns free functions of a compilation unit. *)
let toplevel_class : class_name = "$Top"

let constructor_name : method_name = "<init>"

let rec pp_ty ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Tbool -> Format.pp_print_string ppf "boolean"
  | Tvoid -> Format.pp_print_string ppf "void"
  | Tnull -> Format.pp_print_string ppf "null_t"
  | Tclass c -> Format.pp_print_string ppf c
  | Tarray t -> Format.fprintf ppf "%a[]" pp_ty t

let ty_to_string t = Format.asprintf "%a" pp_ty t

let rec equal_ty a b =
  match (a, b) with
  | Tint, Tint | Tbool, Tbool | Tvoid, Tvoid | Tnull, Tnull -> true
  | Tclass c, Tclass d -> String.equal c d
  | Tarray x, Tarray y -> equal_ty x y
  | (Tint | Tbool | Tvoid | Tnull | Tclass _ | Tarray _), _ -> false

let is_reference = function
  | Tclass _ | Tarray _ | Tnull -> true
  | Tint | Tbool | Tvoid -> false

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge
  | Eq | Ne
  | And | Or
  (* String concatenation, produced by the typechecker for [+] on strings. *)
  | Concat

type unop = Neg | Not

type const =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Cnull

let pp_binop ppf op =
  let s =
    match op with
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
    | Eq -> "==" | Ne -> "!="
    | And -> "&&" | Or -> "||"
    | Concat -> "+s"
  in
  Format.pp_print_string ppf s

let pp_unop ppf op =
  Format.pp_print_string ppf (match op with Neg -> "-" | Not -> "!")

let pp_const ppf = function
  | Cint n -> Format.pp_print_int ppf n
  | Cbool b -> Format.pp_print_bool ppf b
  | Cstr s -> Format.fprintf ppf "%S" s
  | Cnull -> Format.pp_print_string ppf "null"
