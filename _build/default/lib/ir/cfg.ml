(* Control-flow graph views over a method body: successor/predecessor maps,
   reverse postorder, reachability.  Blocks are identified by their labels,
   which index the method's block array. *)

type t = {
  meth : Instr.meth;
  succ : int list array;
  pred : int list array;
  entry : Instr.label;
  (* Labels of blocks whose terminator leaves the method. *)
  exits : Instr.label list;
}

let build (m : Instr.meth) : t =
  let blocks = Instr.blocks_exn m in
  let n = Array.length blocks in
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  let exits = ref [] in
  Array.iter
    (fun b ->
      let l = b.Instr.b_label in
      let targets = Instr.term_targets b.Instr.b_term in
      succ.(l) <- targets;
      if targets = [] then exits := l :: !exits;
      List.iter (fun t -> pred.(t) <- l :: pred.(t)) targets)
    blocks;
  Array.iteri (fun i ps -> pred.(i) <- List.rev ps) pred;
  { meth = m; succ; pred; entry = Instr.entry_label m; exits = List.rev !exits }

let num_blocks (g : t) = Array.length g.succ
let successors (g : t) (l : Instr.label) = g.succ.(l)
let predecessors (g : t) (l : Instr.label) = g.pred.(l)
let block (g : t) (l : Instr.label) = (Instr.blocks_exn g.meth).(l)

(* Depth-first reverse postorder from the entry; unreachable blocks are
   excluded (dominance and SSA only consider reachable code). *)
let reverse_postorder (g : t) : Instr.label list =
  let n = num_blocks g in
  let visited = Array.make n false in
  let order = ref [] in
  let rec go l =
    if not visited.(l) then begin
      visited.(l) <- true;
      List.iter go g.succ.(l);
      order := l :: !order
    end
  in
  go g.entry;
  !order

let reachable (g : t) : bool array =
  let n = num_blocks g in
  let r = Array.make n false in
  List.iter (fun l -> r.(l) <- true) (reverse_postorder g);
  r

(* Postorder traversal (used by iterative dataflow). *)
let postorder (g : t) : Instr.label list = List.rev (reverse_postorder g)
