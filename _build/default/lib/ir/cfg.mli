(** Control-flow graph views over a method body.

    Blocks are identified by their labels, which index the method's block
    array.  The graph is built once and queried by the dominance, SSA and
    dependence passes. *)

type t = {
  meth : Instr.meth;
  succ : int list array;
  pred : int list array;
  entry : Instr.label;
  exits : Instr.label list;
      (** labels of blocks whose terminator leaves the method *)
}

(** Build the CFG of a method.  Raises [Invalid_argument] on intrinsic or
    abstract methods (no body). *)
val build : Instr.meth -> t

val num_blocks : t -> int
val successors : t -> Instr.label -> Instr.label list
val predecessors : t -> Instr.label -> Instr.label list
val block : t -> Instr.label -> Instr.block

(** Depth-first reverse postorder from the entry; blocks unreachable from
    the entry are excluded. *)
val reverse_postorder : t -> Instr.label list

val reachable : t -> bool array
val postorder : t -> Instr.label list
