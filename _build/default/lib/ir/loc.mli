(** Source locations.

    Every IR statement carries the location of the surface syntax it was
    lowered from, so that analyses can report results at the level the
    user reads: file and line. *)

type t = { file : string; line : int; col : int }

val make : file:string -> line:int -> col:int -> t

(** The location of synthetic statements (compiler-generated returns,
    phis merged from multiple predecessors, ...). *)
val none : t

val is_none : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
