(* Three-address intermediate representation for TJ methods.

   Design notes:
   - Every operand of every instruction is a variable; literals are
     materialized by [Const] instructions during lowering.  This makes
     def/use computation uniform, which the dependence analyses rely on.
   - Every instruction and every block terminator carries a globally unique
     statement id ([stmt_id]), drawn from a per-program counter.  SDG nodes
     reference statements by this id.
   - Methods start in non-SSA form (variables are mutable slots); [Ssa]
     rewrites them so that every variable has exactly one definition. *)

type var = int

type var_kind =
  | Vparam of int        (* i-th parameter; 0 = this for instance methods *)
  | Vlocal               (* user-declared local *)
  | Vtemp                (* compiler temporary *)
  | Vssa of var          (* SSA version of the given original variable *)

type var_info = {
  vi_name : string;
  vi_kind : var_kind;
  vi_ty : Types.ty;
}

type stmt_id = int

(* Methods are named by owning class + method name; TJ has no overloading. *)
type method_qname = { mq_class : Types.class_name; mq_name : Types.method_name }

let pp_method_qname ppf m =
  Format.fprintf ppf "%s.%s" m.mq_class m.mq_name

let method_qname_to_string m = Format.asprintf "%a" pp_method_qname m

let equal_method_qname a b =
  String.equal a.mq_class b.mq_class && String.equal a.mq_name b.mq_name

let compare_method_qname a b =
  match String.compare a.mq_class b.mq_class with
  | 0 -> String.compare a.mq_name b.mq_name
  | c -> c

type call_kind =
  | Virtual of Types.method_name        (* dispatch on args.(0) *)
  | Static of method_qname
  | Special of method_qname             (* constructor invocation *)

type label = int

type instr_kind =
  | Const of var * Types.const
  | Move of var * var
  | Binop of var * Types.binop * var * var
  | Unop of var * Types.unop * var
  | New of var * Types.class_name
  | New_array of var * Types.ty * var              (* elem type, length *)
  | Load of var * var * Types.field_name           (* x = y.f *)
  | Store of var * Types.field_name * var          (* x.f = y *)
  | Array_load of var * var * var                  (* x = y[i] *)
  | Array_store of var * var * var                 (* x[i] = y *)
  | Static_load of var * Types.class_name * Types.field_name
  | Static_store of Types.class_name * Types.field_name * var
  | Call of { lhs : var option; kind : call_kind; args : var list }
  | Cast of var * Types.ty * var
  | Instance_of of var * Types.ty * var
  | Array_length of var * var                      (* x = y.length *)
  | Phi of var * (label * var) list
  | Nop

type instr = {
  i_id : stmt_id;
  i_kind : instr_kind;
  i_loc : Loc.t;
}

type term_kind =
  | Goto of label
  | If of var * label * label            (* then-target, else-target *)
  | Return of var option
  | Throw of var

type term = {
  t_id : stmt_id;
  t_kind : term_kind;
  t_loc : Loc.t;
}

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : term;
}

type intrinsic =
  | Str_index_of          (* String.indexOf(String) : int *)
  | Str_substring         (* String.substring(int, int) : String *)
  | Str_length            (* String.length() : int *)
  | Str_equals            (* String.equals(String) : boolean *)
  | Str_char_at           (* String.charAt(int) : String *)
  | Str_char_code_at      (* String.charCodeAt(int) : int *)
  | Str_starts_with       (* String.startsWith(String) : boolean *)
  | Stream_init           (* InputStream.<init>(String) *)
  | Stream_read_line      (* InputStream.readLine() : String *)
  | Stream_eof            (* InputStream.eof() : boolean *)
  | Top_print             (* print(x) *)
  | Top_parse_int         (* parseInt(String) : int *)
  | Top_itoa              (* itoa(int) : String *)
  | Top_random            (* random(int) : int, in [0, n) *)

(* Does the intrinsic allocate a fresh object for its result?  Needed by the
   points-to analysis: such call sites act as allocation sites. *)
let intrinsic_allocates = function
  | Str_substring | Str_char_at | Stream_read_line | Top_itoa -> Some Types.string_class
  | Str_index_of | Str_length | Str_equals | Str_char_code_at
  | Str_starts_with | Stream_init | Stream_eof | Top_print | Top_parse_int
  | Top_random -> None

type body =
  | Body of { mutable blocks : block array; entry : label }
  | Intrinsic of intrinsic
  | Abstract                       (* declared but bodyless (builtins) *)

type meth = {
  m_qname : method_qname;
  m_static : bool;
  m_params : var list;                  (* this first for instance methods *)
  m_param_tys : Types.ty list;
  m_ret_ty : Types.ty;
  mutable m_vars : var_info array;      (* indexed by var *)
  mutable m_body : body;
  m_loc : Loc.t;
}

let var_info (m : meth) (v : var) : var_info = m.m_vars.(v)

let var_name (m : meth) (v : var) : string =
  let vi = var_info m v in
  match vi.vi_kind with
  | Vssa _ -> vi.vi_name
  | Vparam _ | Vlocal | Vtemp -> vi.vi_name

let blocks_exn (m : meth) : block array =
  match m.m_body with
  | Body { blocks; _ } -> blocks
  | Intrinsic _ | Abstract ->
    invalid_arg
      (Printf.sprintf "Instr.blocks_exn: %s has no body"
         (method_qname_to_string m.m_qname))

let entry_label (m : meth) : label =
  match m.m_body with
  | Body { entry; _ } -> entry
  | Intrinsic _ | Abstract -> 0

let has_body (m : meth) : bool =
  match m.m_body with Body _ -> true | Intrinsic _ | Abstract -> false

(* Def/use sets.  [uses_of_instr] returns all variable uses; the dependence
   builder distinguishes base-pointer uses via [classified_uses]. *)

let def_of_instr (i : instr) : var option =
  match i.i_kind with
  | Const (x, _) | Move (x, _) | Binop (x, _, _, _) | Unop (x, _, _)
  | New (x, _) | New_array (x, _, _) | Load (x, _, _)
  | Array_load (x, _, _) | Static_load (x, _, _)
  | Cast (x, _, _) | Instance_of (x, _, _) | Array_length (x, _)
  | Phi (x, _) -> Some x
  | Store _ | Array_store _ | Static_store _ -> None
  | Call { lhs; _ } -> lhs
  | Nop -> None

let uses_of_instr (i : instr) : var list =
  match i.i_kind with
  | Const _ | New _ -> []
  | Move (_, y) | Unop (_, _, y) | Cast (_, _, y) | Instance_of (_, _, y)
  | New_array (_, _, y) | Array_length (_, y) -> [ y ]
  | Binop (_, _, y, z) -> [ y; z ]
  | Load (_, y, _) -> [ y ]
  | Store (x, _, y) -> [ x; y ]
  | Array_load (_, y, idx) -> [ y; idx ]
  | Array_store (a, idx, y) -> [ a; idx; y ]
  | Static_load _ -> []
  | Static_store (_, _, y) -> [ y ]
  | Call { args; _ } -> args
  | Phi (_, ins) -> List.map snd ins
  | Nop -> []

(* A use is either a direct (value) use or a base-pointer / index use in a
   heap dereference.  The distinction is the crux of thin slicing (paper,
   section 2 and 3). *)
type use_class =
  | Use_value
  | Use_base          (* dereferenced base pointer of a field/array access *)
  | Use_index         (* array index *)

let classified_uses (i : instr) : (var * use_class) list =
  match i.i_kind with
  | Const _ | New _ | Static_load _ | Nop -> []
  | Move (_, y) | Unop (_, _, y) | Cast (_, _, y) | Instance_of (_, _, y) ->
    [ (y, Use_value) ]
  | New_array (_, _, n) -> [ (n, Use_value) ]
  | Binop (_, _, y, z) -> [ (y, Use_value); (z, Use_value) ]
  | Load (_, y, _) -> [ (y, Use_base) ]
  | Array_length (_, y) -> [ (y, Use_base) ]
  | Store (x, _, y) -> [ (x, Use_base); (y, Use_value) ]
  | Array_load (_, y, idx) -> [ (y, Use_base); (idx, Use_index) ]
  | Array_store (a, idx, y) -> [ (a, Use_base); (idx, Use_index); (y, Use_value) ]
  | Static_store (_, _, y) -> [ (y, Use_value) ]
  | Call { args; _ } -> List.map (fun a -> (a, Use_value)) args
  | Phi (_, ins) -> List.map (fun (_, v) -> (v, Use_value)) ins

let uses_of_term (t : term) : var list =
  match t.t_kind with
  | Goto _ -> []
  | If (v, _, _) -> [ v ]
  | Return (Some v) -> [ v ]
  | Return None -> []
  | Throw v -> [ v ]

let term_targets (t : term) : label list =
  match t.t_kind with
  | Goto l -> [ l ]
  | If (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Return _ | Throw _ -> []

(* Fresh-variable allocation on a method under construction. *)
let add_var (m : meth) (vi : var_info) : var =
  let n = Array.length m.m_vars in
  let arr = Array.make (n + 1) vi in
  Array.blit m.m_vars 0 arr 0 n;
  m.m_vars <- arr;
  n

let iter_instrs (m : meth) (f : label -> instr -> unit) : unit =
  match m.m_body with
  | Intrinsic _ | Abstract -> ()
  | Body { blocks; _ } ->
    Array.iter (fun b -> List.iter (f b.b_label) b.b_instrs) blocks

let iter_terms (m : meth) (f : label -> term -> unit) : unit =
  match m.m_body with
  | Intrinsic _ | Abstract -> ()
  | Body { blocks; _ } -> Array.iter (fun b -> f b.b_label b.b_term) blocks

let fold_instrs (m : meth) (f : 'a -> instr -> 'a) (init : 'a) : 'a =
  let acc = ref init in
  iter_instrs m (fun _ i -> acc := f !acc i);
  !acc
