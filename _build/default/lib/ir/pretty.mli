(** Human-readable printing of the IR: variables, instructions, methods
    and whole programs.  Used by the CLI to display slices and by tests. *)

val pp_var : Instr.meth -> Format.formatter -> Instr.var -> unit
val pp_call_kind : Format.formatter -> Instr.call_kind -> unit
val pp_instr_kind : Instr.meth -> Format.formatter -> Instr.instr_kind -> unit
val pp_term_kind : Instr.meth -> Format.formatter -> Instr.term_kind -> unit
val pp_instr : Instr.meth -> Format.formatter -> Instr.instr -> unit
val pp_term : Instr.meth -> Format.formatter -> Instr.term -> unit
val pp_meth : Format.formatter -> Instr.meth -> unit
val pp_program : Format.formatter -> Program.t -> unit
val instr_to_string : Instr.meth -> Instr.instr -> string
val meth_to_string : Instr.meth -> string

(** One-line rendering of a statement id, with source location — how
    slices are reported to the user. *)
val stmt_to_string :
  Program.t ->
  (Instr.stmt_id, Program.stmt_info) Hashtbl.t ->
  Instr.stmt_id ->
  string
