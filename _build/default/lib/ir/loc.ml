(* Source locations attached to every statement so that slices can be
   reported back at the level the user reads: file + line. *)

type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }

let none = { file = "<none>"; line = 0; col = 0 }

let is_none l = l.line = 0 && l.file = "<none>"

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf l =
  if is_none l then Format.pp_print_string ppf "<?>"
  else Format.fprintf ppf "%s:%d" l.file l.line

let to_string l = Format.asprintf "%a" pp l
