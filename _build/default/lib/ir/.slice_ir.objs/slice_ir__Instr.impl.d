lib/ir/instr.ml: Array Format List Loc Printf String Types
