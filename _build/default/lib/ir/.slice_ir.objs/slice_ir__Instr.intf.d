lib/ir/instr.mli: Format Loc Types
