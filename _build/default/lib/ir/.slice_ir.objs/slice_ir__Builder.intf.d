lib/ir/builder.mli: Instr Loc Program Types
