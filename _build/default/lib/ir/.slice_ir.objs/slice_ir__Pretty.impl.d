lib/ir/pretty.ml: Array Format Hashtbl Instr List Loc Printf Program Types
