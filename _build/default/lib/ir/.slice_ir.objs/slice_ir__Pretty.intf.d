lib/ir/pretty.mli: Format Hashtbl Instr Program
