lib/ir/loc.ml: Format String
