lib/ir/builder.ml: Array Instr List Loc Printf Program Types
