lib/ir/cfg.mli: Instr
