lib/ir/ssa.ml: Array Cfg Dominance Hashtbl Instr List Printf Program
