lib/ir/program.ml: Array Hashtbl Instr List Loc Option Printf String Types
