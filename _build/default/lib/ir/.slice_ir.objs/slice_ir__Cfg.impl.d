lib/ir/cfg.ml: Array Instr List
