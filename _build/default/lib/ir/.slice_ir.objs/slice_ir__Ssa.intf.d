lib/ir/ssa.mli: Instr Program
