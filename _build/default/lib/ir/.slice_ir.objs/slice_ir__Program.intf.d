lib/ir/program.mli: Hashtbl Instr Loc Types
