lib/ir/types.ml: Format String
