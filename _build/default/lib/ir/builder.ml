(* Imperative construction of method bodies.  Used by the frontend's
   lowering pass and by tests that build IR programs directly.

   The builder maintains a current block; emitting after the current block
   has been terminated silently opens a fresh (possibly unreachable) block,
   which matches how lowering handles code following a return. *)

type proto_block = {
  pb_label : Instr.label;
  mutable pb_instrs : Instr.instr list; (* reversed *)
  mutable pb_term : Instr.term option;
}

type t = {
  program : Program.t;
  meth : Instr.meth;
  mutable blocks : proto_block list;    (* reversed *)
  mutable nblocks : int;
  mutable current : proto_block;
  mutable finished : bool;
}

let start (program : Program.t) ~(qname : Instr.method_qname) ~(static : bool)
    ~(params : (string * Types.ty) list) ~(ret : Types.ty) ~(loc : Loc.t) : t =
  let vars =
    Array.of_list
      (List.mapi
         (fun i (name, ty) ->
           { Instr.vi_name = name; vi_kind = Instr.Vparam i; vi_ty = ty })
         params)
  in
  let meth =
    { Instr.m_qname = qname;
      m_static = static;
      m_params = List.mapi (fun i _ -> i) params;
      m_param_tys = List.map snd params;
      m_ret_ty = ret;
      m_vars = vars;
      m_body = Instr.Abstract (* replaced in [finish] *);
      m_loc = loc }
  in
  let entry = { pb_label = 0; pb_instrs = []; pb_term = None } in
  { program; meth; blocks = [ entry ]; nblocks = 1; current = entry; finished = false }

let meth (b : t) : Instr.meth = b.meth
let program (b : t) : Program.t = b.program

let fresh_var (b : t) ~(name : string) ~(kind : Instr.var_kind) ~(ty : Types.ty) :
    Instr.var =
  Instr.add_var b.meth { Instr.vi_name = name; vi_kind = kind; vi_ty = ty }

let fresh_temp (b : t) (ty : Types.ty) : Instr.var =
  let n = Array.length b.meth.Instr.m_vars in
  fresh_var b ~name:(Printf.sprintf "t%d" n) ~kind:Instr.Vtemp ~ty

let fresh_local (b : t) (name : string) (ty : Types.ty) : Instr.var =
  fresh_var b ~name ~kind:Instr.Vlocal ~ty

let new_block (b : t) : Instr.label =
  let label = b.nblocks in
  b.nblocks <- label + 1;
  b.blocks <- { pb_label = label; pb_instrs = []; pb_term = None } :: b.blocks;
  label

let find_block (b : t) (l : Instr.label) : proto_block =
  List.find (fun pb -> pb.pb_label = l) b.blocks

let switch_to (b : t) (l : Instr.label) : unit = b.current <- find_block b l

let current_label (b : t) : Instr.label = b.current.pb_label

let is_terminated (b : t) : bool = b.current.pb_term <> None

let emit (b : t) ?(loc = Loc.none) (k : Instr.instr_kind) : Instr.stmt_id =
  if is_terminated b then switch_to b (new_block b);
  let id = Program.fresh_stmt_id b.program in
  b.current.pb_instrs <- { Instr.i_id = id; i_kind = k; i_loc = loc } :: b.current.pb_instrs;
  id

let terminate (b : t) ?(loc = Loc.none) (k : Instr.term_kind) : Instr.stmt_id =
  if is_terminated b then begin
    (* Unreachable terminator (e.g. implicit goto after an explicit return):
       park it in a fresh dead block so ids stay consistent. *)
    switch_to b (new_block b)
  end;
  let id = Program.fresh_stmt_id b.program in
  b.current.pb_term <- Some { Instr.t_id = id; t_kind = k; t_loc = loc };
  id

(* Convenience wrappers used heavily by lowering. *)
let const (b : t) ?loc (c : Types.const) ~(ty : Types.ty) : Instr.var =
  let x = fresh_temp b ty in
  ignore (emit b ?loc (Instr.Const (x, c)));
  x

let goto (b : t) ?loc (l : Instr.label) : unit =
  ignore (terminate b ?loc (Instr.Goto l))

let branch (b : t) ?loc (v : Instr.var) ~(then_ : Instr.label)
    ~(else_ : Instr.label) : Instr.stmt_id =
  terminate b ?loc (Instr.If (v, then_, else_))

(* Seal any unterminated block with [return] (void fall-through) and install
   the body into the method record, which is returned.  The method is NOT
   registered in the program (lowering fills pre-registered shells); direct
   users call [finish_and_register]. *)
let finish (b : t) : Instr.meth =
  if b.finished then invalid_arg "Builder.finish: already finished";
  b.finished <- true;
  let seal pb =
    match pb.pb_term with
    | Some t -> t
    | None ->
      { Instr.t_id = Program.fresh_stmt_id b.program;
        t_kind = Instr.Return None;
        t_loc = Loc.none }
  in
  let blocks = Array.make b.nblocks None in
  List.iter (fun pb -> blocks.(pb.pb_label) <- Some pb) b.blocks;
  let blocks =
    Array.map
      (function
        | Some pb ->
          { Instr.b_label = pb.pb_label;
            b_instrs = List.rev pb.pb_instrs;
            b_term = seal pb }
        | None -> assert false)
      blocks
  in
  b.meth.Instr.m_body <- Instr.Body { blocks; entry = 0 };
  b.meth

let finish_and_register (b : t) : Instr.meth =
  let m = finish b in
  Program.add_method b.program m;
  m
