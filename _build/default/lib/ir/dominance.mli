(** Dominator trees and dominance frontiers (Cooper-Harvey-Kennedy).

    The computation is expressed over an abstract rooted digraph so the
    same code serves dominators (forward CFG from the entry, for SSA) and
    postdominators (reverse CFG from a virtual exit, for control
    dependence). *)

type graph = {
  num_nodes : int;
  entry : int;
  preds : int -> int list;
  succs : int -> int list;
}

type t = {
  graph : graph;
  idom : int array;
      (** [idom.(v)] is the immediate dominator of [v]; [idom.(entry) =
          entry]; [-1] for nodes unreachable from the entry *)
  rpo_num : int array;
  rpo : int list;
}

(** The forward CFG, rooted at the method entry. *)
val forward_graph : Cfg.t -> graph

(** The reversed CFG with a virtual exit node appended at index
    [num_blocks], which becomes the root.  Blocks on paths that never
    leave the method (infinite loops) remain unreachable and get no
    postdominator. *)
val backward_graph : Cfg.t -> graph

val compute : graph -> t

(** [idom d v] is [None] for the entry and for unreachable nodes. *)
val idom : t -> int -> int option

val reachable : t -> int -> bool

(** Reflexive dominance test, by walking the idom chain. *)
val dominates : t -> dom:int -> node:int -> bool

(** Children lists of the dominator tree. *)
val dom_tree : t -> int list array

(** Dominance frontiers (Cytron et al.).  On a [backward_graph] this
    computes control-dependence governors: block [b] is control dependent
    on every block in its frontier. *)
val dominance_frontiers : t -> int list array
