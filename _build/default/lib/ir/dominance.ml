(* Dominator trees and dominance frontiers, via the Cooper-Harvey-Kennedy
   iterative algorithm ("A Simple, Fast Dominance Algorithm").

   The computation is expressed over an abstract rooted digraph so that the
   same code computes dominators (forward CFG from the entry) and
   postdominators (reverse CFG from a virtual exit). *)

type graph = {
  num_nodes : int;
  entry : int;
  preds : int -> int list;
  succs : int -> int list;
}

type t = {
  graph : graph;
  (* [idom.(v)] is the immediate dominator of [v]; [idom.(entry) = entry];
     [-1] for nodes unreachable from the entry. *)
  idom : int array;
  (* reverse postorder position of each node; [-1] if unreachable *)
  rpo_num : int array;
  rpo : int list;
}

let forward_graph (g : Cfg.t) : graph =
  { num_nodes = Cfg.num_blocks g;
    entry = g.Cfg.entry;
    preds = (fun l -> Cfg.predecessors g l);
    succs = (fun l -> Cfg.successors g l) }

(* Reverse CFG with a virtual exit node appended at index [num_blocks].
   Every method exit (return/throw block) gets an edge to the virtual exit.
   Blocks on paths that never leave the method (infinite loops) remain
   unreachable in this graph and get no postdominator. *)
let backward_graph (g : Cfg.t) : graph =
  let n = Cfg.num_blocks g in
  let virtual_exit = n in
  (* In the reversed orientation the virtual exit is the entry: its
     successors are the method's exit blocks, and each exit block gains the
     virtual exit as a predecessor. *)
  let preds l =
    if l = virtual_exit then []
    else if List.mem l g.Cfg.exits then virtual_exit :: Cfg.successors g l
    else Cfg.successors g l
  in
  let succs l =
    if l = virtual_exit then g.Cfg.exits else Cfg.predecessors g l
  in
  { num_nodes = n + 1; entry = virtual_exit; preds; succs }

let compute_rpo (g : graph) : int list =
  let visited = Array.make g.num_nodes false in
  let order = ref [] in
  let rec go v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter go (g.succs v);
      order := v :: !order
    end
  in
  go g.entry;
  !order

let compute (g : graph) : t =
  let rpo = compute_rpo g in
  let rpo_num = Array.make g.num_nodes (-1) in
  List.iteri (fun i v -> rpo_num.(v) <- i) rpo;
  let idom = Array.make g.num_nodes (-1) in
  idom.(g.entry) <- g.entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> g.entry then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) <> -1) (g.preds v)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(v) <> new_idom then begin
              idom.(v) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { graph = g; idom; rpo_num; rpo }

let idom (d : t) (v : int) : int option =
  if v = d.graph.entry || d.idom.(v) = -1 then None else Some d.idom.(v)

let reachable (d : t) (v : int) : bool = d.idom.(v) <> -1

(* Reflexive dominance test by walking the idom chain. *)
let dominates (d : t) ~(dom : int) ~(node : int) : bool =
  if not (reachable d node) then false
  else begin
    let rec up v = if v = dom then true else if v = d.graph.entry then false else up d.idom.(v) in
    up node
  end

(* Children lists of the dominator tree. *)
let dom_tree (d : t) : int list array =
  let children = Array.make d.graph.num_nodes [] in
  Array.iteri
    (fun v iv ->
      if iv <> -1 && v <> d.graph.entry then children.(iv) <- v :: children.(iv))
    d.idom;
  Array.map List.rev children

(* Dominance frontiers (Cytron et al.): [df.(b)] is the set of nodes where
   b's dominance stops. *)
let dominance_frontiers (d : t) : int list array =
  let n = d.graph.num_nodes in
  let df = Array.make n [] in
  let add b v = if not (List.mem v df.(b)) then df.(b) <- v :: df.(b) in
  for v = 0 to n - 1 do
    if reachable d v then begin
      let preds = List.filter (fun p -> reachable d p) (d.graph.preds v) in
      if List.length preds >= 2 then
        (* Walking up from each predecessor must reach idom(v), since
           idom(v) dominates every predecessor of v. *)
        List.iter
          (fun p ->
            let rec runner b =
              if b <> d.idom.(v) then begin
                add b v;
                runner d.idom.(b)
              end
            in
            runner p)
          preds
    end
  done;
  df
