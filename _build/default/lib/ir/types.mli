(** Types and primitive operators of the TJ language (a Java subset).

    The type language mirrors what the slicing analyses need from Java
    bytecode: primitives, classes with single inheritance, and covariant
    arrays.  [Tnull] is the type of the [null] literal, a subtype of every
    reference type. *)

type class_name = string
type field_name = string
type method_name = string

type ty =
  | Tint
  | Tbool
  | Tvoid
  | Tnull
  | Tclass of class_name
  | Tarray of ty

(** Built-in classes. *)

val object_class : class_name
val string_class : class_name
val input_stream_class : class_name

(** The synthetic class owning free functions of a compilation unit. *)
val toplevel_class : class_name

(** The internal name of constructors ("<init>", as in bytecode). *)
val constructor_name : method_name

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
val equal_ty : ty -> ty -> bool
val is_reference : ty -> bool

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge
  | Eq | Ne
  | And | Or
  | Concat  (** string concatenation, produced by the typechecker for [+] *)

type unop = Neg | Not

type const =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Cnull

val pp_binop : Format.formatter -> binop -> unit
val pp_unop : Format.formatter -> unop -> unit
val pp_const : Format.formatter -> const -> unit
