(* Human-readable printing of the IR: variables, instructions, methods and
   whole programs.  Used by the CLI to display slices and by tests. *)

open Format

let pp_var (m : Instr.meth) ppf (v : Instr.var) =
  fprintf ppf "%s" (Instr.var_name m v)

let pp_call_kind ppf = function
  | Instr.Virtual name -> fprintf ppf "virtual %s" name
  | Instr.Static mq -> fprintf ppf "static %a" Instr.pp_method_qname mq
  | Instr.Special mq -> fprintf ppf "special %a" Instr.pp_method_qname mq

let pp_instr_kind (m : Instr.meth) ppf (k : Instr.instr_kind) =
  let var = pp_var m in
  match k with
  | Instr.Const (x, c) -> fprintf ppf "%a = %a" var x Types.pp_const c
  | Instr.Move (x, y) -> fprintf ppf "%a = %a" var x var y
  | Instr.Binop (x, op, y, z) ->
    fprintf ppf "%a = %a %a %a" var x var y Types.pp_binop op var z
  | Instr.Unop (x, op, y) -> fprintf ppf "%a = %a%a" var x Types.pp_unop op var y
  | Instr.New (x, c) -> fprintf ppf "%a = new %s" var x c
  | Instr.New_array (x, t, n) ->
    fprintf ppf "%a = new %a[%a]" var x Types.pp_ty t var n
  | Instr.Load (x, y, f) -> fprintf ppf "%a = %a.%s" var x var y f
  | Instr.Store (x, f, y) -> fprintf ppf "%a.%s = %a" var x f var y
  | Instr.Array_load (x, y, i) -> fprintf ppf "%a = %a[%a]" var x var y var i
  | Instr.Array_store (a, i, y) -> fprintf ppf "%a[%a] = %a" var a var i var y
  | Instr.Static_load (x, c, f) -> fprintf ppf "%a = %s.%s" var x c f
  | Instr.Static_store (c, f, y) -> fprintf ppf "%s.%s = %a" c f var y
  | Instr.Call { lhs; kind; args } ->
    (match lhs with Some x -> fprintf ppf "%a = " var x | None -> ());
    fprintf ppf "call %a(%a)" pp_call_kind kind
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") var)
      args
  | Instr.Cast (x, t, y) -> fprintf ppf "%a = (%a) %a" var x Types.pp_ty t var y
  | Instr.Instance_of (x, t, y) ->
    fprintf ppf "%a = %a instanceof %a" var x var y Types.pp_ty t
  | Instr.Array_length (x, y) -> fprintf ppf "%a = %a.length" var x var y
  | Instr.Phi (x, ins) ->
    fprintf ppf "%a = phi(%a)" var x
      (pp_print_list
         ~pp_sep:(fun ppf () -> fprintf ppf ", ")
         (fun ppf (l, v) -> fprintf ppf "B%d:%a" l var v))
      ins
  | Instr.Nop -> fprintf ppf "nop"

let pp_term_kind (m : Instr.meth) ppf (k : Instr.term_kind) =
  let var = pp_var m in
  match k with
  | Instr.Goto l -> fprintf ppf "goto B%d" l
  | Instr.If (v, l1, l2) -> fprintf ppf "if %a then B%d else B%d" var v l1 l2
  | Instr.Return (Some v) -> fprintf ppf "return %a" var v
  | Instr.Return None -> fprintf ppf "return"
  | Instr.Throw v -> fprintf ppf "throw %a" var v

let pp_instr (m : Instr.meth) ppf (i : Instr.instr) =
  fprintf ppf "[%d] %a" i.Instr.i_id (pp_instr_kind m) i.Instr.i_kind

let pp_term (m : Instr.meth) ppf (t : Instr.term) =
  fprintf ppf "[%d] %a" t.Instr.t_id (pp_term_kind m) t.Instr.t_kind

let pp_meth ppf (m : Instr.meth) =
  fprintf ppf "@[<v>method %a(%a) : %a%s@,"
    Instr.pp_method_qname m.Instr.m_qname
    (pp_print_list
       ~pp_sep:(fun ppf () -> fprintf ppf ", ")
       (fun ppf v ->
         fprintf ppf "%s : %a" (Instr.var_name m v) Types.pp_ty
           (Instr.var_info m v).Instr.vi_ty))
    m.Instr.m_params Types.pp_ty m.Instr.m_ret_ty
    (if m.Instr.m_static then " [static]" else "");
  (match m.Instr.m_body with
  | Instr.Intrinsic _ -> fprintf ppf "  <intrinsic>@,"
  | Instr.Abstract -> fprintf ppf "  <abstract>@,"
  | Instr.Body { blocks; entry } ->
    Array.iter
      (fun b ->
        fprintf ppf "  B%d%s:@," b.Instr.b_label
          (if b.Instr.b_label = entry then " (entry)" else "");
        List.iter (fun i -> fprintf ppf "    %a@," (pp_instr m) i) b.Instr.b_instrs;
        fprintf ppf "    %a@," (pp_term m) b.Instr.b_term)
      blocks);
  fprintf ppf "@]"

let pp_program ppf (p : Program.t) =
  Program.iter_classes p (fun ci ->
      if not ci.Program.c_builtin then begin
        fprintf ppf "class %s" ci.Program.c_name;
        (match ci.Program.c_super with
        | Some s when s <> Types.object_class -> fprintf ppf " extends %s" s
        | Some _ | None -> ());
        fprintf ppf " {@.";
        List.iter
          (fun (f, t) -> fprintf ppf "  %a %s;@." Types.pp_ty t f)
          ci.Program.c_fields;
        List.iter
          (fun (f, t) -> fprintf ppf "  static %a %s;@." Types.pp_ty t f)
          ci.Program.c_static_fields;
        fprintf ppf "}@."
      end);
  Program.iter_methods p (fun m ->
      if Instr.has_body m then fprintf ppf "%a@." pp_meth m)

let instr_to_string (m : Instr.meth) (i : Instr.instr) =
  asprintf "%a" (pp_instr m) i

let meth_to_string (m : Instr.meth) = asprintf "%a" pp_meth m

(* One-line rendering of a statement id, with source location, used when a
   slice is reported to the user. *)
let stmt_to_string (p : Program.t)
    (tbl : (Instr.stmt_id, Program.stmt_info) Hashtbl.t) (id : Instr.stmt_id) :
    string =
  match Hashtbl.find_opt tbl id with
  | None -> Printf.sprintf "<unknown stmt %d>" id
  | Some si ->
    let m = Program.find_method_exn p si.Program.s_method in
    let body =
      match si.Program.s_site with
      | Program.Site_instr i -> asprintf "%a" (pp_instr_kind m) i.Instr.i_kind
      | Program.Site_term t -> asprintf "%a" (pp_term_kind m) t.Instr.t_kind
    in
    asprintf "%a: [%a] %s" Loc.pp (Program.stmt_loc si) Instr.pp_method_qname
      si.Program.s_method body
