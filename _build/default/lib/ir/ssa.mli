(** SSA construction (Cytron et al.): phi insertion at iterated dominance
    frontiers followed by stack-based renaming over the dominator tree.

    After conversion every variable has exactly one definition, so def-use
    chains are exact — the paper computes local data dependences "flow
    sensitively" by operating on SSA form (section 5.1).  Statement ids of
    existing instructions are preserved; phi instructions receive fresh
    ids from the program's counter. *)

(** Internal error for scoping violations that the typechecker should have
    rejected (use of a variable on a path without a definition). *)
exception Ssa_error of string

val is_ssa_var : Instr.meth -> Instr.var -> bool

(** Remove phi instructions whose results never reach a real (non-phi)
    use, including dead phi cycles through loop headers.  Called by
    [convert]; exposed for tests. *)
val prune_dead_phis : Instr.meth -> unit

(** Convert a method to SSA form in place.  No-op on intrinsic and
    abstract methods. *)
val convert : Program.t -> Instr.meth -> unit

(** Check the single-definition invariant; [Error msg] names the offending
    variable. *)
val check : Instr.meth -> (unit, string) result
