(* Table 2 of the paper: the debugging tasks, in the paper's row order. *)

let tasks : Task.t list =
  Prog_nanoxml.tasks @ Prog_jtopas.tasks @ Prog_ant.tasks @ Prog_xmlsec.tasks

(* The excluded xml-security-style bug where no slicer helps (section 6.2);
   kept out of the table, exercised separately. *)
let unhelpful = Prog_xmlsec.unhelpful_task
