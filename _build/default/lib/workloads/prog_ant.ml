(* The ant-like benchmark: a miniature build tool with named targets,
   dependency resolution, and ${property} substitution.  Mirrors the four
   SIR ant debugging tasks of Table 2, including ant-3 whose buggy
   function has many return statements, each of which is a candidate
   control dependence (the paper counts one per return). *)

let base =
  Runtime_lib.prelude
  ^ {|class BuildException {
}
class Target {
  String name;
  Vector depends;
  Vector commands;
  boolean executed;
  Target(String n) {
    this.name = n;
    this.depends = new Vector();
    this.commands = new Vector();
    this.executed = false;
  }
  void addDepend(String d) { this.depends.add(d); }
  void addCommand(String c) { this.commands.add(c); }
}
class Project {
  HashMap targets;
  HashMap properties;
  Vector executionLog;
  Project() {
    this.targets = new HashMap();
    this.properties = new HashMap();
    this.executionLog = new Vector();
  }
  void setProperty(String key, String value) {
    this.properties.put(key, value);
  }
  String getProperty(String key) {
    String v = (String) this.properties.get(key);
    if (v == null) { return "${" + key + "}"; }
    return v;
  }
  void addTarget(Target t) {
    this.targets.put(t.name, t);
  }
  Target findTarget(String name) {
    return (Target) this.targets.get(name);
  }
  String substitute(String cmd) {
    int open = cmd.indexOf("${");
    if (open < 0) { return cmd; }
    int close = cmd.indexOf("}");
    if (close < open) { return cmd; }
    String before = cmd.substring(0, open);
    String key = cmd.substring(open + 2, close);
    String after = cmd.substring(close + 1, cmd.length());
    return before + getProperty(key) + substitute(after);
  }
  void execute(String name) {
    Target t = findTarget(name);
    if (t == null) { throw new BuildException(); }
    if (t.executed) { return; }
    t.executed = true;
    for (int i = 0; i < t.depends.size(); i++) {
      execute((String) t.depends.get(i));
    }
    for (int i = 0; i < t.commands.size(); i++) {
      String cmd = substitute((String) t.commands.get(i));
      this.executionLog.add(t.name + "> " + cmd);
    }
  }
}
class BuildParser {
  InputStream input;
  Project project;
  Target current;
  BuildParser(InputStream s, Project p) {
    this.input = s;
    this.project = p;
    this.current = null;
  }
  int classify(String line) {
    if (line.length() == 0) { return 0; }
    if (line.startsWith("target ")) { return 1; }
    if (line.startsWith("depends ")) { return 2; }
    if (line.startsWith("property ")) { return 3; }
    if (line.startsWith("#")) { return 0; }
    if (this.current == null) { return 0; }
    if (line.startsWith(" ")) { return 4; }
    if (line.startsWith("do ")) { return 5; }
    return 0;
  }
  void parse() {
    while (!this.input.eof()) {
      String line = this.input.readLine();
      int kind = classify(line);
      if (kind == 1) {
        String name = line.substring(7, line.length());
        this.current = new Target(name);
        this.project.addTarget(this.current);
      } else if (kind == 2) {
        this.current.addDepend(line.substring(8, line.length()));
      } else if (kind == 3) {
        String rest = line.substring(9, line.length());
        int eq = rest.indexOf("=");
        String key = rest.substring(0, eq);
        String value = rest.substring(eq + 1, rest.length());
        this.project.setProperty(key, value);
      } else if (kind == 5) {
        this.current.addCommand(line.substring(3, line.length()));
      }
    }
  }
}
void main(String[] args) {
  Project proj = new Project();
  BuildParser parser = new BuildParser(new InputStream(args[0]), proj);
  parser.parse();
  proj.execute("dist");
  for (int i = 0; i < proj.executionLog.size(); i++) {
    print((String) proj.executionLog.get(i));
  }
}
|}

let build_lines =
  [ "property version=1.4";
    "property out=build";
    "target compile";
    "do echo building for ${user}";
    "do javac -d ${out} src";
    "target test";
    "depends compile";
    "do junit ${out}";
    "target dist";
    "depends test";
    "do jar ${out}/app-${version}.jar" ]

let io = ([ "build.txt" ], [ ("build.txt", build_lines) ])

let differs =
  let args, streams = io in
  Task.Differs_from_fixed { args; streams; fixed_src = base }

let paper ~thin ~trad ~controls ~tn ~tr =
  Some
    { Task.p_thin = thin; p_trad = trad; p_controls = controls;
      p_thin_noobj = tn; p_trad_noobj = tr }

let tasks : Task.t list =
  [ (* missing-target guard inverted: execute throws for a target that
       exists; the failure is adjacent to the bug (ant-1: 2/2 with one
       control dependence) *)
    (let src =
       Runtime_lib.patch ~from:"if (t == null) { throw new BuildException(); }"
         ~into:"if (t != null) { throw new BuildException(); }" base
     in
     Task.make ~id:"ant-1" ~kind:Task.Debugging ~src
       ~seed:"throw new BuildException();"
       ~seed_filter:Slice_core.Engine.Only_conditionals
       ~desired:[ "Target t = findTarget(name);" ]
       ~controls:1
       ~validation:
         (let args, streams = io in
          Task.Expect_failure { args; streams })
       ?paper:(paper ~thin:2 ~trad:2 ~controls:1 ~tn:2 ~tr:2) ());
    (* wrong substring offset drops the first command character *)
    (let src =
       Runtime_lib.patch ~from:"this.current.addCommand(line.substring(3, line.length()));"
         ~into:"this.current.addCommand(line.substring(4, line.length()));" base
     in
     Task.make ~id:"ant-2" ~kind:Task.Debugging ~src
       ~seed:"print((String) proj.executionLog.get(i));"
       ~desired:[ "addCommand(line.substring(" ]
       ~validation:differs
       ?paper:(paper ~thin:4 ~trad:5 ~controls:0 ~tn:4 ~tr:5) ());
    (* classify() has many returns; the bug makes command lines unclassified
       so commands are dropped.  Like ant-3, one control dependence per
       return must be examined (the paper counted 15) *)
    (let src =
       Runtime_lib.patch ~from:{|if (line.startsWith("do ")) { return 5; }|}
         ~into:{|if (line.startsWith("do:")) { return 5; }|} base
     in
     Task.make ~id:"ant-3" ~kind:Task.Debugging ~src
       ~seed:"print((String) proj.executionLog.get(i));"
       ~desired:[ {|startsWith("do:")|} ]
       ~controls:8 (* one per return of classify *)
       ~bridges:[ "if (kind == 5)" ]
       ~validation:differs
       ?paper:(paper ~thin:34 ~trad:55 ~controls:15 ~tn:251 ~tr:501) ());
    (* property default returns the raw key instead of the ${key} marker *)
    (let src =
       Runtime_lib.patch ~from:{|if (v == null) { return "${" + key + "}"; }|}
         ~into:{|if (v == null) { return key; }|} base
     in
     Task.make ~id:"ant-4" ~kind:Task.Debugging ~src
       ~seed:"print((String) proj.executionLog.get(i));"
       ~desired:[ "return key;" ]
       ~controls:2
       ~validation:differs
       ?paper:(paper ~thin:3 ~trad:3 ~controls:2 ~tn:3 ~tr:3) ()) ]
