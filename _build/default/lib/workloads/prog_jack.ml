(* The jack-like benchmark: a miniature parser generator.  A grammar is
   read from the input, stored as Rules/Productions/Symbols inside nested
   containers (HashMap of Vectors of Vectors), first-sets are computed,
   and a report is emitted.  Its ten tough casts (Table 3: jack-1..10)
   are downcasts on values retrieved from those containers; the paper's
   jack rows show the strongest dependence on object-sensitive container
   handling (inspection counts exploded by 5.9-16.9x without it). *)

let base =
  Runtime_lib.prelude
  ^ {|class GrammarError {
}
class SymKinds {
  static int TERMINAL = 1;
  static int NONTERMINAL = 2;
}
class Symbol {
  int kind;
  String text;
  Symbol(int k, String t) {
    this.kind = k;
    this.text = t;
  }
}
class Terminal extends Symbol {
  Terminal(String t) { super(SymKinds.TERMINAL, t); }
}
class NonTerminal extends Symbol {
  NonTerminal(String t) { super(SymKinds.NONTERMINAL, t); }
}
class Production {
  Vector syms;
  Production() { this.syms = new Vector(); }
  void addSym(Symbol s) { this.syms.add(s); }
  int arity() { return this.syms.size(); }
}
class Rule {
  String name;
  Vector prods;
  Rule(String n) {
    this.name = n;
    this.prods = new Vector();
  }
  void addProd(Production p) { this.prods.add(p); }
}
class Grammar {
  HashMap rules;
  Vector ruleNames;
  Grammar() {
    this.rules = new HashMap();
    this.ruleNames = new Vector();
    this.rules.put("$meta", "generated-v1");
  }
  void addRule(Rule r) {
    this.rules.put(r.name, r);
    this.ruleNames.add(r.name);
  }
  Rule findRule(String name) {
    Rule r = (Rule) this.rules.get(name);
    if (r == null) { throw new GrammarError(); }
    return r;
  }
}
class GrammarParser {
  InputStream input;
  GrammarParser(InputStream s) { this.input = s; }
  boolean isUpper(int c) { return c >= 65 && c <= 90; }
  Symbol makeSymbol(String word) {
    if (isUpper(word.charCodeAt(0))) {
      return new NonTerminal(word);
    }
    return new Terminal(word);
  }
  Grammar parse() {
    Grammar g = new Grammar();
    while (!this.input.eof()) {
      String line = this.input.readLine();
      int arrow = line.indexOf(":=");
      if (arrow < 0) { throw new GrammarError(); }
      String name = line.substring(0, arrow - 1);
      Rule rule = (Rule) g.rules.get(name);
      if (rule == null) {
        rule = new Rule(name);
        g.addRule(rule);
      }
      Production prod = new Production();
      int i = arrow + 3;
      while (i < line.length()) {
        int end = i;
        while (end < line.length() && line.charCodeAt(end) != 32) {
          end = end + 1;
        }
        String word = line.substring(i, end);
        if (word.length() > 0) {
          prod.addSym(makeSymbol(word));
        }
        i = end + 1;
      }
      rule.addProd(prod);
    }
    return g;
  }
}
class FirstSets {
  Grammar grammar;
  HashMap firsts;
  FirstSets(Grammar g) {
    this.grammar = g;
    this.firsts = new HashMap();
  }
  String firstOf(String ruleName, int depth) {
    if (depth > 8) { return ""; }
    String cached = (String) this.firsts.get(ruleName);
    if (cached != null) { return cached; }
    Rule r = this.grammar.findRule(ruleName);
    String acc = "";
    for (int i = 0; i < r.prods.size(); i++) {
      Production p = (Production) r.prods.get(i);
      if (p.arity() > 0) {
        Symbol s = (Symbol) p.syms.get(0);
        if (s.kind == SymKinds.TERMINAL) {
          Terminal t = (Terminal) s;
          acc = acc + " " + t.text;
        } else {
          NonTerminal nt = (NonTerminal) s;
          acc = acc + firstOf(nt.text, depth + 1);
        }
      }
    }
    this.firsts.put(ruleName, acc);
    return acc;
  }
}
class ReportGen {
  Grammar grammar;
  FirstSets firsts;
  Vector lines;
  ReportGen(Grammar g, FirstSets f) {
    this.grammar = g;
    this.firsts = f;
    this.lines = new Vector();
  }
  String renderSymbol(Symbol s2) {
    int rk = s2.kind;
    if (rk == SymKinds.TERMINAL) {
      Terminal t2 = (Terminal) s2;
      return "'" + t2.text + "'";
    }
    NonTerminal n2 = (NonTerminal) s2;
    return "<" + n2.text + ">";
  }
  void renderRule(String name) {
    Rule r2 = this.grammar.findRule(name);
    for (int j = 0; j < r2.prods.size(); j++) {
      Production p2 = (Production) r2.prods.get(j);
      String rhs = "";
      for (int k = 0; k < p2.syms.size(); k++) {
        Symbol s3 = (Symbol) p2.syms.get(k);
        rhs = rhs + " " + renderSymbol(s3);
      }
      this.lines.add(name + " :=" + rhs);
    }
    String f = (String) this.firsts.firsts.get(name);
    if (f != null) {
      this.lines.add("first(" + name + ") =" + f);
    }
  }
  void run() {
    for (int i = 0; i < this.grammar.ruleNames.size(); i++) {
      String name = (String) this.grammar.ruleNames.get(i);
      this.firsts.firstOf(name, 0);
      renderRule(name);
    }
    for (int i = 0; i < this.lines.size(); i++) {
      print((String) this.lines.get(i));
    }
  }
}
void main(String[] args) {
  GrammarParser parser = new GrammarParser(new InputStream(args[0]));
  Grammar g = parser.parse();
  FirstSets fs = new FirstSets(g);
  ReportGen report = new ReportGen(g, fs);
  report.run();
}
|}

let grammar_lines =
  [ "Expr := Term plus Expr";
    "Expr := Term";
    "Term := Factor star Term";
    "Term := Factor";
    "Factor := lparen Expr rparen";
    "Factor := num";
    "Factor := name" ]

let io = ([ "grammar.txt" ], [ ("grammar.txt", grammar_lines) ])

let validation =
  let args, streams = io in
  Task.Expect_success { args; streams }

let paper ~thin ~trad ~controls ~tn ~tr =
  Some
    { Task.p_thin = thin; p_trad = trad; p_controls = controls;
      p_thin_noobj = tn; p_trad_noobj = tr }

let kind_writes =
  [ "super(SymKinds.TERMINAL, t);"; "super(SymKinds.NONTERMINAL, t);" ]

let cast ?(bridges = []) ~id ~seed ~desired ~controls ~paper:pr () =
  Task.make ~id ~kind:Task.Tough_cast ~src:base ~seed
    ~seed_filter:Slice_core.Engine.Only_casts ~desired ~controls ~bridges
    ~validation ?paper:pr ()

let tasks : Task.t list =
  [ (* rules retrieved from the rules HashMap: the insertion establishes
       the element-type invariant *)
    cast ~id:"jack-1" ~seed:"Rule r = (Rule) this.rules.get(name);"
      ~desired:[ "this.rules.put(r.name, r);" ] ~controls:0
      ~paper:(paper ~thin:18 ~trad:79 ~controls:0 ~tn:303 ~tr:758) ();
    cast ~id:"jack-2" ~seed:"Rule rule = (Rule) g.rules.get(name);"
      ~desired:[ "this.rules.put(r.name, r);" ] ~controls:0
      ~paper:(paper ~thin:57 ~trad:151 ~controls:0 ~tn:339 ~tr:647) ();
    cast ~id:"jack-3" ~seed:"Production p = (Production) r.prods.get(i);"
      ~desired:[ "void addProd(Production p) { this.prods.add(p); }" ] ~controls:0
      ~paper:(paper ~thin:18 ~trad:69 ~controls:0 ~tn:304 ~tr:603) ();
    cast ~id:"jack-4" ~seed:"Symbol s = (Symbol) p.syms.get(0);"
      ~desired:[ "void addSym(Symbol s) { this.syms.add(s); }" ] ~controls:0
      ~paper:(paper ~thin:18 ~trad:79 ~controls:0 ~tn:304 ~tr:759) ();
    (* tag-discriminated casts on symbols *)
    cast ~id:"jack-5" ~seed:"Terminal t = (Terminal) s;"
      ~desired:kind_writes ~controls:1
      ~bridges:[ "if (s.kind == SymKinds.TERMINAL)" ]
      ~paper:(paper ~thin:57 ~trad:151 ~controls:0 ~tn:339 ~tr:647) ();
    cast ~id:"jack-6" ~seed:"NonTerminal nt = (NonTerminal) s;"
      ~desired:kind_writes ~controls:1
      ~bridges:[ "if (s.kind == SymKinds.TERMINAL)" ]
      ~paper:(paper ~thin:35 ~trad:132 ~controls:0 ~tn:338 ~tr:802) ();
    cast ~id:"jack-7" ~seed:"Terminal t2 = (Terminal) s2;"
      ~desired:kind_writes ~controls:1
      ~bridges:[ "if (rk == SymKinds.TERMINAL)" ]
      ~paper:(paper ~thin:35 ~trad:132 ~controls:0 ~tn:338 ~tr:802) ();
    cast ~id:"jack-8" ~seed:"NonTerminal n2 = (NonTerminal) s2;"
      ~desired:kind_writes ~controls:1
      ~bridges:[ "if (rk == SymKinds.TERMINAL)" ]
      ~paper:(paper ~thin:35 ~trad:132 ~controls:0 ~tn:338 ~tr:802) ();
    (* report-side container casts *)
    cast ~id:"jack-9" ~seed:"Production p2 = (Production) r2.prods.get(j);"
      ~desired:[ "void addProd(Production p) { this.prods.add(p); }" ] ~controls:0
      ~paper:(paper ~thin:30 ~trad:79 ~controls:0 ~tn:304 ~tr:759) ();
    cast ~id:"jack-10" ~seed:"Symbol s3 = (Symbol) p2.syms.get(k);"
      ~desired:[ "void addSym(Symbol s) { this.syms.add(s); }" ] ~controls:0
      ~paper:(paper ~thin:57 ~trad:151 ~controls:0 ~tn:339 ~tr:647) () ]
