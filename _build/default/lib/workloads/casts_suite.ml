(* Table 3 of the paper: the tough-cast program-understanding tasks. *)

let tasks : Task.t list =
  Prog_mtrt.tasks @ Prog_jess.tasks @ Prog_javac.tasks @ Prog_jack.tasks
