(* The jtopas-like benchmark: a tokenizer over an input stream with a
   keyword table.  Mirrors the two SIR jtopas debugging tasks of Table 2,
   both of which fail at (or one step from) the buggy statement — the
   paper notes such bugs "can be easily debugged without tool support, but
   we include them for completeness". *)

let base =
  Runtime_lib.prelude
  ^ {|class Token {
  int kind;
  String image;
  int pos;
  Token(int k, String img, int p) {
    this.kind = k;
    this.image = img;
    this.pos = p;
  }
}
class TokenKinds {
  static int WORD = 1;
  static int NUMBER = 2;
  static int PUNCT = 3;
  static int KEYWORD = 4;
}
class Tokenizer {
  InputStream input;
  HashMap keywords;
  Vector tokens;
  int pos;
  Tokenizer(InputStream s) {
    this.input = s;
    this.keywords = new HashMap();
    this.tokens = new Vector();
    this.pos = 0;
    this.keywords.put("if", "kw");
    this.keywords.put("while", "kw");
    this.keywords.put("return", "kw");
  }
  boolean isDigit(int c) { return c >= 48 && c <= 57; }
  boolean isLetter(int c) {
    return (c >= 97 && c <= 122) || (c >= 65 && c <= 90);
  }
  void addToken(int kind, String image) {
    this.tokens.add(new Token(kind, image, this.pos));
    this.pos = this.pos + 1;
  }
  void tokenizeLine(String line) {
    int i = 0;
    while (i < line.length()) {
      int c = line.charCodeAt(i);
      if (isLetter(c)) {
        int start = i;
        while (i < line.length() && isLetter(line.charCodeAt(i))) {
          i = i + 1;
        }
        String word = line.substring(start, i);
        if (this.keywords.get(word) != null) {
          addToken(TokenKinds.KEYWORD, word);
        } else {
          addToken(TokenKinds.WORD, word);
        }
      } else if (isDigit(c)) {
        int start = i;
        while (i < line.length() && isDigit(line.charCodeAt(i))) {
          i = i + 1;
        }
        addToken(TokenKinds.NUMBER, line.substring(start, i));
      } else if (c == 32) {
        i = i + 1;
      } else {
        addToken(TokenKinds.PUNCT, line.charAt(i));
        i = i + 1;
      }
    }
  }
  Vector run() {
    while (!this.input.eof()) {
      tokenizeLine(this.input.readLine());
    }
    return this.tokens;
  }
}
void main(String[] args) {
  Tokenizer t = new Tokenizer(new InputStream(args[0]));
  Vector tokens = t.run();
  String kinds = "";
  for (int i = 0; i < tokens.size(); i++) {
    Token tok = (Token) tokens.get(i);
    kinds = kinds + itoa(tok.kind);
    print("tok " + itoa(tok.pos) + " kind " + itoa(tok.kind) + ": " + tok.image);
  }
  print("kinds: " + kinds);
}
|}

let io = ([ "in.txt" ], [ ("in.txt", [ "if x 12 + while"; "return 7;" ]) ])

let differs =
  let args, streams = io in
  Task.Differs_from_fixed { args; streams; fixed_src = base }

let paper ~thin ~trad ~controls ~tn ~tr =
  Some
    { Task.p_thin = thin; p_trad = trad; p_controls = controls;
      p_thin_noobj = tn; p_trad_noobj = tr }

let tasks : Task.t list =
  [ (* the buggy statement itself throws: a null image dereference at the
       failing line (like jtopas-1, which "fails with a
       NullPointerException" at the bug) *)
    (let src =
       Runtime_lib.patch
         ~from:"this.tokens.add(new Token(kind, image, this.pos));"
         ~into:{|String checked = null; this.tokens.add(new Token(kind, checked.substring(0, 1), this.pos));|}
         base
     in
     Task.make ~id:"jtopas-1" ~kind:Task.Debugging ~src
       ~seed:"checked.substring(0, 1)"
       ~desired:[ "checked.substring(0, 1)" ]
       ~validation:
         (let args, streams = io in
          Task.Expect_failure { args; streams })
       ?paper:(paper ~thin:1 ~trad:1 ~controls:0 ~tn:1 ~tr:1) ());
    (* wrong keyword test: keywords classified as plain words; the desired
       conditional is one control dependence from the printed kind *)
    (let src =
       Runtime_lib.patch ~from:"if (this.keywords.get(word) != null) {"
         ~into:"if (this.keywords.get(word) == null) {" base
     in
     Task.make ~id:"jtopas-2" ~kind:Task.Debugging ~src
       ~seed:{|"tok " + itoa(tok.pos)|}
       ~desired:[ "addToken(TokenKinds.KEYWORD, word);" ]
       ~controls:1
       ~validation:differs
       ?paper:(paper ~thin:2 ~trad:2 ~controls:1 ~tn:2 ~tr:2) ()) ]
