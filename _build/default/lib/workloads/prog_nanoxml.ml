(* The nanoxml-like benchmark: a small XML parser that builds an element
   tree of Vectors and HashMaps.  Mirrors the SIR nanoxml debugging tasks
   (Table 2): the injected bugs "often required tracing a value as it is
   inserted and later retrieved from one or two Vectors".

   Input format, one item per line:
     <tag>        open a child element of the current element
     </>          close the current element (which seals it)
     @key=value   set an attribute of the current element
     anything     append text to the current element *)

let base =
  Runtime_lib.prelude
  ^ {|class SealedException {
}
class XElement {
  String name;
  String text;
  boolean sealed;
  Vector children;
  HashMap attrs;
  XElement(String n) {
    this.name = n;
    this.text = "";
    this.sealed = false;
    this.children = new Vector();
    this.attrs = new HashMap();
  }
  void addChild(XElement c) { this.children.add(c); }
  XElement childAt(int i) { return (XElement) this.children.get(i); }
  int childCount() { return this.children.size(); }
  void setAttr(String k, String v) { this.attrs.put(k, v); }
  String attr(String k) { return (String) this.attrs.get(k); }
  void seal() { this.sealed = true; }
  void appendText(String t) {
    if (this.sealed) { throw new SealedException(); }
    this.text = this.text + t;
  }
}
class TagUtil {
  static String trim(String raw) {
    int start = 0;
    while (start < raw.length() && raw.charCodeAt(start) == 32) {
      start = start + 1;
    }
    int end = raw.length();
    while (end > start && raw.charCodeAt(end - 1) == 32) {
      end = end - 1;
    }
    return raw.substring(start, end);
  }
  static String clean(String raw) {
    String trimmed = trim(raw);
    if (trimmed.startsWith("x:")) {
      return trimmed.substring(2, trimmed.length());
    }
    return trimmed;
  }
  static String decode(String raw) {
    String v = trim(raw);
    if (v.startsWith("'")) {
      return v.substring(1, v.length() - 1);
    }
    return v;
  }
}
class XParser {
  InputStream input;
  Vector log;
  int lineno;
  XParser(InputStream s) {
    this.input = s;
    this.log = new Vector();
    this.lineno = 0;
  }
  void note(String what) {
    this.log.add("line " + itoa(this.lineno) + ": " + what);
  }
  XElement parse() {
    XElement root = new XElement("root");
    Stack open = new Stack();
    open.push(root);
    while (!this.input.eof()) {
      String line = this.input.readLine();
      this.lineno = this.lineno + 1;
      XElement current = (XElement) open.peek();
      if (line.startsWith("</")) {
        XElement closed = (XElement) open.pop();
        closed.seal();
        note("closed element");
      } else if (line.startsWith("<")) {
        int close = line.indexOf(">");
        String raw = line.substring(1, close);
        String tag = TagUtil.clean(raw);
        XElement elem = new XElement(tag);
        current.addChild(elem);
        open.push(elem);
        note("opened element");
      } else if (line.startsWith("@")) {
        int eq = line.indexOf("=");
        String key = TagUtil.clean(line.substring(1, eq));
        String value = TagUtil.decode(line.substring(eq + 1, line.length()));
        current.setAttr(key, value);
        note("attribute " + key);
      } else {
        current.appendText(TagUtil.decode(line));
        note("text chunk");
      }
    }
    return root;
  }
}
class Registry {
  static HashMap instances;
  static void register(String name, Object obj) {
    if (Registry.instances == null) {
      Registry.instances = new HashMap();
    }
    Registry.instances.put(name, obj);
  }
  static Object lookup(String name) {
    return Registry.instances.get(name);
  }
}
class Report {
  XElement root;
  Vector marked;
  Vector lines;
  Report(XElement r) {
    this.root = r;
    this.marked = new Vector();
    this.lines = new Vector();
  }
  void emit(String s) {
    this.lines.add(s);
  }
  void collectMarked(XElement e, Vector acc) {
    if (e.attr("marked") != null) {
      acc.add(e.name);
    }
    for (int i = 0; i < e.childCount(); i++) {
      collectMarked(e.childAt(i), acc);
    }
  }
  void renderElement(XElement e, String indent) {
    emit(indent + "tag: " + e.name);
    String id = e.attr("id");
    if (id != null) {
      emit(indent + "id: " + id);
    }
    String title = e.attr("title");
    if (title == null) { title = e.name; }
    emit(indent + "title: " + title);
    if (e.text.length() > 0) {
      emit(indent + "text: " + e.text);
    }
    for (int i = 0; i < e.childCount(); i++) {
      renderElement(e.childAt(i), indent + "  ");
    }
  }
  void printAll() {
    renderElement(this.root, "");
    collectMarked(this.root, this.marked);
    for (int i = 0; i < this.marked.size(); i++) {
      emit("marked: " + (String) this.marked.get(i));
    }
    for (int i = 0; i < this.lines.size(); i++) {
      print((String) this.lines.get(i));
    }
  }
}
void setup(String file) {
  Registry.register("stream", new InputStream(file));
  Registry.register("mode", "verbose");
}
void main(String[] args) {
  setup(args[0]);
  InputStream s = (InputStream) Registry.lookup("stream");
  XParser p = new XParser(s);
  XElement root = p.parse();
  Registry.register("document", root);
  XElement doc = (XElement) Registry.lookup("document");
  Report r = new Report(doc);
  r.printAll();
}
|}

let doc_lines =
  [ "<book>";
    "@id=b1";
    "@marked=yes";
    "@title=Reflections";
    "intro text";
    "<title>";
    "@id=t1";
    "Total Eclipse";
    "</>";
    "more book text";
    "</>" ]

let io = ([ "doc.xml" ], [ ("doc.xml", doc_lines) ])

let differs =
  let args, streams = io in
  Task.Differs_from_fixed { args; streams; fixed_src = base }

let paper ~thin ~trad ~controls ~tn ~tr =
  Some
    { Task.p_thin = thin; p_trad = trad; p_controls = controls;
      p_thin_noobj = tn; p_trad_noobj = tr }

let tasks : Task.t list =
  [ (* wrong end index when extracting the tag name; the bad String flows
       through the children Vector to the printout *)
    (let src =
       Runtime_lib.patch ~from:"String raw = line.substring(1, close);"
         ~into:"String raw = line.substring(1, close - 1);" base
     in
     Task.make ~id:"nanoxml-1" ~kind:Task.Debugging ~src
       ~seed:"print((String) this.lines.get(i));"
       ~desired:[ "String raw = line.substring(1, close" ]
       ~validation:differs
       ?paper:(paper ~thin:12 ~trad:32 ~controls:0 ~tn:12 ~tr:32) ());
    (* the wrong field is inserted into the accumulator Vector; the value
       then flows through a second Vector lookup before printing *)
    (let src =
       Runtime_lib.patch ~from:"acc.add(e.name);" ~into:"acc.add(e.text);" base
     in
     Task.make ~id:"nanoxml-2" ~kind:Task.Debugging ~src
       ~seed:"print((String) this.lines.get(i));"
       ~desired:[ "acc.add(e." ]
       ~validation:differs
       ?paper:(paper ~thin:25 ~trad:113 ~controls:0 ~tn:431 ~tr:1675) ());
    (* off-by-one when extracting an attribute value, flowing through the
       HashMap to the printout *)
    (let src =
       Runtime_lib.patch
         ~from:"String value = TagUtil.decode(line.substring(eq + 1, line.length()));"
         ~into:"String value = TagUtil.decode(line.substring(eq + 2, line.length()));"
         base
     in
     Task.make ~id:"nanoxml-3" ~kind:Task.Debugging ~src
       ~seed:"print((String) this.lines.get(i));"
       ~desired:[ "line.substring(eq +" ]
       ~validation:differs
       ?paper:(paper ~thin:29 ~trad:123 ~controls:0 ~tn:472 ~tr:1883) ());
    (* flipped null test on the title default; the desired statement is the
       control-dependent assignment, found via one control dependence *)
    (let src =
       Runtime_lib.patch ~from:"if (title == null) { title = e.name; }"
         ~into:"if (title != null) { title = e.name; }" base
     in
     Task.make ~id:"nanoxml-4" ~kind:Task.Debugging ~src
       ~seed:"print((String) this.lines.get(i));"
       ~desired:[ "title = e.name" ]
       ~controls:1
       ~validation:differs
       ?paper:(paper ~thin:12 ~trad:33 ~controls:1 ~tn:17 ~tr:44) ());
    (* the element is erroneously sealed when opened; text appended later
       hits the sealed check and throws.  Understanding the failure needs
       one level of aliasing explanation (which seal() call?) — the paper's
       nanoxml-5 / Figure 4 situation *)
    (let src =
       Runtime_lib.patch ~from:"open.push(elem);"
         ~into:"open.push(elem); elem.seal();" base
     in
     Task.make ~id:"nanoxml-5" ~kind:Task.Debugging ~src
       ~seed:"if (this.sealed) { throw new SealedException(); }"
       ~seed_filter:Slice_core.Engine.Only_conditionals
       ~desired:[ "elem.seal()" ]
       ~controls:1 ~alias_level:1
       ~validation:
         (let args, streams = io in
          Task.Expect_failure { args; streams })
       ?paper:(paper ~thin:35 ~trad:156 ~controls:1 ~tn:159 ~tr:45) ());
    (* text chunks concatenated in the wrong order *)
    (let src =
       Runtime_lib.patch ~from:"this.text = this.text + t;"
         ~into:"this.text = t + this.text;" base
     in
     Task.make ~id:"nanoxml-6" ~kind:Task.Debugging ~src
       ~seed:"print((String) this.lines.get(i));"
       ~desired:[ "= t + this.text" ]
       ~validation:differs
       ?paper:(paper ~thin:12 ~trad:52 ~controls:0 ~tn:35 ~tr:90) ()) ]
