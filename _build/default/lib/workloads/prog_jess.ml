(* The jess-like benchmark: a tiny forward-chaining rule engine over typed
   facts.  Its six tough casts (Table 3: jess-1..6) are tag-discriminated
   downcasts with short producer chains — the paper's jess rows have the
   smallest thin counts (6-13) and ratios near 1, several needing two
   control dependences. *)

let base =
  Runtime_lib.prelude
  ^ {|class EngineError {
}
class ValueKinds {
  static int INT = 1;
  static int SYM = 2;
  static int PAIR = 3;
}
class Value {
  int kind;
  Value(int k) { this.kind = k; }
}
class IntValue extends Value {
  int num;
  IntValue(int n) {
    super(ValueKinds.INT);
    this.num = n;
  }
}
class SymValue extends Value {
  String sym;
  SymValue(String s) {
    super(ValueKinds.SYM);
    this.sym = s;
  }
}
class PairValue extends Value {
  Value first;
  Value second;
  PairValue(Value a, Value b) {
    super(ValueKinds.PAIR);
    this.first = a;
    this.second = b;
  }
}
class Fact {
  String name;
  Value payload;
  Fact(String n, Value p) {
    this.name = n;
    this.payload = p;
  }
}
class WorkingMemory {
  Vector facts;
  WorkingMemory() { this.facts = new Vector(); }
  void assertFact(Fact f) { this.facts.add(f); }
  Fact factAt(int i) { return (Fact) this.facts.get(i); }
  int count() { return this.facts.size(); }
}
class RuleEngine {
  WorkingMemory memory;
  Vector fired;
  RuleEngine(WorkingMemory m) {
    this.memory = m;
    this.fired = new Vector();
  }
  int scoreInt(Value v) {
    int sk = v.kind;
    if (sk == ValueKinds.INT) {
      IntValue iv = (IntValue) v;
      return iv.num * 2;
    }
    return 0;
  }
  String describeSym(Value v) {
    int dk = v.kind;
    if (dk == ValueKinds.SYM) {
      SymValue sv = (SymValue) v;
      return sv.sym;
    }
    return "?";
  }
  int pairDepth(Value v) {
    int pk = v.kind;
    if (pk == ValueKinds.PAIR) {
      PairValue pv = (PairValue) v;
      int a = pairDepth(pv.first);
      int b = pairDepth(pv.second);
      if (a > b) { return a + 1; }
      return b + 1;
    }
    return 1;
  }
  int sumPair(Value v) {
    int uk = v.kind;
    if (uk == ValueKinds.PAIR) {
      PairValue ps = (PairValue) v;
      return sumPair(ps.first) + sumPair(ps.second);
    }
    if (uk == ValueKinds.INT) {
      IntValue leaf = (IntValue) v;
      return leaf.num;
    }
    return 0;
  }
  String headSym(Value v) {
    int hk = v.kind;
    if (hk == ValueKinds.PAIR) {
      PairValue head = (PairValue) v;
      return describeSym(head.first);
    }
    if (hk == ValueKinds.SYM) {
      SymValue direct = (SymValue) v;
      return direct.sym;
    }
    return "none";
  }
  void run() {
    for (int i = 0; i < this.memory.count(); i++) {
      Fact f = this.memory.factAt(i);
      Value v = f.payload;
      int score = scoreInt(v) + sumPair(v) + pairDepth(v);
      this.fired.add(f.name + " " + describeSym(v) + " " + headSym(v)
                     + " = " + itoa(score));
    }
  }
}
void main(String[] args) {
  WorkingMemory memory = new WorkingMemory();
  memory.assertFact(new Fact("age", new IntValue(41)));
  memory.assertFact(new Fact("tag", new SymValue("alpha")));
  memory.assertFact(new Fact("link",
      new PairValue(new SymValue("head"), new IntValue(7))));
  memory.assertFact(new Fact("tree",
      new PairValue(new PairValue(new IntValue(1), new IntValue(2)),
                    new IntValue(3))));
  RuleEngine engine = new RuleEngine(memory);
  engine.run();
  for (int i = 0; i < engine.fired.size(); i++) {
    print((String) engine.fired.get(i));
  }
}
|}

let io = ([], [])

let validation =
  let args, streams = io in
  Task.Expect_success { args; streams }

let paper ~thin ~trad ~controls ~tn ~tr =
  Some
    { Task.p_thin = thin; p_trad = trad; p_controls = controls;
      p_thin_noobj = tn; p_trad_noobj = tr }

let tag_writes =
  [ "super(ValueKinds.INT);"; "super(ValueKinds.SYM);"; "super(ValueKinds.PAIR);" ]

let cast ~id ~seed ~bridge ~controls ~paper:pr =
  Task.make ~id ~kind:Task.Tough_cast ~src:base ~seed
    ~seed_filter:Slice_core.Engine.Only_casts ~desired:tag_writes ~controls
    ~bridges:[ bridge ] ~validation ?paper:pr ()

let tasks : Task.t list =
  [ cast ~id:"jess-1" ~seed:"IntValue iv = (IntValue) v;"
      ~bridge:"if (sk == ValueKinds.INT)"
      ~controls:2
      ~paper:(paper ~thin:6 ~trad:7 ~controls:2 ~tn:6 ~tr:7);
    cast ~id:"jess-2" ~seed:"SymValue sv = (SymValue) v;"
      ~bridge:"if (dk == ValueKinds.SYM)"
      ~controls:0
      ~paper:(paper ~thin:13 ~trad:39 ~controls:0 ~tn:25 ~tr:93);
    cast ~id:"jess-3" ~seed:"PairValue pv = (PairValue) v;"
      ~bridge:"if (pk == ValueKinds.PAIR)"
      ~controls:2
      ~paper:(paper ~thin:6 ~trad:6 ~controls:2 ~tn:6 ~tr:6);
    cast ~id:"jess-4" ~seed:"IntValue leaf = (IntValue) v;"
      ~bridge:"if (uk == ValueKinds.INT)"
      ~controls:2
      ~paper:(paper ~thin:6 ~trad:7 ~controls:2 ~tn:6 ~tr:7);
    cast ~id:"jess-5" ~seed:"PairValue head = (PairValue) v;"
      ~bridge:"if (hk == ValueKinds.PAIR)"
      ~controls:2
      ~paper:(paper ~thin:6 ~trad:7 ~controls:2 ~tn:6 ~tr:7);
    cast ~id:"jess-6" ~seed:"SymValue direct = (SymValue) v;"
      ~bridge:"if (hk == ValueKinds.SYM)"
      ~controls:2
      ~paper:(paper ~thin:6 ~trad:6 ~controls:2 ~tn:6 ~tr:6) ]
