(* The javac-like benchmark: an expression compiler with a Node class
   hierarchy discriminated by an op tag, exactly the shape of the paper's
   Figure 5.  Its four tough casts gave the largest thin-vs-traditional
   ratios in Table 3 (16x-34.2x): the thin slice is the op-tag writes in
   the constructors, while the traditional slice drags in the whole parser
   through the cast operand's base pointers.

   Input: one expression per line, e.g. "( 1 + x ) * 3"; then the variable
   bindings as "let x 5". *)

let base =
  Runtime_lib.prelude
  ^ {|class ParseError {
}
class Ops {
  static int ADD = 1;
  static int SUB = 2;
  static int MUL = 3;
  static int DIV = 4;
  static int NEG = 5;
  static int CONST = 6;
  static int VAR = 7;
}
class Node {
  int op;
  Node(int o) { this.op = o; }
  int getOp() { return this.op; }
}
class BinNode extends Node {
  Node left;
  Node right;
  BinNode(int o, Node l, Node r) {
    super(o);
    this.left = l;
    this.right = r;
  }
}
class AddNode extends BinNode {
  AddNode(Node l, Node r) { super(Ops.ADD, l, r); }
}
class SubNode extends BinNode {
  SubNode(Node l, Node r) { super(Ops.SUB, l, r); }
}
class MulNode extends BinNode {
  MulNode(Node l, Node r) { super(Ops.MUL, l, r); }
}
class DivNode extends BinNode {
  DivNode(Node l, Node r) { super(Ops.DIV, l, r); }
}
class NegNode extends Node {
  Node child;
  NegNode(Node c) {
    super(Ops.NEG);
    this.child = c;
  }
}
class ConstNode extends Node {
  int value;
  ConstNode(int v) {
    super(Ops.CONST);
    this.value = v;
  }
}
class VarNode extends Node {
  String name;
  VarNode(String n) {
    super(Ops.VAR);
    this.name = n;
  }
}
class ExprToken {
  int kind;
  String image;
  ExprToken(int k, String img) {
    this.kind = k;
    this.image = img;
  }
}
class TokKinds {
  static int NUM = 1;
  static int NAME = 2;
  static int PUNCT = 3;
}
class ExprLexer {
  Vector tokens;
  int next;
  ExprLexer(String line) {
    this.tokens = new Vector();
    this.next = 0;
    scan(line);
  }
  boolean isSpace(int c) { return c == 32 || c == 9; }
  boolean isDigit(int c) { return c >= 48 && c <= 57; }
  boolean isNameChar(int c) {
    return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || c == 95;
  }
  String scanNumber(String line, int start) {
    int i = start;
    while (i < line.length() && isDigit(line.charCodeAt(i))) {
      i = i + 1;
    }
    return line.substring(start, i);
  }
  String scanName(String line, int start) {
    int i = start;
    while (i < line.length() && isNameChar(line.charCodeAt(i))) {
      i = i + 1;
    }
    return line.substring(start, i);
  }
  void scan(String line) {
    int i = 0;
    while (i < line.length()) {
      int c = line.charCodeAt(i);
      if (isSpace(c)) {
        i = i + 1;
      } else if (isDigit(c)) {
        String img = scanNumber(line, i);
        this.tokens.add(new ExprToken(TokKinds.NUM, img));
        i = i + img.length();
      } else if (isNameChar(c)) {
        String img = scanName(line, i);
        this.tokens.add(new ExprToken(TokKinds.NAME, img));
        i = i + img.length();
      } else {
        this.tokens.add(new ExprToken(TokKinds.PUNCT, line.charAt(i)));
        i = i + 1;
      }
    }
  }
  ExprToken peekToken() {
    if (this.next >= this.tokens.size()) { return null; }
    return (ExprToken) this.tokens.get(this.next);
  }
  String peek() {
    ExprToken t = peekToken();
    if (t == null) { return null; }
    return t.image;
  }
  String advance() {
    String w = peek();
    this.next = this.next + 1;
    return w;
  }
  boolean accept(String tok) {
    String w = peek();
    if (w != null && w.equals(tok)) {
      this.next = this.next + 1;
      return true;
    }
    return false;
  }
}
class ExprParser {
  ExprLexer lexer;
  ExprParser(ExprLexer lx) { this.lexer = lx; }
  Node parseExpr() {
    Node left = parseTerm();
    while (true) {
      if (this.lexer.accept("+")) {
        left = new AddNode(left, parseTerm());
      } else if (this.lexer.accept("-")) {
        left = new SubNode(left, parseTerm());
      } else {
        return left;
      }
    }
  }
  Node parseTerm() {
    Node left = parseFactor();
    while (true) {
      if (this.lexer.accept("*")) {
        left = new MulNode(left, parseFactor());
      } else if (this.lexer.accept("/")) {
        left = new DivNode(left, parseFactor());
      } else {
        return left;
      }
    }
  }
  Node parseFactor() {
    if (this.lexer.accept("(")) {
      Node inner = parseExpr();
      if (!this.lexer.accept(")")) { throw new ParseError(); }
      return inner;
    }
    if (this.lexer.accept("~")) {
      return new NegNode(parseFactor());
    }
    String w = this.lexer.advance();
    if (w == null) { throw new ParseError(); }
    int c = w.charCodeAt(0);
    if (c >= 48 && c <= 57) {
      return new ConstNode(parseInt(w));
    }
    return new VarNode(w);
  }
}
class Simplifier {
  Node simplify(Node n) {
    int op = n.getOp();
    if (op == Ops.ADD) {
      AddNode add = (AddNode) n;
      Node l = simplify(add.left);
      Node r = simplify(add.right);
      if (isZero(l)) { return r; }
      if (isZero(r)) { return l; }
      return new AddNode(l, r);
    }
    if (op == Ops.MUL) {
      BinNode mul = (BinNode) n;
      Node l = simplify(mul.left);
      Node r = simplify(mul.right);
      if (isOne(l)) { return r; }
      if (isOne(r)) { return l; }
      return new MulNode(l, r);
    }
    return n;
  }
  boolean isZero(Node n) {
    if (n.getOp() == Ops.CONST) {
      ConstNode c = (ConstNode) n;
      return c.value == 0;
    }
    return false;
  }
  boolean isOne(Node n) {
    if (n.getOp() == Ops.CONST) {
      ConstNode c = (ConstNode) n;
      return c.value == 1;
    }
    return false;
  }
}
class Evaluator {
  HashMap env;
  Evaluator() { this.env = new HashMap(); }
  void bind(String name, int value) {
    this.env.put(name, itoa(value));
  }
  int eval(Node n) {
    int k = n.getOp();
    if (k == Ops.CONST) {
      ConstNode c = (ConstNode) n;
      return c.value;
    }
    if (k == Ops.VAR) {
      VarNode v = (VarNode) n;
      String bound = (String) this.env.get(v.name);
      if (bound == null) { throw new ParseError(); }
      return parseInt(bound);
    }
    if (k == Ops.NEG) {
      NegNode neg = (NegNode) n;
      return 0 - eval(neg.child);
    }
    BinNode b = (BinNode) n;
    int l = eval(b.left);
    int r = eval(b.right);
    if (k == Ops.ADD) { return l + r; }
    if (k == Ops.SUB) { return l - r; }
    if (k == Ops.MUL) { return l * r; }
    if (r == 0) { throw new ParseError(); }
    return l / r;
  }
}
void main(String[] args) {
  InputStream input = new InputStream(args[0]);
  Evaluator ev = new Evaluator();
  Simplifier simp = new Simplifier();
  while (!input.eof()) {
    String line = input.readLine();
    if (line.startsWith("let ")) {
      int sp = line.indexOf(" ");
      String rest = line.substring(sp + 1, line.length());
      int sp2 = rest.indexOf(" ");
      String name = rest.substring(0, sp2);
      String value = rest.substring(sp2 + 1, rest.length());
      ev.bind(name, parseInt(value));
    } else {
      ExprParser parser = new ExprParser(new ExprLexer(line));
      Node ast = parser.parseExpr();
      Node reduced = simp.simplify(ast);
      print(line + " = " + itoa(ev.eval(reduced)));
    }
  }
}
|}

let io =
  ( [ "exprs.txt" ],
    [ ("exprs.txt",
       [ "let x 5"; "let y 2"; "( 1 + x ) * 3"; "x * y + 0"; "~ 4 + x / y"; "1 * x" ]) ] )

let validation =
  let args, streams = io in
  Task.Expect_success { args; streams }

let paper ~thin ~trad ~controls ~tn ~tr =
  Some
    { Task.p_thin = thin; p_trad = trad; p_controls = controls;
      p_thin_noobj = tn; p_trad_noobj = tr }

(* Desired statements for every cast: the constructor op writes that
   establish the tag invariant (as for Figure 5: "writes of opcodes in a
   large number of constructors, which could be quickly inspected to
   ensure that a suitable constant is written").  Verifying the cast means
   inspecting ALL of them, so they are all desired. *)
let all_op_writes =
  [ "AddNode(Node l, Node r) { super(Ops.ADD, l, r); }";
    "SubNode(Node l, Node r) { super(Ops.SUB, l, r); }";
    "MulNode(Node l, Node r) { super(Ops.MUL, l, r); }";
    "DivNode(Node l, Node r) { super(Ops.DIV, l, r); }";
    "super(Ops.NEG);";
    "super(Ops.CONST);";
    "super(Ops.VAR);";
    "super(o);" ]
let tasks : Task.t list =
  [ (let t =
       Task.make ~id:"javac-1" ~kind:Task.Tough_cast ~src:base
         ~seed:"AddNode add = (AddNode) n;"
         ~seed_filter:Slice_core.Engine.Only_casts
         ~desired:all_op_writes
         ~controls:1
         ~bridges:[ "if (op == Ops.ADD)" ]
         ~validation
         ?paper:(paper ~thin:57 ~trad:910 ~controls:1 ~tn:57 ~tr:910) ()
     in
     t);
    Task.make ~id:"javac-2" ~kind:Task.Tough_cast ~src:base
      ~seed:"BinNode mul = (BinNode) n;"
      ~seed_filter:Slice_core.Engine.Only_casts
      ~desired:all_op_writes
      ~controls:1
      ~bridges:[ "if (op == Ops.MUL)" ]
      ~validation
      ?paper:(paper ~thin:43 ~trad:853 ~controls:1 ~tn:43 ~tr:853) ();
    Task.make ~id:"javac-3" ~kind:Task.Tough_cast ~src:base
      ~seed:"VarNode v = (VarNode) n;"
      ~seed_filter:Slice_core.Engine.Only_casts
      ~desired:all_op_writes
      ~controls:1
      ~bridges:[ "if (k == Ops.VAR)" ]
      ~validation
      ?paper:(paper ~thin:65 ~trad:2224 ~controls:1 ~tn:65 ~tr:2267) ();
    Task.make ~id:"javac-4" ~kind:Task.Tough_cast ~src:base
      ~seed:"BinNode b = (BinNode) n;"
      ~seed_filter:Slice_core.Engine.Only_casts
      ~desired:all_op_writes
      ~controls:1
      ~bridges:[ "if (k == Ops.NEG)" ]
      ~validation
      ?paper:(paper ~thin:45 ~trad:855 ~controls:1 ~tn:45 ~tr:855) () ]
