(* The xml-security-like benchmark: canonicalization plus a rolling hash
   whose value is checked against an expected constant.  Mirrors the one
   xml-security task that appears in Table 2 (a failure adjacent to the
   bug) and the five excluded ones: bugs buried inside computeHash()
   cannot be localized by any slicer, because slicing from the failed
   check "will inevitably bring in most or all of the code that computes
   the hash function" (section 6.2).  The excluded shape is exercised by
   [unhelpful_task], used in tests and discussed in EXPERIMENTS.md. *)

let base =
  Runtime_lib.prelude
  ^ {|class VerifyException {
}
class Canonicalizer {
  String normalizeLine(String line) {
    String out = TrimUtil.trim(line);
    if (out.startsWith("<?")) { return ""; }
    return out;
  }
}
class TrimUtil {
  static String trim(String raw) {
    int start = 0;
    while (start < raw.length() && raw.charCodeAt(start) == 32) {
      start = start + 1;
    }
    int end = raw.length();
    while (end > start && raw.charCodeAt(end - 1) == 32) {
      end = end - 1;
    }
    return raw.substring(start, end);
  }
}
class Digest {
  int state;
  int rounds;
  Digest() {
    this.state = 7;
    this.rounds = 0;
  }
  void update(int value) {
    int mixed = value * 31 + this.state;
    mixed = mixed % 65536;
    int rotated = mixed * 2 + mixed / 32768;
    this.state = rotated % 65536;
    this.rounds = this.rounds + 1;
  }
  void updateString(String chunk) {
    for (int i = 0; i < chunk.length(); i++) {
      update(chunk.charCodeAt(i));
    }
  }
  int finish() {
    int result = this.state * 17 + this.rounds;
    return result % 65536;
  }
}
class Signer {
  Canonicalizer canon;
  Digest digest;
  Signer() {
    this.canon = new Canonicalizer();
    this.digest = new Digest();
  }
  int computeHash(InputStream input) {
    while (!input.eof()) {
      String line = input.readLine();
      String normalized = this.canon.normalizeLine(line);
      this.digest.updateString(normalized);
    }
    return this.digest.finish();
  }
}
void main(String[] args) {
  InputStream input = new InputStream(args[0]);
  Signer signer = new Signer();
  int expected = parseInt(args[1]);
  int hash = signer.computeHash(input);
  if (hash != expected) { throw new VerifyException(); }
  print("signature ok: " + itoa(hash));
}
|}

(* The canonical document and the hash the FIXED program computes for it
   (derived by running the interpreter; asserted in the test suite). *)
let doc = [ "<?xml?>"; "  <signed>  "; "payload data"; "</signed>" ]
let expected_hash = 64986

(* args.(2) is a decoy value the injected bug reads instead of args.(1) *)
let io =
  ([ "doc.xml"; string_of_int expected_hash; "99999" ], [ ("doc.xml", doc) ])

let paper ~thin ~trad ~controls ~tn ~tr =
  Some
    { Task.p_thin = thin; p_trad = trad; p_controls = controls;
      p_thin_noobj = tn; p_trad_noobj = tr }

let tasks : Task.t list =
  [ (* the expected-hash argument is read from the wrong position: the
       failure (VerifyException) is one control dependence from the bug *)
    (let src =
       Runtime_lib.patch ~from:"int expected = parseInt(args[1]);"
         ~into:"int expected = parseInt(args[2]);" base
     in
     Task.make ~id:"xml-security-1" ~kind:Task.Debugging ~src
       ~seed:"if (hash != expected) { throw new VerifyException(); }"
       ~seed_filter:Slice_core.Engine.Only_conditionals
       ~desired:[ "int expected = parseInt(args[" ]
       ~controls:1
       ~validation:
         (let args, streams = io in
          Task.Expect_failure { args; streams })
       ?paper:(paper ~thin:2 ~trad:2 ~controls:1 ~tn:2 ~tr:2) ()) ]

(* One of the excluded xml-security bugs: a wrong constant deep inside the
   digest.  Slicing from the failed check pulls in the whole hash
   computation for thin and traditional alike — the case where "slicing of
   course is not a panacea". *)
let unhelpful_task : Task.t =
  let src =
    Runtime_lib.patch ~from:"int mixed = value * 31 + this.state;"
      ~into:"int mixed = value * 37 + this.state;" base
  in
  Task.make ~id:"xml-security-x" ~kind:Task.Debugging ~src
    ~seed:"if (hash != expected) { throw new VerifyException(); }"
    ~seed_filter:Slice_core.Engine.Only_conditionals
    ~desired:[ "int mixed = value *" ]
    ~validation:
      (let args, streams = io in
       Task.Expect_failure { args; streams })
    ()
