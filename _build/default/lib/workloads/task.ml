(* Evaluation tasks: a program with a seed statement, a set of desired
   statements, and the bookkeeping the paper's methodology needs
   (section 6.1) — the number of relevant control dependences (counted as
   inspected for BOTH slicers), whether a one-level aliasing expansion is
   required (as for nanoxml-5), and the paper's own numbers for the
   paper-vs-measured comparison in EXPERIMENTS.md. *)

open Slice_core

type kind = Debugging | Tough_cast

(* Validation under the interpreter: the buggy program must actually fail
   (or print wrong output), tying each task to observable behaviour. *)
type validation =
  | Expect_failure of { args : string list; streams : (string * string list) list }
  (* The buggy program must behave differently from the fixed program (and
     the fixed program must succeed): the workload analogue of running the
     SIR test suites to expose each injected bug. *)
  | Differs_from_fixed of {
      args : string list;
      streams : (string * string list) list;
      fixed_src : string;
    }
  (* Cast programs do not fail; they must run to completion. *)
  | Expect_success of { args : string list; streams : (string * string list) list }
  | No_validation

type paper_row = {
  p_thin : int;
  p_trad : int;
  p_controls : int;
  p_thin_noobj : int;
  p_trad_noobj : int;
}

type t = {
  id : string;
  kind : kind;
  src : string;
  seed_pattern : string;             (* unique substring of the seed line *)
  seed_filter : Engine.seed_filter;
  desired_patterns : string list;    (* unique substrings of desired lines *)
  controls : int;                    (* manually identified control deps *)
  (* Lines of manually exposed control dependences: the user notices the
     governing conditional near a slice statement (paper, section 4.2) and
     takes a further slice from it.  These become additional BFS seeds for
     BOTH slicers; their count is part of [controls]. *)
  bridge_patterns : string list;
  alias_level : int;                 (* 0 = plain thin slice *)
  paper : paper_row option;
  validation : validation;
}

let make ?(seed_filter = Engine.Any) ?(controls = 0) ?(bridges = [])
    ?(alias_level = 0) ?paper ?(validation = No_validation) ~id ~kind ~src
    ~seed ~desired () : t =
  { id;
    kind;
    src;
    seed_pattern = seed;
    seed_filter;
    desired_patterns = desired;
    controls;
    bridge_patterns = bridges;
    alias_level;
    paper;
    validation }

type measurement = {
  m_task : t;
  m_thin : int;                      (* inspected, thin (+controls) *)
  m_trad : int;                      (* inspected, traditional (+controls) *)
  m_thin_found : bool;
  m_trad_found : bool;
  m_thin_slice_size : int;
  m_trad_slice_size : int;
  m_thin_noobj : int;
  m_trad_noobj : int;
  m_seed_line : int;
  m_desired_lines : int list;
}

let ratio (m : measurement) : float =
  if m.m_thin = 0 then 0.0 else float_of_int m.m_trad /. float_of_int m.m_thin

let thin_mode (task : t) : Slicer.mode =
  if task.alias_level > 0 then Slicer.Thin_with_aliasing task.alias_level
  else Slicer.Thin

(* Measure one task under one analysis (object-sensitive or not). *)
let measure_with (task : t) (a : Engine.analysis) : Inspect.report * Inspect.report * int * int list =
  let seed_line = Runtime_lib.line_of ~src:task.src ~pattern:task.seed_pattern in
  let desired =
    List.map
      (fun pat -> Runtime_lib.line_of ~src:task.src ~pattern:pat)
      task.desired_patterns
  in
  let seeds =
    Engine.seeds_at_line_exn ~filter:task.seed_filter a seed_line
    @ List.concat_map
        (fun pat ->
          Engine.seeds_at_line_exn a (Runtime_lib.line_of ~src:task.src ~pattern:pat))
        task.bridge_patterns
  in
  let thin = Inspect.bfs a.Engine.sdg ~seeds ~desired (thin_mode task) in
  let trad = Inspect.bfs a.Engine.sdg ~seeds ~desired Slicer.Traditional_data in
  (thin, trad, seed_line, desired)

let measure (task : t) : measurement =
  let p () = Slice_front.Frontend.load_exn ~file:(task.id ^ ".tj") task.src in
  let a = Engine.analyze ~obj_sens:true (p ()) in
  let a_no = Engine.analyze ~obj_sens:false (p ()) in
  let thin, trad, seed_line, desired = measure_with task a in
  let thin_no, trad_no, _, _ = measure_with task a_no in
  { m_task = task;
    m_thin = thin.Inspect.inspected + task.controls;
    m_trad = trad.Inspect.inspected + task.controls;
    m_thin_found = thin.Inspect.found;
    m_trad_found = trad.Inspect.found;
    m_thin_slice_size = thin.Inspect.slice_size;
    m_trad_slice_size = trad.Inspect.slice_size;
    m_thin_noobj = thin_no.Inspect.inspected + task.controls;
    m_trad_noobj = trad_no.Inspect.inspected + task.controls;
    m_seed_line = seed_line;
    m_desired_lines = desired }

(* Run the buggy program in the interpreter and check it misbehaves as the
   task promises.  Returns an error description on mismatch. *)
let validate (task : t) : (unit, string) result =
  match task.validation with
  | No_validation -> Ok ()
  | Expect_success { args; streams } -> (
    let p = Slice_front.Frontend.load_exn ~file:(task.id ^ ".tj") task.src in
    let config = { Slice_interp.Interp.default_config with args; streams } in
    match (Slice_interp.Interp.run config p).Slice_interp.Interp.result with
    | Ok () -> Ok ()
    | Error f ->
      Error
        (Printf.sprintf "%s: program failed: %s" task.id
           (Format.asprintf "%a" Slice_interp.Interp.pp_failure f)))
  | Expect_failure { args; streams } -> (
    let p = Slice_front.Frontend.load_exn ~file:(task.id ^ ".tj") task.src in
    let config = { Slice_interp.Interp.default_config with args; streams } in
    match (Slice_interp.Interp.run config p).Slice_interp.Interp.result with
    | Error f ->
      let seed_line = Runtime_lib.line_of ~src:task.src ~pattern:task.seed_pattern in
      let fail_line = f.Slice_interp.Interp.f_loc.Slice_ir.Loc.line in
      if fail_line = seed_line then Ok ()
      else
        Error
          (Printf.sprintf "%s: failed at line %d, expected seed line %d" task.id
             fail_line seed_line)
    | Ok () -> Error (Printf.sprintf "%s: expected a runtime failure, but run succeeded" task.id))
  | Differs_from_fixed { args; streams; fixed_src } -> (
    let run src name =
      let p = Slice_front.Frontend.load_exn ~file:name src in
      let config = { Slice_interp.Interp.default_config with args; streams } in
      Slice_interp.Interp.run config p
    in
    let buggy = run task.src (task.id ^ ".tj") in
    let fixed = run fixed_src (task.id ^ "-fixed.tj") in
    match fixed.Slice_interp.Interp.result with
    | Error f ->
      Error
        (Printf.sprintf "%s: the FIXED program fails: %s" task.id
           (Format.asprintf "%a" Slice_interp.Interp.pp_failure f))
    | Ok () ->
      let same_output =
        buggy.Slice_interp.Interp.output = fixed.Slice_interp.Interp.output
      in
      let buggy_ok =
        match buggy.Slice_interp.Interp.result with Ok () -> true | Error _ -> false
      in
      if buggy_ok && same_output then
        Error
          (Printf.sprintf "%s: buggy and fixed programs behave identically" task.id)
      else Ok ())
