(* Size-parameterized synthetic TJ programs, used for

   - the scalability experiment (section 6.1): showing that the cost of a
     context-insensitive thin slice is insignificant next to the pointer
     analysis, and that heap-parameter SDGs blow up with program size;
   - property-based tests that need arbitrary well-formed programs.

   The generated program is a staged string-processing pipeline: [stages]
   classes each hold their own Vector and transform records as they pass
   through, with a registry and per-stage helper methods; main drives the
   pipeline from an input stream and prints the final records.  Heavy
   container traffic makes the points-to and heap-dependence work scale
   with [stages]. *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let pipeline_program ~(stages : int) : string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf Runtime_lib.prelude;
  for i = 0 to stages - 1 do
    buf_addf buf
      {|class Stage%d {
  Vector accepted;
  HashMap seen;
  int processed;
  Stage%d() {
    this.accepted = new Vector();
    this.seen = new HashMap();
    this.processed = 0;
  }
  String transform(String record) {
    String tagged = "s%d:" + record;
    if (tagged.length() > %d) {
      tagged = tagged.substring(0, %d);
    }
    return tagged;
  }
  boolean admit(String record) {
    if (this.seen.containsKey(record)) {
      return false;
    }
    this.seen.put(record, "y");
    return true;
  }
  void feed(String record) {
    String out = transform(record);
    if (admit(out)) {
      this.accepted.add(out);
      this.processed = this.processed + 1;
    }
  }
  int size() { return this.accepted.size(); }
  String recordAt(int i) { return (String) this.accepted.get(i); }
}
|}
      i i i
      (40 + (i mod 7))
      (40 + (i mod 7))
  done;
  (* the pipeline driver pushes every record of stage i into stage i+1 *)
  buf_addf buf "class Pipeline {\n";
  for i = 0 to stages - 1 do
    buf_addf buf "  Stage%d stage%d;\n" i i
  done;
  buf_addf buf "  Pipeline() {\n";
  for i = 0 to stages - 1 do
    buf_addf buf "    this.stage%d = new Stage%d();\n" i i
  done;
  buf_addf buf "  }\n";
  buf_addf buf "  void run(InputStream input) {\n";
  buf_addf buf "    while (!input.eof()) {\n";
  buf_addf buf "      this.stage0.feed(input.readLine());\n";
  buf_addf buf "    }\n";
  for i = 1 to stages - 1 do
    buf_addf buf
      "    for (int i%d = 0; i%d < this.stage%d.size(); i%d++) {\n\
      \      this.stage%d.feed(this.stage%d.recordAt(i%d));\n\
      \    }\n"
      i i (i - 1) i i (i - 1) i
  done;
  buf_addf buf "  }\n}\n";
  buf_addf buf
    {|void main(String[] args) {
  Pipeline p = new Pipeline();
  p.run(new InputStream(args[0]));
  Stage%d last = p.stage%d;
  for (int i = 0; i < last.size(); i++) {
    print(last.recordAt(i));
  }
}
|}
    (stages - 1) (stages - 1);
  Buffer.contents buf

(* The line of the final print, used as the slicing seed in benchmarks. *)
let pipeline_seed_pattern = "print(last.recordAt(i));"

let pipeline_io =
  ( [ "records.txt" ],
    [ ("records.txt", [ "alpha"; "beta"; "gamma"; "delta"; "alpha" ]) ] )
