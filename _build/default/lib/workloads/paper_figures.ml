(* The paper's running examples, transliterated to TJ.  Shared by the
   examples/ binaries and the figure tests, which assert the slice
   contents the paper describes. *)

(* Figure 1: first names stored in a Vector behind SessionState
   indirection; the bug truncates the first name ("Joh" for "John Doe").
   The thin slice from the print consists of the producer chain; the
   traditional slice is the whole program. *)
let fig1 =
  {|class Vector {
  Object[] elems;
  int count;
  Vector() { this.elems = new Object[10]; this.count = 0; }
  void add(Object p) {
    this.elems[count++] = p;
  }
  Object get(int ind) {
    return this.elems[ind];
  }
  int size() { return this.count; }
}
class SessionState {
  Vector names;
  void setNames(Vector v) { this.names = v; }
  Vector getNames() { return this.names; }
}
class Globals {
  static SessionState state;
}
SessionState getState() {
  if (Globals.state == null) { Globals.state = new SessionState(); }
  return Globals.state;
}
Vector readNames(InputStream input) {
  Vector firstNames = new Vector();
  while (!input.eof()) {
    String fullName = input.readLine();
    int spaceInd = fullName.indexOf(" ");
    String firstName = fullName.substring(0, spaceInd - 1);
    firstNames.add(firstName);
  }
  return firstNames;
}
void printNames(Vector firstNames) {
  for (int i = 0; i < firstNames.size(); i++) {
    String firstName = (String) firstNames.get(i);
    print("FIRST NAME: " + firstName);
  }
}
void main(String[] args) {
  Vector firstNames = readNames(new InputStream(args[0]));
  SessionState s = getState();
  s.setNames(firstNames);
  SessionState t = getState();
  printNames(t.getNames());
}
|}

let fig1_seed = {|print("FIRST NAME: " + firstName);|}
let fig1_buggy_line = "fullName.substring(0, spaceInd - 1)"

let fig1_io =
  ([ "names.txt" ], [ ("names.txt", [ "John Doe"; "Jane Roe" ]) ])

(* Figure 2: the toy program whose dependence graph is Figure 3.  The thin
   slice for line 7 (v = z.f) is lines {1?, 3, 5, 7}: per the paper,
   producers are the B allocation (3) and the store (5); lines 1, 2, 4
   explain aliasing; line 6 explains control. *)
let fig2 =
  {|class A {
  Object f;
}
class B {
}
void main(String[] args) {
  A x = new A();
  A z = x;
  B y = new B();
  A w = x;
  w.f = y;
  if (w == z) {
    Object v = z.f;
    print("done");
  }
}
|}

let fig2_seed = "Object v = z.f;"

(* Figure 4: the File/Vector program whose bug needs an aliasing
   explanation (which File was closed?) and one control dependence. *)
let fig4 =
  {|class Vector {
  Object[] elems;
  int count;
  Vector() { this.elems = new Object[10]; this.count = 0; }
  void add(Object p) { this.elems[count++] = p; }
  Object get(int ind) { return this.elems[ind]; }
  int size() { return this.count; }
}
class ClosedException {
}
class File {
  boolean open;
  File() { this.open = true; }
  boolean isOpen() { return this.open; }
  void close() { this.open = false; }
}
void readFromFile(File f) {
  boolean open = f.isOpen();
  if (!open) { throw new ClosedException(); }
  print("read ok");
}
void main(String[] args) {
  File f = new File();
  Vector files = new Vector();
  files.add(f);
  File g = (File) files.get(0);
  g.close();
  File h = (File) files.get(0);
  readFromFile(h);
}
|}

let fig4_seed = "if (!open) { throw new ClosedException(); }"
let fig4_store = "void close() { this.open = false; }"
let fig4_culprit = "g.close();"

(* Figure 5: the tough cast guarded by an opcode tag. *)
let fig5 =
  {|class Ops {
  static int ADD_NODE_OP = 1;
  static int SUB_NODE_OP = 2;
}
class Node {
  int op;
  Node(int op) { this.op = op; }
}
class AddNode extends Node {
  AddNode() { super(Ops.ADD_NODE_OP); }
}
class SubNode extends Node {
  SubNode() { super(Ops.SUB_NODE_OP); }
}
void simplify(Node n) {
  int op = n.op;
  if (op == Ops.ADD_NODE_OP) {
    AddNode add = (AddNode) n;
    print("add node");
  }
}
void main(String[] args) {
  simplify(new AddNode());
  simplify(new SubNode());
}
|}

let fig5_cast = "AddNode add = (AddNode) n;"
let fig5_tag_check = "if (op == Ops.ADD_NODE_OP)"
let fig5_add_write = "AddNode() { super(Ops.ADD_NODE_OP); }"
let fig5_sub_write = "SubNode() { super(Ops.SUB_NODE_OP); }"
