(* The mtrt-like benchmark: a miniature raytracer whose scene is a Vector
   of tagged Shape objects parsed from a scene description.  Its two tough
   casts (Table 3: mtrt-1, mtrt-2) retrieve shapes from the scene Vector
   and downcast after a tag check. *)

let base =
  Runtime_lib.prelude
  ^ {|class SceneError {
}
class ShapeKinds {
  static int SPHERE = 1;
  static int PLANE = 2;
  static int TRIANGLE = 3;
}
class Shape {
  int kind;
  int material;
  Shape(int k, int m) {
    this.kind = k;
    this.material = m;
  }
}
class Sphere extends Shape {
  int cx;
  int cy;
  int cz;
  int radius;
  Sphere(int x, int y, int z, int r, int m) {
    super(ShapeKinds.SPHERE, m);
    this.cx = x;
    this.cy = y;
    this.cz = z;
    this.radius = r;
  }
}
class Plane extends Shape {
  int height;
  Plane(int h, int m) {
    super(ShapeKinds.PLANE, m);
    this.height = h;
  }
}
class Triangle extends Shape {
  int a;
  int b;
  int c;
  Triangle(int a, int b, int c, int m) {
    super(ShapeKinds.TRIANGLE, m);
    this.a = a;
    this.b = b;
    this.c = c;
  }
}
class SceneParser {
  InputStream input;
  SceneParser(InputStream s) { this.input = s; }
  int field(String line, int index) {
    int i = 0;
    int start = 0;
    int seen = 0;
    while (i < line.length()) {
      if (line.charCodeAt(i) == 32) {
        if (seen == index) {
          return parseInt(line.substring(start, i));
        }
        seen = seen + 1;
        start = i + 1;
      }
      i = i + 1;
    }
    if (seen == index) {
      return parseInt(line.substring(start, line.length()));
    }
    throw new SceneError();
  }
  Vector parse() {
    Vector scene = new Vector();
    while (!this.input.eof()) {
      String line = this.input.readLine();
      if (line.startsWith("sphere ")) {
        scene.add(new Sphere(field(line, 1), field(line, 2), field(line, 3),
                             field(line, 4), field(line, 5)));
      } else if (line.startsWith("plane ")) {
        scene.add(new Plane(field(line, 1), field(line, 2)));
      } else if (line.startsWith("tri ")) {
        scene.add(new Triangle(field(line, 1), field(line, 2), field(line, 3),
                               field(line, 4)));
      }
    }
    return scene;
  }
}
class Ray {
  int ox;
  int dy;
  Ray(int o, int d) {
    this.ox = o;
    this.dy = d;
  }
}
class Tracer {
  Vector scene;
  Tracer(Vector s) { this.scene = s; }
  int intersect(Ray ray, Shape s) {
    int kind = s.kind;
    if (kind == ShapeKinds.SPHERE) {
      Sphere sp = (Sphere) s;
      int dx = ray.ox - sp.cx;
      int dist = dx * dx + sp.cy * sp.cy;
      if (dist <= sp.radius * sp.radius) { return sp.radius - dx; }
      return -1;
    }
    if (kind == ShapeKinds.PLANE) {
      Plane pl = (Plane) s;
      if (ray.dy > 0 && pl.height >= ray.ox) { return pl.height - ray.ox; }
      return -1;
    }
    return 0;
  }
  int trace(Ray ray) {
    int best = -1;
    for (int i = 0; i < this.scene.size(); i++) {
      Shape s = (Shape) this.scene.get(i);
      int hit = intersect(ray, s);
      if (hit > best) { best = hit; }
    }
    return best;
  }
}
void main(String[] args) {
  SceneParser parser = new SceneParser(new InputStream(args[0]));
  Vector scene = parser.parse();
  Tracer tracer = new Tracer(scene);
  int row = 0;
  while (row < 4) {
    Ray ray = new Ray(row * 2, 1);
    print("row " + itoa(row) + ": " + itoa(tracer.trace(ray)));
    row = row + 1;
  }
}
|}

let scene_lines =
  [ "sphere 3 1 0 5 1"; "plane 7 2"; "tri 1 2 3 1"; "sphere 9 0 2 2 3" ]

let io = ([ "scene.txt" ], [ ("scene.txt", scene_lines) ])

let validation =
  let args, streams = io in
  Task.Expect_success { args; streams }

let paper ~thin ~trad ~controls ~tn ~tr =
  Some
    { Task.p_thin = thin; p_trad = trad; p_controls = controls;
      p_thin_noobj = tn; p_trad_noobj = tr }

(* The tag invariant is established by the shape constructors' super calls. *)
let tag_writes =
  [ "super(ShapeKinds.SPHERE, m);";
    "super(ShapeKinds.PLANE, m);";
    "super(ShapeKinds.TRIANGLE, m);" ]

let tasks : Task.t list =
  [ Task.make ~id:"mtrt-1" ~kind:Task.Tough_cast ~src:base
      ~seed:"Sphere sp = (Sphere) s;"
      ~seed_filter:Slice_core.Engine.Only_casts
      ~desired:tag_writes
      ~controls:1
      ~bridges:[ "if (kind == ShapeKinds.SPHERE)" ]
      ~validation
      ?paper:(paper ~thin:22 ~trad:51 ~controls:0 ~tn:22 ~tr:51) ();
    Task.make ~id:"mtrt-2" ~kind:Task.Tough_cast ~src:base
      ~seed:"Plane pl = (Plane) s;"
      ~seed_filter:Slice_core.Engine.Only_casts
      ~desired:tag_writes
      ~controls:1
      ~bridges:[ "if (kind == ShapeKinds.PLANE)" ]
      ~validation
      ?paper:(paper ~thin:23 ~trad:52 ~controls:0 ~tn:23 ~tr:52) () ]
