lib/workloads/prog_ant.ml: Runtime_lib Slice_core Task
