lib/workloads/prog_xmlsec.ml: Runtime_lib Slice_core Task
