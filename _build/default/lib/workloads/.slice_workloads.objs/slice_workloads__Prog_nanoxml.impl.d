lib/workloads/prog_nanoxml.ml: Runtime_lib Slice_core Task
