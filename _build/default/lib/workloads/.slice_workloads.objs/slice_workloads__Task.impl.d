lib/workloads/task.ml: Engine Format Inspect List Printf Runtime_lib Slice_core Slice_front Slice_interp Slice_ir Slicer
