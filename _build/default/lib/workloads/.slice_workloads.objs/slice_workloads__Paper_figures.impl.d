lib/workloads/paper_figures.ml:
