lib/workloads/prog_javac.ml: Runtime_lib Slice_core Task
