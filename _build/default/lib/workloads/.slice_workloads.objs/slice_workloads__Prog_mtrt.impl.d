lib/workloads/prog_mtrt.ml: Runtime_lib Slice_core Task
