lib/workloads/runtime_lib.ml: List Printf String
