lib/workloads/casts_suite.ml: Prog_jack Prog_javac Prog_jess Prog_mtrt Task
