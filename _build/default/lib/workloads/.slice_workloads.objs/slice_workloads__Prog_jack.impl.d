lib/workloads/prog_jack.ml: Runtime_lib Slice_core Task
