lib/workloads/prog_jess.ml: Runtime_lib Slice_core Task
