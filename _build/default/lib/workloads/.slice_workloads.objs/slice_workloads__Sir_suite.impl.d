lib/workloads/sir_suite.ml: Prog_ant Prog_jtopas Prog_nanoxml Prog_xmlsec Task
