lib/workloads/prog_jtopas.ml: Runtime_lib Task
