lib/workloads/generators.ml: Buffer Printf Runtime_lib
