(* Dynamic thin slicing (paper, sections 1 and 7): the same producer-only
   relevance notion applied to dynamic data dependences recorded by the
   interpreter.  The dynamic thin slice of an executed statement is a
   subset of the static one, restricted to the statements that actually
   fed it on this run.

     dune exec examples/dynamic.exe *)

open Slice_core
open Slice_workloads

let () =
  let src = Paper_figures.fig1 in
  let p = Slice_front.Frontend.load_exn ~file:"fig1.tj" src in
  (* trace a run *)
  let trace = Slice_interp.Dyntrace.create () in
  let args, streams = Paper_figures.fig1_io in
  let outcome =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with args; streams; trace = Some trace }
      p
  in
  Printf.printf "run: %d trace events, output:\n" (Slice_interp.Dyntrace.length trace);
  List.iter (fun l -> Printf.printf "  %s\n" l) outcome.Slice_interp.Interp.output;
  (* find the print statement and dynamically thin-slice its last execution *)
  let a = Engine.analyze p in
  let seed_line = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig1_seed in
  let tbl = Sdg.stmt_table a.Engine.sdg in
  let seed_stmt =
    Hashtbl.fold
      (fun id si acc ->
        let loc = Slice_ir.Program.stmt_loc si in
        match si.Slice_ir.Program.s_site with
        | Slice_ir.Program.Site_instr
            { Slice_ir.Instr.i_kind = Slice_ir.Instr.Call _; _ }
          when loc.Slice_ir.Loc.line = seed_line ->
          Some id
        | _ -> acc)
      tbl None
  in
  match seed_stmt with
  | None -> print_endline "seed statement not found"
  | Some stmt -> (
    match Slice_interp.Dyntrace.dynamic_thin_slice trace stmt with
    | None -> print_endline "seed never executed"
    | Some stmts ->
      let lines =
        List.sort_uniq compare
          (List.filter_map
             (fun s ->
               match Hashtbl.find_opt tbl s with
               | Some si ->
                 let l = (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line in
                 if l > 0 then Some l else None
               | None -> None)
             stmts)
      in
      let arr = Array.of_list (String.split_on_char '\n' src) in
      Printf.printf "\ndynamic thin slice of the last print (%d source lines):\n"
        (List.length lines);
      List.iter (fun l -> Printf.printf "%4d | %s\n" l arr.(l - 1)) lines;
      (* compare against the static thin slice *)
      let static = Engine.slice_from_line a ~line:seed_line Slicer.Thin in
      Printf.printf
        "\nstatic thin slice has %d lines; every dynamic line is contained \
         in it: %b\n"
        (List.length static)
        (List.for_all (fun l -> List.mem l static) lines))
