examples/debugging.mli:
