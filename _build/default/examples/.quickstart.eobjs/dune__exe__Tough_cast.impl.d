examples/tough_cast.ml: Engine Format List Paper_figures Printf Runtime_lib Sdg Slice_core Slice_ir Slice_workloads Slicer
