examples/dynamic.mli:
