examples/tough_cast.mli:
