examples/quickstart.ml: Array Engine List Paper_figures Printf Runtime_lib Slice_core Slice_front Slice_interp Slice_workloads Slicer String
