examples/dynamic.ml: Array Engine Hashtbl List Paper_figures Printf Runtime_lib Sdg Slice_core Slice_front Slice_interp Slice_ir Slice_workloads Slicer String
