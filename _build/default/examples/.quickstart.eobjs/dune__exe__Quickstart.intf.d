examples/quickstart.mli:
