examples/debugging.ml: Engine Expansion Format List Paper_figures Printf Runtime_lib Sdg Slice_core Slice_front Slice_interp Slice_workloads Slicer
