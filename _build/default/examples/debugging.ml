(* Debugging with expansion: the paper's Figure 4.  A File is read from a
   Vector, erroneously closed, and read again: the exception's thin slice
   alone does not say WHICH call closed the file — the aliasing
   explanation (section 4.1) does.

     dune exec examples/debugging.exe *)

open Slice_core
open Slice_workloads

let () =
  let src = Paper_figures.fig4 in
  (* 1. the failure *)
  let p = Slice_front.Frontend.load_exn ~file:"fig4.tj" src in
  let outcome = Slice_interp.Interp.run Slice_interp.Interp.default_config p in
  (match outcome.Slice_interp.Interp.result with
  | Error f -> Format.printf "failure: %a@." Slice_interp.Interp.pp_failure f
  | Ok () -> print_endline "unexpected: program succeeded");
  (* 2. thin slice from the guarding conditional *)
  let a = Engine.of_source ~file:"fig4.tj" src in
  let g = a.Engine.sdg in
  let seed_line = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig4_seed in
  let seeds = Engine.seeds_at_line_exn ~filter:Engine.Only_conditionals a seed_line in
  let thin = Slicer.slice g ~seeds Slicer.Thin in
  print_endline "\nthin slice from the conditional:";
  List.iter
    (fun n -> if Sdg.node_countable g n then Format.printf "  %a@." (Sdg.pp_node g) n)
    thin;
  (* 3. the thin slice shows the open-flag load and stores, but not which
     File they touch; ask for the aliasing explanation *)
  let heap_pairs =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun (dep, kind) ->
            if kind = Sdg.Producer_heap && List.mem dep thin then Some (n, dep)
            else None)
          (Sdg.deps g n))
      thin
  in
  List.iter
    (fun (read, write) ->
      Format.printf "@.explaining why these may touch the same location:@.";
      Format.printf "  read : %a@.  write: %a@." (Sdg.pp_node g) read
        (Sdg.pp_node g) write;
      let e = Expansion.explain_aliasing g ~read ~write in
      print_endline "  the common File object flows through:";
      List.iter
        (fun n ->
          if Sdg.node_countable g n then Format.printf "    %a@." (Sdg.pp_node g) n)
        (e.Expansion.read_flow @ e.Expansion.write_flow))
    heap_pairs;
  let culprit = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig4_culprit in
  Printf.printf
    "\nline %d (g.close()) appears in the explanation: the fix is to not \
     close the file, or to remove it from the Vector.\n"
    culprit
