(* Understanding a tough cast (paper Figure 5, section 6.3): find casts
   the pointer analysis cannot verify, then inspect the thin slice of the
   guarding tag to see the invariant that keeps the cast safe.

     dune exec examples/tough_cast.exe *)

open Slice_core
open Slice_workloads

let () =
  let src = Paper_figures.fig5 in
  let a = Engine.of_source ~file:"fig5.tj" src in
  let g = a.Engine.sdg in
  (* 1. the analysis flags the cast as tough: both AddNode and SubNode can
     reach simplify's parameter *)
  let casts = Engine.tough_casts a in
  Printf.printf "%d tough cast(s) found:\n" (List.length casts);
  List.iter
    (fun (_, i) ->
      print_endline
        ("  "
        ^ Slice_ir.Pretty.stmt_to_string a.Engine.program (Sdg.stmt_table g)
            i.Slice_ir.Instr.i_id))
    casts;
  (* 2. follow the control dependence from the cast to the tag check, then
     thin slice the tag to see where op values come from *)
  let check_line = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig5_tag_check in
  let seeds = Engine.seeds_at_line_exn ~filter:Engine.Only_conditionals a check_line in
  let thin = Slicer.slice g ~seeds Slicer.Thin in
  print_endline "\nthin slice of the tag check:";
  List.iter
    (fun n -> if Sdg.node_countable g n then Format.printf "  %a@." (Sdg.pp_node g) n)
    thin;
  let add_w = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig5_add_write in
  let sub_w = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig5_sub_write in
  Printf.printf
    "\nlines %d and %d write the op tags: only AddNode writes ADD_NODE_OP, \
     so the cast cannot fail.\n"
    add_w sub_w
