(* Quickstart: run the paper's Figure 1 program, watch it misbehave, then
   compare the thin slice with the traditional slice from the bad print.

     dune exec examples/quickstart.exe *)

open Slice_core
open Slice_workloads

let show_lines title src lines =
  let arr = Array.of_list (String.split_on_char '\n' src) in
  Printf.printf "\n%s (%d statements):\n" title (List.length lines);
  List.iter (fun l -> Printf.printf "%4d | %s\n" l arr.(l - 1)) lines

let () =
  let src = Paper_figures.fig1 in
  (* 1. run the program: the bug truncates "John" to "Joh" *)
  let p = Slice_front.Frontend.load_exn ~file:"fig1.tj" src in
  let args, streams = Paper_figures.fig1_io in
  let outcome =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with args; streams }
      p
  in
  print_endline "program output:";
  List.iter (fun l -> Printf.printf "  %s\n" l) outcome.Slice_interp.Interp.output;
  (* 2. slice from the print *)
  let a = Engine.of_source ~file:"fig1.tj" src in
  let seed = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig1_seed in
  let thin = Engine.slice_from_line a ~line:seed Slicer.Thin in
  let trad = Engine.slice_from_line a ~line:seed Slicer.Traditional_data in
  show_lines "thin slice" src thin;
  show_lines "traditional (data) slice" src trad;
  let buggy = Runtime_lib.line_of ~src ~pattern:Paper_figures.fig1_buggy_line in
  Printf.printf
    "\nthe buggy statement is line %d (substring off-by-one): in the thin \
     slice after %d statements; the traditional slice carries %d.\n"
    buggy (List.length thin) (List.length trad)
