(* SSA invariants, checked on every workload program and on generated
   pipelines via qcheck:
   - every variable has at most one definition;
   - every use of an SSA variable is dominated by its definition (phi
     operands count at the end of the corresponding predecessor);
   - no phi survives without feeding a real use. *)

open Slice_ir

let check_single_def (m : Instr.meth) =
  match Ssa.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" (Instr.method_qname_to_string m.Instr.m_qname) e

let check_dominated_uses (m : Instr.meth) =
  if Instr.has_body m then begin
    let cfg = Cfg.build m in
    let dom = Dominance.compute (Dominance.forward_graph cfg) in
    let def_block = Hashtbl.create 32 in
    let def_pos = Hashtbl.create 32 in
    Instr.iter_instrs m (fun _ _ -> ());
    Array.iter
      (fun b ->
        List.iteri
          (fun pos i ->
            match Instr.def_of_instr i with
            | Some v ->
              Hashtbl.replace def_block v b.Instr.b_label;
              Hashtbl.replace def_pos v pos
            | None -> ())
          b.Instr.b_instrs)
      (Instr.blocks_exn m);
    List.iter (fun v -> Hashtbl.replace def_block v (Instr.entry_label m)) m.Instr.m_params;
    let check_use ~user_block ~user_pos v =
      match Hashtbl.find_opt def_block v with
      | None -> Alcotest.failf "use of undefined variable %s" (Instr.var_name m v)
      | Some db ->
        if db = user_block then begin
          (* same block: definition must come first (params count as -1) *)
          let dp = Option.value ~default:(-1) (Hashtbl.find_opt def_pos v) in
          if Hashtbl.mem def_pos v && dp >= user_pos then
            Alcotest.failf "use of %s before its definition in the same block"
              (Instr.var_name m v)
        end
        else if
          Dominance.reachable dom user_block
          && not (Dominance.dominates dom ~dom:db ~node:user_block)
        then
          Alcotest.failf "use of %s in B%d not dominated by its def in B%d"
            (Instr.var_name m v) user_block db
    in
    Array.iter
      (fun b ->
        List.iteri
          (fun pos i ->
            match i.Instr.i_kind with
            | Instr.Phi (_, ins) ->
              (* operand must be defined in (or dominate) the predecessor *)
              List.iter
                (fun (pred, v) ->
                  match Hashtbl.find_opt def_block v with
                  | None ->
                    Alcotest.failf "phi operand %s undefined" (Instr.var_name m v)
                  | Some db ->
                    if
                      Dominance.reachable dom pred
                      && not (db = pred || Dominance.dominates dom ~dom:db ~node:pred)
                    then
                      Alcotest.failf "phi operand %s not available at B%d"
                        (Instr.var_name m v) pred)
                ins
            | _ ->
              List.iter
                (check_use ~user_block:b.Instr.b_label ~user_pos:pos)
                (Instr.uses_of_instr i))
          b.Instr.b_instrs;
        List.iter
          (check_use ~user_block:b.Instr.b_label ~user_pos:max_int)
          (Instr.uses_of_term b.Instr.b_term))
      (Instr.blocks_exn m)
  end

let check_program (p : Program.t) =
  Program.iter_methods p (fun m ->
      check_single_def m;
      check_dominated_uses m)

let workload_sources =
  [ ("nanoxml", Slice_workloads.Prog_nanoxml.base);
    ("jtopas", Slice_workloads.Prog_jtopas.base);
    ("ant", Slice_workloads.Prog_ant.base);
    ("xmlsec", Slice_workloads.Prog_xmlsec.base);
    ("mtrt", Slice_workloads.Prog_mtrt.base);
    ("jess", Slice_workloads.Prog_jess.base);
    ("javac", Slice_workloads.Prog_javac.base);
    ("jack", Slice_workloads.Prog_jack.base);
    ("fig1", Slice_workloads.Paper_figures.fig1);
    ("fig2", Slice_workloads.Paper_figures.fig2);
    ("fig4", Slice_workloads.Paper_figures.fig4);
    ("fig5", Slice_workloads.Paper_figures.fig5) ]

let test_workloads () =
  List.iter (fun (_, src) -> check_program (Helpers.load src)) workload_sources

let test_loop_phi () =
  (* a loop-carried variable must get a phi at the header *)
  let p =
    Helpers.load
      "void main(String[] args) {\n\
      \  int sum = 0;\n\
      \  for (int i = 0; i < 5; i++) { sum = sum + i; }\n\
      \  print(itoa(sum));\n\
       }"
  in
  let m = Program.find_method_exn p (Program.entry_method p) in
  let phis = ref 0 in
  Instr.iter_instrs m (fun _ i ->
      match i.Instr.i_kind with Instr.Phi _ -> incr phis | _ -> ());
  Alcotest.(check bool) "has phis" true (!phis >= 2)

let test_dead_phis_pruned () =
  (* a variable assigned in a branch but never used afterwards must not
     leave a phi behind (including dead phi cycles through loop headers) *)
  let p =
    Helpers.load
      "void main(String[] args) {\n\
      \  while (parseInt(\"1\") > 0) {\n\
      \    String s = \"x\";\n\
      \    if (s.length() > 0) { String t = s + \"y\"; print(t); return; }\n\
      \  }\n\
       }"
  in
  let m = Program.find_method_exn p (Program.entry_method p) in
  Instr.iter_instrs m (fun _ i ->
      match i.Instr.i_kind with
      | Instr.Phi (x, _) ->
        (* every surviving phi must be transitively used by a non-phi *)
        let used = ref false in
        Instr.iter_instrs m (fun _ j ->
            if j.Instr.i_id <> i.Instr.i_id && List.mem x (Instr.uses_of_instr j)
            then used := true);
        Instr.iter_terms m (fun _ t ->
            if List.mem x (Instr.uses_of_term t) then used := true);
        Alcotest.(check bool) "phi used" true !used
      | _ -> ())

(* qcheck: SSA invariants hold for generated pipeline programs *)
let prop_pipeline_ssa =
  QCheck2.Test.make ~count:8 ~name:"ssa invariants on generated pipelines"
    QCheck2.Gen.(1 -- 12)
    (fun stages ->
      let src = Slice_workloads.Generators.pipeline_program ~stages in
      check_program (Helpers.load src);
      true)

let suite =
  [ Alcotest.test_case "workload programs" `Quick test_workloads;
    Alcotest.test_case "loop phi" `Quick test_loop_phi;
    Alcotest.test_case "dead phis pruned" `Quick test_dead_phis_pruned;
    QCheck_alcotest.to_alcotest prop_pipeline_ssa ]
