(* Dynamic slicing tests: the dynamic thin slice (producer events only)
   versus the dynamic data slice and the static thin slice. *)

open Slice_workloads
open Helpers

module IntSet = Set.Make (Int)

let traced_run ?(args = []) ?(streams = []) src =
  let p = load src in
  let trace = Slice_interp.Dyntrace.create () in
  let o =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with args; streams; trace = Some trace }
      p
  in
  (p, trace, o)

(* statement id of the unique statement matching [pred] on [line] *)
let stmt_on_line p ~line ~pred =
  let tbl = Slice_ir.Program.build_stmt_table p in
  Hashtbl.fold
    (fun id si acc ->
      if
        (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line = line
        && pred si.Slice_ir.Program.s_site
      then Some id
      else acc)
    tbl None

let is_call = function
  | Slice_ir.Program.Site_instr
      { Slice_ir.Instr.i_kind = Slice_ir.Instr.Call _; _ } ->
    true
  | _ -> false

let test_thin_subset_of_data () =
  let src = Paper_figures.fig1 in
  let args, streams = Paper_figures.fig1_io in
  let p, trace, _ = traced_run ~args ~streams src in
  let seed_line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  match stmt_on_line p ~line:seed_line ~pred:is_call with
  | None -> Alcotest.fail "seed not found"
  | Some stmt -> (
    match
      ( Slice_interp.Dyntrace.dynamic_thin_slice trace stmt,
        Slice_interp.Dyntrace.dynamic_data_slice trace stmt )
    with
    | Some thin, Some data ->
      Alcotest.(check bool) "thin subset of data" true
        (IntSet.subset (IntSet.of_list thin) (IntSet.of_list data));
      Alcotest.(check bool) "thin nonempty" true (thin <> [])
    | _ -> Alcotest.fail "seed never executed")

let test_dynamic_within_static () =
  let src = Paper_figures.fig1 in
  let args, streams = Paper_figures.fig1_io in
  let p, trace, _ = traced_run ~args ~streams src in
  let a = Slice_core.Engine.analyze p in
  let seed_line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let static_lines =
    Slice_core.Engine.slice_from_line a ~line:seed_line Slice_core.Slicer.Thin
  in
  match stmt_on_line p ~line:seed_line ~pred:is_call with
  | None -> Alcotest.fail "seed not found"
  | Some stmt -> (
    match Slice_interp.Dyntrace.dynamic_thin_slice trace stmt with
    | None -> Alcotest.fail "seed never executed"
    | Some stmts ->
      let tbl = Slice_ir.Program.build_stmt_table p in
      List.iter
        (fun s ->
          match Hashtbl.find_opt tbl s with
          | Some si ->
            let l = (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line in
            if l > 0 && not (List.mem l static_lines) then
              Alcotest.failf "dynamic line %d outside the static thin slice" l
          | None -> ())
        stmts)

let test_dynamic_distinguishes_runs () =
  (* with a different input, the erroneous branch is never taken, and its
     statements stay out of the dynamic slice *)
  let src =
    {|void main(String[] args) {
  int x = parseInt(args[0]);
  String msg = "small";
  if (x > 100) {
    msg = "big";
  }
  print(msg);
}|}
  in
  let check args expect_big =
    let p, trace, _ = traced_run ~args src in
    let seed_line = line_of ~src ~pattern:"print(msg);" in
    match stmt_on_line p ~line:seed_line ~pred:is_call with
    | None -> Alcotest.fail "seed not found"
    | Some stmt -> (
      match Slice_interp.Dyntrace.dynamic_thin_slice trace stmt with
      | None -> Alcotest.fail "not executed"
      | Some stmts ->
        let tbl = Slice_ir.Program.build_stmt_table p in
        let lines =
          List.filter_map
            (fun s ->
              Option.map
                (fun si -> (Slice_ir.Program.stmt_loc si).Slice_ir.Loc.line)
                (Hashtbl.find_opt tbl s))
            stmts
        in
        Alcotest.(check bool)
          (Printf.sprintf "big-branch for args %s" (String.concat "," args))
          expect_big
          (List.mem (line_of ~src ~pattern:{|msg = "big";|}) lines))
  in
  check [ "5" ] false;
  check [ "500" ] true

let test_trace_overflow () =
  let p = load (Helpers.expr_main "while (true) { int x = 1; }") in
  let trace = Slice_interp.Dyntrace.create ~max_events:100 () in
  let o =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with trace = Some trace }
      p
  in
  (* the interpreter surfaces the overflow as an exception to the host *)
  match o.Slice_interp.Interp.result with
  | exception Slice_interp.Dyntrace.Trace_overflow -> ()
  | _ -> ()

let suite =
  [ Alcotest.test_case "thin subset of data" `Quick test_thin_subset_of_data;
    Alcotest.test_case "dynamic within static" `Quick test_dynamic_within_static;
    Alcotest.test_case "distinguishes runs" `Quick test_dynamic_distinguishes_runs ]
