(* Slicer tests: the subset ordering between modes, seed membership, exact
   thin slices for the paper's figures, and the BFS inspection metric. *)

open Slice_core
open Slice_workloads
open Helpers

module IntSet = Set.Make (Int)

let subset a b = IntSet.subset (IntSet.of_list a) (IntSet.of_list b)

let modes_ordered src seed_pattern =
  let a = analysis src in
  let line = line_of ~src ~pattern:seed_pattern in
  let seeds = Engine.seeds_at_line_exn a line in
  let s mode = Slicer.slice a.Engine.sdg ~seeds mode in
  let thin = s Slicer.Thin in
  let alias1 = s (Slicer.Thin_with_aliasing 1) in
  let alias2 = s (Slicer.Thin_with_aliasing 2) in
  let trad = s Slicer.Traditional_data in
  let full = s Slicer.Traditional_full in
  Alcotest.(check bool) "thin <= alias1" true (subset thin alias1);
  Alcotest.(check bool) "alias1 <= alias2" true (subset alias1 alias2);
  Alcotest.(check bool) "alias2 <= trad" true (subset alias2 trad);
  Alcotest.(check bool) "trad <= full" true (subset trad full);
  Alcotest.(check bool) "seed in thin" true
    (List.for_all (fun sd -> List.mem sd thin) seeds)

let test_mode_ordering () =
  modes_ordered Paper_figures.fig1 Paper_figures.fig1_seed;
  modes_ordered Paper_figures.fig4 "boolean open = f.isOpen();";
  modes_ordered Prog_nanoxml.base "print((String) this.lines.get(i));"

let test_fig1_exact_thin () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let thin = Engine.slice_from_line a ~line Slicer.Thin in
  (* the producer chain of the printed string (paper, section 1) *)
  let expected_patterns =
    [ "this.elems[count++] = p;";              (* Vector.add's store *)
      "return this.elems[ind];";               (* Vector.get's load *)
      "String fullName = input.readLine();";
      {|int spaceInd = fullName.indexOf(" ");|};
      "String firstName = fullName.substring(0, spaceInd - 1);";
      "firstNames.add(firstName);";
      "String firstName = (String) firstNames.get(i);";
      {|print("FIRST NAME: " + firstName);|};
      "Vector firstNames = readNames(new InputStream(args[0]));" ]
  in
  let expected = List.map (fun pat -> line_of ~src ~pattern:pat) expected_patterns in
  Alcotest.(check (list int)) "thin slice lines" (List.sort compare expected)
    (List.sort compare thin);
  (* none of the SessionState plumbing is in the thin slice *)
  List.iter
    (fun pat ->
      Alcotest.(check bool) (pat ^ " excluded") false
        (List.mem (line_of ~src ~pattern:pat) thin))
    [ "void setNames(Vector v) { this.names = v; }";
      "SessionState s = getState();";
      "return Globals.state;" ]

let test_fig1_traditional_includes_plumbing () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let trad = Engine.slice_from_line a ~line Slicer.Traditional_data in
  List.iter
    (fun pat ->
      Alcotest.(check bool) (pat ^ " included") true
        (List.mem (line_of ~src ~pattern:pat) trad))
    [ "void setNames(Vector v) { this.names = v; }";
      "SessionState s = getState();";
      "return Globals.state;";
      "Vector() { this.elems = new Object[10]; this.count = 0; }" ]

let test_thin_ignores_base_pointers () =
  (* the defining property: base-pointer manipulation of the container is
     not in the thin slice (paper, "Advantages of Thin Slicing") *)
  let src = Paper_figures.fig2 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig2_seed in
  let thin = Engine.slice_from_line ~filter:Engine.Only_loads a ~line Slicer.Thin in
  let expected =
    [ line_of ~src ~pattern:"B y = new B();";
      line_of ~src ~pattern:"w.f = y;";
      line_of ~src ~pattern:Paper_figures.fig2_seed ]
  in
  Alcotest.(check (list int)) "fig2 thin = {3,5,7}" (List.sort compare expected)
    (List.sort compare thin)

let test_bfs_metric () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let line = line_of ~src ~pattern:Paper_figures.fig1_seed in
  let buggy = line_of ~src ~pattern:Paper_figures.fig1_buggy_line in
  let thin = Engine.inspect_from_line a ~line ~desired:[ buggy ] Slicer.Thin in
  let trad =
    Engine.inspect_from_line a ~line ~desired:[ buggy ] Slicer.Traditional_data
  in
  Alcotest.(check bool) "thin finds the bug" true thin.Inspect.found;
  Alcotest.(check bool) "trad finds the bug" true trad.Inspect.found;
  Alcotest.(check bool) "thin inspects no more than trad" true
    (thin.Inspect.inspected <= trad.Inspect.inspected);
  Alcotest.(check bool) "inspected <= slice size" true
    (thin.Inspect.inspected <= thin.Inspect.slice_size);
  (* unreachable desired: metric reports not-found with full exploration *)
  let missing = Engine.inspect_from_line a ~line ~desired:[ 99999 ] Slicer.Thin in
  Alcotest.(check bool) "missing not found" false missing.Inspect.found;
  Alcotest.(check int) "explored everything" missing.Inspect.slice_size
    missing.Inspect.inspected

let test_bfs_order_deterministic () =
  let src = Prog_nanoxml.base in
  let a = analysis src in
  let line = line_of ~src ~pattern:"print((String) this.lines.get(i));" in
  let seeds = Engine.seeds_at_line_exn a line in
  let r1 = Inspect.bfs a.Engine.sdg ~seeds ~desired:[] Slicer.Traditional_data in
  let r2 = Inspect.bfs a.Engine.sdg ~seeds ~desired:[] Slicer.Traditional_data in
  Alcotest.(check bool) "same order" true (r1.Inspect.order = r2.Inspect.order)

let suite =
  [ Alcotest.test_case "mode ordering" `Quick test_mode_ordering;
    Alcotest.test_case "fig1 exact thin slice" `Quick test_fig1_exact_thin;
    Alcotest.test_case "fig1 traditional plumbing" `Quick
      test_fig1_traditional_includes_plumbing;
    Alcotest.test_case "thin ignores base pointers" `Quick
      test_thin_ignores_base_pointers;
    Alcotest.test_case "bfs metric" `Quick test_bfs_metric;
    Alcotest.test_case "bfs deterministic" `Quick test_bfs_order_deterministic ]
