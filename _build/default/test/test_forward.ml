(* Forward slicing and chopping tests. *)

open Slice_core
open Slice_workloads
open Helpers

module IntSet = Set.Make (Int)

let lines_of g nodes =
  nodes
  |> List.filter (Sdg.node_countable g)
  |> List.map (fun n -> (Sdg.node_loc g n).Slice_ir.Loc.line)
  |> List.sort_uniq compare

let test_forward_reaches_consumers () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let g = a.Engine.sdg in
  (* forward from the buggy substring: its value reaches the print *)
  let line = line_of ~src ~pattern:Paper_figures.fig1_buggy_line in
  let seeds = Engine.seeds_at_line_exn a line in
  let fwd = lines_of g (Slicer.forward_slice g ~seeds Slicer.Thin) in
  Alcotest.(check bool) "reaches the print" true
    (List.mem (line_of ~src ~pattern:Paper_figures.fig1_seed) fwd);
  Alcotest.(check bool) "reaches the Vector store" true
    (List.mem (line_of ~src ~pattern:"this.elems[count++] = p;") fwd);
  (* but not unrelated statements like getState *)
  Alcotest.(check bool) "not the session plumbing" false
    (List.mem (line_of ~src ~pattern:"return Globals.state;") fwd)

let test_forward_backward_duality () =
  (* n is in forward(seed) iff seed is in backward(n) *)
  let src = Paper_figures.fig2 in
  let a = analysis src in
  let g = a.Engine.sdg in
  for n = 0 to Sdg.num_nodes g - 1 do
    let fwd = Slicer.forward_slice g ~seeds:[ n ] Slicer.Thin in
    List.iter
      (fun m ->
        let back = Slicer.slice g ~seeds:[ m ] Slicer.Thin in
        if not (List.mem n back) then
          Alcotest.failf "duality violated between nodes %d and %d" n m)
      fwd
  done

let test_chop () =
  let src = Paper_figures.fig1 in
  let a = analysis src in
  let g = a.Engine.sdg in
  let source =
    Engine.seeds_at_line_exn a (line_of ~src ~pattern:Paper_figures.fig1_buggy_line)
  in
  let sink =
    Engine.seeds_at_line_exn a (line_of ~src ~pattern:Paper_figures.fig1_seed)
  in
  let chop_lines = lines_of g (Slicer.chop g ~source ~sink Slicer.Thin) in
  (* the chop is the value's route: through add, the array, and get *)
  List.iter
    (fun pat ->
      Alcotest.(check bool) (pat ^ " on the route") true
        (List.mem (line_of ~src ~pattern:pat) chop_lines))
    [ "firstNames.add(firstName);";
      "this.elems[count++] = p;";
      "return this.elems[ind];";
      "String firstName = (String) firstNames.get(i);" ];
  (* and excludes producers of the source itself (upstream of the chop) *)
  Alcotest.(check bool) "readLine upstream excluded" false
    (List.mem
       (line_of ~src ~pattern:"String fullName = input.readLine();")
       chop_lines);
  (* the chop is contained in both slices *)
  let back = lines_of g (Slicer.slice g ~seeds:sink Slicer.Thin) in
  Alcotest.(check bool) "chop within backward slice" true
    (IntSet.subset (IntSet.of_list chop_lines) (IntSet.of_list back))

let suite =
  [ Alcotest.test_case "forward reaches consumers" `Quick
      test_forward_reaches_consumers;
    Alcotest.test_case "forward/backward duality" `Quick
      test_forward_backward_duality;
    Alcotest.test_case "chop" `Quick test_chop ]
