(* Mod-ref analysis tests: direct effects, transitive closure over the
   call graph, and the static-field case. *)

open Slice_ir
open Slice_pta
open Helpers

let src =
  {|class Cell {
  int v;
  void write(int x) { this.v = x; }
  int read() { return this.v; }
  int touchAndRead(int x) { write(x); return read(); }
  int pure(int x) { return x + 1; }
}
class G { static int flag; }
void setFlag() { G.flag = 1; }
void main(String[] args) {
  Cell c = new Cell();
  print(itoa(c.touchAndRead(3)));
  print(itoa(c.pure(4)));
  setFlag();
}|}

let setup () =
  let p = load src in
  let r = Andersen.analyze p in
  let mr = Modref.compute p r in
  (p, r, mr)

let mods (p, r, mr) name =
  Modref.mod_of_method p r mr { Instr.mq_class = "Cell"; mq_name = name }

let refs (p, r, mr) name =
  Modref.ref_of_method p r mr { Instr.mq_class = "Cell"; mq_name = name }

let has_field_loc set =
  Modref.LocSet.exists
    (function Modref.Lfield (_, "v") -> true | _ -> false)
    set

let test_direct_effects () =
  let ctx = setup () in
  Alcotest.(check bool) "write mods v" true (has_field_loc (mods ctx "write"));
  Alcotest.(check bool) "write refs nothing" false (has_field_loc (refs ctx "write"));
  Alcotest.(check bool) "read refs v" true (has_field_loc (refs ctx "read"));
  Alcotest.(check bool) "read mods nothing" false (has_field_loc (mods ctx "read"))

let test_transitive_effects () =
  let ctx = setup () in
  Alcotest.(check bool) "touchAndRead mods v (via write)" true
    (has_field_loc (mods ctx "touchAndRead"));
  Alcotest.(check bool) "touchAndRead refs v (via read)" true
    (has_field_loc (refs ctx "touchAndRead"))

let test_pure_method () =
  let ctx = setup () in
  Alcotest.(check bool) "pure mods nothing" true
    (Modref.LocSet.is_empty (mods ctx "pure"));
  Alcotest.(check bool) "pure refs nothing" true
    (Modref.LocSet.is_empty (refs ctx "pure"))

let test_static_effects () =
  let p, r, mr = setup () in
  let set_mods =
    Modref.mod_of_method p r mr
      { Instr.mq_class = Types.toplevel_class; mq_name = "setFlag" }
  in
  Alcotest.(check bool) "setFlag mods G.flag" true
    (Modref.LocSet.mem (Modref.Lstatic ("G", "flag")) set_mods);
  (* main inherits every effect transitively *)
  let main_mods =
    Modref.mod_of_method p r mr
      { Instr.mq_class = Types.toplevel_class; mq_name = "main" }
  in
  Alcotest.(check bool) "main mods G.flag transitively" true
    (Modref.LocSet.mem (Modref.Lstatic ("G", "flag")) main_mods);
  Alcotest.(check bool) "main mods v transitively" true (has_field_loc main_mods)

let suite =
  [ Alcotest.test_case "direct effects" `Quick test_direct_effects;
    Alcotest.test_case "transitive effects" `Quick test_transitive_effects;
    Alcotest.test_case "pure method" `Quick test_pure_method;
    Alcotest.test_case "static effects" `Quick test_static_effects ]
