(* Interpreter tests: language semantics, runtime failures, intrinsics. *)

open Helpers

let test_arithmetic () =
  check_lines "arith"
    [ "7"; "-1"; "12"; "2"; "1" ]
    (run_ok
       (expr_main
          "print(itoa(3 + 4));\n\
           print(itoa(3 - 4));\n\
           print(itoa(3 * 4));\n\
           print(itoa(11 / 4));\n\
           print(itoa(13 % 4));"))

let test_comparisons_and_bools () =
  check_lines "bools"
    [ "true"; "false"; "true"; "true"; "false"; "true" ]
    (run_ok
       (expr_main
          "print(1 < 2);\n\
           print(2 < 1);\n\
           print(2 <= 2);\n\
           print(1 == 1);\n\
           print(1 != 1);\n\
           print(!false);"))

let test_short_circuit () =
  (* the right operand must not run when the left decides: the index-out-of
     bounds guard pattern must be safe *)
  check_lines "guard" [ "ok" ]
    (run_ok
       (expr_main
          "int[] a = new int[2];\n\
           int i = 5;\n\
           if (i < 2 && a[i] == 0) { print(\"bad\"); }\n\
           if (i >= 2 || a[i] == 1) { print(\"ok\"); }"))

let test_postincrement () =
  check_lines "postincr" [ "0"; "1"; "5" ]
    (run_ok
       (expr_main
          "int i = 0;\n\
           print(itoa(i++));\n\
           print(itoa(i));\n\
           int[] a = new int[3];\n\
           int j = 1;\n\
           a[j++] = 5;\n\
           print(itoa(a[1]));"))

let test_strings () =
  check_lines "strings"
    [ "hello world"; "5"; "ell"; "2"; "true"; "false"; "108"; "42"; "x" ]
    (run_ok
       (expr_main
          {|String h = "hello";
            print(h + " world");
            print(itoa(h.length()));
            print(h.substring(1, 4));
            print(itoa(h.indexOf("ll")));
            print(h.equals("hello"));
            print(h.equals("world"));
            print(itoa(h.charCodeAt(2)));
            print(itoa(parseInt(" 42 ")));
            print("x".charAt(0));|}))

let test_objects_and_dispatch () =
  check_lines "dispatch" [ "woof"; "meow"; "woof" ]
    (run_ok
       {|class Animal {
  String speak() { return "..."; }
}
class Dog extends Animal {
  String speak() { return "woof"; }
}
class Cat extends Animal {
  String speak() { return "meow"; }
}
void main(String[] args) {
  Animal a = new Dog();
  print(a.speak());
  a = new Cat();
  print(a.speak());
  Animal[] pen = new Animal[1];
  pen[0] = new Dog();
  print(pen[0].speak());
}|})

let test_constructor_chaining () =
  (* implicit super() must run the superclass constructor *)
  check_lines "ctor chain" [ "7"; "9" ]
    (run_ok
       {|class Base {
  int x;
  Base() { this.x = 7; }
}
class Derived extends Base {
  int y;
  Derived() { this.y = this.x + 2; }
}
void main(String[] args) {
  Derived d = new Derived();
  print(itoa(d.x));
  print(itoa(d.y));
}|})

let test_static_fields () =
  check_lines "statics" [ "1"; "43" ]
    (run_ok
       {|class Counter {
  static int count = 1;
  static int BASE = 42;
}
void main(String[] args) {
  print(itoa(Counter.count));
  Counter.count = Counter.count + Counter.BASE;
  print(itoa(Counter.count));
}|})

let test_instanceof () =
  check_lines "instanceof" [ "true"; "false"; "true"; "false" ]
    (run_ok
       {|class A { }
class B extends A { }
void main(String[] args) {
  A x = new B();
  print(x instanceof B);
  A y = new A();
  print(y instanceof B);
  print(y instanceof A);
  A z = null;
  print(z instanceof A);
}|})

let test_streams () =
  check_lines "streams" [ "one"; "two"; "done" ]
    (run_ok ~args:[ "f" ]
       ~streams:[ ("f", [ "one"; "two" ]) ]
       {|void main(String[] args) {
  InputStream s = new InputStream(args[0]);
  while (!s.eof()) { print(s.readLine()); }
  print("done");
}|})

let failure_kind f = f.Slice_interp.Interp.f_kind

let test_failures () =
  (match
     failure_kind
       (run_fail (expr_main "String s = null;\nprint(itoa(s.length()));"))
   with
  | Slice_interp.Interp.Null_pointer -> ()
  | k -> Alcotest.failf "expected NPE, got %s" (Slice_interp.Interp.failure_kind_to_string k));
  (match
     failure_kind (run_fail (expr_main "int[] a = new int[2];\nprint(itoa(a[5]));"))
   with
  | Slice_interp.Interp.Index_out_of_bounds (5, 2) -> ()
  | k -> Alcotest.failf "expected bounds, got %s" (Slice_interp.Interp.failure_kind_to_string k));
  (match failure_kind (run_fail (expr_main "int z = 0;\nprint(itoa(1 / z));")) with
  | Slice_interp.Interp.Division_by_zero -> ()
  | k -> Alcotest.failf "expected div0, got %s" (Slice_interp.Interp.failure_kind_to_string k));
  (match
     failure_kind
       (run_fail
          {|class A { }
class B extends A { }
class C extends A { }
void main(String[] args) {
  A x = new C();
  B y = (B) x;
  print("no");
}|})
   with
  | Slice_interp.Interp.Class_cast ("C", _) -> ()
  | k -> Alcotest.failf "expected cast, got %s" (Slice_interp.Interp.failure_kind_to_string k));
  match
    failure_kind
      (run_fail
         {|class Boom { }
void main(String[] args) { throw new Boom(); }|})
  with
  | Slice_interp.Interp.User_throw "Boom" -> ()
  | k -> Alcotest.failf "expected throw, got %s" (Slice_interp.Interp.failure_kind_to_string k)

let test_failure_location () =
  let f =
    run_fail
      {|void main(String[] args) {
  int x = 1;
  String s = null;
  print(s.substring(0, x));
}|}
  in
  Alcotest.(check int) "failure line" 4 f.Slice_interp.Interp.f_loc.Slice_ir.Loc.line

let test_step_limit () =
  let p = load (expr_main "while (true) { int x = 1; }") in
  let o =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with max_steps = 1000 }
      p
  in
  match o.Slice_interp.Interp.result with
  | Error { Slice_interp.Interp.f_kind = Slice_interp.Interp.Step_limit_exceeded; _ } ->
    ()
  | _ -> Alcotest.fail "expected step limit"

let test_recursion () =
  check_lines "fib" [ "55" ]
    (run_ok
       {|int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main(String[] args) { print(itoa(fib(10))); }|})

let test_vector_growth () =
  (* the Vector prelude must survive growth past its initial capacity *)
  let src =
    Slice_workloads.Runtime_lib.vector_src
    ^ {|void main(String[] args) {
  Vector v = new Vector();
  for (int i = 0; i < 30; i++) { v.add(itoa(i * i)); }
  print((String) v.get(25));
  print(itoa(v.size()));
}|}
  in
  check_lines "growth" [ "625"; "30" ] (run_ok src)

let test_hashmap () =
  let src =
    Slice_workloads.Runtime_lib.hashmap_src
    ^ {|void main(String[] args) {
  HashMap m = new HashMap();
  m.put("alpha", "1");
  m.put("beta", "2");
  m.put("alpha", "3");
  print((String) m.get("alpha"));
  print((String) m.get("beta"));
  print(itoa(m.size()));
  print(m.containsKey("gamma"));
}|}
  in
  check_lines "hashmap" [ "3"; "2"; "2"; "false" ] (run_ok src)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons and bools" `Quick test_comparisons_and_bools;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "post-increment" `Quick test_postincrement;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "objects and dispatch" `Quick test_objects_and_dispatch;
    Alcotest.test_case "constructor chaining" `Quick test_constructor_chaining;
    Alcotest.test_case "static fields" `Quick test_static_fields;
    Alcotest.test_case "instanceof" `Quick test_instanceof;
    Alcotest.test_case "streams" `Quick test_streams;
    Alcotest.test_case "failures" `Quick test_failures;
    Alcotest.test_case "failure location" `Quick test_failure_location;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "vector growth" `Quick test_vector_growth;
    Alcotest.test_case "hashmap" `Quick test_hashmap ]
