test/test_parser.ml: Alcotest Ast Format List Parser Printf Slice_front Slice_ir String
