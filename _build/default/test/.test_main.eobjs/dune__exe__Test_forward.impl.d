test/test_forward.ml: Alcotest Engine Helpers Int List Paper_figures Sdg Set Slice_core Slice_ir Slice_workloads Slicer
