test/test_interp.ml: Alcotest Helpers Slice_interp Slice_ir Slice_workloads
