test/test_ssa.ml: Alcotest Array Cfg Dominance Hashtbl Helpers Instr List Option Program QCheck2 QCheck_alcotest Slice_ir Slice_workloads Ssa
