test/test_tasks.ml: Alcotest Casts_suite Hashtbl List Runtime_lib Sir_suite Slice_core Slice_front Slice_ir Slice_workloads Task
