test/helpers.ml: Alcotest Format Printf Runtime_lib Slice_core Slice_front Slice_interp Slice_workloads
