test/test_sdg.ml: Alcotest Engine Helpers List Paper_figures Sdg Slice_core Slice_ir Slice_workloads Slicer String
