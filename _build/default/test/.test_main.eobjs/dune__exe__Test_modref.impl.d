test/test_modref.ml: Alcotest Andersen Helpers Instr Modref Slice_ir Slice_pta Types
