test/test_pta.ml: Alcotest Andersen Array Context Hashtbl Helpers Instr List Program Slice_core Slice_interp Slice_ir Slice_pta Slice_workloads String Types
