test/test_props.ml: Format Generators Hashtbl Helpers Int List Printf QCheck2 QCheck_alcotest Runtime_lib Set Slice_core Slice_interp Slice_ir Slice_workloads
