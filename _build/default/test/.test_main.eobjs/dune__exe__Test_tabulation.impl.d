test/test_tabulation.ml: Alcotest Engine Helpers Int List Paper_figures Prog_jtopas Prog_nanoxml Set Slice_core Slice_pta Slice_workloads Slicer Tabulation
