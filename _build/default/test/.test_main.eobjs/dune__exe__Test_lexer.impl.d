test/test_lexer.ml: Alcotest Fmt Lexer List Slice_front Slice_ir Token
