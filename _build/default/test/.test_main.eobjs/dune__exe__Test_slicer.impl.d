test/test_slicer.ml: Alcotest Engine Helpers Inspect Int List Paper_figures Prog_nanoxml Set Slice_core Slice_workloads Slicer
