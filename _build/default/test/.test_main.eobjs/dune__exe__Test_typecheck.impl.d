test/test_typecheck.ml: Alcotest Helpers Slice_front String
