test/test_dynamic.ml: Alcotest Hashtbl Helpers Int List Option Paper_figures Printf Set Slice_core Slice_interp Slice_ir Slice_workloads String
