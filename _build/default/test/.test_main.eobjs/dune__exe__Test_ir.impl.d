test/test_ir.ml: Alcotest Array Cfg Dominance Instr List Loc Program Slice_ir Types
