test/test_expansion.ml: Alcotest Engine Expansion Generators Helpers Int List Paper_figures Printf Prog_jtopas QCheck2 QCheck_alcotest Sdg Set Slice_core Slice_ir Slice_pta Slice_workloads Slicer
