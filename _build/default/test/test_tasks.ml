(* Evaluation-task tests: every Table 2 / Table 3 task must
   - validate (the buggy program misbehaves; fixed/cast programs succeed);
   - find its desired statements in the thin slice (with the task's
     declared expansions), and in the traditional slice;
   - never inspect more with thin than with traditional. *)

open Slice_workloads

let check_task (t : Task.t) () =
  (match Task.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let m = Task.measure t in
  Alcotest.(check bool) "thin finds desired" true m.Task.m_thin_found;
  Alcotest.(check bool) "trad finds desired" true m.Task.m_trad_found;
  Alcotest.(check bool) "thin <= trad (inspected)" true
    (m.Task.m_thin <= m.Task.m_trad);
  Alcotest.(check bool) "thin slice <= trad slice (size)" true
    (m.Task.m_thin_slice_size <= m.Task.m_trad_slice_size)

let task_cases tasks =
  List.map
    (fun (t : Task.t) -> Alcotest.test_case t.Task.id `Quick (check_task t))
    tasks

(* The tough casts of Table 3 must actually be tough: unverifiable by the
   pointer analysis.  Tag-discriminated casts are tough even with the
   object-sensitive container handling; casts on container retrievals
   become verifiable once containers are cloned per receiver, so they are
   checked against the baseline analysis (no-objsens) — the same
   observation the paper's ThinNoObjSens columns quantify. *)
let tough_lines_cache = Hashtbl.create 8

let tough_lines ~obj_sens src =
  match Hashtbl.find_opt tough_lines_cache (obj_sens, src) with
  | Some lines -> lines
  | None ->
    let a =
      Slice_core.Engine.analyze ~obj_sens
        (Slice_front.Frontend.load_exn ~file:"c.tj" src)
    in
    let lines =
      List.map
        (fun (_, i) -> i.Slice_ir.Instr.i_loc.Slice_ir.Loc.line)
        (Slice_core.Engine.tough_casts a)
    in
    Hashtbl.replace tough_lines_cache (obj_sens, src) lines;
    lines

let test_casts_are_tough () =
  List.iter
    (fun (t : Task.t) ->
      let seed_line =
        Runtime_lib.line_of ~src:t.Task.src ~pattern:t.Task.seed_pattern
      in
      let tough obj_sens = List.mem seed_line (tough_lines ~obj_sens t.Task.src) in
      if not (tough true || tough false) then
        Alcotest.failf "%s: seed cast at line %d not flagged as tough" t.Task.id
          seed_line)
    Casts_suite.tasks

(* The excluded xml-security shape: the bug IS in both slices, but only
   after essentially the whole hash computation has been inspected. *)
let test_unhelpful_case () =
  let t = Sir_suite.unhelpful in
  (match Task.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  let m = Task.measure t in
  Alcotest.(check bool) "found eventually" true m.Task.m_thin_found;
  (* slicing is no panacea here: thin buys (almost) nothing over
     traditional on this bug shape *)
  Alcotest.(check bool) "thin buys little" true (Task.ratio m < 1.5)

let suite =
  task_cases Sir_suite.tasks
  @ task_cases Casts_suite.tasks
  @ [ Alcotest.test_case "casts are tough" `Quick test_casts_are_tough;
      Alcotest.test_case "unhelpful xmlsec case" `Quick test_unhelpful_case ]
