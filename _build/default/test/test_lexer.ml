(* Lexer unit tests. *)

open Slice_front

let toks src =
  List.map (fun t -> t.Token.tok) (Lexer.tokenize ~file:"t.tj" src)

let tok_pp = Fmt.of_to_string Token.to_string
let tok = Alcotest.testable tok_pp ( = )

let check_toks msg expected src =
  Alcotest.(check (list tok)) msg (expected @ [ Token.EOF ]) (toks src)

let test_punctuation () =
  check_toks "operators"
    [ Token.LPAREN; Token.RPAREN; Token.PLUS; Token.PLUSPLUS; Token.MINUS;
      Token.STAR; Token.SLASH; Token.PERCENT; Token.SEMI ]
    "( ) + ++ - * / % ;"

let test_comparisons () =
  check_toks "comparisons"
    [ Token.LT; Token.LE; Token.GT; Token.GE; Token.EQ; Token.NE;
      Token.ASSIGN; Token.NOT; Token.AND; Token.OR ]
    "< <= > >= == != = ! && ||"

let test_keywords_vs_idents () =
  check_toks "keywords"
    [ Token.KW_class; Token.IDENT "classy"; Token.KW_if; Token.IDENT "iffy";
      Token.KW_new; Token.KW_this; Token.KW_instanceof ]
    "class classy if iffy new this instanceof"

let test_numbers () =
  check_toks "numbers" [ Token.INT 0; Token.INT 42; Token.INT 1234567 ] "0 42 1234567"

let test_strings () =
  check_toks "plain string" [ Token.STRING "hello world" ] {|"hello world"|};
  check_toks "escapes"
    [ Token.STRING "a\nb\tc\"d\\e" ]
    {|"a\nb\tc\"d\\e"|}

let test_comments () =
  check_toks "line comment" [ Token.INT 1; Token.INT 2 ] "1 // comment\n2";
  check_toks "block comment" [ Token.INT 1; Token.INT 2 ] "1 /* x\ny */ 2"

let test_locations () =
  let located = Lexer.tokenize ~file:"t.tj" "a\n  b" in
  match located with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Token.loc.Slice_ir.Loc.line;
    Alcotest.(check int) "a col" 1 a.Token.loc.Slice_ir.Loc.col;
    Alcotest.(check int) "b line" 2 b.Token.loc.Slice_ir.Loc.line;
    Alcotest.(check int) "b col" 3 b.Token.loc.Slice_ir.Loc.col
  | _ -> Alcotest.fail "expected three tokens"

let expect_lex_error src =
  match Lexer.tokenize ~file:"t.tj" src with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected a lexical error"

let test_errors () =
  expect_lex_error "\"unterminated";
  expect_lex_error "/* unterminated";
  expect_lex_error "a & b";
  expect_lex_error "a | b";
  expect_lex_error "@"

let suite =
  [ Alcotest.test_case "punctuation" `Quick test_punctuation;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "keywords vs idents" `Quick test_keywords_vs_idents;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "locations" `Quick test_locations;
    Alcotest.test_case "errors" `Quick test_errors ]
