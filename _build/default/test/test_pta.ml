(* Points-to analysis tests: precision on separated objects, soundness of
   the call graph against concrete execution, container cloning on/off,
   and cast verification. *)

open Slice_ir
open Slice_pta
open Helpers

let main_mq = { Instr.mq_class = Types.toplevel_class; mq_name = "main" }

(* pts set of the local named [name] in main, as allocation-site list *)
let pts_of_local (p : Program.t) (r : Andersen.result) (name : string) :
    int list =
  let m = Program.find_method_exn p main_mq in
  (* find the SSA variable whose name starts with [name] and has maximal
     version (the last definition) *)
  let best = ref None in
  Array.iteri
    (fun v vi ->
      let n = vi.Instr.vi_name in
      if
        n = name
        || String.length n > String.length name
           && String.sub n 0 (String.length name + 1) = name ^ "#"
      then best := Some v)
    m.Instr.m_vars;
  match !best with
  | None -> Alcotest.failf "no variable %s in main" name
  | Some v ->
    Andersen.ObjSet.elements (Andersen.pts_of_var_ci r main_mq v)
    |> List.map (fun o -> (Context.obj (Andersen.contexts r) o).Context.oi_site)

let test_separation () =
  let src =
    {|class Box { Object v; }
void main(String[] args) {
  Box a = new Box();
  Box b = new Box();
  a.v = "ga";
  b.v = "gb";
  Object x = a.v;
  Object y = b.v;
  print("done");
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  let xa = pts_of_local p r "x" and yb = pts_of_local p r "y" in
  Alcotest.(check int) "x has one source" 1 (List.length xa);
  Alcotest.(check int) "y has one source" 1 (List.length yb);
  Alcotest.(check bool) "distinct boxes do not alias" true (xa <> yb)

let test_merging_through_copy () =
  let src =
    {|class Box { Object v; }
void main(String[] args) {
  Box a = new Box();
  Box b = a;
  a.v = "ga";
  Object x = b.v;
  print("done");
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  Alcotest.(check int) "copy aliases" 1 (List.length (pts_of_local p r "x"))

let vectors_src =
  Slice_workloads.Runtime_lib.vector_src
  ^ {|void main(String[] args) {
  Vector v1 = new Vector();
  Vector v2 = new Vector();
  v1.add("apple");
  v2.add("banana");
  Object x = v1.get(0);
  Object y = v2.get(0);
  print("done");
}|}

let test_container_cloning () =
  let p = load vectors_src in
  let r = Andersen.analyze p in
  let x = pts_of_local p r "x" and y = pts_of_local p r "y" in
  Alcotest.(check int) "x precise" 1 (List.length x);
  Alcotest.(check int) "y precise" 1 (List.length y);
  Alcotest.(check bool) "different vectors separated" true (x <> y);
  (* Vector methods are cloned per receiver object *)
  let add_mq = { Instr.mq_class = "Vector"; mq_name = "add" } in
  Alcotest.(check int) "add analyzed twice" 2
    (List.length (Andersen.mctxs_of_method r add_mq))

let test_no_obj_sens_merges () =
  let p = load vectors_src in
  let r = Andersen.analyze ~opts:Andersen.no_obj_sens_opts p in
  let x = pts_of_local p r "x" in
  (* without cloning, both strings flow out of the shared backing array *)
  Alcotest.(check int) "merged contents" 2 (List.length x);
  let add_mq = { Instr.mq_class = "Vector"; mq_name = "add" } in
  Alcotest.(check int) "add analyzed once" 1
    (List.length (Andersen.mctxs_of_method r add_mq))

let test_call_graph_virtual () =
  let src =
    {|class Animal { String speak() { return "?"; } }
class Dog extends Animal { String speak() { return "woof"; } }
class Cat extends Animal { String speak() { return "meow"; } }
void main(String[] args) {
  Animal a = new Dog();
  print(a.speak());
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  let m = Program.find_method_exn p main_mq in
  let targets = ref [] in
  Instr.iter_instrs m (fun _ i ->
      match i.Instr.i_kind with
      | Instr.Call { kind = Instr.Virtual "speak"; _ } ->
        targets := Andersen.call_targets_ci r main_mq ~stmt:i.Instr.i_id
      | _ -> ());
  Alcotest.(check int) "one target" 1 (List.length !targets);
  Alcotest.(check string) "dispatches to Dog" "Dog"
    (List.hd !targets).Instr.mq_class;
  (* Cat.speak is unreachable *)
  Alcotest.(check bool) "Cat.speak unreachable" false
    (List.exists
       (fun mq -> mq.Instr.mq_class = "Cat")
       (Andersen.reachable_methods r))

let test_cast_verification () =
  let src =
    {|class A { }
class B extends A { }
void main(String[] args) {
  A good = new B();
  B b = (B) good;
  A bad = new A();
  Object o = bad;
  print("x");
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  let m = Program.find_method_exn p main_mq in
  Instr.iter_instrs m (fun _ i ->
      match i.Instr.i_kind with
      | Instr.Cast (_, Types.Tclass "B", _) ->
        Alcotest.(check bool) "provable cast verified" true
          (Andersen.cast_verified r main_mq i)
      | _ -> ())

let test_tough_cast_detection () =
  let a = analysis Slice_workloads.Paper_figures.fig5 in
  let casts = Slice_core.Engine.tough_casts a in
  Alcotest.(check int) "fig5 has one tough cast" 1 (List.length casts)

let test_static_fields_flow () =
  let src =
    {|class G { static Object shared; }
void main(String[] args) {
  G.shared = "hello";
  Object x = G.shared;
  print("done");
}|}
  in
  let p = load src in
  let r = Andersen.analyze p in
  Alcotest.(check int) "flows through static" 1
    (List.length (pts_of_local p r "x"))

(* Soundness vs execution: every method the interpreter actually runs must
   be in the static call graph. *)
let test_call_graph_soundness () =
  List.iter
    (fun (src, args, streams) ->
      let p = load src in
      let r = Andersen.analyze p in
      let reachable =
        List.map Instr.method_qname_to_string (Andersen.reachable_methods r)
      in
      (* interpret and record executed methods via the trace of statements *)
      let trace = Slice_interp.Dyntrace.create () in
      let _ =
        Slice_interp.Interp.run
          { Slice_interp.Interp.default_config with args; streams; trace = Some trace }
          p
      in
      let tbl = Program.build_stmt_table p in
      for i = 0 to Slice_interp.Dyntrace.length trace - 1 do
        let e = Slice_interp.Dyntrace.event trace i in
        match Hashtbl.find_opt tbl e.Slice_interp.Dyntrace.ev_stmt with
        | Some si ->
          let name = Instr.method_qname_to_string si.Program.s_method in
          if not (List.mem name reachable) then
            Alcotest.failf "executed method %s not in static call graph" name
        | None -> ()
      done)
    [ (vectors_src, [], []);
      (Slice_workloads.Paper_figures.fig1, fst Slice_workloads.Paper_figures.fig1_io,
       snd Slice_workloads.Paper_figures.fig1_io) ]

let suite =
  [ Alcotest.test_case "separation" `Quick test_separation;
    Alcotest.test_case "copy merging" `Quick test_merging_through_copy;
    Alcotest.test_case "container cloning" `Quick test_container_cloning;
    Alcotest.test_case "no-objsens merges" `Quick test_no_obj_sens_merges;
    Alcotest.test_case "virtual call graph" `Quick test_call_graph_virtual;
    Alcotest.test_case "cast verification" `Quick test_cast_verification;
    Alcotest.test_case "tough cast detection" `Quick test_tough_cast_detection;
    Alcotest.test_case "static field flow" `Quick test_static_fields_flow;
    Alcotest.test_case "call graph soundness" `Quick test_call_graph_soundness ]
