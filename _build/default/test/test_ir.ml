(* IR-level tests: def/use classification, CFG, dominance, postdominance. *)

open Slice_ir

let dummy_instr kind = { Instr.i_id = 0; i_kind = kind; i_loc = Loc.none }

let test_def_use () =
  let i = dummy_instr (Instr.Load (3, 4, "f")) in
  Alcotest.(check (option int)) "load def" (Some 3) (Instr.def_of_instr i);
  Alcotest.(check (list int)) "load uses" [ 4 ] (Instr.uses_of_instr i);
  let s = dummy_instr (Instr.Store (1, "f", 2)) in
  Alcotest.(check (option int)) "store def" None (Instr.def_of_instr s);
  Alcotest.(check (list int)) "store uses" [ 1; 2 ] (Instr.uses_of_instr s)

let test_use_classification () =
  (* x = y.f : y is a base pointer, not a direct use (paper section 2) *)
  let load = dummy_instr (Instr.Load (0, 1, "f")) in
  Alcotest.(check bool) "load base" true
    (List.mem (1, Instr.Use_base) (Instr.classified_uses load));
  (* a[i] = v : a base, i index, v value *)
  let st = dummy_instr (Instr.Array_store (1, 2, 3)) in
  let cls = Instr.classified_uses st in
  Alcotest.(check bool) "array base" true (List.mem (1, Instr.Use_base) cls);
  Alcotest.(check bool) "array index" true (List.mem (2, Instr.Use_index) cls);
  Alcotest.(check bool) "array value" true (List.mem (3, Instr.Use_value) cls);
  (* call arguments are value uses (producers into the callee) *)
  let call =
    dummy_instr (Instr.Call { lhs = None; kind = Instr.Virtual "m"; args = [ 7; 8 ] })
  in
  Alcotest.(check bool) "call args are values" true
    (List.for_all (fun (_, c) -> c = Instr.Use_value) (Instr.classified_uses call))

(* Build a small diamond CFG by hand:
     B0 -> B1, B2;  B1 -> B3;  B2 -> B3;  B3 -> exit *)
let diamond_method () =
  let p = Program.create () in
  let mk_term kind = { Instr.t_id = Program.fresh_stmt_id p; t_kind = kind; t_loc = Loc.none } in
  let cond_var = 0 in
  let blocks =
    [| { Instr.b_label = 0; b_instrs = []; b_term = mk_term (Instr.If (cond_var, 1, 2)) };
       { Instr.b_label = 1; b_instrs = []; b_term = mk_term (Instr.Goto 3) };
       { Instr.b_label = 2; b_instrs = []; b_term = mk_term (Instr.Goto 3) };
       { Instr.b_label = 3; b_instrs = []; b_term = mk_term (Instr.Return None) } |]
  in
  { Instr.m_qname = { Instr.mq_class = "T"; mq_name = "m" };
    m_static = true;
    m_params = [ 0 ];
    m_param_tys = [ Types.Tbool ];
    m_ret_ty = Types.Tvoid;
    m_vars = [| { Instr.vi_name = "c"; vi_kind = Instr.Vparam 0; vi_ty = Types.Tbool } |];
    m_body = Instr.Body { blocks; entry = 0 };
    m_loc = Loc.none }

let test_cfg () =
  let m = diamond_method () in
  let g = Cfg.build m in
  Alcotest.(check (list int)) "succ of 0" [ 1; 2 ] (Cfg.successors g 0);
  Alcotest.(check (list int)) "pred of 3" [ 1; 2 ]
    (List.sort compare (Cfg.predecessors g 3));
  Alcotest.(check (list int)) "exits" [ 3 ] g.Cfg.exits;
  Alcotest.(check int) "rpo head" 0 (List.hd (Cfg.reverse_postorder g))

let test_dominators () =
  let m = diamond_method () in
  let g = Cfg.build m in
  let d = Dominance.compute (Dominance.forward_graph g) in
  Alcotest.(check (option int)) "idom 1" (Some 0) (Dominance.idom d 1);
  Alcotest.(check (option int)) "idom 2" (Some 0) (Dominance.idom d 2);
  Alcotest.(check (option int)) "idom 3" (Some 0) (Dominance.idom d 3);
  Alcotest.(check bool) "0 dominates 3" true (Dominance.dominates d ~dom:0 ~node:3);
  Alcotest.(check bool) "1 does not dominate 3" false
    (Dominance.dominates d ~dom:1 ~node:3);
  let df = Dominance.dominance_frontiers d in
  Alcotest.(check (list int)) "df of 1" [ 3 ] df.(1);
  Alcotest.(check (list int)) "df of 2" [ 3 ] df.(2)

let test_postdominators () =
  let m = diamond_method () in
  let g = Cfg.build m in
  let pd = Dominance.compute (Dominance.backward_graph g) in
  (* B3 postdominates everything; B1/B2 postdominate nothing else *)
  Alcotest.(check bool) "3 postdominates 0" true
    (Dominance.dominates pd ~dom:3 ~node:0);
  Alcotest.(check bool) "1 does not postdominate 0" false
    (Dominance.dominates pd ~dom:1 ~node:0);
  (* B1 and B2 are control dependent on B0 (their pdf is {B0}) *)
  let pdf = Dominance.dominance_frontiers pd in
  Alcotest.(check (list int)) "pdf of 1" [ 0 ] pdf.(1);
  Alcotest.(check (list int)) "pdf of 2" [ 0 ] pdf.(2)

let test_loop_dominance () =
  (* B0 -> B1 (header) -> B2 (body) -> B1; B1 -> B3 (exit) *)
  let p = Program.create () in
  let mk_term kind = { Instr.t_id = Program.fresh_stmt_id p; t_kind = kind; t_loc = Loc.none } in
  let blocks =
    [| { Instr.b_label = 0; b_instrs = []; b_term = mk_term (Instr.Goto 1) };
       { Instr.b_label = 1; b_instrs = []; b_term = mk_term (Instr.If (0, 2, 3)) };
       { Instr.b_label = 2; b_instrs = []; b_term = mk_term (Instr.Goto 1) };
       { Instr.b_label = 3; b_instrs = []; b_term = mk_term (Instr.Return None) } |]
  in
  let m =
    { (diamond_method ()) with
      Instr.m_qname = { Instr.mq_class = "T"; mq_name = "loop" };
      m_body = Instr.Body { blocks; entry = 0 } }
  in
  let g = Cfg.build m in
  let d = Dominance.compute (Dominance.forward_graph g) in
  Alcotest.(check (option int)) "idom body" (Some 1) (Dominance.idom d 2);
  let df = Dominance.dominance_frontiers d in
  (* the back edge makes the header its own frontier member *)
  Alcotest.(check (list int)) "df of body" [ 1 ] df.(2);
  Alcotest.(check bool) "header in own df" true (List.mem 1 df.(1))

let suite =
  [ Alcotest.test_case "def/use" `Quick test_def_use;
    Alcotest.test_case "use classification" `Quick test_use_classification;
    Alcotest.test_case "cfg" `Quick test_cfg;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "postdominators" `Quick test_postdominators;
    Alcotest.test_case "loop dominance" `Quick test_loop_dominance ]
