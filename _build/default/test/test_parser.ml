(* Parser unit tests: shapes of the AST, precedence, disambiguation, and
   rejection of malformed programs. *)

open Slice_front

let parse src = Parser.parse_string ~file:"t.tj" src

let parse_expr_str s =
  (* wrap in a function so the expression parses in statement position *)
  let cu = parse (Printf.sprintf "void f() { int x = %s; }" s) in
  match cu.Ast.cu_decls with
  | [ Ast.Dfunc { Ast.md_body = [ { Ast.s_kind = Ast.Sdecl (_, _, Some e); _ } ]; _ } ]
    -> e
  | _ -> Alcotest.fail "unexpected parse shape"

let rec expr_to_string (e : Ast.expr) : string =
  match e.Ast.e_kind with
  | Ast.Eint n -> string_of_int n
  | Ast.Ebool b -> string_of_bool b
  | Ast.Estr s -> Printf.sprintf "%S" s
  | Ast.Enull -> "null"
  | Ast.Ethis -> "this"
  | Ast.Eident x -> x
  | Ast.Efield (b, f) -> Printf.sprintf "%s.%s" (expr_to_string b) f
  | Ast.Eindex (b, i) ->
    Printf.sprintf "%s[%s]" (expr_to_string b) (expr_to_string i)
  | Ast.Ecall (Ast.Cbare f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat "," (List.map expr_to_string args))
  | Ast.Ecall (Ast.Cmethod (b, m), args) ->
    Printf.sprintf "%s.%s(%s)" (expr_to_string b) m
      (String.concat "," (List.map expr_to_string args))
  | Ast.Ecall (Ast.Cstatic (c, m), args) ->
    Printf.sprintf "%s::%s(%s)" c m
      (String.concat "," (List.map expr_to_string args))
  | Ast.Ecall (Ast.Csuper, args) ->
    Printf.sprintf "super(%s)" (String.concat "," (List.map expr_to_string args))
  | Ast.Enew (c, args) ->
    Printf.sprintf "new %s(%s)" c (String.concat "," (List.map expr_to_string args))
  | Ast.Enew_array (t, n) ->
    Format.asprintf "new %a[%s]" Ast.pp_sty t (expr_to_string n)
  | Ast.Ebinop (op, l, r) ->
    Format.asprintf "(%s %a %s)" (expr_to_string l) Slice_ir.Types.pp_binop op
      (expr_to_string r)
  | Ast.Eunop (op, x) ->
    Format.asprintf "(%a%s)" Slice_ir.Types.pp_unop op (expr_to_string x)
  | Ast.Ecast (t, x) -> Format.asprintf "((%a)%s)" Ast.pp_sty t (expr_to_string x)
  | Ast.Einstanceof (x, t) ->
    Format.asprintf "(%s instanceof %a)" (expr_to_string x) Ast.pp_sty t
  | Ast.Epostincr (Ast.Lident (x, _)) -> x ^ "++"
  | Ast.Epostincr _ -> "<lv>++"

let check_parse msg expected src =
  Alcotest.(check string) msg expected (expr_to_string (parse_expr_str src))

let test_precedence () =
  check_parse "mul binds tighter" "(1 + (2 * 3))" "1 + 2 * 3";
  check_parse "left assoc" "((1 - 2) - 3)" "1 - 2 - 3";
  check_parse "comparison" "((a + b) < (c * d))" "a + b < c * d";
  check_parse "and/or" "((a && b) || (c && d))" "a && b || c && d";
  check_parse "not" "((!a) && b)" "!a && b";
  check_parse "parens" "((1 + 2) * 3)" "(1 + 2) * 3"

let test_postfix () =
  check_parse "field chain" "a.b.c" "a.b.c";
  check_parse "index" "a[(i + 1)]" "a[i + 1]";
  check_parse "method" "a.m(1,2)" "a.m(1, 2)";
  check_parse "mixed" "a.b[i].c(x)" "a.b[i].c(x)";
  check_parse "postincr" "i++" "i++"

let test_cast_vs_paren () =
  check_parse "uppercase is a cast" "((Foo)x)" "(Foo) x";
  check_parse "lowercase is parens" "y" "(y)";
  check_parse "cast of call" "((Foo)f(1))" "(Foo) f(1)";
  check_parse "array cast" "((Foo[])x)" "(Foo[]) x";
  check_parse "paren then op" "(y + 1)" "(y) + 1"

let test_static_call () =
  check_parse "static method" "Registry::lookup(\"k\")" {|Registry.lookup("k")|};
  check_parse "static field read stays a field" "Ops.ADD" "Ops.ADD"

let test_new_forms () =
  check_parse "new object" "new Foo(1)" "new Foo(1)";
  check_parse "new array" "new int[(n + 1)]" "new int[n + 1]";
  check_parse "new 2d array" "new int[][10]" "new int[10][]"

let test_for_desugar () =
  let cu = parse "void f() { for (int i = 0; i < 3; i++) { print(\"x\"); } }" in
  match cu.Ast.cu_decls with
  | [ Ast.Dfunc { Ast.md_body = [ { Ast.s_kind = Ast.Sblock [ init; w ]; _ } ]; _ } ]
    -> (
    (match init.Ast.s_kind with
    | Ast.Sdecl (Ast.Sint, "i", Some _) -> ()
    | _ -> Alcotest.fail "expected loop variable declaration");
    match w.Ast.s_kind with
    | Ast.Swhile (_, body) ->
      Alcotest.(check int) "body + update" 2 (List.length body)
    | _ -> Alcotest.fail "expected while")
  | _ -> Alcotest.fail "unexpected desugaring"

let expect_parse_error src =
  match parse src with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  expect_parse_error "void f() { 1 + 2; }";
  expect_parse_error "void f() { x = ; }";
  expect_parse_error "void f() { (x + 1) = 2; }";
  expect_parse_error "void f() { for (;;) { continue; } }";
  expect_parse_error "void f() { 1++; }";
  expect_parse_error "class C { int f; int f(int x) }";
  expect_parse_error "int x = 3;" (* no top-level fields *)

let test_class_members () =
  let cu =
    parse
      "class C extends D {\n\
      \  int x;\n\
      \  static boolean flag;\n\
      \  C(int a) { this.x = a; }\n\
      \  int get() { return this.x; }\n\
      \  static int zero() { return 0; }\n\
       }"
  in
  match cu.Ast.cu_decls with
  | [ Ast.Dclass cd ] ->
    Alcotest.(check (option string)) "super" (Some "D") cd.Ast.cd_super;
    Alcotest.(check int) "fields" 2 (List.length cd.Ast.cd_fields);
    Alcotest.(check int) "methods" 3 (List.length cd.Ast.cd_methods);
    let ctor = List.find (fun m -> m.Ast.md_is_ctor) cd.Ast.cd_methods in
    Alcotest.(check string) "ctor name" Slice_ir.Types.constructor_name
      ctor.Ast.md_name;
    let statics =
      List.filter (fun (m : Ast.method_decl) -> m.Ast.md_static) cd.Ast.cd_methods
    in
    Alcotest.(check int) "static methods" 1 (List.length statics)
  | _ -> Alcotest.fail "expected one class"

let suite =
  [ Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "postfix" `Quick test_postfix;
    Alcotest.test_case "cast vs paren" `Quick test_cast_vs_paren;
    Alcotest.test_case "static call" `Quick test_static_call;
    Alcotest.test_case "new forms" `Quick test_new_forms;
    Alcotest.test_case "for desugar" `Quick test_for_desugar;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "class members" `Quick test_class_members ]
