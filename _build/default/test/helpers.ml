(* Shared test helpers. *)

open Slice_workloads

let load ?container_classes src =
  Slice_front.Frontend.load_exn ?container_classes ~file:"test.tj" src

let load_err src : string =
  match Slice_front.Frontend.load ~file:"test.tj" src with
  | Ok _ -> Alcotest.fail "expected a frontend error"
  | Error e -> e.Slice_front.Frontend.err_msg

(* Run a TJ program and return its printed lines; fail the test on error. *)
let run_ok ?(args = []) ?(streams = []) src : string list =
  let p = load src in
  let o =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with args; streams }
      p
  in
  match o.Slice_interp.Interp.result with
  | Ok () -> o.Slice_interp.Interp.output
  | Error f ->
    Alcotest.failf "program failed: %s"
      (Format.asprintf "%a" Slice_interp.Interp.pp_failure f)

(* Run and return the failure kind; fail the test if the program succeeds. *)
let run_fail ?(args = []) ?(streams = []) src : Slice_interp.Interp.failure =
  let p = load src in
  let o =
    Slice_interp.Interp.run
      { Slice_interp.Interp.default_config with args; streams }
      p
  in
  match o.Slice_interp.Interp.result with
  | Error f -> f
  | Ok () -> Alcotest.fail "expected the program to fail"

let analysis ?obj_sens src = Slice_core.Engine.analyze ?obj_sens (load src)

(* A main wrapper for single-expression programs. *)
let expr_main body = Printf.sprintf "void main(String[] args) {\n%s\n}\n" body

let check_lines = Alcotest.(check (list string))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let line_of = Runtime_lib.line_of
