(* Frontend semantic checks: declaration errors and type errors, reported
   via [Frontend.load]'s error result. *)

open Helpers

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_err msg needle src =
  let e = load_err src in
  if not (contains ~needle e) then
    Alcotest.failf "%s: error %S does not mention %S" msg e needle

let test_unknown_names () =
  check_err "unknown variable" "unknown variable"
    (expr_main "print(itoa(nope));");
  check_err "unknown class" "unknown class" "void f(Widget w) { }";
  check_err "unknown function" "unknown function" (expr_main "frobnicate();");
  check_err "unknown field" "no field"
    "class C { }\nvoid main(String[] args) { C c = new C(); print(itoa(c.x)); }";
  check_err "unknown method" "no method"
    "class C { }\nvoid main(String[] args) { C c = new C(); c.m(); }"

let test_type_mismatches () =
  check_err "int where bool" "type mismatch" (expr_main "if (1) { print(\"x\"); }");
  check_err "bool plus int" "type mismatch" (expr_main "int x = true + 1;");
  check_err "assign wrong type" "type mismatch"
    (expr_main "int x = 0; x = \"s\";");
  check_err "arg type" "type mismatch"
    "void f(int x) { }\nvoid main(String[] args) { f(\"s\"); }";
  check_err "return type" "type mismatch"
    "int f() { return \"s\"; }\nvoid main(String[] args) { }";
  check_err "compare across types" "cannot compare" (expr_main "boolean b = 1 == true;")

let test_arity () =
  check_err "too few args" "expects 2 argument"
    "void f(int x, int y) { }\nvoid main(String[] args) { f(1); }"

let test_void_misuse () =
  check_err "void in expression" "void method call"
    "void f() { }\nvoid main(String[] args) { int x = f(); }";
  check_err "void as argument" "void method call"
    "void g() { }\nvoid main(String[] args) { print(g()); }"

let test_this_in_static () =
  check_err "this in free function" "static context" (expr_main "print(this);")

let test_returns () =
  check_err "missing return" "does not return"
    "int f(int x) { if (x > 0) { return 1; } }\nvoid main(String[] args) { }";
  (* while(true) with no break counts as returning *)
  (match
     Slice_front.Frontend.load ~file:"t.tj"
       "int f() { while (true) { return 1; } }\nvoid main(String[] args) { }"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "spin loop rejected: %s" e.Slice_front.Frontend.err_msg);
  check_err "while-true with break needs return" "does not return"
    "int f(int x) { while (true) { if (x > 0) { break; } return 1; } }\n\
     void main(String[] args) { }"

let test_hierarchy_errors () =
  check_err "duplicate class" "duplicate class" "class C { }\nclass C { }";
  check_err "cyclic inheritance" "cyclic"
    "class A extends B { }\nclass B extends A { }";
  check_err "bad override" "different signature"
    "class A { int f() { return 1; } }\nclass B extends A { boolean f() { return true; } }";
  check_err "duplicate method" "duplicate method"
    "class C { int f() { return 1; } int f() { return 2; } }";
  check_err "duplicate field" "duplicate field" "class C { int x; int x; }"

let test_scoping () =
  check_err "redeclared in scope" "already declared"
    (expr_main "int x = 1; int x = 2;");
  (* shadowing an outer scope is allowed *)
  (match
     Slice_front.Frontend.load ~file:"t.tj"
       (expr_main "int x = 1; if (x > 0) { int y = 2; print(itoa(y)); }")
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "inner scope rejected: %s" e.Slice_front.Frontend.err_msg);
  check_err "out of scope" "unknown variable"
    (expr_main "if (true) { int y = 2; }\nprint(itoa(y));")

let test_cast_rules () =
  check_err "cast primitive" "reference types" (expr_main "Object o = (Object) 3;");
  check_err "impossible cast" "impossible cast"
    "class A { }\nclass B { }\nvoid main(String[] args) { A a = new A(); B b = (B) a; }"

let test_super_rules () =
  check_err "super outside ctor" "only allowed inside a constructor"
    "class A { }\nclass B extends A { void m() { super(); } }";
  check_err "implicit super needs zero-arg ctor" "must explicitly call super"
    "class A { A(int x) { } }\nclass B extends A { }"

let suite =
  [ Alcotest.test_case "unknown names" `Quick test_unknown_names;
    Alcotest.test_case "type mismatches" `Quick test_type_mismatches;
    Alcotest.test_case "arity" `Quick test_arity;
    Alcotest.test_case "void misuse" `Quick test_void_misuse;
    Alcotest.test_case "this in static" `Quick test_this_in_static;
    Alcotest.test_case "returns" `Quick test_returns;
    Alcotest.test_case "hierarchy errors" `Quick test_hierarchy_errors;
    Alcotest.test_case "scoping" `Quick test_scoping;
    Alcotest.test_case "cast rules" `Quick test_cast_rules;
    Alcotest.test_case "super rules" `Quick test_super_rules ]
