(* Telemetry: trace spans + metric registry + sinks.

   The registry is PER-DOMAIN (OCaml 5 [Domain.DLS]).  The root domain's
   registry is what the drivers (thinslice, bench) observe — the pipeline
   still runs there, so nothing changes for single-threaded use and metric
   handles interned at module-initialisation time stay live across
   [reset] (values are zeroed in place).  A spawned domain lazily gets a
   fresh, empty registry of its own: workers of a parallel slice batch
   record into private tables with no synchronisation on the hot path,
   and the parent folds each worker's {!snapshot} into its own registry
   with {!merge_snapshot} after [Domain.join] — counters summed, peak
   gauges maxed, histograms combined, spans appended.  Nothing races:
   each registry is only ever touched by its own domain, and merge-back
   happens in the parent after the worker has finished.

   Metric handles ([counter]/[gauge]/[histogram]) are process-global and
   interned by name (under a mutex — creation is rare), but resolve to a
   per-domain cell via their own DLS key, so a bump is a DLS array read
   plus an [incr]: cheap enough to leave in the slicer's inner loop. *)

(* ------------------------------------------------------------------ *)
(* Enable / disable                                                    *)
(* ------------------------------------------------------------------ *)

(* Atomic: read by worker domains, toggled by drivers. *)
let enabled_flag = Atomic.make true

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ------------------------------------------------------------------ *)
(* Span trees (shape shared by registries and snapshots)               *)
(* ------------------------------------------------------------------ *)

type span_tree = {
  sp_name : string;
  sp_start : float;
  sp_wall : float;
  sp_minor_words : float;
  sp_args : (string * string) list;
  sp_children : span_tree list;
}

(* Open spans carry mutable fields; finished trees are immutable.
   [os_args] collects annotations: the ones passed at open time plus any
   appended by [add_span_arg] while the span is running (reversed). *)
type open_span = {
  os_name : string;
  os_start : float;                       (* seconds since [epoch] *)
  os_minor0 : float;
  mutable os_args : (string * string) list;
  mutable os_done : span_tree list;       (* finished children, reversed *)
}

(* ------------------------------------------------------------------ *)
(* The per-domain registry                                             *)
(* ------------------------------------------------------------------ *)

(* Histograms keep, beyond count/sum/min/max, a fixed array of
   log-scaled bucket counts so any sink can estimate percentiles without
   storing samples.  Geometry (shared by every histogram, so buckets are
   mergeable element-wise across scopes and domains): bucket 0 catches
   v <= 2^hist_min_exp (including 0 and negatives); bucket i (1-based)
   catches values up to 2^(hist_min_exp + i/hist_sub) — [hist_sub]
   sub-buckets per octave, so any estimate is within a factor of
   2^(1/hist_sub) ~ 19% of the exact quantile; the last bucket is an
   overflow catch-all.  The range 2^-30 .. 2^30 covers nanosecond walls
   up to giga-counts. *)
let hist_min_exp = -30
let hist_max_exp = 30
let hist_sub = 4
let hist_buckets = ((hist_max_exp - hist_min_exp) * hist_sub) + 2

let bucket_of_value (v : float) : int =
  if not (v > ldexp 1.0 hist_min_exp) then 0
  else
    let i = 1 + int_of_float (Float.floor ((Float.log2 v -. float_of_int hist_min_exp) *. float_of_int hist_sub)) in
    if i >= hist_buckets - 1 then hist_buckets - 1 else i

(* Representative value of a bucket: its upper bound (0 for the underflow
   bucket; the overflow bucket reports its lower bound — the geometry has
   no upper bound there). *)
let bucket_value (i : int) : float =
  if i <= 0 then 0.
  else
    let i = min i (hist_buckets - 1) in
    Float.exp2 (float_of_int hist_min_exp +. (float_of_int i /. float_of_int hist_sub))

(* Estimated q-quantile (q in [0,1]) of a bucket-count array: the
   representative value of the first bucket at which the cumulative count
   reaches ceil(q * count) (at least 1).  Deterministic, and exact up to
   the bucket width.  0 when the histogram is empty. *)
let percentile ~(count : int) ~(buckets : int array) (q : float) : float =
  if count <= 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int count))) in
    let cum = ref 0 and found = ref (hist_buckets - 1) in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= target then begin
             found := i;
             raise Exit
           end)
         buckets
     with Exit -> ());
    bucket_value !found
  end

type hist_cell = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;   (* hist_buckets log-scaled bucket counts *)
}

type registry = {
  reg_counters : (string, int ref) Hashtbl.t;
  reg_gauges : (string, float ref) Hashtbl.t;
  reg_hists : (string, hist_cell) Hashtbl.t;
  (* completed top-level spans (reversed) and the open-span stack
     (innermost first) *)
  mutable reg_roots : span_tree list;
  mutable reg_stack : open_span list;
}

let create_registry () : registry =
  { reg_counters = Hashtbl.create 64;
    reg_gauges = Hashtbl.create 16;
    reg_hists = Hashtbl.create 16;
    reg_roots = [];
    reg_stack = [] }

(* The root domain's registry.  [registry_key]'s initialiser mints a
   fresh registry, which is what every SPAWNED domain gets on first
   access; the [DLS.set] below pins the root domain (the one initialising
   this module) to [root_registry] instead. *)
let root_registry = create_registry ()

let registry_key : registry Domain.DLS.key =
  Domain.DLS.new_key create_registry

let () = Domain.DLS.set registry_key root_registry

let current_registry () : registry = Domain.DLS.get registry_key

(* Cell interning WITHIN one registry: only ever called by the registry's
   own domain, so no locking.  Idempotent by name. *)
let reg_counter_cell (reg : registry) (name : string) : int ref =
  match Hashtbl.find_opt reg.reg_counters name with
  | Some c -> c
  | None ->
    let c = ref 0 in
    Hashtbl.replace reg.reg_counters name c;
    c

let gauge_cell (reg : registry) (name : string) : float ref =
  match Hashtbl.find_opt reg.reg_gauges name with
  | Some g -> g
  | None ->
    let g = ref 0. in
    Hashtbl.replace reg.reg_gauges name g;
    g

let hist_cell (reg : registry) (name : string) : hist_cell =
  match Hashtbl.find_opt reg.reg_hists name with
  | Some h -> h
  | None ->
    let h =
      { h_count = 0; h_sum = 0.; h_min = 0.; h_max = 0.;
        h_buckets = Array.make hist_buckets 0 }
    in
    Hashtbl.replace reg.reg_hists name h;
    h

(* ------------------------------------------------------------------ *)
(* Metric handles                                                      *)
(* ------------------------------------------------------------------ *)

(* A handle pairs the metric name with a DLS key resolving to the current
   domain's cell (interned into that domain's registry on first use).
   Handles themselves are interned by name in process-global tables so
   [counter "x" == counter "x"]; the tables are mutex-protected because a
   worker domain may intern a metric of its own. *)

type counter = int ref Domain.DLS.key
type gauge = float ref Domain.DLS.key
type histogram = hist_cell Domain.DLS.key

let handle_mutex = Mutex.create ()
let counter_handles : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauge_handles : (string, gauge) Hashtbl.t = Hashtbl.create 16
let hist_handles : (string, histogram) Hashtbl.t = Hashtbl.create 16

let intern_handle (tbl : (string, 'h) Hashtbl.t) (name : string)
    (make : string -> 'h) : 'h =
  Mutex.protect handle_mutex (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some h -> h
      | None ->
        let h = make name in
        Hashtbl.replace tbl name h;
        h)

let counter (name : string) : counter =
  intern_handle counter_handles name (fun name ->
      Domain.DLS.new_key (fun () -> reg_counter_cell (current_registry ()) name))

let bump (c : counter) = incr (Domain.DLS.get c)

(* The raw per-domain cell: for hot loops.  Stable for the domain's
   lifetime — [scoped] zeroes and restores through the same ref. *)
let counter_cell (c : counter) : int ref = Domain.DLS.get c

let add (c : counter) n =
  let r = Domain.DLS.get c in
  r := !r + n

let counter_value name =
  match Hashtbl.find_opt (current_registry ()).reg_counters name with
  | Some c -> !c
  | None -> 0

let gauge (name : string) : gauge =
  intern_handle gauge_handles name (fun name ->
      Domain.DLS.new_key (fun () -> gauge_cell (current_registry ()) name))

let set_gauge (g : gauge) v = Domain.DLS.get g := v

let max_gauge (g : gauge) v =
  let r = Domain.DLS.get g in
  if v > !r then r := v

let gauge_value name =
  match Hashtbl.find_opt (current_registry ()).reg_gauges name with
  | Some g -> !g
  | None -> 0.

let histogram (name : string) : histogram =
  intern_handle hist_handles name (fun name ->
      Domain.DLS.new_key (fun () -> hist_cell (current_registry ()) name))

let observe_cell (h : hist_cell) (v : float) : unit =
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let b = bucket_of_value v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let observe (h : histogram) (v : float) : unit =
  observe_cell (Domain.DLS.get h) v

let hist_cell_stats (h : hist_cell) = (h.h_count, h.h_sum, h.h_min, h.h_max)

let histogram_stats (h : histogram) = hist_cell_stats (Domain.DLS.get h)

let histogram_percentile (h : histogram) (q : float) : float =
  let c = Domain.DLS.get h in
  percentile ~count:c.h_count ~buckets:c.h_buckets q

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let epoch = Unix.gettimeofday ()
let now () = Unix.gettimeofday () -. epoch

let close_span (reg : registry) (os : open_span) : unit =
  let tree =
    { sp_name = os.os_name;
      sp_start = os.os_start;
      sp_wall = now () -. os.os_start;
      sp_minor_words = Gc.minor_words () -. os.os_minor0;
      sp_args = List.rev os.os_args;
      sp_children = List.rev os.os_done }
  in
  (match reg.reg_stack with
  | s :: rest when s == os -> reg.reg_stack <- rest
  | _ ->
    (* unbalanced (an exception skipped an inner close): pop through *)
    reg.reg_stack <- List.filter (fun s -> s != os) reg.reg_stack);
  match reg.reg_stack with
  | parent :: _ -> parent.os_done <- tree :: parent.os_done
  | [] -> reg.reg_roots <- tree :: reg.reg_roots

let span ?(args : (string * string) list = []) (name : string)
    (f : unit -> 'a) : 'a =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let reg = current_registry () in
    let os =
      { os_name = name;
        os_start = now ();
        os_minor0 = Gc.minor_words ();
        os_args = List.rev args;
        os_done = [] }
    in
    reg.reg_stack <- os :: reg.reg_stack;
    (* spans never cross domains: [f] runs in this domain, so the registry
       to close against is [reg] *)
    Fun.protect ~finally:(fun () -> close_span reg os) f
  end

(* Annotate the innermost OPEN span of the calling domain with a fact
   discovered while it runs (e.g. the slice size, known only after the
   walk).  No-op when spans are disabled or none is open — safe to call
   unconditionally from library code. *)
let add_span_arg (key : string) (value : string) : unit =
  if Atomic.get enabled_flag then
    match (current_registry ()).reg_stack with
    | os :: _ -> os.os_args <- (key, value) :: os.os_args
    | [] -> ()

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_hists : (string * (int * float * float * float)) list;
  snap_hist_buckets : (string * int array) list;
  snap_spans : span_tree list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Snapshot / reset / scoped all operate on the CALLING domain's registry:
   from the root domain they behave exactly as they always did; inside a
   worker domain they see only that worker's own telemetry. *)

let snapshot () : snapshot =
  let reg = current_registry () in
  { snap_counters = sorted_bindings reg.reg_counters (fun c -> !c);
    snap_gauges = sorted_bindings reg.reg_gauges (fun g -> !g);
    snap_hists = sorted_bindings reg.reg_hists hist_cell_stats;
    snap_hist_buckets =
      sorted_bindings reg.reg_hists (fun h -> Array.copy h.h_buckets);
    snap_spans = List.rev reg.reg_roots }

let snapshot_percentile (s : snapshot) (name : string) (q : float) : float =
  match
    (List.assoc_opt name s.snap_hists, List.assoc_opt name s.snap_hist_buckets)
  with
  | Some (count, _, _, _), Some buckets -> percentile ~count ~buckets q
  | _ -> 0.

let zero_hist (h : hist_cell) : unit =
  h.h_count <- 0;
  h.h_sum <- 0.;
  h.h_min <- 0.;
  h.h_max <- 0.;
  Array.fill h.h_buckets 0 hist_buckets 0

let reset () : unit =
  let reg = current_registry () in
  Hashtbl.iter (fun _ c -> c := 0) reg.reg_counters;
  Hashtbl.iter (fun _ g -> g := 0.) reg.reg_gauges;
  Hashtbl.iter (fun _ h -> zero_hist h) reg.reg_hists;
  reg.reg_roots <- [];
  reg.reg_stack <- []

(* Span rotation for processes that never exit.  Completed span trees
   accumulate in [reg_roots] without bound — a long-lived daemon that
   snapshots per query must drop what it has already shipped, or the
   registry becomes an unbounded leak.  Counters/gauges/histograms are
   left alone (they are cheap, fixed-size, and cumulative by design),
   and so are OPEN spans: dropping an ancestor still on [reg_stack]
   would corrupt the close path. *)
let reset_spans () : unit =
  let reg = current_registry () in
  reg.reg_roots <- []

(* Merge one hist-stats tuple (and, when available, its bucket counts)
   into a cell (counters/gauges have obvious merges inline; histograms
   share this). *)
let merge_hist_into ?(buckets : int array option) (h : hist_cell)
    (count, sum, mn, mx) : unit =
  if count > 0 then begin
    if h.h_count = 0 then begin
      h.h_min <- mn;
      h.h_max <- mx
    end
    else begin
      if mn < h.h_min then h.h_min <- mn;
      if mx > h.h_max then h.h_max <- mx
    end;
    h.h_count <- h.h_count + count;
    h.h_sum <- h.h_sum +. sum;
    match buckets with
    | Some b ->
      for i = 0 to hist_buckets - 1 do
        h.h_buckets.(i) <- h.h_buckets.(i) + b.(i)
      done
    | None -> ()
  end

(* Fold a snapshot captured elsewhere — typically in a worker domain that
   has since been joined — into the calling domain's registry: counters
   summed, peak gauges maxed, histograms combined, spans appended (under
   the innermost open span if one is running, else as new roots).  This
   is the "merge-back at join" half of the per-domain registry design;
   the parent calls it after [Domain.join], so the worker's registry is
   quiescent and no locking is needed. *)
let merge_snapshot (s : snapshot) : unit =
  let reg = current_registry () in
  List.iter
    (fun (name, v) ->
      if v <> 0 then begin
        let c = reg_counter_cell reg name in
        c := !c + v
      end)
    s.snap_counters;
  List.iter
    (fun (name, v) ->
      let g = gauge_cell reg name in
      if v > !g then g := v)
    s.snap_gauges;
  List.iter
    (fun (name, stats) ->
      merge_hist_into
        ?buckets:(List.assoc_opt name s.snap_hist_buckets)
        (hist_cell reg name) stats)
    s.snap_hists;
  if s.snap_spans <> [] then begin
    let rev_spans = List.rev s.snap_spans in
    match reg.reg_stack with
    | parent :: _ -> parent.os_done <- rev_spans @ parent.os_done
    | [] -> reg.reg_roots <- rev_spans @ reg.reg_roots
  end

(* Scoped measurement: isolate exactly what [f] records.

   Within one domain successive measurements accumulate: counters keep
   growing, peak gauges never come back down.  [scoped f] saves the
   calling domain's registry, zeroes it, runs [f], snapshots what [f]
   alone recorded, and then MERGES the saved state back (counters summed,
   peak gauges maxed, histograms combined, spans appended), so that
   cumulative telemetry is preserved while the returned snapshot is a
   per-task delta.  This is the fix for BENCH entries reporting
   cumulative numbers across tasks.  In-place on the registry's cells, so
   metric handles stay valid throughout. *)
let scoped (f : unit -> 'a) : 'a * snapshot =
  let reg = current_registry () in
  let saved_counters =
    Hashtbl.fold (fun _ c acc -> (c, !c) :: acc) reg.reg_counters []
  in
  let saved_gauges =
    Hashtbl.fold (fun _ g acc -> (g, !g) :: acc) reg.reg_gauges []
  in
  let saved_hists =
    Hashtbl.fold
      (fun _ h acc -> (h, hist_cell_stats h, Array.copy h.h_buckets) :: acc)
      reg.reg_hists []
  in
  List.iter (fun (c, _) -> c := 0) saved_counters;
  List.iter (fun (g, _) -> g := 0.) saved_gauges;
  List.iter (fun (h, _, _) -> zero_hist h) saved_hists;
  let saved_roots = reg.reg_roots and saved_stack = reg.reg_stack in
  reg.reg_roots <- [];
  reg.reg_stack <- [];
  let restore () =
    List.iter (fun (c, v) -> c := !c + v) saved_counters;
    List.iter (fun (g, v) -> if v > !g then g := v) saved_gauges;
    List.iter
      (fun (h, stats, buckets) -> merge_hist_into ~buckets h stats)
      saved_hists;
    let inner_roots = reg.reg_roots in
    reg.reg_stack <- saved_stack;
    (match saved_stack with
    | parent :: _ ->
      (* [scoped] ran inside an open span: its spans become children *)
      parent.os_done <- inner_roots @ parent.os_done;
      reg.reg_roots <- saved_roots
    | [] -> reg.reg_roots <- inner_roots @ saved_roots)
  in
  match f () with
  | r ->
    let snap = snapshot () in
    restore ();
    (r, snap)
  | exception e ->
    restore ();
    raise e

let span_totals (s : snapshot) : (string * float) list =
  let acc : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  let rec visit sp =
    (match Hashtbl.find_opt acc sp.sp_name with
    | Some r -> r := !r +. sp.sp_wall
    | None -> Hashtbl.replace acc sp.sp_name (ref sp.sp_wall));
    List.iter visit sp.sp_children
  in
  List.iter visit s.snap_spans;
  sorted_bindings acc (fun r -> !r)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape_string (s : string) : string =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let float_to_string (f : float) : string =
    match Float.classify_float f with
    | Float.FP_nan | Float.FP_infinite -> "null"   (* JSON has no nan/inf *)
    | _ ->
      let s = Printf.sprintf "%.17g" f in
      (* prefer the short form when it round-trips *)
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else s

  let rec write buf (j : t) : unit =
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string (j : t) : string =
    let buf = Buffer.create 1024 in
    write buf j;
    Buffer.contents buf

  (* --- parser: recursive descent over a string ----------------------- *)

  exception Parse_fail of string

  type parser_state = { text : string; mutable pos : int }

  let fail st msg =
    raise (Parse_fail (Printf.sprintf "%s at offset %d" msg st.pos))

  let peek st =
    if st.pos < String.length st.text then Some st.text.[st.pos] else None

  let skip_ws st =
    while
      st.pos < String.length st.text
      && (match st.text.[st.pos] with
         | ' ' | '\t' | '\n' | '\r' -> true
         | _ -> false)
    do
      st.pos <- st.pos + 1
    done

  let expect st c =
    match peek st with
    | Some c' when c' = c -> st.pos <- st.pos + 1
    | _ -> fail st (Printf.sprintf "expected %c" c)

  let literal st word value =
    let n = String.length word in
    if
      st.pos + n <= String.length st.text
      && String.sub st.text st.pos n = word
    then begin
      st.pos <- st.pos + n;
      value
    end
    else fail st (Printf.sprintf "expected %s" word)

  let parse_string_body st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> fail st "unterminated string"
      | Some '"' -> st.pos <- st.pos + 1
      | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
          if st.pos + 5 > String.length st.text then fail st "bad \\u escape";
          let hex = String.sub st.text (st.pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail st "bad \\u escape"
          in
          (* encode as UTF-8 (basic-plane only; surrogates kept verbatim) *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          st.pos <- st.pos + 5;
          go ()
        | _ -> fail st "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
    in
    go ();
    Buffer.contents buf

  let parse_number st =
    let start = st.pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      st.pos < String.length st.text && is_num_char st.text.[st.pos]
    do
      st.pos <- st.pos + 1
    done;
    let s = String.sub st.text start (st.pos - start) in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st "bad number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail st "bad number")

  let rec parse_value st : t =
    skip_ws st;
    match peek st with
    | None -> fail st "unexpected end of input"
    | Some '"' -> Str (parse_string_body st)
    | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec member () =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          members := (k, v) :: !members;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; member ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected , or }"
        in
        member ();
        Obj (List.rev !members)
      end
    | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec item () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; item ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected , or ]"
        in
        item ();
        List (List.rev !items)
      end
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some ('-' | '0' .. '9') -> parse_number st
    | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

  let of_string (s : string) : (t, string) result =
    let st = { text = s; pos = 0 } in
    match parse_value st with
    | v ->
      skip_ws st;
      if st.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    | exception Parse_fail msg -> Error msg

  let member (key : string) (j : t) : t option =
    match j with Obj kvs -> List.assoc_opt key kvs | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let rec span_to_json (sp : span_tree) : Json.t =
  Json.Obj
    ([ ("name", Json.Str sp.sp_name);
       ("start_s", Json.Float sp.sp_start);
       ("wall_s", Json.Float sp.sp_wall);
       ("minor_words", Json.Float sp.sp_minor_words) ]
    @ (if sp.sp_args = [] then []
       else
         [ ( "args",
             Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) sp.sp_args) )
         ])
    @ [ ("children", Json.List (List.map span_to_json sp.sp_children)) ])

let snapshot_to_json (s : snapshot) : Json.t =
  Json.Obj
    [ ("counters",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.snap_counters));
      ("gauges",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.snap_gauges));
      ("histograms",
       Json.Obj
         (List.map
            (fun (k, (count, sum, mn, mx)) ->
              ( k,
                Json.Obj
                  [ ("count", Json.Int count);
                    ("sum", Json.Float sum);
                    ("min", Json.Float mn);
                    ("max", Json.Float mx) ] ))
            s.snap_hists));
      ("spans", Json.List (List.map span_to_json s.snap_spans));
      ("phase_wall_s",
       Json.Obj
         (List.map (fun (k, v) -> (k, Json.Float v)) (span_totals s))) ]

let report (s : snapshot) : string =
  let buf = Buffer.create 1024 in
  if s.snap_spans <> [] then begin
    Buffer.add_string buf "spans (wall ms / minor kwords):\n";
    let rec pp indent sp =
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %9.3f ms %10.1f kw\n" indent
           (max 1 (32 - String.length indent))
           sp.sp_name (sp.sp_wall *. 1000.)
           (sp.sp_minor_words /. 1000.));
      List.iter (pp (indent ^ "  ")) sp.sp_children
    in
    List.iter (pp "  ") s.snap_spans
  end;
  if s.snap_counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (k, v) ->
        if v <> 0 then Buffer.add_string buf (Printf.sprintf "  %-40s %12d\n" k v))
      s.snap_counters
  end;
  if List.exists (fun (_, v) -> v <> 0.) s.snap_gauges then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (k, v) ->
        if v <> 0. then
          Buffer.add_string buf (Printf.sprintf "  %-40s %12.1f\n" k v))
      s.snap_gauges
  end;
  if List.exists (fun (_, (c, _, _, _)) -> c <> 0) s.snap_hists then begin
    Buffer.add_string buf
      "histograms (count/sum/min/max | ~p50/p90/p99):\n";
    List.iter
      (fun (k, (count, sum, mn, mx)) ->
        if count <> 0 then begin
          let p q = snapshot_percentile s k q in
          Buffer.add_string buf
            (Printf.sprintf
               "  %-40s %8d %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f\n" k
               count sum mn mx (p 0.50) (p 0.90) (p 0.99))
        end)
      s.snap_hists
  end;
  Buffer.contents buf

let chrome_trace (s : snapshot) : Json.t =
  let events = ref [] in
  let rec visit sp =
    events :=
      Json.Obj
        [ ("name", Json.Str sp.sp_name);
          ("ph", Json.Str "X");
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("ts", Json.Float (sp.sp_start *. 1e6));
          ("dur", Json.Float (sp.sp_wall *. 1e6));
          ("args",
           Json.Obj
             (("minor_words", Json.Float sp.sp_minor_words)
             :: List.map (fun (k, v) -> (k, Json.Str v)) sp.sp_args)) ]
      :: !events;
    List.iter visit sp.sp_children
  in
  List.iter visit s.snap_spans;
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.Str "ms") ]
