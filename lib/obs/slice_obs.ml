(* Process-global telemetry: trace spans + metric registry + sinks.

   Everything lives in module-global mutable state on purpose: the
   pipeline is single-threaded and the drivers (thinslice, bench) want to
   observe whatever analysis ran last without threading a handle through
   eight libraries.  [reset] zeroes values in place so metric handles
   interned at module-initialisation time stay live. *)

(* ------------------------------------------------------------------ *)
(* Enable / disable                                                    *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref true

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* ------------------------------------------------------------------ *)
(* Metric registry                                                     *)
(* ------------------------------------------------------------------ *)

type counter = int ref
type gauge = float ref

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let hists : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter (name : string) : counter =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = ref 0 in
    Hashtbl.replace counters name c;
    c

let bump (c : counter) = incr c
let add (c : counter) n = c := !c + n

let counter_value name =
  match Hashtbl.find_opt counters name with Some c -> !c | None -> 0

let gauge (name : string) : gauge =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = ref 0. in
    Hashtbl.replace gauges name g;
    g

let set_gauge g v = g := v
let max_gauge g v = if v > !g then g := v

let gauge_value name =
  match Hashtbl.find_opt gauges name with Some g -> !g | None -> 0.

let histogram (name : string) : histogram =
  match Hashtbl.find_opt hists name with
  | Some h -> h
  | None ->
    let h = { h_name = name; h_count = 0; h_sum = 0.; h_min = 0.; h_max = 0. } in
    Hashtbl.replace hists name h;
    h

let observe (h : histogram) (v : float) : unit =
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

let histogram_stats (h : histogram) = (h.h_count, h.h_sum, h.h_min, h.h_max)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span_tree = {
  sp_name : string;
  sp_start : float;
  sp_wall : float;
  sp_minor_words : float;
  sp_children : span_tree list;
}

(* Open spans carry mutable fields; finished trees are immutable. *)
type open_span = {
  os_name : string;
  os_start : float;                       (* seconds since [epoch] *)
  os_minor0 : float;
  mutable os_done : span_tree list;       (* finished children, reversed *)
}

let epoch = Unix.gettimeofday ()
let now () = Unix.gettimeofday () -. epoch

(* Completed top-level spans (reversed) and the open-span stack
   (innermost first). *)
let roots : span_tree list ref = ref []
let stack : open_span list ref = ref []

let close_span (os : open_span) : unit =
  let tree =
    { sp_name = os.os_name;
      sp_start = os.os_start;
      sp_wall = now () -. os.os_start;
      sp_minor_words = Gc.minor_words () -. os.os_minor0;
      sp_children = List.rev os.os_done }
  in
  (match !stack with
  | s :: rest when s == os -> stack := rest
  | _ ->
    (* unbalanced (an exception skipped an inner close): pop through *)
    stack := List.filter (fun s -> s != os) !stack);
  match !stack with
  | parent :: _ -> parent.os_done <- tree :: parent.os_done
  | [] -> roots := tree :: !roots

let span (name : string) (f : unit -> 'a) : 'a =
  if not !enabled_flag then f ()
  else begin
    let os =
      { os_name = name;
        os_start = now ();
        os_minor0 = Gc.minor_words ();
        os_done = [] }
    in
    stack := os :: !stack;
    Fun.protect ~finally:(fun () -> close_span os) f
  end

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_hists : (string * (int * float * float * float)) list;
  snap_spans : span_tree list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () : snapshot =
  { snap_counters = sorted_bindings counters (fun c -> !c);
    snap_gauges = sorted_bindings gauges (fun g -> !g);
    snap_hists = sorted_bindings hists histogram_stats;
    snap_spans = List.rev !roots }

let reset () : unit =
  Hashtbl.iter (fun _ c -> c := 0) counters;
  Hashtbl.iter (fun _ g -> g := 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- 0.;
      h.h_max <- 0.)
    hists;
  roots := [];
  stack := []

(* Scoped measurement: isolate exactly what [f] records.

   The registry is process-global on purpose (see the module comment),
   which means successive measurements accumulate: counters keep growing,
   peak gauges never come back down.  [scoped f] saves the registry, zeroes
   it, runs [f], snapshots what [f] alone recorded, and then MERGES the
   saved state back (counters summed, peak gauges maxed, histograms
   combined, spans appended), so that process-cumulative telemetry is
   preserved while the returned snapshot is a per-task delta.  This is the
   fix for BENCH entries reporting cumulative numbers across tasks. *)
let scoped (f : unit -> 'a) : 'a * snapshot =
  let saved_counters = Hashtbl.fold (fun _ c acc -> (c, !c) :: acc) counters [] in
  let saved_gauges = Hashtbl.fold (fun _ g acc -> (g, !g) :: acc) gauges [] in
  let saved_hists =
    Hashtbl.fold
      (fun _ h acc -> (h, (h.h_count, h.h_sum, h.h_min, h.h_max)) :: acc)
      hists []
  in
  List.iter (fun (c, _) -> c := 0) saved_counters;
  List.iter (fun (g, _) -> g := 0.) saved_gauges;
  List.iter
    (fun (h, _) ->
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- 0.;
      h.h_max <- 0.)
    saved_hists;
  let saved_roots = !roots and saved_stack = !stack in
  roots := [];
  stack := [];
  let restore () =
    List.iter (fun (c, v) -> c := !c + v) saved_counters;
    List.iter (fun (g, v) -> if v > !g then g := v) saved_gauges;
    List.iter
      (fun (h, (count, sum, mn, mx)) ->
        if count > 0 then begin
          if h.h_count = 0 then begin
            h.h_min <- mn;
            h.h_max <- mx
          end
          else begin
            if mn < h.h_min then h.h_min <- mn;
            if mx > h.h_max then h.h_max <- mx
          end;
          h.h_count <- h.h_count + count;
          h.h_sum <- h.h_sum +. sum
        end)
      saved_hists;
    let inner_roots = !roots in
    stack := saved_stack;
    (match saved_stack with
    | parent :: _ ->
      (* [scoped] ran inside an open span: its spans become children *)
      parent.os_done <- inner_roots @ parent.os_done;
      roots := saved_roots
    | [] -> roots := inner_roots @ saved_roots)
  in
  match f () with
  | r ->
    let snap = snapshot () in
    restore ();
    (r, snap)
  | exception e ->
    restore ();
    raise e

let span_totals (s : snapshot) : (string * float) list =
  let acc : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  let rec visit sp =
    (match Hashtbl.find_opt acc sp.sp_name with
    | Some r -> r := !r +. sp.sp_wall
    | None -> Hashtbl.replace acc sp.sp_name (ref sp.sp_wall));
    List.iter visit sp.sp_children
  in
  List.iter visit s.snap_spans;
  sorted_bindings acc (fun r -> !r)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape_string (s : string) : string =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let float_to_string (f : float) : string =
    match Float.classify_float f with
    | Float.FP_nan | Float.FP_infinite -> "null"   (* JSON has no nan/inf *)
    | _ ->
      let s = Printf.sprintf "%.17g" f in
      (* prefer the short form when it round-trips *)
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else s

  let rec write buf (j : t) : unit =
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string (j : t) : string =
    let buf = Buffer.create 1024 in
    write buf j;
    Buffer.contents buf

  (* --- parser: recursive descent over a string ----------------------- *)

  exception Parse_fail of string

  type parser_state = { text : string; mutable pos : int }

  let fail st msg =
    raise (Parse_fail (Printf.sprintf "%s at offset %d" msg st.pos))

  let peek st =
    if st.pos < String.length st.text then Some st.text.[st.pos] else None

  let skip_ws st =
    while
      st.pos < String.length st.text
      && (match st.text.[st.pos] with
         | ' ' | '\t' | '\n' | '\r' -> true
         | _ -> false)
    do
      st.pos <- st.pos + 1
    done

  let expect st c =
    match peek st with
    | Some c' when c' = c -> st.pos <- st.pos + 1
    | _ -> fail st (Printf.sprintf "expected %c" c)

  let literal st word value =
    let n = String.length word in
    if
      st.pos + n <= String.length st.text
      && String.sub st.text st.pos n = word
    then begin
      st.pos <- st.pos + n;
      value
    end
    else fail st (Printf.sprintf "expected %s" word)

  let parse_string_body st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> fail st "unterminated string"
      | Some '"' -> st.pos <- st.pos + 1
      | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
          if st.pos + 5 > String.length st.text then fail st "bad \\u escape";
          let hex = String.sub st.text (st.pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail st "bad \\u escape"
          in
          (* encode as UTF-8 (basic-plane only; surrogates kept verbatim) *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          st.pos <- st.pos + 5;
          go ()
        | _ -> fail st "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
    in
    go ();
    Buffer.contents buf

  let parse_number st =
    let start = st.pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      st.pos < String.length st.text && is_num_char st.text.[st.pos]
    do
      st.pos <- st.pos + 1
    done;
    let s = String.sub st.text start (st.pos - start) in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st "bad number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail st "bad number")

  let rec parse_value st : t =
    skip_ws st;
    match peek st with
    | None -> fail st "unexpected end of input"
    | Some '"' -> Str (parse_string_body st)
    | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec member () =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          members := (k, v) :: !members;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; member ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected , or }"
        in
        member ();
        Obj (List.rev !members)
      end
    | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec item () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; item ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected , or ]"
        in
        item ();
        List (List.rev !items)
      end
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some ('-' | '0' .. '9') -> parse_number st
    | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

  let of_string (s : string) : (t, string) result =
    let st = { text = s; pos = 0 } in
    match parse_value st with
    | v ->
      skip_ws st;
      if st.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    | exception Parse_fail msg -> Error msg

  let member (key : string) (j : t) : t option =
    match j with Obj kvs -> List.assoc_opt key kvs | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let rec span_to_json (sp : span_tree) : Json.t =
  Json.Obj
    [ ("name", Json.Str sp.sp_name);
      ("start_s", Json.Float sp.sp_start);
      ("wall_s", Json.Float sp.sp_wall);
      ("minor_words", Json.Float sp.sp_minor_words);
      ("children", Json.List (List.map span_to_json sp.sp_children)) ]

let snapshot_to_json (s : snapshot) : Json.t =
  Json.Obj
    [ ("counters",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.snap_counters));
      ("gauges",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.snap_gauges));
      ("histograms",
       Json.Obj
         (List.map
            (fun (k, (count, sum, mn, mx)) ->
              ( k,
                Json.Obj
                  [ ("count", Json.Int count);
                    ("sum", Json.Float sum);
                    ("min", Json.Float mn);
                    ("max", Json.Float mx) ] ))
            s.snap_hists));
      ("spans", Json.List (List.map span_to_json s.snap_spans));
      ("phase_wall_s",
       Json.Obj
         (List.map (fun (k, v) -> (k, Json.Float v)) (span_totals s))) ]

let report (s : snapshot) : string =
  let buf = Buffer.create 1024 in
  if s.snap_spans <> [] then begin
    Buffer.add_string buf "spans (wall ms / minor kwords):\n";
    let rec pp indent sp =
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %9.3f ms %10.1f kw\n" indent
           (max 1 (32 - String.length indent))
           sp.sp_name (sp.sp_wall *. 1000.)
           (sp.sp_minor_words /. 1000.));
      List.iter (pp (indent ^ "  ")) sp.sp_children
    in
    List.iter (pp "  ") s.snap_spans
  end;
  if s.snap_counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (k, v) ->
        if v <> 0 then Buffer.add_string buf (Printf.sprintf "  %-40s %12d\n" k v))
      s.snap_counters
  end;
  if List.exists (fun (_, v) -> v <> 0.) s.snap_gauges then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (k, v) ->
        if v <> 0. then
          Buffer.add_string buf (Printf.sprintf "  %-40s %12.1f\n" k v))
      s.snap_gauges
  end;
  if List.exists (fun (_, (c, _, _, _)) -> c <> 0) s.snap_hists then begin
    Buffer.add_string buf "histograms (count/sum/min/max):\n";
    List.iter
      (fun (k, (count, sum, mn, mx)) ->
        if count <> 0 then
          Buffer.add_string buf
            (Printf.sprintf "  %-40s %8d %10.1f %10.1f %10.1f\n" k count sum mn
               mx))
      s.snap_hists
  end;
  Buffer.contents buf

let chrome_trace (s : snapshot) : Json.t =
  let events = ref [] in
  let rec visit sp =
    events :=
      Json.Obj
        [ ("name", Json.Str sp.sp_name);
          ("ph", Json.Str "X");
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("ts", Json.Float (sp.sp_start *. 1e6));
          ("dur", Json.Float (sp.sp_wall *. 1e6));
          ("args",
           Json.Obj [ ("minor_words", Json.Float sp.sp_minor_words) ]) ]
      :: !events;
    List.iter visit sp.sp_children
  in
  List.iter visit s.snap_spans;
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.Str "ms") ]
