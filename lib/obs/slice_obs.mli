(** Pipeline telemetry: hierarchical trace spans, a per-domain
    counter/gauge/histogram registry, and sinks (pretty text report,
    hand-rolled JSON, Chrome [trace_event] export).

    Design constraints (see ISSUEs 1 and 3):
    - counter bumps are a [Domain.DLS] cell read plus an [incr] — safe to
      leave in hot loops;
    - the default sink is a no-op: nothing is emitted unless a driver
      explicitly asks for a report / JSON / trace;
    - span collection is opt-out-able via {!set_enabled} so scripted use
      pays nothing beyond the counter bumps;
    - every registry is only ever touched by its own domain.  The root
      domain's registry is what the drivers observe.  A spawned domain
      gets a fresh empty registry on first use; a parallel executor
      captures each worker's {!snapshot} and folds it into the parent
      with {!merge_snapshot} after [Domain.join], so telemetry from
      parallel workers aggregates instead of racing. *)

(* ------------------------------------------------------------------ *)
(* Enable / disable                                                    *)
(* ------------------------------------------------------------------ *)

(** Whether spans (and their wall-clock / allocation accounting) are being
    recorded.  Counters always count.  Process-wide (atomic), read by
    every domain.  Default: enabled. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Reset every counter/gauge/histogram of the CALLING domain's registry
    to zero and drop its recorded spans.  Registered metric handles stay
    valid (values are zeroed in place, and handles are interned by name),
    so module-level [counter] bindings survive a reset. *)
val reset : unit -> unit

(** Drop the calling domain's COMPLETED span trees, keeping all metric
    values and any spans still open.  Long-lived processes (the serve
    daemon) call this after shipping a per-query snapshot: completed
    spans otherwise accumulate in the per-domain registry without bound,
    an unbounded leak in a process that never exits. *)
val reset_spans : unit -> unit

(* ------------------------------------------------------------------ *)
(* Counters, gauges, histograms                                        *)
(* ------------------------------------------------------------------ *)

(** A metric handle.  Handles are process-global and interned by name
    ([counter "x" == counter "x"]), but each resolves to a per-domain
    cell in the calling domain's registry, so bumps from parallel worker
    domains never race: each domain accumulates privately and the parent
    aggregates at join via {!merge_snapshot}. *)
type counter

(** Intern (or find) the counter registered under [name]. *)
val counter : string -> counter

val bump : counter -> unit
val add : counter -> int -> unit

(** The calling domain's raw cell for [c], for hot loops that cannot
    afford a per-bump DLS lookup: resolve once, then [incr] the ref
    directly.  The cell is stable for the life of the domain (both
    {!scoped} and {!snapshot} read through the same ref), but it belongs
    to the RESOLVING domain — never share it with another domain. *)
val counter_cell : counter -> int ref

(** Current value of a registered counter in the calling domain's
    registry, 0 if never registered there. *)
val counter_value : string -> int

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

(** Record [v] only if it exceeds the gauge's current value (peaks). *)
val max_gauge : gauge -> float -> unit

val gauge_value : string -> float

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit

(** (count, sum, min, max) in the calling domain's registry; min/max are
    0 when the histogram is empty. *)
val histogram_stats : histogram -> int * float * float * float

(** {2 Percentile estimation}

    Every histogram additionally keeps a fixed array of log-scaled
    bucket counts ({!hist_buckets} buckets: one underflow bucket for
    values [<= 2^-30] including 0 and negatives, then [hist_sub = 4]
    sub-buckets per octave up to [2^30], then one overflow bucket).
    Quantile estimates are the representative (upper-bound) value of the
    first bucket where the cumulative count reaches the target rank, so
    they are exact to within a factor of [2^(1/4) ~ 19%].  Buckets share
    one global geometry, so they merge element-wise across {!scoped}
    restores and {!merge_snapshot}. *)

val hist_buckets : int

(** Bucket index a value lands in (total order; exposed for tests). *)
val bucket_of_value : float -> int

(** Representative value reported for a bucket (exposed for tests). *)
val bucket_value : int -> float

(** [percentile ~count ~buckets q] estimates the q-quantile (q clamped
    to [0,1]) of [count] observations distributed over [buckets]; 0 when
    empty. *)
val percentile : count:int -> buckets:int array -> float -> float

(** q-quantile estimate of the calling domain's cell for [h]. *)
val histogram_percentile : histogram -> float -> float

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)
(* ------------------------------------------------------------------ *)

(** [span name f] runs [f ()] inside a span named [name], recording wall
    time and minor-heap allocation.  Spans nest: a span opened while
    another is running becomes its child.  When disabled this is exactly
    [f ()].  Exception-safe: the span is closed even if [f] raises.
    [?args] attaches string key/value annotations to the span (e.g. the
    query's seed and mode), surfaced by the JSON and Chrome-trace
    sinks. *)
val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Append a key/value annotation to the innermost OPEN span of the
    calling domain (no-op when disabled or outside any span) — for facts
    only known mid-span, like the final slice size. *)
val add_span_arg : string -> string -> unit

type span_tree = {
  sp_name : string;
  sp_start : float;           (** seconds since process telemetry epoch *)
  sp_wall : float;            (** wall-clock duration, seconds *)
  sp_minor_words : float;     (** minor-heap words allocated inside *)
  sp_args : (string * string) list;  (** annotations, in addition order *)
  sp_children : span_tree list;
}

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_counters : (string * int) list;                       (** sorted *)
  snap_gauges : (string * float) list;                       (** sorted *)
  snap_hists : (string * (int * float * float * float)) list;
  snap_hist_buckets : (string * int array) list;
      (** per-histogram log-bucket counts, same keys as [snap_hists] *)
  snap_spans : span_tree list;    (** completed top-level spans, in order *)
}

(** Capture the current state of the calling domain's registry and its
    completed spans. *)
val snapshot : unit -> snapshot

(** q-quantile estimate for the named histogram of a snapshot; 0 when
    the histogram is absent or empty. *)
val snapshot_percentile : snapshot -> string -> float -> float

(** [scoped f] isolates what [f] records: the calling domain's registry
    is saved and zeroed, [f] runs, and the returned snapshot covers
    exactly [f]'s own counters/gauges/histograms/spans.  The saved state
    is then merged back (counters summed, peak gauges maxed, histograms
    combined, spans appended — inside an open span they become its
    children), so cumulative telemetry is preserved.  This is how
    per-task BENCH entries stay isolated from each other.
    Exception-safe. *)
val scoped : (unit -> 'a) -> 'a * snapshot

(** [merge_snapshot s] folds a snapshot captured elsewhere — typically in
    a worker domain that has since been joined — into the calling
    domain's registry, with {!scoped}'s merge discipline: counters
    summed, peak gauges maxed, histograms combined, spans appended (under
    the innermost open span if one is running).  Call it from the parent
    AFTER [Domain.join] so the worker registry is quiescent; this is the
    merge-back half of the per-domain registry design, and it is what
    makes parallel batch telemetry aggregate instead of race. *)
val merge_snapshot : snapshot -> unit

(** Total wall time per span name, aggregated over the whole span forest
    (a span appearing several times contributes the sum).  Sorted by
    name.  This is the "per-phase wall times" table of BENCH_results. *)
val span_totals : snapshot -> (string * float) list

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled; no external dependency)                          *)
(* ------------------------------------------------------------------ *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** Parse a JSON text.  Numbers without [.], [e] or [E] become [Int]. *)
  val of_string : string -> (t, string) result

  (** Object member lookup ([None] on missing key or non-object). *)
  val member : string -> t -> t option
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

(** Structured encoding of a snapshot:
    [{"counters": {...}, "gauges": {...}, "histograms": {...},
      "spans": [{"name", "start_s", "wall_s", "minor_words", "children"}],
      "phase_wall_s": {...}}]. *)
val snapshot_to_json : snapshot -> Json.t

(** Human-readable report: indented span tree with timings and
    allocation, then counters / gauges / histograms. *)
val report : snapshot -> string

(** Chrome [trace_event] JSON (load in chrome://tracing or Perfetto):
    an object with a ["traceEvents"] array of complete ("ph":"X")
    events. *)
val chrome_trace : snapshot -> Json.t
