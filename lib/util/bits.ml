(* Growable dense bitset over 63-bit words (OCaml native ints). *)

let bits_per_word = Sys.int_size (* 63 on 64-bit systems *)

type t = { mutable w : int array }

let create ?(capacity = 64) () =
  let words = max 1 ((capacity + bits_per_word - 1) / bits_per_word) in
  (* Array literals for the common small sizes: they compile to an inline
     minor-heap allocation instead of the [caml_make_vect] C call, which
     shows up in profiles when a solver interns thousands of nodes (three
     bitsets each). *)
  let w =
    match words with
    | 1 -> [| 0 |]
    | 2 -> [| 0; 0 |]
    | _ -> Array.make words 0
  in
  { w }

let[@inline] word_of i = i / bits_per_word
let[@inline] bit_of i = i mod bits_per_word

let grow t words =
  let cur = Array.length t.w in
  if words > cur then begin
    let cap = ref cur in
    while !cap < words do
      cap := !cap * 2
    done;
    let nw = Array.make !cap 0 in
    Array.blit t.w 0 nw 0 cur;
    t.w <- nw
  end

let add t i =
  if i < 0 then invalid_arg "Bits.add: negative index";
  let wi = word_of i in
  grow t (wi + 1);
  let m = 1 lsl bit_of i in
  let v = Array.unsafe_get t.w wi in
  if v land m = 0 then begin
    Array.unsafe_set t.w wi (v lor m);
    true
  end
  else false

let mem t i =
  if i < 0 then false
  else
    let wi = word_of i in
    wi < Array.length t.w && Array.unsafe_get t.w wi land (1 lsl bit_of i) <> 0

let remove t i =
  if i >= 0 then begin
    let wi = word_of i in
    if wi < Array.length t.w then
      t.w.(wi) <- t.w.(wi) land lnot (1 lsl bit_of i)
  end

let union_into ~src ~dst =
  let sw = src.w in
  let n = Array.length sw in
  (* Find the highest nonzero source word so we don't grow dst for
     trailing zero capacity. *)
  let hi = ref (n - 1) in
  while !hi >= 0 && Array.unsafe_get sw !hi = 0 do
    decr hi
  done;
  if !hi < 0 then false
  else begin
    grow dst (!hi + 1);
    let dw = dst.w in
    let changed = ref false in
    for i = 0 to !hi do
      let s = Array.unsafe_get sw i in
      if s <> 0 then begin
        let d = Array.unsafe_get dw i in
        let d' = d lor s in
        if d' <> d then begin
          Array.unsafe_set dw i d';
          changed := true
        end
      end
    done;
    !changed
  end

let diff_into ~src ~dst =
  let sw = src.w and dw = dst.w in
  let n = min (Array.length sw) (Array.length dw) in
  for i = 0 to n - 1 do
    let s = Array.unsafe_get sw i in
    if s <> 0 then
      Array.unsafe_set dw i (Array.unsafe_get dw i land lnot s)
  done

(* Kernighan popcount: fine because fresh words are sparse in practice. *)
let[@inline] popcount x =
  let c = ref 0 in
  let v = ref x in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr c
  done;
  !c

let propagate ~src ~pts ~delta =
  let sw = src.w in
  let n = Array.length sw in
  let hi = ref (n - 1) in
  while !hi >= 0 && Array.unsafe_get sw !hi = 0 do
    decr hi
  done;
  if !hi < 0 then 0
  else begin
    grow pts (!hi + 1);
    grow delta (!hi + 1);
    let pw = pts.w and dw = delta.w in
    let count = ref 0 in
    for i = 0 to !hi do
      let s = Array.unsafe_get sw i in
      if s <> 0 then begin
        let p = Array.unsafe_get pw i in
        let fresh = s land lnot p in
        if fresh <> 0 then begin
          Array.unsafe_set pw i (p lor fresh);
          Array.unsafe_set dw i (Array.unsafe_get dw i lor fresh);
          count := !count + popcount fresh
        end
      end
    done;
    !count
  end

let iter f t =
  (* Snapshot: the callback may grow/mutate t. *)
  let w = t.w in
  let n = Array.length w in
  for i = 0 to n - 1 do
    let v0 = Array.unsafe_get w i in
    if v0 <> 0 then begin
      let base = i * bits_per_word in
      (* Scan with LOGICAL shifts: bit 62 of a word is the sign bit of
         the 63-bit OCaml int, so arithmetic comparisons on isolated
         bits would misclassify it. *)
      let v = ref v0 in
      let b = ref 0 in
      while !v <> 0 do
        if !v land 1 = 1 then f (base + !b);
        v := !v lsr 1;
        incr b
      done
    end
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let cardinal t =
  let c = ref 0 in
  Array.iter (fun v -> c := !c + popcount v) t.w;
  !c

let words t = Array.length t.w

let is_empty t = Array.for_all (fun v -> v = 0) t.w

let clear t = Array.fill t.w 0 (Array.length t.w) 0

let equal a b =
  let aw = a.w and bw = b.w in
  let na = Array.length aw and nb = Array.length bw in
  let n = min na nb in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Array.unsafe_get aw i <> Array.unsafe_get bw i then ok := false
  done;
  if !ok then begin
    for i = n to na - 1 do
      if Array.unsafe_get aw i <> 0 then ok := false
    done;
    for i = n to nb - 1 do
      if Array.unsafe_get bw i <> 0 then ok := false
    done
  end;
  !ok

let copy t = { w = Array.copy t.w }

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
