(** Growable dense bitsets over non-negative ints.

    Backed by a flat [int array] of 63-bit words (OCaml native ints).
    All operations grow the backing store on demand; a fresh set is a
    single small allocation.  The module is the shared data plane for
    the Andersen solver's points-to sets, the SDG heap-wiring dedup
    rows, and the slicer's queued-flag scratch.

    Membership queries on indices beyond the current capacity return
    [false] without allocating; mutating operations grow. *)

type t

val bits_per_word : int
(** 63 on 64-bit OCaml: [Sys.int_size]. *)

val create : ?capacity:int -> unit -> t
(** Fresh empty set; [capacity] is a hint in bits (default small). *)

val add : t -> int -> bool
(** [add t i] sets bit [i]; returns [true] iff it was newly set.
    Grows as needed.  [i] must be [>= 0]. *)

val mem : t -> int -> bool
(** Membership; out-of-capacity indices are absent. *)

val remove : t -> int -> unit
(** Clears bit [i] (no-op when absent). *)

val union_into : src:t -> dst:t -> bool
(** [union_into ~src ~dst] ORs [src] into [dst]; returns [true] iff
    [dst] changed.  Grows [dst] as needed; [src] is untouched. *)

val diff_into : src:t -> dst:t -> unit
(** [diff_into ~src ~dst] removes every element of [src] from [dst]. *)

val propagate : src:t -> pts:t -> delta:t -> int
(** The solver's hot primitive.  Computes [fresh = src \ pts], ORs
    [fresh] into both [pts] and [delta], and returns [popcount fresh]
    (0 when [src] added nothing new).  Equivalent to
    [diff / union_into / union_into / cardinal] fused into one pass
    with no intermediate allocation. *)

val iter : (int -> unit) -> t -> unit
(** Iterate set bits in increasing order.  Takes a snapshot of the
    backing array first, so the callback may mutate [t] (bits added
    during iteration are not visited). *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val cardinal : t -> int
(** Population count (O(words)). *)

val words : t -> int
(** Number of backing words currently allocated (capacity, not
    cardinality) — the set's heap footprint is [8 * words] bytes plus a
    small constant.  For memory gauges. *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove all elements; keeps the backing store (no shrink). *)

val equal : t -> t -> bool
(** Set equality irrespective of capacities. *)

val copy : t -> t

val elements : t -> int list
(** Sorted element list (for tests / dumps). *)
