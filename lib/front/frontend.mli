(** End-to-end frontend driver: TJ source text -> typed IR program in SSA
    form (lex, parse, declare, lower, SSA-convert). *)

open Slice_ir

type error = {
  err_msg : string;
  err_loc : Loc.t;
  err_phase : [ `Lex | `Parse | `Semantic | `Internal ];
}

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Error of error

(** Load a single source text.  [container_classes] selects the classes
    the points-to analysis may treat object-sensitively (defaults to
    {!Declare.default_container_classes}: Vector, HashMap, Stack, ...). *)
val load_exn : ?container_classes:string list -> file:string -> string -> Program.t

(** Load several source texts as ONE program: each [(file, src)] unit is
    parsed with its own file name (so every location keeps the file it
    came from), then the concatenated declarations are declared, lowered
    and SSA-converted in a single pass — classes may reference classes
    from any other unit regardless of order. *)
val load_many_exn :
  ?container_classes:string list -> (string * string) list -> Program.t

val load :
  ?container_classes:string list ->
  file:string ->
  string ->
  (Program.t, error) result

(** Read and load a [.tj] file from disk. *)
val load_file_exn : ?container_classes:string list -> string -> Program.t
