(** Type-directed lowering of TJ ASTs into the three-address IR.

    This pass is the typechecker: it elaborates each expression to a
    typed IR variable and rejects ill-typed programs with {!Type_error}.
    It runs after {!Declare} has populated the class table.

    Notable behaviours: short-circuit [&&]/[||] become branches merged by
    SSA phis; constructors chain to [super] implicitly when possible;
    static field initializers are collected into a synthetic
    [$Top.$clinit] called at the start of [main]; all-paths-return is
    checked syntactically (with [while (true)] handling). *)

open Slice_ir

exception Type_error of string * Loc.t

val run : Program.t -> Ast.compilation_unit -> unit

(** Lower ONE method declaration into its pre-registered shell: fresh
    body and variable table, fresh statement ids, class table untouched.
    Used by {!run} for every method, and by {!Delta.relower} to re-lower
    just the changed methods of an incremental update.  The caller is
    responsible for re-running SSA conversion. *)
val lower_method : Program.t -> cls:Types.class_name -> Ast.method_decl -> unit
