(** First frontend pass: register classes, fields and method signatures in
    the program's class table so lowering can resolve names in any order.
    Validates the hierarchy (known superclasses, no cycles, no duplicate
    members, signature-preserving overrides). *)

open Slice_ir

exception Semantic_error of string * Loc.t

(** Classes treated as containers for object-sensitive points-to cloning
    (paper section 6.1): Vector, ArrayList, HashMap, Hashtable, Stack,
    LinkedList, Queue. *)
val default_container_classes : string list

(** Resolve a surface type against the class table. *)
val resolve_sty : Program.t -> Loc.t -> Ast.sty -> Types.ty

(** Build a method's shell (signature, parameter vars, [Abstract] body —
    lowering installs the real one) from its declaration.  Used by [run]
    for whole-unit declaration and by the incremental engine to admit a
    single added method without re-declaring the unit. *)
val method_shell : Program.t -> cls:string -> Ast.method_decl -> Instr.meth

val run : ?container_classes:string list -> Program.t -> Ast.compilation_unit -> unit
