(* Recursive-descent parser for TJ.

   Disambiguation conventions (documented in the README):
   - class names start with an uppercase letter, variables with lowercase;
     this resolves the classic cast-vs-parenthesization ambiguity:
     [(Foo) x] is a cast, [(foo)] is a parenthesized expression.
   - [for] loops desugar into [while] at parse time; [continue] inside a
     [for] is rejected because it would skip the update expression. *)

open Slice_ir

exception Parse_error of string * Loc.t

type state = {
  toks : Token.located array;
  mutable pos : int;
  mutable for_depth : int;
}

let make toks = { toks = Array.of_list toks; pos = 0; for_depth = 0 }

let cur st = st.toks.(st.pos)
let cur_tok st = (cur st).Token.tok
let cur_loc st = (cur st).Token.loc

let peek_tok st n =
  if st.pos + n < Array.length st.toks then st.toks.(st.pos + n).Token.tok
  else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st msg = raise (Parse_error (msg, cur_loc st))

let expect st tok =
  if cur_tok st = tok then advance st
  else
    error st
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string (cur_tok st)))

let expect_ident st =
  match cur_tok st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> error st (Printf.sprintf "expected identifier, found '%s'" (Token.to_string t))

let is_upper_ident = function
  | Token.IDENT s -> String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'
  | _ -> false

(* ---------------- types ---------------- *)

let rec parse_type st : Ast.sty =
  let base =
    match cur_tok st with
    | Token.KW_int -> advance st; Ast.Sint
    | Token.KW_boolean -> advance st; Ast.Sbool
    | Token.KW_void -> advance st; Ast.Svoid
    | Token.IDENT s -> advance st; Ast.Sclass s
    | t -> error st (Printf.sprintf "expected a type, found '%s'" (Token.to_string t))
  in
  parse_array_suffix st base

and parse_array_suffix st base =
  if cur_tok st = Token.LBRACKET && peek_tok st 1 = Token.RBRACKET then begin
    advance st;
    advance st;
    parse_array_suffix st (Ast.Sarray base)
  end
  else base

(* Does a type begin at the current position, followed by an identifier?
   Used to recognize declarations among statements. *)
let looks_like_decl st =
  match cur_tok st with
  | Token.KW_int | Token.KW_boolean -> true
  | Token.IDENT _ -> (
    match (peek_tok st 1, peek_tok st 2) with
    | Token.IDENT _, _ -> true
    | Token.LBRACKET, Token.RBRACKET -> true
    | _ -> false)
  | _ -> false

(* ---------------- expressions ---------------- *)

let starts_expr = function
  | Token.INT _ | Token.STRING _ | Token.IDENT _ | Token.KW_true
  | Token.KW_false | Token.KW_null | Token.KW_this | Token.KW_new
  | Token.LPAREN | Token.NOT | Token.MINUS -> true
  | _ -> false

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while cur_tok st = Token.OR do
    let loc = cur_loc st in
    advance st;
    let rhs = parse_and st in
    lhs := { Ast.e_kind = Ast.Ebinop (Types.Or, !lhs, rhs); e_loc = loc }
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_equality st) in
  while cur_tok st = Token.AND do
    let loc = cur_loc st in
    advance st;
    let rhs = parse_equality st in
    lhs := { Ast.e_kind = Ast.Ebinop (Types.And, !lhs, rhs); e_loc = loc }
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let rec go () =
    match cur_tok st with
    | Token.EQ | Token.NE ->
      let op = if cur_tok st = Token.EQ then Types.Eq else Types.Ne in
      let loc = cur_loc st in
      advance st;
      let rhs = parse_relational st in
      lhs := { Ast.e_kind = Ast.Ebinop (op, !lhs, rhs); e_loc = loc };
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_relational st =
  let lhs = ref (parse_additive st) in
  let rec go () =
    match cur_tok st with
    | Token.LT | Token.LE | Token.GT | Token.GE ->
      let op =
        match cur_tok st with
        | Token.LT -> Types.Lt
        | Token.LE -> Types.Le
        | Token.GT -> Types.Gt
        | _ -> Types.Ge
      in
      let loc = cur_loc st in
      advance st;
      let rhs = parse_additive st in
      lhs := { Ast.e_kind = Ast.Ebinop (op, !lhs, rhs); e_loc = loc };
      go ()
    | Token.KW_instanceof ->
      let loc = cur_loc st in
      advance st;
      let ty = parse_type st in
      lhs := { Ast.e_kind = Ast.Einstanceof (!lhs, ty); e_loc = loc };
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec go () =
    match cur_tok st with
    | Token.PLUS | Token.MINUS ->
      let op = if cur_tok st = Token.PLUS then Types.Add else Types.Sub in
      let loc = cur_loc st in
      advance st;
      let rhs = parse_multiplicative st in
      lhs := { Ast.e_kind = Ast.Ebinop (op, !lhs, rhs); e_loc = loc };
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match cur_tok st with
    | Token.STAR | Token.SLASH | Token.PERCENT ->
      let op =
        match cur_tok st with
        | Token.STAR -> Types.Mul
        | Token.SLASH -> Types.Div
        | _ -> Types.Mod
      in
      let loc = cur_loc st in
      advance st;
      let rhs = parse_unary st in
      lhs := { Ast.e_kind = Ast.Ebinop (op, !lhs, rhs); e_loc = loc };
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match cur_tok st with
  | Token.NOT ->
    let loc = cur_loc st in
    advance st;
    let e = parse_unary st in
    { Ast.e_kind = Ast.Eunop (Types.Not, e); e_loc = loc }
  | Token.MINUS ->
    let loc = cur_loc st in
    advance st;
    let e = parse_unary st in
    { Ast.e_kind = Ast.Eunop (Types.Neg, e); e_loc = loc }
  | _ -> parse_postfix st

(* A '(' begins a cast iff it is followed by a type (primitive keyword or
   uppercase class name, possibly with [] suffixes), ')' and then the start
   of a unary expression. *)
and is_cast st =
  if cur_tok st <> Token.LPAREN then false
  else begin
    match peek_tok st 1 with
    | Token.KW_int | Token.KW_boolean -> true
    | t when is_upper_ident t ->
      (* scan over optional [] pairs to the matching ')' *)
      let at i =
        if i < Array.length st.toks then st.toks.(i).Token.tok else Token.EOF
      in
      let i = ref (st.pos + 2) in
      while at !i = Token.LBRACKET && at (!i + 1) = Token.RBRACKET do
        i := !i + 2
      done;
      at !i = Token.RPAREN && starts_expr (at (!i + 1))
    | _ -> false
  end

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec go () =
    match cur_tok st with
    | Token.DOT ->
      let loc = cur_loc st in
      advance st;
      let name = expect_ident st in
      if cur_tok st = Token.LPAREN then begin
        let args = parse_args st in
        e := { Ast.e_kind = Ast.Ecall (Ast.Cmethod (!e, name), args); e_loc = loc }
      end
      else e := { Ast.e_kind = Ast.Efield (!e, name); e_loc = loc };
      go ()
    | Token.LBRACKET ->
      let loc = cur_loc st in
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      e := { Ast.e_kind = Ast.Eindex (!e, idx); e_loc = loc };
      go ()
    | Token.PLUSPLUS ->
      let loc = cur_loc st in
      advance st;
      let lv =
        match (!e).Ast.e_kind with
        | Ast.Eident x -> Ast.Lident (x, (!e).Ast.e_loc)
        | Ast.Efield (b, f) -> Ast.Lfield (b, f, (!e).Ast.e_loc)
        | Ast.Eindex (b, i) -> Ast.Lindex (b, i, (!e).Ast.e_loc)
        | _ -> raise (Parse_error ("++ applies only to assignable expressions", loc))
      in
      e := { Ast.e_kind = Ast.Epostincr lv; e_loc = loc };
      go ()
    | _ -> ()
  in
  go ();
  !e

and parse_args st : Ast.expr list =
  expect st Token.LPAREN;
  if cur_tok st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr st in
      if cur_tok st = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st : Ast.expr =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.INT n -> advance st; { Ast.e_kind = Ast.Eint n; e_loc = loc }
  | Token.STRING s -> advance st; { Ast.e_kind = Ast.Estr s; e_loc = loc }
  | Token.KW_true -> advance st; { Ast.e_kind = Ast.Ebool true; e_loc = loc }
  | Token.KW_false -> advance st; { Ast.e_kind = Ast.Ebool false; e_loc = loc }
  | Token.KW_null -> advance st; { Ast.e_kind = Ast.Enull; e_loc = loc }
  | Token.KW_this -> advance st; { Ast.e_kind = Ast.Ethis; e_loc = loc }
  | Token.KW_new ->
    advance st;
    let base =
      match cur_tok st with
      | Token.KW_int -> advance st; Ast.Sint
      | Token.KW_boolean -> advance st; Ast.Sbool
      | Token.IDENT s -> advance st; Ast.Sclass s
      | t -> error st (Printf.sprintf "expected type after 'new', found '%s'" (Token.to_string t))
    in
    if cur_tok st = Token.LBRACKET then begin
      advance st;
      let len = parse_expr st in
      expect st Token.RBRACKET;
      (* trailing [] pairs make multi-dimensional array types *)
      let elem = ref base in
      while cur_tok st = Token.LBRACKET && peek_tok st 1 = Token.RBRACKET do
        advance st;
        advance st;
        elem := Ast.Sarray !elem
      done;
      { Ast.e_kind = Ast.Enew_array (!elem, len); e_loc = loc }
    end
    else begin
      match base with
      | Ast.Sclass c ->
        let args = parse_args st in
        { Ast.e_kind = Ast.Enew (c, args); e_loc = loc }
      | _ -> error st "cannot instantiate a primitive type"
    end
  | Token.IDENT name ->
    (* bare call, static member access, or plain identifier *)
    if peek_tok st 1 = Token.LPAREN then begin
      advance st;
      let args = parse_args st in
      { Ast.e_kind = Ast.Ecall (Ast.Cbare name, args); e_loc = loc }
    end
    else if
      is_upper_ident (Token.IDENT name)
      && peek_tok st 1 = Token.DOT
      && (match peek_tok st 2 with Token.IDENT _ -> true | _ -> false)
      && peek_tok st 3 = Token.LPAREN
    then begin
      (* Class.method(args) *)
      advance st;
      advance st;
      let m = expect_ident st in
      let args = parse_args st in
      { Ast.e_kind = Ast.Ecall (Ast.Cstatic (name, m), args); e_loc = loc }
    end
    else begin
      advance st;
      { Ast.e_kind = Ast.Eident name; e_loc = loc }
    end
  | Token.KW_super ->
    if peek_tok st 1 = Token.LPAREN then begin
      advance st;
      let args = parse_args st in
      { Ast.e_kind = Ast.Ecall (Ast.Csuper, args); e_loc = loc }
    end
    else error st "'super' is only supported as a constructor call: super(...)"
  | Token.LPAREN ->
    if is_cast st then begin
      advance st;
      let ty = parse_type st in
      expect st Token.RPAREN;
      let e = parse_unary st in
      { Ast.e_kind = Ast.Ecast (ty, e); e_loc = loc }
    end
    else begin
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
    end
  | t -> error st (Printf.sprintf "expected expression, found '%s'" (Token.to_string t))

(* ---------------- statements ---------------- *)

let rec parse_stmt st : Ast.stmt =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.LBRACE ->
    { Ast.s_kind = Ast.Sblock (parse_block st); s_loc = loc }
  | Token.KW_if ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let then_ = parse_stmt_as_list st in
    let else_ =
      if cur_tok st = Token.KW_else then begin
        advance st;
        parse_stmt_as_list st
      end
      else []
    in
    { Ast.s_kind = Ast.Sif (cond, then_, else_); s_loc = loc }
  | Token.KW_while ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_stmt_as_list st in
    { Ast.s_kind = Ast.Swhile (cond, body); s_loc = loc }
  | Token.KW_for -> parse_for st loc
  | Token.KW_return ->
    advance st;
    let e = if cur_tok st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    { Ast.s_kind = Ast.Sreturn e; s_loc = loc }
  | Token.KW_throw ->
    advance st;
    let e = parse_expr st in
    expect st Token.SEMI;
    { Ast.s_kind = Ast.Sthrow e; s_loc = loc }
  | Token.KW_break ->
    advance st;
    expect st Token.SEMI;
    { Ast.s_kind = Ast.Sbreak; s_loc = loc }
  | Token.KW_continue ->
    if st.for_depth > 0 then
      error st "'continue' inside 'for' is not supported (for desugars to while)";
    advance st;
    expect st Token.SEMI;
    { Ast.s_kind = Ast.Scontinue; s_loc = loc }
  | _ when looks_like_decl st ->
    let ty = parse_type st in
    let name = expect_ident st in
    let init =
      if cur_tok st = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st Token.SEMI;
    { Ast.s_kind = Ast.Sdecl (ty, name, init); s_loc = loc }
  | _ ->
    let s = parse_simple_stmt st loc in
    expect st Token.SEMI;
    s

(* assignment / call / post-increment, without the trailing ';' (shared with
   [for] headers). *)
and parse_simple_stmt st loc : Ast.stmt =
  let e = parse_expr st in
  if cur_tok st = Token.ASSIGN then begin
    advance st;
    let rhs = parse_expr st in
    let lv =
      match e.Ast.e_kind with
      | Ast.Eident x -> Ast.Lident (x, e.Ast.e_loc)
      | Ast.Efield (b, f) -> Ast.Lfield (b, f, e.Ast.e_loc)
      | Ast.Eindex (b, i) -> Ast.Lindex (b, i, e.Ast.e_loc)
      | _ -> raise (Parse_error ("invalid assignment target", e.Ast.e_loc))
    in
    { Ast.s_kind = Ast.Sassign (lv, rhs); s_loc = loc }
  end
  else begin
    match e.Ast.e_kind with
    | Ast.Ecall _ | Ast.Epostincr _ | Ast.Enew _ ->
      { Ast.s_kind = Ast.Sexpr e; s_loc = loc }
    | _ -> raise (Parse_error ("expression statement must be a call, new, or ++", loc))
  end

and parse_for st loc : Ast.stmt =
  advance st;
  expect st Token.LPAREN;
  let init : Ast.stmt option =
    if cur_tok st = Token.SEMI then begin
      advance st;
      None
    end
    else if looks_like_decl st then begin
      let dloc = cur_loc st in
      let ty = parse_type st in
      let name = expect_ident st in
      expect st Token.ASSIGN;
      let e = parse_expr st in
      expect st Token.SEMI;
      Some { Ast.s_kind = Ast.Sdecl (ty, name, Some e); s_loc = dloc }
    end
    else begin
      let s = parse_simple_stmt st (cur_loc st) in
      expect st Token.SEMI;
      Some s
    end
  in
  let cond =
    if cur_tok st = Token.SEMI then
      { Ast.e_kind = Ast.Ebool true; e_loc = cur_loc st }
    else parse_expr st
  in
  expect st Token.SEMI;
  let update =
    if cur_tok st = Token.RPAREN then None
    else Some (parse_simple_stmt st (cur_loc st))
  in
  expect st Token.RPAREN;
  st.for_depth <- st.for_depth + 1;
  let body = parse_stmt_as_list st in
  st.for_depth <- st.for_depth - 1;
  let while_body = body @ Option.to_list update in
  let w = { Ast.s_kind = Ast.Swhile (cond, while_body); s_loc = loc } in
  { Ast.s_kind = Ast.Sblock (Option.to_list init @ [ w ]); s_loc = loc }

and parse_stmt_as_list st : Ast.stmt list =
  if cur_tok st = Token.LBRACE then parse_block st else [ parse_stmt st ]

and parse_block st : Ast.stmt list =
  expect st Token.LBRACE;
  let rec go acc =
    if cur_tok st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ---------------- declarations ---------------- *)

let parse_params st : Ast.param list =
  expect st Token.LPAREN;
  if cur_tok st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let loc = cur_loc st in
      let ty = parse_type st in
      let name = expect_ident st in
      let p = { Ast.p_name = name; p_ty = ty; p_loc = loc } in
      if cur_tok st = Token.COMMA then begin
        advance st;
        go (p :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (p :: acc)
      end
    in
    go []
  end

let parse_class st : Ast.class_decl =
  let loc = cur_loc st in
  expect st Token.KW_class;
  let name = expect_ident st in
  let super =
    if cur_tok st = Token.KW_extends then begin
      advance st;
      Some (expect_ident st)
    end
    else None
  in
  expect st Token.LBRACE;
  let fields = ref [] in
  let methods = ref [] in
  while cur_tok st <> Token.RBRACE do
    let mloc = cur_loc st in
    let static =
      if cur_tok st = Token.KW_static then begin
        advance st;
        true
      end
      else false
    in
    (* constructor: ClassName '(' *)
    if (not static) && cur_tok st = Token.IDENT name && peek_tok st 1 = Token.LPAREN
    then begin
      advance st;
      let params = parse_params st in
      let body = parse_block st in
      methods :=
        { Ast.md_name = Types.constructor_name;
          md_static = false;
          md_params = params;
          md_ret = Ast.Svoid;
          md_body = body;
          md_is_ctor = true;
          md_loc = mloc }
        :: !methods
    end
    else begin
      let ty = parse_type st in
      let mname = expect_ident st in
      if cur_tok st = Token.LPAREN then begin
        let params = parse_params st in
        let body = parse_block st in
        methods :=
          { Ast.md_name = mname;
            md_static = static;
            md_params = params;
            md_ret = ty;
            md_body = body;
            md_is_ctor = false;
            md_loc = mloc }
          :: !methods
      end
      else begin
        let init =
          if cur_tok st = Token.ASSIGN then begin
            advance st;
            Some (parse_expr st)
          end
          else None
        in
        expect st Token.SEMI;
        if init <> None && not static then
          raise
            (Parse_error ("instance field initializers are not supported; assign in the constructor", mloc));
        fields :=
          { Ast.fd_name = mname; fd_ty = ty; fd_static = static; fd_init = init; fd_loc = mloc }
          :: !fields
      end
    end
  done;
  expect st Token.RBRACE;
  { Ast.cd_name = name;
    cd_super = super;
    cd_fields = List.rev !fields;
    cd_methods = List.rev !methods;
    cd_loc = loc }

let parse_unit ~(file : string) (toks : Token.located list) : Ast.compilation_unit =
  let st = make toks in
  let decls = ref [] in
  while cur_tok st <> Token.EOF do
    if cur_tok st = Token.KW_class then decls := Ast.Dclass (parse_class st) :: !decls
    else begin
      let loc = cur_loc st in
      let ty = parse_type st in
      let name = expect_ident st in
      if cur_tok st <> Token.LPAREN then
        error st "top-level declarations must be classes or functions";
      let params = parse_params st in
      let body = parse_block st in
      decls :=
        Ast.Dfunc
          { Ast.md_name = name;
            md_static = true;
            md_params = params;
            md_ret = ty;
            md_body = body;
            md_is_ctor = false;
            md_loc = loc }
        :: !decls
    end
  done;
  { Ast.cu_file = file; cu_decls = List.rev !decls }

let parse_string ~(file : string) (src : string) : Ast.compilation_unit =
  let tokens =
    Slice_obs.span "front.lex" (fun () -> Lexer.tokenize ~file src)
  in
  Slice_obs.span "front.parse" (fun () -> parse_unit ~file tokens)
