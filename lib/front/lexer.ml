(* Hand-written lexer for TJ.  Produces the full token list up front; TJ
   sources are small enough that streaming buys nothing. *)

open Slice_ir

exception Lex_error of string * Loc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;                 (* offset of the beginning of line *)
}

let make ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do advance st done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start = loc st in
    advance st;
    advance st;
    let rec close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> raise (Lex_error ("unterminated block comment", start))
      | Some _, _ ->
        advance st;
        close ()
    in
    close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  Token.INT (int_of_string (String.sub st.src start (st.pos - start)))

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let word = String.sub st.src start (st.pos - start) in
  match Token.keyword_of_string word with
  | Some kw -> kw
  | None -> Token.IDENT word

let lex_string st =
  let start_loc = loc st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None | Some '\n' -> raise (Lex_error ("unterminated string literal", start_loc))
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
      | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
      | Some c -> raise (Lex_error (Printf.sprintf "bad escape \\%c" c, loc st))
      | None -> raise (Lex_error ("unterminated string literal", start_loc)))
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let next_token st : Token.located =
  skip_trivia st;
  let l = loc st in
  let simple tok = advance st; tok in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> lex_ident st
    | Some '"' -> lex_string st
    | Some '(' -> simple Token.LPAREN
    | Some ')' -> simple Token.RPAREN
    | Some '{' -> simple Token.LBRACE
    | Some '}' -> simple Token.RBRACE
    | Some '[' -> simple Token.LBRACKET
    | Some ']' -> simple Token.RBRACKET
    | Some ';' -> simple Token.SEMI
    | Some ',' -> simple Token.COMMA
    | Some '.' -> simple Token.DOT
    | Some '+' ->
      advance st;
      if peek st = Some '+' then (advance st; Token.PLUSPLUS) else Token.PLUS
    | Some '-' -> simple Token.MINUS
    | Some '*' -> simple Token.STAR
    | Some '/' -> simple Token.SLASH
    | Some '%' -> simple Token.PERCENT
    | Some '=' ->
      advance st;
      if peek st = Some '=' then (advance st; Token.EQ) else Token.ASSIGN
    | Some '<' ->
      advance st;
      if peek st = Some '=' then (advance st; Token.LE) else Token.LT
    | Some '>' ->
      advance st;
      if peek st = Some '=' then (advance st; Token.GE) else Token.GT
    | Some '!' ->
      advance st;
      if peek st = Some '=' then (advance st; Token.NE) else Token.NOT
    | Some '&' ->
      advance st;
      if peek st = Some '&' then (advance st; Token.AND)
      else raise (Lex_error ("expected &&", l))
    | Some '|' ->
      advance st;
      if peek st = Some '|' then (advance st; Token.OR)
      else raise (Lex_error ("expected ||", l))
    | Some c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, l))
  in
  { Token.tok; loc = l }

let c_tokens = Slice_obs.counter "front.tokens"
let c_lines = Slice_obs.counter "front.lines"

let tokenize ~(file : string) (src : string) : Token.located list =
  let st = make ~file src in
  let rec go acc =
    let t = next_token st in
    if t.Token.tok = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  let toks = go [] in
  Slice_obs.add c_tokens (List.length toks);
  Slice_obs.add c_lines st.line;
  toks
