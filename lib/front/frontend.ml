(* End-to-end frontend driver: source text -> typed IR program in SSA form. *)

open Slice_ir

type error = {
  err_msg : string;
  err_loc : Loc.t;
  err_phase : [ `Lex | `Parse | `Semantic | `Internal ];
}

let pp_error ppf e =
  let phase =
    match e.err_phase with
    | `Lex -> "lexical error"
    | `Parse -> "parse error"
    | `Semantic -> "error"
    | `Internal -> "internal error"
  in
  Format.fprintf ppf "%a: %s: %s" Loc.pp e.err_loc phase e.err_msg

let error_to_string e = Format.asprintf "%a" pp_error e

exception Error of error

(* Parse, declare, lower and SSA-convert a single source text.
   [container_classes] selects the classes that the points-to analysis may
   treat object-sensitively (see [Declare.default_container_classes]). *)
let load_exn ?container_classes ~(file : string) (src : string) : Program.t =
  let wrap phase f =
    try f () with
    | Lexer.Lex_error (m, l) -> raise (Error { err_msg = m; err_loc = l; err_phase = `Lex })
    | Parser.Parse_error (m, l) ->
      raise (Error { err_msg = m; err_loc = l; err_phase = `Parse })
    | Declare.Semantic_error (m, l) | Lower.Type_error (m, l) ->
      raise (Error { err_msg = m; err_loc = l; err_phase = `Semantic })
    | Ssa.Ssa_error m ->
      raise (Error { err_msg = m; err_loc = Loc.none; err_phase = `Internal })
    | e ->
      ignore phase;
      raise e
  in
  Slice_obs.span "frontend" (fun () ->
      let cu = wrap `Parse (fun () -> Parser.parse_string ~file src) in
      let p = Program.create () in
      wrap `Semantic (fun () ->
          Slice_obs.span "front.declare" (fun () ->
              Declare.run ?container_classes p cu));
      wrap `Semantic (fun () ->
          Slice_obs.span "front.lower" (fun () -> Lower.run p cu));
      wrap `Internal (fun () ->
          Slice_obs.span "front.ssa" (fun () ->
              Program.iter_methods p (fun m -> Ssa.convert p m)));
      p)

(* Multi-file load: parse each unit with its own file name (so every Loc
   keeps the file it came from), then declare/lower/SSA the concatenated
   declaration list in one pass — classes may reference classes from any
   other unit regardless of order, exactly as a single concatenated source
   would behave, except that source locations stay per-file. *)
let load_many_exn ?container_classes (units : (string * string) list) :
    Program.t =
  let wrap phase f =
    try f () with
    | Lexer.Lex_error (m, l) -> raise (Error { err_msg = m; err_loc = l; err_phase = `Lex })
    | Parser.Parse_error (m, l) ->
      raise (Error { err_msg = m; err_loc = l; err_phase = `Parse })
    | Declare.Semantic_error (m, l) | Lower.Type_error (m, l) ->
      raise (Error { err_msg = m; err_loc = l; err_phase = `Semantic })
    | Ssa.Ssa_error m ->
      raise (Error { err_msg = m; err_loc = Loc.none; err_phase = `Internal })
    | e ->
      ignore phase;
      raise e
  in
  Slice_obs.span "frontend" (fun () ->
      let cus =
        List.map
          (fun (file, src) ->
            wrap `Parse (fun () -> Parser.parse_string ~file src))
          units
      in
      let cu_file =
        match cus with [] -> "<empty>" | cu :: _ -> cu.Ast.cu_file
      in
      let cu =
        { Ast.cu_file; cu_decls = List.concat_map (fun cu -> cu.Ast.cu_decls) cus }
      in
      let p = Program.create () in
      wrap `Semantic (fun () ->
          Slice_obs.span "front.declare" (fun () ->
              Declare.run ?container_classes p cu));
      wrap `Semantic (fun () ->
          Slice_obs.span "front.lower" (fun () -> Lower.run p cu));
      wrap `Internal (fun () ->
          Slice_obs.span "front.ssa" (fun () ->
              Program.iter_methods p (fun m -> Ssa.convert p m)));
      p)

let load ?container_classes ~(file : string) (src : string) :
    (Program.t, error) result =
  match load_exn ?container_classes ~file src with
  | p -> Ok p
  | exception Error e -> Error e

let load_file_exn ?container_classes (path : string) : Program.t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  load_exn ?container_classes ~file:(Filename.basename path) src
