(* Method-granular source deltas for incremental re-analysis.

   Two versions of a program are compared STRUCTURALLY: a brace- and
   string-aware scanner segments each source file into top-level
   constructs (class declarations, free functions) and class members,
   and a "skeleton" — the source with every method-body interior
   blanked, line counts preserved — decides the tier:

   - byte-equal sources                  -> [Same]
   - equal skeletons                     -> [Bodies]: every textual
     difference is inside some method body; only those methods need
     re-lowering
   - anything else (signature change, added/removed method or class,
     field/initializer edit, layout shift)   -> [Structural]

   A changed method is re-parsed through a synthetic "mini unit": the
   new file with every line outside the method blanked (and, for class
   members, a plain [class C {] / [}] wrapper on the class's own
   brace lines), so every token keeps its original line and column and
   the re-lowered IR carries the same source locations a full rebuild
   would produce.  Re-parsing one method instead of the whole file is
   what keeps a 1-method update an order of magnitude under a cold
   load. *)

open Slice_ir

(* ------------------------------------------------------------------ *)
(* Brace scanning                                                      *)
(* ------------------------------------------------------------------ *)

type brace_ev = { ev_line : int; ev_off : int; ev_open : bool }

(* Line (1-based) and byte offset of every '{' / '}' outside strings and
   comments. *)
let brace_events (src : string) : brace_ev list =
  let n = String.length src in
  let evs = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let state = ref `Code in
  while !i < n do
    let c = src.[!i] in
    (match !state with
    | `Code -> (
      match c with
      | '{' -> evs := { ev_line = !line; ev_off = !i; ev_open = true } :: !evs
      | '}' -> evs := { ev_line = !line; ev_off = !i; ev_open = false } :: !evs
      | '"' -> state := `Str
      | '/' when !i + 1 < n && src.[!i + 1] = '/' -> state := `Line_comment
      | '/' when !i + 1 < n && src.[!i + 1] = '*' ->
        state := `Block_comment;
        incr i
      | _ -> ())
    | `Str -> (
      match c with
      | '\\' -> incr i
      | '"' -> state := `Code
      | '\n' -> state := `Code (* unterminated literal: resync *)
      | _ -> ())
    | `Line_comment -> if c = '\n' then state := `Code
    | `Block_comment ->
      if c = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
        state := `Code;
        incr i
      end);
    if !i < n && src.[!i] = '\n' then incr line;
    incr i
  done;
  List.rev !evs

exception Unbalanced

(* ------------------------------------------------------------------ *)
(* Construct segmentation                                              *)
(* ------------------------------------------------------------------ *)

type meth_seg = {
  ms_class : string option;  (** wrapper class, [None] for a free function *)
  ms_name : string;  (** textual name before the parameter list *)
  ms_start : int;  (** first header line (may include leading blanks) *)
  ms_open : int;  (** line of the body-opening brace *)
  ms_close : int;  (** line of the matching closing brace *)
  ms_open_off : int;  (** byte offset of the body-opening brace *)
  ms_close_off : int;  (** byte offset of the matching closing brace *)
  ms_cls_open : int;  (** enclosing class's open-brace line, 0 for free fns *)
  ms_cls_close : int;  (** enclosing class's close-brace line, 0 likewise *)
}

(* One balanced brace group: (open event, close event, interior events). *)
let rec take_group (evs : brace_ev list) :
    (brace_ev * brace_ev * brace_ev list) * brace_ev list =
  match evs with
  | ({ ev_open = true; _ } as op) :: rest ->
    let rec scan depth acc = function
      | [] -> raise Unbalanced
      | ({ ev_open = true; _ } as e) :: tl -> scan (depth + 1) (e :: acc) tl
      | ({ ev_open = false; _ } as cl) :: tl when depth = 0 ->
        ((op, cl, List.rev acc), tl)
      | ({ ev_open = false; _ } as e) :: tl -> scan (depth - 1) (e :: acc) tl
    in
    scan 0 [] rest
  | _ -> raise Unbalanced

and groups (evs : brace_ev list) : (brace_ev * brace_ev * brace_ev list) list =
  match evs with
  | [] -> []
  | _ ->
    let g, rest = take_group evs in
    g :: groups rest

let lines_of (src : string) : string array =
  Array.of_list (String.split_on_char '\n' src)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '$'

(* The identifier immediately before the LAST '(' of [text] — the method
   name of a member/function header. *)
let name_before_paren (text : string) : string option =
  match String.rindex_opt text '(' with
  | None -> None
  | Some p ->
    let e = ref (p - 1) in
    while !e >= 0 && (text.[!e] = ' ' || text.[!e] = '\t' || text.[!e] = '\n') do
      decr e
    done;
    let s = ref !e in
    while !s >= 0 && is_ident_char text.[!s] do
      decr s
    done;
    if !e < 0 || !s = !e then None
    else Some (String.sub text (!s + 1) (!e - !s))

(* Is [text] a class-declaration header?  Looks for the [class] keyword
   as a standalone word. *)
let is_class_header (text : string) : bool =
  let n = String.length text in
  let rec find i =
    if i + 5 > n then false
    else if
      String.sub text i 5 = "class"
      && (i = 0 || not (is_ident_char text.[i - 1]))
      && (i + 5 = n || not (is_ident_char text.[i + 5]))
    then true
    else find (i + 1)
  in
  find 0

let class_name_after_kw (text : string) : string option =
  let n = String.length text in
  let rec find i =
    if i + 5 > n then None
    else if
      String.sub text i 5 = "class"
      && (i = 0 || not (is_ident_char text.[i - 1]))
      && (i + 5 = n || not (is_ident_char text.[i + 5]))
    then begin
      let s = ref (i + 5) in
      while !s < n && (text.[!s] = ' ' || text.[!s] = '\t') do
        incr s
      done;
      let e = ref !s in
      while !e < n && is_ident_char text.[!e] do
        incr e
      done;
      if !e > !s then Some (String.sub text !s (!e - !s)) else None
    end
    else find (i + 1)
  in
  find 0

(* Segment one source file into its method spans.  Raises [Unbalanced]
   on anything the scanner cannot shape (caller maps that to
   [Structural]). *)
let segment_methods (src : string) : meth_seg list =
  let lines = lines_of src in
  let evs = brace_events src in
  (* Byte offset of each line's first character (1-based line numbers). *)
  let line_start =
    let n = Array.length lines in
    let starts = Array.make (n + 2) 0 in
    let off = ref 0 in
    Array.iteri
      (fun i l ->
        starts.(i + 1) <- !off;
        off := !off + String.length l + 1)
      lines;
    starts.(n + 1) <- !off;
    starts
  in
  (* Header text of a construct: from the start of line [lo] up to (not
     including) the body-opening brace — NOT the whole brace line, whose
     tail is body text (a one-line body's trailing calls would otherwise
     masquerade as the header's parameter list). *)
  let header_text lo (op : brace_ev) =
    let s = line_start.(min lo (Array.length line_start - 1)) in
    if s >= op.ev_off then "" else String.sub src s (op.ev_off - s)
  in
  let out = ref [] in
  let prev_close = ref 0 in
  List.iter
    (fun (op, cl, interior) ->
      let header = header_text (!prev_close + 1) op in
      if is_class_header header then begin
        let cls =
          match class_name_after_kw header with
          | Some c -> c
          | None -> raise Unbalanced
        in
        (* members: balanced groups of the interior event stream *)
        let member_prev = ref op.ev_line in
        List.iter
          (fun (mop, mcl, _) ->
            let mh = header_text (!member_prev + 1) mop in
            let name =
              match name_before_paren mh with
              | Some n -> n
              | None -> raise Unbalanced
            in
            out :=
              { ms_class = Some cls;
                ms_name = name;
                ms_start = !member_prev + 1;
                ms_open = mop.ev_line;
                ms_close = mcl.ev_line;
                ms_open_off = mop.ev_off;
                ms_close_off = mcl.ev_off;
                ms_cls_open = op.ev_line;
                ms_cls_close = cl.ev_line }
              :: !out;
            member_prev := mcl.ev_line)
          (groups interior);
        prev_close := cl.ev_line
      end
      else begin
        let name =
          match name_before_paren header with
          | Some n -> n
          | None -> raise Unbalanced
        in
        out :=
          { ms_class = None;
            ms_name = name;
            ms_start = !prev_close + 1;
            ms_open = op.ev_line;
            ms_close = cl.ev_line;
            ms_open_off = op.ev_off;
            ms_close_off = cl.ev_off;
            ms_cls_open = 0;
            ms_cls_close = 0 }
          :: !out;
        prev_close := cl.ev_line
      end)
    (groups evs);
  let segs = List.rev !out in
  (* Reject overlapping / same-line constructs: blanking then becomes
     ambiguous.  Also reject members sharing a line with their class's
     braces. *)
  let ok = ref true in
  let last = ref 0 in
  List.iter
    (fun s ->
      if s.ms_start <= !last then ok := false;
      if s.ms_open > s.ms_close then ok := false;
      (match s.ms_class with
      | Some _ ->
        if s.ms_start <= s.ms_cls_open || s.ms_close >= s.ms_cls_close then
          ok := false
      | None -> ());
      last := s.ms_close)
    segs;
  if not !ok then raise Unbalanced;
  segs

(* Segmentation memo, keyed by PHYSICAL string identity.  A handle's
   stored sources are the same immutable strings on every [diff] against
   it (and the serve cache keeps them resident), so in the steady
   update/watch cycle only the genuinely new source pays a scan.  Four
   slots cover an old/new pair per file for a couple of live handles;
   [Unbalanced] scans are not cached (they re-raise on replay). *)
let seg_cache : (string * meth_seg list) option array = Array.make 4 None
let seg_cache_next = ref 0

let segment_methods_memo (src : string) : meth_seg list =
  let rec probe i =
    if i >= Array.length seg_cache then None
    else
      match seg_cache.(i) with
      | Some (s, segs) when s == src -> Some segs
      | _ -> probe (i + 1)
  in
  match probe 0 with
  | Some segs -> segs
  | None ->
    let segs = segment_methods src in
    seg_cache.(!seg_cache_next) <- Some (src, segs);
    seg_cache_next := (!seg_cache_next + 1) mod Array.length seg_cache;
    segs

(* ------------------------------------------------------------------ *)
(* Skeletons                                                           *)
(* ------------------------------------------------------------------ *)

(* The file with every method-body INTERIOR (the bytes strictly between
   the opening and closing braces) dropped, keeping only the interior's
   newlines.  Character-exact, so one-line bodies
   ([int get() { return this.f; }]) blank like multi-line ones, and
   length-normalized, so an interior edit that grows or shrinks the text
   cannot leak into the comparison.  Keeping the newlines preserves the
   file's line count AND pins each body's own line span — skeleton
   equality implies every textual difference sits inside some method
   body, no source location outside bodies moved, and every body still
   opens and closes on the same lines. *)
let skeleton_of_segs (src : string) (segs : meth_seg list) : string =
  let drop = Bytes.make (String.length src) '\000' in
  List.iter
    (fun s ->
      for i = s.ms_open_off + 1 to s.ms_close_off - 1 do
        if src.[i] <> '\n' then Bytes.set drop i '\001'
      done)
    segs;
  let buf = Buffer.create (String.length src) in
  String.iteri
    (fun i c -> if Bytes.get drop i = '\000' then Buffer.add_char buf c)
    src;
  Buffer.contents buf

let skeleton (src : string) : string = skeleton_of_segs src (segment_methods src)

(* ------------------------------------------------------------------ *)
(* Diffs                                                               *)
(* ------------------------------------------------------------------ *)

type changed_method = {
  cm_file : string;
  cm_class : string option;
  cm_name : string;
  cm_mini : string;  (** synthetic one-method unit, line-accurate *)
}

type added_method = {
  am_file : string;
  am_class : string option;
  am_name : string;
  am_mini : string;  (** synthetic one-method unit, line-accurate *)
}

type methods_delta = {
  dm_added : added_method list;
  dm_removed : (string option * string) list;
  dm_line_maps : (string * (int * int) list) list;
      (** per edited file: [(old_line, delta)] breakpoints, ascending;
          an old line [l] maps to [l + delta] of the LAST breakpoint
          with [old_line <= l] (0 before the first).  Applies to every
          surviving source location in the file — method bodies, class
          headers, field initializers *)
}

(* The new-file line of an old-file line under a breakpoint list. *)
let line_delta (bps : (int * int) list) (line : int) : int =
  List.fold_left (fun acc (l, d) -> if l <= line then d else acc) 0 bps

type t =
  | Same  (** byte-identical sources *)
  | Bodies of changed_method list
      (** only these method bodies changed; signatures and program
          structure are untouched *)
  | Methods of methods_delta
      (** whole methods were added/removed; every class shell (header,
          fields, braces) and every surviving method's text is
          unchanged, though surviving methods may sit on shifted
          lines *)
  | Structural  (** anything else: a full rebuild is required *)

(* Mini unit: the method's own lines verbatim, every other line blank;
   class members get a [class C {] / [}] wrapper on the class's own
   brace lines so constructors keep their class context. *)
let mini_unit (lines : string array) (s : meth_seg) : string =
  let n = Array.length lines in
  let out = Array.make n "" in
  for l = s.ms_start to s.ms_close do
    if l >= 1 && l <= n then out.(l - 1) <- lines.(l - 1)
  done;
  (match s.ms_class with
  | Some c ->
    out.(s.ms_cls_open - 1) <- "class " ^ c ^ " {";
    out.(s.ms_cls_close - 1) <- "}"
  | None -> ());
  String.concat "\n" (Array.to_list out)

(* Body interiors compared byte-exactly, each through its own file's
   brace offsets (skeleton equality has already pinned those offsets to
   differ only inside bodies). *)
let interior_of (src : string) (s : meth_seg) : string =
  String.sub src (s.ms_open_off + 1) (s.ms_close_off - s.ms_open_off - 1)

let interior_equal ~(old_src : string) ~(new_src : string) (so : meth_seg)
    (sn : meth_seg) : bool =
  String.equal (interior_of old_src so) (interior_of new_src sn)

(* ------------------------------------------------------------------ *)
(* Cross-method diff (method added/removed, class shell unchanged)     *)
(* ------------------------------------------------------------------ *)

(* Every line OUTSIDE member spans, in order: class headers, fields and
   their initializers, braces.  Two files whose outside-line sequences
   are equal differ only by whole member spans, so the class shells are
   untouched and surviving lines move by a per-span step function. *)
let outside_lines (lines : string array) (segs : meth_seg list) : string list =
  let n = Array.length lines in
  let inside = Array.make n false in
  List.iter
    (fun s ->
      for l = s.ms_start to s.ms_close do
        if l >= 1 && l <= n then inside.(l - 1) <- true
      done)
    segs;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if not inside.(i) then acc := lines.(i) :: !acc
  done;
  !acc

(* A member span's text with leading blank lines dropped (the span
   starts right after the previous construct, so it absorbs however
   many separator blanks sit before the header). *)
let span_text (lines : string array) (s : meth_seg) : string =
  let b = Buffer.create 64 in
  let started = ref false in
  for l = s.ms_start to s.ms_close do
    if l >= 1 && l <= Array.length lines then begin
      let line = lines.(l - 1) in
      if !started || String.trim line <> "" then begin
        started := true;
        Buffer.add_string b line;
        Buffer.add_char b '\n'
      end
    end
  done;
  Buffer.contents b

(* Attempted when the skeletons disagree: align old and new member
   spans by (class, name), admitting only whole-method insertions and
   removals.  Surviving methods must keep their exact text (modulo the
   leading blanks inside their span) and their relative order, and
   every line outside member spans must survive verbatim; anything
   else falls back to [`Structural].  Produces the per-file breakpoint
   list mapping old lines to new lines. *)
let methods_diff_file ~(file : string) ~(old_src : string)
    ~(new_src : string) (segs_old : meth_seg list) (segs_new : meth_seg list)
    :
    [ `Same
    | `Bodies of changed_method list
    | `Methods of
      added_method list * (string option * string) list * (int * int) list
    | `Structural ] =
  let old_lines = lines_of old_src and new_lines = lines_of new_src in
  if outside_lines old_lines segs_old <> outside_lines new_lines segs_new then
    `Structural
  else begin
    let key (s : meth_seg) = (s.ms_class, s.ms_name) in
    let old_a = Array.of_list segs_old and new_a = Array.of_list segs_new in
    let old_keys = Hashtbl.create 16 and new_keys = Hashtbl.create 16 in
    let dup = ref false in
    Array.iter
      (fun s ->
        if Hashtbl.mem old_keys (key s) then dup := true
        else Hashtbl.replace old_keys (key s) ())
      old_a;
    Array.iter
      (fun s ->
        if Hashtbl.mem new_keys (key s) then dup := true
        else Hashtbl.replace new_keys (key s) ())
      new_a;
    if !dup then `Structural
    else begin
      let added = ref [] and removed = ref [] in
      let bps = ref [] and d = ref 0 in
      let ok = ref true in
      let io = ref 0 and inw = ref 0 in
      let no = Array.length old_a and nn = Array.length new_a in
      while !ok && (!io < no || !inw < nn) do
        if !io < no && not (Hashtbl.mem new_keys (key old_a.(!io))) then begin
          (* removed: lines from its span start onward shift up *)
          let so = old_a.(!io) in
          d := !d - (so.ms_close - so.ms_start + 1);
          bps := (so.ms_start, !d) :: !bps;
          removed := (so.ms_class, so.ms_name) :: !removed;
          incr io
        end
        else if !inw < nn && not (Hashtbl.mem old_keys (key new_a.(!inw)))
        then begin
          (* added: the old-file anchor of the insertion point is the
             new span start mapped back through the running delta *)
          let sn = new_a.(!inw) in
          let anchor = sn.ms_start - !d in
          d := !d + (sn.ms_close - sn.ms_start + 1);
          bps := (anchor, !d) :: !bps;
          added :=
            { am_file = file;
              am_class = sn.ms_class;
              am_name = sn.ms_name;
              am_mini = mini_unit new_lines sn }
            :: !added;
          incr inw
        end
        else if !io < no && !inw < nn then begin
          let so = old_a.(!io) and sn = new_a.(!inw) in
          if
            key so <> key sn
            || sn.ms_open - so.ms_open <> !d
            || sn.ms_close - so.ms_close <> !d
            || not (String.equal (span_text old_lines so) (span_text new_lines sn))
          then ok := false
          else begin
            incr io;
            incr inw
          end
        end
        else ok := false
      done;
      if (not !ok) || (!added = [] && !removed = []) then `Structural
      else `Methods (List.rev !added, List.rev !removed, List.rev !bps)
    end
  end

let diff_file ~(file : string) ~(old_src : string) ~(new_src : string) :
    [ `Same
    | `Bodies of changed_method list
    | `Methods of
      added_method list * (string option * string) list * (int * int) list
    | `Structural ] =
  if String.equal old_src new_src then `Same
  else
    (* Segment each source exactly ONCE: the scan is the diff's dominant
       cost, and both the skeleton and the per-method comparison below
       read the same segment list. *)
    match (segment_methods_memo old_src, segment_methods_memo new_src) with
    | exception Unbalanced -> `Structural
    | segs_old, segs_new ->
      if
        not
          (String.equal
             (skeleton_of_segs old_src segs_old)
             (skeleton_of_segs new_src segs_new))
        || List.length segs_old <> List.length segs_new
      then methods_diff_file ~file ~old_src ~new_src segs_old segs_new
      else begin
        let new_lines = lines_of new_src in
        let changed = ref [] in
        let ok = ref true in
        List.iter2
          (fun so sn ->
            if
              so.ms_class <> sn.ms_class
              || not (String.equal so.ms_name sn.ms_name)
              || so.ms_open <> sn.ms_open
              || so.ms_close <> sn.ms_close
            then ok := false
            else if not (interior_equal ~old_src ~new_src so sn) then
              changed :=
                { cm_file = file;
                  cm_class = sn.ms_class;
                  cm_name = sn.ms_name;
                  cm_mini = mini_unit new_lines sn }
                :: !changed)
          segs_old segs_new;
        if not !ok then
          (* equal counts yet the positional pairing broke: could be a
             simultaneous add + remove — try the keyed alignment *)
          methods_diff_file ~file ~old_src ~new_src segs_old segs_new
        else `Bodies (List.rev !changed)
      end

let diff ~(old_sources : (string * string) list)
    ~(new_sources : (string * string) list) : t =
  if
    List.length old_sources <> List.length new_sources
    || not
         (List.for_all2
            (fun (f, _) (f', _) -> String.equal f f')
            old_sources new_sources)
  then Structural
  else begin
    let acc = ref [] in
    let m_added = ref [] and m_removed = ref [] and m_maps = ref [] in
    let structural = ref false in
    let any = ref false in
    let any_methods = ref false in
    List.iter2
      (fun (file, old_src) (_, new_src) ->
        match diff_file ~file ~old_src ~new_src with
        | `Same -> ()
        | `Structural -> structural := true
        | `Bodies ch ->
          any := true;
          acc := !acc @ ch
        | `Methods (added, removed, bps) ->
          any_methods := true;
          m_added := !m_added @ added;
          m_removed := !m_removed @ removed;
          m_maps := !m_maps @ [ (file, bps) ])
      old_sources new_sources;
    if !structural then Structural
    else if !any_methods then
      if !any then
        (* body edits and method adds/removes in one delta: rare and
           not worth a combined tier — be conservative *)
        Structural
      else
        Methods
          { dm_added = !m_added; dm_removed = !m_removed; dm_line_maps = !m_maps }
    else if not !any then Same
    else if !acc = [] then
      (* skeleton-equal yet no per-method difference: the change sits
         outside any recognized body — be conservative *)
      Structural
    else Bodies !acc
  end

(* ------------------------------------------------------------------ *)
(* Re-lowering                                                         *)
(* ------------------------------------------------------------------ *)

exception Delta_error of string

type resolved = {
  rv_mq : Instr.method_qname;
  rv_cls : Types.class_name;
  rv_md : Ast.method_decl;
}

(* Parse a mini unit down to its single method declaration. *)
let parse_mini ~(file : string) (mini : string) :
    Types.class_name * Ast.method_decl =
  let cu = Parser.parse_string ~file mini in
  match cu.Ast.cu_decls with
  | [ Ast.Dclass cd ] -> (
    match cd.Ast.cd_methods with
    | [ md ] -> (cd.Ast.cd_name, md)
    | _ -> raise (Delta_error "mini unit: expected exactly one method"))
  | [ Ast.Dfunc md ] -> (Types.toplevel_class, md)
  | _ -> raise (Delta_error "mini unit: expected exactly one declaration")

(* Parse a changed method's mini unit and identify the program method it
   denotes, WITHOUT mutating the program — the caller can snapshot the
   old body (e.g. its constraint summary) before re-lowering. *)
let resolve (p : Program.t) (cm : changed_method) : resolved =
  let cls, md = parse_mini ~file:cm.cm_file cm.cm_mini in
  let mq = { Instr.mq_class = cls; mq_name = md.Ast.md_name } in
  (match Program.find_method p mq with
  | Some _ -> ()
  | None ->
    raise
      (Delta_error
         (Printf.sprintf "mini unit: unknown method %s"
            (Instr.method_qname_to_string mq))));
  { rv_mq = mq; rv_cls = cls; rv_md = md }

(* Re-lower a resolved changed method into the existing program: fresh
   IR body and variable table in the SAME method shell (so the class
   table, points-to method index, and callers stay pointed at it), new
   globally-unique statement ids, SSA re-run.  The entry method's
   [$clinit] prepend is replayed exactly as a full [Lower.run] would. *)
let relower_resolved (p : Program.t) (r : resolved) : unit =
  let mq = r.rv_mq and cls = r.rv_cls and md = r.rv_md in
  Lower.lower_method p ~cls md;
  (* Replay the $clinit prepend for the entry method (Lower.run does
     this after lowering main). *)
  (if Instr.equal_method_qname mq (Program.entry_method p) then
     let clinit_mq =
       { Instr.mq_class = Types.toplevel_class; mq_name = "$clinit" }
     in
     match Program.find_method p clinit_mq with
     | Some clinit when Instr.has_body clinit ->
       let main = Program.find_method_exn p mq in
       let blocks = Instr.blocks_exn main in
       let entry = blocks.(Instr.entry_label main) in
       let call =
         { Instr.i_id = Program.fresh_stmt_id p;
           i_kind =
             Instr.Call { lhs = None; kind = Instr.Static clinit_mq; args = [] };
           i_loc = Loc.none }
       in
       entry.Instr.b_instrs <- call :: entry.Instr.b_instrs
     | Some _ | None -> ());
  let m = Program.find_method_exn p mq in
  Ssa.convert p m

let relower (p : Program.t) (cm : changed_method) : Instr.method_qname =
  let r = resolve p cm in
  relower_resolved p r;
  r.rv_mq

(* The program method named by a [dm_removed] entry. *)
let removed_qname ((cls, name) : string option * string) : Instr.method_qname =
  { Instr.mq_class = Option.value cls ~default:Types.toplevel_class;
    mq_name = name }

(* Parse an added method's mini unit; the method must NOT exist yet and
   its class (for members) must. *)
let resolve_added (p : Program.t) (am : added_method) : resolved =
  let cls, md = parse_mini ~file:am.am_file am.am_mini in
  let mq = { Instr.mq_class = cls; mq_name = md.Ast.md_name } in
  (match Program.find_method p mq with
  | Some _ ->
    raise
      (Delta_error
         (Printf.sprintf "mini unit: method %s already exists"
            (Instr.method_qname_to_string mq)))
  | None -> ());
  if not (Program.class_exists p cls) then
    raise (Delta_error (Printf.sprintf "mini unit: unknown class %s" cls));
  { rv_mq = mq; rv_cls = cls; rv_md = md }

(* Declare and lower an added method into the existing program, exactly
   as a full [Declare.run] + [Lower.run] would have admitted it: shell
   first (so the body can self-reference), then body, then SSA. *)
let lower_added (p : Program.t) (am : added_method) : Instr.method_qname =
  let r = resolve_added p am in
  Program.add_method p (Declare.method_shell p ~cls:r.rv_cls r.rv_md);
  relower_resolved p r;
  r.rv_mq
