(** Method-granular source deltas: classify an edit between two versions
    of a program and re-lower only the changed method bodies.

    The classifier is structural and deliberately conservative: a
    brace/string/comment-aware scanner segments each file into classes,
    members and free functions, and compares "skeletons" (the source
    with method-body interiors blanked, line counts preserved).  Equal
    skeletons prove every difference is inside some method body AND
    that all source locations outside bodies are unchanged — the
    precondition for patching analyses in place.  Everything else
    (signature edits, added/removed declarations, field-initializer
    changes, any edit that shifts line counts) degrades to
    [Structural], where the engine falls back to a full rebuild. *)

open Slice_ir

type changed_method = {
  cm_file : string;
  cm_class : string option;  (** [None] for a free function *)
  cm_name : string;  (** textual name (constructors: the class name) *)
  cm_mini : string;
      (** synthetic compilation unit holding ONLY this method, every
          token at its original line/column *)
}

type t =
  | Same  (** byte-identical sources *)
  | Bodies of changed_method list
      (** only these method bodies changed *)
  | Structural  (** full rebuild required *)

(** Classify the edit between two [(file, src)] unit lists.  Unit lists
    that differ in length, file names or order are [Structural]. *)
val diff :
  old_sources:(string * string) list ->
  new_sources:(string * string) list ->
  t

(** The source with method-body interiors blanked (line counts kept).
    Exposed for tests.  Raises on unbalanced input. *)
val skeleton : string -> string

exception Delta_error of string

(** A parsed changed method, identified but not yet applied. *)
type resolved = {
  rv_mq : Instr.method_qname;
  rv_cls : Types.class_name;
  rv_md : Ast.method_decl;
}

(** Parse a changed method's mini unit and locate the program method it
    denotes WITHOUT mutating the program — callers snapshot the old
    body's constraint summary before committing to {!relower_resolved}.
    Raises {!Delta_error} / parser errors on malformed input. *)
val resolve : Program.t -> changed_method -> resolved

(** Re-lower a resolved method into the existing program in place: the
    method shell keeps its identity, the body and variable table are
    rebuilt with fresh statement ids, SSA is re-run, and the entry
    method's [$clinit] prepend is replayed. *)
val relower_resolved : Program.t -> resolved -> unit

(** [resolve] + [relower_resolved].  Raises {!Delta_error} / parser /
    lowering errors on malformed input — callers treat any exception as
    "fall back to a full load". *)
val relower : Program.t -> changed_method -> Instr.method_qname
