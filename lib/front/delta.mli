(** Method-granular source deltas: classify an edit between two versions
    of a program and re-lower only the changed method bodies.

    The classifier is structural and deliberately conservative: a
    brace/string/comment-aware scanner segments each file into classes,
    members and free functions, and compares "skeletons" (the source
    with method-body interiors blanked, line counts preserved).  Equal
    skeletons prove every difference is inside some method body AND
    that all source locations outside bodies are unchanged — the
    precondition for patching analyses in place.

    When the skeletons disagree, a second alignment keyed by
    (class, method name) admits whole-method insertions and removals
    whose class shells (headers, fields, braces — every line outside a
    member span) survive verbatim: the [Methods] tier, carrying the
    added methods' mini units, the removed methods' names, and a
    per-file old-line -> new-line step function for the surviving
    locations.  Everything else (signature edits, class or field
    edits, reordered methods) degrades to [Structural], where the
    engine falls back to a full rebuild. *)

open Slice_ir

type changed_method = {
  cm_file : string;
  cm_class : string option;  (** [None] for a free function *)
  cm_name : string;  (** textual name (constructors: the class name) *)
  cm_mini : string;
      (** synthetic compilation unit holding ONLY this method, every
          token at its original line/column *)
}

type added_method = {
  am_file : string;
  am_class : string option;  (** [None] for a free function *)
  am_name : string;
  am_mini : string;  (** synthetic one-method unit, line-accurate *)
}

type methods_delta = {
  dm_added : added_method list;
  dm_removed : (string option * string) list;
      (** (class, name); [None] class for a free function *)
  dm_line_maps : (string * (int * int) list) list;
      (** per edited file: [(old_line, delta)] breakpoints, ascending;
          old line [l] maps to [l + delta] of the last breakpoint with
          [old_line <= l] (delta 0 before the first) *)
}

(** Evaluate a breakpoint list at an old line. *)
val line_delta : (int * int) list -> int -> int

type t =
  | Same  (** byte-identical sources *)
  | Bodies of changed_method list
      (** only these method bodies changed *)
  | Methods of methods_delta
      (** whole methods added/removed, class shells and surviving
          method text unchanged (possibly line-shifted) *)
  | Structural  (** full rebuild required *)

(** Classify the edit between two [(file, src)] unit lists.  Unit lists
    that differ in length, file names or order are [Structural]. *)
val diff :
  old_sources:(string * string) list ->
  new_sources:(string * string) list ->
  t

(** The source with method-body interiors blanked (line counts kept).
    Exposed for tests.  Raises on unbalanced input. *)
val skeleton : string -> string

exception Delta_error of string

(** A parsed changed method, identified but not yet applied. *)
type resolved = {
  rv_mq : Instr.method_qname;
  rv_cls : Types.class_name;
  rv_md : Ast.method_decl;
}

(** Parse a changed method's mini unit and locate the program method it
    denotes WITHOUT mutating the program — callers snapshot the old
    body's constraint summary before committing to {!relower_resolved}.
    Raises {!Delta_error} / parser errors on malformed input. *)
val resolve : Program.t -> changed_method -> resolved

(** Re-lower a resolved method into the existing program in place: the
    method shell keeps its identity, the body and variable table are
    rebuilt with fresh statement ids, SSA is re-run, and the entry
    method's [$clinit] prepend is replayed. *)
val relower_resolved : Program.t -> resolved -> unit

(** [resolve] + [relower_resolved].  Raises {!Delta_error} / parser /
    lowering errors on malformed input — callers treat any exception as
    "fall back to a full load". *)
val relower : Program.t -> changed_method -> Instr.method_qname

(** The program method named by a [dm_removed] entry. *)
val removed_qname : string option * string -> Instr.method_qname

(** Parse an added method's mini unit WITHOUT mutating the program.
    Raises {!Delta_error} if the method already exists or its class is
    unknown. *)
val resolve_added : Program.t -> added_method -> resolved

(** Declare and lower an added method into the existing program, as a
    full [Declare.run] + [Lower.run] would have admitted it: signature
    shell, body with fresh statement ids, SSA.  Raises on malformed
    input — callers fall back to a full load. *)
val lower_added : Program.t -> added_method -> Instr.method_qname
