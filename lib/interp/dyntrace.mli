(** Dynamic dependence traces.

    Each executed instruction instance becomes an event carrying its
    static statement id and the event indices it depends on, split into
    value (producer) and base-pointer dependences — the dynamic
    counterpart of the static classification in {!Slice_ir.Instr}.  The
    paper observes (sections 1 and 7) that dynamic thin slices fall out of
    dynamic data dependences directly; this module implements that. *)

type event = {
  ev_stmt : Slice_ir.Instr.stmt_id;
  ev_val_deps : int list;   (** event indices: value/producer flow *)
  ev_base_deps : int list;  (** event indices: base-pointer flow *)
}

type t

(** Raised by {!add} past the event budget; carries the number of events
    recorded when the budget was hit. *)
exception Trace_overflow of int

(** [create ()] makes an empty trace; recording more than [max_events]
    events raises {!Trace_overflow} (default 2,000,000).  Mega-program
    harnesses that sample dynamic oracles at the 10^5-10^6-statement
    scale should size [max_events] to a few times the static statement
    count. *)
val create : ?max_events:int -> unit -> t

val length : t -> int
val event : t -> int -> event

(** Record an event; returns its index.  Used by the interpreter. *)
val add :
  t ->
  stmt:Slice_ir.Instr.stmt_id ->
  val_deps:int list ->
  base_deps:int list ->
  int

val last_event_of_stmt : t -> Slice_ir.Instr.stmt_id -> int option

(** Backward traversal from an event over the selected dependence kinds;
    returns the distinct static statements touched, sorted. *)
val slice_from_event :
  t -> include_base:bool -> int -> Slice_ir.Instr.stmt_id list

(** Dynamic thin slice for the most recent execution of the statement:
    producer events only.  [None] if the statement never executed. *)
val dynamic_thin_slice :
  t -> Slice_ir.Instr.stmt_id -> Slice_ir.Instr.stmt_id list option

(** Dynamic data slice: thin plus base-pointer flow. *)
val dynamic_data_slice :
  t -> Slice_ir.Instr.stmt_id -> Slice_ir.Instr.stmt_id list option
