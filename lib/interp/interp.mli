(** Concrete interpreter for TJ programs in SSA form.

    Two roles in this reproduction:
    - validating the evaluation workloads: each injected-bug program must
      actually fail (the SIR suites were run to expose failures; the
      interpreter plays that role here);
    - producing dynamic dependence traces ({!Dyntrace}) for dynamic thin
      slicing.

    TJ has no [catch], so any runtime failure (or user [throw]) aborts the
    run and is reported with the failing statement — which debugging tasks
    then use as the slicing seed. *)

open Slice_ir

type value =
  | Vint of int
  | Vbool of bool
  | Vnull
  | Vstr of string
  | Vobj of obj
  | Varr of arr

and obj = {
  o_id : int;
  o_class : Types.class_name;
  o_fields : (Types.field_name, value) Hashtbl.t;
  mutable o_stream : string list option;
      (** remaining input lines, for InputStream objects *)
}

and arr = { a_id : int; a_elem : Types.ty; a_cells : value array }

type failure_kind =
  | Null_pointer
  | Class_cast of Types.class_name * Types.ty
  | Index_out_of_bounds of int * int  (** index, length *)
  | Division_by_zero
  | Negative_array_size of int
  | String_index_out_of_bounds
  | Read_past_eof
  | Parse_int_error of string
  | User_throw of Types.class_name
  | Step_limit_exceeded
  | Stack_overflow_limit
  | Trace_limit_exceeded of int
      (** the {!Dyntrace} event limit was hit mid-run after this many
          events; never surfaced as a raw {!Dyntrace.Trace_overflow}
          exception *)
  | Missing_return
  | Assertion of string  (** internal interpreter invariant violations *)

type failure = {
  f_kind : failure_kind;
  f_stmt : Instr.stmt_id;  (** the failing statement — a natural slicing seed *)
  f_loc : Loc.t;
  f_method : Instr.method_qname;
}

val failure_kind_to_string : failure_kind -> string
val pp_failure : Format.formatter -> failure -> unit

type config = {
  args : string list;  (** main's String[] argument *)
  streams : (string * string list) list;
      (** content for [new InputStream(name)], one string per line *)
  max_steps : int;
  max_depth : int;
  trace : Dyntrace.t option;  (** record dynamic dependences when set *)
}

val default_config : config

type outcome = {
  output : string list;  (** lines printed, in order *)
  result : (unit, failure) Result.t;
  steps : int;
}

val run : config -> Program.t -> outcome

(** Convenience: run and return the failure, if any. *)
val run_expecting_failure : config -> Program.t -> failure option

val value_to_string : value -> string
