(* Concrete interpreter for TJ programs in SSA form.

   Two roles in this reproduction:
   - validating the evaluation workloads: each injected-bug program must
     actually fail at the expected statement (the SIR suites were *run* to
     expose failures; we do the same);
   - producing dynamic dependence traces ([Dyntrace]) for dynamic thin
     slicing.

   TJ has no catch, so any runtime failure (or user [throw]) aborts the run
   and is reported with the failing statement — which debugging tasks then
   use as the slicing seed. *)

open Slice_ir

type value =
  | Vint of int
  | Vbool of bool
  | Vnull
  | Vstr of string
  | Vobj of obj
  | Varr of arr

and obj = {
  o_id : int;
  o_class : Types.class_name;
  o_fields : (Types.field_name, value) Hashtbl.t;
  (* remaining input lines, for InputStream objects *)
  mutable o_stream : string list option;
}

and arr = { a_id : int; a_elem : Types.ty; a_cells : value array }

type failure_kind =
  | Null_pointer
  | Class_cast of Types.class_name * Types.ty    (* actual class, target *)
  | Index_out_of_bounds of int * int             (* index, length *)
  | Division_by_zero
  | Negative_array_size of int
  | String_index_out_of_bounds
  | Read_past_eof
  | Parse_int_error of string
  | User_throw of Types.class_name
  | Step_limit_exceeded
  | Stack_overflow_limit
  | Trace_limit_exceeded of int
  | Missing_return
  | Assertion of string                          (* internal errors *)

type failure = {
  f_kind : failure_kind;
  f_stmt : Instr.stmt_id;
  f_loc : Loc.t;
  f_method : Instr.method_qname;
}

let failure_kind_to_string = function
  | Null_pointer -> "NullPointerException"
  | Class_cast (c, t) ->
    Printf.sprintf "ClassCastException: %s cannot be cast to %s" c
      (Types.ty_to_string t)
  | Index_out_of_bounds (i, n) ->
    Printf.sprintf "ArrayIndexOutOfBoundsException: index %d, length %d" i n
  | Division_by_zero -> "ArithmeticException: / by zero"
  | Negative_array_size n -> Printf.sprintf "NegativeArraySizeException: %d" n
  | String_index_out_of_bounds -> "StringIndexOutOfBoundsException"
  | Read_past_eof -> "IOException: read past end of stream"
  | Parse_int_error s -> Printf.sprintf "NumberFormatException: %S" s
  | User_throw c -> Printf.sprintf "uncaught exception %s" c
  | Step_limit_exceeded -> "interpreter step limit exceeded"
  | Stack_overflow_limit -> "interpreter call-depth limit exceeded"
  | Trace_limit_exceeded n ->
    Printf.sprintf "dynamic trace event limit exceeded after %d events" n
  | Missing_return -> "method fell off the end without returning a value"
  | Assertion s -> Printf.sprintf "internal interpreter error: %s" s

let pp_failure ppf (f : failure) =
  Format.fprintf ppf "%a: %s (in %a, stmt %d)" Loc.pp f.f_loc
    (failure_kind_to_string f.f_kind)
    Instr.pp_method_qname f.f_method f.f_stmt

type config = {
  args : string list;                       (* main's String[] argument *)
  streams : (string * string list) list;    (* stream name -> lines *)
  max_steps : int;
  max_depth : int;
  trace : Dyntrace.t option;
}

let default_config =
  { args = []; streams = []; max_steps = 2_000_000; max_depth = 2_000; trace = None }

type outcome = {
  output : string list;                     (* lines printed, in order *)
  result : (unit, failure) Result.t;
  steps : int;
}

exception Fail of failure

(* Interpreter state. *)
type state = {
  p : Program.t;
  config : config;
  mutable next_obj : int;
  mutable steps : int;
  mutable rng : int;
  out : Buffer.t;
  mutable out_lines : string list;          (* reversed *)
  (* statics: (class, field) -> value *)
  statics : (Types.class_name * Types.field_name, value) Hashtbl.t;
  (* dynamic dependence bookkeeping (only used when tracing) *)
  heap_def : (int * Types.field_name, int) Hashtbl.t;   (* obj id, field -> event *)
  arr_def : (int * int, int) Hashtbl.t;                 (* arr id, index -> event *)
  static_def : (Types.class_name * Types.field_name, int) Hashtbl.t;
  arr_len_def : (int, int) Hashtbl.t;                   (* arr id -> event of new[] *)
}

(* A call frame: register file plus, when tracing, the defining event of
   each register. *)
type frame = {
  meth : Instr.meth;
  regs : value array;
  reg_ev : int array;                       (* -1 = no event *)
}

let runtime_class_name (v : value) : Types.class_name option =
  match v with
  | Vobj o -> Some o.o_class
  | Vstr _ -> Some Types.string_class
  | Vint _ | Vbool _ | Vnull | Varr _ -> None

let rec default_value (st : state) (ty : Types.ty) : value =
  ignore st;
  match ty with
  | Types.Tint -> Vint 0
  | Types.Tbool -> Vbool false
  | Types.Tclass _ | Types.Tarray _ | Types.Tnull -> Vnull
  | Types.Tvoid -> Vnull

and all_fields (st : state) (c : Types.class_name) : (Types.field_name * Types.ty) list
    =
  match Program.find_class st.p c with
  | None -> []
  | Some ci ->
    let inherited =
      match ci.Program.c_super with Some s -> all_fields st s | None -> []
    in
    inherited @ ci.Program.c_fields

let new_object (st : state) (c : Types.class_name) : obj =
  let o =
    { o_id = st.next_obj;
      o_class = c;
      o_fields = Hashtbl.create 8;
      o_stream = None }
  in
  st.next_obj <- st.next_obj + 1;
  List.iter
    (fun (f, ty) -> Hashtbl.replace o.o_fields f (default_value st ty))
    (all_fields st c);
  o

let new_array (st : state) (elem : Types.ty) (n : int) : arr =
  let a = { a_id = st.next_obj; a_elem = elem; a_cells = Array.make n (default_value st elem) } in
  st.next_obj <- st.next_obj + 1;
  a

let value_to_string (v : value) : string =
  match v with
  | Vint n -> string_of_int n
  | Vbool b -> string_of_bool b
  | Vnull -> "null"
  | Vstr s -> s
  | Vobj o -> Printf.sprintf "%s@%d" o.o_class o.o_id
  | Varr a -> Printf.sprintf "array@%d" a.a_id

(* Does the runtime value conform to the (reference) type? *)
let value_has_type (st : state) (v : value) (ty : Types.ty) : bool =
  match (v, ty) with
  | Vnull, _ -> true
  | Vstr _, Types.Tclass c ->
    Program.is_subclass st.p ~sub:Types.string_class ~sup:c
  | Vobj o, Types.Tclass c -> Program.is_subclass st.p ~sub:o.o_class ~sup:c
  | Varr _, Types.Tclass c -> String.equal c Types.object_class
  | Varr a, Types.Tarray elem -> (
    (* arrays are covariant; element type conformance is approximated by the
       allocation element type *)
    match (a.a_elem, elem) with
    | Types.Tclass sub, Types.Tclass sup -> Program.is_subclass st.p ~sub ~sup
    | x, y -> Types.equal_ty x y)
  | (Vint _ | Vbool _ | Vobj _ | Vstr _ | Varr _), _ -> false

let run (config : config) (p : Program.t) : outcome =
  let st =
    { p;
      config;
      next_obj = 1;
      steps = 0;
      rng = 123456789;
      out = Buffer.create 256;
      out_lines = [];
      statics = Hashtbl.create 16;
      heap_def = Hashtbl.create 256;
      arr_def = Hashtbl.create 256;
      static_def = Hashtbl.create 16;
      arr_len_def = Hashtbl.create 64 }
  in
  let fail ~stmt ~loc ~meth kind =
    raise (Fail { f_kind = kind; f_stmt = stmt; f_loc = loc; f_method = meth })
  in
  let tick ~stmt ~loc ~meth =
    st.steps <- st.steps + 1;
    if st.steps > config.max_steps then fail ~stmt ~loc ~meth Step_limit_exceeded
  in
  let tracing = config.trace <> None in
  let emit_event ~stmt ~val_deps ~base_deps : int =
    match config.trace with
    | None -> -1
    | Some tr -> Dyntrace.add tr ~stmt ~val_deps ~base_deps
  in
  let deps evs = List.filter (fun e -> e >= 0) evs in

  (* Execute method [m] with arguments [args] whose defining events are
     [arg_evs]; returns (value option, defining event of the return). *)
  let rec exec_method ~depth (m : Instr.meth) (args : value list)
      (arg_evs : int list) ~(call_stmt : Instr.stmt_id) ~(call_loc : Loc.t) :
      value option * int =
    let mq = m.Instr.m_qname in
    if depth > config.max_depth then
      fail ~stmt:call_stmt ~loc:call_loc ~meth:mq Stack_overflow_limit;
    match m.Instr.m_body with
    | Instr.Intrinsic intr ->
      exec_intrinsic intr m args arg_evs ~call_stmt ~call_loc
    | Instr.Abstract ->
      fail ~stmt:call_stmt ~loc:call_loc ~meth:mq
        (Assertion (Printf.sprintf "call to abstract method %s"
                      (Instr.method_qname_to_string mq)))
    | Instr.Body { blocks; entry } ->
      let nvars = Array.length m.Instr.m_vars in
      let frame =
        { meth = m;
          regs = Array.make nvars Vnull;
          reg_ev = Array.make nvars (-1) }
      in
      List.iteri
        (fun i v ->
          frame.regs.(v) <- List.nth args i;
          frame.reg_ev.(v) <- (try List.nth arg_evs i with _ -> -1))
        m.Instr.m_params;
      let get v = frame.regs.(v) in
      let gev v = frame.reg_ev.(v) in
      let set ?(ev = -1) v value =
        frame.regs.(v) <- value;
        frame.reg_ev.(v) <- ev
      in
      let as_int ~stmt ~loc v =
        match get v with
        | Vint n -> n
        | other ->
          fail ~stmt ~loc ~meth:mq
            (Assertion (Printf.sprintf "expected int, got %s" (value_to_string other)))
      in
      let as_bool ~stmt ~loc v =
        match get v with
        | Vbool b -> b
        | other ->
          fail ~stmt ~loc ~meth:mq
            (Assertion
               (Printf.sprintf "expected boolean, got %s" (value_to_string other)))
      in
      let as_obj ~stmt ~loc v =
        match get v with
        | Vobj o -> o
        | Vnull -> fail ~stmt ~loc ~meth:mq Null_pointer
        | other ->
          fail ~stmt ~loc ~meth:mq
            (Assertion (Printf.sprintf "expected object, got %s" (value_to_string other)))
      in
      let as_arr ~stmt ~loc v =
        match get v with
        | Varr a -> a
        | Vnull -> fail ~stmt ~loc ~meth:mq Null_pointer
        | other ->
          fail ~stmt ~loc ~meth:mq
            (Assertion (Printf.sprintf "expected array, got %s" (value_to_string other)))
      in
      let exec_instr (pred : Instr.label) (i : Instr.instr) : unit =
        let stmt = i.Instr.i_id and loc = i.Instr.i_loc in
        tick ~stmt ~loc ~meth:mq;
        match i.Instr.i_kind with
        | Instr.Const (x, c) ->
          let v =
            match c with
            | Types.Cint n -> Vint n
            | Types.Cbool b -> Vbool b
            | Types.Cstr s -> Vstr s
            | Types.Cnull -> Vnull
          in
          set x v ~ev:(emit_event ~stmt ~val_deps:[] ~base_deps:[])
        | Instr.Move (x, y) ->
          set x (get y) ~ev:(emit_event ~stmt ~val_deps:(deps [ gev y ]) ~base_deps:[])
        | Instr.Binop (x, op, y, z) ->
          let v =
            match op with
            | Types.Concat -> (
              (* as in Java, a null reference renders as "null" *)
              match (get y, get z) with
              | Vstr a, Vstr b -> Vstr (a ^ b)
              | Vstr a, Vnull -> Vstr (a ^ "null")
              | Vnull, Vstr b -> Vstr ("null" ^ b)
              | Vnull, Vnull -> Vstr "nullnull"
              | _ ->
                fail ~stmt ~loc ~meth:mq (Assertion "concat of non-strings"))
            | Types.Add -> Vint (as_int ~stmt ~loc y + as_int ~stmt ~loc z)
            | Types.Sub -> Vint (as_int ~stmt ~loc y - as_int ~stmt ~loc z)
            | Types.Mul -> Vint (as_int ~stmt ~loc y * as_int ~stmt ~loc z)
            | Types.Div ->
              let d = as_int ~stmt ~loc z in
              if d = 0 then fail ~stmt ~loc ~meth:mq Division_by_zero
              else Vint (as_int ~stmt ~loc y / d)
            | Types.Mod ->
              let d = as_int ~stmt ~loc z in
              if d = 0 then fail ~stmt ~loc ~meth:mq Division_by_zero
              else Vint (as_int ~stmt ~loc y mod d)
            | Types.Lt -> Vbool (as_int ~stmt ~loc y < as_int ~stmt ~loc z)
            | Types.Le -> Vbool (as_int ~stmt ~loc y <= as_int ~stmt ~loc z)
            | Types.Gt -> Vbool (as_int ~stmt ~loc y > as_int ~stmt ~loc z)
            | Types.Ge -> Vbool (as_int ~stmt ~loc y >= as_int ~stmt ~loc z)
            | Types.And -> Vbool (as_bool ~stmt ~loc y && as_bool ~stmt ~loc z)
            | Types.Or -> Vbool (as_bool ~stmt ~loc y || as_bool ~stmt ~loc z)
            | Types.Eq | Types.Ne ->
              let eq =
                match (get y, get z) with
                | Vint a, Vint b -> a = b
                | Vbool a, Vbool b -> a = b
                | Vnull, Vnull -> true
                | Vstr a, Vstr b -> a == b || String.equal a b
                | Vobj a, Vobj b -> a.o_id = b.o_id
                | Varr a, Varr b -> a.a_id = b.a_id
                | _, _ -> false
              in
              Vbool (if op = Types.Eq then eq else not eq)
          in
          set x v
            ~ev:(emit_event ~stmt ~val_deps:(deps [ gev y; gev z ]) ~base_deps:[])
        | Instr.Unop (x, op, y) ->
          let v =
            match op with
            | Types.Neg -> Vint (-as_int ~stmt ~loc y)
            | Types.Not -> Vbool (not (as_bool ~stmt ~loc y))
          in
          set x v ~ev:(emit_event ~stmt ~val_deps:(deps [ gev y ]) ~base_deps:[])
        | Instr.New (x, c) ->
          set x (Vobj (new_object st c)) ~ev:(emit_event ~stmt ~val_deps:[] ~base_deps:[])
        | Instr.New_array (x, elem, n) ->
          let len = as_int ~stmt ~loc n in
          if len < 0 then fail ~stmt ~loc ~meth:mq (Negative_array_size len);
          let a = new_array st elem len in
          let ev = emit_event ~stmt ~val_deps:(deps [ gev n ]) ~base_deps:[] in
          if tracing then Hashtbl.replace st.arr_len_def a.a_id ev;
          set x (Varr a) ~ev
        | Instr.Load (x, y, f) ->
          let o = as_obj ~stmt ~loc y in
          let v =
            match Hashtbl.find_opt o.o_fields f with
            | Some v -> v
            | None ->
              fail ~stmt ~loc ~meth:mq
                (Assertion (Printf.sprintf "object %s has no field %s" o.o_class f))
          in
          let heap_ev =
            if tracing then
              Option.value ~default:(-1) (Hashtbl.find_opt st.heap_def (o.o_id, f))
            else -1
          in
          set x v
            ~ev:
              (emit_event ~stmt ~val_deps:(deps [ heap_ev ])
                 ~base_deps:(deps [ gev y ]))
        | Instr.Store (x, f, y) ->
          let o = as_obj ~stmt ~loc x in
          Hashtbl.replace o.o_fields f (get y);
          let ev =
            emit_event ~stmt ~val_deps:(deps [ gev y ]) ~base_deps:(deps [ gev x ])
          in
          if tracing then Hashtbl.replace st.heap_def (o.o_id, f) ev
        | Instr.Array_load (x, y, idx) ->
          let a = as_arr ~stmt ~loc y in
          let i = as_int ~stmt ~loc idx in
          if i < 0 || i >= Array.length a.a_cells then
            fail ~stmt ~loc ~meth:mq (Index_out_of_bounds (i, Array.length a.a_cells));
          let heap_ev =
            if tracing then
              Option.value ~default:(-1) (Hashtbl.find_opt st.arr_def (a.a_id, i))
            else -1
          in
          set x a.a_cells.(i)
            ~ev:
              (emit_event ~stmt ~val_deps:(deps [ heap_ev ])
                 ~base_deps:(deps [ gev y; gev idx ]))
        | Instr.Array_store (y, idx, x) ->
          let a = as_arr ~stmt ~loc y in
          let i = as_int ~stmt ~loc idx in
          if i < 0 || i >= Array.length a.a_cells then
            fail ~stmt ~loc ~meth:mq (Index_out_of_bounds (i, Array.length a.a_cells));
          a.a_cells.(i) <- get x;
          let ev =
            emit_event ~stmt ~val_deps:(deps [ gev x ])
              ~base_deps:(deps [ gev y; gev idx ])
          in
          if tracing then Hashtbl.replace st.arr_def (a.a_id, i) ev
        | Instr.Array_length (x, y) ->
          let a = as_arr ~stmt ~loc y in
          let len_ev =
            if tracing then
              Option.value ~default:(-1) (Hashtbl.find_opt st.arr_len_def a.a_id)
            else -1
          in
          set x
            (Vint (Array.length a.a_cells))
            ~ev:
              (emit_event ~stmt ~val_deps:(deps [ len_ev ])
                 ~base_deps:(deps [ gev y ]))
        | Instr.Static_load (x, c, f) ->
          let v =
            match Hashtbl.find_opt st.statics (c, f) with
            | Some v -> v
            | None -> (
              match Program.lookup_static_field st.p c f with
              | Some (_, ty) -> default_value st ty
              | None ->
                fail ~stmt ~loc ~meth:mq
                  (Assertion (Printf.sprintf "no static field %s.%s" c f)))
          in
          let sev =
            if tracing then
              Option.value ~default:(-1) (Hashtbl.find_opt st.static_def (c, f))
            else -1
          in
          set x v ~ev:(emit_event ~stmt ~val_deps:(deps [ sev ]) ~base_deps:[])
        | Instr.Static_store (c, f, y) ->
          Hashtbl.replace st.statics (c, f) (get y);
          let ev = emit_event ~stmt ~val_deps:(deps [ gev y ]) ~base_deps:[] in
          if tracing then Hashtbl.replace st.static_def (c, f) ev
        | Instr.Cast (x, ty, y) ->
          let v = get y in
          if not (value_has_type st v ty) then begin
            let actual = Option.value ~default:"?" (runtime_class_name v) in
            fail ~stmt ~loc ~meth:mq (Class_cast (actual, ty))
          end;
          set x v ~ev:(emit_event ~stmt ~val_deps:(deps [ gev y ]) ~base_deps:[])
        | Instr.Instance_of (x, ty, y) ->
          let v = get y in
          let b = (match v with Vnull -> false | _ -> value_has_type st v ty) in
          set x (Vbool b) ~ev:(emit_event ~stmt ~val_deps:(deps [ gev y ]) ~base_deps:[])
        | Instr.Call { lhs; kind; args = arg_vars } ->
          let arg_vals = List.map get arg_vars in
          let arg_events = List.map gev arg_vars in
          let callee =
            match kind with
            | Instr.Static mq' | Instr.Special mq' -> Program.find_method_exn st.p mq'
            | Instr.Virtual name -> (
              match arg_vals with
              | recv :: _ -> (
                let cls =
                  match runtime_class_name recv with
                  | Some c -> c
                  | None -> (
                    match recv with
                    | Vnull -> fail ~stmt ~loc ~meth:mq Null_pointer
                    | _ ->
                      fail ~stmt ~loc ~meth:mq
                        (Assertion "virtual call on non-object"))
                in
                match Program.dispatch st.p cls name with
                | Some m' -> m'
                | None ->
                  fail ~stmt ~loc ~meth:mq
                    (Assertion (Printf.sprintf "no method %s on %s" name cls)))
              | [] -> fail ~stmt ~loc ~meth:mq (Assertion "virtual call without receiver"))
          in
          let ret, ret_ev =
            exec_method ~depth:(depth + 1) callee arg_vals arg_events
              ~call_stmt:stmt ~call_loc:loc
          in
          (match lhs with
          | Some x -> (
            match ret with
            | Some v ->
              (* the call statement itself joins the dynamic producer
                 chain, mirroring its place in the static thin slice *)
              let ev =
                emit_event ~stmt ~val_deps:(deps [ ret_ev ]) ~base_deps:[]
              in
              set x v ~ev
            | None ->
              fail ~stmt ~loc ~meth:mq
                (Assertion "non-void call returned no value"))
          | None -> ())
        | Instr.Phi (x, ins) -> (
          match List.assoc_opt pred ins with
          | Some y ->
            set x (get y)
              ~ev:(emit_event ~stmt ~val_deps:(deps [ gev y ]) ~base_deps:[])
          | None ->
            fail ~stmt ~loc ~meth:mq
              (Assertion (Printf.sprintf "phi has no operand for predecessor B%d" pred)))
        | Instr.Nop -> ()
      in
      (* Tail-recursive block execution; [pred] feeds phi selection. *)
      let rec run_block (label : Instr.label) (pred : Instr.label) :
          value option * int =
        let b = blocks.(label) in
        (* Phis evaluate simultaneously: read operands first. *)
        let phis, rest =
          List.partition
            (fun i -> match i.Instr.i_kind with Instr.Phi _ -> true | _ -> false)
            b.Instr.b_instrs
        in
        let phi_values =
          List.map
            (fun i ->
              match i.Instr.i_kind with
              | Instr.Phi (x, ins) -> (
                match List.assoc_opt pred ins with
                | Some y -> (i, x, get y, gev y)
                | None ->
                  fail ~stmt:i.Instr.i_id ~loc:i.Instr.i_loc ~meth:mq
                    (Assertion
                       (Printf.sprintf "phi has no operand for predecessor B%d" pred)))
              | _ -> assert false)
            phis
        in
        List.iter
          (fun (i, x, v, src_ev) ->
            tick ~stmt:i.Instr.i_id ~loc:i.Instr.i_loc ~meth:mq;
            set x v
              ~ev:
                (emit_event ~stmt:i.Instr.i_id ~val_deps:(deps [ src_ev ])
                   ~base_deps:[]))
          phi_values;
        List.iter (exec_instr pred) rest;
        let t = b.Instr.b_term in
        let stmt = t.Instr.t_id and loc = t.Instr.t_loc in
        tick ~stmt ~loc ~meth:mq;
        match t.Instr.t_kind with
        | Instr.Goto l -> run_block l label
        | Instr.If (v, l1, l2) ->
          ignore (emit_event ~stmt ~val_deps:(deps [ gev v ]) ~base_deps:[]);
          if as_bool ~stmt ~loc v then run_block l1 label else run_block l2 label
        | Instr.Return None -> (None, -1)
        | Instr.Return (Some v) ->
          let ev = emit_event ~stmt ~val_deps:(deps [ gev v ]) ~base_deps:[] in
          (Some (get v), ev)
        | Instr.Throw v ->
          let cls =
            match get v with
            | Vobj o -> o.o_class
            | Vnull -> fail ~stmt ~loc ~meth:mq Null_pointer
            | _ -> fail ~stmt ~loc ~meth:mq (Assertion "throw of non-object")
          in
          fail ~stmt ~loc ~meth:mq (User_throw cls)
      in
      let result = run_block entry (-1) in
      (match (result, m.Instr.m_ret_ty) with
      | (None, _), rt when not (Types.equal_ty rt Types.Tvoid) ->
        (* all-paths-return was checked syntactically; loops with breaks can
           still evade it *)
        fail ~stmt:call_stmt ~loc:call_loc ~meth:mq Missing_return
      | _ -> ());
      result

  and exec_intrinsic (intr : Instr.intrinsic) (m : Instr.meth)
      (args : value list) (arg_evs : int list) ~(call_stmt : Instr.stmt_id)
      ~(call_loc : Loc.t) : value option * int =
    let mq = m.Instr.m_qname in
    let fail_ kind =
      raise
        (Fail { f_kind = kind; f_stmt = call_stmt; f_loc = call_loc; f_method = mq })
    in
    let ev ?(base = []) () =
      emit_event ~stmt:call_stmt ~val_deps:(deps arg_evs) ~base_deps:(deps base)
    in
    let str_arg n =
      match List.nth_opt args n with
      | Some (Vstr s) -> s
      | Some Vnull -> fail_ Null_pointer
      | _ -> fail_ (Assertion "expected string argument")
    in
    let int_arg n =
      match List.nth_opt args n with
      | Some (Vint i) -> i
      | _ -> fail_ (Assertion "expected int argument")
    in
    match intr with
    | Instr.Str_index_of ->
      let hay = str_arg 0 and needle = str_arg 1 in
      let hl = String.length hay and nl = String.length needle in
      let rec find i =
        if i + nl > hl then -1
        else if String.sub hay i nl = needle then i
        else find (i + 1)
      in
      (Some (Vint (find 0)), ev ())
    | Instr.Str_substring ->
      let s = str_arg 0 and i = int_arg 1 and j = int_arg 2 in
      if i < 0 || j > String.length s || i > j then fail_ String_index_out_of_bounds
      else (Some (Vstr (String.sub s i (j - i))), ev ())
    | Instr.Str_length -> (Some (Vint (String.length (str_arg 0))), ev ())
    | Instr.Str_equals -> (
      match List.nth_opt args 1 with
      | Some (Vstr b) -> (Some (Vbool (String.equal (str_arg 0) b)), ev ())
      | Some _ -> (Some (Vbool false), ev ())
      | None -> fail_ (Assertion "equals: missing argument"))
    | Instr.Str_char_at ->
      let s = str_arg 0 and i = int_arg 1 in
      if i < 0 || i >= String.length s then fail_ String_index_out_of_bounds
      else (Some (Vstr (String.make 1 s.[i])), ev ())
    | Instr.Str_char_code_at ->
      let s = str_arg 0 and i = int_arg 1 in
      if i < 0 || i >= String.length s then fail_ String_index_out_of_bounds
      else (Some (Vint (Char.code s.[i])), ev ())
    | Instr.Str_starts_with ->
      let s = str_arg 0 and pre = str_arg 1 in
      let ok =
        String.length pre <= String.length s
        && String.sub s 0 (String.length pre) = pre
      in
      (Some (Vbool ok), ev ())
    | Instr.Stream_init -> (
      match args with
      | [ Vobj o; Vstr name ] ->
        let lines =
          Option.value ~default:[] (List.assoc_opt name st.config.streams)
        in
        o.o_stream <- Some lines;
        ignore (ev ());
        (None, -1)
      | [ Vnull; _ ] -> fail_ Null_pointer
      | _ -> fail_ (Assertion "InputStream constructor expects a string"))
    | Instr.Stream_read_line -> (
      match args with
      | [ Vobj o ] -> (
        match o.o_stream with
        | Some (line :: rest) ->
          o.o_stream <- Some rest;
          (Some (Vstr line), ev ())
        | Some [] -> fail_ Read_past_eof
        | None -> fail_ (Assertion "readLine on uninitialized stream"))
      | [ Vnull ] -> fail_ Null_pointer
      | _ -> fail_ (Assertion "readLine: bad receiver"))
    | Instr.Stream_eof -> (
      match args with
      | [ Vobj o ] -> (
        match o.o_stream with
        | Some [] -> (Some (Vbool true), ev ())
        | Some _ -> (Some (Vbool false), ev ())
        | None -> fail_ (Assertion "eof on uninitialized stream"))
      | [ Vnull ] -> fail_ Null_pointer
      | _ -> fail_ (Assertion "eof: bad receiver"))
    | Instr.Top_print -> (
      match args with
      | [ v ] ->
        let line = value_to_string v in
        Buffer.add_string st.out line;
        Buffer.add_char st.out '\n';
        st.out_lines <- line :: st.out_lines;
        ignore (ev ());
        (None, -1)
      | _ -> fail_ (Assertion "print expects one argument"))
    | Instr.Top_parse_int -> (
      let s = str_arg 0 in
      match int_of_string_opt (String.trim s) with
      | Some n -> (Some (Vint n), ev ())
      | None -> fail_ (Parse_int_error s))
    | Instr.Top_itoa -> (Some (Vstr (string_of_int (int_arg 0))), ev ())
    | Instr.Top_random ->
      let n = int_arg 0 in
      if n <= 0 then fail_ (Assertion "random(n) requires n > 0");
      st.rng <- (st.rng * 1103515245 + 12345) land 0x3FFFFFFF;
      (Some (Vint (st.rng mod n)), ev ())
  in

  let entry = Program.entry_method p in
  let result =
    match Program.find_method p entry with
    | None ->
      Error
        { f_kind = Assertion "program has no main function";
          f_stmt = -1;
          f_loc = Loc.none;
          f_method = entry }
    | Some main -> (
      (* main takes either no parameters or one String[] parameter *)
      let args_value =
        let a = new_array st (Types.Tclass Types.string_class) (List.length config.args) in
        List.iteri (fun i s -> a.a_cells.(i) <- Vstr s) config.args;
        Varr a
      in
      let actuals =
        match main.Instr.m_params with
        | [] -> []
        | [ _ ] -> [ args_value ]
        | _ -> []
      in
      let arg_evs = List.map (fun _ -> -1) actuals in
      if List.length main.Instr.m_params > 1 then
        Error
          { f_kind = Assertion "main must take zero or one parameter";
            f_stmt = -1;
            f_loc = main.Instr.m_loc;
            f_method = entry }
      else
        try
          ignore
            (exec_method ~depth:0 main actuals arg_evs ~call_stmt:(-1)
               ~call_loc:Loc.none);
          Ok ()
        with
        | Fail f -> Error f
        | Dyntrace.Trace_overflow n ->
          (* The trace filled up mid-run.  Surface it like the other
             bounded-resource failures (step limit, call depth) instead
             of letting the raw exception escape: callers — the CLI
             included — must never see [Trace_overflow].  There is no
             single failing statement: the limit is a property of the
             whole run, so the stmt is -1 like the other pre-execution
             failures. *)
          Error
            { f_kind = Trace_limit_exceeded n;
              f_stmt = -1;
              f_loc = Loc.none;
              f_method = entry })
  in
  { output = List.rev st.out_lines; result; steps = st.steps }

(* Convenience: run and return the failure, if any. *)
let run_expecting_failure (config : config) (p : Program.t) : failure option =
  match (run config p).result with Ok () -> None | Error f -> Some f
