(* Dynamic dependence traces.

   Each executed instruction instance becomes an event carrying its static
   statement id and the event indices it depends on, split into value
   (producer) dependences and base-pointer dependences — the dynamic
   counterpart of the static classification in [Slice_ir.Instr].  The paper
   notes (sections 1 and 7) that dynamic thin slices fall out of dynamic
   data dependences directly; this module implements that. *)

type event = {
  ev_stmt : Slice_ir.Instr.stmt_id;
  ev_val_deps : int list;       (* event indices: value/producer flow *)
  ev_base_deps : int list;      (* event indices: base-pointer flow *)
}

type t = {
  mutable events : event array;
  mutable len : int;
  (* latest event index per static statement *)
  last_of_stmt : (Slice_ir.Instr.stmt_id, int) Hashtbl.t;
  max_events : int;
}

(* Payload: the number of events recorded when the budget was hit, so
   mega-program harnesses can report how far the trace got. *)
exception Trace_overflow of int

let create ?(max_events = 2_000_000) () : t =
  { events = Array.make 1024 { ev_stmt = -1; ev_val_deps = []; ev_base_deps = [] };
    len = 0;
    last_of_stmt = Hashtbl.create 256;
    max_events }

let length (t : t) = t.len

let event (t : t) (i : int) : event =
  if i < 0 || i >= t.len then invalid_arg "Dyntrace.event";
  t.events.(i)

let add (t : t) ~(stmt : Slice_ir.Instr.stmt_id) ~(val_deps : int list)
    ~(base_deps : int list) : int =
  if t.len >= t.max_events then raise (Trace_overflow t.len);
  if t.len = Array.length t.events then begin
    let bigger =
      Array.make (2 * Array.length t.events)
        { ev_stmt = -1; ev_val_deps = []; ev_base_deps = [] }
    in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  let idx = t.len in
  t.events.(idx) <- { ev_stmt = stmt; ev_val_deps = val_deps; ev_base_deps = base_deps };
  t.len <- idx + 1;
  Hashtbl.replace t.last_of_stmt stmt idx;
  idx

let last_event_of_stmt (t : t) (stmt : Slice_ir.Instr.stmt_id) : int option =
  Hashtbl.find_opt t.last_of_stmt stmt

(* Backward traversal from an event, following only the selected dependence
   kinds; returns the set of static statements touched. *)
let slice_from_event (t : t) ~(include_base : bool) (seed : int) :
    Slice_ir.Instr.stmt_id list =
  let seen_ev = Hashtbl.create 256 in
  let stmts = Hashtbl.create 64 in
  let stack = ref [ seed ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      if not (Hashtbl.mem seen_ev i) then begin
        Hashtbl.replace seen_ev i ();
        let e = event t i in
        Hashtbl.replace stmts e.ev_stmt ();
        stack := e.ev_val_deps @ !stack;
        if include_base then stack := e.ev_base_deps @ !stack
      end
  done;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) stmts [])

(* Dynamic thin slice for the most recent execution of [stmt]. *)
let dynamic_thin_slice (t : t) (stmt : Slice_ir.Instr.stmt_id) :
    Slice_ir.Instr.stmt_id list option =
  Option.map (slice_from_event t ~include_base:false) (last_event_of_stmt t stmt)

(* Dynamic data slice (thin slice plus base-pointer flow). *)
let dynamic_data_slice (t : t) (stmt : Slice_ir.Instr.stmt_id) :
    Slice_ir.Instr.stmt_id list option =
  Option.map (slice_from_event t ~include_base:true) (last_event_of_stmt t stmt)
