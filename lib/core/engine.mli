(** End-to-end pipeline: program -> points-to analysis -> SDG -> slicers.
    This is the entry point a tool embeds. *)

open Slice_ir
open Slice_pta

type analysis = {
  program : Program.t;
  pta : Andersen.result;
  sdg : Sdg.t;
  obj_sens : bool;
}

(** Run the points-to analysis (object-sensitive container cloning on by
    default, as in the paper's section 6.1) and build the dependence
    graph.  By default the graph is then frozen into its immutable CSR
    layout (see {!Sdg.freeze}); [freeze:false] keeps the mutable list
    adjacency — used by parity tests and the BENCH A/B baseline.

    [solver] selects the points-to solver: [`Bitset] (default) is the
    bitset / cycle-collapsing worklist solver; [`Reference] runs the
    original list/tree oracle ({!Andersen.Reference}) and lifts its
    result via {!Andersen.of_reference} — used by parity tests and the
    [pta_ab] benchmark. *)
val analyze :
  ?obj_sens:bool ->
  ?freeze:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  Program.t ->
  analysis

(** Parse, typecheck, lower and analyze a TJ source text. *)
val of_source :
  ?container_classes:string list ->
  ?obj_sens:bool ->
  ?freeze:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  file:string ->
  string ->
  analysis

(** Analyze several [(file, src)] units as one program (see
    {!Slice_front.Frontend.load_many_exn}): slices may span files, and
    every reported location keeps the file it came from. *)
val of_sources :
  ?container_classes:string list ->
  ?obj_sens:bool ->
  ?freeze:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  (string * string) list ->
  analysis

(** Narrow seed selection when a line holds several statements. *)
type seed_filter =
  | Any
  | Only_loads
  | Only_calls
  | Only_casts
  | Only_conditionals
  | Only_throws

val matches_filter : analysis -> seed_filter -> Sdg.node -> bool
val seeds_at_line : ?filter:seed_filter -> analysis -> int -> Sdg.node list

exception No_seed of int

val seeds_at_line_exn : ?filter:seed_filter -> analysis -> int -> Sdg.node list

(** Slice from a source line, reported as sorted line numbers. *)
val slice_from_line :
  ?filter:seed_filter -> analysis -> line:int -> Slicer.mode -> int list

(** Many slices over one graph: seeds are resolved per line, then a single
    batched walk reuses scratch buffers across all seeds (see
    {!Slicer.slice_batch}).  Returns, per input line in input order, the
    sorted distinct source line numbers of its slice (deduplicated across
    files — see {!Slicer.locs_to_line_numbers}).  [forward:true] slices
    forward (impact analysis).  Respects the analysis's [freeze] choice:
    the graph is NOT frozen here, so a [analyze ~freeze:false] baseline
    keeps running on the list adjacency.  Raises {!No_seed} for a line
    with no statements. *)
val slice_batch :
  ?filter:seed_filter ->
  ?forward:bool ->
  analysis ->
  lines:int list ->
  Slicer.mode ->
  (int * int list) list

(** {!slice_batch} sharded across [jobs] OCaml 5 domains.  Seeds are
    resolved sequentially in input order (so {!No_seed} behaviour is
    identical to the sequential batch), the graph is frozen (concurrent
    walkers require the immutable CSR arrays), and each worker domain
    slices a contiguous chunk with its own {!Slicer.create_scratch}
    handle and its own per-domain telemetry registry.  After
    [Domain.join], every worker's {!Slice_obs.snapshot} is merged back
    into the calling domain ({!Slice_obs.merge_snapshot}) — even when a
    worker raised — then the first worker error, if any, is re-raised.
    Results are in input order and node-for-node equal to the sequential
    batch for every [jobs].  [jobs <= 1] degrades to {!slice_batch}
    without spawning.  Recorded under ["engine.slice_batch_par"]. *)
val slice_batch_par :
  ?filter:seed_filter ->
  ?forward:bool ->
  ?jobs:int ->
  analysis ->
  lines:int list ->
  Slicer.mode ->
  (int * int list) list

(** The paper's BFS inspection simulation from a line seed. *)
val inspect_from_line :
  ?filter:seed_filter ->
  analysis ->
  line:int ->
  desired:int list ->
  Slicer.mode ->
  Inspect.report

(** Downcasts the pointer analysis cannot prove safe — the "tough casts"
    of the paper's section 6.3. *)
val tough_casts : analysis -> (Instr.method_qname * Instr.instr) list

(** Program statistics in the shape of the paper's Table 1, plus the
    process telemetry snapshot captured when the stats were taken. *)
type stats = {
  classes : int;
  methods : int;           (** reachable methods with bodies *)
  ir_statements : int;     (** the "bytecode statements" analogue *)
  call_graph_nodes : int;  (** method contexts *)
  sdg_statements : int;    (** scalar statements, heap params excluded *)
  sdg_nodes : int;         (** including context clones and formals *)
  abstract_objects : int;
  obs : Slice_obs.snapshot;
      (** counters, gauges, histograms and spans at capture time *)
}

val stats_of : analysis -> stats

(** Schema identifier emitted in the JSON export ("thinslice.stats/v1"). *)
val stats_schema_version : string

(** The Table-1 numbers alone, as a JSON object. *)
val program_stats_json : stats -> Slice_obs.Json.t

(** The "sdg.edge.<kind>" counters of a snapshot, as an object keyed by
    edge kind (the Figure 2/3 classification). *)
val edges_by_kind_json : Slice_obs.snapshot -> Slice_obs.Json.t

(** Full JSON export: [{"schema", "program", "sdg.edges_by_kind",
    "telemetry"}] — the payload behind [thinslice --stats-json] and the
    per-benchmark entries of BENCH_results.json. *)
val stats_to_json : stats -> Slice_obs.Json.t
