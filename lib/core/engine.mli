(** End-to-end pipeline: program -> points-to analysis -> SDG -> slicers.
    This is the entry point a tool embeds. *)

open Slice_ir
open Slice_pta

type analysis = {
  program : Program.t;
  pta : Andersen.result;
  sdg : Sdg.t;
  arena : Arena.t;
      (** the flat int-indexed lowering of the reachable IR that the SDG
          pass read (see {!Arena}); retained for its deterministic byte
          footprint and for arena-view consumers *)
  obj_sens : bool;
}

(** Run the points-to analysis (object-sensitive container cloning on by
    default, as in the paper's section 6.1) and build the dependence
    graph.  By default the graph is then frozen into its immutable CSR
    layout (see {!Sdg.freeze}); [freeze:false] keeps the mutable list
    adjacency — used by parity tests and the BENCH A/B baseline.

    [solver] selects the points-to solver: [`Bitset] (default) is the
    bitset / cycle-collapsing worklist solver; [`Reference] runs the
    original list/tree oracle ({!Andersen.Reference}) and lifts its
    result via {!Andersen.of_reference} — used by parity tests and the
    [pta_ab] benchmark. *)
val analyze :
  ?obj_sens:bool ->
  ?freeze:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  Program.t ->
  analysis

(** Parse, typecheck, lower and analyze a TJ source text. *)
val of_source :
  ?container_classes:string list ->
  ?obj_sens:bool ->
  ?freeze:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  file:string ->
  string ->
  analysis

(** Analyze several [(file, src)] units as one program (see
    {!Slice_front.Frontend.load_many_exn}): slices may span files, and
    every reported location keeps the file it came from. *)
val of_sources :
  ?container_classes:string list ->
  ?obj_sens:bool ->
  ?freeze:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  (string * string) list ->
  analysis

(** Narrow seed selection when a line holds several statements. *)
type seed_filter =
  | Any
  | Only_loads
  | Only_calls
  | Only_casts
  | Only_conditionals
  | Only_throws

val matches_filter : analysis -> seed_filter -> Sdg.node -> bool
val seeds_at_line : ?filter:seed_filter -> analysis -> int -> Sdg.node list

exception No_seed of int

val seeds_at_line_exn : ?filter:seed_filter -> analysis -> int -> Sdg.node list

(** Slice from a source line, reported as sorted line numbers. *)
val slice_from_line :
  ?filter:seed_filter -> analysis -> line:int -> Slicer.mode -> int list

(** Many slices over one graph: seeds are resolved per line, then a single
    batched walk reuses scratch buffers across all seeds (see
    {!Slicer.slice_batch}).  Returns, per input line in input order, the
    sorted distinct source line numbers of its slice (deduplicated across
    files — see {!Slicer.locs_to_line_numbers}).  [forward:true] slices
    forward (impact analysis).  Respects the analysis's [freeze] choice:
    the graph is NOT frozen here, so a [analyze ~freeze:false] baseline
    keeps running on the list adjacency.  Raises {!No_seed} for a line
    with no statements. *)
val slice_batch :
  ?filter:seed_filter ->
  ?forward:bool ->
  analysis ->
  lines:int list ->
  Slicer.mode ->
  (int * int list) list

(** {!slice_batch} sharded across [jobs] OCaml 5 domains.  Seeds are
    resolved sequentially in input order (so {!No_seed} behaviour is
    identical to the sequential batch), the graph is frozen (concurrent
    walkers require the immutable CSR arrays), and each worker domain
    slices a contiguous chunk with its own {!Slicer.create_scratch}
    handle and its own per-domain telemetry registry.  After
    [Domain.join], every worker's {!Slice_obs.snapshot} is merged back
    into the calling domain ({!Slice_obs.merge_snapshot}) — even when a
    worker raised — then the first worker error, if any, is re-raised.
    Results are in input order and node-for-node equal to the sequential
    batch for every [jobs].  [jobs <= 1] degrades to {!slice_batch}
    without spawning.  Recorded under ["engine.slice_batch_par"]. *)
val slice_batch_par :
  ?filter:seed_filter ->
  ?forward:bool ->
  ?jobs:int ->
  analysis ->
  lines:int list ->
  Slicer.mode ->
  (int * int list) list

(** The paper's BFS inspection simulation from a line seed. *)
val inspect_from_line :
  ?filter:seed_filter ->
  analysis ->
  line:int ->
  desired:int list ->
  Slicer.mode ->
  Inspect.report

(** {2 Provenance queries}

    Built on {!Slicer.witness}: answer "why is this statement in my
    slice?" with evidence instead of membership. *)

(** Schema tag of {!report_to_json} / {!witness_to_json} payloads. *)
val explain_schema_version : string

(** The data-only companion of a mode (drop control dependences, keep
    every flow edge): [Traditional_full] maps to [Traditional_data], the
    other modes are their own companion.  This is the boundary between a
    report's alias-explainer and control-explainer layers. *)
val data_submode : Slicer.mode -> Slicer.mode

(** [witness_from_line a ~seed_line ~line mode] slices from [seed_line]
    recording provenance, then returns the dependence path (seed first)
    by which the slice reached [line] — the target-line node with the
    smallest (BFS distance, node id) is explained, so the answer is the
    hop-shortest recorded path and deterministic.  [None] when [line]
    has nodes but none is a member; raises [No_seed] (carrying the
    offending line) when either line has no statements.  [jobs > 1] runs
    the walk in a worker domain — identical result, exercises the
    provenance scratch's domain safety. *)
val witness_from_line :
  ?filter:seed_filter ->
  ?jobs:int ->
  analysis ->
  seed_line:int ->
  line:int ->
  Slicer.mode ->
  Slicer.witness_step list option

(** The three layers of an explain report, innermost first: thin-slice
    members (the paper's producers), members added by base-pointer /
    index / call-closure flow, members reached only through control
    dependences. *)
type explain_layer = Producers | Alias_explainers | Control_explainers

val layer_to_string : explain_layer -> string

type report_line = {
  rl_loc : string * int;  (** (file, line) *)
  rl_rank : int;
      (** min provenance BFS distance over the line's member nodes — the
          paper's section 5 inspection rank *)
  rl_layer : explain_layer;
  rl_explains : (string * int) list;
      (** member lines this line's non-producer nodes DIRECTLY explain
          (via {!Expansion.base_defs} / [index_defs] / [call_actuals] /
          [explain_control]); sorted distinct.  Usually empty for
          producer lines, but a line hosting both a producer and an
          explainer node keeps its explanations *)
}

type slice_report = {
  sr_seed_line : int;
  sr_mode : Slicer.mode;
  sr_layer_sizes : int * int * int;
      (** (producer, alias-explainer, control-explainer) line counts *)
  sr_lines : report_line list;  (** sorted by (rank, file, line) *)
}

(** Layered explain report of the [mode] slice seeded at [line]:
    members partitioned producers / alias explainers / control
    explainers (layer boundaries are the thin slice and the
    {!data_submode} slice), ranked by provenance BFS distance.
    [jobs > 1] runs the underlying (up to three) walks in parallel
    worker domains; the report is identical by construction. *)
val slice_report :
  ?filter:seed_filter ->
  ?jobs:int ->
  analysis ->
  line:int ->
  Slicer.mode ->
  slice_report

(** [thinslice.explain/v1] encodings (see README "Explaining slices"). *)
val report_to_json : slice_report -> Slice_obs.Json.t

val witness_to_json :
  analysis ->
  seed_line:int ->
  line:int ->
  Slicer.mode ->
  Slicer.witness_step list ->
  Slice_obs.Json.t

(** Downcasts the pointer analysis cannot prove safe — the "tough casts"
    of the paper's section 6.3. *)
val tough_casts : analysis -> (Instr.method_qname * Instr.instr) list

(** Program statistics in the shape of the paper's Table 1, plus the
    process telemetry snapshot captured when the stats were taken. *)
type stats = {
  classes : int;
  methods : int;           (** reachable methods with bodies *)
  ir_statements : int;     (** the "bytecode statements" analogue *)
  call_graph_nodes : int;  (** method contexts *)
  sdg_statements : int;    (** scalar statements, heap params excluded *)
  sdg_nodes : int;         (** including context clones and formals *)
  abstract_objects : int;
  arena_bytes : int;
      (** {!Arena.bytes} of the flat IR — arithmetic over array lengths,
          so deterministic and safe in byte-compared output.  A Patched
          incremental update carries the load-time figure forward. *)
  obs : Slice_obs.snapshot;
      (** counters, gauges, histograms and spans at capture time *)
}

(** Statistics of an analysis.  [sdg_nodes] counts LIVE nodes — equal to
    {!Sdg.num_nodes} until an incremental patch retires some.  [?obs]
    substitutes the snapshot member ({!update} passes a per-graph edge
    census instead of the process-cumulative registry). *)
val stats_of : ?obs:Slice_obs.snapshot -> analysis -> stats

(** Schema identifier emitted in the JSON export ("thinslice.stats/v1"). *)
val stats_schema_version : string

(** The Table-1 numbers alone, as a JSON object. *)
val program_stats_json : stats -> Slice_obs.Json.t

(** The "sdg.edge.<kind>" counters of a snapshot, as an object keyed by
    edge kind (the Figure 2/3 classification). *)
val edges_by_kind_json : Slice_obs.snapshot -> Slice_obs.Json.t

(** Full JSON export: [{"schema", "program", "sdg.edges_by_kind",
    "telemetry"}] — the payload behind [thinslice --stats-json] and the
    per-benchmark entries of BENCH_results.json. *)
val stats_to_json : stats -> Slice_obs.Json.t

(** Per-kind edge census of a graph presented in snapshot shape (only
    ["sdg.edge.<kind>"] counters, everything else empty) — the [?obs]
    {!stats_of} wants for a patched graph, where the load-time scoped
    snapshot describes the pre-edit edges. *)
val edge_census_snapshot : Sdg.t -> Slice_obs.snapshot

(** {2 Canonical analysis dumps}

    {!Andersen.pts_dump_loc} / {!Andersen.call_graph_dump_loc} with
    every site rendered as its per-method body-order ordinal
    (["<method>#<ix>"]).  Raw statement ids diverge between a patched
    analysis and a fresh rebuild, and source locations collide on
    synthetic statements; the ordinal is the key both sides agree on —
    the fuzz oracle compares these dumps for byte equality. *)
val pts_dump_canonical : analysis -> (string * string list) list

val call_graph_dump_canonical : analysis -> (string * string list) list

(** {2 Resident-analysis handles and the unified query API}

    One code path for every driver: the serve daemon keeps handles
    resident in its program cache, the one-shot CLI builds one and
    throws it away, and both answer through {!run_query} /
    {!query_result_to_json} — serve-vs-CLI byte parity by
    construction. *)

type handle = {
  h_analysis : analysis;
  h_stats : stats;
      (** captured under {!Slice_obs.scoped} at load time: the snapshot
          covers exactly this handle's load pipeline, so per-program
          stats stay deterministic in a process that loads many
          programs *)
  h_sources : (string * string) list;
      (** the exact units this handle analyzed — what {!update} diffs
          a new version against *)
  h_container_classes : string list option;
  h_obj_sens : bool;
  h_solver : [ `Bitset | `Reference ];
}

(** Analyze [(file, src)] units into a resident handle.  The load runs
    inside {!Slice_obs.scoped} (merged back into the caller's registry),
    so [h_stats] equals what a fresh one-shot process would report. *)
val load :
  ?container_classes:string list ->
  ?obj_sens:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  (string * string) list ->
  handle

(** {2 Incremental update}

    [update h new_sources] re-analyzes an edited version of a handle's
    program, doing work proportional to the edit where possible.  The
    edit is classified by {!Slice_front.Delta.diff}; the returned
    {!update_path} records how far the pipeline re-ran. *)

(** Cheapest first:
    - [Noop]: byte-identical sources — the handle is returned as-is;
    - [Patched]: only method bodies changed AND their constraint
      summaries are unchanged — bodies re-lowered in place, points-to
      re-keyed ({!Andersen.rekey_sites}), frozen SDG patched
      ({!Sdg.patch}).  Dispatch-neutral method adds/removes (an
      unreachable method removed, or a method added under a name no
      old method bears) also land here: the solved analysis is still
      exact and only the statement table is rebuilt;
    - [Resolved_incremental]: some constraint summary moved, but the
      solved points-to result was repaired in place by
      delete-and-rederive over the affected cone
      ({!Andersen.resolve_delta}); arena and SDG rebuilt over the
      patched solution — frontend and the unaffected bulk of the
      solve are both skipped;
    - [Resolved_fresh]: summary moved and the incremental re-solve was
      unavailable (reference solver) or declined (affected cone too
      large): fresh points-to solve and SDG over the mutated program
      (the frontend work for unchanged methods is still skipped);
    - [Rebuilt]: structural edit, or fallback after any mid-incremental
      failure — full {!load} from the new sources under the handle's
      stored options.

    The ladder is monotone in correctness: every tier's handle answers
    queries identically to a fresh load of the new sources. *)
type update_path =
  | Noop
  | Patched
  | Resolved_incremental
  | Resolved_fresh
  | Rebuilt

val update_path_to_string : update_path -> string

type update_report = {
  up_path : update_path;
  up_relowered : int;  (** method bodies re-lowered (Rebuilt: all) *)
  up_segments_refrozen : int;
      (** SDG method-context segments whose adjacency rows moved *)
  up_segments_total : int;
  up_nodes_dead : int;
  up_nodes_new : int;
}

(** Apply an edit.  On the [Patched] and [Resolved_incremental] paths
    the returned handle SHARES state with the input handle (graph,
    points-to result and program are mutated in place), and on
    [Resolved_fresh] the shared program is mutated — after any
    non-[Noop], non-[Rebuilt] update, query only the RETURNED handle.
    Queries answered through it agree with a fresh load of
    [new_sources] — the property the fuzz oracle's edit battery
    enforces per tier.  Recorded under the ["engine.update"] span with
    a ["path"] arg and per-path ["engine.update.<path>"] counters
    (["resolved_incremental"] / ["resolved_fresh"] for the two
    resolved tiers). *)
val update : handle -> (string * string) list -> handle * update_report

(** One heap read/write pair of an expand query: the pair is connected
    by a producer-heap edge inside the thin slice, and the flows carry
    the common object(s) to each access's base pointer (see
    {!Expansion.explain_aliasing}). *)
type expand_flow = {
  ef_read : Sdg.node;
  ef_write : Sdg.node;
  ef_read_flow : Sdg.node list;
  ef_write_flow : Sdg.node list;
}

(** All such pairs for the thin slice seeded at [line], in discovery
    order, each explained.  Raises {!No_seed} like the other line
    queries. *)
val expand_at_line :
  ?filter:seed_filter -> analysis -> line:int -> expand_flow list

(** The one query type every driver dispatches on (the serve protocol's
    methods map onto it 1:1; [forward] distinguishes the forward
    method from slice). *)
type query =
  | Q_slice of { line : int; mode : Slicer.mode; forward : bool }
  | Q_chop of { line : int; sink_line : int; mode : Slicer.mode }
  | Q_expand of { line : int }
  | Q_explain of { seed_line : int; line : int; mode : Slicer.mode }
  | Q_report of { line : int; mode : Slicer.mode }
  | Q_stats

type query_result =
  | R_lines of int list  (** slice / forward / chop: sorted line numbers *)
  | R_expand of expand_flow list
  | R_witness of Slicer.witness_step list option
      (** [None]: the line is not a member — a successful answer in the
          serve protocol, exit 1 in the CLI *)
  | R_report of slice_report
  | R_stats of stats

(** Answer a query against a resident handle.  [jobs] is forwarded to
    the provenance queries ({!witness_from_line}, {!slice_report});
    results are identical for every [jobs].  Raises {!No_seed} when a
    referenced line has no statements. *)
val run_query : ?jobs:int -> handle -> query -> query_result

(** Schema tag of slice/forward/chop/expand result payloads
    ("thinslice.query/v1"; explain/report keep [thinslice.explain/v1],
    stats keeps [thinslice.stats/v1]). *)
val query_schema_version : string

(** Encode a result.  Must be called with the query that produced the
    result (the encodings echo the query); raises [Invalid_argument]
    on a mismatched pair.  Stats results encode program shape +
    per-program edge-kind counters WITHOUT the process-cumulative
    telemetry member of {!stats_to_json} — per-query walls belong to
    the serve response envelope. *)
val query_result_to_json : handle -> query -> query_result -> Slice_obs.Json.t
