(* The dependence-graph representation used by both slicers: a variant of
   the system dependence graph [11] in which

   - nodes are statements qualified by the points-to analysis context of
     their method (so container methods cloned by receiver object appear
     once per clone, as in WALA's CGNode-based SDG);
   - every dependence edge is classified, so that thin slicing can follow
     only producer edges (paper, section 3) while traditional slicing also
     follows base-pointer, index, and control edges;
   - heap dependences are direct store-to-load edges computed from the
     points-to result (the scalable context-insensitive representation of
     section 5.2).  The heap-parameter representation for the
     context-sensitive algorithm (section 5.3) lives in [Tabulation].

   Edges are stored backwards: [deps g n] lists the nodes n depends on,
   which is the direction slicing traverses. *)

open Slice_ir
open Slice_pta

type edge_kind =
  | Producer_local      (* SSA def-use, value position *)
  | Producer_heap       (* field/array/static store -> may-aliased load *)
  | Param_in            (* formal  -> actual argument definition *)
  | Return_value        (* call    -> return statement of callee *)
  | Base_pointer        (* def-use into a dereferenced base pointer *)
  | Index               (* def-use into an array index *)
  (* call statement -> its actual-in nodes.  Not value flow: a Weiser-style
     (executable) slice containing a call must also compute the call's
     arguments, even those that cannot affect the seed's value.  Thin
     slicing's relevance notion drops exactly this closure. *)
  | Call_actual
  | Control             (* control dependence *)

(* Telemetry: one counter per edge kind (the Figure 2/3 classification),
   node interning, heap-pair pruning effectiveness, and the CSR
   compaction phase. *)
let c_nodes = Slice_obs.counter "sdg.nodes"
let c_edges = Slice_obs.counter "sdg.edges"
let c_heap_considered = Slice_obs.counter "sdg.heap_pairs_considered"
let c_heap_emitted = Slice_obs.counter "sdg.heap_pairs_emitted"
let c_csr_nodes = Slice_obs.counter "sdg.csr_nodes"
let c_csr_edges = Slice_obs.counter "sdg.csr_edges"
let g_csr_bytes = Slice_obs.gauge "sdg.csr_bytes"

let is_producer = function
  | Producer_local | Producer_heap | Param_in | Return_value -> true
  | Base_pointer | Index | Call_actual | Control -> false

let edge_kind_to_string = function
  | Producer_local -> "producer-local"
  | Producer_heap -> "producer-heap"
  | Param_in -> "param-in"
  | Return_value -> "return-value"
  | Base_pointer -> "base-pointer"
  | Index -> "index"
  | Call_actual -> "call-actual"
  | Control -> "control"

let all_edge_kinds =
  [ Producer_local; Producer_heap; Param_in; Return_value; Base_pointer;
    Index; Call_actual; Control ]

(* Edge kinds as small int tags, for the packed CSR representation. *)
let edge_kind_tag = function
  | Producer_local -> 0
  | Producer_heap -> 1
  | Param_in -> 2
  | Return_value -> 3
  | Base_pointer -> 4
  | Index -> 5
  | Call_actual -> 6
  | Control -> 7

let edge_kind_of_tag_table =
  [| Producer_local; Producer_heap; Param_in; Return_value; Base_pointer;
     Index; Call_actual; Control |]

let edge_kind_of_tag (t : int) : edge_kind = edge_kind_of_tag_table.(t)

(* "sdg.edge.<kind>" counters, interned once. *)
let edge_counter : edge_kind -> Slice_obs.counter =
  let tbl =
    List.map
      (fun k -> (k, Slice_obs.counter ("sdg.edge." ^ edge_kind_to_string k)))
      all_edge_kinds
  in
  fun k -> List.assq k tbl

type node_desc =
  | Stmt of int * Instr.stmt_id          (* method context, statement *)
  | Formal of int * int                  (* method context, parameter index *)
  (* The i-th actual argument of a call statement.  Belongs to the call
     statement for display purposes, so that a call through which a value
     flows appears in the slice (like line 17 of the paper's Figure 1). *)
  | Actual_in of int * Instr.stmt_id * int

type node = int

(* The frozen (immutable) adjacency: compressed sparse rows.  For each
   direction, node [n]'s edges live at indices [off.(n) .. off.(n+1)-1]
   of the flat [dst]/[kind] arrays; [kind] holds [edge_kind_tag]s.  Edge
   order within a row matches the mutable list-array representation the
   graph was built with, so the compatibility shims below reproduce the
   exact pre-freeze adjacency lists. *)
type csr = {
  deps_off : int array;        (* length num_nodes + 1 *)
  deps_dst : int array;        (* length num backward edges *)
  deps_kind : int array;
  uses_off : int array;
  uses_dst : int array;
  uses_kind : int array;
}

(* Heap access index built during pass 1 and RETAINED on the graph: an
   incremental patch re-indexes only the changed methods' accesses and
   wires them against this, instead of re-scanning the program. *)
type heap_index = {
  field_writes : (int * string, (node * Instr.stmt_id) list ref) Hashtbl.t;
  field_reads : (int * string, (node * Instr.stmt_id) list ref) Hashtbl.t;
  static_writes : (Types.class_name * Types.field_name, node list ref) Hashtbl.t;
  static_reads : (Types.class_name * Types.field_name, node list ref) Hashtbl.t;
  len_writes : (int, node list ref) Hashtbl.t;   (* abstract array -> new[] *)
  len_reads : (int, node list ref) Hashtbl.t;
}

type t = {
  p : Program.t;
  pta : Andersen.result;
  mutable stmt_table : (Instr.stmt_id, Program.stmt_info) Hashtbl.t;
      (* rebuilt by [patch]: re-lowered bodies carry fresh statement ids *)
  mutable descs : node_desc array;
  mutable num_nodes : int;
  intern : (node_desc, node) Hashtbl.t;
  mutable deps : (node * edge_kind) list array;   (* backward adjacency *)
  mutable uses : (node * edge_kind) list array;   (* forward adjacency *)
  edge_seen : (node * node * edge_kind, unit) Hashtbl.t;
  mutable csr : csr option;    (* set by [freeze]; lists dropped then *)
  hx : heap_index;             (* retained for incremental patching *)
  include_control : bool;
  (* Incremental patch state.  A patched graph keeps its CSR for
     untouched rows and OVERLAYS the rows the patch rewrote; row lookup
     checks the overlay first (one extra branch, only when [patched]).
     Dead nodes (statements of re-lowered method bodies) keep their ids
     — rows emptied, descs retired from the intern — so alive node ids
     are stable across a patch and resident scratch/provenance buffers
     stay valid. *)
  mutable ov_deps : (int array * int array) option array;  (* (dst, kind tags) *)
  mutable ov_uses : (int array * int array) option array;
  mutable dead : bool array;
  mutable dead_count : int;
  mutable generation : int;    (* bumped per committed patch *)
  mutable patched : bool;
  mutable patching : bool;     (* intern re-opened during a patch session *)
}

let program (g : t) = g.p
let pta (g : t) = g.pta
let stmt_table (g : t) = g.stmt_table

let node_desc (g : t) (n : node) : node_desc = g.descs.(n)

let num_nodes (g : t) = g.num_nodes

let is_frozen (g : t) : bool = g.csr <> None

let frozen_error what =
  invalid_arg (Printf.sprintf "Sdg.%s: graph is frozen (immutable)" what)

let intern (g : t) (d : node_desc) : node =
  match Hashtbl.find_opt g.intern d with
  | Some n -> n
  | None ->
    if is_frozen g && not g.patching then frozen_error "intern";
    let n = g.num_nodes in
    if n = Array.length g.descs then begin
      let grow a default =
        let b = Array.make (2 * n) default in
        Array.blit a 0 b 0 n;
        b
      in
      g.descs <- grow g.descs (Formal (-1, -1));
      (* post-freeze the list arrays are [||]; only grow live state *)
      if Array.length g.deps > 0 then g.deps <- grow g.deps [];
      if Array.length g.uses > 0 then g.uses <- grow g.uses [];
      if Array.length g.ov_deps > 0 then begin
        g.ov_deps <- grow g.ov_deps None;
        g.ov_uses <- grow g.ov_uses None
      end;
      if Array.length g.dead > 0 then g.dead <- grow g.dead false
    end;
    g.descs.(n) <- d;
    g.num_nodes <- n + 1;
    Hashtbl.replace g.intern d n;
    Slice_obs.bump c_nodes;
    n

let find_node (g : t) (d : node_desc) : node option = Hashtbl.find_opt g.intern d

let add_edge (g : t) ~(from : node) ~(on : node) (kind : edge_kind) : unit =
  if from <> on && not (Hashtbl.mem g.edge_seen (from, on, kind)) then begin
    if is_frozen g then frozen_error "add_edge";
    Hashtbl.replace g.edge_seen (from, on, kind) ();
    Slice_obs.bump c_edges;
    Slice_obs.bump (edge_counter kind);
    g.deps.(from) <- (on, kind) :: g.deps.(from);
    g.uses.(on) <- (from, kind) :: g.uses.(on)
  end

(* ------------------------------------------------------------------ *)
(* Freeze: compact the list-array adjacency into CSR                   *)
(* ------------------------------------------------------------------ *)

(* One direction of adjacency, compacted.  Rows keep list order. *)
let compact_direction (n : int) (adj : (node * edge_kind) list array) :
    int array * int array * int array =
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + List.length adj.(i)
  done;
  let m = off.(n) in
  let dst = Array.make (max 1 m) 0 in
  let kind = Array.make (max 1 m) 0 in
  for i = 0 to n - 1 do
    let j = ref off.(i) in
    List.iter
      (fun (d, k) ->
        dst.(!j) <- d;
        kind.(!j) <- edge_kind_tag k;
        incr j)
      adj.(i)
  done;
  (off, dst, kind)

(* Compact the mutable adjacency into the immutable CSR layout and drop
   the list arrays + dedup table (the graph no longer accepts edges).
   Idempotent; recorded under the "sdg.freeze" span. *)
let freeze (g : t) : unit =
  if not (is_frozen g) then
    Slice_obs.span "sdg.freeze" (fun () ->
        let n = g.num_nodes in
        let deps_off, deps_dst, deps_kind = compact_direction n g.deps in
        let uses_off, uses_dst, uses_kind = compact_direction n g.uses in
        g.csr <-
          Some { deps_off; deps_dst; deps_kind; uses_off; uses_dst; uses_kind };
        (* release the allocation-heavy mutable representation *)
        g.deps <- [||];
        g.uses <- [||];
        Hashtbl.reset g.edge_seen;
        Slice_obs.add c_csr_nodes n;
        Slice_obs.add c_csr_edges deps_off.(n);
        (* two offset arrays + two (dst, kind) pairs, 8 bytes per word *)
        Slice_obs.max_gauge g_csr_bytes
          (float_of_int (8 * (2 * (n + 1) + 2 * (deps_off.(n) + uses_off.(n))))))

(* Iteration over the frozen view when available, over the lists before
   [freeze].  These are the hot-path accessors: no allocation per edge.
   On a patched graph, rows the patch rewrote (and rows of nodes interned
   after the freeze) live in the overlay and are checked first. *)
let deps_iter (g : t) (n : node) (f : node -> edge_kind -> unit) : unit =
  match if g.patched then g.ov_deps.(n) else None with
  | Some (dst, kind) ->
    for i = 0 to Array.length dst - 1 do
      f (Array.unsafe_get dst i)
        (edge_kind_of_tag (Array.unsafe_get kind i))
    done
  | None -> (
    match g.csr with
    | None -> List.iter (fun (d, k) -> f d k) g.deps.(n)
    | Some c ->
      for i = c.deps_off.(n) to c.deps_off.(n + 1) - 1 do
        f (Array.unsafe_get c.deps_dst i)
          (edge_kind_of_tag (Array.unsafe_get c.deps_kind i))
      done)

let uses_iter (g : t) (n : node) (f : node -> edge_kind -> unit) : unit =
  match if g.patched then g.ov_uses.(n) else None with
  | Some (dst, kind) ->
    for i = 0 to Array.length dst - 1 do
      f (Array.unsafe_get dst i)
        (edge_kind_of_tag (Array.unsafe_get kind i))
    done
  | None -> (
    match g.csr with
    | None -> List.iter (fun (d, k) -> f d k) g.uses.(n)
    | Some c ->
      for i = c.uses_off.(n) to c.uses_off.(n + 1) - 1 do
        f (Array.unsafe_get c.uses_dst i)
          (edge_kind_of_tag (Array.unsafe_get c.uses_kind i))
      done)

let num_edges (g : t) : int =
  match g.csr with
  | Some c when not g.patched -> c.deps_off.(g.num_nodes)
  | Some _ ->
    let total = ref 0 in
    for n = 0 to g.num_nodes - 1 do
      deps_iter g n (fun _ _ -> incr total)
    done;
    !total
  | None ->
    let total = ref 0 in
    for i = 0 to g.num_nodes - 1 do
      total := !total + List.length g.deps.(i)
    done;
    !total

(* Compatibility shims: materialise a row as a list.  Identical contents
   and order before and after [freeze]; prefer the [_iter] forms in new
   code (these allocate a fresh list per call on a frozen graph). *)
let row_to_list off dst kind n =
  let rec go i acc =
    if i < off.(n) then acc
    else go (i - 1) ((dst.(i), edge_kind_of_tag kind.(i)) :: acc)
  in
  go (off.(n + 1) - 1) []

let ov_row_to_list (dst, kind) =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((dst.(i), edge_kind_of_tag kind.(i)) :: acc)
  in
  go (Array.length dst - 1) []

let deps (g : t) (n : node) : (node * edge_kind) list =
  match if g.patched then g.ov_deps.(n) else None with
  | Some row -> ov_row_to_list row
  | None -> (
    match g.csr with
    | None -> g.deps.(n)
    | Some c -> row_to_list c.deps_off c.deps_dst c.deps_kind n)

let uses (g : t) (n : node) : (node * edge_kind) list =
  match if g.patched then g.ov_uses.(n) else None with
  | Some row -> ov_row_to_list row
  | None -> (
    match g.csr with
    | None -> g.uses.(n)
    | Some c -> row_to_list c.uses_off c.uses_dst c.uses_kind n)

(* The source location of a node ([Loc.none] for formals). *)
let node_loc (g : t) (n : node) : Loc.t =
  match g.descs.(n) with
  | Formal _ -> Loc.none
  | Stmt (_, s) | Actual_in (_, s, _) -> (
    match Hashtbl.find_opt g.stmt_table s with
    | Some si -> Program.stmt_loc si
    | None -> Loc.none)

let node_stmt (g : t) (n : node) : Instr.stmt_id option =
  match g.descs.(n) with
  | Stmt (_, s) | Actual_in (_, s, _) -> Some s
  | Formal _ -> None

(* Statements a user would read: real instructions with a source location,
   excluding phis and compiler-internal statements. *)
let node_countable (g : t) (n : node) : bool =
  match g.descs.(n) with
  | Formal _ -> false
  | Actual_in (_, s, _) -> (
    match Hashtbl.find_opt g.stmt_table s with
    | None -> false
    | Some si -> not (Loc.is_none (Program.stmt_loc si)))
  | Stmt (_, s) -> (
    match Hashtbl.find_opt g.stmt_table s with
    | None -> false
    | Some si -> (
      (not (Loc.is_none (Program.stmt_loc si)))
      &&
      match si.Program.s_site with
      | Program.Site_instr { Instr.i_kind = Instr.Phi _; _ } -> false
      | Program.Site_instr _ -> true
      | Program.Site_term { Instr.t_kind = Instr.Goto _; _ } -> false
      | Program.Site_term _ -> true))

let pp_node (g : t) ppf (n : node) : unit =
  match g.descs.(n) with
  | Formal (mc, i) ->
    let mq, _ = Andersen.mctx_info g.pta mc in
    Format.fprintf ppf "formal %d of %a" i Instr.pp_method_qname mq
  | Actual_in (_, s, i) ->
    Format.fprintf ppf "actual %d of %s" i (Pretty.stmt_to_string g.p g.stmt_table s)
  | Stmt (mc, s) ->
    let _, ctx = Andersen.mctx_info g.pta mc in
    Format.fprintf ppf "%s %a"
      (Pretty.stmt_to_string g.p g.stmt_table s)
      (Context.pp_ctx (Andersen.contexts g.pta))
      ctx

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let push tbl key v =
  let cell =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace tbl key r;
      r
  in
  cell := v :: !cell

(* The per-method pass bodies are shared between [build] (every reachable
   method context) and [patch] (only re-lowered ones); [emit] is
   [add_edge] during a build and the session emitter during a patch. *)

(* Pass 1 body: intraprocedural edges + heap access indexing into [hx]
   (the graph's own index during a build, a fresh one during a patch so
   the new accesses are known for targeted re-wiring). *)
let intra_pass (g : t) (hx : heap_index)
    ~(emit : from:node -> on:node -> edge_kind -> unit) (mc : int)
    (m : Instr.meth) : unit =
  let p = g.p and pta = g.pta in
  if Instr.has_body m then begin
    (* SSA def map: variable -> defining statement *)
    let def_stmt : (Instr.var, Instr.stmt_id) Hashtbl.t = Hashtbl.create 64 in
    Instr.iter_instrs m (fun _ i ->
        match Instr.def_of_instr i with
        | Some v -> Hashtbl.replace def_stmt v i.Instr.i_id
        | None -> ());
    let param_index = Hashtbl.create 8 in
    List.iteri (fun idx v -> Hashtbl.replace param_index v idx) m.Instr.m_params;
    (* the node a use of [v] depends on *)
    let def_target (v : Instr.var) : node option =
      match Hashtbl.find_opt def_stmt v with
      | Some s -> Some (intern g (Stmt (mc, s)))
      | None -> (
        match Hashtbl.find_opt param_index v with
        | Some idx -> Some (intern g (Formal (mc, idx)))
        | None -> None)
    in
    let use_edge (from : node) (v : Instr.var) (kind : edge_kind) : unit =
      match def_target v with
      | Some dep -> emit ~from ~on:dep kind
      | None -> ()
    in
    Instr.iter_instrs m (fun _ i ->
        let n = intern g (Stmt (mc, i.Instr.i_id)) in
        (match i.Instr.i_kind with
        | Instr.Call { args; kind; _ } ->
          (* Argument uses reach callees through formal nodes; only
             intrinsic callees take their arguments directly. *)
          let intr = Andersen.intrinsic_targets pta ~mctx:mc ~stmt:i.Instr.i_id in
          let body_callees = Andersen.call_targets pta ~mctx:mc ~stmt:i.Instr.i_id in
          if intr <> [] then
            List.iter (fun a -> use_edge n a Producer_local) args;
          (* return-value edges *)
          List.iter
            (fun cmc ->
              let cmq, _ = Andersen.mctx_info pta cmc in
              let cm = Program.find_method_exn p cmq in
              Instr.iter_terms cm (fun _ t ->
                  match t.Instr.t_kind with
                  | Instr.Return (Some _) ->
                    emit ~from:n
                      ~on:(intern g (Stmt (cmc, t.Instr.t_id)))
                      Return_value
                  | Instr.Return None | Instr.Goto _ | Instr.If _
                  | Instr.Throw _ -> ()))
            body_callees;
          ignore kind
        | _ ->
          List.iter
            (fun (v, cls) ->
              let kind =
                match cls with
                | Instr.Use_value -> Producer_local
                | Instr.Use_base -> Base_pointer
                | Instr.Use_index -> Index
              in
              use_edge n v kind)
            (Instr.classified_uses i));
        (* heap indexing *)
        match i.Instr.i_kind with
        | Instr.Store (x, f, _) ->
          Andersen.pts_iter_var pta ~mctx:mc x (fun o ->
              push hx.field_writes (o, f) (n, i.Instr.i_id))
        | Instr.Load (_, y, f) ->
          Andersen.pts_iter_var pta ~mctx:mc y (fun o ->
              push hx.field_reads (o, f) (n, i.Instr.i_id))
        | Instr.Array_store (a, _, _) ->
          Andersen.pts_iter_var pta ~mctx:mc a (fun o ->
              push hx.field_writes (o, Andersen.elem_field) (n, i.Instr.i_id))
        | Instr.Array_load (_, a, _) ->
          Andersen.pts_iter_var pta ~mctx:mc a (fun o ->
              push hx.field_reads (o, Andersen.elem_field) (n, i.Instr.i_id))
        | Instr.New_array (x, _, _) ->
          Andersen.pts_iter_var pta ~mctx:mc x (fun o ->
              push hx.len_writes o n)
        | Instr.Array_length (_, a) ->
          Andersen.pts_iter_var pta ~mctx:mc a (fun o ->
              push hx.len_reads o n)
        | Instr.Static_store (c, f, _) -> push hx.static_writes (c, f) n
        | Instr.Static_load (_, c, f) -> push hx.static_reads (c, f) n
        | Instr.Const _ | Instr.Move _ | Instr.Binop _ | Instr.Unop _
        | Instr.New _ | Instr.Call _ | Instr.Cast _ | Instr.Instance_of _
        | Instr.Phi _ | Instr.Nop -> ());
    Instr.iter_terms m (fun _ t ->
        let n = intern g (Stmt (mc, t.Instr.t_id)) in
        List.iter (fun v -> use_edge n v Producer_local) (Instr.uses_of_term t))
  end

(* Pass 1 body over the arena view — the memory-diet hot path for mega
   programs.  Emission order is IDENTICAL to [intra_pass]: the arena's
   instruction/terminator columns are laid out in [Instr.iter_instrs] /
   [iter_terms] order, uses in [classified_uses] order, so the two
   bodies produce the same edges in the same sequence (pinned by the
   arena/record equivalence tests).  The wins are mechanical: the SSA
   def map and param index become int scratch arrays instead of
   hashtables, use lists are walked as packed CSR spans without
   allocating, and heap-access dispatch reads a tag column instead of
   matching on record constructors. *)
let intra_pass_arena (g : t) (hx : heap_index) (ar : Arena.t)
    ~(emit : from:node -> on:node -> edge_kind -> unit) (mc : int) (am : int) :
    unit =
  let pta = g.pta in
  let nvars = Arena.num_vars ar am in
  let var_def = Array.make (max 1 nvars) (-1) in
  let var_param = Array.make (max 1 nvars) (-1) in
  let lo, hi = Arena.instr_span ar am in
  for ix = lo to hi - 1 do
    let d = Arena.instr_def ar ix in
    if d >= 0 then var_def.(d) <- Arena.instr_stmt ar ix
  done;
  for i = 0 to Arena.num_params ar am - 1 do
    var_param.(Arena.param_var ar am i) <- i
  done;
  let def_target (v : Instr.var) : node option =
    if v < 0 || v >= nvars then None
    else
      let s = var_def.(v) in
      if s >= 0 then Some (intern g (Stmt (mc, s)))
      else
        let idx = var_param.(v) in
        if idx >= 0 then Some (intern g (Formal (mc, idx))) else None
  in
  let use_edge (from : node) (v : Instr.var) (kind : edge_kind) : unit =
    match def_target v with
    | Some dep -> emit ~from ~on:dep kind
    | None -> ()
  in
  for ix = lo to hi - 1 do
    let s = Arena.instr_stmt ar ix in
    let n = intern g (Stmt (mc, s)) in
    let op = Arena.instr_op ar ix in
    (match op with
    | Arena.Op_call ->
      let intr = Andersen.intrinsic_targets pta ~mctx:mc ~stmt:s in
      let body_callees = Andersen.call_targets pta ~mctx:mc ~stmt:s in
      if intr <> [] then
        Arena.args_iter ar ix (fun a -> use_edge n a Producer_local);
      List.iter
        (fun cmc ->
          let cmq, _ = Andersen.mctx_info pta cmc in
          match Arena.method_id ar cmq with
          | None -> ()
          | Some cam ->
            let tlo, thi = Arena.term_span ar cam in
            for tx = tlo to thi - 1 do
              if Arena.term_is_value_return ar tx then
                emit ~from:n
                  ~on:(intern g (Stmt (cmc, Arena.term_stmt ar tx)))
                  Return_value
            done)
        body_callees
    | _ ->
      Arena.uses_iter ar ix (fun v tag ->
          let kind =
            match tag with
            | 0 -> Producer_local
            | 1 -> Base_pointer
            | _ -> Index
          in
          use_edge n v kind));
    match op with
    | Arena.Op_store ->
      Andersen.pts_iter_var pta ~mctx:mc (Arena.instr_base ar ix) (fun o ->
          push hx.field_writes (o, Arena.instr_sym ar ix) (n, s))
    | Arena.Op_load ->
      Andersen.pts_iter_var pta ~mctx:mc (Arena.instr_base ar ix) (fun o ->
          push hx.field_reads (o, Arena.instr_sym ar ix) (n, s))
    | Arena.Op_array_store ->
      Andersen.pts_iter_var pta ~mctx:mc (Arena.instr_base ar ix) (fun o ->
          push hx.field_writes (o, Andersen.elem_field) (n, s))
    | Arena.Op_array_load ->
      Andersen.pts_iter_var pta ~mctx:mc (Arena.instr_base ar ix) (fun o ->
          push hx.field_reads (o, Andersen.elem_field) (n, s))
    | Arena.Op_new_array ->
      Andersen.pts_iter_var pta ~mctx:mc (Arena.instr_base ar ix) (fun o ->
          push hx.len_writes o n)
    | Arena.Op_array_length ->
      Andersen.pts_iter_var pta ~mctx:mc (Arena.instr_base ar ix) (fun o ->
          push hx.len_reads o n)
    | Arena.Op_static_store ->
      push hx.static_writes (Arena.instr_sym ar ix, Arena.instr_sym2 ar ix) n
    | Arena.Op_static_load ->
      push hx.static_reads (Arena.instr_sym ar ix, Arena.instr_sym2 ar ix) n
    | Arena.Op_call | Arena.Op_other -> ()
  done;
  let tlo, thi = Arena.term_span ar am in
  for tx = tlo to thi - 1 do
    let n = intern g (Stmt (mc, Arena.term_stmt ar tx)) in
    Arena.term_uses_iter ar tx (fun v -> use_edge n v Producer_local)
  done

(* Pass 2 body: formal -> actual edges (parameter passing), for one
   method as the CALLER.  The callee side (the formal node) is signature
   stable, which is what lets a patch keep formal nodes alive. *)
let params_pass (g : t) ~(emit : from:node -> on:node -> edge_kind -> unit)
    (mc : int) (m : Instr.meth) : unit =
  let pta = g.pta in
  if Instr.has_body m then begin
    let def_stmt = Hashtbl.create 64 in
    let def_instr = Hashtbl.create 64 in
    Instr.iter_instrs m (fun _ j ->
        match Instr.def_of_instr j with
        | Some v ->
          Hashtbl.replace def_stmt v j.Instr.i_id;
          Hashtbl.replace def_instr v j
        | None -> ());
    let param_index = Hashtbl.create 8 in
    List.iteri (fun idx v -> Hashtbl.replace param_index v idx) m.Instr.m_params;
    let actual_node (v : Instr.var) : node option =
      match Hashtbl.find_opt def_stmt v with
      | Some s -> Some (intern g (Stmt (mc, s)))
      | None -> (
        match Hashtbl.find_opt param_index v with
        | Some idx -> Some (intern g (Formal (mc, idx)))
        | None -> None)
    in
    Instr.iter_instrs m (fun _ i ->
        match i.Instr.i_kind with
        | Instr.Call { args; _ } ->
          (* A kept allocation needs its constructor in a Weiser-style
             slice: tie the New to the <init> invocation. *)
          (match (i.Instr.i_kind, args) with
          | Instr.Call { kind = Instr.Special _; _ }, recv :: _ -> (
            match Hashtbl.find_opt def_instr recv with
            | Some { Instr.i_kind = Instr.New _; i_id; _ } ->
              emit
                ~from:(intern g (Stmt (mc, i_id)))
                ~on:(intern g (Stmt (mc, i.Instr.i_id)))
                Call_actual
            | Some _ | None -> ())
          | _ -> ());
          List.iter
            (fun cmc ->
              List.iteri
                (fun idx a ->
                  match actual_node a with
                  | Some an ->
                    let actual =
                      intern g (Actual_in (mc, i.Instr.i_id, idx))
                    in
                    emit
                      ~from:(intern g (Formal (cmc, idx)))
                      ~on:actual Param_in;
                    emit ~from:actual ~on:an Producer_local;
                    (* statement closure for traditional slicing *)
                    emit
                      ~from:(intern g (Stmt (mc, i.Instr.i_id)))
                      ~on:actual Call_actual
                  | None -> ())
                args)
            (Andersen.call_targets pta ~mctx:mc ~stmt:i.Instr.i_id)
        | _ -> ())
  end

(* Pass 4 body: control dependence edges for one method.
   [entry_callers] are the call-site nodes invoking it (entry-governed
   statements are control-dependent on them). *)
let control_pass (g : t) ~(emit : from:node -> on:node -> edge_kind -> unit)
    ~(entry_callers : node list) (mc : int) (m : Instr.meth) : unit =
  if Instr.has_body m then begin
    let cfg = Cfg.build m in
    let pdom = Dominance.compute (Dominance.backward_graph cfg) in
    let pdf = Dominance.dominance_frontiers pdom in
    let blocks = Instr.blocks_exn m in
    let nblocks = Array.length blocks in
    for bl = 0 to nblocks - 1 do
      let governors =
        List.filter (fun b -> b < nblocks) pdf.(bl)
        |> List.map (fun b -> intern g (Stmt (mc, blocks.(b).Instr.b_term.Instr.t_id)))
      in
      let wire n =
        if governors = [] then
          (* governed by method entry: control-dependent on call sites *)
          List.iter (fun c -> emit ~from:n ~on:c Control) entry_callers
        else List.iter (fun c -> emit ~from:n ~on:c Control) governors
      in
      List.iter
        (fun i -> wire (intern g (Stmt (mc, i.Instr.i_id))))
        blocks.(bl).Instr.b_instrs;
      wire (intern g (Stmt (mc, blocks.(bl).Instr.b_term.Instr.t_id)))
    done
  end

(* Default shard count for the heap-wiring pass: parallel only when the
   runtime reports real cores (a 1-core container stays sequential). *)
let auto_heap_jobs () =
  let r = Domain.recommended_domain_count () in
  if r > 1 then min r 4 else 1

let build ?(include_control = true) ?arena ?heap_jobs (p : Program.t)
    (pta : Andersen.result) : t =
  let hx =
    { field_writes = Hashtbl.create 256;
      field_reads = Hashtbl.create 256;
      static_writes = Hashtbl.create 32;
      static_reads = Hashtbl.create 32;
      len_writes = Hashtbl.create 32;
      len_reads = Hashtbl.create 32 }
  in
  let g =
    { p;
      pta;
      stmt_table = Program.build_stmt_table p;
      descs = Array.make 1024 (Formal (-1, -1));
      num_nodes = 0;
      intern = Hashtbl.create 1024;
      deps = Array.make 1024 [];
      uses = Array.make 1024 [];
      edge_seen = Hashtbl.create 4096;
      csr = None;
      hx;
      include_control;
      ov_deps = [||];
      ov_uses = [||];
      dead = [||];
      dead_count = 0;
      generation = 0;
      patched = false;
      patching = false }
  in
  let emit ~from ~on kind = add_edge g ~from ~on kind in
  let heap_jobs =
    match heap_jobs with Some j -> max 1 j | None -> auto_heap_jobs ()
  in
  let mcs = Andersen.method_contexts pta in
  (* Pass 1: intraprocedural edges + heap access indexing — over the
     arena view when the caller lowered one (same edges, same order; the
     arena body just walks packed columns instead of records). *)
  Slice_obs.span "sdg.intra" (fun () ->
      match arena with
      | Some ar ->
        List.iter
          (fun (mc, mq, _) ->
            match Arena.method_id ar mq with
            | Some am -> intra_pass_arena g hx ar ~emit mc am
            | None -> ())
          mcs
      | None ->
        List.iter
          (fun (mc, mq, _) ->
            intra_pass g hx ~emit mc (Program.find_method_exn p mq))
          mcs);
  (* Pass 2: formal -> actual edges (parameter passing). *)
  Slice_obs.span "sdg.params" (fun () ->
  List.iter
    (fun (mc, mq, _) -> params_pass g ~emit mc (Program.find_method_exn p mq))
    mcs);
  (* Pass 3: heap dependence edges (store -> load, direct).  Candidate
     (read, write) pairs are deduplicated through a bitset row per
     write-node — the same (rn, wn) pair reappears once per shared
     (object, field) key across contexts — and the surviving pairs are
     emitted in one sweep via [Bits.iter].  The considered bump counts
     every candidate; the emitted bump shares one guard with the actual
     emit (distinct pair, rn <> wn), so emitted == distinct heap edges
     exactly — the "considered vs emitted" ratio of the
     context-insensitive representation. *)
  Slice_obs.span "sdg.heap" (fun () ->
  (* Matched (reads x writes) key groups flattened to plain node arrays:
     the shardable work-list.  Sharding is by the |reads| x |writes|
     candidate-pair cost; every shard dedups into its own bitset rows,
     the parent merges rows by union after [Domain.join] (sets, so merge
     order is irrelevant), and emission is sorted — ascending write
     node, ascending read node — so the final adjacency is byte-for-byte
     identical at every shard count, jobs 1 included. *)
  let items : (node array * node array) list ref = ref [] in
  let add_item rs ws =
    if Array.length rs > 0 && Array.length ws > 0 then
      items := (rs, ws) :: !items
  in
  Hashtbl.iter
    (fun key rlist ->
      match Hashtbl.find_opt hx.field_writes key with
      | None -> ()
      | Some wlist ->
        add_item
          (Array.of_list (List.map fst !rlist))
          (Array.of_list (List.map fst !wlist)))
    hx.field_reads;
  Hashtbl.iter
    (fun key rlist ->
      match Hashtbl.find_opt hx.static_writes key with
      | None -> ()
      | Some wlist ->
        add_item (Array.of_list !rlist) (Array.of_list !wlist))
    hx.static_reads;
  Hashtbl.iter
    (fun o rlist ->
      match Hashtbl.find_opt hx.len_writes o with
      | None -> ()
      | Some wlist ->
        add_item (Array.of_list !rlist) (Array.of_list !wlist))
    hx.len_reads;
  let items = Array.of_list !items in
  let cost (rs, ws) = Array.length rs * Array.length ws in
  let total_cost = Array.fold_left (fun a it -> a + cost it) 0 items in
  let consider_into rows rn wn =
    Slice_obs.bump c_heap_considered;
    if rn <> wn then begin
      let row =
        match Hashtbl.find_opt rows wn with
        | Some b -> b
        | None ->
          let b = Slice_util.Bits.create ~capacity:64 () in
          Hashtbl.replace rows wn b;
          b
      in
      ignore (Slice_util.Bits.add row rn)
    end
  in
  let run_items rows its =
    List.iter
      (fun (rs, ws) ->
        Array.iter
          (fun rn -> Array.iter (fun wn -> consider_into rows rn wn) ws)
          rs)
      its
  in
  let rows =
    if heap_jobs > 1 && Array.length items > 1 && total_cost >= 4096 then begin
      (* longest-processing-time greedy sharding *)
      let order = Array.init (Array.length items) Fun.id in
      Array.sort
        (fun a b ->
          match compare (cost items.(b)) (cost items.(a)) with
          | 0 -> compare a b
          | c -> c)
        order;
      let j = min heap_jobs (Array.length items) in
      let bins = Array.make j [] and load = Array.make j 0 in
      Array.iter
        (fun ix ->
          let best = ref 0 in
          for k = 1 to j - 1 do
            if load.(k) < load.(!best) then best := k
          done;
          bins.(!best) <- items.(ix) :: bins.(!best);
          load.(!best) <- load.(!best) + cost items.(ix))
        order;
      let workers =
        Array.map
          (fun its ->
            Domain.spawn (fun () ->
                let rows : (node, Slice_util.Bits.t) Hashtbl.t =
                  Hashtbl.create 256
                in
                run_items rows its;
                (rows, Slice_obs.snapshot ())))
          bins
      in
      let master : (node, Slice_util.Bits.t) Hashtbl.t = Hashtbl.create 256 in
      Array.iter
        (fun w ->
          let rows, snap = Domain.join w in
          Slice_obs.merge_snapshot snap;
          Hashtbl.iter
            (fun wn row ->
              match Hashtbl.find_opt master wn with
              | Some dst -> ignore (Slice_util.Bits.union_into ~src:row ~dst)
              | None -> Hashtbl.replace master wn row)
            rows)
        workers;
      master
    end
    else begin
      let rows : (node, Slice_util.Bits.t) Hashtbl.t = Hashtbl.create 256 in
      run_items rows (Array.to_list items);
      rows
    end
  in
  let wns = List.sort compare (Hashtbl.fold (fun wn _ a -> wn :: a) rows []) in
  List.iter
    (fun wn ->
      Slice_util.Bits.iter
        (fun rn ->
          Slice_obs.bump c_heap_emitted;
          add_edge g ~from:rn ~on:wn Producer_heap)
        (Hashtbl.find rows wn))
    wns);
  (* Pass 4: control dependence edges. *)
  if include_control then Slice_obs.span "sdg.control" (fun () -> begin
    (* reverse call graph: callee mctx -> caller call-site nodes *)
    let callers : (int, node list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (mc, mq, _) ->
        let m = Program.find_method_exn p mq in
        if Instr.has_body m then
          Instr.iter_instrs m (fun _ i ->
              match i.Instr.i_kind with
              | Instr.Call _ ->
                List.iter
                  (fun cmc ->
                    push callers cmc (intern g (Stmt (mc, i.Instr.i_id))))
                  (Andersen.call_targets pta ~mctx:mc ~stmt:i.Instr.i_id)
              | _ -> ()))
      mcs;
    List.iter
      (fun (mc, mq, _) ->
        let entry_callers =
          match Hashtbl.find_opt callers mc with Some r -> !r | None -> []
        in
        control_pass g ~emit ~entry_callers mc (Program.find_method_exn p mq))
      mcs
  end);
  g

(* ------------------------------------------------------------------ *)
(* Incremental patching                                                *)
(* ------------------------------------------------------------------ *)

let generation (g : t) = g.generation

let is_dead (g : t) (n : node) : bool =
  Array.length g.dead > 0 && g.dead.(n)

let num_live_nodes (g : t) = g.num_nodes - g.dead_count

(* Edge census from the graph itself (dead rows are empty, so a patched
   graph counts only live edges) — stats for a patched handle can't use
   the process-wide build counters. *)
let edge_kind_counts (g : t) : (edge_kind * int) list =
  let counts = Array.make (Array.length edge_kind_of_tag_table) 0 in
  for n = 0 to g.num_nodes - 1 do
    deps_iter g n (fun _ k ->
        let t = edge_kind_tag k in
        counts.(t) <- counts.(t) + 1)
  done;
  List.map (fun k -> (k, counts.(edge_kind_tag k))) all_edge_kinds

type patch_stats = {
  ps_nodes_dead : int;
  ps_nodes_new : int;
  ps_rows_touched : int;
  ps_segments_refrozen : int;
  ps_segments_total : int;
}

(* Patch a frozen graph onto re-lowered method bodies, in place.

   Precondition (established by [Engine]): the changed methods'
   constraint summaries are unchanged, the program's method records
   already hold the NEW bodies, and the points-to result has been
   re-keyed onto the new statement ids ([Andersen.rekey_sites]) — so
   every pointer/call-graph fact is already expressed in new ids and
   only the dependence rows need repair.

   The patch retires the changed methods' [Stmt]/[Actual_in] nodes
   (their statement ids no longer exist), KEEPS their [Formal] nodes
   (signatures are stable under summary equality, so caller-side
   [Param_in] edges survive untouched), reruns the shared per-method
   passes over the new bodies, wires new heap accesses against the
   retained index, and repairs the two cross-method edge classes whose
   ALIVE source lost a dead target: [Return_value] (re-enumerated from
   the new return terminators) and [Control] (entry-governed callee
   statements onto the changed caller's call sites, moved via
   [site_remap]).  [Param_in] and [Producer_heap] losses need no
   explicit repair — the re-run passes re-emit them.

   Touched rows are committed as overlays over the immutable CSR; node
   ids never move, so resident scratch buffers stay valid. *)
let patch (g : t) ~(changed : Instr.method_qname list)
    ~(site_remap : Instr.stmt_id -> Instr.stmt_id option) : patch_stats =
  if not (is_frozen g) then invalid_arg "Sdg.patch: graph must be frozen";
  Slice_obs.span "sdg.patch" (fun () ->
  (* First patch on this graph: bring the overlay state up to capacity
     (intern keeps it in step from then on). *)
  let cap = Array.length g.descs in
  if Array.length g.dead < cap then begin
    let grow a mk default =
      let b = mk cap default in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    g.ov_deps <- grow g.ov_deps Array.make None;
    g.ov_uses <- grow g.ov_uses Array.make None;
    g.dead <- grow g.dead Array.make false
  end;
  let old_num = g.num_nodes in
  let frozen_num =
    match g.csr with Some c -> Array.length c.deps_off - 1 | None -> 0
  in
  (* Changed method contexts (every context clone of a changed method). *)
  let cm : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun mq ->
      List.iter
        (fun mc -> Hashtbl.replace cm mc ())
        (Andersen.mctxs_of_method g.pta mq))
    changed;
  (* Retire the changed methods' statement-bound nodes. *)
  let newly_dead = ref [] in
  for n = 0 to old_num - 1 do
    if not g.dead.(n) then
      match g.descs.(n) with
      | (Stmt (mc, _) | Actual_in (mc, _, _)) when Hashtbl.mem cm mc ->
        g.dead.(n) <- true;
        g.dead_count <- g.dead_count + 1;
        Hashtbl.remove g.intern g.descs.(n);
        newly_dead := n :: !newly_dead
      | Stmt _ | Actual_in _ | Formal _ -> ()
  done;
  (* Session rows: rows under repair, materialised copy-on-write from
     the overlay-or-CSR.  [seen] dedups edges; a row's existing edges
     seed it on first materialisation. *)
  let sess_deps : (node, (node * edge_kind) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let sess_uses : (node, (node * edge_kind) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let seen : (node * node * edge_kind, unit) Hashtbl.t = Hashtbl.create 1024 in
  let raw_row ov csr_row n =
    if n >= old_num then []
    else
      match ov.(n) with
      | Some row -> ov_row_to_list row
      | None -> if n < frozen_num then csr_row n else []
  in
  let raw_deps n =
    raw_row g.ov_deps
      (fun n ->
        match g.csr with
        | Some c -> row_to_list c.deps_off c.deps_dst c.deps_kind n
        | None -> [])
      n
  in
  let raw_uses n =
    raw_row g.ov_uses
      (fun n ->
        match g.csr with
        | Some c -> row_to_list c.uses_off c.uses_dst c.uses_kind n
        | None -> [])
      n
  in
  let mat_deps n =
    match Hashtbl.find_opt sess_deps n with
    | Some r -> r
    | None ->
      let row = raw_deps n in
      List.iter (fun (on, k) -> Hashtbl.replace seen (n, on, k) ()) row;
      let r = ref row in
      Hashtbl.replace sess_deps n r;
      r
  in
  let mat_uses n =
    match Hashtbl.find_opt sess_uses n with
    | Some r -> r
    | None ->
      let r = ref (raw_uses n) in
      Hashtbl.replace sess_uses n r;
      r
  in
  let emit ~from ~on kind =
    if from <> on then begin
      (* materialise (and seed [seen] from) the source row FIRST *)
      let rd = mat_deps from in
      if not (Hashtbl.mem seen (from, on, kind)) then begin
        Hashtbl.replace seen (from, on, kind) ();
        let ru = mat_uses on in
        rd := (on, kind) :: !rd;
        ru := (from, kind) :: !ru;
        Slice_obs.bump c_edges;
        Slice_obs.bump (edge_counter kind)
      end
    end
  in
  (* Disconnect dead nodes from alive rows, recording each alive source
     that lost a dependence (the loss classes needing repair). *)
  let losses : (node * edge_kind * node_desc) list ref = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun (on, k) ->
          if not g.dead.(on) then begin
            let ru = mat_uses on in
            ru := List.filter (fun (f, k') -> not (f = d && k' = k)) !ru
          end)
        (raw_deps d);
      List.iter
        (fun (from, k) ->
          if not g.dead.(from) then begin
            let rd = mat_deps from in
            rd := List.filter (fun (on', k') -> not (on' = d && k' = k)) !rd;
            losses := (from, k, g.descs.(d)) :: !losses
          end)
        (raw_uses d))
    !newly_dead;
  (* Purge dead accesses from the retained heap index. *)
  let purge_pairs tbl =
    Hashtbl.iter (fun _ r -> r := List.filter (fun (n, _) -> not g.dead.(n)) !r) tbl
  in
  let purge_nodes tbl =
    Hashtbl.iter (fun _ r -> r := List.filter (fun n -> not g.dead.(n)) !r) tbl
  in
  purge_pairs g.hx.field_writes;
  purge_pairs g.hx.field_reads;
  purge_nodes g.hx.static_writes;
  purge_nodes g.hx.static_reads;
  purge_nodes g.hx.len_writes;
  purge_nodes g.hx.len_reads;
  let changed_mcs =
    Hashtbl.fold
      (fun mc () acc ->
        let mq, _ = Andersen.mctx_info g.pta mc in
        (mc, Program.find_method_exn g.p mq) :: acc)
      cm []
  in
  g.patching <- true;
  (* Pass 1 over the new bodies, indexing their heap accesses apart. *)
  let hx_new =
    { field_writes = Hashtbl.create 32;
      field_reads = Hashtbl.create 32;
      static_writes = Hashtbl.create 8;
      static_reads = Hashtbl.create 8;
      len_writes = Hashtbl.create 8;
      len_reads = Hashtbl.create 8 }
  in
  List.iter (fun (mc, m) -> intra_pass g hx_new ~emit mc m) changed_mcs;
  (* Pass 2: the changed methods as callers. *)
  List.iter (fun (mc, m) -> params_pass g ~emit mc m) changed_mcs;
  (* Pass 3: merge the new accesses into the retained index, then wire
     new reads x all writes and all reads x new writes (the new x new
     corner lands in both sweeps; the bitset rows dedup it). *)
  let merge_pairs src dst = Hashtbl.iter (fun k r -> List.iter (push dst k) !r) src in
  merge_pairs hx_new.field_writes g.hx.field_writes;
  merge_pairs hx_new.field_reads g.hx.field_reads;
  merge_pairs hx_new.static_writes g.hx.static_writes;
  merge_pairs hx_new.static_reads g.hx.static_reads;
  merge_pairs hx_new.len_writes g.hx.len_writes;
  merge_pairs hx_new.len_reads g.hx.len_reads;
  let rows : (node, Slice_util.Bits.t) Hashtbl.t = Hashtbl.create 64 in
  let consider rn wn =
    Slice_obs.bump c_heap_considered;
    if rn <> wn then begin
      let row =
        match Hashtbl.find_opt rows wn with
        | Some b -> b
        | None ->
          let b = Slice_util.Bits.create ~capacity:64 () in
          Hashtbl.replace rows wn b;
          b
      in
      ignore (Slice_util.Bits.add row rn)
    end
  in
  let sweep_pairs news alls ~read_side =
    Hashtbl.iter
      (fun key nlist ->
        match Hashtbl.find_opt alls key with
        | None -> ()
        | Some olist ->
          List.iter
            (fun (nn, _) ->
              List.iter
                (fun (on, _) ->
                  if read_side then consider nn on else consider on nn)
                !olist)
            !nlist)
      news
  in
  sweep_pairs hx_new.field_reads g.hx.field_writes ~read_side:true;
  sweep_pairs hx_new.field_writes g.hx.field_reads ~read_side:false;
  let sweep_nodes news alls ~read_side =
    Hashtbl.iter
      (fun key nlist ->
        match Hashtbl.find_opt alls key with
        | None -> ()
        | Some olist ->
          List.iter
            (fun nn ->
              List.iter
                (fun on -> if read_side then consider nn on else consider on nn)
                !olist)
            !nlist)
      news
  in
  sweep_nodes hx_new.static_reads g.hx.static_writes ~read_side:true;
  sweep_nodes hx_new.static_writes g.hx.static_reads ~read_side:false;
  sweep_nodes hx_new.len_reads g.hx.len_writes ~read_side:true;
  sweep_nodes hx_new.len_writes g.hx.len_reads ~read_side:false;
  Hashtbl.iter
    (fun wn row ->
      Slice_util.Bits.iter
        (fun rn ->
          Slice_obs.bump c_heap_emitted;
          emit ~from:rn ~on:wn Producer_heap)
        row)
    rows;
  (* Pass 4: control dependence inside the new bodies.  Entry callers
     come from the solved call graph (already keyed on new ids). *)
  if g.include_control then begin
    let callers : (int, node list ref) Hashtbl.t = Hashtbl.create 16 in
    Andersen.iter_call_sites g.pta (fun ~caller ~stmt ~callees ->
        List.iter
          (fun cmc ->
            if Hashtbl.mem cm cmc then
              push callers cmc (intern g (Stmt (caller, stmt))))
          callees);
    List.iter
      (fun (mc, m) ->
        let entry_callers =
          match Hashtbl.find_opt callers mc with Some r -> !r | None -> []
        in
        control_pass g ~emit ~entry_callers mc m)
      changed_mcs
  end;
  (* Repair the cross-method losses the re-run passes don't cover. *)
  let rv_done : (node * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (from, k, dead_desc) ->
      match (k, dead_desc) with
      | Return_value, Stmt (cmc, _) ->
        if not (Hashtbl.mem rv_done (from, cmc)) then begin
          Hashtbl.replace rv_done (from, cmc) ();
          let cmq, _ = Andersen.mctx_info g.pta cmc in
          let callee = Program.find_method_exn g.p cmq in
          if Instr.has_body callee then
            Instr.iter_terms callee (fun _ t ->
                match t.Instr.t_kind with
                | Instr.Return (Some _) ->
                  emit ~from
                    ~on:(intern g (Stmt (cmc, t.Instr.t_id)))
                    Return_value
                | Instr.Return None | Instr.Goto _ | Instr.If _
                | Instr.Throw _ -> ())
        end
      | Control, Stmt (cmc, s) -> (
        (* entry-governed callee statement onto a moved call site *)
        match site_remap s with
        | Some s' -> emit ~from ~on:(intern g (Stmt (cmc, s'))) Control
        | None -> ())
      | _ -> ())
    !losses;
  g.patching <- false;
  (* Commit: session rows become overlays; dead rows empty; new nodes
     with no edges get explicit empty rows (they are past the CSR). *)
  let rows_touched : (node, unit) Hashtbl.t = Hashtbl.create 256 in
  let to_arrays row =
    let l = !row in
    let len = List.length l in
    let dst = Array.make len 0 in
    let kind = Array.make len 0 in
    List.iteri
      (fun i (d, k) ->
        dst.(i) <- d;
        kind.(i) <- edge_kind_tag k)
      l;
    (dst, kind)
  in
  Hashtbl.iter
    (fun n row ->
      g.ov_deps.(n) <- Some (to_arrays row);
      Hashtbl.replace rows_touched n ())
    sess_deps;
  Hashtbl.iter
    (fun n row ->
      g.ov_uses.(n) <- Some (to_arrays row);
      Hashtbl.replace rows_touched n ())
    sess_uses;
  for n = old_num to g.num_nodes - 1 do
    if g.ov_deps.(n) = None then g.ov_deps.(n) <- Some ([||], [||]);
    if g.ov_uses.(n) = None then g.ov_uses.(n) <- Some ([||], [||])
  done;
  List.iter
    (fun d ->
      g.ov_deps.(d) <- Some ([||], [||]);
      g.ov_uses.(d) <- Some ([||], [||]))
    !newly_dead;
  g.stmt_table <- Program.build_stmt_table g.p;
  g.generation <- g.generation + 1;
  g.patched <- true;
  (* Segments = method contexts; refrozen = contexts whose rows moved. *)
  let seg_touched : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter (fun mc () -> Hashtbl.replace seg_touched mc ()) cm;
  Hashtbl.iter
    (fun n () ->
      if not g.dead.(n) then
        match g.descs.(n) with
        | Stmt (mc, _) | Actual_in (mc, _, _) | Formal (mc, _) ->
          Hashtbl.replace seg_touched mc ())
    rows_touched;
  let seg_total = List.length (Andersen.method_contexts g.pta) in
  { ps_nodes_dead = List.length !newly_dead;
    ps_nodes_new = g.num_nodes - old_num;
    ps_rows_touched = Hashtbl.length rows_touched;
    ps_segments_refrozen = Hashtbl.length seg_touched;
    ps_segments_total = max seg_total (Hashtbl.length seg_touched) })

(* ------------------------------------------------------------------ *)
(* Lookups used by drivers                                             *)
(* ------------------------------------------------------------------ *)

(* All statement nodes whose source line matches.  Dead nodes of a
   patched graph skip naturally (their retired statement ids are absent
   from the rebuilt statement table, so [node_loc] is none), but check
   explicitly anyway. *)
let nodes_at_line (g : t) ~(file : string option) ~(line : int) : node list =
  let out = ref [] in
  for n = 0 to g.num_nodes - 1 do
    if not (is_dead g n) then begin
      let loc = node_loc g n in
      if
        (not (Loc.is_none loc))
        && loc.Loc.line = line
        && (match file with None -> true | Some f -> String.equal f loc.Loc.file)
      then out := n :: !out
    end
  done;
  List.rev !out

(* Number of scalar statements: distinct statement ids that appear as nodes
   (context clones counted once), matching Table 1's "SDG Statements". *)
let num_scalar_statements (g : t) : int =
  let seen = Hashtbl.create 256 in
  for n = 0 to g.num_nodes - 1 do
    if not (is_dead g n) then
      match g.descs.(n) with
      | Stmt (_, s) -> Hashtbl.replace seen s ()
      | Formal _ | Actual_in _ -> ()
  done;
  Hashtbl.length seen

(* DOT export for documentation and debugging.  [witness] is a dependence
   path as (node, arrival kind) steps, seed first; its nodes and exactly
   the hop edges (predecessor -> step, with the step's arrival kind) are
   highlighted so the path stands out of the full graph. *)
let to_dot ?(witness : (node * edge_kind option) list = []) (g : t) : string =
  let wit_nodes = Hashtbl.create 16 in
  let wit_edges = Hashtbl.create 16 in
  let rec mark = function
    | [] -> ()
    | (n, _) :: rest ->
      Hashtbl.replace wit_nodes n ();
      (match rest with
      | (m, Some k) :: _ -> Hashtbl.replace wit_edges (n, m, k) ()
      | _ -> ());
      mark rest
  in
  mark witness;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph sdg {\n  node [shape=box,fontname=monospace];\n";
  for n = 0 to g.num_nodes - 1 do
    if not (is_dead g n) then begin
      let hl =
        if Hashtbl.mem wit_nodes n then ",color=red,penwidth=2.0" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=%S%s];\n" n
           (Format.asprintf "%a" (pp_node g) n)
           hl)
    end
  done;
  for n = 0 to g.num_nodes - 1 do
    deps_iter g n (fun dep kind ->
        let style =
          match kind with
          | Producer_local | Producer_heap | Param_in | Return_value -> "solid"
          | Base_pointer | Index | Call_actual -> "dashed"
          | Control -> "dotted"
        in
        let hl =
          if Hashtbl.mem wit_edges (n, dep, kind) then
            ",color=red,penwidth=2.0"
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=%s,label=\"%s\"%s];\n" n dep
             style
             (edge_kind_to_string kind)
             hl))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
