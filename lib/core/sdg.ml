(* The dependence-graph representation used by both slicers: a variant of
   the system dependence graph [11] in which

   - nodes are statements qualified by the points-to analysis context of
     their method (so container methods cloned by receiver object appear
     once per clone, as in WALA's CGNode-based SDG);
   - every dependence edge is classified, so that thin slicing can follow
     only producer edges (paper, section 3) while traditional slicing also
     follows base-pointer, index, and control edges;
   - heap dependences are direct store-to-load edges computed from the
     points-to result (the scalable context-insensitive representation of
     section 5.2).  The heap-parameter representation for the
     context-sensitive algorithm (section 5.3) lives in [Tabulation].

   Edges are stored backwards: [deps g n] lists the nodes n depends on,
   which is the direction slicing traverses. *)

open Slice_ir
open Slice_pta

type edge_kind =
  | Producer_local      (* SSA def-use, value position *)
  | Producer_heap       (* field/array/static store -> may-aliased load *)
  | Param_in            (* formal  -> actual argument definition *)
  | Return_value        (* call    -> return statement of callee *)
  | Base_pointer        (* def-use into a dereferenced base pointer *)
  | Index               (* def-use into an array index *)
  (* call statement -> its actual-in nodes.  Not value flow: a Weiser-style
     (executable) slice containing a call must also compute the call's
     arguments, even those that cannot affect the seed's value.  Thin
     slicing's relevance notion drops exactly this closure. *)
  | Call_actual
  | Control             (* control dependence *)

(* Telemetry: one counter per edge kind (the Figure 2/3 classification),
   node interning, heap-pair pruning effectiveness, and the CSR
   compaction phase. *)
let c_nodes = Slice_obs.counter "sdg.nodes"
let c_edges = Slice_obs.counter "sdg.edges"
let c_heap_considered = Slice_obs.counter "sdg.heap_pairs_considered"
let c_heap_emitted = Slice_obs.counter "sdg.heap_pairs_emitted"
let c_csr_nodes = Slice_obs.counter "sdg.csr_nodes"
let c_csr_edges = Slice_obs.counter "sdg.csr_edges"
let g_csr_bytes = Slice_obs.gauge "sdg.csr_bytes"

let is_producer = function
  | Producer_local | Producer_heap | Param_in | Return_value -> true
  | Base_pointer | Index | Call_actual | Control -> false

let edge_kind_to_string = function
  | Producer_local -> "producer-local"
  | Producer_heap -> "producer-heap"
  | Param_in -> "param-in"
  | Return_value -> "return-value"
  | Base_pointer -> "base-pointer"
  | Index -> "index"
  | Call_actual -> "call-actual"
  | Control -> "control"

let all_edge_kinds =
  [ Producer_local; Producer_heap; Param_in; Return_value; Base_pointer;
    Index; Call_actual; Control ]

(* Edge kinds as small int tags, for the packed CSR representation. *)
let edge_kind_tag = function
  | Producer_local -> 0
  | Producer_heap -> 1
  | Param_in -> 2
  | Return_value -> 3
  | Base_pointer -> 4
  | Index -> 5
  | Call_actual -> 6
  | Control -> 7

let edge_kind_of_tag_table =
  [| Producer_local; Producer_heap; Param_in; Return_value; Base_pointer;
     Index; Call_actual; Control |]

let edge_kind_of_tag (t : int) : edge_kind = edge_kind_of_tag_table.(t)

(* "sdg.edge.<kind>" counters, interned once. *)
let edge_counter : edge_kind -> Slice_obs.counter =
  let tbl =
    List.map
      (fun k -> (k, Slice_obs.counter ("sdg.edge." ^ edge_kind_to_string k)))
      all_edge_kinds
  in
  fun k -> List.assq k tbl

type node_desc =
  | Stmt of int * Instr.stmt_id          (* method context, statement *)
  | Formal of int * int                  (* method context, parameter index *)
  (* The i-th actual argument of a call statement.  Belongs to the call
     statement for display purposes, so that a call through which a value
     flows appears in the slice (like line 17 of the paper's Figure 1). *)
  | Actual_in of int * Instr.stmt_id * int

type node = int

(* The frozen (immutable) adjacency: compressed sparse rows.  For each
   direction, node [n]'s edges live at indices [off.(n) .. off.(n+1)-1]
   of the flat [dst]/[kind] arrays; [kind] holds [edge_kind_tag]s.  Edge
   order within a row matches the mutable list-array representation the
   graph was built with, so the compatibility shims below reproduce the
   exact pre-freeze adjacency lists. *)
type csr = {
  deps_off : int array;        (* length num_nodes + 1 *)
  deps_dst : int array;        (* length num backward edges *)
  deps_kind : int array;
  uses_off : int array;
  uses_dst : int array;
  uses_kind : int array;
}

type t = {
  p : Program.t;
  pta : Andersen.result;
  stmt_table : (Instr.stmt_id, Program.stmt_info) Hashtbl.t;
  mutable descs : node_desc array;
  mutable num_nodes : int;
  intern : (node_desc, node) Hashtbl.t;
  mutable deps : (node * edge_kind) list array;   (* backward adjacency *)
  mutable uses : (node * edge_kind) list array;   (* forward adjacency *)
  edge_seen : (node * node * edge_kind, unit) Hashtbl.t;
  mutable csr : csr option;    (* set by [freeze]; lists dropped then *)
}

let program (g : t) = g.p
let pta (g : t) = g.pta
let stmt_table (g : t) = g.stmt_table

let node_desc (g : t) (n : node) : node_desc = g.descs.(n)

let num_nodes (g : t) = g.num_nodes

let is_frozen (g : t) : bool = g.csr <> None

let frozen_error what =
  invalid_arg (Printf.sprintf "Sdg.%s: graph is frozen (immutable)" what)

let intern (g : t) (d : node_desc) : node =
  match Hashtbl.find_opt g.intern d with
  | Some n -> n
  | None ->
    if is_frozen g then frozen_error "intern";
    let n = g.num_nodes in
    if n = Array.length g.descs then begin
      let grow a default =
        let b = Array.make (2 * n) default in
        Array.blit a 0 b 0 n;
        b
      in
      g.descs <- grow g.descs (Formal (-1, -1));
      g.deps <- grow g.deps [];
      g.uses <- grow g.uses []
    end;
    g.descs.(n) <- d;
    g.num_nodes <- n + 1;
    Hashtbl.replace g.intern d n;
    Slice_obs.bump c_nodes;
    n

let find_node (g : t) (d : node_desc) : node option = Hashtbl.find_opt g.intern d

let add_edge (g : t) ~(from : node) ~(on : node) (kind : edge_kind) : unit =
  if from <> on && not (Hashtbl.mem g.edge_seen (from, on, kind)) then begin
    if is_frozen g then frozen_error "add_edge";
    Hashtbl.replace g.edge_seen (from, on, kind) ();
    Slice_obs.bump c_edges;
    Slice_obs.bump (edge_counter kind);
    g.deps.(from) <- (on, kind) :: g.deps.(from);
    g.uses.(on) <- (from, kind) :: g.uses.(on)
  end

(* ------------------------------------------------------------------ *)
(* Freeze: compact the list-array adjacency into CSR                   *)
(* ------------------------------------------------------------------ *)

(* One direction of adjacency, compacted.  Rows keep list order. *)
let compact_direction (n : int) (adj : (node * edge_kind) list array) :
    int array * int array * int array =
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + List.length adj.(i)
  done;
  let m = off.(n) in
  let dst = Array.make (max 1 m) 0 in
  let kind = Array.make (max 1 m) 0 in
  for i = 0 to n - 1 do
    let j = ref off.(i) in
    List.iter
      (fun (d, k) ->
        dst.(!j) <- d;
        kind.(!j) <- edge_kind_tag k;
        incr j)
      adj.(i)
  done;
  (off, dst, kind)

(* Compact the mutable adjacency into the immutable CSR layout and drop
   the list arrays + dedup table (the graph no longer accepts edges).
   Idempotent; recorded under the "sdg.freeze" span. *)
let freeze (g : t) : unit =
  if not (is_frozen g) then
    Slice_obs.span "sdg.freeze" (fun () ->
        let n = g.num_nodes in
        let deps_off, deps_dst, deps_kind = compact_direction n g.deps in
        let uses_off, uses_dst, uses_kind = compact_direction n g.uses in
        g.csr <-
          Some { deps_off; deps_dst; deps_kind; uses_off; uses_dst; uses_kind };
        (* release the allocation-heavy mutable representation *)
        g.deps <- [||];
        g.uses <- [||];
        Hashtbl.reset g.edge_seen;
        Slice_obs.add c_csr_nodes n;
        Slice_obs.add c_csr_edges deps_off.(n);
        (* two offset arrays + two (dst, kind) pairs, 8 bytes per word *)
        Slice_obs.max_gauge g_csr_bytes
          (float_of_int (8 * (2 * (n + 1) + 2 * (deps_off.(n) + uses_off.(n))))))

let num_edges (g : t) : int =
  match g.csr with
  | Some c -> c.deps_off.(g.num_nodes)
  | None ->
    let total = ref 0 in
    for i = 0 to g.num_nodes - 1 do
      total := !total + List.length g.deps.(i)
    done;
    !total

(* Iteration over the frozen view when available, over the lists before
   [freeze].  These are the hot-path accessors: no allocation per edge. *)
let deps_iter (g : t) (n : node) (f : node -> edge_kind -> unit) : unit =
  match g.csr with
  | None -> List.iter (fun (d, k) -> f d k) g.deps.(n)
  | Some c ->
    for i = c.deps_off.(n) to c.deps_off.(n + 1) - 1 do
      f (Array.unsafe_get c.deps_dst i)
        (edge_kind_of_tag (Array.unsafe_get c.deps_kind i))
    done

let uses_iter (g : t) (n : node) (f : node -> edge_kind -> unit) : unit =
  match g.csr with
  | None -> List.iter (fun (d, k) -> f d k) g.uses.(n)
  | Some c ->
    for i = c.uses_off.(n) to c.uses_off.(n + 1) - 1 do
      f (Array.unsafe_get c.uses_dst i)
        (edge_kind_of_tag (Array.unsafe_get c.uses_kind i))
    done

(* Compatibility shims: materialise a row as a list.  Identical contents
   and order before and after [freeze]; prefer the [_iter] forms in new
   code (these allocate a fresh list per call on a frozen graph). *)
let row_to_list off dst kind n =
  let rec go i acc =
    if i < off.(n) then acc
    else go (i - 1) ((dst.(i), edge_kind_of_tag kind.(i)) :: acc)
  in
  go (off.(n + 1) - 1) []

let deps (g : t) (n : node) : (node * edge_kind) list =
  match g.csr with
  | None -> g.deps.(n)
  | Some c -> row_to_list c.deps_off c.deps_dst c.deps_kind n

let uses (g : t) (n : node) : (node * edge_kind) list =
  match g.csr with
  | None -> g.uses.(n)
  | Some c -> row_to_list c.uses_off c.uses_dst c.uses_kind n

(* The source location of a node ([Loc.none] for formals). *)
let node_loc (g : t) (n : node) : Loc.t =
  match g.descs.(n) with
  | Formal _ -> Loc.none
  | Stmt (_, s) | Actual_in (_, s, _) -> (
    match Hashtbl.find_opt g.stmt_table s with
    | Some si -> Program.stmt_loc si
    | None -> Loc.none)

let node_stmt (g : t) (n : node) : Instr.stmt_id option =
  match g.descs.(n) with
  | Stmt (_, s) | Actual_in (_, s, _) -> Some s
  | Formal _ -> None

(* Statements a user would read: real instructions with a source location,
   excluding phis and compiler-internal statements. *)
let node_countable (g : t) (n : node) : bool =
  match g.descs.(n) with
  | Formal _ -> false
  | Actual_in (_, s, _) -> (
    match Hashtbl.find_opt g.stmt_table s with
    | None -> false
    | Some si -> not (Loc.is_none (Program.stmt_loc si)))
  | Stmt (_, s) -> (
    match Hashtbl.find_opt g.stmt_table s with
    | None -> false
    | Some si -> (
      (not (Loc.is_none (Program.stmt_loc si)))
      &&
      match si.Program.s_site with
      | Program.Site_instr { Instr.i_kind = Instr.Phi _; _ } -> false
      | Program.Site_instr _ -> true
      | Program.Site_term { Instr.t_kind = Instr.Goto _; _ } -> false
      | Program.Site_term _ -> true))

let pp_node (g : t) ppf (n : node) : unit =
  match g.descs.(n) with
  | Formal (mc, i) ->
    let mq, _ = Andersen.mctx_info g.pta mc in
    Format.fprintf ppf "formal %d of %a" i Instr.pp_method_qname mq
  | Actual_in (_, s, i) ->
    Format.fprintf ppf "actual %d of %s" i (Pretty.stmt_to_string g.p g.stmt_table s)
  | Stmt (mc, s) ->
    let _, ctx = Andersen.mctx_info g.pta mc in
    Format.fprintf ppf "%s %a"
      (Pretty.stmt_to_string g.p g.stmt_table s)
      (Context.pp_ctx (Andersen.contexts g.pta))
      ctx

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

type heap_index = {
  field_writes : (int * string, (node * Instr.stmt_id) list ref) Hashtbl.t;
  field_reads : (int * string, (node * Instr.stmt_id) list ref) Hashtbl.t;
  static_writes : (Types.class_name * Types.field_name, node list ref) Hashtbl.t;
  static_reads : (Types.class_name * Types.field_name, node list ref) Hashtbl.t;
  len_writes : (int, node list ref) Hashtbl.t;   (* abstract array -> new[] *)
  len_reads : (int, node list ref) Hashtbl.t;
}

let push tbl key v =
  let cell =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace tbl key r;
      r
  in
  cell := v :: !cell

let build ?(include_control = true) (p : Program.t) (pta : Andersen.result) : t =
  let g =
    { p;
      pta;
      stmt_table = Program.build_stmt_table p;
      descs = Array.make 1024 (Formal (-1, -1));
      num_nodes = 0;
      intern = Hashtbl.create 1024;
      deps = Array.make 1024 [];
      uses = Array.make 1024 [];
      edge_seen = Hashtbl.create 4096;
      csr = None }
  in
  let hx =
    { field_writes = Hashtbl.create 256;
      field_reads = Hashtbl.create 256;
      static_writes = Hashtbl.create 32;
      static_reads = Hashtbl.create 32;
      len_writes = Hashtbl.create 32;
      len_reads = Hashtbl.create 32 }
  in
  let mcs = Andersen.method_contexts pta in
  (* Pass 1: intraprocedural edges + heap access indexing. *)
  Slice_obs.span "sdg.intra" (fun () ->
  List.iter
    (fun (mc, mq, _) ->
      let m = Program.find_method_exn p mq in
      if Instr.has_body m then begin
        (* SSA def map: variable -> defining statement *)
        let def_stmt : (Instr.var, Instr.stmt_id) Hashtbl.t = Hashtbl.create 64 in
        Instr.iter_instrs m (fun _ i ->
            match Instr.def_of_instr i with
            | Some v -> Hashtbl.replace def_stmt v i.Instr.i_id
            | None -> ());
        let param_index = Hashtbl.create 8 in
        List.iteri (fun idx v -> Hashtbl.replace param_index v idx) m.Instr.m_params;
        (* the node a use of [v] depends on *)
        let def_target (v : Instr.var) : node option =
          match Hashtbl.find_opt def_stmt v with
          | Some s -> Some (intern g (Stmt (mc, s)))
          | None -> (
            match Hashtbl.find_opt param_index v with
            | Some idx -> Some (intern g (Formal (mc, idx)))
            | None -> None)
        in
        let use_edge (from : node) (v : Instr.var) (kind : edge_kind) : unit =
          match def_target v with
          | Some dep -> add_edge g ~from ~on:dep kind
          | None -> ()
        in
        Instr.iter_instrs m (fun _ i ->
            let n = intern g (Stmt (mc, i.Instr.i_id)) in
            (match i.Instr.i_kind with
            | Instr.Call { args; kind; _ } ->
              (* Argument uses reach callees through formal nodes; only
                 intrinsic callees take their arguments directly. *)
              let intr = Andersen.intrinsic_targets pta ~mctx:mc ~stmt:i.Instr.i_id in
              let body_callees = Andersen.call_targets pta ~mctx:mc ~stmt:i.Instr.i_id in
              if intr <> [] then
                List.iter (fun a -> use_edge n a Producer_local) args;
              (* return-value edges *)
              List.iter
                (fun cmc ->
                  let cmq, _ = Andersen.mctx_info pta cmc in
                  let cm = Program.find_method_exn p cmq in
                  Instr.iter_terms cm (fun _ t ->
                      match t.Instr.t_kind with
                      | Instr.Return (Some _) ->
                        add_edge g ~from:n
                          ~on:(intern g (Stmt (cmc, t.Instr.t_id)))
                          Return_value
                      | Instr.Return None | Instr.Goto _ | Instr.If _
                      | Instr.Throw _ -> ()))
                body_callees;
              ignore kind
            | _ ->
              List.iter
                (fun (v, cls) ->
                  let kind =
                    match cls with
                    | Instr.Use_value -> Producer_local
                    | Instr.Use_base -> Base_pointer
                    | Instr.Use_index -> Index
                  in
                  use_edge n v kind)
                (Instr.classified_uses i));
            (* heap indexing *)
            match i.Instr.i_kind with
            | Instr.Store (x, f, _) ->
              Andersen.pts_iter_var pta ~mctx:mc x (fun o ->
                  push hx.field_writes (o, f) (n, i.Instr.i_id))
            | Instr.Load (_, y, f) ->
              Andersen.pts_iter_var pta ~mctx:mc y (fun o ->
                  push hx.field_reads (o, f) (n, i.Instr.i_id))
            | Instr.Array_store (a, _, _) ->
              Andersen.pts_iter_var pta ~mctx:mc a (fun o ->
                  push hx.field_writes (o, Andersen.elem_field) (n, i.Instr.i_id))
            | Instr.Array_load (_, a, _) ->
              Andersen.pts_iter_var pta ~mctx:mc a (fun o ->
                  push hx.field_reads (o, Andersen.elem_field) (n, i.Instr.i_id))
            | Instr.New_array (x, _, _) ->
              Andersen.pts_iter_var pta ~mctx:mc x (fun o ->
                  push hx.len_writes o n)
            | Instr.Array_length (_, a) ->
              Andersen.pts_iter_var pta ~mctx:mc a (fun o ->
                  push hx.len_reads o n)
            | Instr.Static_store (c, f, _) -> push hx.static_writes (c, f) n
            | Instr.Static_load (_, c, f) -> push hx.static_reads (c, f) n
            | Instr.Const _ | Instr.Move _ | Instr.Binop _ | Instr.Unop _
            | Instr.New _ | Instr.Call _ | Instr.Cast _ | Instr.Instance_of _
            | Instr.Phi _ | Instr.Nop -> ());
        Instr.iter_terms m (fun _ t ->
            let n = intern g (Stmt (mc, t.Instr.t_id)) in
            List.iter (fun v -> use_edge n v Producer_local) (Instr.uses_of_term t))
      end)
    mcs);
  (* Pass 2: formal -> actual edges (parameter passing). *)
  Slice_obs.span "sdg.params" (fun () ->
  List.iter
    (fun (mc, mq, _) ->
      let m = Program.find_method_exn p mq in
      if Instr.has_body m then begin
        let def_stmt = Hashtbl.create 64 in
        let def_instr = Hashtbl.create 64 in
        Instr.iter_instrs m (fun _ j ->
            match Instr.def_of_instr j with
            | Some v ->
              Hashtbl.replace def_stmt v j.Instr.i_id;
              Hashtbl.replace def_instr v j
            | None -> ());
        let param_index = Hashtbl.create 8 in
        List.iteri (fun idx v -> Hashtbl.replace param_index v idx) m.Instr.m_params;
        let actual_node (v : Instr.var) : node option =
          match Hashtbl.find_opt def_stmt v with
          | Some s -> Some (intern g (Stmt (mc, s)))
          | None -> (
            match Hashtbl.find_opt param_index v with
            | Some idx -> Some (intern g (Formal (mc, idx)))
            | None -> None)
        in
        Instr.iter_instrs m (fun _ i ->
            match i.Instr.i_kind with
            | Instr.Call { args; _ } ->
              (* A kept allocation needs its constructor in a Weiser-style
                 slice: tie the New to the <init> invocation. *)
              (match (i.Instr.i_kind, args) with
              | Instr.Call { kind = Instr.Special _; _ }, recv :: _ -> (
                match Hashtbl.find_opt def_instr recv with
                | Some { Instr.i_kind = Instr.New _; i_id; _ } ->
                  add_edge g
                    ~from:(intern g (Stmt (mc, i_id)))
                    ~on:(intern g (Stmt (mc, i.Instr.i_id)))
                    Call_actual
                | Some _ | None -> ())
              | _ -> ());
              List.iter
                (fun cmc ->
                  List.iteri
                    (fun idx a ->
                      match actual_node a with
                      | Some an ->
                        let actual =
                          intern g (Actual_in (mc, i.Instr.i_id, idx))
                        in
                        add_edge g
                          ~from:(intern g (Formal (cmc, idx)))
                          ~on:actual Param_in;
                        add_edge g ~from:actual ~on:an Producer_local;
                        (* statement closure for traditional slicing *)
                        add_edge g
                          ~from:(intern g (Stmt (mc, i.Instr.i_id)))
                          ~on:actual Call_actual
                      | None -> ())
                    args)
                (Andersen.call_targets pta ~mctx:mc ~stmt:i.Instr.i_id)
            | _ -> ())
      end)
    mcs);
  (* Pass 3: heap dependence edges (store -> load, direct).  Candidate
     (read, write) pairs are deduplicated through a bitset row per
     write-node — the same (rn, wn) pair reappears once per shared
     (object, field) key across contexts — and the surviving pairs are
     emitted in one sweep via [Bits.iter].  The considered bump counts
     every candidate; the emitted bump shares one guard with the actual
     emit (distinct pair, rn <> wn), so emitted == distinct heap edges
     exactly — the "considered vs emitted" ratio of the
     context-insensitive representation. *)
  Slice_obs.span "sdg.heap" (fun () ->
  let rows : (node, Slice_util.Bits.t) Hashtbl.t = Hashtbl.create 256 in
  let consider rn wn =
    Slice_obs.bump c_heap_considered;
    if rn <> wn then begin
      let row =
        match Hashtbl.find_opt rows wn with
        | Some b -> b
        | None ->
          let b = Slice_util.Bits.create ~capacity:64 () in
          Hashtbl.replace rows wn b;
          b
      in
      ignore (Slice_util.Bits.add row rn)
    end
  in
  let wire_heap reads writes =
    Hashtbl.iter
      (fun key rlist ->
        match Hashtbl.find_opt writes key with
        | None -> ()
        | Some wlist ->
          List.iter
            (fun (rn, _) ->
              List.iter (fun (wn, _) -> consider rn wn) !wlist)
            !rlist)
      reads
  in
  wire_heap hx.field_reads hx.field_writes;
  Hashtbl.iter
    (fun key rlist ->
      match Hashtbl.find_opt hx.static_writes key with
      | None -> ()
      | Some wlist ->
        List.iter
          (fun rn -> List.iter (fun wn -> consider rn wn) !wlist)
          !rlist)
    hx.static_reads;
  Hashtbl.iter
    (fun o rlist ->
      match Hashtbl.find_opt hx.len_writes o with
      | None -> ()
      | Some wlist ->
        List.iter
          (fun rn -> List.iter (fun wn -> consider rn wn) !wlist)
          !rlist)
    hx.len_reads;
  Hashtbl.iter
    (fun wn row ->
      Slice_util.Bits.iter
        (fun rn ->
          Slice_obs.bump c_heap_emitted;
          add_edge g ~from:rn ~on:wn Producer_heap)
        row)
    rows);
  (* Pass 4: control dependence edges. *)
  if include_control then Slice_obs.span "sdg.control" (fun () -> begin
    (* reverse call graph: callee mctx -> caller call-site nodes *)
    let callers : (int, node list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (mc, mq, _) ->
        let m = Program.find_method_exn p mq in
        if Instr.has_body m then
          Instr.iter_instrs m (fun _ i ->
              match i.Instr.i_kind with
              | Instr.Call _ ->
                List.iter
                  (fun cmc ->
                    push callers cmc (intern g (Stmt (mc, i.Instr.i_id))))
                  (Andersen.call_targets pta ~mctx:mc ~stmt:i.Instr.i_id)
              | _ -> ()))
      mcs;
    List.iter
      (fun (mc, mq, _) ->
        let m = Program.find_method_exn p mq in
        if Instr.has_body m then begin
          let cfg = Cfg.build m in
          let pdom = Dominance.compute (Dominance.backward_graph cfg) in
          let pdf = Dominance.dominance_frontiers pdom in
          let blocks = Instr.blocks_exn m in
          let nblocks = Array.length blocks in
          let entry_callers =
            match Hashtbl.find_opt callers mc with Some r -> !r | None -> []
          in
          for bl = 0 to nblocks - 1 do
            let governors =
              List.filter (fun b -> b < nblocks) pdf.(bl)
              |> List.map (fun b -> intern g (Stmt (mc, blocks.(b).Instr.b_term.Instr.t_id)))
            in
            let wire n =
              if governors = [] then
                (* governed by method entry: control-dependent on call sites *)
                List.iter (fun c -> add_edge g ~from:n ~on:c Control) entry_callers
              else List.iter (fun c -> add_edge g ~from:n ~on:c Control) governors
            in
            List.iter
              (fun i -> wire (intern g (Stmt (mc, i.Instr.i_id))))
              blocks.(bl).Instr.b_instrs;
            wire (intern g (Stmt (mc, blocks.(bl).Instr.b_term.Instr.t_id)))
          done
        end)
      mcs
  end);
  g

(* ------------------------------------------------------------------ *)
(* Lookups used by drivers                                             *)
(* ------------------------------------------------------------------ *)

(* All statement nodes whose source line matches. *)
let nodes_at_line (g : t) ~(file : string option) ~(line : int) : node list =
  let out = ref [] in
  for n = 0 to g.num_nodes - 1 do
    let loc = node_loc g n in
    if
      (not (Loc.is_none loc))
      && loc.Loc.line = line
      && (match file with None -> true | Some f -> String.equal f loc.Loc.file)
    then out := n :: !out
  done;
  List.rev !out

(* Number of scalar statements: distinct statement ids that appear as nodes
   (context clones counted once), matching Table 1's "SDG Statements". *)
let num_scalar_statements (g : t) : int =
  let seen = Hashtbl.create 256 in
  for n = 0 to g.num_nodes - 1 do
    match g.descs.(n) with
    | Stmt (_, s) -> Hashtbl.replace seen s ()
    | Formal _ | Actual_in _ -> ()
  done;
  Hashtbl.length seen

(* DOT export for documentation and debugging.  [witness] is a dependence
   path as (node, arrival kind) steps, seed first; its nodes and exactly
   the hop edges (predecessor -> step, with the step's arrival kind) are
   highlighted so the path stands out of the full graph. *)
let to_dot ?(witness : (node * edge_kind option) list = []) (g : t) : string =
  let wit_nodes = Hashtbl.create 16 in
  let wit_edges = Hashtbl.create 16 in
  let rec mark = function
    | [] -> ()
    | (n, _) :: rest ->
      Hashtbl.replace wit_nodes n ();
      (match rest with
      | (m, Some k) :: _ -> Hashtbl.replace wit_edges (n, m, k) ()
      | _ -> ());
      mark rest
  in
  mark witness;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph sdg {\n  node [shape=box,fontname=monospace];\n";
  for n = 0 to g.num_nodes - 1 do
    let hl =
      if Hashtbl.mem wit_nodes n then ",color=red,penwidth=2.0" else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=%S%s];\n" n
         (Format.asprintf "%a" (pp_node g) n)
         hl)
  done;
  for n = 0 to g.num_nodes - 1 do
    deps_iter g n (fun dep kind ->
        let style =
          match kind with
          | Producer_local | Producer_heap | Param_in | Return_value -> "solid"
          | Base_pointer | Index | Call_actual -> "dashed"
          | Control -> "dotted"
        in
        let hl =
          if Hashtbl.mem wit_edges (n, dep, kind) then
            ",color=red,penwidth=2.0"
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=%s,label=\"%s\"%s];\n" n dep
             style
             (edge_kind_to_string kind)
             hl))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
