(* End-to-end pipeline: program -> points-to -> SDG -> slicers.
   This is the public entry point a tool embeds. *)

open Slice_ir
open Slice_pta

type analysis = {
  program : Program.t;
  pta : Andersen.result;
  sdg : Sdg.t;
  obj_sens : bool;
}

let analyze ?(obj_sens = true) ?(freeze = true) ?(solver = `Bitset)
    (program : Program.t) : analysis =
  let opts =
    if obj_sens then Andersen.default_opts else Andersen.no_obj_sens_opts
  in
  let pta =
    match solver with
    | `Bitset -> Andersen.analyze ~opts program
    | `Reference ->
      (* [Andersen.Reference] is telemetry-free by design (it is the
         byte-comparable oracle), so the pipeline spans are recorded
         here instead; the result is lifted into the main
         representation so everything downstream is unchanged. *)
      Slice_obs.span "pta" (fun () ->
          Slice_obs.span "pta.solve" (fun () ->
              Andersen.of_reference (Andersen.Reference.analyze ~opts program)))
  in
  let sdg = Slice_obs.span "sdg.build" (fun () -> Sdg.build program pta) in
  (* Compact to the immutable CSR layout (recorded under "sdg.freeze");
     [freeze:false] keeps the mutable list adjacency, for parity tests
     and the BENCH A/B baseline. *)
  if freeze then Sdg.freeze sdg;
  { program; pta; sdg; obj_sens }

let of_source ?container_classes ?obj_sens ?freeze ?solver ~(file : string)
    (src : string) : analysis =
  analyze ?obj_sens ?freeze ?solver
    (Slice_front.Frontend.load_exn ?container_classes ~file src)

(* Multi-file variant: the units are loaded as one program (see
   [Frontend.load_many_exn]) so slices can span files while every
   location keeps the file it came from. *)
let of_sources ?container_classes ?obj_sens ?freeze ?solver
    (units : (string * string) list) : analysis =
  analyze ?obj_sens ?freeze ?solver
    (Slice_front.Frontend.load_many_exn ?container_classes units)

(* Seed selection: all SDG nodes for statements on a source line.  When the
   line holds several statements, [prefer] can narrow to one kind. *)
type seed_filter =
  | Any
  | Only_loads          (* field/array reads *)
  | Only_calls
  | Only_casts
  | Only_conditionals
  | Only_throws

let matches_filter (a : analysis) (f : seed_filter) (n : Sdg.node) : bool =
  match f with
  | Any -> true
  | _ -> (
    match Sdg.node_stmt a.sdg n with
    | None -> false
    | Some s -> (
      match Hashtbl.find_opt (Sdg.stmt_table a.sdg) s with
      | None -> false
      | Some si -> (
        match (f, si.Program.s_site) with
        | Only_loads, Program.Site_instr i -> (
          match i.Instr.i_kind with
          | Instr.Load _ | Instr.Array_load _ | Instr.Static_load _ -> true
          | _ -> false)
        | Only_calls, Program.Site_instr i -> (
          match i.Instr.i_kind with Instr.Call _ -> true | _ -> false)
        | Only_casts, Program.Site_instr i -> (
          match i.Instr.i_kind with Instr.Cast _ -> true | _ -> false)
        | Only_conditionals, Program.Site_term t -> (
          match t.Instr.t_kind with Instr.If _ -> true | _ -> false)
        | Only_throws, Program.Site_term t -> (
          match t.Instr.t_kind with Instr.Throw _ -> true | _ -> false)
        | _, (Program.Site_instr _ | Program.Site_term _) -> false)))

let seeds_at_line ?(filter = Any) (a : analysis) (line : int) : Sdg.node list =
  List.filter (matches_filter a filter)
    (Sdg.nodes_at_line a.sdg ~file:None ~line)

exception No_seed of int

let seeds_at_line_exn ?filter (a : analysis) (line : int) : Sdg.node list =
  match seeds_at_line ?filter a line with
  | [] -> raise (No_seed line)
  | seeds -> seeds

(* Slice from a line, reported as source line numbers. *)
let slice_from_line ?filter (a : analysis) ~(line : int) (mode : Slicer.mode) :
    int list =
  Slicer.slice_line_numbers a.sdg
    ~seeds:(seeds_at_line_exn ?filter a line)
    mode

(* Many slices over one graph: seed resolution per line, then one batched
   walk with reused scratch buffers.  Returns, per input line (in input
   order), the sorted distinct source line numbers of the slice.  Runs on
   whatever adjacency the analysis carries: the graph is NOT frozen here,
   so an [analyze ~freeze:false] A/B baseline stays on the list shims. *)
let slice_batch ?filter ?(forward = false) (a : analysis) ~(lines : int list)
    (mode : Slicer.mode) : (int * int list) list =
  let seeds_list = List.map (fun l -> seeds_at_line_exn ?filter a l) lines in
  let slices =
    if forward then Slicer.forward_slice_batch a.sdg ~seeds_list mode
    else Slicer.slice_batch a.sdg ~seeds_list mode
  in
  List.map2
    (fun line nodes ->
      (line, Slicer.locs_to_line_numbers (Slicer.nodes_to_lines a.sdg nodes)))
    lines slices

(* Parallel batch slicing: shard the (already seed-resolved) batch across
   [jobs] worker domains, each walking the shared frozen CSR graph with
   its own scratch handle and its own per-domain telemetry registry.
   Seeds are resolved sequentially up front so [No_seed] behaviour is
   deterministic and identical to {!slice_batch}.  Workers never mutate
   the graph — freezing before spawning is what makes the concurrent
   reads safe — and each worker's telemetry snapshot is merged back into
   the calling domain after [Domain.join], even when a worker raised. *)
let slice_batch_par ?filter ?(forward = false) ?(jobs = 1) (a : analysis)
    ~(lines : int list) (mode : Slicer.mode) : (int * int list) list =
  if jobs <= 1 then slice_batch ?filter ~forward a ~lines mode
  else begin
    (* Concurrent readers require the immutable CSR arrays: the list
       adjacency is only written during construction, but freezing here
       guarantees no lazy compaction can ever race with the walkers. *)
    Sdg.freeze a.sdg;
    let seeds = Array.of_list (List.map (fun l -> seeds_at_line_exn ?filter a l) lines) in
    let n = Array.length seeds in
    let jobs = min jobs (max 1 n) in
    (* Stay far below the runtime's recommended domain count ceiling. *)
    let jobs = min jobs 64 in
    Slice_obs.span "engine.slice_batch_par" (fun () ->
        let results : Sdg.node list array = Array.make n [] in
        let run_chunk lo hi =
          (* Executed inside a fresh domain: per-domain DLS scratch, and a
             per-domain telemetry registry that starts empty. *)
          let out =
            try
              let scratch = Slicer.create_scratch a.sdg in
              for i = lo to hi - 1 do
                let seeds = seeds.(i) in
                results.(i) <-
                  (if forward then Slicer.forward_slice ~scratch a.sdg ~seeds mode
                   else Slicer.slice ~scratch a.sdg ~seeds mode)
              done;
              Ok ()
            with e -> Error e
          in
          (out, Slice_obs.snapshot ())
        in
        let chunk i = (i * n / jobs, (i + 1) * n / jobs) in
        let domains =
          Array.init jobs (fun i ->
              let lo, hi = chunk i in
              Domain.spawn (fun () -> run_chunk lo hi))
        in
        let outcomes = Array.map Domain.join domains in
        (* Merge every worker's telemetry first — exception or not — so
           counters/spans are never lost, then re-raise the first error. *)
        Array.iter (fun (_, snap) -> Slice_obs.merge_snapshot snap) outcomes;
        Array.iter
          (fun (out, _) -> match out with Ok () -> () | Error e -> raise e)
          outcomes;
        List.mapi
          (fun i line ->
            ( line,
              Slicer.locs_to_line_numbers
                (Slicer.nodes_to_lines a.sdg results.(i)) ))
          lines)
  end

(* Inspection simulation (the paper's BFS metric) from a line seed. *)
let inspect_from_line ?filter (a : analysis) ~(line : int)
    ~(desired : int list) (mode : Slicer.mode) : Inspect.report =
  Inspect.bfs a.sdg ~seeds:(seeds_at_line_exn ?filter a line) ~desired mode

(* All unverified ("tough") casts of the program: the pointer analysis
   cannot prove them safe (section 6.3). *)
let tough_casts (a : analysis) : (Instr.method_qname * Instr.instr) list =
  let out = ref [] in
  List.iter
    (fun mq ->
      let m = Program.find_method_exn a.program mq in
      if Instr.has_body m then
        Instr.iter_instrs m (fun _ i ->
            match i.Instr.i_kind with
            | Instr.Cast _ ->
              if not (Andersen.cast_verified a.pta mq i) then out := (mq, i) :: !out
            | _ -> ()))
    (Andersen.reachable_methods a.pta);
  List.rev !out

(* Program statistics in the shape of the paper's Table 1, plus the
   telemetry snapshot captured when the stats were taken. *)
type stats = {
  classes : int;
  methods : int;                 (* reachable methods with bodies *)
  ir_statements : int;           (* "bytecode statements" analogue *)
  call_graph_nodes : int;        (* method contexts *)
  sdg_statements : int;
  sdg_nodes : int;               (* including context clones and formals *)
  abstract_objects : int;
  obs : Slice_obs.snapshot;      (* counters, gauges, spans at capture *)
}

let stats_of (a : analysis) : stats =
  let reachable = Andersen.reachable_methods a.pta in
  let with_body =
    List.filter
      (fun mq -> Instr.has_body (Program.find_method_exn a.program mq))
      reachable
  in
  let ir_statements =
    List.fold_left
      (fun acc mq ->
        let m = Program.find_method_exn a.program mq in
        let n = ref 0 in
        Instr.iter_instrs m (fun _ _ -> incr n);
        Instr.iter_terms m (fun _ _ -> incr n);
        acc + !n)
      0 with_body
  in
  let classes = ref 0 in
  Program.iter_classes a.program (fun ci ->
      if not ci.Program.c_builtin then incr classes);
  { classes = !classes;
    methods = List.length with_body;
    ir_statements;
    call_graph_nodes = Andersen.num_call_graph_nodes a.pta;
    sdg_statements = Sdg.num_scalar_statements a.sdg;
    sdg_nodes = Sdg.num_nodes a.sdg;
    abstract_objects = Andersen.num_objects a.pta;
    obs = Slice_obs.snapshot () }

(* JSON export of the stats + telemetry — the payload behind [thinslice
   --stats-json] and one entry of BENCH_results.json.  Schema documented
   in README "Observability". *)
let stats_schema_version = "thinslice.stats/v1"

let program_stats_json (s : stats) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  Obj
    [ ("classes", Int s.classes);
      ("methods", Int s.methods);
      ("ir_statements", Int s.ir_statements);
      ("call_graph_nodes", Int s.call_graph_nodes);
      ("sdg_statements", Int s.sdg_statements);
      ("sdg_nodes", Int s.sdg_nodes);
      ("abstract_objects", Int s.abstract_objects) ]

(* Group the "sdg.edge.<kind>" counters into an object keyed by kind. *)
let edges_by_kind_json (snap : Slice_obs.snapshot) : Slice_obs.Json.t =
  let prefix = "sdg.edge." in
  let plen = String.length prefix in
  Slice_obs.Json.Obj
    (List.filter_map
       (fun (name, v) ->
         if
           String.length name > plen
           && String.equal (String.sub name 0 plen) prefix
         then Some (String.sub name plen (String.length name - plen),
                    Slice_obs.Json.Int v)
         else None)
       snap.Slice_obs.snap_counters)

let stats_to_json (s : stats) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  Obj
    [ ("schema", Str stats_schema_version);
      ("program", program_stats_json s);
      ("sdg.edges_by_kind", edges_by_kind_json s.obs);
      ("telemetry", Slice_obs.snapshot_to_json s.obs) ]
