(* End-to-end pipeline: program -> points-to -> SDG -> slicers.
   This is the public entry point a tool embeds. *)

open Slice_ir
open Slice_pta

type analysis = {
  program : Program.t;
  pta : Andersen.result;
  sdg : Sdg.t;
  arena : Arena.t;
      (* the flat int-indexed lowering the SDG pass read; retained for
         its deterministic byte footprint ([stats.arena_bytes]) and for
         arena-view consumers *)
  obj_sens : bool;
}

let g_arena_bytes = Slice_obs.gauge "ir.arena_bytes"

(* The back half of [analyze]: arena + SDG over an ALREADY-SOLVED
   points-to result.  Also the dedicated entry of the incremental
   re-solve ([Andersen.resolve_delta] mutates the existing result in
   place, after which only the derived layers need rebuilding). *)
let analyze_with_pta ?(freeze = true) ~(obj_sens : bool)
    (pta : Andersen.result) (program : Program.t) : analysis =
  (* Lower the reachable IR into the flat arena before the SDG pass
     reads it: strings interned once, operands packed into int arrays.
     Pass 1 of [Sdg.build] walks the arena columns instead of the record
     instructions — same visit order, edge-for-edge the same graph. *)
  let arena =
    Slice_obs.span "ir.arena" (fun () ->
        let ar = Arena.build program in
        Slice_obs.max_gauge g_arena_bytes (float_of_int (Arena.bytes ar));
        ar)
  in
  let sdg =
    Slice_obs.span "sdg.build" (fun () -> Sdg.build ~arena program pta)
  in
  (* Compact to the immutable CSR layout (recorded under "sdg.freeze");
     [freeze:false] keeps the mutable list adjacency, for parity tests
     and the BENCH A/B baseline. *)
  if freeze then Sdg.freeze sdg;
  { program; pta; sdg; arena; obj_sens }

let analyze ?(obj_sens = true) ?(freeze = true) ?(solver = `Bitset)
    (program : Program.t) : analysis =
  let opts =
    if obj_sens then Andersen.default_opts else Andersen.no_obj_sens_opts
  in
  let pta =
    match solver with
    | `Bitset -> Andersen.analyze ~opts program
    | `Reference ->
      (* [Andersen.Reference] is telemetry-free by design (it is the
         byte-comparable oracle), so the pipeline spans are recorded
         here instead; the result is lifted into the main
         representation so everything downstream is unchanged. *)
      Slice_obs.span "pta" (fun () ->
          Slice_obs.span "pta.solve" (fun () ->
              Andersen.of_reference (Andersen.Reference.analyze ~opts program)))
  in
  analyze_with_pta ~freeze ~obj_sens pta program

let of_source ?container_classes ?obj_sens ?freeze ?solver ~(file : string)
    (src : string) : analysis =
  analyze ?obj_sens ?freeze ?solver
    (Slice_front.Frontend.load_exn ?container_classes ~file src)

(* Multi-file variant: the units are loaded as one program (see
   [Frontend.load_many_exn]) so slices can span files while every
   location keeps the file it came from. *)
let of_sources ?container_classes ?obj_sens ?freeze ?solver
    (units : (string * string) list) : analysis =
  analyze ?obj_sens ?freeze ?solver
    (Slice_front.Frontend.load_many_exn ?container_classes units)

(* Seed selection: all SDG nodes for statements on a source line.  When the
   line holds several statements, [prefer] can narrow to one kind. *)
type seed_filter =
  | Any
  | Only_loads          (* field/array reads *)
  | Only_calls
  | Only_casts
  | Only_conditionals
  | Only_throws

let matches_filter (a : analysis) (f : seed_filter) (n : Sdg.node) : bool =
  match f with
  | Any -> true
  | _ -> (
    match Sdg.node_stmt a.sdg n with
    | None -> false
    | Some s -> (
      match Hashtbl.find_opt (Sdg.stmt_table a.sdg) s with
      | None -> false
      | Some si -> (
        match (f, si.Program.s_site) with
        | Only_loads, Program.Site_instr i -> (
          match i.Instr.i_kind with
          | Instr.Load _ | Instr.Array_load _ | Instr.Static_load _ -> true
          | _ -> false)
        | Only_calls, Program.Site_instr i -> (
          match i.Instr.i_kind with Instr.Call _ -> true | _ -> false)
        | Only_casts, Program.Site_instr i -> (
          match i.Instr.i_kind with Instr.Cast _ -> true | _ -> false)
        | Only_conditionals, Program.Site_term t -> (
          match t.Instr.t_kind with Instr.If _ -> true | _ -> false)
        | Only_throws, Program.Site_term t -> (
          match t.Instr.t_kind with Instr.Throw _ -> true | _ -> false)
        | _, (Program.Site_instr _ | Program.Site_term _) -> false)))

let seeds_at_line ?(filter = Any) (a : analysis) (line : int) : Sdg.node list =
  List.filter (matches_filter a filter)
    (Sdg.nodes_at_line a.sdg ~file:None ~line)

exception No_seed of int

let seeds_at_line_exn ?filter (a : analysis) (line : int) : Sdg.node list =
  match seeds_at_line ?filter a line with
  | [] -> raise (No_seed line)
  | seeds -> seeds

(* Slice from a line, reported as source line numbers. *)
let slice_from_line ?filter (a : analysis) ~(line : int) (mode : Slicer.mode) :
    int list =
  Slicer.slice_line_numbers a.sdg
    ~seeds:(seeds_at_line_exn ?filter a line)
    mode

(* Many slices over one graph: seed resolution per line, then one batched
   walk with reused scratch buffers.  Returns, per input line (in input
   order), the sorted distinct source line numbers of the slice.  Runs on
   whatever adjacency the analysis carries: the graph is NOT frozen here,
   so an [analyze ~freeze:false] A/B baseline stays on the list shims. *)
let slice_batch ?filter ?(forward = false) (a : analysis) ~(lines : int list)
    (mode : Slicer.mode) : (int * int list) list =
  let seeds_list = List.map (fun l -> seeds_at_line_exn ?filter a l) lines in
  let slices =
    if forward then Slicer.forward_slice_batch a.sdg ~seeds_list mode
    else Slicer.slice_batch a.sdg ~seeds_list mode
  in
  List.map2
    (fun line nodes ->
      (line, Slicer.locs_to_line_numbers (Slicer.nodes_to_lines a.sdg nodes)))
    lines slices

(* Parallel batch slicing: shard the (already seed-resolved) batch across
   [jobs] worker domains, each walking the shared frozen CSR graph with
   its own scratch handle and its own per-domain telemetry registry.
   Seeds are resolved sequentially up front so [No_seed] behaviour is
   deterministic and identical to {!slice_batch}.  Workers never mutate
   the graph — freezing before spawning is what makes the concurrent
   reads safe — and each worker's telemetry snapshot is merged back into
   the calling domain after [Domain.join], even when a worker raised. *)
let slice_batch_par ?filter ?(forward = false) ?(jobs = 1) (a : analysis)
    ~(lines : int list) (mode : Slicer.mode) : (int * int list) list =
  if jobs <= 1 then slice_batch ?filter ~forward a ~lines mode
  else begin
    (* Concurrent readers require the immutable CSR arrays: the list
       adjacency is only written during construction, but freezing here
       guarantees no lazy compaction can ever race with the walkers. *)
    Sdg.freeze a.sdg;
    let seeds = Array.of_list (List.map (fun l -> seeds_at_line_exn ?filter a l) lines) in
    let n = Array.length seeds in
    let jobs = min jobs (max 1 n) in
    (* Stay far below the runtime's recommended domain count ceiling. *)
    let jobs = min jobs 64 in
    Slice_obs.span "engine.slice_batch_par" (fun () ->
        let results : Sdg.node list array = Array.make n [] in
        let run_chunk lo hi =
          (* Executed inside a fresh domain: per-domain DLS scratch, and a
             per-domain telemetry registry that starts empty. *)
          let out =
            try
              let scratch = Slicer.create_scratch a.sdg in
              for i = lo to hi - 1 do
                let seeds = seeds.(i) in
                results.(i) <-
                  (if forward then Slicer.forward_slice ~scratch a.sdg ~seeds mode
                   else Slicer.slice ~scratch a.sdg ~seeds mode)
              done;
              Ok ()
            with e -> Error e
          in
          (out, Slice_obs.snapshot ())
        in
        let chunk i = (i * n / jobs, (i + 1) * n / jobs) in
        let domains =
          Array.init jobs (fun i ->
              let lo, hi = chunk i in
              Domain.spawn (fun () -> run_chunk lo hi))
        in
        let outcomes = Array.map Domain.join domains in
        (* Merge every worker's telemetry first — exception or not — so
           counters/spans are never lost, then re-raise the first error. *)
        Array.iter (fun (_, snap) -> Slice_obs.merge_snapshot snap) outcomes;
        Array.iter
          (fun (out, _) -> match out with Ok () -> () | Error e -> raise e)
          outcomes;
        List.mapi
          (fun i line ->
            ( line,
              Slicer.locs_to_line_numbers
                (Slicer.nodes_to_lines a.sdg results.(i)) ))
          lines)
  end

(* Inspection simulation (the paper's BFS metric) from a line seed. *)
let inspect_from_line ?filter (a : analysis) ~(line : int)
    ~(desired : int list) (mode : Slicer.mode) : Inspect.report =
  Inspect.bfs a.sdg ~seeds:(seeds_at_line_exn ?filter a line) ~desired mode

(* ------------------------------------------------------------------ *)
(* Provenance queries: witness paths and layered explain reports       *)
(* ------------------------------------------------------------------ *)

let explain_schema_version = "thinslice.explain/v1"

(* Per-report layer sizes (lines), the per-query telemetry of ISSUE 6. *)
let c_report_producers = Slice_obs.counter "engine.report.producer_lines"
let c_report_alias = Slice_obs.counter "engine.report.alias_explainer_lines"
let c_report_control = Slice_obs.counter "engine.report.control_explainer_lines"

(* The data-only companion of a mode: same flow edges, no control.  The
   control-explainer layer of a report is what [mode] slices BEYOND its
   companion; modes that already skip control are their own. *)
let data_submode = function
  | Slicer.Traditional_full -> Slicer.Traditional_data
  | (Slicer.Thin | Slicer.Thin_with_aliasing _ | Slicer.Traditional_data) as m
    -> m

(* Run [f] in a fresh worker domain and fold its telemetry back into the
   calling domain's registry.  The provenance queries use it for
   [jobs > 1]: results are deterministic either way (that is what the CI
   explain-parity step pins), but the worker round-trip exercises the
   domain-safety of the provenance scratch. *)
let in_worker_domain (f : unit -> 'a) : 'a =
  let d =
    Domain.spawn (fun () ->
        let out = try Ok (f ()) with e -> Error e in
        (out, Slice_obs.snapshot ()))
  in
  let out, snap = Domain.join d in
  Slice_obs.merge_snapshot snap;
  match out with Ok v -> v | Error e -> raise e

(* Witness: the dependence path by which the [mode] slice seeded at
   [seed_line] reaches [line].  Walks with a fresh provenance, then
   explains the target-line node with the smallest (distance, node id) —
   the hop-shortest recorded path, deterministically tie-broken.  [None]
   when the line has nodes but none is a member; [No_seed] (of the
   offending line) when either line has no nodes at all. *)
let witness_from_line ?filter ?(jobs = 1) (a : analysis) ~(seed_line : int)
    ~(line : int) (mode : Slicer.mode) : Slicer.witness_step list option =
  let seeds = seeds_at_line_exn ?filter a seed_line in
  let targets = Sdg.nodes_at_line a.sdg ~file:None ~line in
  if targets = [] then raise (No_seed line);
  let prov = Slicer.create_provenance a.sdg in
  let walk () = ignore (Slicer.slice ~prov a.sdg ~seeds mode) in
  if jobs <= 1 then walk ()
  else begin
    (* Concurrent-read safety for the worker, as in [slice_batch_par]. *)
    Sdg.freeze a.sdg;
    in_worker_domain walk
  end;
  let best =
    List.fold_left
      (fun acc n ->
        match Slicer.distance prov n with
        | None -> acc
        | Some d -> (
          match acc with
          | Some (d', n') when (d', n') <= (d, n) -> acc
          | Some _ | None -> Some (d, n)))
      None targets
  in
  match best with
  | None -> None
  | Some (_, n) -> Slicer.witness prov n

(* ----- layered explain report ----- *)

type explain_layer = Producers | Alias_explainers | Control_explainers

let layer_to_string = function
  | Producers -> "producers"
  | Alias_explainers -> "alias-explainers"
  | Control_explainers -> "control-explainers"

(* Innermost layer wins when a line has nodes in several. *)
let layer_order = function
  | Producers -> 0
  | Alias_explainers -> 1
  | Control_explainers -> 2

type report_line = {
  rl_loc : string * int;  (* (file, line) *)
  rl_rank : int;          (* min BFS distance over the line's member nodes *)
  rl_layer : explain_layer;
  rl_explains : (string * int) list;
      (* lines this explainer directly serves (sorted distinct; empty
         for producers) *)
}

type slice_report = {
  sr_seed_line : int;
  sr_mode : Slicer.mode;
  sr_layer_sizes : int * int * int;
      (* (producer, alias-explainer, control-explainer) line counts *)
  sr_lines : report_line list;  (* sorted by (rank, file, line) *)
}

(* The layered report of a [mode] slice seeded at [line]:

   - producers        = members of the THIN slice (the paper's relevant
                        statements);
   - alias explainers = members of the data companion's slice beyond
                        thin (base-pointer / index / call-closure flow);
   - control explainers = members beyond the data companion (reached
                        only through control dependences).

   Every line is ranked by the provenance BFS distance of its closest
   member node — the paper's section 5 inspection metric — and explainer
   lines carry the member lines they DIRECTLY explain, computed with the
   {!Expansion} explain primitives (base/index defs, call actuals,
   direct control).  [jobs > 1] runs the (up to three) walks in parallel
   worker domains; the result is identical by construction. *)
let slice_report ?filter ?(jobs = 1) (a : analysis) ~(line : int)
    (mode : Slicer.mode) : slice_report =
  let seeds = seeds_at_line_exn ?filter a line in
  Slice_obs.span
    ~args:
      [ ("seed_line", string_of_int line);
        ("mode", Slicer.mode_to_string mode) ]
    "engine.slice_report"
    (fun () ->
      let prov = Slicer.create_provenance a.sdg in
      let sub = data_submode mode in
      let boundary_modes =
        List.filter (fun m -> m <> mode)
          (List.sort_uniq compare [ Slicer.Thin; sub ])
      in
      (* The mode walk records provenance; the boundary walks only need
         membership. *)
      let walks =
        (mode, true) :: List.map (fun m -> (m, false)) boundary_modes
      in
      let run (m, with_prov) =
        if with_prov then Slicer.slice ~prov a.sdg ~seeds m
        else Slicer.slice a.sdg ~seeds m
      in
      let results =
        if jobs <= 1 then List.map run walks
        else begin
          Sdg.freeze a.sdg;
          let doms =
            List.map
              (fun w ->
                Domain.spawn (fun () ->
                    let out = try Ok (run w) with e -> Error e in
                    (out, Slice_obs.snapshot ())))
              walks
          in
          let outs = List.map Domain.join doms in
          List.iter (fun (_, snap) -> Slice_obs.merge_snapshot snap) outs;
          List.map
            (fun (out, _) -> match out with Ok r -> r | Error e -> raise e)
            outs
        end
      in
      let members = List.hd results in
      let boundary = List.combine boundary_modes (List.tl results) in
      let nodes_of m = if m = mode then members else List.assoc m boundary in
      let as_set nodes =
        let t = Hashtbl.create (2 * List.length nodes) in
        List.iter (fun n -> Hashtbl.replace t n ()) nodes;
        t
      in
      let thin_set = as_set (nodes_of Slicer.Thin) in
      let sub_set = as_set (nodes_of sub) in
      let member_set = as_set members in
      let layer_of n =
        if Hashtbl.mem thin_set n then Producers
        else if Hashtbl.mem sub_set n then Alias_explainers
        else Control_explainers
      in
      (* Aggregate member nodes to (file, line): min distance, innermost
         layer. *)
      let line_tbl : (string * int, int * explain_layer) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (fun n ->
          if Sdg.node_countable a.sdg n then begin
            let loc = Sdg.node_loc a.sdg n in
            let key = (loc.Loc.file, loc.Loc.line) in
            let d =
              match Slicer.distance prov n with Some d -> d | None -> 0
            in
            let ly = layer_of n in
            match Hashtbl.find_opt line_tbl key with
            | None -> Hashtbl.replace line_tbl key (d, ly)
            | Some (d0, ly0) ->
              Hashtbl.replace line_tbl key
                ( min d d0,
                  if layer_order ly < layer_order ly0 then ly else ly0 )
          end)
        members;
      (* Direct-explainer attribution: for every member, its Expansion
         explainers that are themselves non-producer members explain it. *)
      let explains : (string * int, (string * int, unit) Hashtbl.t) Hashtbl.t
          =
        Hashtbl.create 32
      in
      List.iter
        (fun m ->
          if Sdg.node_countable a.sdg m then begin
            let mloc = Sdg.node_loc a.sdg m in
            let mkey = (mloc.Loc.file, mloc.Loc.line) in
            let direct =
              Expansion.base_defs a.sdg m
              @ Expansion.index_defs a.sdg m
              @ Expansion.call_actuals a.sdg m
              @ Expansion.explain_control a.sdg m
            in
            List.iter
              (fun x ->
                if
                  Hashtbl.mem member_set x
                  && (not (Hashtbl.mem thin_set x))
                  && Sdg.node_countable a.sdg x
                then begin
                  let xloc = Sdg.node_loc a.sdg x in
                  let xkey = (xloc.Loc.file, xloc.Loc.line) in
                  if xkey <> mkey then begin
                    let t =
                      match Hashtbl.find_opt explains xkey with
                      | Some t -> t
                      | None ->
                        let t = Hashtbl.create 8 in
                        Hashtbl.replace explains xkey t;
                        t
                    in
                    Hashtbl.replace t mkey ()
                  end
                end)
              direct
          end)
        members;
      let lines =
        Hashtbl.fold
          (fun key (rank, layer) acc ->
            let ex =
              match Hashtbl.find_opt explains key with
              | None -> []
              | Some t ->
                List.sort compare
                  (Hashtbl.fold (fun k () acc -> k :: acc) t [])
            in
            { rl_loc = key; rl_rank = rank; rl_layer = layer;
              rl_explains = ex }
            :: acc)
          line_tbl []
      in
      let lines =
        List.sort
          (fun x y -> compare (x.rl_rank, x.rl_loc) (y.rl_rank, y.rl_loc))
          lines
      in
      let count ly =
        List.length (List.filter (fun l -> l.rl_layer = ly) lines)
      in
      let np = count Producers in
      let na = count Alias_explainers in
      let nc = count Control_explainers in
      Slice_obs.add c_report_producers np;
      Slice_obs.add c_report_alias na;
      Slice_obs.add c_report_control nc;
      Slice_obs.add_span_arg "slice_lines" (string_of_int (List.length lines));
      { sr_seed_line = line;
        sr_mode = mode;
        sr_layer_sizes = (np, na, nc);
        sr_lines = lines })

(* ----- thinslice.explain/v1 JSON ----- *)

let loc_json ((file, line) : string * int) : Slice_obs.Json.t =
  Slice_obs.Json.Obj
    [ ("file", Slice_obs.Json.Str file); ("line", Slice_obs.Json.Int line) ]

let report_to_json (r : slice_report) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  let np, na, nc = r.sr_layer_sizes in
  Obj
    [ ("schema", Str explain_schema_version);
      ("result", Str "report");
      ("query",
       Obj
         [ ("seed_line", Int r.sr_seed_line);
           ("mode", Str (Slicer.mode_to_string r.sr_mode)) ]);
      ("layers",
       Obj
         [ ("producers", Int np);
           ("alias-explainers", Int na);
           ("control-explainers", Int nc) ]);
      ("lines",
       List
         (List.map
            (fun rl ->
              let file, line = rl.rl_loc in
              Obj
                [ ("file", Str file);
                  ("line", Int line);
                  ("rank", Int rl.rl_rank);
                  ("layer", Str (layer_to_string rl.rl_layer));
                  ("explains", List (List.map loc_json rl.rl_explains)) ])
            r.sr_lines)) ]

let witness_to_json (a : analysis) ~(seed_line : int) ~(line : int)
    (mode : Slicer.mode) (steps : Slicer.witness_step list) : Slice_obs.Json.t
    =
  let open Slice_obs.Json in
  Obj
    [ ("schema", Str explain_schema_version);
      ("result", Str "witness");
      ("query",
       Obj
         [ ("seed_line", Int seed_line);
           ("line", Int line);
           ("mode", Str (Slicer.mode_to_string mode)) ]);
      ("path",
       List
         (List.map
            (fun (s : Slicer.witness_step) ->
              let loc = Sdg.node_loc a.sdg s.Slicer.wit_node in
              Obj
                [ ("node", Int s.Slicer.wit_node);
                  ("file", Str loc.Loc.file);
                  ("line", Int loc.Loc.line);
                  ("label",
                   Str
                     (Format.asprintf "%a" (Sdg.pp_node a.sdg)
                        s.Slicer.wit_node));
                  ("kind",
                   (match s.Slicer.wit_kind with
                   | None -> Null
                   | Some k -> Str (Sdg.edge_kind_to_string k)));
                  ("budget", Int s.Slicer.wit_budget);
                  ("dist", Int s.Slicer.wit_dist) ])
            steps)) ]

(* All unverified ("tough") casts of the program: the pointer analysis
   cannot prove them safe (section 6.3). *)
let tough_casts (a : analysis) : (Instr.method_qname * Instr.instr) list =
  let out = ref [] in
  List.iter
    (fun mq ->
      let m = Program.find_method_exn a.program mq in
      if Instr.has_body m then
        Instr.iter_instrs m (fun _ i ->
            match i.Instr.i_kind with
            | Instr.Cast _ ->
              if not (Andersen.cast_verified a.pta mq i) then out := (mq, i) :: !out
            | _ -> ()))
    (Andersen.reachable_methods a.pta);
  List.rev !out

(* Program statistics in the shape of the paper's Table 1, plus the
   telemetry snapshot captured when the stats were taken. *)
type stats = {
  classes : int;
  methods : int;                 (* reachable methods with bodies *)
  ir_statements : int;           (* "bytecode statements" analogue *)
  call_graph_nodes : int;        (* method contexts *)
  sdg_statements : int;
  sdg_nodes : int;               (* including context clones and formals *)
  abstract_objects : int;
  arena_bytes : int;             (* flat-IR footprint; deterministic *)
  obs : Slice_obs.snapshot;      (* counters, gauges, spans at capture *)
}

(* The snapshot member of a patched handle's stats cannot come from
   [Slice_obs.snapshot ()] (process-cumulative, conflates programs) nor
   from the load-time scoped capture (its edge counters describe the
   PRE-edit graph).  Recompute the per-kind edge census from the graph
   itself and present it in snapshot shape, so [resident_stats_to_json]
   keeps reading ["sdg.edge.<kind>"] counters unchanged. *)
let edge_census_snapshot (g : Sdg.t) : Slice_obs.snapshot =
  let counters =
    List.filter_map
      (fun (k, n) ->
        if n = 0 then None
        else Some ("sdg.edge." ^ Sdg.edge_kind_to_string k, n))
      (Sdg.edge_kind_counts g)
  in
  { Slice_obs.snap_counters = List.sort compare counters;
    snap_gauges = [];
    snap_hists = [];
    snap_hist_buckets = [];
    snap_spans = [] }

let stats_of ?obs (a : analysis) : stats =
  let reachable = Andersen.reachable_methods a.pta in
  let with_body =
    List.filter
      (fun mq -> Instr.has_body (Program.find_method_exn a.program mq))
      reachable
  in
  let ir_statements =
    List.fold_left
      (fun acc mq ->
        let m = Program.find_method_exn a.program mq in
        let n = ref 0 in
        Instr.iter_instrs m (fun _ _ -> incr n);
        Instr.iter_terms m (fun _ _ -> incr n);
        acc + !n)
      0 with_body
  in
  let classes = ref 0 in
  Program.iter_classes a.program (fun ci ->
      if not ci.Program.c_builtin then incr classes);
  { classes = !classes;
    methods = List.length with_body;
    ir_statements;
    call_graph_nodes = Andersen.num_call_graph_nodes a.pta;
    sdg_statements = Sdg.num_scalar_statements a.sdg;
    sdg_nodes = Sdg.num_live_nodes a.sdg;
    abstract_objects = Andersen.num_objects a.pta;
    arena_bytes = Arena.bytes a.arena;
    obs = (match obs with Some s -> s | None -> Slice_obs.snapshot ()) }

(* JSON export of the stats + telemetry — the payload behind [thinslice
   --stats-json] and one entry of BENCH_results.json.  Schema documented
   in README "Observability". *)
let stats_schema_version = "thinslice.stats/v1"

let program_stats_json (s : stats) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  Obj
    [ ("classes", Int s.classes);
      ("methods", Int s.methods);
      ("ir_statements", Int s.ir_statements);
      ("call_graph_nodes", Int s.call_graph_nodes);
      ("sdg_statements", Int s.sdg_statements);
      ("sdg_nodes", Int s.sdg_nodes);
      ("abstract_objects", Int s.abstract_objects) ]

(* Group the "sdg.edge.<kind>" counters into an object keyed by kind. *)
let edges_by_kind_json (snap : Slice_obs.snapshot) : Slice_obs.Json.t =
  let prefix = "sdg.edge." in
  let plen = String.length prefix in
  Slice_obs.Json.Obj
    (List.filter_map
       (fun (name, v) ->
         if
           String.length name > plen
           && String.equal (String.sub name 0 plen) prefix
         then Some (String.sub name plen (String.length name - plen),
                    Slice_obs.Json.Int v)
         else None)
       snap.Slice_obs.snap_counters)

(* The memory block holds ONLY deterministic, analysis-derived figures
   (arithmetic over array lengths, never [Obj.reachable_words] or live
   process state): it appears in byte-compared output, so two processes
   analyzing the same sources must emit identical bytes.  Live peaks
   (scratch growth, GC heap) are telemetry gauges instead. *)
let memory_json (s : stats) : Slice_obs.Json.t =
  Slice_obs.Json.Obj [ ("arena_bytes", Slice_obs.Json.Int s.arena_bytes) ]

let stats_to_json (s : stats) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  Obj
    [ ("schema", Str stats_schema_version);
      ("program", program_stats_json s);
      ("sdg.edges_by_kind", edges_by_kind_json s.obs);
      ("memory", memory_json s);
      ("telemetry", Slice_obs.snapshot_to_json s.obs) ]

(* ------------------------------------------------------------------ *)
(* Canonical analysis dumps                                            *)
(* ------------------------------------------------------------------ *)

(* Site labels for oracle dumps: each statement rendered as its
   per-method body-order ordinal ("<method>#<ix>").  Raw statement ids
   diverge between a patched analysis and a fresh rebuild (a re-lower
   draws fresh ids), and source locations collide on synthetic
   statements (the [$clinit] prepend, default constructors share
   [Loc.none]) — the ordinal is the one key both sides agree on.
   Synthetic intrinsic sites (negative ids, never in any body) render
   verbatim. *)
let site_label (a : analysis) : int -> string =
  let tbl : (int, string) Hashtbl.t = Hashtbl.create 256 in
  Program.iter_methods a.program (fun m ->
      if Instr.has_body m then begin
        let mq = Instr.method_qname_to_string m.Instr.m_qname in
        let ix = ref 0 in
        let put s =
          Hashtbl.replace tbl s (Printf.sprintf "%s#%d" mq !ix);
          incr ix
        in
        Instr.iter_instrs m (fun _ i -> put i.Instr.i_id);
        Instr.iter_terms m (fun _ t -> put t.Instr.t_id)
      end);
  fun s ->
    match Hashtbl.find_opt tbl s with
    | Some l -> l
    | None -> string_of_int s

(* Points-to / call-graph dumps comparable across an incremental update
   and a from-scratch load of the same sources — the fuzz oracle's
   equality check for the analysis layer. *)
let pts_dump_canonical (a : analysis) : (string * string list) list =
  Andersen.pts_dump_loc ~site_label:(site_label a) a.pta

let call_graph_dump_canonical (a : analysis) : (string * string list) list =
  Andersen.call_graph_dump_loc ~site_label:(site_label a) a.pta

(* ------------------------------------------------------------------ *)
(* Resident-analysis handles and the unified query API                 *)
(* ------------------------------------------------------------------ *)

(* A handle is an analysis meant to OUTLIVE one query: the serve daemon
   keeps handles resident in its program cache, and the one-shot CLI
   builds one and throws it away — both answer queries through the same
   [run_query], which is what makes serve-vs-CLI byte parity a
   tautology instead of a test burden.

   [h_stats] is captured inside [Slice_obs.scoped] at load time, so its
   snapshot covers exactly this handle's load pipeline (front/pta/sdg
   spans, edge-kind counters).  In a process that loads many programs
   the process-cumulative snapshot would conflate them; the scoped
   capture keeps per-program stats deterministic — equal to what a
   fresh one-shot process reports. *)
type handle = {
  h_analysis : analysis;
  h_stats : stats;
  (* The load-time configuration, retained so {!update} can classify an
     edit against the exact sources this handle analyzed and can rebuild
     under identical options when the delta is not patchable. *)
  h_sources : (string * string) list;
  h_container_classes : string list option;
  h_obj_sens : bool;
  h_solver : [ `Bitset | `Reference ];
}

let load ?container_classes ?(obj_sens = true) ?(solver = `Bitset)
    (units : (string * string) list) : handle =
  let h, snap =
    Slice_obs.scoped (fun () ->
        let a = of_sources ?container_classes ~obj_sens ~solver units in
        { h_analysis = a;
          h_stats = stats_of a;
          h_sources = units;
          h_container_classes = container_classes;
          h_obj_sens = obj_sens;
          h_solver = solver })
  in
  ignore snap;
  h

(* ------------------------------------------------------------------ *)
(* Incremental update: edit -> delta -> patched analysis               *)
(* ------------------------------------------------------------------ *)

(* How far an edit forced the pipeline to re-run, cheapest first:
   - [Noop]: byte-identical sources, nothing ran;
   - [Patched]: changed bodies re-lowered, points-to re-keyed in place,
     frozen SDG patched (constraint summaries unchanged) — also taken
     by dispatch-neutral method adds/removes, where only the statement
     table needs rebuilding;
   - [Resolved_incremental]: some constraint summary moved, but the
     solved points-to result was repaired in place by delete-and-
     rederive over the affected cone ([Andersen.resolve_delta]); arena
     and SDG rebuilt over the patched solution — frontend AND the
     unaffected part of the solve skipped;
   - [Resolved_fresh]: summary moved and the incremental re-solve was
     unavailable (reference solver) or declined (cone too large a
     fraction of the node universe): fresh points-to solve and SDG
     over the mutated program — frontend still skipped;
   - [Rebuilt]: full reload from the new sources (structural edit, or
     fallback after a mid-incremental failure).

   The ladder is monotone in correctness: every tier answers queries
   byte-identically to a fresh load of the new sources (the fuzz
   oracle's edit battery enforces this per tier). *)
type update_path =
  | Noop
  | Patched
  | Resolved_incremental
  | Resolved_fresh
  | Rebuilt

let update_path_to_string = function
  | Noop -> "noop"
  | Patched -> "patched"
  | Resolved_incremental -> "resolved-incremental"
  | Resolved_fresh -> "resolved-fresh"
  | Rebuilt -> "rebuilt"

type update_report = {
  up_path : update_path;
  up_relowered : int;  (* method bodies re-lowered (Rebuilt: all) *)
  up_segments_refrozen : int;  (* SDG segments whose rows moved *)
  up_segments_total : int;
  up_nodes_dead : int;
  up_nodes_new : int;
}

let c_update_noop = Slice_obs.counter "engine.update.noop"
let c_update_patched = Slice_obs.counter "engine.update.patched"

let c_update_resolved_incr =
  Slice_obs.counter "engine.update.resolved_incremental"

let c_update_resolved_fresh = Slice_obs.counter "engine.update.resolved_fresh"
let c_update_rebuilt = Slice_obs.counter "engine.update.rebuilt"

let update (h : handle) (new_sources : (string * string) list) :
    handle * update_report =
  Slice_obs.span "engine.update" (fun () ->
      let rebuilt () =
        Slice_obs.bump c_update_rebuilt;
        Slice_obs.add_span_arg "path" "rebuilt";
        let h' =
          load ?container_classes:h.h_container_classes ~obj_sens:h.h_obj_sens
            ~solver:h.h_solver new_sources
        in
        let total = Andersen.num_call_graph_nodes h'.h_analysis.pta in
        ( h',
          { up_path = Rebuilt;
            up_relowered = h'.h_stats.methods;
            up_segments_refrozen = total;
            up_segments_total = total;
            up_nodes_dead = 0;
            up_nodes_new = 0 } )
      in
      (* Shared tail of the two resolved tiers: fresh points-to solve
         and SDG over the (already mutated) program. *)
      let resolved_fresh (a : analysis) (p : Program.t) ~(n_changed : int) =
        let a' = analyze ~obj_sens:a.obj_sens ~solver:h.h_solver p in
        Slice_obs.bump c_update_resolved_fresh;
        Slice_obs.add_span_arg "path" "resolved-fresh";
        let total = Andersen.num_call_graph_nodes a'.pta in
        ( { h with
            h_analysis = a';
            h_sources = new_sources;
            h_stats = stats_of ~obs:(edge_census_snapshot a'.sdg) a' },
          { up_path = Resolved_fresh;
            up_relowered = n_changed;
            up_segments_refrozen = total;
            up_segments_total = total;
            up_nodes_dead = 0;
            up_nodes_new = 0 } )
      in
      (* Bitset results carry constraint provenance: retract exactly the
         affected methods and re-solve the cone in place
         ([Andersen.resolve_delta]), rebuilding only the derived layers.
         Falls back to a fresh solve when the solver has no provenance
         (reference handles) or declines the cone as too large. *)
      let resolve_or_fresh (a : analysis) (p : Program.t)
          ~(retracted : Instr.method_qname list)
          ~(added : Instr.method_qname list) ~(n_changed : int) =
        match h.h_solver with
        | `Reference -> resolved_fresh a p ~n_changed
        | `Bitset -> (
          match Andersen.resolve_delta a.pta ~retracted ~added with
          | Error (`Cone_too_big | `No_provenance) ->
            resolved_fresh a p ~n_changed
          | Ok ds ->
            let a' = analyze_with_pta ~obj_sens:a.obj_sens a.pta p in
            Slice_obs.bump c_update_resolved_incr;
            Slice_obs.add_span_arg "path" "resolved-incremental";
            Slice_obs.add_span_arg "cone_nodes"
              (string_of_int ds.Andersen.ds_cone_nodes);
            Slice_obs.add_span_arg "retracted_mctxs"
              (string_of_int ds.Andersen.ds_retracted_mctxs);
            let total = Andersen.num_call_graph_nodes a'.pta in
            ( { h with
                h_analysis = a';
                h_sources = new_sources;
                h_stats = stats_of ~obs:(edge_census_snapshot a'.sdg) a' },
              { up_path = Resolved_incremental;
                up_relowered = n_changed;
                up_segments_refrozen = total;
                up_segments_total = total;
                up_nodes_dead = 0;
                up_nodes_new = 0 } ))
      in
      match Slice_front.Delta.diff ~old_sources:h.h_sources ~new_sources with
      | Slice_front.Delta.Same ->
        Slice_obs.bump c_update_noop;
        Slice_obs.add_span_arg "path" "noop";
        ( h,
          { up_path = Noop;
            up_relowered = 0;
            up_segments_refrozen = 0;
            up_segments_total =
              Andersen.num_call_graph_nodes h.h_analysis.pta;
            up_nodes_dead = 0;
            up_nodes_new = 0 } )
      | Slice_front.Delta.Structural -> rebuilt ()
      | Slice_front.Delta.Bodies changed -> (
        try
          let a = h.h_analysis in
          let p = a.program in
          (* Locate every changed method and snapshot the OLD bodies'
             constraint summaries before any mutation. *)
          let resolved = List.map (Slice_front.Delta.resolve p) changed in
          let summary_of (r : Slice_front.Delta.resolved) =
            Andersen.method_summary_sites
              (Program.find_method_exn p r.Slice_front.Delta.rv_mq)
          in
          let old_summaries = List.map summary_of resolved in
          (* IR-statement count of the changed bodies, snapshotted for the
             Patched path's incremental stats.  [stats_of] only counts
             REACHABLE bodies, so unreachable edits must contribute zero
             to the adjustment — reachability itself cannot change on the
             Patched path (equal summaries, re-keyed solution). *)
          let reachable = Andersen.reachable_methods a.pta in
          let counted =
            List.filter
              (fun (r : Slice_front.Delta.resolved) ->
                List.exists
                  (fun mq ->
                    Instr.equal_method_qname mq r.Slice_front.Delta.rv_mq)
                  reachable)
              resolved
          in
          let count_ir (r : Slice_front.Delta.resolved) =
            match Program.find_method p r.Slice_front.Delta.rv_mq with
            | Some m when Instr.has_body m ->
              let n = ref 0 in
              Instr.iter_instrs m (fun _ _ -> incr n);
              Instr.iter_terms m (fun _ _ -> incr n);
              !n
            | _ -> 0
          in
          let ir_of rs = List.fold_left (fun acc r -> acc + count_ir r) 0 rs in
          let old_ir = ir_of counted in
          (* Re-lower in place: from here on [p] holds the new bodies and
             any failure falls through to the rebuild handler below. *)
          List.iter (Slice_front.Delta.relower_resolved p) resolved;
          let new_summaries = List.map summary_of resolved in
          let summaries_equal =
            List.for_all2
              (fun (s_old, _) (s_new, _) -> String.equal s_old s_new)
              old_summaries new_summaries
          in
          let n_changed = List.length changed in
          if summaries_equal && Sdg.is_frozen a.sdg then begin
            (* Patch in place: the old and new site lists zip
               positionally into a remap (summary equality guarantees
               equal length and matching roles), the solved points-to
               result is re-keyed onto the fresh ids, and only the
               changed methods' SDG segments are rewritten. *)
            let remap : (int, int) Hashtbl.t = Hashtbl.create 64 in
            List.iter2
              (fun (_, old_sites) (_, new_sites) ->
                List.iter2
                  (fun o n -> if o <> n then Hashtbl.replace remap o n)
                  old_sites new_sites)
              old_summaries new_summaries;
            let site_remap s = Hashtbl.find_opt remap s in
            Andersen.rekey_sites a.pta site_remap;
            let changed_mqs =
              List.map
                (fun (r : Slice_front.Delta.resolved) ->
                  r.Slice_front.Delta.rv_mq)
                resolved
            in
            let ps = Sdg.patch a.sdg ~changed:changed_mqs ~site_remap in
            Slice_obs.bump c_update_patched;
            Slice_obs.add_span_arg "path" "patched";
            (* Incremental stats: only the edited bodies' IR counts and
               the SDG-derived numbers can move on this path — classes,
               reachable methods, call-graph nodes and abstract objects
               are pinned by summary equality.  Avoids the O(program)
               [stats_of] re-count, which would otherwise rival the
               patch itself. *)
            let stats' =
              { h.h_stats with
                ir_statements =
                  h.h_stats.ir_statements + ir_of counted - old_ir;
                sdg_statements = Sdg.num_scalar_statements a.sdg;
                sdg_nodes = Sdg.num_live_nodes a.sdg;
                obs = edge_census_snapshot a.sdg }
            in
            ( { h with h_sources = new_sources; h_stats = stats' },
              { up_path = Patched;
                up_relowered = n_changed;
                up_segments_refrozen = ps.Sdg.ps_segments_refrozen;
                up_segments_total = ps.Sdg.ps_segments_total;
                up_nodes_dead = ps.Sdg.ps_nodes_dead;
                up_nodes_new = ps.Sdg.ps_nodes_new } )
          end
          else begin
            (* The edit moved some constraint summary: the changed
               methods' constraints are both the retracted and the
               re-added set (same methods, new bodies). *)
            let changed_mqs =
              List.map
                (fun (r : Slice_front.Delta.resolved) ->
                  r.Slice_front.Delta.rv_mq)
                resolved
            in
            resolve_or_fresh a p ~retracted:changed_mqs ~added:changed_mqs
              ~n_changed
          end
        with e ->
          (* A mid-incremental failure (mini-unit parse error, lowering
             error, violated patch invariant) may leave the program
             half-mutated — the stored sources rebuild it whole. *)
          Slice_obs.add_span_arg "fallback" (Printexc.to_string e);
          rebuilt ())
      | Slice_front.Delta.Methods md -> (
        try
          let a = h.h_analysis in
          let p = a.program in
          let removed_mqs =
            List.map Slice_front.Delta.removed_qname
              md.Slice_front.Delta.dm_removed
          in
          let entry = Program.entry_method p in
          if
            List.exists
              (fun mq -> Instr.equal_method_qname mq entry)
              removed_mqs
          then rebuilt ()
          else begin
            (* Classify BEFORE mutating.  A removed method with zero
               solved contexts was unreachable — no call graph edge or
               dispatch resolution involved it, so dropping it cannot
               move the solution.  An added method whose NAME no old
               method anywhere bears can neither be called by the
               unchanged bodies (the old program lowered without the
               name, so no call site references it) nor shadow or
               retarget any dispatch — also neutral. *)
            let name_exists name =
              let found = ref false in
              Program.iter_methods p (fun m ->
                  if String.equal m.Instr.m_qname.Instr.mq_name name then
                    found := true);
              !found
            in
            let neutral =
              List.for_all
                (fun mq -> Andersen.mctxs_of_method a.pta mq = [])
                removed_mqs
              && List.for_all
                   (fun (am : Slice_front.Delta.added_method) ->
                     not (name_exists am.Slice_front.Delta.am_name))
                   md.Slice_front.Delta.dm_added
            in
            (* Dispatch suspects of a NON-neutral edit: every old method
               sharing a name with an added method may lose dispatch
               flows to the new override, so its constraints must be
               retracted and re-derived.  (A removed reachable method
               only re-routes its own flows — the surviving same-name
               methods strictly GAIN, which plain re-solving covers.) *)
            let suspects =
              List.concat_map
                (fun (am : Slice_front.Delta.added_method) ->
                  let name = am.Slice_front.Delta.am_name in
                  let out = ref [] in
                  Program.iter_methods p (fun m ->
                      if String.equal m.Instr.m_qname.Instr.mq_name name then
                        out := m.Instr.m_qname :: !out);
                  !out)
                md.Slice_front.Delta.dm_added
            in
            (* Mutate the program: removals, additions (declared and
               lowered exactly as a full load would), then shift every
               surviving location in the edited files onto its new
               line — added methods were lowered from new-file mini
               units and must NOT be shifted again. *)
            List.iter (Program.remove_method p) removed_mqs;
            let added_mqs =
              List.map (Slice_front.Delta.lower_added p)
                md.Slice_front.Delta.dm_added
            in
            let is_added mq =
              List.exists (Instr.equal_method_qname mq) added_mqs
            in
            List.iter
              (fun (file, bps) ->
                if bps <> [] then begin
                  let shift (l : Loc.t) =
                    if String.equal l.Loc.file file then begin
                      let d = Slice_front.Delta.line_delta bps l.Loc.line in
                      if d = 0 then l else { l with Loc.line = l.Loc.line + d }
                    end
                    else l
                  in
                  Program.iter_methods p (fun m ->
                      if Instr.has_body m && not (is_added m.Instr.m_qname)
                      then
                        Array.iter
                          (fun blk ->
                            blk.Instr.b_instrs <-
                              List.map
                                (fun i ->
                                  { i with Instr.i_loc = shift i.Instr.i_loc })
                                blk.Instr.b_instrs;
                            blk.Instr.b_term <-
                              { blk.Instr.b_term with
                                Instr.t_loc = shift blk.Instr.b_term.Instr.t_loc
                              })
                          (Instr.blocks_exn m))
                end)
              md.Slice_front.Delta.dm_line_maps;
            let n_changed = List.length added_mqs in
            if neutral && Sdg.is_frozen a.sdg then begin
              (* Nothing in the solved analysis refers to the edit: the
                 points-to result, SDG rows and node set are all still
                 exact.  [Sdg.patch] with no changed methods rebuilds
                 the statement table (so the shifted locations serve
                 line queries) and bumps the graph generation. *)
              let ps =
                Sdg.patch a.sdg ~changed:[] ~site_remap:(fun _ -> None)
              in
              Slice_obs.bump c_update_patched;
              Slice_obs.add_span_arg "path" "patched";
              let stats' =
                { h.h_stats with
                  sdg_statements = Sdg.num_scalar_statements a.sdg;
                  sdg_nodes = Sdg.num_live_nodes a.sdg;
                  obs = edge_census_snapshot a.sdg }
              in
              ( { h with h_sources = new_sources; h_stats = stats' },
                { up_path = Patched;
                  up_relowered = n_changed;
                  up_segments_refrozen = ps.Sdg.ps_segments_refrozen;
                  up_segments_total = ps.Sdg.ps_segments_total;
                  up_nodes_dead = ps.Sdg.ps_nodes_dead;
                  up_nodes_new = ps.Sdg.ps_nodes_new } )
            end
            else
              resolve_or_fresh a p
                ~retracted:(removed_mqs @ suspects)
                ~added:added_mqs ~n_changed
          end
        with e ->
          Slice_obs.add_span_arg "fallback" (Printexc.to_string e);
          rebuilt ()))

(* One heap read/write pair of an expand query, with the flows of their
   common object(s) to each base (see [Expansion.explain_aliasing]). *)
type expand_flow = {
  ef_read : Sdg.node;
  ef_write : Sdg.node;
  ef_read_flow : Sdg.node list;
  ef_write_flow : Sdg.node list;
}

(* Heap read/write pairs connected by producer-heap edges within the
   thin slice seeded at [line], each with its aliasing explanation.
   Pair order is the discovery order of the old CLI loop (slice order
   outer, [deps_iter] order inner, then reversed) — pinned so the
   pretty rendering's bytes survive the extraction. *)
let expand_at_line ?filter (a : analysis) ~(line : int) : expand_flow list =
  let seeds = seeds_at_line_exn ?filter a line in
  let g = a.sdg in
  let slice = Slicer.slice g ~seeds Slicer.Thin in
  let pairs = ref [] in
  List.iter
    (fun n ->
      Sdg.deps_iter g n (fun dep kind ->
          if kind = Sdg.Producer_heap && List.mem dep slice then
            pairs := (n, dep) :: !pairs))
    slice;
  List.map
    (fun (read, write) ->
      let e = Expansion.explain_aliasing g ~read ~write in
      { ef_read = read;
        ef_write = write;
        ef_read_flow = e.Expansion.read_flow;
        ef_write_flow = e.Expansion.write_flow })
    !pairs

(* ----- the one query type (ISSUE 7: "dispatched by mode") ----- *)

type query =
  | Q_slice of { line : int; mode : Slicer.mode; forward : bool }
  | Q_chop of { line : int; sink_line : int; mode : Slicer.mode }
  | Q_expand of { line : int }
  | Q_explain of { seed_line : int; line : int; mode : Slicer.mode }
  | Q_report of { line : int; mode : Slicer.mode }
  | Q_stats

type query_result =
  | R_lines of int list
  | R_expand of expand_flow list
  | R_witness of Slicer.witness_step list option
  | R_report of slice_report
  | R_stats of stats

let run_query ?(jobs = 1) (h : handle) (q : query) : query_result =
  let a = h.h_analysis in
  match q with
  | Q_slice { line; mode; forward } ->
    let seeds = seeds_at_line_exn a line in
    let nodes =
      if forward then Slicer.forward_slice a.sdg ~seeds mode
      else Slicer.slice a.sdg ~seeds mode
    in
    R_lines (Slicer.locs_to_line_numbers (Slicer.nodes_to_lines a.sdg nodes))
  | Q_chop { line; sink_line; mode } ->
    let source = seeds_at_line_exn a line in
    let sink = seeds_at_line_exn a sink_line in
    let nodes = Slicer.chop a.sdg ~source ~sink mode in
    R_lines (Slicer.locs_to_line_numbers (Slicer.nodes_to_lines a.sdg nodes))
  | Q_expand { line } -> R_expand (expand_at_line a ~line)
  | Q_explain { seed_line; line; mode } ->
    R_witness (witness_from_line ~jobs a ~seed_line ~line mode)
  | Q_report { line; mode } -> R_report (slice_report ~jobs a ~line mode)
  | Q_stats -> R_stats h.h_stats

(* ----- thinslice.query/v1 JSON ----- *)

let query_schema_version = "thinslice.query/v1"

let node_json (a : analysis) (n : Sdg.node) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  let loc = Sdg.node_loc a.sdg n in
  Obj
    [ ("node", Int n);
      ("file", Str loc.Loc.file);
      ("line", Int loc.Loc.line);
      ("label", Str (Format.asprintf "%a" (Sdg.pp_node a.sdg) n)) ]

let expand_to_json (a : analysis) ~(line : int) (flows : expand_flow list) :
    Slice_obs.Json.t =
  let open Slice_obs.Json in
  let countable = List.filter (Sdg.node_countable a.sdg) in
  Obj
    [ ("schema", Str query_schema_version);
      ("result", Str "expand");
      ("query", Obj [ ("line", Int line) ]);
      ("flows",
       List
         (List.map
            (fun f ->
              Obj
                [ ("read", node_json a f.ef_read);
                  ("write", node_json a f.ef_write);
                  ("read_flow",
                   List (List.map (node_json a) (countable f.ef_read_flow)));
                  ("write_flow",
                   List (List.map (node_json a) (countable f.ef_write_flow))) ])
            flows)) ]

let lines_to_json ~(result : string) ~(query : (string * Slice_obs.Json.t) list)
    (lines : int list) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  Obj
    [ ("schema", Str query_schema_version);
      ("result", Str result);
      ("query", Obj query);
      ("lines", List (List.map (fun l -> Int l) lines)) ]

(* The resident-stats export: program shape + per-program edge-kind
   counters, NO telemetry snapshot.  [stats_to_json]'s telemetry member
   is process-cumulative by design (counters, spans at capture), which
   is exactly wrong for a daemon answering for ONE resident program —
   and per-query walls live in the serve response envelope instead. *)
let resident_stats_to_json (s : stats) : Slice_obs.Json.t =
  let open Slice_obs.Json in
  Obj
    [ ("schema", Str stats_schema_version);
      ("program", program_stats_json s);
      ("sdg.edges_by_kind", edges_by_kind_json s.obs);
      ("memory", memory_json s) ]

(* Witness queries keep the [thinslice.explain/v1] payload for members
   (byte-compatible with pre-serve [explain --json]); a non-member
   answer is a RESULT in the serve protocol — the query succeeded, the
   line just is not in the slice — so it gets a structured shape here
   while the CLI keeps its exit-1 contract. *)
let non_member_to_json ~(seed_line : int) ~(line : int) (mode : Slicer.mode) :
    Slice_obs.Json.t =
  let open Slice_obs.Json in
  Obj
    [ ("schema", Str explain_schema_version);
      ("result", Str "witness");
      ("query",
       Obj
         [ ("seed_line", Int seed_line);
           ("line", Int line);
           ("mode", Str (Slicer.mode_to_string mode)) ]);
      ("member", Bool false) ]

let query_result_to_json (h : handle) (q : query) (r : query_result) :
    Slice_obs.Json.t =
  let a = h.h_analysis in
  let open Slice_obs.Json in
  match (q, r) with
  | Q_slice { line; mode; forward }, R_lines lines ->
    lines_to_json
      ~result:(if forward then "forward" else "slice")
      ~query:
        [ ("line", Int line); ("mode", Str (Slicer.mode_to_string mode)) ]
      lines
  | Q_chop { line; sink_line; mode }, R_lines lines ->
    lines_to_json ~result:"chop"
      ~query:
        [ ("line", Int line);
          ("to", Int sink_line);
          ("mode", Str (Slicer.mode_to_string mode)) ]
      lines
  | Q_expand { line }, R_expand flows -> expand_to_json a ~line flows
  | Q_explain { seed_line; line; mode }, R_witness (Some steps) ->
    witness_to_json a ~seed_line ~line mode steps
  | Q_explain { seed_line; line; mode }, R_witness None ->
    non_member_to_json ~seed_line ~line mode
  | Q_report _, R_report rep -> report_to_json rep
  | Q_stats, R_stats s -> resident_stats_to_json s
  | ( ( Q_slice _ | Q_chop _ | Q_expand _ | Q_explain _ | Q_report _
      | Q_stats ),
      _ ) ->
    invalid_arg "Engine.query_result_to_json: result does not match query"
