(* Hierarchical expansion of thin slices (paper, section 4).

   Two explainer questions are answered on demand:
   1. aliasing — given a heap read and a heap write in the thin slice that
      touch the same abstract location, why are their base pointers
      aliased?  Answered with two more thin slices, seeded at the base
      pointers' definitions and filtered to the flow of objects that reach
      BOTH pointers (section 4.1);
   2. control — under which conditions does a slice statement execute?
      Answered by exposing its direct control dependences (section 4.2).

   Iterating expansion to a fixed point recovers the traditional slice
   ("in the limit"), which the test suite checks. *)

open Slice_ir
open Slice_pta

(* Dependences of [n] of one kind, in adjacency order, over the frozen
   iteration API (no per-row list allocation). *)
let deps_of_kind (g : Sdg.t) (want : Sdg.edge_kind) (n : Sdg.node) :
    Sdg.node list =
  let acc = ref [] in
  Sdg.deps_iter g n (fun dep kind -> if kind = want then acc := dep :: !acc);
  List.rev !acc

(* Direct control dependences of a node: the conditionals (or call sites)
   that govern it. *)
let explain_control (g : Sdg.t) (n : Sdg.node) : Sdg.node list =
  deps_of_kind g Sdg.Control n

(* Base-pointer definition nodes of a heap access node. *)
let base_defs (g : Sdg.t) (n : Sdg.node) : Sdg.node list =
  deps_of_kind g Sdg.Base_pointer n

(* Index definition nodes of an array access node. *)
let index_defs (g : Sdg.t) (n : Sdg.node) : Sdg.node list =
  deps_of_kind g Sdg.Index n

(* Actual-argument nodes of a call statement (Weiser statement closure). *)
let call_actuals (g : Sdg.t) (n : Sdg.node) : Sdg.node list =
  deps_of_kind g Sdg.Call_actual n

(* The abstract objects pointed to by the base pointer of a heap access. *)
let base_points_to (g : Sdg.t) (n : Sdg.node) : Andersen.ObjSet.t =
  match Sdg.node_desc g n with
  | Sdg.Formal _ | Sdg.Actual_in _ -> Andersen.ObjSet.empty
  | Sdg.Stmt (mc, s) -> (
    match Hashtbl.find_opt (Sdg.stmt_table g) s with
    | None -> Andersen.ObjSet.empty
    | Some si -> (
      match si.Program.s_site with
      | Program.Site_term _ -> Andersen.ObjSet.empty
      | Program.Site_instr i -> (
        let pts v = Andersen.pts_of_var (Sdg.pta g) ~mctx:mc v in
        match i.Instr.i_kind with
        | Instr.Load (_, y, _) -> pts y
        | Instr.Store (x, _, _) -> pts x
        | Instr.Array_load (_, a, _) | Instr.Array_store (a, _, _) -> pts a
        | Instr.Array_length (_, a) -> pts a
        | _ -> Andersen.ObjSet.empty)))

(* Does node [n] handle (define or carry a variable pointing to) one of
   [objs]?  Used to restrict aliasing explanations to the flow of the
   common objects (paper, section 4.1 "filtering"). *)
let node_flows_object (g : Sdg.t) (objs : Andersen.ObjSet.t) (n : Sdg.node) :
    bool =
  let var_overlaps mc m v =
    Types.is_reference (Instr.var_info m v).Instr.vi_ty
    && not
         (Andersen.ObjSet.is_empty
            (Andersen.ObjSet.inter objs (Andersen.pts_of_var (Sdg.pta g) ~mctx:mc v)))
  in
  match Sdg.node_desc g n with
  | Sdg.Formal (mc, idx) -> (
    let mq, _ = Andersen.mctx_info (Sdg.pta g) mc in
    let m = Program.find_method_exn (Sdg.program g) mq in
    match List.nth_opt m.Instr.m_params idx with
    | Some v -> var_overlaps mc m v
    | None -> false)
  | Sdg.Actual_in (mc, s, idx) -> (
    match Hashtbl.find_opt (Sdg.stmt_table g) s with
    | Some { Program.s_site = Program.Site_instr { Instr.i_kind = Instr.Call { args; _ }; _ };
             s_method } -> (
      let m = Program.find_method_exn (Sdg.program g) s_method in
      match List.nth_opt args idx with
      | Some v -> var_overlaps mc m v
      | None -> false)
    | Some _ | None -> false)
  | Sdg.Stmt (mc, s) -> (
    match Hashtbl.find_opt (Sdg.stmt_table g) s with
    | None -> false
    | Some si -> (
      match si.Program.s_site with
      | Program.Site_term _ -> true
      | Program.Site_instr i -> (
        match Instr.def_of_instr i with
        | None -> true (* stores etc.: retained, they move the object *)
        | Some v ->
          let m = Program.find_method_exn (Sdg.program g) si.Program.s_method in
          var_overlaps mc m v)))

type aliasing_explanation = {
  common_objects : Andersen.ObjSet.t;
  (* statements showing the flow of a common object to the read's base *)
  read_flow : Sdg.node list;
  (* statements showing the flow of a common object to the write's base *)
  write_flow : Sdg.node list;
}

(* Explain why a heap read and a heap write in a thin slice may touch the
   same location: thin slices from each base pointer, filtered to the flow
   of the objects that reach both (section 4.1). *)
let explain_aliasing (g : Sdg.t) ~(read : Sdg.node) ~(write : Sdg.node) :
    aliasing_explanation =
  let common =
    Andersen.ObjSet.inter (base_points_to g read) (base_points_to g write)
  in
  let filtered_thin_slice seeds =
    Slicer.slice g ~seeds Slicer.Thin
    |> List.filter (node_flows_object g common)
  in
  { common_objects = common;
    read_flow = filtered_thin_slice (base_defs g read);
    write_flow = filtered_thin_slice (base_defs g write) }

(* Explain why an array read and write may use the same index: thin slices
   on the index expressions (section 4.1, array discussion). *)
let explain_array_index (g : Sdg.t) ~(read : Sdg.node) ~(write : Sdg.node) :
    Sdg.node list * Sdg.node list =
  ( Slicer.slice g ~seeds:(index_defs g read) Slicer.Thin,
    Slicer.slice g ~seeds:(index_defs g write) Slicer.Thin )

(* One expansion step: thin-slice closure of [nodes] plus all their direct
   explainers (base pointers, indices, controls). *)
let expand_once (g : Sdg.t) (nodes : Sdg.node list) : Sdg.node list =
  let explainers =
    List.concat_map
      (fun n ->
        base_defs g n @ index_defs g n @ call_actuals g n @ explain_control g n)
      nodes
  in
  Slicer.slice g ~seeds:(nodes @ explainers) Slicer.Thin

(* Expanding hierarchically until nothing is added yields the traditional
   (full) slice in the limit (paper, end of section 2). *)
let expand_to_fixpoint (g : Sdg.t) ~(seeds : Sdg.node list) : Sdg.node list =
  let rec go current =
    let next = expand_once g current in
    if List.length next = List.length current then current else go next
  in
  go (Slicer.slice g ~seeds Slicer.Thin)
