(** Backward and forward slicing as graph reachability over the classified
    SDG (paper, section 5.2). *)

(** Which dependence edges a traversal follows:
    - [Thin]: producer edges only — the thin slice of the paper;
    - [Thin_with_aliasing k]: additionally crosses up to [k] base-pointer
      or index edges along any path — the controlled one-level aliasing
      expansion used for nanoxml-5 in the evaluation (section 6.2);
    - [Traditional_data]: all flow dependences including base pointers,
      indices, and Weiser statement closure over call arguments, but no
      control — the "traditional data slicer" the paper compares against;
    - [Traditional_full]: also follows control dependences. *)
type mode =
  | Thin
  | Thin_with_aliasing of int
  | Traditional_data
  | Traditional_full

val mode_to_string : mode -> string

(** Parse a mode name.  Accepts both the CLI spellings ([thin], [trad],
    [traditional], [full], [alias:K]) and the {!mode_to_string}
    round-trip forms ([traditional-data], [traditional-full],
    [thin+aliasK]) so every driver — cmdliner conv, serve protocol,
    repro files — parses through one place.  [None] on anything else. *)
val mode_of_string : string -> mode option

(** How a given edge kind is treated under a mode: followed freely,
    followed at the cost of one unit of aliasing budget, or skipped.
    Exposed for the BFS inspection metric, which must traverse with the
    same discipline. *)
val edge_policy : mode -> Sdg.edge_kind -> [ `Follow | `Costly | `Skip ]

(** The saturation point of the aliasing budget: [Thin_with_aliasing k]
    behaves as [min k max_aliasing_budget] in EVERY traversal (CSR walk,
    {!Reference}, BFS inspection) — the clamp is applied centrally in
    {!initial_budget} so implementations cannot disagree at the
    boundary. *)
val max_aliasing_budget : int

(** Starting budget of a mode, clamped to {!max_aliasing_budget}. *)
val initial_budget : mode -> int

(** Reusable walk buffers (budget/visited byte table, entry-unique ring,
    touched-node log).  Each traversal entry point uses the calling
    domain's implicitly shared scratch by default (a [Domain.DLS] slot:
    per-domain, so concurrent domains never share buffers); pass an
    explicit [?scratch] to control reuse yourself — e.g. one handle per
    worker in a parallel batch executor.  A scratch must never be used by
    two domains at once. *)
type scratch

(** A scratch sized for [g] (grow-only; any graph may use it later). *)
val create_scratch : Sdg.t -> scratch

(** Number of nodes the scratch buffers currently cover. *)
val scratch_capacity : scratch -> int

(** Resident footprint of the scratch buffers in bytes, computed
    arithmetically from the field sizes (never [Obj.reachable_words]),
    so the figure is deterministic and safe in byte-compared output. *)
val scratch_bytes : scratch -> int

(** Release the memory above [keep] nodes (no-op when already at or
    below).  Walks grow buffers on demand but never release them, so a
    single mega-program query would otherwise pin peak memory for the
    scratch owner's lifetime — a real leak in a long-lived daemon, which
    calls this when it evicts a large program from its cache.  Safe at
    any point between walks. *)
val shrink_scratch : scratch -> keep:int -> unit

(** Capacity/shrink for the calling domain's implicit [Domain.DLS]
    scratch — the buffers used by traversals without an explicit
    [?scratch].  Capacity is 0 until the first such traversal in this
    domain.  {!shrink_domain_scratch} is a no-op then. *)
val domain_scratch_capacity : unit -> int

(** {!scratch_bytes} of the calling domain's implicit scratch; 0 before
    the first implicit traversal in this domain. *)
val domain_scratch_bytes : unit -> int

val shrink_domain_scratch : keep:int -> unit

(** {2 Provenance}

    Opt-in per-walk evidence: flat side tables (discovering parent node,
    discovering edge kind, remaining aliasing budget on arrival, BFS
    layer at first visit) recorded when a traversal entry point is given
    a [?prov] handle.  Grow-only and generation-stamped — a new recorded
    walk invalidates the previous one's records in O(1) — and, unlike
    {!scratch}, caller-owned and readable AFTER the walk via {!witness}
    and {!distance}.  Domain discipline is the same as for scratches:
    never share a handle between two domains at once.  Walks without
    [?prov] run the untouched hot path and pay nothing.

    Records are also stamped with the graph's {!Sdg.generation} at walk
    time: after an incremental update patches the graph, {!witness} and
    {!distance} answer [None] (the recorded path may pass through
    retired nodes) until a new recorded walk runs. *)
type provenance

(** A provenance sized for [g] (grow-only; any graph may use it later). *)
val create_provenance : Sdg.t -> provenance

(** Number of nodes the provenance side tables currently cover. *)
val provenance_capacity : provenance -> int

(** Release the memory above [keep] nodes (no-op when already at or
    below).  Shrinking drops the last recorded walk's records — after it
    {!witness} and {!distance} answer [None] until the next recorded
    walk — the same trade {!shrink_scratch} makes for walk buffers. *)
val shrink_provenance : provenance -> keep:int -> unit

(** Mode of the last recorded walk, [None] if none has run yet. *)
val provenance_mode : provenance -> mode option

(** BFS layer of a node in the last recorded walk ([Some 0] exactly for
    seeds), [None] when the node was not a member of that slice.  In
    budget-free modes this equals the {!Inspect} layer index. *)
val distance : provenance -> Sdg.node -> int option

(** One step of a witness path.  [wit_kind] is the kind of the dependence
    edge from the PREVIOUS step to this one ([None] at the seed);
    [wit_budget] the best remaining aliasing budget on arrival;
    [wit_dist] the BFS layer at first visit. *)
type witness_step = {
  wit_node : Sdg.node;
  wit_kind : Sdg.edge_kind option;
  wit_budget : int;
  wit_dist : int;
}

(** The dependence path by which the last recorded walk reached [node]:
    seed first, queried node last, each step depending on the next via
    the next step's [wit_kind] (for a backward walk; a forward walk's
    path reads in the reverse dependence direction).  The recorded chain
    replays under the walk's budget discipline — every `Costly hop had
    budget — because discovery records follow every budget improvement.
    [None] when [node] was not in the last recorded slice (so
    [witness p n <> None] iff [n] is a member). *)
val witness : provenance -> Sdg.node -> witness_step list option

(** Backward slice: every node the seeds transitively depend on under the
    mode's edge discipline, sorted.  The walk runs over
    {!Sdg.deps_iter} — allocation-free flat CSR arrays once the graph is
    frozen — with a byte-array budget/visited table and an entry-unique
    int ring deque (each node occupies at most one queue slot; a budget
    improvement for a queued node only updates the table).  [?prov]
    switches to the provenance-recording copy of the walk. *)
val slice :
  ?scratch:scratch ->
  ?prov:provenance ->
  Sdg.t -> seeds:Sdg.node list -> mode -> Sdg.node list

(** Forward slice: every node that transitively consumes the seeds' values
    — impact analysis, the dual of the paper's backward producer chains. *)
val forward_slice :
  ?scratch:scratch ->
  ?prov:provenance ->
  Sdg.t -> seeds:Sdg.node list -> mode -> Sdg.node list

(** Many backward slices over one graph with a single scratch-buffer
    allocation: freeze the graph once, then call this with one seed set
    per wanted slice.  Result lists are in input order.  Recorded under
    the ["slicer.slice_batch"] span. *)
val slice_batch :
  ?scratch:scratch ->
  Sdg.t -> seeds_list:Sdg.node list list -> mode -> Sdg.node list list

(** Forward mirror of {!slice_batch}, recorded under its own
    ["slicer.forward_batch"] span. *)
val forward_slice_batch :
  ?scratch:scratch ->
  Sdg.t -> seeds_list:Sdg.node list list -> mode -> Sdg.node list list

(** Chop: the nodes on producer paths from [source] to [sink] — how a
    value travels between two program points.  Computed as the sorted
    merge intersection of the forward walk from [source] and the
    backward walk from [sink]; symmetric in which walk is enumerated, and
    sorted-unique. *)
val chop :
  Sdg.t -> source:Sdg.node list -> sink:Sdg.node list -> mode -> Sdg.node list

(** Distinct source locations of countable nodes, sorted — the projection
    {!slice_lines} applies to a slice. *)
val nodes_to_lines : Sdg.t -> Sdg.node list -> Slice_ir.Loc.t list

(** Project locations to sorted-distinct line NUMBERS.  Distinct files can
    repeat a line number, so the dedup happens after the file component is
    dropped — a two-file program whose slices touch [a.tj:4] and [b.tj:4]
    reports line 4 once. *)
val locs_to_line_numbers : Slice_ir.Loc.t list -> int list

(** Slice contents as distinct source locations of countable nodes — the
    granularity a user reads (a source statement lowered to several IR
    instructions is reported once). *)
val slice_lines : Sdg.t -> seeds:Sdg.node list -> mode -> Slice_ir.Loc.t list

val slice_line_numbers : Sdg.t -> seeds:Sdg.node list -> mode -> int list

(** The seed implementation, verbatim: Hashtbl visited/budget table,
    stdlib [Queue] with duplicate re-enqueues, polymorphic-compare sort,
    all over the adjacency-list shims.  Bumps no telemetry.  Kept as the
    semantic oracle for the CSR walk (parity property tests) and as the
    A side of the BENCH A/B. *)
module Reference : sig
  val slice : Sdg.t -> seeds:Sdg.node list -> mode -> Sdg.node list
  val forward_slice : Sdg.t -> seeds:Sdg.node list -> mode -> Sdg.node list
  val slice_lines : Sdg.t -> seeds:Sdg.node list -> mode -> Slice_ir.Loc.t list
end
